// Package vrldram is the public API of the VRL-DRAM reproduction: the
// variable-refresh-latency DRAM mechanism of Das, Hassan and Mutlu (DAC
// 2018), together with every substrate its evaluation needs - the
// circuit-level analytical refresh model, a transient circuit simulator,
// retention profiling, a DRAM bank charge model, RAIDR/VRL/VRL-Access
// refresh schedulers, synthetic PARSEC-style memory traces, and power/area
// models.
//
// Three entry points:
//
//   - NewSystem builds a simulated bank + controller and runs refresh
//     scheduling experiments programmatically (see examples/quickstart);
//   - RunExperiment regenerates any table or figure of the paper by ID
//     (see cmd/vrlexp and EXPERIMENTS.md);
//   - the lower-level building blocks live in internal/ and are re-exported
//     here only through the System and experiment APIs.
package vrldram

import (
	"fmt"
	"io"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/exp"
	"vrldram/internal/power"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// SchedulerKind names a refresh scheduling policy.
type SchedulerKind string

// The supported refresh scheduling policies.
const (
	SchedJEDEC     SchedulerKind = "jedec"
	SchedRAIDR     SchedulerKind = "raidr"
	SchedVRL       SchedulerKind = "vrl"
	SchedVRLAccess SchedulerKind = "vrl-access"
)

// SchedulerKinds lists all policies in evaluation order.
var SchedulerKinds = []SchedulerKind{SchedJEDEC, SchedRAIDR, SchedVRL, SchedVRLAccess}

// Options configures a System. The zero value reproduces the paper's
// evaluation setup (8192x32 bank at 90 nm, calibrated retention
// distribution, nbits=2 counters, exponential leakage).
type Options struct {
	Rows, Cols int     // bank geometry (default 8192x32)
	Seed       int64   // deterministic seed for profile and traces (default 42)
	Guardband  float64 // scheduling charge guardband (default core.ChargeGuardband)
	NBits      int     // counter width (default 2)
	Decay      string  // "exponential" (default) or "linear"
	Pattern    string  // stored data pattern: "all-0" (default), "all-1", "alternating", "random"
}

func (o Options) withDefaults() Options {
	if o.Rows == 0 {
		o.Rows = device.PaperBank.Rows
	}
	if o.Cols == 0 {
		o.Cols = device.PaperBank.Cols
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Decay == "" {
		o.Decay = "exponential"
	}
	if o.Pattern == "" {
		o.Pattern = "all-0"
	}
	return o
}

// System is a simulated DRAM bank plus the retention profile and refresh
// machinery of the paper's evaluation.
type System struct {
	opts    Options
	params  device.Params
	geom    device.BankGeometry
	profile *retention.BankProfile
	restore core.RestoreModel
	decay   retention.DecayModel
	pattern retention.Pattern
	pm      power.Model
}

// NewSystem constructs a system from options; see Options for defaults.
func NewSystem(o Options) (*System, error) {
	o = o.withDefaults()
	params := device.Default90nm()
	geom := device.BankGeometry{Rows: o.Rows, Cols: o.Cols}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	decay, err := retention.DecayByName(o.Decay)
	if err != nil {
		return nil, err
	}
	pattern, err := patternByName(o.Pattern)
	if err != nil {
		return nil, err
	}
	dist := retention.DefaultCellDistribution()
	var profile *retention.BankProfile
	if geom == device.PaperBank {
		profile, err = retention.NewPaperProfile(dist, o.Seed)
	} else {
		profile, err = retention.NewSampledProfile(geom, dist, o.Seed)
	}
	if err != nil {
		return nil, err
	}
	restore, err := core.PaperRestoreModel(params, geom)
	if err != nil {
		return nil, err
	}
	return &System{
		opts:    o,
		params:  params,
		geom:    geom,
		profile: profile,
		restore: restore,
		decay:   decay,
		pattern: pattern,
		pm:      power.Default90nm(params, geom),
	}, nil
}

func patternByName(name string) (retention.Pattern, error) {
	for _, p := range retention.Patterns {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("vrldram: unknown data pattern %q", name)
}

// schedConfig builds the core scheduler configuration from the options.
func (s *System) schedConfig() core.Config {
	return core.Config{
		Restore:   s.restore,
		Decay:     s.decay,
		Guardband: s.opts.Guardband,
		NBits:     s.opts.NBits,
	}
}

// newScheduler instantiates a policy by kind.
func (s *System) newScheduler(kind SchedulerKind) (core.Scheduler, error) {
	switch kind {
	case SchedJEDEC:
		return core.NewJEDEC(s.params.TRetNom, s.restore)
	case SchedRAIDR:
		return core.NewRAIDR(s.profile, s.schedConfig())
	case SchedVRL:
		return core.NewVRL(s.profile, s.schedConfig())
	case SchedVRLAccess:
		return core.NewVRLAccess(s.profile, s.schedConfig())
	default:
		return nil, fmt.Errorf("vrldram: unknown scheduler %q", kind)
	}
}

// Stats reports one simulation run.
type Stats struct {
	Scheduler        string
	Duration         float64 // s
	FullRefreshes    int64
	PartialRefreshes int64
	BusyCycles       int64
	Accesses         int64
	Violations       int
	OverheadFraction float64 // fraction of time the bank refreshed
	RefreshEnergy    float64 // J over the run
}

// Access is one trace record: a read or write activating a row at a time.
type Access struct {
	Time  float64 // seconds from start
	Row   int
	Write bool
}

// Simulate runs the named policy for the given duration while replaying the
// accesses (which must be time-sorted; pass nil for a refresh-only run).
// For a cancellable or crash-safe (checkpointed, resumable) run, see
// SimulateControlled.
func (s *System) Simulate(kind SchedulerKind, accesses []Access, duration float64) (Stats, error) {
	st, err := s.SimulateControlled(kind, accesses, duration, RunControl{})
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}

// GenerateTrace synthesizes the named benchmark's accesses for this system's
// bank over the duration (see Benchmarks for names).
func (s *System) GenerateTrace(benchmark string, duration float64) ([]Access, error) {
	spec, err := trace.FindBenchmark(benchmark)
	if err != nil {
		return nil, err
	}
	recs, err := spec.Generate(s.geom.Rows, duration, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]Access, len(recs))
	for i, r := range recs {
		out[i] = Access{Time: r.Time, Row: r.Row, Write: r.Op == trace.Write}
	}
	return out, nil
}

// MPRSFHistogram returns how many rows were assigned each MPRSF value under
// the VRL policy: index i counts rows with MPRSF == i.
func (s *System) MPRSFHistogram() ([]int, error) {
	sched, err := s.newScheduler(SchedVRL)
	if err != nil {
		return nil, err
	}
	return core.MPRSFHistogram(sched, s.geom.Rows), nil
}

// BinCounts returns the RAIDR refresh-period binning of the system's bank:
// refresh period (seconds) to row count.
func (s *System) BinCounts() (map[float64]int, error) {
	return s.profile.BinCounts(retention.RAIDRBins)
}

// RefreshLatencies returns the scheduled partial and full refresh latencies
// in DRAM cycles (the paper's tau_partial = 11 and tau_full = 19).
func (s *System) RefreshLatencies() (partial, full int) {
	return s.restore.PartialCycles, s.restore.FullCycles
}

// TRFCBreakdown is the analytical model's latency decomposition of one
// refresh operation (paper Eq. 13).
type TRFCBreakdown struct {
	TauEq, TauPre, TauPost, TauFixed float64 // seconds
	TotalCycles                      int
	RestoreAlpha                     float64
}

// ModelTRFC evaluates the analytical model for a refresh restoring a cell
// from startFrac to targetFrac of full charge on this system's geometry.
func (s *System) ModelTRFC(startFrac, targetFrac float64) (TRFCBreakdown, error) {
	m, err := analytic.New(s.params, s.geom)
	if err != nil {
		return TRFCBreakdown{}, err
	}
	b, err := m.TRFC(startFrac, targetFrac)
	if err != nil {
		return TRFCBreakdown{}, err
	}
	return TRFCBreakdown{
		TauEq: b.TauEq, TauPre: b.TauPre, TauPost: b.TauPost, TauFixed: b.TauFixed,
		TotalCycles: b.TRFCCycles, RestoreAlpha: b.Alpha,
	}, nil
}

// RestorePoint is one sample of the refresh restore trajectory (paper
// Figure 1a).
type RestorePoint struct {
	FracTRFC   float64 // fraction of the full refresh cycle time elapsed
	FracCharge float64 // fraction of full charge on the cell
}

// RestoreCurve samples the charge-restoration trajectory of a full refresh
// of a cell that had decayed to startFrac of full charge, at n points over
// one tRFC (paper Figure 1a).
func (s *System) RestoreCurve(startFrac float64, n int) ([]RestorePoint, error) {
	m, err := analytic.New(s.params, s.geom)
	if err != nil {
		return nil, err
	}
	pts, err := m.RestoreCurve(startFrac, n)
	if err != nil {
		return nil, err
	}
	out := make([]RestorePoint, len(pts))
	for i, p := range pts {
		out[i] = RestorePoint{FracTRFC: p.FracTRFC, FracCharge: p.FracCharge}
	}
	return out, nil
}

// Benchmarks lists the synthetic workload names (13 PARSEC-3.0 benchmarks
// plus bgsave, the paper's Figure 4 set).
func Benchmarks() []string {
	specs := trace.PARSEC()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists every table and figure reproduction, in the paper's
// order.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, len(exp.Registry))
	for i, e := range exp.Registry {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// RunExperiment regenerates the identified table or figure with the default
// (paper) configuration and renders it to w.
func RunExperiment(id string, w io.Writer) error {
	run, err := exp.Find(id)
	if err != nil {
		return err
	}
	res, err := run(exp.Default())
	if err != nil {
		return err
	}
	return res.Fprint(w)
}

// RunExperimentSeeded is RunExperiment with an explicit seed and simulation
// window (zero values keep the defaults).
func RunExperimentSeeded(id string, w io.Writer, seed int64, duration float64) error {
	res, err := runSeeded(id, seed, duration)
	if err != nil {
		return err
	}
	return res.Fprint(w)
}

// RunExperimentCSV renders the experiment as CSV instead of an aligned
// table.
func RunExperimentCSV(id string, w io.Writer, seed int64, duration float64) error {
	res, err := runSeeded(id, seed, duration)
	if err != nil {
		return err
	}
	return res.FprintCSV(w)
}

func runSeeded(id string, seed int64, duration float64) (*exp.Result, error) {
	run, err := exp.Find(id)
	if err != nil {
		return nil, err
	}
	cfg := exp.Default()
	if seed != 0 {
		cfg.Seed = seed
	}
	if duration != 0 {
		cfg.Duration = duration
	}
	return run(cfg)
}

// geomOf builds a bank geometry (facade-internal helper).
func geomOf(rows, cols int) device.BankGeometry {
	return device.BankGeometry{Rows: rows, Cols: cols}
}

// simOptions builds simulator options for the system (facade-internal).
func simOptions(s *System, duration float64) sim.Options {
	return sim.Options{Duration: duration, TCK: s.params.TCK}
}

// runSim forwards to the internal simulator (facade-internal).
func runSim(bank *dram.Bank, sched core.Scheduler, src trace.Source, opts sim.Options) (sim.Stats, error) {
	return sim.Run(bank, sched, src, opts)
}

// defaultClassifier forwards the ECC charge classifier (facade-internal).
func defaultClassifier() ecc.ChargeClassifier { return ecc.DefaultClassifier() }
