package vrldram

import (
	"context"
	"fmt"
	"io"

	"vrldram/internal/checkpoint"
	"vrldram/internal/dram"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// This file extends the facade with the crash-safety envelope: cancellable,
// checkpointed simulation runs that a killed process can resume to
// bit-identical results (see internal/checkpoint and docs/ARCHITECTURE.md).

// RunControl configures cancellation and checkpointing for a simulation
// run. The zero value runs exactly like Simulate: no context, no
// checkpoint file.
type RunControl struct {
	// Context cancels the run cooperatively (nil = context.Background()):
	// cancellation or deadline expiry stops the simulation at the next
	// event boundary, writes a final snapshot when checkpointing is
	// enabled, and returns the partial statistics with an error wrapping
	// context.Canceled / context.DeadlineExceeded.
	Context context.Context
	// CheckpointPath enables crash-safe snapshots to this file ("" = off).
	// Snapshots are CRC-32-checksummed, written atomically, and rotated
	// through numbered generations (<path>.1 is the previous snapshot).
	CheckpointPath string
	// CheckpointEvery is the simulated time between snapshots (seconds);
	// when zero, one eighth of the run duration is used.
	CheckpointEvery float64
	// Resume loads the newest good generation of CheckpointPath and
	// continues that run instead of starting cold. The system, scheduler
	// kind, accesses, and duration must match the interrupted run's.
	Resume bool
	// Generations is how many prior snapshots to retain (default 3).
	Generations int
	// OnEvent, when non-nil, receives one-line progress notes (resume
	// source, fallback to an older generation) for operator visibility.
	OnEvent func(msg string)
	// Backend selects the simulator execution strategy by name ("" = auto;
	// see BackendNames). Every backend except the opt-in "batch-lut"
	// produces statistics and checkpoints bit-identical to the scalar
	// reference, so this is a speed knob, not a semantics knob.
	Backend string
}

// BackendNames lists the valid RunControl.Backend names in menu order.
func BackendNames() []string { return sim.BackendNames() }

// ParseBackend validates a simulator backend name ("" = auto), returning
// the canonical spelling or an error listing the valid names.
func ParseBackend(name string) (string, error) {
	b, err := sim.ParseBackend(name)
	if err != nil {
		return "", err
	}
	return b.String(), nil
}

// SimulateControlled is Simulate under a RunControl: the same simulation,
// but cancellable and crash-safe. Unlike Simulate it returns the partial
// statistics accumulated so far when the run stops early, so an interrupted
// run is still reportable; use errors.Is(err, context.Canceled) to
// distinguish interruption from failure.
func (s *System) SimulateControlled(kind SchedulerKind, accesses []Access, duration float64, rc RunControl) (Stats, error) {
	sched, err := s.newScheduler(kind)
	if err != nil {
		return Stats{}, err
	}
	bank, err := dram.NewBank(s.profile, s.decay, s.pattern)
	if err != nil {
		return Stats{}, err
	}
	recs := make([]trace.Record, len(accesses))
	for i, a := range accesses {
		op := trace.Read
		if a.Write {
			op = trace.Write
		}
		recs[i] = trace.Record{Time: a.Time, Op: op, Row: a.Row}
	}
	opts := sim.Options{Duration: duration, TCK: s.params.TCK}
	opts.Backend, err = sim.ParseBackend(rc.Backend)
	if err != nil {
		return Stats{}, err
	}

	var mgr *checkpoint.Manager
	if rc.CheckpointPath != "" {
		mgr, err = checkpoint.NewManager(rc.CheckpointPath, rc.Generations)
		if err != nil {
			return Stats{}, err
		}
		opts.CheckpointEvery = rc.CheckpointEvery
		if opts.CheckpointEvery <= 0 {
			opts.CheckpointEvery = duration / 8
		}
		opts.CheckpointSink = func(cp *sim.Checkpoint) error {
			return mgr.Save(func(w io.Writer) error { return checkpoint.EncodeSim(w, cp) })
		}
	}
	if rc.Resume {
		if mgr == nil {
			return Stats{}, fmt.Errorf("vrldram: Resume requires a CheckpointPath")
		}
		var cp *sim.Checkpoint
		from, err := mgr.Load(func(r io.Reader) error {
			var derr error
			cp, derr = checkpoint.DecodeSim(r)
			return derr
		})
		if err != nil {
			return Stats{}, err
		}
		opts.Resume = cp
		if rc.OnEvent != nil {
			rc.OnEvent(fmt.Sprintf("resuming from %s (t=%.3fs of %.3fs)", from, cp.Time, cp.Duration))
		}
	}

	st, runErr := sim.RunContext(rc.Context, bank, sched, trace.NewSliceSource(recs), opts)
	out := s.statsOf(st)
	return out, runErr
}

// statsOf maps simulator statistics into the facade's Stats, with
// best-effort energy accounting (zero on a partial run the power model
// rejects).
func (s *System) statsOf(st sim.Stats) Stats {
	out := Stats{
		Scheduler:        st.Scheduler,
		Duration:         st.Duration,
		FullRefreshes:    st.FullRefreshes,
		PartialRefreshes: st.PartialRefreshes,
		BusyCycles:       st.BusyCycles,
		Accesses:         st.Accesses,
		Violations:       st.Violations,
		OverheadFraction: st.OverheadFraction(s.params.TCK),
	}
	if eb, err := s.pm.RefreshEnergy(st, s.params.TCK); err == nil {
		out.RefreshEnergy = eb.Total
	}
	return out
}
