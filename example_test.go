package vrldram_test

import (
	"fmt"
	"log"

	"vrldram"
)

// The zero-value options reproduce the paper's evaluation setup; a
// refresh-only simulation of one bin hyperperiod shows the headline
// comparison.
func ExampleNewSystem() {
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}
	raidr, err := sys.Simulate(vrldram.SchedRAIDR, nil, 0.768)
	if err != nil {
		log.Fatal(err)
	}
	vrl, err := sys.Simulate(vrldram.SchedVRL, nil, 0.768)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VRL/RAIDR = %.3f, violations = %d\n",
		float64(vrl.BusyCycles)/float64(raidr.BusyCycles), vrl.Violations)
	// Output:
	// VRL/RAIDR = 0.787, violations = 0
}

// The evaluation bank reproduces the paper's Figure 3b binning exactly.
func ExampleSystem_BinCounts() {
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counts, err := sys.BinCounts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64ms:%d 128ms:%d 192ms:%d 256ms:%d\n",
		counts[0.064], counts[0.128], counts[0.192], counts[0.256])
	// Output:
	// 64ms:68 128ms:101 192ms:145 256ms:7878
}

// The scheduled refresh latencies match the paper's Section 3.1 operating
// point.
func ExampleSystem_RefreshLatencies() {
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}
	partial, full := sys.RefreshLatencies()
	fmt.Printf("tau_partial=%d tau_full=%d\n", partial, full)
	// Output:
	// tau_partial=11 tau_full=19
}

// Any table or figure of the paper regenerates by ID.
func ExampleRunExperiment() {
	if err := vrldram.RunExperiment("tab2", fmtWriter{}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// == tab2: Area overhead of VRL-DRAM at 90nm ==
	// nbits  Logic area (um^2)  % DRAM bank area
	// ------------------------------------------
	// 2      105                0.97%
	// 3      152                1.41%
	// 4      200                1.85%
	// note: paper: 105 / 152 / 200 um^2 at 0.97% / 1.4% / 1.85%
}

// fmtWriter adapts fmt printing so the example's output is captured.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
