#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and short fuzz budgets on
# the input parsers (trace files, SPICE decks), the checkpoint container
# decoder, and the scrubber snapshot decoder. Run from the repo root; any
# failure aborts the merge.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# Explicit -timeout: a deadlocked test (e.g. a campaign-harness goroutine
# leak) must fail the gate in minutes, not hang it for the default 10.
# -shuffle=on randomizes test (and package-fixture) execution order so
# hidden inter-test state dependencies fail here, not in a future refactor.
echo "== go test -race =="
go test -race -shuffle=on -timeout 5m ./...

# Bench regression smoke: re-measure the kernel benchmarks quickly and gate
# them against the committed baselines through vrlbench -compare - the PR5
# ledger for the circuit/sim kernels, the PR9 ledger for the columnar bank
# kernels. The 1.5x tolerance is deliberately generous - it catches hard
# regressions (an accidental O(n^2), lost buffer reuse, new allocations on
# the hot path) without flaking on runner noise. Alloc counts are
# deterministic and gate at the same ratio plus a small absolute slack.
# Each compare only gates the benchmarks its baseline snapshot holds, so one
# smoke run feeds both.
echo "== bench smoke (vrlbench -compare vs BENCH_PR5.json + BENCH_PR9.json) =="
SMOKE_LEDGER=$(mktemp /tmp/vrlbench-smoke.XXXXXX.json)
rm -f "$SMOKE_LEDGER" # vrlbench creates it; mktemp only reserved the name
trap 'rm -f "$SMOKE_LEDGER"' EXIT
go run ./cmd/vrlbench -label smoke -o "$SMOKE_LEDGER" -count 1 -benchtime 5x \
    -bench '^(BenchmarkSpicePreSense|BenchmarkSpicePreSenseCold|BenchmarkSimRefreshOnly|BenchmarkSimRefreshOnlyReusable|BenchmarkComputeMPRSF|BenchmarkBankBatchRefresh|BenchmarkDeviceYear|BenchmarkDeviceYearActive)$'
go run ./cmd/vrlbench -compare -base-label pr5 -head-label smoke -tolerance 1.5 \
    BENCH_PR5.json "$SMOKE_LEDGER"
go run ./cmd/vrlbench -compare -base-label pr9 -head-label smoke -tolerance 1.5 \
    BENCH_PR9.json "$SMOKE_LEDGER"

# Device-year gates: the north-star benchmarks get their own min-of-5 capture
# (single runs swing 2x on noisy runners; the min is the stable statistic)
# and two compares against committed ledgers. The first is the usual 1.5x
# regression gate on both device-year benchmarks vs the PR10 baselines. The
# second inverts the tolerance into a floor: head must stay at or below 2/3
# of the PR9 BenchmarkDeviceYear time, i.e. the fast-forward engine must keep
# a >=1.5x speedup over the pre-fast-forward batch path or the gate fails
# (the huge -alloc-slack disarms the alloc check there: a sub-1 tolerance
# would otherwise demand an alloc *reduction*, which is not what the floor
# is about - the pr10 compare above already gates allocs at 1.5x).
echo "== device-year gates (vrlbench -compare vs BENCH_PR10.json + speedup floor vs BENCH_PR9.json) =="
go run ./cmd/vrlbench -label smoke -o "$SMOKE_LEDGER" -count 5 -benchtime 5x \
    -bench '^BenchmarkDeviceYear(Active)?$'
go run ./cmd/vrlbench -compare -base-label pr10 -head-label smoke -tolerance 1.5 \
    -benchmarks '^BenchmarkDeviceYear' BENCH_PR10.json "$SMOKE_LEDGER"
go run ./cmd/vrlbench -compare -base-label pr9 -head-label smoke -tolerance 0.6667 \
    -benchmarks '^BenchmarkDeviceYear$' -alloc-slack 1000000 BENCH_PR9.json "$SMOKE_LEDGER"

# Short-budget fuzz passes: regression corpora plus a few seconds of new
# coverage-guided inputs per target. 'go test -fuzz' accepts one target per
# invocation, so one pkg:target list drives one loop - add new targets here,
# not as new stanzas.
FUZZ_TARGETS="
internal/trace:FuzzReader
internal/trace:FuzzBinaryReader
internal/circuit/spice:FuzzParseDeck
internal/circuit/spice:FuzzParseValue
internal/checkpoint:FuzzCheckpointDecode
internal/scrub:FuzzScrubStateDecode
internal/serve:FuzzFrameDecode
internal/fleet:FuzzManifestDecode
internal/scenario:FuzzScenarioDecode
internal/dram:FuzzRefreshBatch
internal/sim:FuzzFastForwardPlan
"
for entry in $FUZZ_TARGETS; do
    pkg=${entry%%:*}
    target=${entry##*:}
    echo "== fuzz $target ($pkg) =="
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=3s "./$pkg"
done

# Drain smoke: a live vrlserved on an ephemeral port runs one tiny remote
# campaign, takes a SIGTERM, and must exit 0 (clean drain) promptly.
echo "== vrlserved drain smoke =="
SERVED_DATA=$(mktemp -d /tmp/vrlserved-smoke.XXXXXX)
SERVED_OUT=$(mktemp /tmp/vrlserved-smoke-out.XXXXXX)
trap 'rm -f "$SMOKE_LEDGER" "$SERVED_OUT"; rm -rf "$SERVED_DATA"; kill "$SERVED_PID" 2>/dev/null || true' EXIT
go build -o "$SERVED_DATA/vrlserved" ./cmd/vrlserved
"$SERVED_DATA/vrlserved" -data "$SERVED_DATA/state" -listen 127.0.0.1:0 >"$SERVED_OUT" 2>&1 &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening //p' "$SERVED_OUT")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vrlserved never reported its address"; cat "$SERVED_OUT"; exit 1; }
go run ./cmd/vrlexp -remote "$ADDR" -exp fig1a -duration 0.05 >/dev/null
kill -TERM "$SERVED_PID"
SERVED_STATUS=0
wait "$SERVED_PID" || SERVED_STATUS=$?
if [ "$SERVED_STATUS" -ne 0 ]; then
    echo "vrlserved did not drain cleanly (exit $SERVED_STATUS)"
    cat "$SERVED_OUT"
    exit 1
fi

# Fleet resume smoke: a tiny campaign takes an induced shard failure plus a
# driver interrupt (-fail-shard makes vrlfleet cancel itself, exit 3), then
# a rerun over the same manifest must resume and finish with full coverage.
echo "== vrlfleet resume smoke =="
FLEET_DIR=$(mktemp -d /tmp/vrlfleet-smoke.XXXXXX)
trap 'rm -f "$SMOKE_LEDGER" "$SERVED_OUT"; rm -rf "$SERVED_DATA" "$FLEET_DIR"; kill "$SERVED_PID" 2>/dev/null || true' EXIT
# Built, not 'go run': go run reports exit 1 for any nonzero child status,
# and this smoke needs the real exit 3.
go build -o "$FLEET_DIR/vrlfleet" ./cmd/vrlfleet
FLEET_ARGS="-devices 4 -shard-size 2 -duration 0.05 -rows 256 -cols 4 -manifest $FLEET_DIR/fleet.manifest -quiet"
FLEET_STATUS=0
"$FLEET_DIR/vrlfleet" $FLEET_ARGS -fail-shard 1 || FLEET_STATUS=$?
if [ "$FLEET_STATUS" -ne 3 ]; then
    echo "vrlfleet -fail-shard must exit 3 (interrupted), got $FLEET_STATUS"
    exit 1
fi
FLEET_OUT=$("$FLEET_DIR/vrlfleet" $FLEET_ARGS)
echo "$FLEET_OUT" | grep -q "coverage: 2/2 shards done" || {
    echo "resumed vrlfleet campaign did not reach full coverage:"
    echo "$FLEET_OUT"
    exit 1
}

# Scenario catalog smoke: the same built binary runs a fresh campaign over a
# mixed workload catalog with the guard and scrub pipelines on, and the
# report must show full coverage plus the scenario/guard/scrub lines.
echo "== vrlfleet scenario smoke =="
SCEN_OUT=$("$FLEET_DIR/vrlfleet" -devices 4 -shard-size 2 -duration 0.05 -rows 256 -cols 4 \
    -scenarios "diurnal=2,vrt-storm=1,kitchen-sink=1" -guard -scrub -quiet)
echo "$SCEN_OUT" | grep -q "coverage: 2/2 shards done" || {
    echo "scenario campaign did not reach full coverage:"
    echo "$SCEN_OUT"
    exit 1
}
for want in "scenario catalog:" "guard:" "scrub:"; do
    echo "$SCEN_OUT" | grep -q "$want" || {
        echo "scenario campaign report misses \"$want\":"
        echo "$SCEN_OUT"
        exit 1
    }
done

echo "== all checks passed =="
