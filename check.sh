#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and short fuzz budgets on
# the input parsers (trace files, SPICE decks), the checkpoint container
# decoder, and the scrubber snapshot decoder. Run from the repo root; any
# failure aborts the merge.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# Explicit -timeout: a deadlocked test (e.g. a campaign-harness goroutine
# leak) must fail the gate in minutes, not hang it for the default 10.
# -shuffle=on randomizes test (and package-fixture) execution order so
# hidden inter-test state dependencies fail here, not in a future refactor.
echo "== go test -race =="
go test -race -shuffle=on -timeout 5m ./...

# Bench regression smoke: re-measure the kernel benchmarks quickly and gate
# them against the committed BENCH_PR5.json baseline through vrlbench
# -compare. The 1.5x tolerance is deliberately generous - it catches hard
# regressions (an accidental O(n^2), lost buffer reuse, new allocations on
# the hot path) without flaking on runner noise. Alloc counts are
# deterministic and gate at the same ratio plus a small absolute slack.
echo "== bench smoke (vrlbench -compare vs BENCH_PR5.json) =="
SMOKE_LEDGER=$(mktemp /tmp/vrlbench-smoke.XXXXXX.json)
rm -f "$SMOKE_LEDGER" # vrlbench creates it; mktemp only reserved the name
trap 'rm -f "$SMOKE_LEDGER"' EXIT
go run ./cmd/vrlbench -label smoke -o "$SMOKE_LEDGER" -count 1 -benchtime 5x \
    -bench '^(BenchmarkSpicePreSense|BenchmarkSpicePreSenseCold|BenchmarkSimRefreshOnly|BenchmarkSimRefreshOnlyReusable|BenchmarkComputeMPRSF)$'
go run ./cmd/vrlbench -compare -base-label pr5 -head-label smoke -tolerance 1.5 \
    BENCH_PR5.json "$SMOKE_LEDGER"

# Short-budget fuzz passes: regression corpora plus a few seconds of new
# coverage-guided inputs per target. 'go test -fuzz' accepts one target per
# invocation, hence the loops.
for target in FuzzReader FuzzBinaryReader; do
    echo "== fuzz $target (internal/trace) =="
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=3s ./internal/trace
done
for target in FuzzParseDeck FuzzParseValue; do
    echo "== fuzz $target (internal/circuit/spice) =="
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=3s ./internal/circuit/spice
done
echo "== fuzz FuzzCheckpointDecode (internal/checkpoint) =="
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=3s ./internal/checkpoint
echo "== fuzz FuzzScrubStateDecode (internal/scrub) =="
go test -run='^$' -fuzz='^FuzzScrubStateDecode$' -fuzztime=3s ./internal/scrub

echo "== all checks passed =="
