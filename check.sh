#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and short fuzz budgets on
# the input parsers (trace files, SPICE decks), the checkpoint container
# decoder, and the scrubber snapshot decoder. Run from the repo root; any
# failure aborts the merge.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# Explicit -timeout: a deadlocked test (e.g. a campaign-harness goroutine
# leak) must fail the gate in minutes, not hang it for the default 10.
# -shuffle=on randomizes test (and package-fixture) execution order so
# hidden inter-test state dependencies fail here, not in a future refactor.
echo "== go test -race =="
go test -race -shuffle=on -timeout 5m ./...

# Smoke benchmark: one iteration of the hot simulator loop, so a change
# that breaks the benchmark harness (or regresses it into pathology) fails
# the gate without paying for a full -bench=. sweep.
echo "== bench smoke (BenchmarkSimRefreshOnly) =="
go test -run='^$' -bench='^BenchmarkSimRefreshOnly$' -benchtime=1x -benchmem .

# Short-budget fuzz passes: regression corpora plus a few seconds of new
# coverage-guided inputs per target. 'go test -fuzz' accepts one target per
# invocation, hence the loops.
for target in FuzzReader FuzzBinaryReader; do
    echo "== fuzz $target (internal/trace) =="
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=3s ./internal/trace
done
for target in FuzzParseDeck FuzzParseValue; do
    echo "== fuzz $target (internal/circuit/spice) =="
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=3s ./internal/circuit/spice
done
echo "== fuzz FuzzCheckpointDecode (internal/checkpoint) =="
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=3s ./internal/checkpoint
echo "== fuzz FuzzScrubStateDecode (internal/scrub) =="
go test -run='^$' -fuzz='^FuzzScrubStateDecode$' -fuzztime=3s ./internal/scrub

echo "== all checks passed =="
