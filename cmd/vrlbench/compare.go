package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// compareOpts configures the -compare gate.
type compareOpts struct {
	basePath, headPath   string
	baseLabel, headLabel string
	// filter, when non-nil, restricts the comparison to benchmark names it
	// matches, so one gate can hold a targeted subset (say, the device-year
	// family) to a different tolerance than the full suite.
	filter *regexp.Regexp
	// tolerance is the allowed head/base ratio on ns/op (min over runs) and
	// allocs/op before a benchmark counts as a regression. 1.0 means "no
	// slower at all"; the check.sh gate uses 1.5 to absorb machine noise.
	tolerance float64
	// allocSlack is an absolute allocs/op allowance on top of the ratio, so
	// a 0->1 or 9->10 alloc drift in tiny counts does not trip the ratio
	// gate (which is meaningless near zero).
	allocSlack float64
}

// loadSnapshot reads a ledger and selects one snapshot. An empty label picks
// the ledger's only snapshot and errors when the choice is ambiguous.
func loadSnapshot(path, label string) (*Snapshot, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var ledger Ledger
	if err := json.Unmarshal(data, &ledger); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if len(ledger.Snapshots) == 0 {
		return nil, "", fmt.Errorf("%s: ledger has no snapshots", path)
	}
	if label == "" {
		if len(ledger.Snapshots) == 1 {
			for l, s := range ledger.Snapshots {
				return s, l, nil
			}
		}
		labels := make([]string, 0, len(ledger.Snapshots))
		for l := range ledger.Snapshots {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		return nil, "", fmt.Errorf("%s holds %d snapshots %v; pick one with -base-label/-head-label", path, len(labels), labels)
	}
	s := ledger.Snapshots[label]
	if s == nil {
		return nil, "", fmt.Errorf("%s: no snapshot labeled %q", path, label)
	}
	return s, label, nil
}

// runCompare diffs two snapshots benchmark by benchmark, prints per-metric
// deltas, and returns the number of regressions (ns/op or allocs/op past
// tolerance). B/op is reported but never gates: byte deltas track allocs and
// double-counting them would double-report one underlying change.
func runCompare(o compareOpts) (int, error) {
	base, baseLabel, err := loadSnapshot(o.basePath, o.baseLabel)
	if err != nil {
		return 0, err
	}
	head, headLabel, err := loadSnapshot(o.headPath, o.headLabel)
	if err != nil {
		return 0, err
	}
	fmt.Printf("vrlbench compare: base=%s[%s] head=%s[%s] tolerance=%.2fx\n",
		o.basePath, baseLabel, o.headPath, headLabel, o.tolerance)

	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		if head.Benchmarks[n] != nil && (o.filter == nil || o.filter.MatchString(n)) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		if o.filter != nil {
			return 0, fmt.Errorf("snapshots share no benchmarks matching -benchmarks %q", o.filter)
		}
		return 0, fmt.Errorf("snapshots share no benchmarks")
	}

	regressions := 0
	for _, n := range names {
		b, h := base.Benchmarks[n], head.Benchmarks[n]
		nsRatio := ratio(h.MinNsOp, b.MinNsOp)
		verdict := "ok"
		if nsRatio > o.tolerance {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-32s ns/op %12.0f -> %12.0f  (%s, %s)\n",
			n, b.MinNsOp, h.MinNsOp, ratioStr(nsRatio), verdict)
		if b.MeanBOp != 0 || h.MeanBOp != 0 {
			fmt.Printf("  %-32s B/op  %12.0f -> %12.0f  (%s)\n",
				"", b.MeanBOp, h.MeanBOp, ratioStr(ratio(h.MeanBOp, b.MeanBOp)))
		}
		if b.MeanAllocsOp != 0 || h.MeanAllocsOp != 0 {
			allocVerdict := "ok"
			if h.MeanAllocsOp > b.MeanAllocsOp*o.tolerance+o.allocSlack {
				allocVerdict = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-32s allocs%12.0f -> %12.0f  (%s, %s)\n",
				"", b.MeanAllocsOp, h.MeanAllocsOp, ratioStr(ratio(h.MeanAllocsOp, b.MeanAllocsOp)), allocVerdict)
		}
	}
	for n := range base.Benchmarks {
		if head.Benchmarks[n] == nil && (o.filter == nil || o.filter.MatchString(n)) {
			fmt.Printf("  %-32s only in base snapshot\n", n)
		}
	}
	for n := range head.Benchmarks {
		if base.Benchmarks[n] == nil && (o.filter == nil || o.filter.MatchString(n)) {
			fmt.Printf("  %-32s only in head snapshot\n", n)
		}
	}
	if regressions > 0 {
		fmt.Printf("vrlbench compare: %d regression(s) past %.2fx tolerance\n", regressions, o.tolerance)
	} else {
		fmt.Printf("vrlbench compare: no regressions across %d benchmark(s)\n", len(names))
	}
	return regressions, nil
}

// ratio returns head/base, treating a zero base as "no change" when head is
// also zero and as infinitely worse otherwise.
func ratio(head, base float64) float64 {
	if base == 0 {
		if head == 0 {
			return 1
		}
		return 1e308
	}
	return head / base
}

func ratioStr(r float64) string {
	if r >= 1e300 {
		return "0 -> nonzero"
	}
	if r <= 1 {
		return fmt.Sprintf("%.2fx faster", 1/r)
	}
	return fmt.Sprintf("%.2fx slower", r)
}
