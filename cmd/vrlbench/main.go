// Command vrlbench runs the repository's benchmark suite (or parses an
// existing `go test -bench` transcript) and records the results as a labeled
// snapshot in a JSON ledger, so performance PRs can commit machine-readable
// before/after evidence instead of pasted terminal output.
//
// Usage:
//
//	vrlbench -label after -o BENCH.json                      # run the suite
//	vrlbench -label after -bench 'Figure4|SimRefreshOnly'    # a subset
//	vrlbench -label before -parse old-bench.txt -o BENCH.json
//
// Snapshots merge into the ledger by label: re-running with the same label
// replaces that snapshot and leaves the others untouched, so a "before" taken
// at the base commit survives any number of "after" refreshes.
//
// The -compare mode diffs two snapshots and gates on regressions:
//
//	vrlbench -compare old.json new.json                      # one snapshot each
//	vrlbench -compare -base-label pr4 -head-label pr5 BENCH.json BENCH.json
//	vrlbench -compare -tolerance 1.5 old.json new.json       # CI noise margin
//
// It prints per-benchmark ns/op, B/op, and allocs/op deltas and exits nonzero
// when head ns/op (min over runs) or allocs/op exceeds base by more than
// -tolerance; check.sh uses this against the committed BENCH_PR5.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Run is one benchmark line: the three -benchmem metrics.
type Run struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
}

// Bench aggregates the runs of one benchmark across -count repetitions.
type Bench struct {
	Runs         []Run   `json:"runs"`
	MeanNsOp     float64 `json:"mean_ns_op"`
	MinNsOp      float64 `json:"min_ns_op"`
	MeanBOp      float64 `json:"mean_b_op,omitempty"`
	MeanAllocsOp float64 `json:"mean_allocs_op,omitempty"`
}

// Snapshot is one labeled benchmark capture.
type Snapshot struct {
	Taken      string            `json:"taken"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Command    string            `json:"command,omitempty"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// Ledger is the file format: snapshots by label.
type Ledger struct {
	Snapshots map[string]*Snapshot `json:"snapshots"`
}

func main() {
	var (
		label     = flag.String("label", "", "snapshot label in the ledger (e.g. before, after); required")
		out       = flag.String("o", "BENCH.json", "ledger file to create or merge into")
		parse     = flag.String("parse", "", "parse this `go test -bench` transcript instead of running the suite")
		bench     = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		count     = flag.Int("count", 3, "repetitions per benchmark (go test -count)")
		benchtime = flag.String("benchtime", "2x", "per-benchmark budget (go test -benchtime)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		note      = flag.String("note", "", "free-form note stored with the snapshot")

		compare    = flag.Bool("compare", false, "compare two ledgers: vrlbench -compare [flags] base.json head.json")
		baseLabel  = flag.String("base-label", "", "snapshot label in the base ledger (default: its only snapshot)")
		headLabel  = flag.String("head-label", "", "snapshot label in the head ledger (default: its only snapshot)")
		tolerance  = flag.Float64("tolerance", 1.1, "allowed head/base ratio on ns/op and allocs/op before failing")
		allocSlack = flag.Float64("alloc-slack", 2, "absolute allocs/op allowance on top of -tolerance")
		benchNames = flag.String("benchmarks", "", "regex restricting -compare to matching benchmark names (empty = all shared)")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two ledger paths, got %d", flag.NArg()))
		}
		var filter *regexp.Regexp
		if *benchNames != "" {
			var err error
			filter, err = regexp.Compile(*benchNames)
			if err != nil {
				fatal(fmt.Errorf("-benchmarks: %w", err))
			}
		}
		regressions, err := runCompare(compareOpts{
			basePath:   flag.Arg(0),
			headPath:   flag.Arg(1),
			baseLabel:  *baseLabel,
			headLabel:  *headLabel,
			tolerance:  *tolerance,
			allocSlack: *allocSlack,
			filter:     filter,
		})
		if err != nil {
			fatal(err)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if *label == "" {
		fatal(fmt.Errorf("-label is required"))
	}

	snap := &Snapshot{
		Taken:      time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: map[string]*Bench{},
	}

	var transcript io.Reader
	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		transcript = f
		snap.Command = "parsed from " + *parse
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count), "-benchtime", *benchtime, *pkg}
		snap.Command = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "vrlbench: %s\n", snap.Command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			os.Stderr.Write(outBytes)
			fatal(fmt.Errorf("go test: %w", err))
		}
		os.Stderr.Write(outBytes) // keep the raw transcript visible
		transcript = strings.NewReader(string(outBytes))
	}

	if err := parseTranscript(transcript, snap); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	for _, b := range snap.Benchmarks {
		b.finalize()
	}

	ledger := &Ledger{Snapshots: map[string]*Snapshot{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, ledger); err != nil {
			fatal(fmt.Errorf("existing ledger %s is not valid JSON: %w", *out, err))
		}
		if ledger.Snapshots == nil {
			ledger.Snapshots = map[string]*Snapshot{}
		}
	}
	ledger.Snapshots[*label] = snap

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(snap.Benchmarks))
	for n := range snap.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("vrlbench: wrote snapshot %q (%d benchmarks) to %s\n", *label, len(names), *out)
	for _, n := range names {
		b := snap.Benchmarks[n]
		fmt.Printf("  %-28s %12.0f ns/op  %10.0f B/op  %8.0f allocs/op  (%d runs)\n",
			n, b.MeanNsOp, b.MeanBOp, b.MeanAllocsOp, len(b.Runs))
	}
}

// benchLine matches one `go test -bench` result line. Custom b.ReportMetric
// columns (e.g. "38929221 rows/s") may sit between ns/op and the -benchmem
// pair, so the B/op and allocs/op groups scan past them lazily instead of
// demanding adjacency.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseTranscript extracts benchmark lines and environment headers from a
// `go test -bench` transcript into snap.
func parseTranscript(r io.Reader, snap *Snapshot) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("parsing %q: %w", line, err)
		}
		run := Run{NsOp: ns}
		if m[3] != "" {
			run.BOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			run.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		b := snap.Benchmarks[m[1]]
		if b == nil {
			b = &Bench{}
			snap.Benchmarks[m[1]] = b
		}
		b.Runs = append(b.Runs, run)
	}
	return sc.Err()
}

func (b *Bench) finalize() {
	var ns, bytes, allocs float64
	b.MinNsOp = b.Runs[0].NsOp
	for _, r := range b.Runs {
		ns += r.NsOp
		bytes += float64(r.BOp)
		allocs += float64(r.AllocsOp)
		if r.NsOp < b.MinNsOp {
			b.MinNsOp = r.NsOp
		}
	}
	n := float64(len(b.Runs))
	b.MeanNsOp = ns / n
	b.MeanBOp = bytes / n
	b.MeanAllocsOp = allocs / n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vrlbench: %v\n", err)
	os.Exit(1)
}
