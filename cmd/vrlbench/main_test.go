package main

import (
	"strings"
	"testing"
)

// TestParseTranscriptCustomMetrics pins the parser against the output shapes
// go test -bench actually emits: plain lines, -benchmem lines, and lines
// where b.ReportMetric inserts custom columns between ns/op and the
// -benchmem pair (which an adjacency-only pattern would silently drop).
func TestParseTranscriptCustomMetrics(t *testing.T) {
	transcript := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkPlain-8           \t    1000\t      1234 ns/op",
		"BenchmarkMem-8             \t     500\t      5678 ns/op\t     256 B/op\t       4 allocs/op",
		"BenchmarkBankBatchRefresh \t    7608\t    210427 ns/op\t  38930433 rows/s\t       0 B/op\t       0 allocs/op",
		"BenchmarkDeviceYear       \t     175\t   6926244 ns/op\t  71150751 ms/device-year\t  533131 B/op\t       9 allocs/op",
		"PASS",
	}, "\n")
	snap := &Snapshot{Benchmarks: map[string]*Bench{}}
	if err := parseTranscript(strings.NewReader(transcript), snap); err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU == "" {
		t.Fatalf("environment headers not captured: %+v", snap)
	}
	want := map[string]Run{
		"BenchmarkPlain":            {NsOp: 1234},
		"BenchmarkMem":              {NsOp: 5678, BOp: 256, AllocsOp: 4},
		"BenchmarkBankBatchRefresh": {NsOp: 210427, BOp: 0, AllocsOp: 0},
		"BenchmarkDeviceYear":       {NsOp: 6926244, BOp: 533131, AllocsOp: 9},
	}
	if len(snap.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d", len(snap.Benchmarks), len(want))
	}
	for name, w := range want {
		b := snap.Benchmarks[name]
		if b == nil || len(b.Runs) != 1 {
			t.Fatalf("%s: missing or wrong run count: %+v", name, b)
		}
		if b.Runs[0] != w {
			t.Fatalf("%s: run %+v, want %+v", name, b.Runs[0], w)
		}
	}
}
