// Command vrlprof runs a REAPER-style retention profiling campaign against a
// simulated chip and reports the measured binning - the step the paper
// assumes has already happened ("we assume retention profiling data is
// available").
//
// Usage:
//
//	vrlprof -rows 8192 -cols 32 -seed 42
//	vrlprof -rows 2048 -margin 0.9
package main

import (
	"flag"
	"fmt"
	"sort"

	"vrldram/internal/cli"
	"vrldram/internal/device"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
)

func main() {
	var (
		rows   = flag.Int("rows", device.PaperBank.Rows, "chip rows")
		cols   = flag.Int("cols", device.PaperBank.Cols, "chip columns")
		seed   = flag.Int64("seed", 42, "deterministic chip seed")
		margin = flag.Float64("margin", retention.ProfilerGuardband, "profiling margin (intervals tested at interval/margin)")
	)
	flag.Parse()
	cli.InterruptExit("vrlprof")

	geom := device.BankGeometry{Rows: *rows, Cols: *cols}
	dist := retention.DefaultCellDistribution()
	chip, err := retention.NewSampledProfile(geom, dist, *seed)
	if err != nil {
		fatal(err)
	}
	chip.Profiled = append([]float64(nil), chip.True...) // profiling must not peek

	res, err := profiler.Profile(chip, retention.ExpDecay{}, profiler.Options{Margin: *margin})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profiled %s chip: %d test rounds\n", geom, res.Rounds)
	if bad := profiler.VerifyConservative(res); bad != 0 {
		fatal(fmt.Errorf("UNSOUND: %d rows overestimated", bad))
	}
	fmt.Println("soundness: no measured retention exceeds the worst-pattern truth")

	counts, err := res.Profile.BinCounts(retention.RAIDRBins)
	if err != nil {
		fatal(err)
	}
	bins := make([]float64, 0, len(counts))
	for b := range counts {
		bins = append(bins, b)
	}
	sort.Float64s(bins)
	fmt.Println("\nRAIDR binning of the measured profile:")
	for _, b := range bins {
		fmt.Printf("  %4.0f ms: %6d rows\n", b*1000, counts[b])
	}

	// Measured distribution summary.
	vals := append([]float64(nil), res.Profile.Profiled...)
	sort.Float64s(vals)
	fmt.Printf("\nmeasured retention: min %.0f ms, median %.0f ms, max %.0f ms\n",
		vals[0]*1000, vals[len(vals)/2]*1000, vals[len(vals)-1]*1000)
}

func fatal(err error) { cli.Fatal("vrlprof", err) }
