// Command vrlfleet runs a fault-tolerant campaign over a population of
// simulated DRAM devices: the population is deterministically derived from
// the spec (per-device retention seed, operating temperature, fault plan),
// partitioned into shards, and dispatched across local workers and/or a
// remote vrlserved instance with per-shard retries, straggler hedging, and
// poison-shard quarantine. Per-shard state persists in a CRC-checked
// manifest, so an interrupted campaign rerun with the same -manifest resumes
// exactly where it died and produces bit-identical statistics.
//
// Usage:
//
//	vrlfleet -devices 4096 -duration 0.256
//	vrlfleet -devices 4096 -duration 0.256 -manifest ./fleet.manifest \
//	         -serve 127.0.0.1:7421 -weak-frac 0.05 -temp-swing 12
//
// SIGINT/SIGTERM interrupts the campaign (exit 3) without charging retry
// budgets; quarantined shards are reported and never fail the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"vrldram/internal/cli"
	"vrldram/internal/fleet"
	"vrldram/internal/scenario"
	"vrldram/internal/serve"
	"vrldram/internal/sim"
)

func main() {
	var (
		devices   = flag.Int("devices", 0, "population size (required)")
		seed      = flag.Int64("seed", 0, "campaign master seed (0 = default 42)")
		scheduler = flag.String("scheduler", "", "refresh policy per device: jedec, raidr, vrl, vrl-access (default vrl)")
		duration  = flag.Float64("duration", 0, "simulated seconds per device (required)")
		rows      = flag.Int("rows", 0, "per-device bank rows (0 = default 1024)")
		cols      = flag.Int("cols", 0, "per-device bank columns (0 = default 8)")
		shardSize = flag.Int("shard-size", 0, "devices per shard (0 = default 64)")
		tempMean  = flag.Float64("temp-mean", 0, "mean operating temperature, degC (0 = default 85)")
		tempSwing = flag.Float64("temp-swing", 0, "per-device temperature spread around the mean, degC")
		weakFrac  = flag.Float64("weak-frac", 0, "fraction of devices with a transient-weak-cell fault plan")

		scenarios  = flag.String("scenarios", "", "workload catalog as a weighted scenario mixture, e.g. diurnal=3,vrt-storm=1 (empty = no scenario layer; see vrlfault -list-scenarios)")
		guardOn    = flag.Bool("guard", false, "wrap every device's scheduler in the graceful-degradation guard")
		scrubOn    = flag.Bool("scrub", false, "wire the online ECC patrol scrub and repair pipeline into every device")
		spares     = flag.Int("spares", 0, "per-device spare-row budget when scrubbing (0 = default, negative = none)")
		scrubSweep = flag.Float64("scrub-sweep", 0, "patrol sweep period in seconds when scrubbing (0 = default)")

		manifest    = flag.String("manifest", "", "manifest path for resumable campaign state (empty = in-memory)")
		maxAttempts = flag.Int("max-attempts", 0, "per-shard attempt budget before quarantine (0 = default 3)")
		shardTO     = flag.Duration("shard-timeout", 0, "per-attempt deadline (0 = default 10m, negative = none)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "duplicate a shard running this long onto an idle slot (0 = off)")

		local      = flag.Int("local", 0, "local executor slots (0 = GOMAXPROCS, negative = no local execution)")
		serveAddr  = flag.String("serve", "", "vrlserved address to dispatch shards to (empty = local only)")
		serveSlots = flag.Int("serve-slots", 4, "concurrent shards against -serve")

		failShard = flag.Int("fail-shard", -1, "chaos drill: fail this shard's first attempt, then interrupt the campaign (exit 3); rerun with the same -manifest to resume")
		quiet     = flag.Bool("quiet", false, "suppress dispatch log lines")
		backend   = flag.String("backend", "", "simulator backend per device (default auto; see -list-backends)")
		listBack  = flag.Bool("list-backends", false, "print the valid -backend names and exit")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	)
	flag.Parse()
	if *listBack {
		for _, name := range sim.BackendNames() {
			fmt.Println(name)
		}
		os.Exit(0)
	}
	prof := cli.StartProfiles("vrlfleet", *cpuprofile, *memprofile)

	// Install the signal handler before anything that can block or fail
	// (manifest load, executor dial): an early SIGINT must still take the
	// interrupt path - exit 3, manifest intact and resumable - rather than
	// the runtime's default kill.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	if *local < 0 && *serveAddr == "" {
		fatal(fmt.Errorf("no executors: -local is negative and -serve is empty"))
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "vrlfleet: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	spec := fleet.Spec{
		Devices:    *devices,
		Seed:       *seed,
		Scheduler:  *scheduler,
		Duration:   *duration,
		Rows:       *rows,
		Cols:       *cols,
		ShardSize:  *shardSize,
		TempMeanC:  *tempMean,
		TempSwingC: *tempSwing,
		WeakFrac:   *weakFrac,
		Guard:      *guardOn,
		Scrub:      *scrubOn,
		Spares:     *spares,
		ScrubSweep: *scrubSweep,
	}
	if *scenarios != "" {
		mix, err := scenario.ParseMix(*scenarios)
		if err != nil {
			fatal(err)
		}
		spec.Scenarios = mix
	}
	// An unknown backend name is a usage error, not a runtime failure:
	// exit 2 so scripts can tell a typo from a campaign that broke.
	be, err := sim.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vrlfleet: %v\n", err)
		os.Exit(2)
	}
	spec.Backend = be

	var execs []fleet.Executor
	if *local >= 0 {
		execs = append(execs, fleet.NewLocalExecutor(*local))
	}
	if *serveAddr != "" {
		execs = append(execs, serve.NewShardExecutor(serve.ClientOptions{Addr: *serveAddr, Logf: logf}, *serveSlots))
	}

	opts := fleet.Options{
		ManifestPath: *manifest,
		MaxAttempts:  *maxAttempts,
		ShardTimeout: *shardTO,
		HedgeAfter:   *hedgeAfter,
		Logf:         logf,
	}
	if *failShard >= 0 {
		// The chaos drill: the shard's first attempt fails AND the driver
		// "dies" (context cancel), exercising the failure-then-resume path
		// end to end without a second process.
		interrupt := stop
		opts.PreShard = func(shard, attempt int) error {
			if shard == *failShard && attempt == 1 {
				interrupt()
				return fmt.Errorf("induced failure (-fail-shard %d)", shard)
			}
			return nil
		}
	}

	rep, err := fleet.Run(ctx, spec, execs, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "vrlfleet: interrupted; rerun with the same -manifest to resume")
			prof.Exit(cli.StatusInterrupted)
		}
		fatal(err)
	}
	rep.Fprint(os.Stdout)
	prof.Exit(0)
}

func fatal(err error) { cli.Fatal("vrlfleet", err) }
