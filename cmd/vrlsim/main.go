// Command vrlsim runs a trace-driven refresh simulation of one scheduling
// policy and reports its refresh overhead, operation mix, energy, and data
// integrity.
//
// Usage:
//
//	vrlsim -sched vrl-access -bench streamcluster
//	vrlsim -sched raidr -duration 0.768
//	vrlsim -sched vrl-access -trace accesses.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vrldram"
	"vrldram/internal/trace"
)

func main() {
	var (
		sched     = flag.String("sched", "vrl", "scheduler: jedec, raidr, vrl, vrl-access")
		bench     = flag.String("bench", "", "synthetic benchmark name (see vrltrace -list); empty = refresh-only")
		traceFile = flag.String("trace", "", "replay a trace file instead of a synthetic benchmark")
		duration  = flag.Float64("duration", 0.768, "simulated seconds")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		rows      = flag.Int("rows", 8192, "bank rows")
		cols      = flag.Int("cols", 32, "bank columns")
		nbits     = flag.Int("nbits", 2, "counter width")
		guardband = flag.Float64("guardband", 0, "scheduling charge guardband (0 = default)")
		pattern   = flag.String("pattern", "all-0", "stored data pattern: all-0, all-1, alternating, random")
	)
	flag.Parse()

	sys, err := vrldram.NewSystem(vrldram.Options{
		Rows: *rows, Cols: *cols, Seed: *seed,
		NBits: *nbits, Guardband: *guardband, Pattern: *pattern,
	})
	if err != nil {
		fatal(err)
	}

	var accesses []vrldram.Access
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		src, err := trace.OpenSource(f) // text, binary, or gzip - autodetected
		if err != nil {
			fatal(err)
		}
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			accesses = append(accesses, vrldram.Access{Time: r.Time, Row: r.Row, Write: r.Op == trace.Write})
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	case *bench != "":
		accesses, err = sys.GenerateTrace(*bench, *duration)
		if err != nil {
			fatal(err)
		}
	}

	st, err := sys.Simulate(vrldram.SchedulerKind(*sched), accesses, *duration)
	if err != nil {
		fatal(err)
	}
	printStats(os.Stdout, st)
	if st.Violations > 0 {
		fmt.Fprintf(os.Stderr, "vrlsim: WARNING: %d data-integrity violations\n", st.Violations)
		os.Exit(2)
	}
}

func printStats(w io.Writer, st vrldram.Stats) {
	fmt.Fprintf(w, "scheduler:          %s\n", st.Scheduler)
	fmt.Fprintf(w, "simulated:          %.3f s\n", st.Duration)
	fmt.Fprintf(w, "full refreshes:     %d\n", st.FullRefreshes)
	fmt.Fprintf(w, "partial refreshes:  %d\n", st.PartialRefreshes)
	fmt.Fprintf(w, "busy cycles:        %d\n", st.BusyCycles)
	fmt.Fprintf(w, "refresh overhead:   %.5f%% of time\n", 100*st.OverheadFraction)
	fmt.Fprintf(w, "accesses replayed:  %d\n", st.Accesses)
	fmt.Fprintf(w, "refresh energy:     %.3f uJ\n", st.RefreshEnergy*1e6)
	fmt.Fprintf(w, "violations:         %d\n", st.Violations)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vrlsim: %v\n", err)
	os.Exit(1)
}
