// Command vrlsim runs a trace-driven refresh simulation of one scheduling
// policy and reports its refresh overhead, operation mix, energy, and data
// integrity. Long runs can be made crash-safe: -checkpoint snapshots the
// full simulation state periodically (and on SIGINT/SIGTERM), and -resume
// continues an interrupted run to the same results it would have produced
// uninterrupted.
//
// Usage:
//
//	vrlsim -sched vrl-access -bench streamcluster
//	vrlsim -sched raidr -duration 0.768
//	vrlsim -sched vrl-access -trace accesses.trc
//	vrlsim -sched vrl -bench bgsave -checkpoint run.ckpt          # crash-safe
//	vrlsim -sched vrl -bench bgsave -checkpoint run.ckpt -resume  # continue
//
// Exit status: 0 on success, 1 on error, 2 on data-integrity violations or
// usage errors (e.g. an unknown -backend), 3 when interrupted or timed out
// (after writing a final checkpoint when -checkpoint is set).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"vrldram"
	"vrldram/internal/cli"
	"vrldram/internal/trace"
)

func main() {
	var (
		sched     = flag.String("sched", "vrl", "scheduler: jedec, raidr, vrl, vrl-access")
		bench     = flag.String("bench", "", "synthetic benchmark name (see vrltrace -list); empty = refresh-only")
		traceFile = flag.String("trace", "", "replay a trace file instead of a synthetic benchmark")
		duration  = flag.Float64("duration", 0.768, "simulated seconds")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		rows      = flag.Int("rows", 8192, "bank rows")
		cols      = flag.Int("cols", 32, "bank columns")
		nbits     = flag.Int("nbits", 2, "counter width")
		guardband = flag.Float64("guardband", 0, "scheduling charge guardband (0 = default)")
		pattern   = flag.String("pattern", "all-0", "stored data pattern: all-0, all-1, alternating, random")
		backend   = flag.String("backend", "", "simulator backend (default auto; see -list-backends)")
		listBack  = flag.Bool("list-backends", false, "print the valid -backend names and exit")

		ckptPath  = flag.String("checkpoint", "", "write crash-safe snapshots to this file (atomic, CRC-checked, 3 generations)")
		ckptEvery = flag.Float64("checkpoint-every", 0, "simulated seconds between snapshots (0 = duration/8)")
		resume    = flag.Bool("resume", false, "resume from the newest good generation of -checkpoint")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none); expiry behaves like SIGINT")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	)
	flag.Parse()

	if *listBack {
		for _, name := range vrldram.BackendNames() {
			fmt.Println(name)
		}
		os.Exit(0)
	}
	// An unknown backend name is a usage error: reject it up front with
	// exit 2 (the violation exit stays distinguishable because integrity
	// violations only surface after a run that started successfully).
	if _, err := vrldram.ParseBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "vrlsim: %v\n", err)
		os.Exit(2)
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	prof := cli.StartProfiles("vrlsim", *cpuprofile, *memprofile)

	// Catch SIGINT/SIGTERM before the (possibly long) trace build: an early
	// interrupt then cancels the run - which still writes a final checkpoint
	// when -checkpoint is set - instead of killing the process outright.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sys, err := vrldram.NewSystem(vrldram.Options{
		Rows: *rows, Cols: *cols, Seed: *seed,
		NBits: *nbits, Guardband: *guardband, Pattern: *pattern,
	})
	if err != nil {
		fatal(err)
	}

	// The access stream must be rebuilt identically on resume, so both the
	// synthetic generators (deterministic in seed) and trace files (re-read
	// from the start; the simulator skips to the checkpointed position) work.
	var accesses []vrldram.Access
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		src, err := trace.OpenSource(f) // text, binary, or gzip - autodetected
		if err != nil {
			fatal(err)
		}
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			accesses = append(accesses, vrldram.Access{Time: r.Time, Row: r.Row, Write: r.Op == trace.Write})
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	case *bench != "":
		accesses, err = sys.GenerateTrace(*bench, *duration)
		if err != nil {
			fatal(err)
		}
	}

	st, err := sys.SimulateControlled(vrldram.SchedulerKind(*sched), accesses, *duration, vrldram.RunControl{
		Context:         ctx,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		Backend:         *backend,
		OnEvent:         func(msg string) { fmt.Fprintf(os.Stderr, "vrlsim: %s\n", msg) },
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			printStats(os.Stdout, st)
			fmt.Fprintf(os.Stderr, "vrlsim: interrupted: %v\n", err)
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "vrlsim: final checkpoint written to %s; rerun with -resume to continue\n", *ckptPath)
			}
			prof.Exit(cli.StatusInterrupted)
		}
		fatal(err)
	}
	printStats(os.Stdout, st)
	if st.Violations > 0 {
		fmt.Fprintf(os.Stderr, "vrlsim: WARNING: %d data-integrity violations\n", st.Violations)
		prof.Exit(2)
	}
	prof.Exit(0)
}

func printStats(w io.Writer, st vrldram.Stats) {
	fmt.Fprintf(w, "scheduler:          %s\n", st.Scheduler)
	fmt.Fprintf(w, "simulated:          %.3f s\n", st.Duration)
	fmt.Fprintf(w, "full refreshes:     %d\n", st.FullRefreshes)
	fmt.Fprintf(w, "partial refreshes:  %d\n", st.PartialRefreshes)
	fmt.Fprintf(w, "busy cycles:        %d\n", st.BusyCycles)
	fmt.Fprintf(w, "refresh overhead:   %.5f%% of time\n", 100*st.OverheadFraction)
	fmt.Fprintf(w, "accesses replayed:  %d\n", st.Accesses)
	fmt.Fprintf(w, "refresh energy:     %.3f uJ\n", st.RefreshEnergy*1e6)
	fmt.Fprintf(w, "violations:         %d\n", st.Violations)
}

func fatal(err error) { cli.Fatal("vrlsim", err) }
