// Command vrlserved is the crash-tolerant simulation service: clients
// (vrlexp -remote, or anything speaking the serve wire protocol) submit
// simulation and campaign sessions, stream traces incrementally, disconnect,
// reconnect, and pick their session back up - across server restarts
// included, because every session's spec, trace spool, and job progress are
// durable under -data.
//
// Usage:
//
//	vrlserved -data /var/lib/vrlserved
//	vrlserved -data ./state -listen 127.0.0.1:7421 -max-sessions 32
//
// SIGINT/SIGTERM drains gracefully: running jobs write a final checkpoint
// and park, attached clients are told to retry, and the process exits 0
// once everything has stopped. A later vrlserved over the same -data
// resumes every in-flight session.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"vrldram/internal/cli"
	"vrldram/internal/serve"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7421", "TCP listen address (port 0 = ephemeral, printed at startup)")
		dataDir     = flag.String("data", "", "durable session state directory (required)")
		maxSessions = flag.Int("max-sessions", 0, "live session bound (0 = default)")
		workers     = flag.Int("workers", 0, "shared job worker pool size (0 = GOMAXPROCS)")
		idle        = flag.Duration("idle-timeout", 0, "half-open connection reaping timeout (0 = default)")
		ckptEvery   = flag.Float64("checkpoint-every", 0, "simulated seconds between job checkpoints (0 = duration/8)")
		quiet       = flag.Bool("quiet", false, "suppress operational log lines")
	)
	flag.Parse()

	if *dataDir == "" {
		fatal(fmt.Errorf("-data is required"))
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "vrlserved: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	srv, err := serve.New(serve.Options{
		DataDir:         *dataDir,
		MaxSessions:     *maxSessions,
		Workers:         *workers,
		IdleTimeout:     *idle,
		CheckpointEvery: *ckptEvery,
		Logf:            logf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// The resolved address goes to stdout so scripts using an ephemeral port
	// (-listen 127.0.0.1:0) can discover where to connect.
	fmt.Printf("listening %s\n", ln.Addr())

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	start := time.Now()
	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	if logf != nil {
		logf("drained cleanly after %v", time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) { cli.Fatal("vrlserved", err) }
