// Command vrltrace generates and inspects the synthetic memory traces the
// evaluation uses.
//
// Usage:
//
//	vrltrace -list
//	vrltrace -bench streamcluster -duration 0.768 -o sc.trc
//	vrltrace -stats sc.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vrldram/internal/cli"
	"vrldram/internal/device"
	"vrldram/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list benchmark names and exit")
		bench    = flag.String("bench", "", "benchmark to generate")
		rows     = flag.Int("rows", device.PaperBank.Rows, "bank rows")
		duration = flag.Float64("duration", 0.768, "trace duration in seconds")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "text", "output format: text, binary, or gzip (binary+gzip)")
		stats    = flag.String("stats", "", "analyze an existing trace file and exit")
	)
	flag.Parse()
	cli.InterruptExit("vrltrace")

	switch {
	case *list:
		for _, b := range trace.PARSEC() {
			fmt.Printf("%-14s footprint=%.0f%% sweep=%.0f%% hot=%d/%d-per-window write=%.0f%%\n",
				b.Name, 100*b.FootprintFrac, 100*b.SweepFrac, b.HotRows, b.HotAccessesPerWindow, 100*b.WriteFrac)
		}
	case *stats != "":
		f, err := os.Open(*stats)
		if err != nil {
			fatal(err)
		}
		src, err := trace.OpenSource(f)
		if err != nil {
			fatal(err)
		}
		var recs []trace.Record
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			recs = append(recs, r)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		end := 0.0
		if len(recs) > 0 {
			end = recs[len(recs)-1].Time
		}
		st := trace.Analyze(recs, *rows, end)
		fmt.Printf("records:       %d (%d reads, %d writes)\n", st.Records, st.Reads, st.Writes)
		fmt.Printf("unique rows:   %d of %d\n", st.UniqueRows, *rows)
		fmt.Printf("mean coverage: %.1f%% of rows per 64 ms window\n", 100*st.MeanCoverage)
	case *bench != "":
		spec, err := trace.FindBenchmark(*bench)
		if err != nil {
			fatal(err)
		}
		recs, err := spec.Generate(*rows, *duration, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		switch *format {
		case "text":
			tw := trace.NewWriter(w)
			tw.Comment(fmt.Sprintf("benchmark=%s rows=%d duration=%gs seed=%d", *bench, *rows, *duration, *seed))
			for _, r := range recs {
				if err := tw.Write(r); err != nil {
					fatal(err)
				}
			}
			if err := tw.Flush(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "vrltrace: wrote %d records\n", tw.Count())
		case "binary":
			bw := trace.NewBinaryWriter(w)
			for _, r := range recs {
				if err := bw.Write(r); err != nil {
					fatal(err)
				}
			}
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "vrltrace: wrote %d binary records\n", bw.Count())
		case "gzip":
			cw := trace.NewCompressedWriter(w)
			for _, r := range recs {
				if err := cw.Write(r); err != nil {
					fatal(err)
				}
			}
			if err := cw.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "vrltrace: wrote %d compressed records\n", cw.Count())
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) { cli.Fatal("vrltrace", err) }
