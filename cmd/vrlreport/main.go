// Command vrlreport runs every experiment of the reproduction and emits a
// Markdown report of the regenerated tables and figures - the generator
// behind EXPERIMENTS.md.
//
// Usage:
//
//	vrlreport > report.md
//	vrlreport -seed 7 -duration 0.768 -o report.md
package main

import (
	"flag"
	"os"

	"vrldram/internal/cli"
	"vrldram/internal/exp"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "override the deterministic seed (0 = paper default)")
		duration = flag.Float64("duration", 0, "override the simulation window in seconds (0 = paper default)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	cli.InterruptExit("vrlreport")

	cfg := exp.Default()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *duration != 0 {
		cfg.Duration = *duration
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := exp.WriteMarkdownReport(w, cfg); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cli.Fatal("vrlreport", err) }
