// Command vrlspice drives the mini-SPICE engine directly: build one of the
// paper's reference netlists (or parse a deck), run a transient analysis,
// and dump waveforms as CSV or the netlist as a SPICE deck.
//
// Usage:
//
//	vrlspice -ckt equalization -tstop 2n -csv eq.csv
//	vrlspice -ckt chargeshare -rows 8192 -cols 32 -probe bl0,sa0
//	vrlspice -ckt senseamp -deck senseamp.sp
//	vrlspice -parse mydeck.sp -tstop 50n -probe out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrldram/internal/circuit/netlists"
	"vrldram/internal/circuit/spice"
	"vrldram/internal/device"
)

func main() {
	var (
		cktName = flag.String("ckt", "equalization", "netlist: equalization, chargeshare, senseamp")
		parse   = flag.String("parse", "", "parse a SPICE deck file instead of a built-in netlist")
		rows    = flag.Int("rows", device.PaperBank.Rows, "bank rows (chargeshare)")
		cols    = flag.Int("cols", device.PaperBank.Cols, "bank columns (chargeshare)")
		pattern = flag.String("pattern", "ones", "cell data pattern (chargeshare)")
		tstop   = flag.String("tstop", "2n", "transient end time (SPICE units)")
		step    = flag.String("step", "", "time step (default tstop/2000)")
		probes  = flag.String("probe", "", "comma-separated probe nodes (default per netlist)")
		trap    = flag.Bool("trap", false, "use trapezoidal integration")
		csvOut  = flag.String("csv", "", "write waveforms as CSV to this file (default stdout)")
		deckOut = flag.String("deck", "", "export the netlist as a SPICE deck and exit")
	)
	flag.Parse()

	p := device.Default90nm()
	var ckt *spice.Circuit
	var defaultProbes []string
	switch {
	case *parse != "":
		f, err := os.Open(*parse)
		if err != nil {
			fatal(err)
		}
		var notes []string
		ckt, notes, err = spice.ParseDeck(f)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "vrlspice: note: %s\n", n)
		}
	case *cktName == "equalization":
		ckt = netlists.Equalization(p)
		defaultProbes = []string{"bl", "blb"}
	case *cktName == "chargeshare":
		var err error
		ckt, err = netlists.ChargeSharing(p, netlists.ChargeSharingOpts{
			Geom:    device.BankGeometry{Rows: *rows, Cols: *cols},
			Pattern: *pattern,
		})
		if err != nil {
			fatal(err)
		}
		defaultProbes = []string{netlists.BitlineName(0), netlists.SenseNodeName(0)}
	case *cktName == "senseamp":
		ckt = netlists.SenseAmp(p, 0.14, 0.55*p.Vdd)
		defaultProbes = []string{"ox", "oy", "cell"}
	default:
		fatal(fmt.Errorf("unknown netlist %q", *cktName))
	}

	if *deckOut != "" {
		f, err := os.Create(*deckOut)
		if err != nil {
			fatal(err)
		}
		if err := ckt.ExportDeck(f, *cktName+" netlist"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vrlspice: wrote %s\n", *deckOut)
		return
	}

	ts, err := spice.ParseValue(*tstop)
	if err != nil {
		fatal(fmt.Errorf("bad -tstop: %v", err))
	}
	h := ts / 2000
	if *step != "" {
		if h, err = spice.ParseValue(*step); err != nil {
			fatal(fmt.Errorf("bad -step: %v", err))
		}
	}
	probeList := defaultProbes
	if *probes != "" {
		probeList = strings.Split(*probes, ",")
	}
	if len(probeList) == 0 {
		fatal(fmt.Errorf("no probes; pass -probe node1,node2"))
	}
	if *trap {
		if err := ckt.SetMethod(spice.Trapezoidal); err != nil {
			fatal(err)
		}
	}

	res, err := ckt.Transient(spice.TransientOpts{TStop: ts, H: h, Probes: probeList})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "t_s,%s\n", strings.Join(probeList, ","))
	for i, t := range res.Times {
		fmt.Fprintf(w, "%.6e", t)
		for _, pr := range probeList {
			fmt.Fprintf(w, ",%.6e", res.Probes[pr][i])
		}
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vrlspice: %v\n", err)
	os.Exit(1)
}
