// Command vrlfault runs seeded fault-injection campaigns against the
// refresh policies and reports the violation/overhead frontier, guarded and
// unguarded.
//
// Usage:
//
//	vrlfault                      # full resilience sweep (all injectors x all policies)
//	vrlfault -injector profile    # one injector, raw VRL vs guarded VRL
//	vrlfault -injector refresh -rate 0.1 -seed 7
//	vrlfault -injector bank -rate 0.2 -duration 0.256
//	vrlfault -scrub               # scrub experiment: every injector, patrol scrubber off vs on
//	vrlfault -injector profile -scrub -spares 32 -sweep 0.128
//	vrlfault -list-scenarios      # the composite-stress scenario catalog
//	vrlfault -scenario kitchen-sink -scrub
//	vrlfault -injector bank -scenario diurnal
package main

import (
	"flag"
	"fmt"
	"os"

	"vrldram/internal/cli"
	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/exp"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// title names the campaign for the result header.
func title(injector, scen string, duration float64) string {
	if scen != "" {
		return fmt.Sprintf("injector %q under scenario %q over %.0f ms", injector, scen, 1000*duration)
	}
	return fmt.Sprintf("injector %q over %.0f ms", injector, 1000*duration)
}

func main() {
	var (
		injector = flag.String("injector", "all", "fault injector: all, profile, bank, temp, refresh")
		rate     = flag.Float64("rate", 0, "injector rate/fraction (0 = injector default)")
		dtemp    = flag.Float64("dtemp", 5, "temperature excursion above the profiling point (degC, injector temp)")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		duration = flag.Float64("duration", 0.768, "simulated seconds")
		scrubOn  = flag.Bool("scrub", false, "add the online ECC patrol scrubber (self-healing repair pipeline)")
		spares   = flag.Int("spares", 64, "spare-row budget for scrub quarantine (negative = none)")
		sweep    = flag.Float64("sweep", 0.192, "scrub sweep period: seconds for one full patrol of the bank")

		scen     = flag.String("scenario", "", "run the campaign under a named composite-stress scenario (see -list-scenarios)")
		listScen = flag.Bool("list-scenarios", false, "print the scenario catalog and exit")
	)
	flag.Parse()

	// The campaign loops are not context-aware, so a delivered signal ends
	// the run with the conventional interrupted status instead of a kill.
	cli.InterruptExit("vrlfault")

	if *listScen {
		scenario.FprintCatalog(os.Stdout)
		return
	}
	if *scen != "" {
		if _, ok := scenario.Lookup(*scen); !ok {
			fmt.Fprintf(os.Stderr, "vrlfault: unknown scenario %q; the catalog:\n", *scen)
			scenario.FprintCatalog(os.Stderr)
			os.Exit(2)
		}
	}

	if err := run(*injector, *rate, *dtemp, *seed, *duration, *scrubOn, *spares, *sweep, *scen); err != nil {
		cli.Fatal("vrlfault", err)
	}
}

func run(injector string, rate, dtemp float64, seed int64, duration float64, scrubOn bool, spares int, sweep float64, scen string) error {
	// A scenario campaign defaults to "none": the scenario IS the stress,
	// and any explicit injector composes on top of it.
	if scen != "" && injector == "all" {
		injector = "none"
	}
	if injector == "all" {
		cfg := exp.Default()
		cfg.Seed = seed
		cfg.Duration = duration
		runner := exp.Resilience
		if scrubOn {
			runner = exp.Scrub
		}
		r, err := runner(cfg)
		if err != nil {
			return err
		}
		return r.Fprint(os.Stdout)
	}

	params := device.Default90nm()
	profile, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), seed)
	if err != nil {
		return err
	}
	rm, err := core.PaperRestoreModel(params, device.PaperBank)
	if err != nil {
		return err
	}
	opts := sim.Options{Duration: duration, TCK: params.TCK}

	// Resolve the injector into the three places a fault can enter: the
	// profile the scheduler trusts, the bank's true retention, or the refresh
	// operations themselves.
	schedProf, bankProf := profile, profile
	var vrt *retention.VRT
	var refreshFaults *fault.RefreshFaults
	switch injector {
	case "none":
		// Scenario-only campaign: no additional injector.
	case "profile":
		frac := rate
		if frac == 0 {
			frac = 0.05
		}
		bad, n, err := fault.MisBinProfile(profile, frac, retention.RAIDRBins, seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("mis-binned %d rows one bin slower than they sustain\n\n", n)
		schedProf, bankProf = bad, bad
	case "bank":
		frac := rate
		if frac == 0 {
			frac = 0.05
		}
		vrt, err = fault.TransientWeakCells(frac, 0.55, 10, seed+2)
		if err != nil {
			return err
		}
	case "temp":
		m := retention.DefaultTempModel()
		hot, err := fault.TemperatureExcursion(profile, m, m.RefC+dtemp)
		if err != nil {
			return err
		}
		bankProf = hot
	case "refresh":
		f := fault.DefaultRefreshFaults(seed + 3)
		if rate != 0 {
			f.Rate = rate
		}
		refreshFaults = &f
	default:
		return fmt.Errorf("unknown injector %q (want all, none, profile, bank, temp or refresh)", injector)
	}

	var env *scenario.Env
	if scen != "" {
		env, err = scenario.BuildEnv(scenario.Ref{Name: scen}, duration, seed)
		if err != nil {
			return err
		}
		if vrt != nil {
			// A bank runs one retention view, so the bank injector's VRT
			// joins the scenario as a stressor and the two modulations
			// integrate exactly instead of fighting over the bank.
			env.Stressors = append(env.Stressors, scenario.VRTStressor{Label: "injector/bank", V: *vrt})
			vrt = nil
		}
		fmt.Printf("scenario %s: %d composed stressor(s) over %.0f ms\n\n", env.Ref, len(env.Stressors), 1000*duration)
	}

	campaign := func(guarded, scrubbed bool) (sim.Stats, error) {
		inner, err := core.NewVRL(schedProf, core.Config{Restore: rm})
		if err != nil {
			return sim.Stats{}, err
		}
		sched := core.Scheduler(inner)
		// The scrubber's repair target: the guard when present, else the raw
		// VRL - never the injector wrapper, whose forwarded repair hooks are
		// no-ops.
		repairTarget := core.Scheduler(inner)
		if guarded {
			g, err := guard.New(sched, schedProf.Geom.Rows, guard.Config{Restore: rm})
			if err != nil {
				return sim.Stats{}, err
			}
			sched, repairTarget = g, g
		}
		if refreshFaults != nil {
			sched, err = fault.InjectRefreshFaults(sched, *refreshFaults)
			if err != nil {
				return sim.Stats{}, err
			}
		}
		bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return sim.Stats{}, err
		}
		if vrt != nil {
			if err := bank.SetVRT(vrt); err != nil {
				return sim.Stats{}, err
			}
		}
		if env != nil {
			if err := bank.SetModulator(env); err != nil {
				return sim.Stats{}, err
			}
		}
		runOpts := opts
		if scrubbed {
			cls := ecc.DefaultClassifier()
			store, err := scrub.NewBankStore(bank, cls)
			if err != nil {
				return sim.Stats{}, err
			}
			scr, err := scrub.New(store, scrub.Config{
				Sched:       repairTarget,
				SweepPeriod: sweep,
				Spares:      spares,
				Reprofile: func(row int) (float64, error) {
					return profiler.ProfileRow(bankProf, retention.ExpDecay{}, row, profiler.Options{})
				},
			})
			if err != nil {
				return sim.Stats{}, err
			}
			runOpts.ECC = &cls
			runOpts.Scrub = scr
		}
		return sim.Run(bank, sched, nil, runOpts)
	}

	r := &exp.Result{
		ID:      "vrlfault",
		Title:   title(injector, scen, duration),
		Headers: []string{"policy", "violations", "overhead %", "faults inj.", "alarms", "demotions", "escalations", "breaker trips", "degraded ms"},
	}
	type variant struct {
		name              string
		guarded, scrubbed bool
	}
	variants := []variant{{"VRL", false, false}, {"VRL+guard", true, false}}
	if scrubOn {
		variants = append(variants, variant{"VRL+scrub", false, true})
	}
	for _, v := range variants {
		st, err := campaign(v.guarded, v.scrubbed)
		if err != nil {
			return err
		}
		cells := []string{"-", "-", "-", "-", "-"}
		if v.guarded {
			cells = []string{
				fmt.Sprintf("%d", st.Guard.Alarms),
				fmt.Sprintf("%d", st.Guard.Demotions),
				fmt.Sprintf("%d", st.Guard.Escalations),
				fmt.Sprintf("%d", st.Guard.BreakerTrips),
				fmt.Sprintf("%.1f", 1000*st.Guard.TimeDegraded),
			}
		}
		r.AddRow(append([]string{
			v.name,
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%.3f", 100*st.OverheadFraction(params.TCK)),
			fmt.Sprintf("%d", st.FaultsInjected),
		}, cells...)...)
		if v.scrubbed {
			r.AddNote("scrub ledger: %d patrolled, %d corrected, %d uncorrectable, %d reprofiled, %d remapped, %d healed, %d hard fails, %d spares left, %d SLO misses, %d busy retries",
				st.Scrub.RowsPatrolled, st.Scrub.Corrected, st.Scrub.Uncorrectable, st.Scrub.Reprofiles,
				st.Scrub.RowsRemapped, st.Scrub.RowsHealed, st.Scrub.HardFails, st.Scrub.SparesLeft,
				st.Scrub.SLOMisses, st.Scrub.BusyRetries)
		}
	}
	return r.Fprint(os.Stdout)
}
