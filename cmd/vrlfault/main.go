// Command vrlfault runs seeded fault-injection campaigns against the
// refresh policies and reports the violation/overhead frontier, guarded and
// unguarded.
//
// Usage:
//
//	vrlfault                      # full resilience sweep (all injectors x all policies)
//	vrlfault -injector profile    # one injector, raw VRL vs guarded VRL
//	vrlfault -injector refresh -rate 0.1 -seed 7
//	vrlfault -injector bank -rate 0.2 -duration 0.256
package main

import (
	"flag"
	"fmt"
	"os"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/exp"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

func main() {
	var (
		injector = flag.String("injector", "all", "fault injector: all, profile, bank, temp, refresh")
		rate     = flag.Float64("rate", 0, "injector rate/fraction (0 = injector default)")
		dtemp    = flag.Float64("dtemp", 5, "temperature excursion above the profiling point (degC, injector temp)")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		duration = flag.Float64("duration", 0.768, "simulated seconds")
	)
	flag.Parse()

	if err := run(*injector, *rate, *dtemp, *seed, *duration); err != nil {
		fmt.Fprintf(os.Stderr, "vrlfault: %v\n", err)
		os.Exit(1)
	}
}

func run(injector string, rate, dtemp float64, seed int64, duration float64) error {
	if injector == "all" {
		cfg := exp.Default()
		cfg.Seed = seed
		cfg.Duration = duration
		r, err := exp.Resilience(cfg)
		if err != nil {
			return err
		}
		return r.Fprint(os.Stdout)
	}

	params := device.Default90nm()
	profile, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), seed)
	if err != nil {
		return err
	}
	rm, err := core.PaperRestoreModel(params, device.PaperBank)
	if err != nil {
		return err
	}
	opts := sim.Options{Duration: duration, TCK: params.TCK}

	// Resolve the injector into the three places a fault can enter: the
	// profile the scheduler trusts, the bank's true retention, or the refresh
	// operations themselves.
	schedProf, bankProf := profile, profile
	var vrt *retention.VRT
	var refreshFaults *fault.RefreshFaults
	switch injector {
	case "profile":
		frac := rate
		if frac == 0 {
			frac = 0.05
		}
		bad, n, err := fault.MisBinProfile(profile, frac, retention.RAIDRBins, seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("mis-binned %d rows one bin slower than they sustain\n\n", n)
		schedProf, bankProf = bad, bad
	case "bank":
		frac := rate
		if frac == 0 {
			frac = 0.05
		}
		vrt, err = fault.TransientWeakCells(frac, 0.55, 10, seed+2)
		if err != nil {
			return err
		}
	case "temp":
		m := retention.DefaultTempModel()
		hot, err := fault.TemperatureExcursion(profile, m, m.RefC+dtemp)
		if err != nil {
			return err
		}
		bankProf = hot
	case "refresh":
		f := fault.DefaultRefreshFaults(seed + 3)
		if rate != 0 {
			f.Rate = rate
		}
		refreshFaults = &f
	default:
		return fmt.Errorf("unknown injector %q (want all, profile, bank, temp or refresh)", injector)
	}

	campaign := func(guarded bool) (sim.Stats, error) {
		var sched core.Scheduler
		sched, err := core.NewVRL(schedProf, core.Config{Restore: rm})
		if err != nil {
			return sim.Stats{}, err
		}
		if guarded {
			sched, err = guard.New(sched, schedProf.Geom.Rows, guard.Config{Restore: rm})
			if err != nil {
				return sim.Stats{}, err
			}
		}
		if refreshFaults != nil {
			sched, err = fault.InjectRefreshFaults(sched, *refreshFaults)
			if err != nil {
				return sim.Stats{}, err
			}
		}
		bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return sim.Stats{}, err
		}
		if vrt != nil {
			if err := bank.SetVRT(vrt); err != nil {
				return sim.Stats{}, err
			}
		}
		return sim.Run(bank, sched, nil, opts)
	}

	r := &exp.Result{
		ID:      "vrlfault",
		Title:   fmt.Sprintf("injector %q over %.0f ms", injector, 1000*duration),
		Headers: []string{"policy", "violations", "overhead %", "faults inj.", "alarms", "demotions", "escalations", "breaker trips", "degraded ms"},
	}
	for _, guarded := range []bool{false, true} {
		st, err := campaign(guarded)
		if err != nil {
			return err
		}
		name := "VRL"
		cells := []string{"-", "-", "-", "-", "-"}
		if guarded {
			name = "VRL+guard"
			cells = []string{
				fmt.Sprintf("%d", st.Guard.Alarms),
				fmt.Sprintf("%d", st.Guard.Demotions),
				fmt.Sprintf("%d", st.Guard.Escalations),
				fmt.Sprintf("%d", st.Guard.BreakerTrips),
				fmt.Sprintf("%.1f", 1000*st.Guard.TimeDegraded),
			}
		}
		r.AddRow(append([]string{
			name,
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%.3f", 100*st.OverheadFraction(params.TCK)),
			fmt.Sprintf("%d", st.FaultsInjected),
		}, cells...)...)
	}
	return r.Fprint(os.Stdout)
}
