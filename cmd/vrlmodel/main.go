// Command vrlmodel queries the circuit-level analytical refresh model
// (paper Section 2): latency breakdowns, restore coefficients, and the
// pre-sensing latency of arbitrary bank geometries, optionally validated
// against the transient circuit simulator.
//
// Usage:
//
//	vrlmodel -rows 8192 -cols 32
//	vrlmodel -rows 16384 -cols 128 -spice
package main

import (
	"flag"
	"fmt"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/circuit/netlists"
	"vrldram/internal/cli"
	"vrldram/internal/device"
)

func main() {
	var (
		rows     = flag.Int("rows", device.PaperBank.Rows, "bank rows")
		cols     = flag.Int("cols", device.PaperBank.Cols, "bank columns")
		runSpice = flag.Bool("spice", false, "validate pre-sensing against the transient circuit simulator")
		target   = flag.Float64("target", 0.95, "restore/signal development target fraction")
	)
	flag.Parse()
	cli.InterruptExit("vrlmodel")

	p := device.Default90nm()
	geom := device.BankGeometry{Rows: *rows, Cols: *cols}
	m, err := analytic.New(p, geom)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("bank %s at 90nm (tCK = %.3g ns)\n\n", geom, p.TCK*1e9)

	tauEq := m.TauEq(analytic.EqTolDefault)
	tauPre := m.TauPre(*target)
	dv, err := m.DefaultDvbl()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("equalization delay:   %.3f ns (%d cycles)\n", tauEq*1e9, p.Cycles(tauEq))
	fmt.Printf("pre-sensing delay:    %.3f ns (%d cycles) to %.0f%% signal\n", tauPre*1e9, p.Cycles(tauPre), *target*100)
	fmt.Printf("sense-amp input:      %.1f mV (95%% of worst-case coupled asymptote)\n", dv*1e3)
	fmt.Printf("sense phases t1+t2+t3: %.3f ns\n", m.SensePhaseDelay(dv)*1e9)
	fmt.Printf("restore time constant: %.3f ns\n\n", m.RestoreTau()*1e9)

	fmt.Println("scheduled operating point (paper Section 3.1):")
	fmt.Printf("  tau_partial = %d cycles (alpha = %.3f)\n", analytic.TauPartialCycles,
		m.RestoreAlpha(float64(analytic.TauPostPartialCycles)*p.TCK, dv))
	fmt.Printf("  tau_full    = %d cycles (alpha = %.5f)\n", analytic.TauFullCycles,
		m.RestoreAlpha(float64(analytic.TauPostFullCycles)*p.TCK, dv))

	t95, err := m.TimeToChargeFraction(0.5, 0.95)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  95%% of charge restored at %.0f%% of tRFC (Observation 1)\n", t95*100)

	if *runSpice {
		fmt.Println("\ntransient circuit validation:")
		meas, err := netlists.MeasurePreSense(p, geom, "ones", *target)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  SPICE pre-sensing: %.3f ns (%d cycles), simulated in %v\n",
			meas.T95*1e9, meas.Cycles, meas.WallClock)
		diff := 100 * (tauPre - meas.T95) / meas.T95
		fmt.Printf("  model vs SPICE: %+.1f%%\n", diff)
	}
}

func fatal(err error) { cli.Fatal("vrlmodel", err) }
