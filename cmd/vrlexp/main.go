// Command vrlexp regenerates the tables and figures of the VRL-DRAM paper.
// Experiments run as a crash-tolerant campaign: a panicking or erroring
// experiment is recorded as a failure and the rest of the campaign
// completes, -timeout bounds each experiment's wall-clock time, and
// -checkpoint/-resume persist completed results across interruptions so a
// killed campaign picks up where it left off.
//
// Usage:
//
//	vrlexp -list
//	vrlexp -exp fig4
//	vrlexp -exp all -seed 7 -duration 0.768
//	vrlexp -exp all -timeout 2m -checkpoint campaign.ckpt
//	vrlexp -exp all -checkpoint campaign.ckpt -resume
//	vrlexp -exp all -remote 127.0.0.1:7421
//
// With -remote the campaign runs on a vrlserved instance instead of in
// process: the client retries through connection loss and server restarts,
// and the server checkpoints per experiment, so the command survives both
// ends crashing. -checkpoint, -resume, -timeout, and -workers are
// server-side concerns and do not combine with -remote.
//
// Exit status: 0 on success, 1 on a usage or I/O error or an interrupted
// campaign, 4 when the campaign finished but one or more experiments
// failed (timed out, panicked, or errored).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"vrldram"
	"vrldram/internal/checkpoint"
	"vrldram/internal/cli"
	"vrldram/internal/exp"
	"vrldram/internal/serve"
)

func main() {
	var (
		expID      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed       = flag.Int64("seed", 0, "override the deterministic seed (0 = paper default)")
		duration   = flag.Float64("duration", 0, "override the simulation window in seconds (0 = paper default)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit per experiment (0 = none)")
		ckptPath   = flag.String("checkpoint", "", "persist completed results to this file (atomic, CRC-checked)")
		resume     = flag.Bool("resume", false, "reuse completed results from -checkpoint instead of re-running them")
		workers    = flag.Int("workers", 0, "concurrent cells per experiment (0 = GOMAXPROCS; also VRLDRAM_WORKERS env; results are identical for any value)")
		remote     = flag.String("remote", "", "run the campaign on a vrlserved instance at this address")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range vrldram.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *format != "table" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *resume && *ckptPath == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}

	var ids []string // nil = whole registry, in the paper's order
	if *expID != "all" {
		ids = []string{*expID}
	}

	if *remote != "" {
		if *ckptPath != "" || *resume || *timeout != 0 || *workers != 0 {
			fatal(errors.New("-remote runs the campaign server-side; -checkpoint, -resume, -timeout, and -workers do not apply"))
		}
		os.Exit(runRemote(*remote, ids, *seed, *duration, *format))
	}

	cfg := exp.Default()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *duration != 0 {
		cfg.Duration = *duration
	}
	cfg.Workers = resolveWorkers(*workers)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Stopped explicitly in finish(): os.Exit skips defers, and an
		// unstopped profile is truncated and unreadable.
	}
	finish := func(code int) {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vrlexp: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "vrlexp: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		os.Exit(code)
	}

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	opts := exp.CampaignOptions{IDs: ids, Timeout: *timeout}

	// Campaign progress file: completed results accumulate and are
	// re-persisted after every experiment, so a killed campaign loses at
	// most the experiment in flight.
	var completed []*exp.Result
	if *ckptPath != "" {
		mgr, err := checkpoint.NewManager(*ckptPath, 0)
		if err != nil {
			fatal(err)
		}
		if *resume {
			from, err := mgr.Load(func(r io.Reader) error {
				var derr error
				completed, derr = checkpoint.DecodeCampaign(r)
				return derr
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "vrlexp: no resumable campaign state (%v); starting fresh\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "vrlexp: resuming campaign from %s (%d experiment(s) already done)\n", from, len(completed))
			}
		}
		restored := make(map[string]*exp.Result, len(completed))
		for _, res := range completed {
			restored[res.ID] = res
		}
		opts.Restore = func(id string) *exp.Result { return restored[id] }
		opts.OnResult = func(res *exp.Result) error {
			completed = append(completed, res)
			return mgr.Save(func(w io.Writer) error { return checkpoint.EncodeCampaign(w, completed) })
		}
	}

	start := time.Now()
	results, err := exp.RunCampaign(ctx, cfg, opts)
	printResults(results, *format)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "vrlexp: campaign interrupted after %d experiment(s) (%v elapsed)\n", len(results), time.Since(start).Round(time.Second))
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "vrlexp: completed results saved to %s; rerun with -resume to continue\n", *ckptPath)
			}
		}
		fmt.Fprintf(os.Stderr, "vrlexp: %v\n", err)
		finish(1)
	}
	if countFailed(results) > 0 {
		finish(4)
	}
	finish(0)
}

// runRemote submits the campaign to a vrlserved instance and returns the
// process exit code. The client retries through connection loss and server
// restarts; SIGINT/SIGTERM abandons the wait (the session keeps running
// server-side and a rerun with the same parameters starts a new one).
func runRemote(addr string, ids []string, seed int64, duration float64, format string) int {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	cl := serve.NewClient(serve.ClientOptions{
		Addr: addr,
		Logf: func(f string, args ...any) { fmt.Fprintf(os.Stderr, "vrlexp: remote: "+f+"\n", args...) },
	})
	results, err := cl.RunCampaign(ctx, serve.CampaignSpec{IDs: ids, Seed: seed, Duration: duration})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "vrlexp: interrupted while waiting on %s\n", addr)
			return cli.StatusInterrupted
		}
		fmt.Fprintf(os.Stderr, "vrlexp: %v\n", err)
		return 1
	}
	printResults(results, format)
	if countFailed(results) > 0 {
		return 4
	}
	return 0
}

func printResults(results []*exp.Result, format string) {
	for _, res := range results {
		var perr error
		switch format {
		case "table":
			perr = res.Fprint(os.Stdout)
		case "csv":
			perr = res.FprintCSV(os.Stdout)
		}
		if perr != nil {
			fatal(perr)
		}
	}
}

func countFailed(results []*exp.Result) int {
	failed := 0
	for _, res := range results {
		if res.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "vrlexp: experiment %s failed (see its notes)\n", res.ID)
		}
	}
	return failed
}

// resolveWorkers applies the precedence -workers flag > VRLDRAM_WORKERS env >
// 0 (GOMAXPROCS, resolved inside exp). The env var lets batch scripts pin
// concurrency without threading a flag through every invocation.
func resolveWorkers(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	if env := os.Getenv("VRLDRAM_WORKERS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 0 {
			fatal(fmt.Errorf("invalid VRLDRAM_WORKERS %q", env))
		}
		return n
	}
	return 0
}

func fatal(err error) { cli.Fatal("vrlexp", err) }
