// Command vrlexp regenerates the tables and figures of the VRL-DRAM paper.
//
// Usage:
//
//	vrlexp -list
//	vrlexp -exp fig4
//	vrlexp -exp all -seed 7 -duration 0.768
package main

import (
	"flag"
	"fmt"
	"os"

	"vrldram"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed     = flag.Int64("seed", 0, "override the deterministic seed (0 = paper default)")
		duration = flag.Float64("duration", 0, "override the simulation window in seconds (0 = paper default)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		format   = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range vrldram.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range vrldram.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		var err error
		switch *format {
		case "table":
			err = vrldram.RunExperimentSeeded(id, os.Stdout, *seed, *duration)
		case "csv":
			err = vrldram.RunExperimentCSV(id, os.Stdout, *seed, *duration)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vrlexp: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
