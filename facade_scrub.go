package vrldram

import (
	"vrldram/internal/dram"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/trace"
)

// This file extends the facade with the self-healing envelope: the online
// ECC patrol scrubber of internal/scrub, wired into a simulation run.

// ScrubReport reports a self-healing simulation: the run's refresh
// statistics plus the patrol pipeline's repair ledger.
type ScrubReport struct {
	Stats
	CorrectedErrors     int64
	UncorrectableErrors int64

	// Patrol coverage and repair ledger (see internal/scrub).
	RowsPatrolled int64 // patrol read slots completed
	Corrected     int64 // ECC-corrected reads the pipeline responded to
	Uncorrectable int64 // uncorrectable reads the pipeline responded to
	Reprofiles    int64 // targeted single-row re-profiling campaigns
	RowsHealed    int64 // suspect rows promoted back after K clean patrols
	RowsRemapped  int64 // rows quarantined to a spare
	HardFails     int64 // quarantines with no spare left (escalated)
	BusyRetries   int64 // patrol reads deferred while the bank was busy
	SLOMisses     int64 // coverage windows the patrol fell behind in
	SparesLeft    int   // spare rows still unallocated at the end
	RemappedRows  []int // the quarantined rows, in increasing order
}

// SimulateWithScrub runs the VRL policy against a bank under the default
// variable-retention-time process with the online ECC patrol scrubber wired
// in: every sense is SECDED-classified, corrected rows are demoted and
// re-profiled with a targeted campaign, uncorrectable rows are quarantined
// to one of the given spare rows (spares = 0 selects the default budget of
// 16, negative disables sparing), and suspect rows that stay clean for K
// consecutive patrols are healed. Compare with SimulateWithVRT(duration,
// true), which upgrades on correction but never re-profiles, remaps, or
// heals.
func (s *System) SimulateWithScrub(duration float64, spares int) (ScrubReport, error) {
	sched, err := s.newScheduler(SchedVRL)
	if err != nil {
		return ScrubReport{}, err
	}
	bank, err := dram.NewBank(s.profile, s.decay, s.pattern)
	if err != nil {
		return ScrubReport{}, err
	}
	vrt := retention.DefaultVRT()
	if err := bank.SetVRT(&vrt); err != nil {
		return ScrubReport{}, err
	}
	classifier := defaultClassifier()
	store, err := scrub.NewBankStore(bank, classifier)
	if err != nil {
		return ScrubReport{}, err
	}
	// One sweep per three tREFW: a patrol read restores the row it reads,
	// so sweeping at tREFW itself would blanket-refresh the bank and mask
	// the very faults the patrol exists to catch.
	scr, err := scrub.New(store, scrub.Config{
		Sched:       sched,
		SweepPeriod: 0.192,
		Spares:      spares,
		Reprofile: func(row int) (float64, error) {
			return profiler.ProfileRow(s.profile, s.decay, row, profiler.Options{})
		},
	})
	if err != nil {
		return ScrubReport{}, err
	}
	opts := simOptions(s, duration)
	opts.ECC = &classifier
	opts.Scrub = scr
	st, err := runSim(bank, sched, trace.Empty{}, opts)
	if err != nil {
		return ScrubReport{}, err
	}
	eb, err := s.pm.RefreshEnergy(st, s.params.TCK)
	if err != nil {
		return ScrubReport{}, err
	}
	return ScrubReport{
		Stats: Stats{
			Scheduler:        st.Scheduler,
			Duration:         st.Duration,
			FullRefreshes:    st.FullRefreshes,
			PartialRefreshes: st.PartialRefreshes,
			BusyCycles:       st.BusyCycles,
			Accesses:         st.Accesses,
			Violations:       st.Violations,
			OverheadFraction: st.OverheadFraction(s.params.TCK),
			RefreshEnergy:    eb.Total,
		},
		CorrectedErrors:     st.CorrectedErrors,
		UncorrectableErrors: st.UncorrectableErrors,
		RowsPatrolled:       st.Scrub.RowsPatrolled,
		Corrected:           st.Scrub.Corrected,
		Uncorrectable:       st.Scrub.Uncorrectable,
		Reprofiles:          st.Scrub.Reprofiles,
		RowsHealed:          st.Scrub.RowsHealed,
		RowsRemapped:        st.Scrub.RowsRemapped,
		HardFails:           st.Scrub.HardFails,
		BusyRetries:         st.Scrub.BusyRetries,
		SLOMisses:           st.Scrub.SLOMisses,
		SparesLeft:          st.Scrub.SparesLeft,
		RemappedRows:        scr.Remapped(),
	}, nil
}
