module vrldram

go 1.22
