package vrldram_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"vrldram"
)

func newSystem(t *testing.T) *vrldram.System {
	t.Helper()
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemDefaults(t *testing.T) {
	sys := newSystem(t)
	partial, full := sys.RefreshLatencies()
	if partial != 11 || full != 19 {
		t.Fatalf("latencies %d/%d, want the paper's 11/19", partial, full)
	}
	counts, err := sys.BinCounts()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0.064] != 68 || counts[0.128] != 101 || counts[0.192] != 145 || counts[0.256] != 7878 {
		t.Fatalf("default bank must reproduce Figure 3b, got %v", counts)
	}
}

func TestNewSystemOptionErrors(t *testing.T) {
	if _, err := vrldram.NewSystem(vrldram.Options{Rows: -1}); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
	if _, err := vrldram.NewSystem(vrldram.Options{Decay: "nope"}); err == nil {
		t.Fatal("bad decay must be rejected")
	}
	if _, err := vrldram.NewSystem(vrldram.Options{Pattern: "nope"}); err == nil {
		t.Fatal("bad pattern must be rejected")
	}
	if _, err := vrldram.NewSystem(vrldram.Options{Guardband: 0.2}); err == nil {
		// Guardband is validated when the scheduler is built; Simulate must
		// surface it.
		sys, err := vrldram.NewSystem(vrldram.Options{Guardband: 0.2})
		if err == nil {
			if _, err = sys.Simulate(vrldram.SchedVRL, nil, 0.064); err == nil {
				t.Fatal("bad guardband must be rejected somewhere")
			}
		}
	}
}

func TestSimulateOrderingAcrossSchedulers(t *testing.T) {
	sys := newSystem(t)
	const duration = 0.768
	accesses, err := sys.GenerateTrace("streamcluster", duration)
	if err != nil {
		t.Fatal(err)
	}
	busy := map[vrldram.SchedulerKind]int64{}
	for _, kind := range vrldram.SchedulerKinds {
		st, err := sys.Simulate(kind, accesses, duration)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if st.Violations != 0 {
			t.Fatalf("%s: %d violations", kind, st.Violations)
		}
		if st.RefreshEnergy <= 0 {
			t.Fatalf("%s: energy %v", kind, st.RefreshEnergy)
		}
		busy[kind] = st.BusyCycles
	}
	if !(busy[vrldram.SchedJEDEC] > busy[vrldram.SchedRAIDR]) {
		t.Fatal("JEDEC must cost more than RAIDR")
	}
	if !(busy[vrldram.SchedRAIDR] > busy[vrldram.SchedVRL]) {
		t.Fatal("RAIDR must cost more than VRL")
	}
	if !(busy[vrldram.SchedVRL] > busy[vrldram.SchedVRLAccess]) {
		t.Fatal("VRL must cost more than VRL-Access on a high-coverage trace")
	}
}

func TestSimulateUnknownScheduler(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Simulate("bogus", nil, 0.064); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

func TestGenerateTrace(t *testing.T) {
	sys := newSystem(t)
	acc, err := sys.GenerateTrace("canneal", 0.128)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(acc); i++ {
		if acc[i].Time < acc[i-1].Time {
			t.Fatal("trace not time-sorted")
		}
	}
	if _, err := sys.GenerateTrace("nope", 0.1); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	names := vrldram.Benchmarks()
	if len(names) != 14 || !sort.StringsAreSorted(nil) && names[0] == "" {
		t.Fatalf("benchmarks: %v", names)
	}
}

func TestMPRSFHistogram(t *testing.T) {
	sys := newSystem(t)
	h, err := sys.MPRSFHistogram()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 8192 {
		t.Fatalf("histogram sums to %d", total)
	}
	if len(h) != 4 {
		t.Fatalf("nbits=2 must cap at 3: %v", h)
	}
}

func TestModelTRFCAndRestoreCurve(t *testing.T) {
	sys := newSystem(t)
	b, err := sys.ModelTRFC(0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalCycles <= 0 || b.RestoreAlpha <= 0 {
		t.Fatalf("breakdown: %+v", b)
	}
	pts, err := sys.RestoreCurve(0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 || pts[0].FracCharge != 0.5 {
		t.Fatalf("curve: %v", pts[:2])
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := vrldram.Experiments()
	if len(exps) < 10 {
		t.Fatalf("%d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" {
			t.Fatalf("bad entry: %+v", e)
		}
		ids[e.ID] = true
	}
	for _, must := range []string{"fig1a", "fig4", "tab1", "tab2"} {
		if !ids[must] {
			t.Errorf("missing %s", must)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := vrldram.RunExperiment("fig3b", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig3b", "7878", "68"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := vrldram.RunExperiment("nope", &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentSeeded(t *testing.T) {
	var a, b bytes.Buffer
	if err := vrldram.RunExperimentSeeded("fig3a", &a, 7, 0.128); err != nil {
		t.Fatal(err)
	}
	if err := vrldram.RunExperimentSeeded("fig3a", &b, 8, 0.128); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("different seeds must change the sampled histogram")
	}
	if err := vrldram.RunExperimentSeeded("nope", &a, 0, 0); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// Integration: the failure-injection path surfaces through the public API
// when the stored pattern is hostile and the guardband is stripped.
func TestWorstPatternStaysSafeByDefault(t *testing.T) {
	sys, err := vrldram.NewSystem(vrldram.Options{Pattern: "alternating"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Simulate(vrldram.SchedVRL, nil, 0.768)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("default guardband must survive the worst pattern: %d violations", st.Violations)
	}
}

func TestLinearDecayOptionWorks(t *testing.T) {
	sys, err := vrldram.NewSystem(vrldram.Options{Decay: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Simulate(vrldram.SchedVRL, nil, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("linear decay run violated: %d", st.Violations)
	}
}

func TestSmallCustomBank(t *testing.T) {
	sys, err := vrldram.NewSystem(vrldram.Options{Rows: 1024, Cols: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Simulate(vrldram.SchedVRL, nil, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRefreshes+st.PartialRefreshes == 0 || st.Violations != 0 {
		t.Fatalf("custom bank run: %+v", st)
	}
}
