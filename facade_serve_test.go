package vrldram_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"vrldram"
)

// TestServeAndRunRemoteExperiments drives the facade end to end: an
// embedded service on an ephemeral port runs one small experiment for a
// remote client, matching the same experiment run locally, then drains
// cleanly when its context is cancelled.
func TestServeAndRunRemoteExperiments(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- vrldram.Serve(ctx, ln, vrldram.ServeOptions{DataDir: t.TempDir()})
	}()

	var remote bytes.Buffer
	if err := vrldram.RunRemoteExperiments(context.Background(), &remote, ln.Addr().String(), []string{"fig1a"}, 0, 0.05); err != nil {
		t.Fatal(err)
	}

	var local bytes.Buffer
	if err := vrldram.RunExperimentSeeded("fig1a", &local, 0, 0.05); err != nil {
		t.Fatal(err)
	}
	if remote.String() != local.String() {
		t.Fatalf("remote rendering diverges from local:\n got:\n%s\nwant:\n%s", remote.String(), local.String())
	}
	if !strings.Contains(remote.String(), "fig1a") {
		t.Fatal("rendered output does not name the experiment")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
