// Circuit model exploration: query the paper's Section 2 analytical model
// for the refresh latency breakdown and render the Figure 1a restore curve
// as an ASCII plot.
//
//	go run ./examples/circuit_model
package main

import (
	"fmt"
	"log"
	"strings"

	"vrldram"
)

func main() {
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Latency breakdown of a partial refresh (restore to 95% of charge) for
	// a cell that has decayed to 60% of full charge.
	b, err := sys.ModelTRFC(0.60, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytical refresh latency breakdown (cell at 60% -> 95% of charge):")
	fmt.Printf("  equalization: %6.2f ns\n", b.TauEq*1e9)
	fmt.Printf("  pre-sensing:  %6.2f ns\n", b.TauPre*1e9)
	fmt.Printf("  post-sensing: %6.2f ns\n", b.TauPost*1e9)
	fmt.Printf("  fixed:        %6.2f ns\n", b.TauFixed*1e9)
	fmt.Printf("  total:        %d cycles (restore alpha %.3f)\n\n", b.TotalCycles, b.RestoreAlpha)

	// The Figure 1a shape: most of tRFC buys the last few percent of charge.
	pts, err := sys.RestoreCurve(0.5, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("charge restored vs fraction of tRFC (paper Figure 1a):")
	for _, p := range pts {
		bars := int(p.FracCharge * 50)
		fmt.Printf("  %3.0f%% tRFC |%-50s| %5.1f%% charge\n",
			p.FracTRFC*100, strings.Repeat("#", bars), p.FracCharge*100)
	}
	fmt.Println("\nnote the knee: ~95% of charge arrives by ~60% of tRFC; the paper's")
	fmt.Println("partial refresh truncates there (11 of 19 cycles).")
}
