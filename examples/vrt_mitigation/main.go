// VRT mitigation: show why any static retention profile (the paper's
// assumption) needs an online safety net, and that the AVATAR-style row
// upgrade restores integrity.
//
//	go run ./examples/vrt_mitigation
package main

import (
	"fmt"
	"log"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

func main() {
	params := device.Default90nm()
	profile, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		log.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(params, device.PaperBank)
	if err != nil {
		log.Fatal(err)
	}
	opts := sim.Options{Duration: 0.768, TCK: params.TCK}
	vrt := retention.DefaultVRT()

	run := func(prof *retention.BankProfile, withVRT bool) (sim.Stats, []dram.Violation) {
		sched, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			log.Fatal(err)
		}
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			log.Fatal(err)
		}
		if withVRT {
			if err := bank.SetVRT(&vrt); err != nil {
				log.Fatal(err)
			}
		}
		st, err := sim.Run(bank, sched, nil, opts)
		if err != nil {
			log.Fatal(err)
		}
		return st, bank.Violations()
	}

	st0, _ := run(profile, false)
	fmt.Printf("static world (no VRT):   %d violations\n", st0.Violations)

	st1, viol := run(profile, true)
	fmt.Printf("VRT, static profile:     %d violations across %d sensing events\n",
		st1.Violations, st1.FullRefreshes+st1.PartialRefreshes)

	caught := map[int]bool{}
	for _, v := range viol {
		caught[v.Row] = true
	}
	rows := make([]int, 0, len(caught))
	for r := range caught {
		rows = append(rows, r)
	}
	upgraded := core.UpgradeRows(profile, rows, retention.RAIDRBins[0])
	st2, _ := run(upgraded, true)
	fmt.Printf("VRT + AVATAR upgrade:    %d violations after upgrading %d rows to the 64 ms bin\n",
		st2.Violations, len(rows))

	fmt.Println("\nstatic retention-aware refresh needs online VRT mitigation;")
	fmt.Println("the paper cites AVATAR (Qureshi et al., DSN 2015) for exactly this.")
}
