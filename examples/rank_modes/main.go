// Rank refresh modes: why retention-aware refresh needs per-bank refresh
// commands. A rank of banks runs the same refresh policies under per-bank
// (DDR4 REFpb-style) and all-bank (DDR3 REFab-style) command granularity;
// the all-bank mode must follow the weakest bank's bin and the slowest
// bank's latency, which erases most of VRL's saving.
//
//	go run ./examples/rank_modes
package main

import (
	"fmt"
	"log"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/rank"
	"vrldram/internal/retention"
)

func main() {
	params := device.Default90nm()
	rm, err := core.PaperRestoreModel(params, device.PaperBank)
	if err != nil {
		log.Fatal(err)
	}
	const nBanks, rows = 8, 2048

	policies := map[string]func(*retention.BankProfile) (core.Scheduler, error){
		"RAIDR": func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewRAIDR(p, core.Config{Restore: rm})
		},
		"VRL": func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewVRL(p, core.Config{Restore: rm})
		},
	}

	fmt.Printf("%-10s %-8s %12s %10s %16s\n", "mode", "policy", "commands", "fulls", "bank-busy cyc")
	busy := map[string]int64{}
	for _, mode := range []rank.Mode{rank.PerBank, rank.AllBank} {
		for _, name := range []string{"RAIDR", "VRL"} {
			banks, scheds, err := rank.NewRank(nBanks, retention.DefaultCellDistribution(),
				rows, 32, 42, policies[name])
			if err != nil {
				log.Fatal(err)
			}
			st, err := rank.Run(banks, scheds, rank.Options{
				Mode: mode, Duration: 0.768, TCK: params.TCK,
			})
			if err != nil {
				log.Fatal(err)
			}
			if st.Violations != 0 {
				log.Fatalf("%s/%s: %d violations", mode, name, st.Violations)
			}
			busy[mode.String()+name] = st.BankBusyCycles
			fmt.Printf("%-10s %-8s %12d %10d %16d\n",
				st.Mode, name, st.RefreshCommands, st.FullCommands, st.BankBusyCycles)
		}
	}
	fmt.Printf("\nVRL saving vs RAIDR: per-bank %.1f%%, all-bank %.1f%%\n",
		100*(1-float64(busy["per-bankVRL"])/float64(busy["per-bankRAIDR"])),
		100*(1-float64(busy["all-bankVRL"])/float64(busy["all-bankRAIDR"])))
	fmt.Println("an all-bank command is full if ANY bank needs a full refresh, so the")
	fmt.Println("partial-refresh saving collapses; per-bank commands keep it intact.")
}
