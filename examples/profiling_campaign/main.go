// Profiling campaign: close the loop the paper assumes - measure a
// simulated chip's retention profile with a REAPER-style campaign, bin the
// measured profile, and drive VRL with it safely under the worst-case
// stored data pattern.
//
//	go run ./examples/profiling_campaign
package main

import (
	"fmt"
	"log"
	"sort"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

func main() {
	geom := device.BankGeometry{Rows: 2048, Cols: 32}
	fmt.Printf("profiling a %s chip...\n", geom)
	res, err := profiler.DefaultCampaign(geom, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d test rounds (%d intervals x %d patterns)\n",
		res.Rounds, res.Rounds/len(retention.Patterns), len(retention.Patterns))
	if bad := profiler.VerifyConservative(res); bad != 0 {
		log.Fatalf("profiler overestimated %d rows", bad)
	}
	fmt.Println("soundness check: no row's measured retention exceeds its worst-pattern truth")

	counts, err := res.Profile.BinCounts(retention.RAIDRBins)
	if err != nil {
		log.Fatal(err)
	}
	bins := make([]float64, 0, len(counts))
	for b := range counts {
		bins = append(bins, b)
	}
	sort.Float64s(bins)
	fmt.Println("\nmeasured RAIDR binning:")
	for _, b := range bins {
		fmt.Printf("  %4.0f ms: %5d rows\n", b*1000, counts[b])
	}

	// Drive VRL with the measured profile against the worst stored pattern.
	params := device.Default90nm()
	rm, err := core.PaperRestoreModel(params, geom)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.NewVRL(res.Profile, core.Config{Restore: rm})
	if err != nil {
		log.Fatal(err)
	}
	bank, err := dram.NewBank(res.Profile, retention.ExpDecay{}, retention.PatternAlternating)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(bank, sched, nil, sim.Options{Duration: 0.768, TCK: params.TCK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVRL on the measured profile: %d fulls, %d partials, %d violations\n",
		st.FullRefreshes, st.PartialRefreshes, st.Violations)
	if st.Violations == 0 {
		fmt.Println("the measured profile drives partial refreshes safely - the closed loop works")
	}
}
