// Custom scheduler: implement a new refresh policy against the in-tree
// scheduler interface and evaluate it with the same bank model, trace
// substrate, and integrity checks the paper's policies use.
//
// The example policy, "Naive-Partial", issues ONLY partial refreshes -
// ignoring MPRSF - and demonstrates why that is unsafe: weak rows drop below
// the sensing limit and the bank model reports data-integrity violations.
// Its safe counterpart here is plain VRL, which caps partial streaks at each
// row's MPRSF.
//
//	go run ./examples/custom_scheduler
package main

import (
	"fmt"
	"log"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// naivePartial refreshes every row at its binned period with nothing but
// low-latency partial refreshes. It satisfies core.Scheduler.
type naivePartial struct {
	periods []float64
	rm      core.RestoreModel
}

func (s *naivePartial) Name() string           { return "Naive-Partial" }
func (s *naivePartial) Period(row int) float64 { return s.periods[row] }
func (s *naivePartial) OnAccess(int, float64)  {}
func (s *naivePartial) MPRSF(int) int          { return 1 << 30 }
func (s *naivePartial) RefreshOp(int, float64) core.Op {
	return core.Op{Full: false, Cycles: s.rm.PartialCycles, Alpha: s.rm.AlphaPartial}
}

func main() {
	params := device.Default90nm()
	geom := device.PaperBank
	dist := retention.DefaultCellDistribution()
	profile, err := retention.NewPaperProfile(dist, 42)
	if err != nil {
		log.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(params, geom)
	if err != nil {
		log.Fatal(err)
	}
	periods, err := profile.Periods(retention.RAIDRBins)
	if err != nil {
		log.Fatal(err)
	}

	vrl, err := core.NewVRL(profile, core.Config{Restore: rm})
	if err != nil {
		log.Fatal(err)
	}
	schedulers := []core.Scheduler{
		vrl,
		&naivePartial{periods: periods, rm: rm},
	}

	const duration = 0.768
	fmt.Printf("%-14s %12s %12s %11s\n", "scheduler", "busy cycles", "violations", "verdict")
	for _, sched := range schedulers {
		// Worst-case stored pattern: the most leaky configuration.
		bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAlternating)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(bank, sched, nil, sim.Options{Duration: duration, TCK: params.TCK})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "SAFE"
		if st.Violations > 0 {
			verdict = "DATA LOSS"
		}
		fmt.Printf("%-14s %12d %12d %11s\n", st.Scheduler, st.BusyCycles, st.Violations, verdict)
	}
	fmt.Println("\nthe naive all-partial policy is cheaper but loses data on weak rows;")
	fmt.Println("VRL's MPRSF computation is exactly what makes partial refreshes safe.")
}
