// Quickstart: build the paper's evaluation system, replay one workload, and
// compare the refresh overhead of all four scheduling policies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vrldram"
)

func main() {
	// The zero-value options reproduce the paper's setup: an 8192x32 bank at
	// 90 nm with the calibrated retention profile and nbits=2 counters.
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One hyperperiod of the RAIDR bins (LCM of 64/128/192/256 ms).
	const duration = 0.768

	// A memory-intensive workload: the Redis background-save trace.
	accesses, err := sys.GenerateTrace("bgsave", duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d accesses of 'bgsave' over %.0f ms\n\n", len(accesses), duration*1000)

	fmt.Printf("%-12s %10s %10s %12s %12s %6s\n",
		"scheduler", "fulls", "partials", "busy cycles", "energy (uJ)", "viol")
	var baseline int64
	for _, kind := range vrldram.SchedulerKinds {
		st, err := sys.Simulate(kind, accesses, duration)
		if err != nil {
			log.Fatal(err)
		}
		if kind == vrldram.SchedRAIDR {
			baseline = st.BusyCycles
		}
		fmt.Printf("%-12s %10d %10d %12d %12.2f %6d\n",
			st.Scheduler, st.FullRefreshes, st.PartialRefreshes, st.BusyCycles,
			st.RefreshEnergy*1e6, st.Violations)
	}

	st, err := sys.Simulate(vrldram.SchedVRLAccess, accesses, duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVRL-Access spends %.1f%% fewer cycles refreshing than RAIDR (paper: ~34%% on average)\n",
		100*(1-float64(st.BusyCycles)/float64(baseline)))

	partial, full := sys.RefreshLatencies()
	fmt.Printf("refresh latencies: partial %d cycles, full %d cycles (paper Section 3.1: 11 and 19)\n",
		partial, full)
}
