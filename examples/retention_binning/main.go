// Retention binning walkthrough: from a profiled bank to RAIDR refresh
// periods to per-row MPRSF values - the pipeline behind the paper's
// Figure 3b and Algorithm 1.
//
//	go run ./examples/retention_binning
package main

import (
	"fmt"
	"log"
	"sort"

	"vrldram"
)

func main() {
	sys, err := vrldram.NewSystem(vrldram.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: RAIDR bins the bank's rows by profiled retention time.
	counts, err := sys.BinCounts()
	if err != nil {
		log.Fatal(err)
	}
	bins := make([]float64, 0, len(counts))
	for b := range counts {
		bins = append(bins, b)
	}
	sort.Float64s(bins)
	fmt.Println("RAIDR refresh-period binning (paper Figure 3b):")
	for _, b := range bins {
		fmt.Printf("  %4.0f ms bin: %5d rows\n", b*1000, counts[b])
	}

	// Step 2: VRL-DRAM assigns each row an MPRSF - the number of low-latency
	// partial refreshes it sustains between full refreshes.
	hist, err := sys.MPRSFHistogram()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMPRSF assignment (nbits = 2, so at most 3 partials):")
	total := 0
	for m, c := range hist {
		fmt.Printf("  MPRSF = %d: %5d rows\n", m, c)
		total += c
	}
	fmt.Printf("  total:     %5d rows\n", total)

	// Step 3: what that buys - refresh-only overhead comparison.
	const duration = 0.768
	raidr, err := sys.Simulate(vrldram.SchedRAIDR, nil, duration)
	if err != nil {
		log.Fatal(err)
	}
	vrl, err := sys.Simulate(vrldram.SchedVRL, nil, duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefresh overhead over %.0f ms: RAIDR %d cycles, VRL %d cycles (%.1f%% lower)\n",
		duration*1000, raidr.BusyCycles, vrl.BusyCycles,
		100*(1-float64(vrl.BusyCycles)/float64(raidr.BusyCycles)))
	fmt.Printf("data-integrity violations: RAIDR %d, VRL %d\n", raidr.Violations, vrl.Violations)
}
