package vrldram_test

import (
	"testing"

	"vrldram"
)

func TestMemoryLatencyOrdering(t *testing.T) {
	sys := newSystem(t)
	const duration = 0.256
	accesses, err := sys.GenerateTrace("bgsave", duration)
	if err != nil {
		t.Fatal(err)
	}
	raidr, err := sys.MemoryLatency(vrldram.SchedRAIDR, accesses, duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	vrl, err := sys.MemoryLatency(vrldram.SchedVRL, accesses, duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raidr.Requests == 0 || raidr.Requests != vrl.Requests {
		t.Fatalf("request accounting: %d vs %d", raidr.Requests, vrl.Requests)
	}
	if vrl.RefreshBusyCycles >= raidr.RefreshBusyCycles {
		t.Fatalf("VRL busy %d !< RAIDR %d", vrl.RefreshBusyCycles, raidr.RefreshBusyCycles)
	}
	if vrl.AvgLatency > raidr.AvgLatency {
		t.Fatalf("VRL avg latency %.3f worse than RAIDR %.3f", vrl.AvgLatency, raidr.AvgLatency)
	}
	if raidr.Violations+vrl.Violations != 0 {
		t.Fatal("violations in safe configurations")
	}
	// Elastic slack is accepted and postpones nothing on a sparse trace
	// without breaking anything.
	elastic, err := sys.MemoryLatency(vrldram.SchedVRL, accesses, duration, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if elastic.Violations != 0 {
		t.Fatal("elastic run violated")
	}
	if _, err := sys.MemoryLatency("bogus", nil, duration, 0); err == nil {
		t.Fatal("unknown scheduler must error")
	}
	if _, err := sys.MemoryLatency(vrldram.SchedVRL, nil, duration, 0.9); err == nil {
		t.Fatal("absurd slack must error")
	}
}

func TestProfileChip(t *testing.T) {
	rep, err := vrldram.ProfileChip(512, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
	total := 0
	for _, c := range rep.BinCounts {
		total += c
	}
	if total != 512 {
		t.Fatalf("binned %d rows, want 512", total)
	}
	if !(rep.MinMS >= 64 && rep.MinMS <= rep.MedianMS && rep.MedianMS <= rep.MaxMS) {
		t.Fatalf("summary ordering wrong: %+v", rep)
	}
	if _, err := vrldram.ProfileChip(0, 32, 7); err == nil {
		t.Fatal("bad geometry must error")
	}
}

func TestSimulateWithVRT(t *testing.T) {
	sys := newSystem(t)
	raw, err := sys.SimulateWithVRT(0.768, false)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Violations == 0 {
		t.Fatal("VRT against a static profile should violate")
	}
	if raw.CorrectedErrors != 0 || raw.RowsUpgraded != 0 {
		t.Fatal("unmitigated run must not classify or upgrade")
	}
	mit, err := sys.SimulateWithVRT(0.768, true)
	if err != nil {
		t.Fatal(err)
	}
	if mit.CorrectedErrors == 0 || mit.RowsUpgraded == 0 {
		t.Fatal("mitigated run should correct and upgrade")
	}
}

func TestAtTemperature(t *testing.T) {
	sys := newSystem(t)
	// Cooler than the profiling temperature: safe.
	cool := sys.AtTemperature(45)
	st, err := cool.Simulate(vrldram.SchedVRL, nil, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("cool operation violated: %d", st.Violations)
	}
	// Hotter: the static profile loses data.
	hot := sys.AtTemperature(95)
	st, err = hot.Simulate(vrldram.SchedVRL, nil, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations == 0 {
		t.Fatal("above-rated temperature should violate with a static profile")
	}
	// The original system is untouched.
	st, err = sys.Simulate(vrldram.SchedVRL, nil, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatal("AtTemperature mutated the original system")
	}
}
