package vrldram

import (
	"fmt"
	"sort"

	"vrldram/internal/dram"
	"vrldram/internal/memctrl"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

// This file extends the facade with the evaluation capabilities beyond
// refresh-overhead accounting: command-level latency, retention profiling,
// and variable-retention-time runs.

// LatencyStats reports a command-level controller run.
type LatencyStats struct {
	Scheduler          string
	Requests           int64
	RowHitRate         float64
	AvgLatency         float64 // cycles
	P95Latency         int64
	MaxLatency         int64
	RefreshBusyCycles  int64
	StalledByRefresh   int64
	RefreshesPostponed int64
	Violations         int
}

// MemoryLatency replays the accesses through the command-level memory
// controller (FR-FCFS, open-row policy, refresh blocking) under the named
// refresh policy, returning request-latency statistics. elasticSlack > 0
// enables JEDEC-style refresh postponement by that fraction of each row's
// period.
func (s *System) MemoryLatency(kind SchedulerKind, accesses []Access, duration, elasticSlack float64) (LatencyStats, error) {
	sched, err := s.newScheduler(kind)
	if err != nil {
		return LatencyStats{}, err
	}
	bank, err := dram.NewBank(s.profile, s.decay, s.pattern)
	if err != nil {
		return LatencyStats{}, err
	}
	reqs := make([]memctrl.Request, len(accesses))
	for i, a := range accesses {
		reqs[i] = memctrl.Request{
			Arrival: int64(a.Time/s.params.TCK + 0.5),
			Row:     a.Row,
			Write:   a.Write,
		}
	}
	st, _, err := memctrl.Run(bank, sched, reqs, memctrl.Options{
		Timing:       memctrl.DefaultTiming(),
		TCK:          s.params.TCK,
		Duration:     duration,
		ElasticSlack: elasticSlack,
	})
	if err != nil {
		return LatencyStats{}, err
	}
	return LatencyStats{
		Scheduler:          st.Scheduler,
		Requests:           st.Requests,
		RowHitRate:         st.RowHitRate,
		AvgLatency:         st.AvgLatency,
		P95Latency:         st.P95Latency,
		MaxLatency:         st.MaxLatency,
		RefreshBusyCycles:  st.RefreshBusyCycles,
		StalledByRefresh:   st.StalledByRefresh,
		RefreshesPostponed: st.RefreshesPostponed,
		Violations:         st.Violations,
	}, nil
}

// ProfileReport is the outcome of a simulated retention profiling campaign.
type ProfileReport struct {
	Rounds    int
	BinCounts map[float64]int // refresh period (s) -> rows
	MinMS     float64         // weakest measured retention (ms)
	MedianMS  float64
	MaxMS     float64
}

// ProfileChip measures the retention profile of a freshly sampled chip of
// the given geometry with a REAPER-style campaign (see internal/profiler)
// and returns its RAIDR binning. The campaign is verified conservative: it
// never reports more retention than the worst-pattern truth.
func ProfileChip(rows, cols int, seed int64) (ProfileReport, error) {
	res, err := profiler.DefaultCampaign(geomOf(rows, cols), seed)
	if err != nil {
		return ProfileReport{}, err
	}
	if bad := profiler.VerifyConservative(res); bad != 0 {
		return ProfileReport{}, fmt.Errorf("vrldram: profiler overestimated %d rows", bad)
	}
	counts, err := res.Profile.BinCounts(retention.RAIDRBins)
	if err != nil {
		return ProfileReport{}, err
	}
	vals := append([]float64(nil), res.Profile.Profiled...)
	sort.Float64s(vals)
	return ProfileReport{
		Rounds:    res.Rounds,
		BinCounts: counts,
		MinMS:     vals[0] * 1000,
		MedianMS:  vals[len(vals)/2] * 1000,
		MaxMS:     vals[len(vals)-1] * 1000,
	}, nil
}

// VRTStats reports a simulation under variable retention time.
type VRTStats struct {
	Stats
	CorrectedErrors     int64
	UncorrectableErrors int64
	RowsUpgraded        int64
}

// SimulateWithVRT runs the VRL policy against a bank whose retention is
// modulated by the default variable-retention-time process, optionally with
// online ECC+AVATAR mitigation (correct single-bit sags and demote the row
// to the fastest bin on the spot).
func (s *System) SimulateWithVRT(duration float64, mitigate bool) (VRTStats, error) {
	sched, err := s.newScheduler(SchedVRL)
	if err != nil {
		return VRTStats{}, err
	}
	bank, err := dram.NewBank(s.profile, s.decay, s.pattern)
	if err != nil {
		return VRTStats{}, err
	}
	vrt := retention.DefaultVRT()
	if err := bank.SetVRT(&vrt); err != nil {
		return VRTStats{}, err
	}
	opts := simOptions(s, duration)
	if mitigate {
		classifier := defaultClassifier()
		opts.ECC = &classifier
		opts.UpgradeOnCorrect = true
	}
	st, err := runSim(bank, sched, trace.Empty{}, opts)
	if err != nil {
		return VRTStats{}, err
	}
	eb, err := s.pm.RefreshEnergy(st, s.params.TCK)
	if err != nil {
		return VRTStats{}, err
	}
	return VRTStats{
		Stats: Stats{
			Scheduler:        st.Scheduler,
			Duration:         st.Duration,
			FullRefreshes:    st.FullRefreshes,
			PartialRefreshes: st.PartialRefreshes,
			BusyCycles:       st.BusyCycles,
			Accesses:         st.Accesses,
			Violations:       st.Violations,
			OverheadFraction: st.OverheadFraction(s.params.TCK),
			RefreshEnergy:    eb.Total,
		},
		CorrectedErrors:     st.CorrectedErrors,
		UncorrectableErrors: st.UncorrectableErrors,
		RowsUpgraded:        st.RowsUpgraded,
	}, nil
}

// AtTemperature returns a copy of the system whose bank operates at the
// given temperature (degC) while the scheduler keeps the original profile
// (measured at 85 degC); running hotter than the profiling temperature is
// expected to violate.
func (s *System) AtTemperature(tempC float64) *System {
	tm := retention.DefaultTempModel()
	out := *s
	scaled := tm.AtTemperature(s.profile, tempC)
	// The scheduler consumes the original profile; only the bank's physical
	// (True) retention changes. Build a hybrid: Profiled from the original,
	// True from the scaled copy.
	out.profile = &retention.BankProfile{
		Geom:     s.profile.Geom,
		True:     scaled.True,
		Profiled: s.profile.Profiled,
	}
	return &out
}
