// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (the regenerators of DESIGN.md's experiment index), plus
// micro-benchmarks of the hot building blocks. Run with
//
//	go test -bench=. -benchmem
package vrldram_test

import (
	"testing"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/circuit/netlists"
	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/exp"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// fastCfg shortens the trace-driven experiments so the full benchmark sweep
// stays tractable; the paper-default window is exercised by the tests.
func fastCfg() exp.Config {
	cfg := exp.Default()
	cfg.Duration = 0.256
	return cfg
}

func benchExperiment(b *testing.B, run exp.Runner, cfg exp.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- One benchmark per paper artifact -------------------------------------------

func BenchmarkFigure1a(b *testing.B) { benchExperiment(b, exp.Figure1a, exp.Default()) }
func BenchmarkFigure1b(b *testing.B) { benchExperiment(b, exp.Figure1b, exp.Default()) }
func BenchmarkFigure3a(b *testing.B) { benchExperiment(b, exp.Figure3a, exp.Default()) }
func BenchmarkFigure3b(b *testing.B) { benchExperiment(b, exp.Figure3b, exp.Default()) }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, exp.Figure4, fastCfg()) }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, exp.Figure5, exp.Default()) }
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, exp.Table1, exp.Default()) }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, exp.Table2, exp.Default()) }
func BenchmarkPower(b *testing.B)    { benchExperiment(b, exp.PowerComparison, fastCfg()) }
func BenchmarkTauPartialSweep(b *testing.B) {
	benchExperiment(b, exp.TauPartialSweep, fastCfg())
}
func BenchmarkPerfImpact(b *testing.B) { benchExperiment(b, exp.PerfImpact, fastCfg()) }

// --- Ablation benches (DESIGN.md Section 8) ---------------------------------------

func BenchmarkAblationGuardband(b *testing.B) { benchExperiment(b, exp.GuardbandSweep, fastCfg()) }
func BenchmarkAblationNBits(b *testing.B)     { benchExperiment(b, exp.NBitsSweep, fastCfg()) }
func BenchmarkAblationDecay(b *testing.B)     { benchExperiment(b, exp.DecaySweep, fastCfg()) }
func BenchmarkAblationCoverage(b *testing.B)  { benchExperiment(b, exp.CoverageSweep, fastCfg()) }
func BenchmarkAblationVRT(b *testing.B)       { benchExperiment(b, exp.VRTImpact, fastCfg()) }
func BenchmarkAblationTemperature(b *testing.B) {
	benchExperiment(b, exp.TemperatureSweep, fastCfg())
}
func BenchmarkAblationDensity(b *testing.B) { benchExperiment(b, exp.DensitySweep, fastCfg()) }
func BenchmarkAblationRank(b *testing.B)    { benchExperiment(b, exp.RankSweep, fastCfg()) }
func BenchmarkAblationElastic(b *testing.B) { benchExperiment(b, exp.ElasticSweep, fastCfg()) }
func BenchmarkAblationRankPerf(b *testing.B) {
	benchExperiment(b, exp.RankPerfSweep, fastCfg())
}
func BenchmarkAblationMargin(b *testing.B) { benchExperiment(b, exp.SenseMarginSweep, fastCfg()) }
func BenchmarkAblationSALP(b *testing.B)   { benchExperiment(b, exp.SALPSweep, fastCfg()) }

// --- Micro-benchmarks of the building blocks --------------------------------------

// BenchmarkAnalyticTauPre measures the closed-form model query of Table 1's
// "Our Model" wall-clock column.
func BenchmarkAnalyticTauPre(b *testing.B) {
	m := analytic.MustNew(device.Default90nm(), device.PaperBank)
	for i := 0; i < b.N; i++ {
		_ = m.TauPre(analytic.PreSenseTargetDefault)
	}
}

// BenchmarkSpicePreSense measures the transient-simulation counterpart of
// Table 1's SPICE column (smallest configuration) in its steady state: one
// PreSenseMeter re-measured per iteration, the shape repeated-measurement
// campaigns (sweeps, profiling) actually run in. Circuit construction and
// solver buffer growth are paid once outside the timed loop.
func BenchmarkSpicePreSense(b *testing.B) {
	p := device.Default90nm()
	g := device.BankGeometry{Rows: 2048, Cols: 32}
	m, err := netlists.NewPreSenseMeter(p, g, "ones", 0.95)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Measure(); err != nil { // warm the solver's workspaces
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Measure(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpicePreSenseCold is the one-shot variant: netlist construction,
// solver setup, and simulation all inside the timed loop, matching what a
// single cold MeasurePreSense call costs.
func BenchmarkSpicePreSenseCold(b *testing.B) {
	p := device.Default90nm()
	g := device.BankGeometry{Rows: 2048, Cols: 32}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := netlists.MeasurePreSense(p, g, "ones", 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeMPRSF measures the per-row mechanism cost.
func BenchmarkComputeMPRSF(b *testing.B) {
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		b.Fatal(err)
	}
	decay := retention.ExpDecay{}
	for i := 0; i < b.N; i++ {
		_ = core.ComputeMPRSF(1.5, 0.256, rm, decay, core.ChargeGuardband, 3)
	}
}

// BenchmarkSimRefreshOnly measures a refresh-only VRL run over one bin
// hyperperiod on the paper bank.
func BenchmarkSimRefreshOnly(b *testing.B) {
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			b.Fatal(err)
		}
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(bank, sched, nil, sim.Options{Duration: 0.768, TCK: p.TCK}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRefreshOnlyReusable is BenchmarkSimRefreshOnly with an
// explicit sim.Reusable, isolating the steady-state cost once the event
// queue is owned by the caller instead of the internal pool. One warm run
// populates the timing wheel's lazily-allocated buckets outside the timed
// loop, so the numbers reflect the reuse path rather than first-run growth.
func BenchmarkSimRefreshOnlyReusable(b *testing.B) {
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewReusable(device.PaperBank.Rows)
	warmSched, err := core.NewVRL(prof, core.Config{Restore: rm})
	if err != nil {
		b.Fatal(err)
	}
	warmBank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Run(warmBank, warmSched, nil, sim.Options{Duration: 0.768, TCK: p.TCK}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			b.Fatal(err)
		}
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(bank, sched, nil, sim.Options{Duration: 0.768, TCK: p.TCK}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthesizing one benchmark's trace.
func BenchmarkTraceGeneration(b *testing.B) {
	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Generate(device.PaperBank.Rows, 0.256, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileConstruction measures building the paper's retention
// profile.
func BenchmarkProfileConstruction(b *testing.B) {
	dist := retention.DefaultCellDistribution()
	for i := 0; i < b.N; i++ {
		if _, err := retention.NewPaperProfile(dist, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBankBatchRefresh measures the raw columnar kernel: one
// RefreshBatch over every row of the paper bank per iteration, the shape the
// batched simulator backend drains a timing-wheel bucket in. The per-op time
// bumps between iterations keep every batch valid without re-allocating it.
func BenchmarkBankBatchRefresh(b *testing.B) {
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		b.Fatal(err)
	}
	bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		b.Fatal(err)
	}
	rows := bank.Geom.Rows
	ops := make([]dram.BatchOp, rows)
	results := make([]dram.RefreshResult, rows)
	const period = 0.064
	for r := range ops {
		ops[r] = dram.BatchOp{Row: r, Time: period, Alpha: 1}
	}
	if err := bank.RefreshBatch(ops, results); err != nil { // warm scratch columns
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := period * float64(i+2)
		for r := range ops {
			ops[r].Time = t
		}
		if err := bank.RefreshBatch(ops, results); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// deviceYearWindow is the simulated span of the device-year benchmarks: four
// bin hyperperiods, long enough that steady-state behavior (and any
// fast-forward engagement) dominates the one-time run setup.
const deviceYearWindow = 4 * 0.768

// reportDeviceYear converts the measured wall-clock into the two north-star
// metrics: the run cost extrapolated to one simulated device-year, and the
// aggregate row-refresh throughput.
func reportDeviceYear(b *testing.B, refreshes int64) {
	const secPerYear = 365.25 * 24 * 3600
	nsPerOp := b.Elapsed().Seconds() / float64(b.N) * 1e9
	b.ReportMetric(nsPerOp*(secPerYear/deviceYearWindow)/1e6, "ms/device-year")
	if refreshes > 0 {
		b.ReportMetric(float64(refreshes)/b.Elapsed().Seconds(), "rows/s")
	}
}

// BenchmarkDeviceYear tracks the ROADMAP north star ("a tREFW-scale
// device-year should cost milliseconds"): a refresh-only VRL run over four
// bin hyperperiods on the paper bank, with the wall-clock cost extrapolated
// to one simulated device-year (ms/device-year) and the row-refresh
// throughput (rows/s). The quiescent schedule makes this the fast-forward
// engine's home turf: BackendAuto resolves to it for the whole run.
func BenchmarkDeviceYear(b *testing.B) {
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewReusable(device.PaperBank.Rows)
	var refreshes int64
	run := func() {
		sched, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			b.Fatal(err)
		}
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run(bank, sched, nil, sim.Options{Duration: deviceYearWindow, TCK: p.TCK})
		if err != nil {
			b.Fatal(err)
		}
		refreshes += st.FullRefreshes + st.PartialRefreshes
	}
	run() // warm the queue's lazily-grown buffers
	refreshes = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	reportDeviceYear(b, refreshes)
}

// BenchmarkDeviceYearActive is the device-year cost when the run is NOT
// quiescent: the dpd-adversary scenario perturbs the decay law and a trace
// keeps access events interleaved with refreshes, so the fast-forward engine
// must stay disengaged (no SteadyModulator, trace records inside every
// horizon) and the batched path carries the run. The pair of device-year
// numbers bounds what a mixed fleet should expect; the gap between them is
// what fast-forwarding buys on steady devices, degrading gracefully to this
// figure under activity.
func BenchmarkDeviceYearActive(b *testing.B) {
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		b.Fatal(err)
	}
	const nAccesses = 4096
	recs := make([]trace.Record, nAccesses)
	for i := range recs {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		recs[i] = trace.Record{
			Time: float64(i) * deviceYearWindow / nAccesses,
			Op:   op,
			Row:  (i * 37) % device.PaperBank.Rows,
		}
	}
	r := sim.NewReusable(device.PaperBank.Rows)
	var refreshes int64
	run := func(seed int64) {
		sched, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			b.Fatal(err)
		}
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			b.Fatal(err)
		}
		env, err := scenario.BuildEnv(scenario.Ref{Name: "dpd-adversary"}, deviceYearWindow, seed)
		if err != nil {
			b.Fatal(err)
		}
		if err := bank.SetModulator(env); err != nil {
			b.Fatal(err)
		}
		opts := sim.Options{Duration: deviceYearWindow, TCK: p.TCK, Scenario: env}
		st, err := r.Run(bank, sched, trace.NewSliceSource(recs), opts)
		if err != nil {
			b.Fatal(err)
		}
		refreshes += st.FullRefreshes + st.PartialRefreshes
	}
	run(42) // warm the queue's lazily-grown buffers
	refreshes = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(42)
	}
	reportDeviceYear(b, refreshes)
}
