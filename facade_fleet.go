package vrldram

import (
	"context"
	"io"
	"time"

	"vrldram/internal/fleet"
	"vrldram/internal/scenario"
	"vrldram/internal/serve"
)

// This file is the facade over the fleet layer (internal/fleet): dispatching
// a population of simulated devices across local workers and remote
// vrlserved instances with retries, quarantine, and a resumable manifest.
// cmd/vrlfleet is a thin wrapper over the same internals; see
// ARCHITECTURE.md, "The fleet layer".

// FleetOptions describes a fleet campaign: the device population plus the
// dispatch policy. Zero values resolve to the fleet defaults (64-device
// shards, scheduler "vrl", 85 degC nominal temperature, 3 attempts per
// shard).
type FleetOptions struct {
	// Population knobs; Devices and Duration are required.
	Devices    int
	Seed       int64
	Scheduler  string
	Duration   float64
	Rows, Cols int
	ShardSize  int
	TempMeanC  float64 // mean operating temperature (default 85 degC)
	TempSwingC float64 // per-device deterministic spread around the mean
	WeakFrac   float64 // fraction of devices with a transient-weak-cell fault plan

	// Scenarios is the workload catalog as a mixture expression, e.g.
	// "diurnal=3,vrt-storm@v1=1" (see scenario.ParseMix). Each device
	// deterministically draws one named composite-stress scenario from the
	// mixture. Empty means no scenario layer.
	Scenarios string

	// Guard wraps every device's scheduler in the graceful-degradation
	// guard; Scrub adds the online ECC patrol scrub and repair pipeline.
	// Spares is the per-device spare-row budget when scrubbing (0 = default,
	// negative = none) and ScrubSweep the patrol sweep period in seconds
	// (0 = default).
	Guard      bool
	Scrub      bool
	Spares     int
	ScrubSweep float64

	// ManifestPath persists per-shard campaign state; a rerun with the same
	// path resumes only unfinished shards. Empty keeps it in memory.
	ManifestPath string

	// MaxAttempts is the per-shard retry budget; a shard that exhausts it is
	// quarantined and reported, never fatal. ShardTimeout deadlines each
	// attempt; HedgeAfter duplicates stragglers onto idle slots (0 = off).
	MaxAttempts  int
	ShardTimeout time.Duration
	HedgeAfter   time.Duration

	// LocalWorkers sizes the in-process executor (0 = GOMAXPROCS, negative
	// disables local execution). ServeAddr, when set, adds a remote executor
	// running ServeSlots shards concurrently against that vrlserved
	// instance.
	LocalWorkers int
	ServeAddr    string
	ServeSlots   int

	// Logf receives dispatch one-liners (nil = silent).
	Logf func(format string, args ...any)
}

// RunFleetCampaign runs the campaign and renders the coverage report to w.
// The returned flag reports full coverage: false means the campaign
// completed but quarantined at least one shard (named in the report). An
// interrupted campaign (ctx cancelled) returns the context error; rerunning
// with the same ManifestPath resumes it.
func RunFleetCampaign(ctx context.Context, w io.Writer, o FleetOptions) (complete bool, err error) {
	spec := fleet.Spec{
		Devices:    o.Devices,
		Seed:       o.Seed,
		Scheduler:  o.Scheduler,
		Duration:   o.Duration,
		Rows:       o.Rows,
		Cols:       o.Cols,
		ShardSize:  o.ShardSize,
		TempMeanC:  o.TempMeanC,
		TempSwingC: o.TempSwingC,
		WeakFrac:   o.WeakFrac,
		Guard:      o.Guard,
		Scrub:      o.Scrub,
		Spares:     o.Spares,
		ScrubSweep: o.ScrubSweep,
	}
	if o.Scenarios != "" {
		mix, err := scenario.ParseMix(o.Scenarios)
		if err != nil {
			return false, err
		}
		spec.Scenarios = mix
	}
	var execs []fleet.Executor
	if o.LocalWorkers >= 0 {
		execs = append(execs, fleet.NewLocalExecutor(o.LocalWorkers))
	}
	if o.ServeAddr != "" {
		execs = append(execs, serve.NewShardExecutor(serve.ClientOptions{Addr: o.ServeAddr, Logf: o.Logf}, o.ServeSlots))
	}
	rep, err := fleet.Run(ctx, spec, execs, fleet.Options{
		ManifestPath: o.ManifestPath,
		MaxAttempts:  o.MaxAttempts,
		ShardTimeout: o.ShardTimeout,
		HedgeAfter:   o.HedgeAfter,
		Logf:         o.Logf,
	})
	if err != nil {
		return false, err
	}
	rep.Fprint(w)
	return rep.Complete(), nil
}
