package vrldram

import (
	"context"
	"io"
	"net"
	"time"

	"vrldram/internal/serve"
)

// This file is the facade over the service layer (internal/serve): running
// the crash-tolerant simulation daemon in-process, and driving experiments
// on a remote one. cmd/vrlserved and vrlexp -remote are thin wrappers over
// the same internals; see ARCHITECTURE.md, "The service layer".

// ServeOptions configures an embedded simulation service. The zero value
// of every field except DataDir resolves to a usable default.
type ServeOptions struct {
	// DataDir roots all durable session state (required). A later Serve
	// over the same directory resumes every in-flight session.
	DataDir string
	// MaxSessions bounds concurrently live sessions (0 = default).
	MaxSessions int
	// Workers sizes the shared job worker pool (0 = GOMAXPROCS).
	Workers int
	// IdleTimeout reaps half-open connections (0 = default).
	IdleTimeout time.Duration
	// Logf receives operational one-liners (nil = silent).
	Logf func(format string, args ...any)
}

// Serve runs the crash-tolerant simulation service on ln until ctx is
// cancelled, then drains gracefully: running jobs write a final checkpoint
// and park, attached clients are told to retry, and Serve returns once
// everything has stopped. The listener is closed by Serve.
func Serve(ctx context.Context, ln net.Listener, opts ServeOptions) error {
	srv, err := serve.New(serve.Options{
		DataDir:     opts.DataDir,
		MaxSessions: opts.MaxSessions,
		Workers:     opts.Workers,
		IdleTimeout: opts.IdleTimeout,
		Logf:        opts.Logf,
	})
	if err != nil {
		return err
	}
	return srv.Serve(ctx, ln)
}

// RunRemoteExperiments submits experiment IDs to a service at addr, waits
// for the results - retrying with backoff through connection loss and
// server restarts, resuming its session via a server-issued token - and
// renders each to w. A nil ids runs the whole registry in the paper's
// order; zero seed and duration keep the paper defaults.
func RunRemoteExperiments(ctx context.Context, w io.Writer, addr string, ids []string, seed int64, duration float64) error {
	cl := serve.NewClient(serve.ClientOptions{Addr: addr})
	results, err := cl.RunCampaign(ctx, serve.CampaignSpec{IDs: ids, Seed: seed, Duration: duration})
	if err != nil {
		return err
	}
	for _, res := range results {
		if err := res.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
