package vrldram

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFleetCampaignFacade drives a small population end to end through
// the public facade: full coverage, a rendered report, and a resumable
// manifest left behind.
func TestRunFleetCampaignFacade(t *testing.T) {
	var buf bytes.Buffer
	opts := FleetOptions{
		Devices:      4,
		Seed:         9,
		Duration:     0.1,
		Rows:         256,
		Cols:         4,
		ShardSize:    2,
		TempSwingC:   8,
		WeakFrac:     0.5,
		ManifestPath: filepath.Join(t.TempDir(), "fleet.manifest"),
		LocalWorkers: 2,
	}
	complete, err := RunFleetCampaign(context.Background(), &buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatalf("small local campaign must cover everything:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"fleet campaign: 4 devices", "coverage: 2/2 shards done", "quarantine: none"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// A rerun over the same manifest resumes instead of recomputing.
	buf.Reset()
	complete, err = RunFleetCampaign(context.Background(), &buf, opts)
	if err != nil || !complete {
		t.Fatalf("resumed campaign: complete=%v err=%v", complete, err)
	}
	if !strings.Contains(buf.String(), "2 shard(s) resumed from manifest") {
		t.Fatalf("rerun did not resume from the manifest:\n%s", buf.String())
	}
}
