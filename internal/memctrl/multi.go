package memctrl

import (
	"container/heap"
	"fmt"
	"sort"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/trace"
)

// Multi-bank front end: N banks served in parallel (bank-level parallelism),
// with refresh issued either per bank (only the refreshed bank blocks) or
// rank-wide (every bank blocks for the slowest bank's operation). This is
// the request-side counterpart of internal/rank's refresh-only accounting:
// it shows all-bank refresh stalling traffic on EVERY bank.

// RefreshGranularity selects the refresh command scope for RunMulti.
type RefreshGranularity int

// Refresh scopes.
const (
	// PerBankRefresh refreshes each bank on its own schedule; other banks
	// keep serving requests.
	PerBankRefresh RefreshGranularity = iota
	// AllBankRefresh issues rank-wide commands: row r refreshes in every
	// bank at the minimum of their periods, with the maximum latency, and
	// every bank is blocked.
	AllBankRefresh
)

// String names the granularity.
func (g RefreshGranularity) String() string {
	switch g {
	case PerBankRefresh:
		return "per-bank"
	case AllBankRefresh:
		return "all-bank"
	default:
		return fmt.Sprintf("RefreshGranularity(%d)", int(g))
	}
}

// MultiRequest is a request addressed to a specific bank.
type MultiRequest struct {
	Arrival int64
	Bank    int
	Row     int
	Write   bool

	Start  int64
	Finish int64
	RowHit bool
}

// Latency returns queuing + service latency in cycles.
func (r MultiRequest) Latency() int64 { return r.Finish - r.Arrival }

// MultiOptions configures a multi-bank run.
type MultiOptions struct {
	Timing      Timing
	TCK         float64
	Duration    float64
	Granularity RefreshGranularity
}

// MultiStats aggregates a multi-bank run.
type MultiStats struct {
	Granularity string
	Scheduler   string
	Banks       int

	Requests   int64
	RowHits    int64
	AvgLatency float64
	P95Latency int64
	MaxLatency int64

	RefreshCommands   int64
	RefreshBusyCycles int64 // summed over banks

	Violations int
}

// bankState is the per-bank service engine shared by the multi-bank loop.
type bankState struct {
	t           Timing
	free        int64
	openRow     int
	rowOpenedAt int64
	pending     []int
}

func newBankState(t Timing) *bankState {
	return &bankState{t: t, openRow: -1, rowOpenedAt: -1}
}

func (b *bankState) idleClose(at int64) {
	if b.openRow < 0 || b.t.TCloseIdle == 0 {
		return
	}
	preReady := b.free
	if m := b.rowOpenedAt + int64(b.t.TRAS); m > preReady {
		preReady = m
	}
	if at-preReady >= int64(b.t.TCloseIdle) {
		b.openRow = -1
	}
}

// serveOne issues the best pending request (FR-FCFS) at or after `now`; the
// request slice is shared with the caller.
func (b *bankState) serveOne(now int64, reqs []MultiRequest, hits *int64) {
	if len(b.pending) == 0 {
		return
	}
	pick := 0
	if b.openRow >= 0 {
		for k, idx := range b.pending {
			if reqs[idx].Row == b.openRow {
				pick = k
				break
			}
		}
	}
	idx := b.pending[pick]
	b.pending = append(b.pending[:pick], b.pending[pick+1:]...)
	req := &reqs[idx]

	start := now
	if req.Arrival > start {
		start = req.Arrival
	}
	b.idleClose(start)
	var done int64
	if b.openRow == req.Row {
		req.RowHit = true
		*hits++
		done = start + int64(b.t.TCL+b.t.TBL)
	} else {
		pre := start
		if b.openRow >= 0 {
			if m := b.rowOpenedAt + int64(b.t.TRAS); pre < m {
				pre = m
			}
			pre += int64(b.t.TRP)
		}
		done = pre + int64(b.t.TRCD+b.t.TCL+b.t.TBL)
		b.openRow = req.Row
		b.rowOpenedAt = pre
		start = pre
	}
	if req.Write {
		done += int64(b.t.TWR)
	}
	req.Start = start
	req.Finish = done
	b.free = done
}

// closeForRefresh precharges the open row ahead of a refresh, returning the
// cycle the refresh may start.
func (b *bankState) closeForRefresh(start int64) int64 {
	b.idleClose(start)
	if b.openRow >= 0 {
		if m := b.rowOpenedAt + int64(b.t.TRAS); start < m {
			start = m
		}
		start += int64(b.t.TRP)
		b.openRow = -1
	}
	return start
}

// drain serves pending work until the bank would pass `limit` or the queue
// empties.
func (b *bankState) drain(limit int64, reqs []MultiRequest, hits *int64) {
	for len(b.pending) > 0 && b.free < limit {
		before := b.free
		b.serveOne(b.free, reqs, hits)
		if b.free == before {
			break
		}
	}
}

// RunMulti services the request stream against a rank of banks.
func RunMulti(banks []*dram.Bank, scheds []core.Scheduler, reqs []MultiRequest, opts MultiOptions) (MultiStats, []MultiRequest, error) {
	if len(banks) == 0 || len(banks) != len(scheds) {
		return MultiStats{}, nil, fmt.Errorf("memctrl: need matching banks and schedulers, got %d/%d", len(banks), len(scheds))
	}
	if err := opts.Timing.Validate(); err != nil {
		return MultiStats{}, nil, err
	}
	if opts.TCK <= 0 || opts.Duration <= 0 {
		return MultiStats{}, nil, fmt.Errorf("memctrl: TCK and Duration must be positive")
	}
	n := len(banks)
	rows := banks[0].Geom.Rows
	for b := 1; b < n; b++ {
		if banks[b].Geom.Rows != rows {
			return MultiStats{}, nil, fmt.Errorf("memctrl: bank %d geometry mismatch", b)
		}
	}
	horizon := int64(opts.Duration / opts.TCK)
	st := MultiStats{Granularity: opts.Granularity.String(), Scheduler: scheds[0].Name(), Banks: n}

	h := make(eventHeap, 0, rows*n+len(reqs))
	var seq int64
	push := func(ev event) {
		if ev.cycle >= horizon {
			return
		}
		seq++
		ev.seq = seq
		heap.Push(&h, ev)
	}
	// Refresh timeline: per-bank events carry bank in `req`; all-bank events
	// carry only the row.
	period := func(row int) float64 {
		min := scheds[0].Period(row)
		for _, s := range scheds[1:] {
			if p := s.Period(row); p < min {
				min = p
			}
		}
		return min
	}
	switch opts.Granularity {
	case PerBankRefresh:
		for b := 0; b < n; b++ {
			for r := 0; r < rows; r++ {
				p := scheds[b].Period(r)
				if p <= 0 {
					return MultiStats{}, nil, fmt.Errorf("memctrl: bank %d row %d period %g", b, r, p)
				}
				push(event{cycle: int64(staggerFrac(r*n+b) * p / opts.TCK), kind: evRefresh, row: r, req: b})
			}
		}
	case AllBankRefresh:
		for r := 0; r < rows; r++ {
			p := period(r)
			if p <= 0 {
				return MultiStats{}, nil, fmt.Errorf("memctrl: row %d period %g", r, p)
			}
			push(event{cycle: int64(staggerFrac(r) * p / opts.TCK), kind: evRefresh, row: r, req: -1})
		}
	default:
		return MultiStats{}, nil, fmt.Errorf("memctrl: unknown granularity %d", opts.Granularity)
	}

	out := make([]MultiRequest, len(reqs))
	copy(out, reqs)
	var lastArrival int64 = -1
	for i := range out {
		if out[i].Arrival < lastArrival {
			return MultiStats{}, nil, fmt.Errorf("memctrl: request %d out of order", i)
		}
		lastArrival = out[i].Arrival
		if out[i].Bank < 0 || out[i].Bank >= n || out[i].Row < 0 || out[i].Row >= rows {
			return MultiStats{}, nil, fmt.Errorf("memctrl: request %d addresses bank %d row %d", i, out[i].Bank, out[i].Row)
		}
		if out[i].Arrival >= horizon {
			out = out[:i]
			break
		}
		push(event{cycle: out[i].Arrival, kind: evRequest, req: i})
	}

	states := make([]*bankState, n)
	for b := range states {
		states[b] = newBankState(opts.Timing)
	}

	refreshBank := func(b int, row int, start int64) (int64, error) {
		start = states[b].closeForRefresh(start)
		op := scheds[b].RefreshOp(row, float64(start)*opts.TCK)
		if _, err := banks[b].Refresh(row, float64(start)*opts.TCK, op.Alpha); err != nil {
			return 0, err
		}
		end := start + int64(op.Cycles)
		states[b].free = end
		st.RefreshBusyCycles += int64(op.Cycles)
		return end, nil
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		switch ev.kind {
		case evRefresh:
			st.RefreshCommands++
			if ev.req >= 0 {
				// Per-bank refresh.
				b := ev.req
				states[b].drain(ev.cycle, out, &st.RowHits)
				start := ev.cycle
				if states[b].free > start {
					start = states[b].free
				}
				if _, err := refreshBank(b, ev.row, start); err != nil {
					return MultiStats{}, nil, err
				}
				push(event{cycle: ev.cycle + int64(scheds[b].Period(ev.row)/opts.TCK), kind: evRefresh, row: ev.row, req: b})
			} else {
				// All-bank refresh: synchronize, refresh everywhere, block
				// every bank until the slowest finishes.
				start := ev.cycle
				for b := 0; b < n; b++ {
					states[b].drain(ev.cycle, out, &st.RowHits)
					if states[b].free > start {
						start = states[b].free
					}
				}
				end := start
				for b := 0; b < n; b++ {
					e, err := refreshBank(b, ev.row, start)
					if err != nil {
						return MultiStats{}, nil, err
					}
					if e > end {
						end = e
					}
				}
				for b := 0; b < n; b++ {
					states[b].free = end
				}
				push(event{cycle: ev.cycle + int64(period(ev.row)/opts.TCK), kind: evRefresh, row: ev.row, req: -1})
			}
		case evRequest:
			b := out[ev.req].Bank
			states[b].pending = append(states[b].pending, ev.req)
			for len(states[b].pending) > 0 {
				next := states[b].free
				if next < ev.cycle {
					next = ev.cycle
				}
				// Yield only to refreshes that touch THIS bank (its own
				// per-bank refresh or a rank-wide command).
				if h.Len() > 0 && h[0].cycle <= next && h[0].kind == evRefresh &&
					(h[0].req == b || h[0].req < 0) {
					break
				}
				states[b].serveOne(next, out, &st.RowHits)
			}
		}
	}
	for b := range states {
		states[b].drain(1<<62, out, &st.RowHits)
	}

	var sum int64
	lats := make([]int64, 0, len(out))
	for i := range out {
		st.Requests++
		sum += out[i].Latency()
		lats = append(lats, out[i].Latency())
	}
	if st.Requests > 0 {
		st.AvgLatency = float64(sum) / float64(st.Requests)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P95Latency = lats[int(float64(len(lats)-1)*0.95)]
		st.MaxLatency = lats[len(lats)-1]
	}
	for b := range banks {
		st.Violations += len(banks[b].Violations())
	}
	return st, out, nil
}

// MultiRequestsFromTrace interleaves a row-granular trace across n banks:
// global row g maps to bank g%n, row g/n.
func MultiRequestsFromTrace(recs []trace.Record, tck float64, n int) []MultiRequest {
	out := make([]MultiRequest, 0, len(recs))
	for _, r := range recs {
		out = append(out, MultiRequest{
			Arrival: int64(r.Time/tck + 0.5),
			Bank:    r.Row % n,
			Row:     r.Row / n,
			Write:   r.Op == trace.Write,
		})
	}
	return out
}
