package memctrl

import (
	"container/heap"
	"fmt"
	"sort"

	"vrldram/internal/core"
	"vrldram/internal/dram"
)

// Subarray-level parallelism (SALP, Kim et al. ISCA'12 - reference [21] of
// the paper): a bank's rows live in physically independent subarrays, each
// with its own local row buffer, so a refresh can proceed in one subarray
// while requests are served from the others. This is the natural companion
// to VRL: SALP hides refreshes from *other* subarrays, VRL shortens the
// blocking seen by the refreshed one.
//
// The model here is SALP-ideal: subarrays operate fully independently
// (no shared-bus serialization), so the results are an upper bound on the
// technique - stated in the experiment notes.

// SALPStats reports a subarray-parallel run.
type SALPStats struct {
	Scheduler string
	Subarrays int

	Requests   int64
	RowHits    int64
	AvgLatency float64
	P95Latency int64
	MaxLatency int64

	RefreshOps        int64
	RefreshBusyCycles int64
	StalledByRefresh  int64 // requests that waited on a refresh in THEIR subarray

	Violations int
}

// RunSALP services the request stream against one bank whose rows are
// spread over nSub independent subarrays (contiguous row ranges). nSub = 1
// reduces to a single-row-buffer bank.
func RunSALP(bank *dram.Bank, sched core.Scheduler, reqs []Request, opts Options, nSub int) (SALPStats, []Request, error) {
	if err := opts.Timing.Validate(); err != nil {
		return SALPStats{}, nil, err
	}
	if opts.TCK <= 0 || opts.Duration <= 0 {
		return SALPStats{}, nil, fmt.Errorf("memctrl: TCK and Duration must be positive")
	}
	rows := bank.Geom.Rows
	if nSub < 1 || nSub > rows {
		return SALPStats{}, nil, fmt.Errorf("memctrl: subarray count %d outside [1,%d]", nSub, rows)
	}
	rowsPerSub := (rows + nSub - 1) / nSub
	subOf := func(row int) int { return row / rowsPerSub }

	horizon := int64(opts.Duration / opts.TCK)
	st := SALPStats{Scheduler: sched.Name(), Subarrays: nSub}

	h := make(eventHeap, 0, rows+len(reqs))
	var seq int64
	push := func(ev event) {
		if ev.cycle >= horizon {
			return
		}
		seq++
		ev.seq = seq
		heap.Push(&h, ev)
	}
	for r := 0; r < rows; r++ {
		p := sched.Period(r)
		if p <= 0 {
			return SALPStats{}, nil, fmt.Errorf("memctrl: row %d period %g", r, p)
		}
		push(event{cycle: int64(staggerFrac(r) * p / opts.TCK), kind: evRefresh, row: r})
	}

	out := make([]Request, len(reqs))
	copy(out, reqs)
	var lastArrival int64 = -1
	for i := range out {
		if out[i].Arrival < lastArrival {
			return SALPStats{}, nil, fmt.Errorf("memctrl: request %d out of order", i)
		}
		lastArrival = out[i].Arrival
		if out[i].Row < 0 || out[i].Row >= rows {
			return SALPStats{}, nil, fmt.Errorf("memctrl: request %d row %d out of range", i, out[i].Row)
		}
		if out[i].Arrival >= horizon {
			out = out[:i]
			break
		}
		push(event{cycle: out[i].Arrival, kind: evRequest, req: i})
	}

	// Per-subarray service state, reusing the multi-bank engine's bankState
	// with Request in place of MultiRequest via a thin adapter slice.
	states := make([]*bankState, nSub)
	for i := range states {
		states[i] = newBankState(opts.Timing)
	}
	adapt := make([]MultiRequest, len(out))
	for i, r := range out {
		adapt[i] = MultiRequest{Arrival: r.Arrival, Row: r.Row, Write: r.Write}
	}
	lastRefreshEnd := make([]int64, nSub)

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		switch ev.kind {
		case evRefresh:
			sub := subOf(ev.row)
			s := states[sub]
			s.drain(ev.cycle, adapt, &st.RowHits)
			start := ev.cycle
			if s.free > start {
				start = s.free
			}
			start = s.closeForRefresh(start)
			op := sched.RefreshOp(ev.row, float64(start)*opts.TCK)
			if _, err := bank.Refresh(ev.row, float64(start)*opts.TCK, op.Alpha); err != nil {
				return SALPStats{}, nil, err
			}
			s.free = start + int64(op.Cycles)
			lastRefreshEnd[sub] = s.free
			st.RefreshOps++
			st.RefreshBusyCycles += int64(op.Cycles)
			if len(s.pending) > 0 {
				st.StalledByRefresh += int64(len(s.pending))
			}
			push(event{cycle: ev.cycle + int64(sched.Period(ev.row)/opts.TCK), kind: evRefresh, row: ev.row})
		case evRequest:
			sub := subOf(adapt[ev.req].Row)
			s := states[sub]
			if ev.cycle < lastRefreshEnd[sub] {
				st.StalledByRefresh++
			}
			s.pending = append(s.pending, ev.req)
			for len(s.pending) > 0 {
				next := s.free
				if next < ev.cycle {
					next = ev.cycle
				}
				if h.Len() > 0 && h[0].cycle <= next && h[0].kind == evRefresh &&
					subOf(h[0].row) == sub {
					break
				}
				s.serveOne(next, adapt, &st.RowHits)
			}
		}
	}
	for i := range states {
		states[i].drain(1<<62, adapt, &st.RowHits)
	}

	var sum int64
	lats := make([]int64, 0, len(out))
	for i := range out {
		out[i].Start = adapt[i].Start
		out[i].Finish = adapt[i].Finish
		out[i].RowHit = adapt[i].RowHit
		st.Requests++
		sum += out[i].Latency()
		lats = append(lats, out[i].Latency())
	}
	if st.Requests > 0 {
		st.AvgLatency = float64(sum) / float64(st.Requests)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P95Latency = lats[int(float64(len(lats)-1)*0.95)]
		st.MaxLatency = lats[len(lats)-1]
	}
	st.Violations = len(bank.Violations())
	return st, out, nil
}
