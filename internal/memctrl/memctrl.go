// Package memctrl is a command-level DRAM memory controller model: the layer
// that turns the paper's refresh-overhead numbers into end-performance
// impact. A bank is unavailable while a refresh operation is in flight
// (the tRFC window the paper shrinks), so pending reads and writes queue up
// behind it; this model measures by how much.
//
// The controller implements an FR-FCFS-style single-bank front end:
//
//   - an open-row (row buffer) policy with ACT/PRE/CAS timing,
//   - row-hit-first scheduling among queued requests,
//   - refresh operations injected by a core.Scheduler at each row's binned
//     refresh instant, blocking the bank for the operation's tRFC,
//   - charge tracking through the dram.Bank model, so a mis-scheduled
//     refresh policy still surfaces as data-integrity violations here.
//
// Latencies are in DRAM clock cycles, consistent with the rest of the
// repository (tCK from device.Params).
package memctrl

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"sort"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/trace"
)

// Timing holds the command timing constraints in DRAM cycles; defaults are
// DDR3-1600-like and deliberately simple: a row miss costs
// tRP + tRCD + tCL, a row hit tCL, a write adds tWR to the precharge point.
type Timing struct {
	TRCD int // ACT to CAS
	TCL  int // CAS to data
	TRP  int // PRE to ACT
	TRAS int // ACT to PRE (minimum row-open time)
	TWR  int // write recovery before PRE
	TBL  int // burst length on the bus
	// TCloseIdle is the adaptive page policy's idle timeout: a row left open
	// this many cycles with no pending work is precharged in the background
	// (its tRP hides in the idle window). 0 disables auto-close.
	TCloseIdle int
}

// DefaultTiming returns the DDR3-1600-like constraint set.
func DefaultTiming() Timing {
	return Timing{TRCD: 11, TCL: 11, TRP: 11, TRAS: 28, TWR: 12, TBL: 4, TCloseIdle: 64}
}

// Validate reports the first non-positive constraint.
func (t Timing) Validate() error {
	checks := []struct {
		v    int
		name string
	}{
		{t.TRCD, "TRCD"}, {t.TCL, "TCL"}, {t.TRP, "TRP"},
		{t.TRAS, "TRAS"}, {t.TWR, "TWR"}, {t.TBL, "TBL"},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("memctrl: %s must be positive, got %d", c.name, c.v)
		}
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("memctrl: TRAS %d must cover TRCD %d", t.TRAS, t.TRCD)
	}
	if t.TCloseIdle < 0 {
		return fmt.Errorf("memctrl: TCloseIdle must be non-negative, got %d", t.TCloseIdle)
	}
	return nil
}

// Request is one memory request presented to the controller.
type Request struct {
	Arrival int64 // cycle of arrival
	Row     int
	Write   bool

	// Filled by the controller.
	Start  int64 // cycle the bank begins serving it
	Finish int64 // cycle its data completes
	RowHit bool
}

// Latency returns the request's queuing + service latency in cycles.
func (r Request) Latency() int64 { return r.Finish - r.Arrival }

// Stats summarizes one controller run.
type Stats struct {
	Scheduler string

	Requests       int64
	Reads          int64
	Writes         int64
	RowHits        int64
	RowHitRate     float64
	AvgLatency     float64 // cycles
	P95Latency     int64   // cycles
	MaxLatency     int64   // cycles
	AvgReadLatency float64

	RefreshOps         int64
	RefreshBusyCycles  int64
	RefreshesPostponed int64 // elastic postponement steps taken
	// StalledByRefresh counts requests that arrived while a refresh held the
	// bank or queued behind one.
	StalledByRefresh int64

	Violations int

	// ECC classification of sub-limit refresh senses (populated when
	// Options.ECC is set).
	CorrectedErrors     int64
	UncorrectableErrors int64
	// FaultsInjected counts faults delivered by any core.FaultCounter in the
	// scheduler stack (internal/fault injectors).
	FaultsInjected int64
	// Guard carries the degradation controller's counters when a
	// core.GuardReporter (internal/guard) is in the scheduler stack.
	Guard core.GuardStats
	// Scrub carries the patrol scrubber's counters when Options.Scrub ran;
	// ScrubBusyCycles is the bank time its patrol reads consumed.
	Scrub           core.ScrubStats
	ScrubBusyCycles int64
}

// Options configures a run.
type Options struct {
	Timing   Timing
	TCK      float64 // seconds per cycle
	Duration float64 // simulated seconds

	// ElasticSlack enables elastic refresh (Stuecheli et al., MICRO'10 /
	// the JEDEC postpone allowance): a due refresh may be postponed while
	// requests are pending, by up to this fraction of the row's refresh
	// period (JEDEC allows 8 of 8192 tREFI slots, i.e. ~1/8 when debt is
	// concentrated). 0 disables postponement. The next refresh is scheduled
	// from the original due time, so debt does not accumulate. The charge
	// guardband absorbs the extra decay; the bank model verifies it.
	ElasticSlack float64

	// ECC, when set, classifies sub-limit refresh senses into corrected and
	// uncorrectable errors (same convention as sim.Options.ECC).
	ECC *ecc.ChargeClassifier
	// DemoteOnCorrect steps the row one rung down the degradation ladder on
	// an ECC-corrected error, when the scheduler supports core.Demoter.
	DemoteOnCorrect bool

	// Scrub, when set, interleaves the patrol scrubber's reads with demand
	// traffic on the command timeline: a patrol read behaves like a row-miss
	// read (closing the open row, occupying the bank for ACT+CAS+PRE), loses
	// arbitration ties to both refreshes and requests, and defers with the
	// scrubber's own backoff while the bank is busy.
	Scrub *scrub.Scrubber
}

// event types for the unified timeline.
type evKind int

const (
	evRefresh evKind = iota
	evRequest
	evScrub // patrol read: background priority, loses every arbitration tie
)

type event struct {
	cycle int64
	kind  evKind
	row   int   // refresh row
	due   int64 // refresh: originally scheduled cycle (for elastic postponement)
	req   int   // request index
	seq   int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind // refreshes win ties: the controller must not starve them
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run services the request stream against the bank under the refresh
// scheduler. Requests must be in arrival order. The returned per-request
// slice carries the individual latencies for distribution analysis.
func Run(bank *dram.Bank, sched core.Scheduler, reqs []Request, opts Options) (Stats, []Request, error) {
	if err := opts.Timing.Validate(); err != nil {
		return Stats{}, nil, err
	}
	if opts.TCK <= 0 || opts.Duration <= 0 {
		return Stats{}, nil, fmt.Errorf("memctrl: TCK and Duration must be positive")
	}
	if opts.ElasticSlack < 0 || opts.ElasticSlack > 0.5 {
		return Stats{}, nil, fmt.Errorf("memctrl: ElasticSlack %g outside [0, 0.5]", opts.ElasticSlack)
	}
	if opts.ECC != nil {
		if err := opts.ECC.Validate(); err != nil {
			return Stats{}, nil, err
		}
	}
	horizon := int64(opts.Duration / opts.TCK)
	st := Stats{Scheduler: sched.Name()}
	monitor, _ := sched.(core.SenseMonitor)

	// Seed the refresh timeline (same golden-ratio stagger as internal/sim).
	h := make(eventHeap, 0, bank.Geom.Rows+len(reqs))
	var seq int64
	pushRefresh := func(row int, atCycle, due int64) {
		if atCycle >= horizon {
			return
		}
		seq++
		heap.Push(&h, event{cycle: atCycle, kind: evRefresh, row: row, due: due, seq: seq})
	}
	for r := 0; r < bank.Geom.Rows; r++ {
		p := sched.Period(r)
		if p <= 0 {
			return Stats{}, nil, fmt.Errorf("memctrl: period for row %d is %g", r, p)
		}
		frac := staggerFrac(r)
		first := int64(frac * p / opts.TCK)
		pushRefresh(r, first, first)
	}
	pushScrub := func(atCycle int64) {
		if atCycle >= horizon {
			return
		}
		seq++
		heap.Push(&h, event{cycle: atCycle, kind: evScrub, seq: seq})
	}
	if opts.Scrub != nil {
		if opts.Scrub.Rows() != bank.Geom.Rows {
			return Stats{}, nil, fmt.Errorf("memctrl: scrubber patrols %d rows, bank has %d", opts.Scrub.Rows(), bank.Geom.Rows)
		}
		pushScrub(int64(math.Ceil(opts.Scrub.NextDue() / opts.TCK)))
	}
	out := make([]Request, len(reqs))
	copy(out, reqs)
	var lastArrival int64 = -1
	for i := range out {
		if out[i].Arrival < lastArrival {
			return Stats{}, nil, fmt.Errorf("memctrl: request %d arrives out of order", i)
		}
		lastArrival = out[i].Arrival
		if out[i].Row < 0 || out[i].Row >= bank.Geom.Rows {
			return Stats{}, nil, fmt.Errorf("memctrl: request %d row %d out of range", i, out[i].Row)
		}
		if out[i].Arrival >= horizon {
			out = out[:i]
			break
		}
		seq++
		heap.Push(&h, event{cycle: out[i].Arrival, kind: evRequest, req: i, seq: seq})
	}

	// Bank state.
	t := opts.Timing
	bankFree := int64(0) // cycle the bank can accept the next command
	openRow := -1
	rowOpenedAt := int64(-1)
	pending := make([]int, 0, 64) // indices of queued requests
	lastRefreshEnd := int64(-1)   // cycle the most recent refresh released the bank

	// idleClose applies the adaptive page policy: a row idle past the
	// timeout has been precharged in the background by cycle `at`. The
	// earliest a background PRE could issue is after both the last burst
	// and the tRAS window; TCloseIdle (>= tRP) of further idleness hides
	// the precharge entirely.
	idleClose := func(at int64) {
		if openRow < 0 || t.TCloseIdle == 0 {
			return
		}
		preReady := bankFree
		if m := rowOpenedAt + int64(t.TRAS); m > preReady {
			preReady = m
		}
		if at-preReady >= int64(t.TCloseIdle) {
			openRow = -1
		}
	}

	// serveOne issues the best pending request at or after cycle `now`,
	// preferring row hits (FR-FCFS).
	serveOne := func(now int64) {
		if len(pending) == 0 {
			return
		}
		pick := 0
		if openRow >= 0 {
			for k, idx := range pending {
				if out[idx].Row == openRow {
					pick = k
					break
				}
			}
		}
		idx := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		req := &out[idx]

		start := now
		if req.Arrival > start {
			start = req.Arrival
		}
		idleClose(start)
		var done int64
		if openRow == req.Row {
			req.RowHit = true
			st.RowHits++
			done = start + int64(t.TCL+t.TBL)
		} else {
			// Close the open row (respecting tRAS), open the new one.
			pre := start
			if openRow >= 0 {
				minPre := rowOpenedAt + int64(t.TRAS)
				if pre < minPre {
					pre = minPre
				}
				pre += int64(t.TRP)
			}
			act := pre
			done = act + int64(t.TRCD+t.TCL+t.TBL)
			openRow = req.Row
			rowOpenedAt = act
			start = act
		}
		if req.Write {
			done += int64(t.TWR)
		}
		req.Start = start
		req.Finish = done
		bankFree = done

		// The activation restored the row: tell the charge model and the
		// scheduler (VRL-Access exploits this).
		when := float64(start) * opts.TCK
		if !req.RowHit {
			if _, err := bank.Access(req.Row, when); err == nil {
				sched.OnAccess(req.Row, when)
			}
		}
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		switch ev.kind {
		case evRefresh:
			// Elastic refresh: while requests are pending and slack remains,
			// serve the queued work and step the refresh back behind it.
			if opts.ElasticSlack > 0 && len(pending) > 0 {
				maxDelay := int64(opts.ElasticSlack * sched.Period(ev.row) / opts.TCK)
				deadline := ev.due + maxDelay
				if ev.cycle < deadline {
					for len(pending) > 0 && bankFree < deadline {
						now := bankFree
						if now < ev.cycle {
							now = ev.cycle
						}
						serveOne(now)
					}
					retry := bankFree
					if retry <= ev.cycle {
						retry = ev.cycle + 1
					}
					if retry > deadline {
						retry = deadline
					}
					st.RefreshesPostponed++
					seq++
					heap.Push(&h, event{cycle: retry, kind: evRefresh, row: ev.row, due: ev.due, seq: seq})
					continue
				}
			}
			// Drain any requests that can start strictly before the refresh.
			for len(pending) > 0 && bankFree < ev.cycle {
				before := bankFree
				serveOne(bankFree)
				if bankFree == before {
					break
				}
			}
			start := ev.cycle
			if bankFree > start {
				start = bankFree
			}
			idleClose(start)
			op := sched.RefreshOp(ev.row, float64(start)*opts.TCK)
			// Refresh implies closing the open row.
			if openRow >= 0 {
				minPre := rowOpenedAt + int64(t.TRAS)
				if start < minPre {
					start = minPre
				}
				start += int64(t.TRP)
				openRow = -1
			}
			when := float64(start) * opts.TCK
			res, err := bank.Refresh(ev.row, when, op.Alpha)
			if err != nil {
				return Stats{}, nil, err
			}
			if monitor != nil {
				monitor.OnSense(ev.row, when, res.ChargeBefore)
			}
			if opts.ECC != nil && res.ChargeBefore < retention.SenseLimit {
				switch opts.ECC.Classify(res.ChargeBefore) {
				case ecc.Corrected:
					st.CorrectedErrors++
					if opts.DemoteOnCorrect {
						if dm, ok := sched.(core.Demoter); ok {
							dm.Demote(ev.row)
						}
					}
				case ecc.Uncorrectable:
					st.UncorrectableErrors++
				}
			}
			bankFree = start + int64(op.Cycles)
			lastRefreshEnd = bankFree
			st.RefreshOps++
			st.RefreshBusyCycles += int64(op.Cycles)
			if len(pending) > 0 {
				st.StalledByRefresh += int64(len(pending))
			}
			// Schedule from the ORIGINAL due time so postponement debt does
			// not accumulate across periods.
			nextDue := ev.due + int64(sched.Period(ev.row)/opts.TCK)
			pushRefresh(ev.row, nextDue, nextDue)
		case evScrub:
			now := float64(ev.cycle) * opts.TCK
			visited, err := opts.Scrub.Tick(now, float64(bankFree)*opts.TCK)
			if err != nil {
				return Stats{}, nil, err
			}
			if visited {
				// The patrol read behaves like a row-miss read: close the open
				// row (respecting tRAS), then ACT + CAS + PRE on the weak row.
				start := ev.cycle
				idleClose(start)
				if openRow >= 0 {
					minPre := rowOpenedAt + int64(t.TRAS)
					if start < minPre {
						start = minPre
					}
					start += int64(t.TRP)
					openRow = -1
				}
				cost := int64(t.TRCD + t.TCL + t.TRP)
				bankFree = start + cost
				st.ScrubBusyCycles += cost
			}
			next := int64(math.Ceil(opts.Scrub.NextDue() / opts.TCK))
			if next <= ev.cycle {
				next = ev.cycle + 1
			}
			pushScrub(next)
		case evRequest:
			if ev.cycle < lastRefreshEnd {
				// Arrived while a refresh held the bank.
				st.StalledByRefresh++
			}
			pending = append(pending, ev.req)
			// Serve as much as possible while the bank is idle.
			for len(pending) > 0 {
				next := bankFree
				if next < ev.cycle {
					next = ev.cycle
				}
				if h.Len() > 0 && h[0].cycle <= next && h[0].kind == evRefresh {
					break // let the refresh in first
				}
				serveOne(next)
			}
		}
	}
	// Drain the queue after the last event.
	for len(pending) > 0 {
		serveOne(bankFree)
	}

	// Aggregate.
	var sum, sumRead int64
	var lats []int64
	for i := range out {
		r := out[i]
		st.Requests++
		if r.Write {
			st.Writes++
		} else {
			st.Reads++
			sumRead += r.Latency()
		}
		sum += r.Latency()
		lats = append(lats, r.Latency())
	}
	if st.Requests > 0 {
		st.AvgLatency = float64(sum) / float64(st.Requests)
		st.RowHitRate = float64(st.RowHits) / float64(st.Requests)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P95Latency = lats[int(float64(len(lats)-1)*0.95)]
		st.MaxLatency = lats[len(lats)-1]
	}
	if st.Reads > 0 {
		st.AvgReadLatency = float64(sumRead) / float64(st.Reads)
	}
	st.Violations = len(bank.Violations())
	if fc, ok := sched.(core.FaultCounter); ok {
		st.FaultsInjected = fc.FaultsInjected()
	}
	if gr, ok := sched.(core.GuardReporter); ok {
		st.Guard = gr.GuardSnapshot(opts.Duration)
	}
	if opts.Scrub != nil {
		st.Scrub = opts.Scrub.ScrubSnapshot(opts.Duration)
	}
	return st, out, nil
}

// staggerFrac mirrors internal/sim's golden-ratio refresh phase spread.
func staggerFrac(row int) float64 {
	const phi = 0.6180339887498949
	f := float64(row) * phi
	return f - float64(int64(f))
}

// RequestsFromTrace converts a row-granular trace into controller requests.
func RequestsFromTrace(recs []trace.Record, tck float64) []Request {
	out := make([]Request, 0, len(recs))
	for _, r := range recs {
		out = append(out, Request{
			Arrival: int64(r.Time/tck + 0.5),
			Row:     r.Row,
			Write:   r.Op == trace.Write,
		})
	}
	return out
}

// FprintStats renders a stats block.
func FprintStats(w io.Writer, st Stats) error {
	_, err := fmt.Fprintf(w,
		"scheduler=%s requests=%d rowhit=%.1f%% avg=%.1f cyc p95=%d cyc refreshes=%d busy=%d stalled=%d viol=%d\n",
		st.Scheduler, st.Requests, 100*st.RowHitRate, st.AvgLatency, st.P95Latency,
		st.RefreshOps, st.RefreshBusyCycles, st.StalledByRefresh, st.Violations)
	return err
}
