package memctrl

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

type fixture struct {
	params  device.Params
	profile *retention.BankProfile
	rm      core.RestoreModel
	opts    Options
}

func setup(t *testing.T) *fixture {
	t.Helper()
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		params:  p,
		profile: prof,
		rm:      rm,
		opts:    Options{Timing: DefaultTiming(), TCK: p.TCK, Duration: 0.256},
	}
}

func (f *fixture) bank(t *testing.T) *dram.Bank {
	t.Helper()
	b, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (f *fixture) sched(t *testing.T, mk func() (core.Scheduler, error)) core.Scheduler {
	t.Helper()
	s, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTimingValidation(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTiming()
	bad.TRCD = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero TRCD must be rejected")
	}
	bad = DefaultTiming()
	bad.TRAS = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("TRAS < TRCD must be rejected")
	}
}

func TestRowHitVsMissLatency(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	tm := DefaultTiming()
	reqs := []Request{
		{Arrival: 1000, Row: 10}, // miss: ACT + CAS
		{Arrival: 1001, Row: 10}, // hit: CAS only
		{Arrival: 1002, Row: 11}, // conflict: PRE (after tRAS) + ACT + CAS
	}
	_, served, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if served[0].RowHit {
		t.Fatal("first access to a row cannot be a hit")
	}
	if !served[1].RowHit {
		t.Fatal("second access to the open row must be a hit")
	}
	missLat := served[0].Finish - served[0].Start
	if want := int64(tm.TRCD + tm.TCL + tm.TBL); missLat != want {
		t.Fatalf("miss service time %d, want %d", missLat, want)
	}
	hitLat := served[1].Finish - served[1].Start
	if want := int64(tm.TCL + tm.TBL); hitLat != want {
		t.Fatalf("hit service time %d, want %d", hitLat, want)
	}
	// Conflict miss pays at least tRP more than a cold miss (unless a
	// refresh happened to close the row, which the tiny window rules out).
	conflict := served[2].Finish - served[2].Arrival
	if conflict < missLat+int64(tm.TRP) {
		t.Fatalf("row conflict latency %d too cheap (cold miss is %d)", conflict, missLat)
	}
}

func TestWritesPayRecovery(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	reqs := []Request{
		{Arrival: 1000, Row: 10, Write: false},
	}
	_, servedR, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs[0].Write = true
	_, servedW, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if servedW[0].Latency() <= servedR[0].Latency() {
		t.Fatal("a write must cost at least tWR more than a read")
	}
}

func TestRefreshBlocksRequests(t *testing.T) {
	// A request arriving during a refresh of its bank waits out the tRFC:
	// construct a deterministic collision at a known refresh instant.
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	// Find the earliest scheduled refresh across rows.
	var firstCycle int64 = 1 << 62
	for r := 0; r < f.profile.Geom.Rows; r++ {
		c := int64(staggerFrac(r) * sched.Period(r) / f.params.TCK)
		if c > 0 && c < firstCycle {
			firstCycle = c
		}
	}
	reqs := []Request{
		{Arrival: firstCycle, Row: 42},
		{Arrival: firstCycle + 1, Row: 43},
	}
	st, served, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.StalledByRefresh == 0 {
		t.Fatal("requests colliding with the first refresh must be counted as stalled")
	}
	// The colliding request waits at least the refresh latency beyond a
	// quiet cold miss.
	tm := DefaultTiming()
	coldMiss := int64(tm.TRCD + tm.TCL + tm.TBL)
	if served[0].Latency() < coldMiss+int64(f.rm.FullCycles)-1 {
		t.Fatalf("collided latency %d does not include the refresh window", served[0].Latency())
	}
	if st.RefreshOps == 0 || st.RefreshBusyCycles == 0 {
		t.Fatal("refreshes not accounted")
	}
	if st.Violations != 0 {
		t.Fatalf("violations: %d", st.Violations)
	}
}

func TestAggregateTraceRun(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(f.profile.Geom.Rows, f.opts.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := Run(f.bank(t), sched, RequestsFromTrace(recs, f.params.TCK), f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.RefreshOps == 0 || st.RefreshBusyCycles == 0 {
		t.Fatal("refreshes not accounted")
	}
	if st.Requests == 0 || st.AvgLatency <= 0 {
		t.Fatalf("request accounting broken: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("violations: %d", st.Violations)
	}
}

func TestVRLImprovesLatencyOverRAIDR(t *testing.T) {
	// The end-to-end point of the paper: shorter refreshes -> lower average
	// memory latency.
	f := setup(t)
	spec, err := trace.FindBenchmark("bgsave")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(f.profile.Geom.Rows, f.opts.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := RequestsFromTrace(recs, f.params.TCK)

	run := func(mk func() (core.Scheduler, error)) Stats {
		st, _, err := Run(f.bank(t), f.sched(t, mk), reqs, f.opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cfg := core.Config{Restore: f.rm}
	raidr := run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, cfg) })
	va := run(func() (core.Scheduler, error) { return core.NewVRLAccess(f.profile, cfg) })
	if va.RefreshBusyCycles >= raidr.RefreshBusyCycles {
		t.Fatalf("VRL-Access busy %d !< RAIDR %d", va.RefreshBusyCycles, raidr.RefreshBusyCycles)
	}
	if va.AvgLatency > raidr.AvgLatency {
		t.Fatalf("VRL-Access avg latency %.2f worse than RAIDR %.2f", va.AvgLatency, raidr.AvgLatency)
	}
	if va.Violations != 0 || raidr.Violations != 0 {
		t.Fatal("violations in a safe configuration")
	}
}

func TestRunValidation(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	if _, _, err := Run(f.bank(t), sched, nil, Options{Timing: Timing{}, TCK: 1, Duration: 1}); err == nil {
		t.Fatal("bad timing must be rejected")
	}
	if _, _, err := Run(f.bank(t), sched, nil, Options{Timing: DefaultTiming(), TCK: 0, Duration: 1}); err == nil {
		t.Fatal("bad TCK must be rejected")
	}
	bad := []Request{{Arrival: 10, Row: 5}, {Arrival: 5, Row: 5}}
	if _, _, err := Run(f.bank(t), sched, bad, f.opts); err == nil {
		t.Fatal("out-of-order arrivals must be rejected")
	}
	oob := []Request{{Arrival: 10, Row: 1 << 30}}
	if _, _, err := Run(f.bank(t), sched, oob, f.opts); err == nil {
		t.Fatal("out-of-range row must be rejected")
	}
}

func TestRequestsBeyondHorizonDropped(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	horizon := int64(f.opts.Duration / f.params.TCK)
	reqs := []Request{
		{Arrival: 100, Row: 1},
		{Arrival: horizon + 5, Row: 2},
	}
	st, served, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || len(served) != 1 {
		t.Fatalf("requests = %d, want 1", st.Requests)
	}
}

func TestStatsAggregation(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	reqs := []Request{
		{Arrival: 1000, Row: 1},
		{Arrival: 1001, Row: 1, Write: true},
		{Arrival: 1002, Row: 1},
	}
	st, served, err := Run(f.bank(t), sched, reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("%+v", st)
	}
	if st.RowHits != 2 {
		t.Fatalf("row hits = %d, want 2", st.RowHits)
	}
	if st.AvgLatency <= 0 || st.P95Latency <= 0 || st.MaxLatency < st.P95Latency {
		t.Fatalf("latency stats: %+v", st)
	}
	for _, r := range served {
		if r.Finish <= r.Arrival {
			t.Fatal("latency must be positive")
		}
	}
}

func TestRequestsFromTrace(t *testing.T) {
	tck := 1e-9
	recs := []trace.Record{
		{Time: 1e-6, Op: trace.Read, Row: 3},
		{Time: 2e-6, Op: trace.Write, Row: 4},
	}
	reqs := RequestsFromTrace(recs, tck)
	if len(reqs) != 2 || reqs[0].Arrival != 1000 || !reqs[1].Write {
		t.Fatalf("%+v", reqs)
	}
}

func TestDeterminism(t *testing.T) {
	f := setup(t)
	spec, err := trace.FindBenchmark("vips")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(f.profile.Geom.Rows, f.opts.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := RequestsFromTrace(recs, f.params.TCK)
	run := func() Stats {
		sched := f.sched(t, func() (core.Scheduler, error) {
			return core.NewVRLAccess(f.profile, core.Config{Restore: f.rm})
		})
		st, _, err := Run(f.bank(t), sched, reqs, f.opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestElasticRefreshPostponesBehindWork(t *testing.T) {
	// Elastic refresh only matters when requests queue behind refresh
	// traffic, so drive a saturating burst: arrivals every 5 cycles against
	// a ~26-cycle service time build a standing backlog that spans many
	// refresh instants.
	f := setup(t)
	var reqs []Request
	for i := 0; i < 20000; i++ {
		reqs = append(reqs, Request{Arrival: 1000 + int64(i)*5, Row: (i * 37) % f.profile.Geom.Rows})
	}
	run := func(slack float64) Stats {
		sched := f.sched(t, func() (core.Scheduler, error) {
			return core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
		})
		opts := f.opts
		opts.ElasticSlack = slack
		st, _, err := Run(f.bank(t), sched, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := run(0)
	on := run(0.125)
	if on.RefreshesPostponed == 0 {
		t.Fatal("elastic refresh never postponed under a heavy trace")
	}
	if off.RefreshesPostponed != 0 {
		t.Fatal("disabled elasticity must not postpone")
	}
	if on.Violations != 0 {
		t.Fatalf("elastic postponement violated integrity: %d", on.Violations)
	}
	if on.RefreshOps != off.RefreshOps {
		t.Fatalf("postponement must not change the refresh count: %d vs %d", on.RefreshOps, off.RefreshOps)
	}
	if on.AvgLatency > off.AvgLatency {
		t.Fatalf("elastic refresh should not worsen average latency: %.3f vs %.3f", on.AvgLatency, off.AvgLatency)
	}
	if on.MaxLatency > off.MaxLatency {
		t.Fatalf("elastic refresh should not worsen tail latency: %d vs %d", on.MaxLatency, off.MaxLatency)
	}
}

func TestElasticSlackValidation(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, core.Config{Restore: f.rm}) })
	bad := f.opts
	bad.ElasticSlack = 0.9
	if _, _, err := Run(f.bank(t), sched, nil, bad); err == nil {
		t.Fatal("absurd slack must be rejected")
	}
	bad.ElasticSlack = -0.1
	if _, _, err := Run(f.bank(t), sched, nil, bad); err == nil {
		t.Fatal("negative slack must be rejected")
	}
}

func TestElasticRefreshSafeUnderLoad(t *testing.T) {
	// Heavy trace + maximum slack: every refresh may be postponed, and the
	// guardband must still hold (no violations).
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewVRL(f.profile, core.Config{Restore: f.rm}) })
	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(f.profile.Geom.Rows, f.opts.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := f.opts
	opts.ElasticSlack = 0.125
	st, _, err := Run(f.bank(t), sched, RequestsFromTrace(recs, f.params.TCK), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("elastic VRL under load violated integrity: %d", st.Violations)
	}
}
