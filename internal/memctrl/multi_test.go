package memctrl

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/rank"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

const (
	mbBanks = 4
	mbRows  = 1024
)

func multiSetup(t *testing.T, mkKind string) ([]*dram.Bank, []core.Scheduler) {
	t.Helper()
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p *retention.BankProfile) (core.Scheduler, error) {
		switch mkKind {
		case "vrl":
			return core.NewVRL(p, core.Config{Restore: rm})
		default:
			return core.NewRAIDR(p, core.Config{Restore: rm})
		}
	}
	banks, scheds, err := rank.NewRank(mbBanks, retention.DefaultCellDistribution(), mbRows, 32, 17, mk)
	if err != nil {
		t.Fatal(err)
	}
	return banks, scheds
}

func multiOpts(g RefreshGranularity) MultiOptions {
	return MultiOptions{
		Timing:      DefaultTiming(),
		TCK:         device.Default90nm().TCK,
		Duration:    0.256,
		Granularity: g,
	}
}

func benchTraceReqs(t *testing.T) []MultiRequest {
	t.Helper()
	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(mbBanks*mbRows, 0.256, 5)
	if err != nil {
		t.Fatal(err)
	}
	return MultiRequestsFromTrace(recs, device.Default90nm().TCK, mbBanks)
}

func TestMultiRequestsFromTrace(t *testing.T) {
	recs := []trace.Record{
		{Time: 1e-6, Op: trace.Read, Row: 7},
		{Time: 2e-6, Op: trace.Write, Row: 8},
	}
	reqs := MultiRequestsFromTrace(recs, 1e-9, 4)
	if reqs[0].Bank != 3 || reqs[0].Row != 1 {
		t.Fatalf("row 7 should map to bank 3 row 1: %+v", reqs[0])
	}
	if reqs[1].Bank != 0 || reqs[1].Row != 2 || !reqs[1].Write {
		t.Fatalf("row 8 mapping: %+v", reqs[1])
	}
}

func TestGranularityString(t *testing.T) {
	if PerBankRefresh.String() != "per-bank" || AllBankRefresh.String() != "all-bank" {
		t.Fatal("names wrong")
	}
	if RefreshGranularity(9).String() == "" {
		t.Fatal("unknown granularity must stringify")
	}
}

func TestMultiValidation(t *testing.T) {
	banks, scheds := multiSetup(t, "raidr")
	if _, _, err := RunMulti(nil, nil, nil, multiOpts(PerBankRefresh)); err == nil {
		t.Fatal("empty rank must be rejected")
	}
	if _, _, err := RunMulti(banks, scheds[:1], nil, multiOpts(PerBankRefresh)); err == nil {
		t.Fatal("mismatched lengths must be rejected")
	}
	bad := multiOpts(PerBankRefresh)
	bad.TCK = 0
	if _, _, err := RunMulti(banks, scheds, nil, bad); err == nil {
		t.Fatal("zero TCK must be rejected")
	}
	weird := multiOpts(RefreshGranularity(9))
	if _, _, err := RunMulti(banks, scheds, nil, weird); err == nil {
		t.Fatal("unknown granularity must be rejected")
	}
	oob := []MultiRequest{{Arrival: 5, Bank: 99, Row: 0}}
	if _, _, err := RunMulti(banks, scheds, oob, multiOpts(PerBankRefresh)); err == nil {
		t.Fatal("bad bank address must be rejected")
	}
	ooo := []MultiRequest{{Arrival: 5, Bank: 0, Row: 0}, {Arrival: 4, Bank: 0, Row: 0}}
	if _, _, err := RunMulti(banks, scheds, ooo, multiOpts(PerBankRefresh)); err == nil {
		t.Fatal("out-of-order arrivals must be rejected")
	}
}

func TestMultiBankParallelism(t *testing.T) {
	// Two simultaneous requests to different banks overlap; to the same bank
	// they serialize.
	banks, scheds := multiSetup(t, "raidr")
	parallel := []MultiRequest{
		{Arrival: 1000, Bank: 0, Row: 10},
		{Arrival: 1000, Bank: 1, Row: 10},
	}
	_, servedP, err := RunMulti(banks, scheds, parallel, multiOpts(PerBankRefresh))
	if err != nil {
		t.Fatal(err)
	}
	banks2, scheds2 := multiSetup(t, "raidr")
	serial := []MultiRequest{
		{Arrival: 1000, Bank: 0, Row: 10},
		{Arrival: 1000, Bank: 0, Row: 10},
	}
	_, servedS, err := RunMulti(banks2, scheds2, serial, multiOpts(PerBankRefresh))
	if err != nil {
		t.Fatal(err)
	}
	if servedP[1].Latency() >= servedS[1].Latency() {
		t.Fatalf("bank parallelism missing: parallel %d vs serial %d",
			servedP[1].Latency(), servedS[1].Latency())
	}
}

func TestMultiPerBankVsAllBank(t *testing.T) {
	reqs := benchTraceReqs(t)
	run := func(g RefreshGranularity) MultiStats {
		banks, scheds := multiSetup(t, "raidr")
		st, _, err := RunMulti(banks, scheds, reqs, multiOpts(g))
		if err != nil {
			t.Fatal(err)
		}
		if st.Violations != 0 {
			t.Fatalf("%s: violations %d", g, st.Violations)
		}
		return st
	}
	per := run(PerBankRefresh)
	all := run(AllBankRefresh)
	if per.Requests != all.Requests || per.Requests == 0 {
		t.Fatalf("request accounting: %d vs %d", per.Requests, all.Requests)
	}
	// All-bank refresh burns more aggregate bank-busy cycles and delivers
	// worse average latency.
	if all.RefreshBusyCycles <= per.RefreshBusyCycles {
		t.Fatalf("all-bank busy %d should exceed per-bank %d", all.RefreshBusyCycles, per.RefreshBusyCycles)
	}
	if all.AvgLatency < per.AvgLatency {
		t.Fatalf("all-bank latency %.2f should not beat per-bank %.2f", all.AvgLatency, per.AvgLatency)
	}
}

func TestMultiVRLBeatsRAIDR(t *testing.T) {
	reqs := benchTraceReqs(t)
	run := func(kind string) MultiStats {
		banks, scheds := multiSetup(t, kind)
		st, _, err := RunMulti(banks, scheds, reqs, multiOpts(PerBankRefresh))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	raidr := run("raidr")
	vrl := run("vrl")
	if vrl.RefreshBusyCycles >= raidr.RefreshBusyCycles {
		t.Fatalf("VRL busy %d !< RAIDR %d", vrl.RefreshBusyCycles, raidr.RefreshBusyCycles)
	}
	if vrl.Violations != 0 {
		t.Fatal("VRL violations")
	}
}

func TestMultiDeterminism(t *testing.T) {
	reqs := benchTraceReqs(t)
	run := func() MultiStats {
		banks, scheds := multiSetup(t, "vrl")
		st, _, err := RunMulti(banks, scheds, reqs, multiOpts(AllBankRefresh))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSALPValidation(t *testing.T) {
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := retention.NewSampledProfile(device.BankGeometry{Rows: 512, Cols: 32},
		retention.DefaultCellDistribution(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewRAIDR(prof, core.Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Timing: DefaultTiming(), TCK: device.Default90nm().TCK, Duration: 0.128}
	if _, _, err := RunSALP(bank, sched, nil, opts, 0); err == nil {
		t.Fatal("zero subarrays must be rejected")
	}
	if _, _, err := RunSALP(bank, sched, nil, opts, 10000); err == nil {
		t.Fatal("absurd subarray count must be rejected")
	}
	oob := []Request{{Arrival: 5, Row: 1 << 30}}
	if _, _, err := RunSALP(bank, sched, oob, opts, 4); err == nil {
		t.Fatal("out-of-range row must be rejected")
	}
}

func TestSALPHidesRefreshFromOtherSubarrays(t *testing.T) {
	// A request colliding with a refresh of ANOTHER subarray proceeds
	// unblocked; in the same subarray it waits.
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := retention.NewSampledProfile(device.BankGeometry{Rows: 1024, Cols: 32},
		retention.DefaultCellDistribution(), 3)
	if err != nil {
		t.Fatal(err)
	}
	mkSched := func() core.Scheduler {
		s, err := core.NewRAIDR(prof, core.Config{Restore: rm})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	opts := Options{Timing: DefaultTiming(), TCK: device.Default90nm().TCK, Duration: 0.256}

	// Find the earliest refresh instant and its row.
	sched := mkSched()
	var firstCycle int64 = 1 << 62
	firstRow := -1
	for r := 0; r < prof.Geom.Rows; r++ {
		c := int64(staggerFrac(r) * sched.Period(r) / opts.TCK)
		if c > 0 && c < firstCycle {
			firstCycle, firstRow = c, r
		}
	}
	const nSub = 8
	rowsPerSub := prof.Geom.Rows / nSub
	sameSub := (firstRow / rowsPerSub) * rowsPerSub // another row in the refreshed subarray
	if sameSub == firstRow {
		sameSub++
	}
	otherSub := (firstRow/rowsPerSub + 1) % nSub * rowsPerSub

	run := func(row int) int64 {
		bank, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			t.Fatal(err)
		}
		st, served, err := RunSALP(bank, mkSched(), []Request{{Arrival: firstCycle, Row: row}}, opts, nSub)
		if err != nil {
			t.Fatal(err)
		}
		if st.Violations != 0 {
			t.Fatalf("violations: %d", st.Violations)
		}
		return served[0].Latency()
	}
	same := run(sameSub)
	other := run(otherSub)
	if other >= same {
		t.Fatalf("request to another subarray should dodge the refresh: same-sub %d vs other-sub %d", same, other)
	}
}

func TestSALPOneSubarrayMatchesRefreshAccounting(t *testing.T) {
	// nSub = 1 must account the same refresh traffic as the plain engine.
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := retention.NewSampledProfile(device.BankGeometry{Rows: 512, Cols: 32},
		retention.DefaultCellDistribution(), 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Timing: DefaultTiming(), TCK: device.Default90nm().TCK, Duration: 0.256}
	mk := func() core.Scheduler {
		s, err := core.NewVRL(prof, core.Config{Restore: rm})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	bankA, _ := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	salp, _, err := RunSALP(bankA, mk(), nil, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	bankB, _ := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	plain, _, err := Run(bankB, mk(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if salp.RefreshOps != plain.RefreshOps || salp.RefreshBusyCycles != plain.RefreshBusyCycles {
		t.Fatalf("refresh accounting diverges: %d/%d vs %d/%d",
			salp.RefreshOps, salp.RefreshBusyCycles, plain.RefreshOps, plain.RefreshBusyCycles)
	}
}
