package memctrl

import (
	"reflect"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
)

func (f *fixture) scrubber(t *testing.T, b *dram.Bank, sched core.Scheduler) *scrub.Scrubber {
	t.Helper()
	store, err := scrub.NewBankStore(b, ecc.DefaultClassifier())
	if err != nil {
		t.Fatal(err)
	}
	scr, err := scrub.New(store, scrub.Config{Sched: sched, Spares: 8})
	if err != nil {
		t.Fatal(err)
	}
	return scr
}

// TestScrubPatrolsOnCommandTimeline wires the patrol scrubber into the
// command-level controller: patrol reads must actually occupy the bank
// (row-miss cost), the coverage counters must land in the run's Stats, and
// demand requests must still all be served.
func TestScrubPatrolsOnCommandTimeline(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewVRL(f.profile, core.Config{Restore: f.rm}) })
	b := f.bank(t)
	scr := f.scrubber(t, b, sched)

	reqs := []Request{
		{Arrival: 1000, Row: 10},
		{Arrival: 50000, Row: 20, Write: true},
		{Arrival: 200000, Row: 10},
	}
	opts := f.opts
	opts.Scrub = scr
	st, served, err := Run(b, sched, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(reqs) {
		t.Fatalf("served %d of %d requests", len(served), len(reqs))
	}
	if st.Scrub.RowsPatrolled == 0 {
		t.Fatal("patrol never visited a row")
	}
	if st.ScrubBusyCycles == 0 {
		t.Fatal("patrol reads consumed no bank time; they are free, which is wrong")
	}
	// Four sweeps of the 64 ms period fit in the 256 ms run; the patrol must
	// be close to that pace (it may trail slightly behind due to busy
	// deferrals, never ahead).
	expected := int64(float64(b.Geom.Rows) * opts.Duration / 0.064)
	if st.Scrub.RowsPatrolled > expected || st.Scrub.RowsPatrolled < expected/2 {
		t.Fatalf("patrolled %d rows, want roughly %d (4 sweeps)", st.Scrub.RowsPatrolled, expected)
	}
	if got := scr.ScrubSnapshot(opts.Duration); !reflect.DeepEqual(st.Scrub, got) {
		t.Fatalf("Stats.Scrub %+v diverges from the scrubber's own snapshot %+v", st.Scrub, got)
	}
}

// TestScrubDefersToDemandTraffic saturates the bank with back-to-back
// requests across the first patrol due times: the scrubber must retry with
// backoff (booking BusyRetries) instead of stealing the bank, and every
// demand request must still finish.
func TestScrubDefersToDemandTraffic(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewVRL(f.profile, core.Config{Restore: f.rm}) })
	b := f.bank(t)
	scr := f.scrubber(t, b, sched)

	// The first patrol read is due one per-row interval in: tREFW/rows.
	// Keep the bank continuously busy well past that point.
	dueCycle := int64(scr.NextDue() / f.opts.TCK)
	reqs := make([]Request, 2000)
	for i := range reqs {
		reqs[i] = Request{Arrival: int64(i), Row: (i / 4) % b.Geom.Rows}
	}
	opts := f.opts
	opts.Scrub = scr
	st, served, err := Run(b, sched, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	busyEnd := served[len(served)-1].Finish
	if busyEnd <= dueCycle {
		t.Fatalf("burst ended at cycle %d, before the first patrol due %d; the test exercises nothing", busyEnd, dueCycle)
	}
	if st.Scrub.BusyRetries == 0 {
		t.Fatal("patrol never deferred to the demand burst")
	}
	if st.Scrub.RowsPatrolled == 0 {
		t.Fatal("patrol starved forever; backoff must let it through after the burst")
	}
	if len(served) != len(reqs) {
		t.Fatalf("served %d of %d requests", len(served), len(reqs))
	}
}

// TestScrubRowMismatchRejected: a scrubber sized for a different bank must
// be rejected up front.
func TestScrubRowMismatchRejected(t *testing.T) {
	f := setup(t)
	sched := f.sched(t, func() (core.Scheduler, error) { return core.NewVRL(f.profile, core.Config{Restore: f.rm}) })

	small, err := retention.NewSampledProfile(device.BankGeometry{Rows: 64, Cols: 32}, retention.DefaultCellDistribution(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := dram.NewBank(small, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	scr := f.scrubber(t, sb, sched)

	opts := f.opts
	opts.Scrub = scr
	if _, _, err := Run(f.bank(t), sched, nil, opts); err == nil {
		t.Fatal("scrubber over 64 rows accepted for an 8192-row bank")
	}
}
