package memctrl

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
)

// TestGuardedStackAtCommandLevel wires the fault injector and the
// degradation controller through the command-level controller: the guard's
// counters and the injector's fault count must surface in memctrl.Stats,
// and the guarded run must stay violation-free while serving requests.
func TestGuardedStackAtCommandLevel(t *testing.T) {
	f := setup(t)
	build := func(guarded bool) core.Scheduler {
		var sched core.Scheduler = f.sched(t, func() (core.Scheduler, error) {
			return core.NewVRL(f.profile, core.Config{Restore: f.rm})
		})
		if guarded {
			g, err := guard.New(sched, f.profile.Geom.Rows, guard.Config{Restore: f.rm})
			if err != nil {
				t.Fatal(err)
			}
			sched = g
		}
		// A rate above the default compensates for the short 256 ms window:
		// the vulnerable bin-edge rows need enough exposure to demonstrate
		// the unguarded failure.
		inj, err := fault.InjectRefreshFaults(sched, fault.RefreshFaults{Rate: 0.1, AlphaFactor: 0.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	reqs := make([]Request, 0, 200)
	for i := 0; i < 200; i++ {
		reqs = append(reqs, Request{Arrival: int64(i) * 997, Row: (i * 37) % f.profile.Geom.Rows})
	}

	unguarded, _, err := Run(f.bank(t), build(false), reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if unguarded.Violations == 0 {
		t.Fatal("unguarded VRL survived the refresh-fault campaign; nothing demonstrated")
	}
	if unguarded.FaultsInjected == 0 {
		t.Fatal("injector faults not surfaced in memctrl.Stats")
	}

	st, _, err := Run(f.bank(t), build(true), reqs, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("guarded stack lost data at the command level: %d violations", st.Violations)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("injector faults not surfaced in the guarded run")
	}
	if st.Guard.Alarms == 0 || st.Guard.Demotions == 0 {
		t.Fatalf("guard counters not surfaced: %+v", st.Guard)
	}
	if st.Requests == 0 || st.RefreshOps == 0 {
		t.Fatal("controller did not actually serve the workload")
	}
	// The guard's probation refreshes make the bank busier: the latency cost
	// of degradation shows up at the command level.
	if st.RefreshBusyCycles <= unguarded.RefreshBusyCycles {
		t.Fatalf("guarded refresh busy cycles %d should exceed unguarded %d",
			st.RefreshBusyCycles, unguarded.RefreshBusyCycles)
	}
}
