// Package scenario composes the repo's individually modelled retention
// stressors - temperature swings, variable retention time, data-pattern
// dependence, aging - into named, versioned, deterministic composite-stress
// scenarios, the "retention reality" Mutlu's retrospective (arXiv
// 2306.16037) says breaks static profiling in the field.
//
// A scenario is a schedule of Stressors: piecewise-constant multiplicative
// modulations of per-row retention, each drawn from its own splitmix64
// stream (the same isolation discipline as internal/fleet's device
// derivation, so one stressor's draws never perturb another's). The Env
// combinator integrates charge decay across the union of all stressors'
// change-points, which is the mathematically honest composition: two
// simultaneous scales multiply INSIDE each constant segment, where the
// decay law integrates them exactly, instead of multiplying two separately
// integrated decay factors (wrong for exponential decay, whose effective
// rate under scales s1 and s2 is 1/(tret*s1*s2)).
//
// Env implements the same DecayFactor contract as retention.VRT, so
// dram.Bank can consume it through the Modulator hook, and it implements
// core.Snapshotter with an identity blob, so scenario-driven runs keep
// PR 2's bit-identical kill/resume guarantee: stressors are pure functions
// of (seed, row, time), which makes "restore" a validation problem, not a
// state-transfer problem.
package scenario

import (
	"fmt"
	"math"

	"vrldram/internal/core"
	"vrldram/internal/retention"
)

// Stressor is one piecewise-constant retention modulation: ScaleAt returns
// the multiplicative retention factor of the row at time t, and NextChange
// returns the first instant strictly after t at which that factor may
// change (+Inf when it is constant from t on). Implementations must be pure
// functions of their configuration - no mutable state - so that composition
// and resume are trivially deterministic.
type Stressor interface {
	// Name identifies the stressor in catalogs and snapshot blobs.
	Name() string
	// ScaleAt returns the retention multiplier for the row at time t.
	// tret is the row's unmodulated effective retention, for stressors
	// (like VRT) that exempt already-defect-limited rows.
	ScaleAt(row int, tret, t float64) float64
	// NextChange returns the first time strictly greater than t at which
	// ScaleAt may return a different value, or +Inf if never.
	NextChange(row int, tret, t float64) float64
}

// RowInvariant is an optional Stressor capability: RowInvariant reports
// whether this stressor instance ignores its row and tret arguments
// entirely (a device-wide modulation such as a thermal cycle or an aging
// ramp). Env.DecayFactors builds one change-point timeline per invariant
// stressor for a whole batch of rows instead of re-walking the schedule
// row by row, which is where batched scenario integration gets its
// amortization from.
type RowInvariant interface {
	Stressor
	RowInvariant() bool
}

// Env is a scenario instance bound to a seed and a run window: the stressor
// composition the bank decays under. It satisfies dram's Modulator hook and
// core.Snapshotter.
type Env struct {
	Ref       Ref     // catalog identity (name + version)
	Seed      int64   // scenario master seed (streams derive from it)
	Duration  float64 // the run window the schedule was built for (s)
	Stressors []Stressor
}

// ScaleAt returns the product of all stressors' retention multipliers for
// the row at time t.
func (e *Env) ScaleAt(row int, tret, t float64) float64 {
	scale := 1.0
	for _, s := range e.Stressors {
		scale *= s.ScaleAt(row, tret, t)
	}
	return scale
}

// DecayFactor integrates the decay of a row with base retention tret over
// [t0, t1] under the composed stress schedule: the interval is segmented at
// the union of every stressor's change-points, and within each segment the
// decay law sees the retention scaled by the product of the active
// multipliers. For the exponential law this is exact (the exponents of the
// segments add); for other laws it is exact at segment boundaries, matching
// retention.VRT's contract. With no stressors it reduces to
// base.Factor(t1-t0, tret) exactly.
func (e *Env) DecayFactor(row int, tret, t0, t1 float64, base retention.DecayModel) float64 {
	if t1 <= t0 {
		return 1
	}
	factor := 1.0
	t := t0
	for t < t1 {
		scale := 1.0
		next := t1
		for _, s := range e.Stressors {
			scale *= s.ScaleAt(row, tret, t)
			if n := s.NextChange(row, tret, t); n < next {
				next = n
			}
		}
		if next <= t {
			// Stressors guarantee strict progress; this terminates the loop
			// anyway if one misbehaves, at the cost of treating the rest of
			// the interval as one segment.
			next = t1
		}
		if next > t1 {
			next = t1
		}
		factor *= base.Factor(next-t, tret*scale)
		t = next
	}
	return factor
}

// nominalReporter is the per-stressor side of Env.NominalUntil: the end of
// the window starting at from over which the stressor is exactly the
// identity - scale 1 for every row AND no change-point. The change-point
// condition matters even when the scale stays 1, because DecayFactor splits
// its float product at every NextChange boundary, and a split product is not
// bitwise the unsplit factor. A return <= from means "not nominal at from".
type nominalReporter interface {
	NominalUntil(from float64) float64
}

// NominalUntil implements the dram.SteadyModulator capability: the end of
// the window starting at from over which this Env's DecayFactor is bitwise
// base.Factor(t1-t0, tret) for every row and every [t0, t1] inside the
// window. That holds exactly when every stressor is nominal across the
// window (all scales 1, so the single-segment walk computes
// 1 * base.Factor(t1-t0, tret*1)) and no stressor change-point splits the
// segment walk. Any stressor that cannot report a nominal window vetoes the
// whole Env; an Env with no stressors is nominal forever.
func (e *Env) NominalUntil(from float64) float64 {
	until := math.Inf(1)
	for _, s := range e.Stressors {
		nr, ok := s.(nominalReporter)
		if !ok {
			return from
		}
		u := nr.NominalUntil(from)
		if u <= from {
			return from
		}
		if u < until {
			until = u
		}
	}
	return until
}

// envSegment is one cached constant-scale segment of a row-invariant
// stressor's schedule: scale holds from the previous segment's end (or the
// timeline origin) up to end.
type envSegment struct {
	end   float64
	scale float64
}

// maxCachedSegments bounds timeline construction; a stressor whose schedule
// is finer than this over one batch's span is evaluated directly instead.
const maxCachedSegments = 4096

// DecayFactors implements dram.BatchModulator: out[i] is
// DecayFactor(rows[i], tret[i], t0[i], t1[i], base), bit for bit. The
// amortization is in the change-point partitioning: every stressor that
// declares RowInvariant gets its schedule walked once over the batch's
// whole time span, and each row then reads its segments out of that shared
// timeline instead of re-deriving them. Per-row stressors (VRT telegraphs,
// pattern adversaries) are still evaluated per row - their change-points
// are genuinely per-row state.
func (e *Env) DecayFactors(rows []int, tret, t0, t1 []float64, base retention.DecayModel, out []float64) {
	n := len(rows)
	if n == 0 {
		return
	}
	var cached [][]envSegment // indexed like e.Stressors; nil = evaluate directly
	if len(e.Stressors) > 0 && n > 1 {
		lo, hi := t0[0], t1[0]
		for i := 1; i < n; i++ {
			if t0[i] < lo {
				lo = t0[i]
			}
			if t1[i] > hi {
				hi = t1[i]
			}
		}
		for si, s := range e.Stressors {
			if inv, ok := s.(RowInvariant); ok && inv.RowInvariant() {
				if segs := buildTimeline(s, lo, hi); segs != nil {
					if cached == nil {
						cached = make([][]envSegment, len(e.Stressors))
					}
					cached[si] = segs
				}
			}
		}
	}
	if cached == nil {
		for i := range rows {
			out[i] = e.DecayFactor(rows[i], tret[i], t0[i], t1[i], base)
		}
		return
	}
	for i := range rows {
		out[i] = e.decayFactorWith(cached, rows[i], tret[i], t0[i], t1[i], base)
	}
}

// buildTimeline walks one row-invariant stressor's schedule across [lo, hi].
// It returns nil when the walk stalls or the schedule is too fine to be
// worth caching; the caller then evaluates the stressor directly, which is
// always correct.
func buildTimeline(s Stressor, lo, hi float64) []envSegment {
	segs := make([]envSegment, 0, 8)
	t := lo
	for t <= hi {
		scale := s.ScaleAt(0, 1, t)
		next := s.NextChange(0, 1, t)
		if next <= t || len(segs) == maxCachedSegments {
			return nil
		}
		segs = append(segs, envSegment{end: next, scale: scale})
		t = next
	}
	return segs
}

// segIndex locates the segment containing t: the first whose end exceeds t.
func segIndex(segs []envSegment, t float64) int {
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].end > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// decayFactorWith is DecayFactor with row-invariant stressors read from
// prebuilt timelines. The roster order, multiplication order, segment walk,
// and guard structure mirror DecayFactor exactly; a cached stressor's
// segment value equals what its ScaleAt would return anywhere inside the
// segment (the piecewise-constant Stressor contract plus row-invariance),
// so the two paths agree bit for bit - the property the batch tests pin.
func (e *Env) decayFactorWith(cached [][]envSegment, row int, tret, t0, t1 float64, base retention.DecayModel) float64 {
	if t1 <= t0 {
		return 1
	}
	factor := 1.0
	t := t0
	for t < t1 {
		scale := 1.0
		next := t1
		for si, s := range e.Stressors {
			if segs := cached[si]; segs != nil {
				j := segIndex(segs, t)
				scale *= segs[j].scale
				if n := segs[j].end; n < next {
					next = n
				}
				continue
			}
			scale *= s.ScaleAt(row, tret, t)
			if n := s.NextChange(row, tret, t); n < next {
				next = n
			}
		}
		if next <= t {
			next = t1
		}
		if next > t1 {
			next = t1
		}
		factor *= base.Factor(next-t, tret*scale)
		t = next
	}
	return factor
}

// Validate checks the Env is runnable.
func (e *Env) Validate() error {
	if e.Ref.Name == "" {
		return fmt.Errorf("scenario: env has no catalog name")
	}
	if e.Duration <= 0 {
		return fmt.Errorf("scenario: env duration must be positive, got %g", e.Duration)
	}
	for _, s := range e.Stressors {
		if s == nil {
			return fmt.Errorf("scenario: %s carries a nil stressor", e.Ref)
		}
	}
	return nil
}

// envStateTag versions the Env snapshot blob.
const envStateTag = "scn1"

// SnapshotState implements core.Snapshotter. Stressors are pure functions
// of (seed, row, time), so the blob is an identity record - scenario name,
// version, seed, window, and the stressor roster - and RestoreState is a
// validation that the resuming run rebuilt the same schedule. That is the
// whole resume story: with no mutable state there is nothing else a
// checkpoint could drift on.
func (e *Env) SnapshotState() ([]byte, error) {
	var enc core.StateEncoder
	enc.Tag(envStateTag)
	enc.Bytes([]byte(e.Ref.Name))
	enc.Int(int64(e.Ref.Version))
	enc.Int(e.Seed)
	enc.Float(e.Duration)
	enc.Int(int64(len(e.Stressors)))
	for _, s := range e.Stressors {
		enc.Bytes([]byte(s.Name()))
	}
	return enc.Data(), nil
}

// RestoreState implements core.Snapshotter by validating the snapshot names
// this exact schedule.
func (e *Env) RestoreState(blob []byte) error {
	d := core.NewStateDecoder(blob)
	d.ExpectTag(envStateTag)
	name := string(d.Bytes())
	version := int(d.Int())
	seed := d.Int()
	duration := d.Float()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > int64(len(e.Stressors)) {
		return fmt.Errorf("scenario: snapshot lists %d stressors, env has %d", n, len(e.Stressors))
	}
	names := make([]string, n)
	for i := range names {
		names[i] = string(d.Bytes())
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if name != e.Ref.Name || version != e.Ref.Version {
		return fmt.Errorf("scenario: snapshot is for %s@v%d, env is %s", name, version, e.Ref)
	}
	if seed != e.Seed {
		return fmt.Errorf("scenario: snapshot seed %d, env seed %d", seed, e.Seed)
	}
	if duration != e.Duration {
		return fmt.Errorf("scenario: snapshot window %g, env window %g", duration, e.Duration)
	}
	if int(n) != len(e.Stressors) {
		return fmt.Errorf("scenario: snapshot lists %d stressors, env has %d", n, len(e.Stressors))
	}
	for i, s := range e.Stressors {
		if names[i] != s.Name() {
			return fmt.Errorf("scenario: snapshot stressor %d is %q, env has %q", i, names[i], s.Name())
		}
	}
	return nil
}

// --- seeded stream derivation ------------------------------------------------

// splitmix64 is the standard 64-bit finalizing mixer (the same generator
// internal/fleet derives device populations with).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitOf maps a hash to [0, 1).
func unitOf(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// posSeed folds a hash into a positive, non-zero int64 seed.
func posSeed(h uint64) int64 {
	s := int64(h &^ (1 << 63))
	if s == 0 {
		return 1
	}
	return s
}

// labelHash hashes a stressor label (FNV-1a) into the salt that separates
// its stream from every other stressor's.
func labelHash(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// StreamSeed derives the independent seed of the stressor labelled label
// within the scenario seeded by seed. Streams are keyed by label, not by
// position, so a stressor draws the same values whether it runs alone or
// inside a composition - the stream-independence property the composed
// scenarios (and their tests) rely on.
func StreamSeed(seed int64, label string) int64 {
	return posSeed(splitmix64(splitmix64(uint64(seed)) ^ labelHash(label)))
}

// streamUnit returns a deterministic draw in [0,1) for (seed, label, k).
func streamUnit(seed int64, label string, k int64) float64 {
	return unitOf(splitmix64(uint64(StreamSeed(seed, label)) ^ splitmix64(uint64(k)+0x6a09e667f3bcc909)))
}

// frameOf returns the frame index floor(t/period) clamped to >= 0.
func frameOf(t, period float64) int64 {
	if t <= 0 {
		return 0
	}
	k := math.Floor(t / period)
	return int64(k)
}

// frameNext returns the first frame boundary strictly after t for the given
// period, guarding against floating-point stalls the same way
// retention.VRT's toggle loop does.
func frameNext(t, period float64) float64 {
	k := math.Floor(t / period)
	next := (k + 1) * period
	if next <= t {
		next = t + 1e-9*period
	}
	return next
}
