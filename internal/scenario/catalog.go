package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"vrldram/internal/core"
	"vrldram/internal/retention"
)

// Ref names one catalog entry: a scenario name plus the version the caller
// pinned. Version 0 means "current" and is resolved to the catalog version
// by Normalize; a non-zero version must match the catalog exactly, so a
// manifest or checkpoint written against scenario semantics that have since
// changed is refused instead of silently reinterpreted.
type Ref struct {
	Name    string
	Version int
}

// String renders the pinned form.
func (r Ref) String() string {
	if r.Version == 0 {
		return r.Name
	}
	return fmt.Sprintf("%s@v%d", r.Name, r.Version)
}

// Scenario is one catalog entry: a stable name, a semantic version (bumped
// whenever the schedule an entry builds changes), and the builder that
// instantiates its Env for a concrete run window and seed.
type Scenario struct {
	Name    string
	Version int
	Summary string
	Build   func(duration float64, seed int64) (*Env, error)
}

// Shared stressor labels. Labels key the splitmix64 streams, so the
// kitchen-sink composition uses the SAME labels as the individual scenarios:
// the diurnal cycle inside kitchen-sink draws exactly what the standalone
// diurnal scenario draws, which is the stream-independence property the
// tests pin.
const (
	labelDiurnal = "diurnal-cycle"
	labelStorm   = "vrt-storm"
	labelDPD     = "dpd-adversary"
	labelAging   = "aging-ramp"
)

// stormVRT is the telegraph process a VRT storm gates: broader and deeper
// than the default field VRT (a tenth of rows toggling at under half
// retention), with MinRetention 0 so even defect-limited rows storm. The
// dwell scales with the run window so short windows still see toggles.
func stormVRT(duration float64) retention.VRT {
	return retention.VRT{
		AffectedFrac: 0.10,
		LowFactor:    0.45,
		MeanDwell:    duration / 24,
		MinRetention: 0,
	}
}

// Per-scenario stressor builders, shared between the standalone scenarios
// and the kitchen-sink composition so both call sites build byte-identical
// schedules.

func diurnalStressor(duration float64, seed int64) Stressor {
	return NewTempCycle(seed, labelDiurnal, retention.DefaultTempModel(), 85, 8, duration/2, 12)
}

func stormStressor(duration float64, seed int64) Stressor {
	return NewGate(seed, labelStorm, duration/6, 0.5, NewVRTStressor(seed, labelStorm+"/telegraph", stormVRT(duration)))
}

func dpdStressor(duration float64, seed int64) Stressor {
	return NewPatternAdversary(seed, labelDPD, duration/16, 0.25, retention.PatternAlternating)
}

func agingStressor(duration float64, seed int64) Stressor {
	return AgingRamp{Label: labelAging, Model: retention.DefaultAgingModel(), Years: 8, Window: duration, Steps: 16}
}

// catalog is the versioned scenario library, in presentation order.
var catalog = []Scenario{
	{
		Name:    "nominal",
		Version: 1,
		Summary: "no composite stress: the bank decays under its profiled physics only",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration}, nil
		},
	},
	{
		Name:    "diurnal",
		Version: 1,
		Summary: "datacenter thermal cycle: 85 degC mean, +/-8 degC staircase sinusoid, two cycles per window",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration, Stressors: []Stressor{diurnalStressor(duration, seed)}}, nil
		},
	},
	{
		Name:    "vrt-storm",
		Version: 1,
		Summary: "episodic VRT bursts: 10% of rows telegraph to 0.45x retention during half the episodes",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration, Stressors: []Stressor{stormStressor(duration, seed)}}, nil
		},
	},
	{
		Name:    "dpd-adversary",
		Version: 1,
		Summary: "write-heavy data-pattern dependence: 25% of rows rewritten with the alternating worst-case pattern each frame",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration, Stressors: []Stressor{dpdStressor(duration, seed)}}, nil
		},
	},
	{
		Name:    "aging",
		Version: 1,
		Summary: "multi-year wear ramp: retention degrades toward 8 simulated years across the window",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration, Stressors: []Stressor{agingStressor(duration, seed)}}, nil
		},
	},
	{
		Name:    "kitchen-sink",
		Version: 1,
		Summary: "all four stressors composed on their standalone streams: the field, all at once",
		Build: func(duration float64, seed int64) (*Env, error) {
			return &Env{Seed: seed, Duration: duration, Stressors: []Stressor{
				diurnalStressor(duration, seed),
				stormStressor(duration, seed),
				dpdStressor(duration, seed),
				agingStressor(duration, seed),
			}}, nil
		},
	},
}

// Names lists the catalog's scenario names in presentation order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, sc := range catalog {
		out[i] = sc.Name
	}
	return out
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range catalog {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Catalog returns a copy of the scenario library in presentation order.
func Catalog() []Scenario {
	return append([]Scenario(nil), catalog...)
}

// BuildEnv instantiates the referenced scenario for a run window and seed.
// A zero ref version resolves to the catalog's current version; a non-zero
// version must match it.
func BuildEnv(ref Ref, duration float64, seed int64) (*Env, error) {
	sc, ok := Lookup(ref.Name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (catalog: %s)", ref.Name, strings.Join(Names(), ", "))
	}
	if ref.Version != 0 && ref.Version != sc.Version {
		return nil, fmt.Errorf("scenario: %s pinned at v%d, catalog has v%d", ref.Name, ref.Version, sc.Version)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: duration must be positive, got %g", duration)
	}
	env, err := sc.Build(duration, seed)
	if err != nil {
		return nil, err
	}
	env.Ref = Ref{Name: sc.Name, Version: sc.Version}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return env, nil
}

// --- weighted mixtures -------------------------------------------------------

// Weighted is one catalog entry with a mixture weight.
type Weighted struct {
	Ref    Ref
	Weight int64
}

// Mix is a weighted scenario catalog: the fleet's per-device scenario draw
// picks from it proportionally to the integer weights. The zero Mix means
// "no scenario layer".
type Mix struct {
	Items []Weighted
}

// maxMixItems bounds decoded mixtures against hostile length fields.
const maxMixItems = 1024

// maxMixWeight keeps the total weight safely inside uint64 modulo
// arithmetic.
const maxMixWeight = int64(1) << 32

// Empty reports whether the mix selects nothing.
func (m Mix) Empty() bool { return len(m.Items) == 0 }

// Normalized resolves version-0 refs to the current catalog versions.
// Unknown names pass through untouched for Validate to report.
func (m Mix) Normalized() Mix {
	if m.Empty() {
		return m
	}
	out := Mix{Items: append([]Weighted(nil), m.Items...)}
	for i := range out.Items {
		if out.Items[i].Ref.Version == 0 {
			if sc, ok := Lookup(out.Items[i].Ref.Name); ok {
				out.Items[i].Ref.Version = sc.Version
			}
		}
	}
	return out
}

// Validate reports the first unusable entry.
func (m Mix) Validate() error {
	if len(m.Items) > maxMixItems {
		return fmt.Errorf("scenario: mixture of %d entries exceeds the %d cap", len(m.Items), maxMixItems)
	}
	seen := map[string]bool{}
	for _, it := range m.Items {
		sc, ok := Lookup(it.Ref.Name)
		if !ok {
			return fmt.Errorf("scenario: unknown scenario %q (catalog: %s)", it.Ref.Name, strings.Join(Names(), ", "))
		}
		if it.Ref.Version != 0 && it.Ref.Version != sc.Version {
			return fmt.Errorf("scenario: %s pinned at v%d, catalog has v%d", it.Ref.Name, it.Ref.Version, sc.Version)
		}
		if it.Weight <= 0 || it.Weight > maxMixWeight {
			return fmt.Errorf("scenario: %s weight %d outside (0,%d]", it.Ref.Name, it.Weight, maxMixWeight)
		}
		if seen[it.Ref.Name] {
			return fmt.Errorf("scenario: %s listed twice in the mixture", it.Ref.Name)
		}
		seen[it.Ref.Name] = true
	}
	return nil
}

// Pick maps a uniform hash to one entry, proportionally to the weights.
// It is a pure function of (m, u), which is what lets every process
// planning the same fleet Spec agree on every device's scenario.
func (m Mix) Pick(u uint64) Ref {
	var total uint64
	for _, it := range m.Items {
		total += uint64(it.Weight)
	}
	if total == 0 {
		return Ref{}
	}
	r := u % total
	for _, it := range m.Items {
		if r < uint64(it.Weight) {
			return it.Ref
		}
		r -= uint64(it.Weight)
	}
	return m.Items[len(m.Items)-1].Ref
}

// String renders the mixture in ParseMix's syntax.
func (m Mix) String() string {
	parts := make([]string, len(m.Items))
	for i, it := range m.Items {
		s := it.Ref.String()
		if it.Weight != 1 {
			s += "=" + strconv.FormatInt(it.Weight, 10)
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// ParseMix parses "name[@vN][=weight],..." - e.g. "diurnal=2,vrt-storm" -
// where a bare name weighs 1. The result is validated against the catalog.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Mix{}, fmt.Errorf("scenario: empty entry in mixture %q", s)
		}
		w := Weighted{Weight: 1}
		if name, weight, ok := strings.Cut(part, "="); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(weight), 10, 64)
			if err != nil {
				return Mix{}, fmt.Errorf("scenario: bad weight in %q: %v", part, err)
			}
			w.Weight = n
			part = strings.TrimSpace(name)
		}
		if name, ver, ok := strings.Cut(part, "@"); ok {
			ver = strings.TrimPrefix(ver, "v")
			n, err := strconv.Atoi(ver)
			if err != nil {
				return Mix{}, fmt.Errorf("scenario: bad version in %q: %v", part, err)
			}
			w.Ref.Version = n
			part = name
		}
		w.Ref.Name = part
		m.Items = append(m.Items, w)
	}
	m = m.Normalized()
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// mixTag versions the mixture wire form.
const mixTag = "smix1"

// Encode renders the mixture canonically (tag "smix1"). Equal mixtures
// produce equal bytes, so the fleet Spec's canonical identity (and with it
// the manifest binding) covers the scenario catalog.
func (m Mix) Encode() []byte {
	var e core.StateEncoder
	e.Tag(mixTag)
	m.encodeTo(&e)
	return e.Data()
}

func (m Mix) encodeTo(e *core.StateEncoder) {
	e.Int(int64(len(m.Items)))
	for _, it := range m.Items {
		e.Bytes([]byte(it.Ref.Name))
		e.Int(int64(it.Ref.Version))
		e.Int(it.Weight)
	}
}

// EncodeTo appends the mixture's canonical fields to an encoder (for
// embedding in larger codecs, e.g. the fleet Spec).
func (m Mix) EncodeTo(e *core.StateEncoder) { m.encodeTo(e) }

// DecodeMixFrom reads a mixture embedded in a larger blob. It bounds the
// length before allocating and validates against the catalog, so arbitrary
// bytes cannot produce a mixture the fleet would trip over.
func DecodeMixFrom(d *core.StateDecoder) Mix {
	var m Mix
	n := d.Int()
	if d.Err() != nil {
		return m
	}
	if n < 0 || n > maxMixItems {
		d.Fail("scenario: mixture length %d outside [0,%d]", n, maxMixItems)
		return m
	}
	if n > 0 {
		m.Items = make([]Weighted, n)
	}
	for i := range m.Items {
		m.Items[i].Ref.Name = string(d.Bytes())
		m.Items[i].Ref.Version = int(d.Int())
		m.Items[i].Weight = d.Int()
	}
	if d.Err() == nil {
		if err := m.Validate(); err != nil {
			d.Fail("%v", err)
		}
	}
	return m
}

// DecodeMix parses a canonical mixture blob (FuzzScenarioDecode's surface).
func DecodeMix(blob []byte) (Mix, error) {
	d := core.NewStateDecoder(blob)
	d.ExpectTag(mixTag)
	m := DecodeMixFrom(d)
	if err := d.Finish(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// FprintCatalog writes the one-line-per-scenario catalog listing the CLIs
// print for -list-scenarios and unknown -scenario names.
func FprintCatalog(w io.Writer) {
	width := 0
	for _, sc := range catalog {
		if len(sc.Name) > width {
			width = len(sc.Name)
		}
	}
	for _, sc := range catalog {
		fmt.Fprintf(w, "  %-*s  v%d  %s\n", width, sc.Name, sc.Version, sc.Summary)
	}
}
