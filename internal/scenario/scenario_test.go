package scenario

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vrldram/internal/retention"
)

const (
	testWindow = 0.768
	testSeed   = int64(42)
)

func buildNamed(t *testing.T, name string) *Env {
	t.Helper()
	env, err := BuildEnv(Ref{Name: name}, testWindow, testSeed)
	if err != nil {
		t.Fatalf("BuildEnv(%q): %v", name, err)
	}
	return env
}

func TestCatalogBuildsAndValidates(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("catalog holds %d scenarios, want at least 5", len(names))
	}
	for _, name := range names {
		env := buildNamed(t, name)
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if env.Ref.Name != name || env.Ref.Version != sc.Version {
			t.Fatalf("%s: env ref %s, catalog v%d", name, env.Ref, sc.Version)
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	if _, err := BuildEnv(Ref{Name: "hurricane"}, testWindow, testSeed); err == nil {
		t.Fatal("unknown scenario must not build")
	}
	if _, err := BuildEnv(Ref{Name: "diurnal", Version: 99}, testWindow, testSeed); err == nil {
		t.Fatal("version pin mismatch must not build")
	}
	if _, err := BuildEnv(Ref{Name: "diurnal"}, 0, testSeed); err == nil {
		t.Fatal("zero duration must not build")
	}
}

// TestStreamIndependenceComposition pins the property the kitchen-sink
// scenario depends on: because stressor streams are keyed by LABEL, not by
// position in the composition, each stressor inside kitchen-sink draws
// exactly what it draws in its standalone scenario - so the composed scale
// is exactly (bitwise) the product of the standalone scales.
func TestStreamIndependenceComposition(t *testing.T) {
	ks := buildNamed(t, "kitchen-sink")
	parts := []*Env{
		buildNamed(t, "diurnal"),
		buildNamed(t, "vrt-storm"),
		buildNamed(t, "dpd-adversary"),
		buildNamed(t, "aging"),
	}
	if len(ks.Stressors) != len(parts) {
		t.Fatalf("kitchen-sink composes %d stressors, want %d", len(ks.Stressors), len(parts))
	}
	for row := 0; row < 64; row++ {
		for _, tret := range []float64{0.08, 0.13, 0.27} {
			for i := 0; i <= 32; i++ {
				tt := testWindow * float64(i) / 32
				want := 1.0
				for _, p := range parts {
					want *= p.ScaleAt(row, tret, tt)
				}
				if got := ks.ScaleAt(row, tret, tt); got != want {
					t.Fatalf("row %d tret %g t %g: kitchen-sink scale %g, product of standalones %g",
						row, tret, tt, got, want)
				}
			}
		}
	}
}

// TestEnvSingleVRTMatchesVRTDecayFactor pins the bit-identity between the
// scenario layer's generic segment integrator and retention.VRT's own
// DecayFactor loop: an Env holding exactly one VRT stressor must integrate
// every interval to the identical float64.
func TestEnvSingleVRTMatchesVRTDecayFactor(t *testing.T) {
	v := retention.VRT{AffectedFrac: 0.5, LowFactor: 0.3, MeanDwell: 0.05, MinRetention: 0.05, Seed: 99}
	env := &Env{
		Ref:       Ref{Name: "test", Version: 1},
		Seed:      testSeed,
		Duration:  testWindow,
		Stressors: []Stressor{VRTStressor{Label: "telegraph", V: v}},
	}
	base := retention.ExpDecay{}
	for row := 0; row < 128; row++ {
		for _, tret := range []float64{0.03, 0.1, 0.4} {
			for i := 0; i < 16; i++ {
				t0 := testWindow * float64(i) / 16
				t1 := t0 + testWindow/11
				got := env.DecayFactor(row, tret, t0, t1, base)
				want := v.DecayFactor(row, tret, t0, t1, base)
				if got != want {
					t.Fatalf("row %d tret %g [%g,%g]: env %v, VRT %v", row, tret, t0, t1, got, want)
				}
			}
		}
	}
}

func TestEnvNoStressorsReducesToBase(t *testing.T) {
	env := buildNamed(t, "nominal")
	base := retention.ExpDecay{}
	for _, span := range []struct{ t0, t1 float64 }{{0, 0.064}, {0.1, 0.35}, {0.5, 0.5}, {0.7, 0.3}} {
		got := env.DecayFactor(3, 0.2, span.t0, span.t1, base)
		want := 1.0
		if span.t1 > span.t0 {
			want = base.Factor(span.t1-span.t0, 0.2)
		}
		if got != want {
			t.Fatalf("[%g,%g]: got %v, want %v", span.t0, span.t1, got, want)
		}
	}
}

// TestStressorsMakeProgress guards the segment loop's termination contract:
// NextChange must be strictly after t even exactly on a boundary.
func TestStressorsMakeProgress(t *testing.T) {
	for _, name := range Names() {
		env := buildNamed(t, name)
		for _, s := range env.Stressors {
			tt := 0.0
			for i := 0; i < 10000; i++ {
				n := s.NextChange(7, 0.2, tt)
				if math.IsInf(n, 1) {
					break
				}
				if n <= tt {
					t.Fatalf("%s/%s: NextChange(%g) = %g, not strictly after", name, s.Name(), tt, n)
				}
				tt = n
				if tt > testWindow {
					break
				}
			}
		}
	}
}

func TestSnapshotRestoreIdentity(t *testing.T) {
	for _, name := range Names() {
		env := buildNamed(t, name)
		blob, err := env.SnapshotState()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := env.RestoreState(blob); err != nil {
			t.Fatalf("%s: restore own snapshot: %v", name, err)
		}
		// An identically rebuilt env accepts the blob; snapshot is a fixed
		// point.
		again := buildNamed(t, name)
		if err := again.RestoreState(blob); err != nil {
			t.Fatalf("%s: rebuilt env rejected snapshot: %v", name, err)
		}
		blob2, err := again.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: snapshot not a fixed point", name)
		}
	}

	ks := buildNamed(t, "kitchen-sink")
	blob, err := ks.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := buildNamed(t, "diurnal").RestoreState(blob); err == nil {
		t.Fatal("different scenario must reject the snapshot")
	}
	other, err := BuildEnv(Ref{Name: "kitchen-sink"}, testWindow, testSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("different seed must reject the snapshot")
	}
	shorter, err := BuildEnv(Ref{Name: "kitchen-sink"}, testWindow/2, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := shorter.RestoreState(blob); err == nil {
		t.Fatal("different window must reject the snapshot")
	}
	if err := ks.RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage blob must be rejected")
	}
}

func TestMixParseStringRoundTrip(t *testing.T) {
	m, err := ParseMix("diurnal=3, vrt-storm, kitchen-sink@v1=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Items) != 3 {
		t.Fatalf("parsed %d items, want 3", len(m.Items))
	}
	if m.Items[0].Ref.Name != "diurnal" || m.Items[0].Weight != 3 || m.Items[0].Ref.Version != 1 {
		t.Fatalf("first item %+v", m.Items[0])
	}
	if m.Items[1].Weight != 1 {
		t.Fatalf("bare name weight %d, want 1", m.Items[1].Weight)
	}
	back, err := ParseMix(m.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", m.String(), err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("String round trip:\n got %+v\nwant %+v", back, m)
	}

	empty, err := ParseMix("  ")
	if err != nil || !empty.Empty() {
		t.Fatalf("blank mixture: %+v, %v", empty, err)
	}

	for _, bad := range []string{"hurricane", "diurnal=0", "diurnal=-1", "diurnal=x", "diurnal@vx", "diurnal,diurnal", "diurnal,,aging", "diurnal@v9"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) must fail", bad)
		}
	}
}

func TestMixPickWeighted(t *testing.T) {
	m, err := ParseMix("diurnal=3,aging=1")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 4096; i++ {
		r := m.Pick(splitmix64(uint64(i)))
		if r != m.Pick(splitmix64(uint64(i))) {
			t.Fatal("Pick is not deterministic")
		}
		counts[r.Name]++
	}
	if counts["diurnal"]+counts["aging"] != 4096 {
		t.Fatalf("picks escaped the mixture: %v", counts)
	}
	if counts["diurnal"] <= 2*counts["aging"] {
		t.Fatalf("weight 3:1 not respected: %v", counts)
	}
	if (Mix{}).Pick(12345) != (Ref{}) {
		t.Fatal("empty mix must pick the zero ref")
	}
}

func TestMixCodecRoundTrip(t *testing.T) {
	m, err := ParseMix("nominal=2,vrt-storm=5,kitchen-sink")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMix(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("codec round trip:\n got %+v\nwant %+v", got, m)
	}
	if !bytes.Equal(got.Encode(), m.Encode()) {
		t.Fatal("re-encode not byte-identical")
	}

	if _, err := DecodeMix(nil); err == nil {
		t.Fatal("empty blob must not decode")
	}
	blob := m.Encode()
	if _, err := DecodeMix(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob must not decode")
	}
	if _, err := DecodeMix(append(append([]byte{}, blob...), 0xFF)); err == nil {
		t.Fatal("trailing bytes must not decode")
	}
}

// FuzzScenarioDecode is the hostile-input surface of the mixture codec: no
// input may panic, and anything that decodes must be a valid, canonically
// re-encodable mixture.
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("smix1"))
	if m, err := ParseMix("diurnal=3,vrt-storm"); err == nil {
		f.Add(m.Encode())
	}
	if m, err := ParseMix("kitchen-sink"); err == nil {
		f.Add(m.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMix(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded mixture fails validation: %v", err)
		}
		again, err := DecodeMix(m.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatal("decode -> encode -> decode not a fixed point")
		}
	})
}

func TestFprintCatalogListsEveryScenario(t *testing.T) {
	var buf bytes.Buffer
	FprintCatalog(&buf)
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("catalog listing misses %q:\n%s", name, out)
		}
	}
}

// TestDecayFactorsMatchesScalar pins the dram.BatchModulator contract on
// every catalog scenario: DecayFactors over a mixed batch - repeated rows,
// varied retention times, degenerate (t1 <= t0) spans, intervals crossing
// segment change-points - must reproduce the scalar DecayFactor loop bit for
// bit. This is what lets the batched simulator backend route scenario runs
// through the columnar kernel without perturbing a single violation.
func TestDecayFactorsMatchesScalar(t *testing.T) {
	base := retention.ExpDecay{}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			env := buildNamed(t, name)
			rng := rand.New(rand.NewSource(17))
			const n = 600
			rows := make([]int, n)
			tret := make([]float64, n)
			t0 := make([]float64, n)
			t1 := make([]float64, n)
			out := make([]float64, n)
			for i := 0; i < n; i++ {
				rows[i] = rng.Intn(96)
				tret[i] = 0.02 + rng.Float64()*0.5
				t0[i] = testWindow * rng.Float64()
				switch rng.Intn(8) {
				case 0:
					t1[i] = t0[i] // empty span
				case 1:
					t1[i] = t0[i] - rng.Float64()*0.1 // inverted span
				default:
					t1[i] = t0[i] + rng.Float64()*testWindow/2
				}
			}
			env.DecayFactors(rows, tret, t0, t1, base, out)
			for i := 0; i < n; i++ {
				want := env.DecayFactor(rows[i], tret[i], t0[i], t1[i], base)
				if out[i] != want {
					t.Fatalf("op %d (row %d tret %g [%g,%g]): batch %.17g, scalar %.17g",
						i, rows[i], tret[i], t0[i], t1[i], out[i], want)
				}
			}
		})
	}
}
