package scenario

import (
	"math"

	"vrldram/internal/retention"
)

// The concrete stressors. Each one is a pure function of its configuration:
// per-row and per-time draws come from the label-keyed splitmix64 stream, so
// two stressors with different labels are statistically independent and a
// stressor draws identically whether it runs alone or composed (the
// stream-independence property the composition tests pin down).

// TempCycle models a diurnal datacenter thermal cycle as a staircase
// sinusoid: the cycle is quantized into Steps constant-temperature treads
// (retention modulation must be piecewise constant for exact segment
// integration), and each tread's retention scale comes from the standard
// thermal model. The phase offset is drawn from the scenario stream, so two
// devices in a fleet do not heat in lockstep.
type TempCycle struct {
	Label      string
	Model      retention.TempModel
	MeanC      float64 // cycle mean temperature (degC)
	AmplitudeC float64 // peak deviation from the mean (degC)
	Period     float64 // full cycle length (s)
	Steps      int     // treads per cycle
	PhaseFrac  float64 // cycle phase offset in [0,1)
}

// NewTempCycle draws the phase from the scenario stream keyed by label.
func NewTempCycle(seed int64, label string, model retention.TempModel, meanC, amplitudeC, period float64, steps int) TempCycle {
	return TempCycle{
		Label:      label,
		Model:      model,
		MeanC:      meanC,
		AmplitudeC: amplitudeC,
		Period:     period,
		Steps:      steps,
		PhaseFrac:  streamUnit(seed, label, 0),
	}
}

// Name implements Stressor.
func (c TempCycle) Name() string { return c.Label }

// TempAt returns the tread temperature at time t.
func (c TempCycle) TempAt(t float64) float64 {
	pos := t/c.Period + c.PhaseFrac
	k := int64(math.Floor(pos * float64(c.Steps)))
	step := k % int64(c.Steps)
	if step < 0 {
		step += int64(c.Steps)
	}
	// Sample the sinusoid at the tread midpoint so the staircase is centered
	// on the continuous cycle it approximates.
	ang := 2 * math.Pi * (float64(step) + 0.5) / float64(c.Steps)
	return c.MeanC + c.AmplitudeC*math.Sin(ang)
}

// ScaleAt implements Stressor: rows share the device's temperature.
func (c TempCycle) ScaleAt(row int, tret, t float64) float64 {
	return c.Model.Scale(c.TempAt(t))
}

// RowInvariant implements the RowInvariant capability: every row shares the
// device temperature.
func (c TempCycle) RowInvariant() bool { return true }

// NextChange implements Stressor: the next tread boundary.
func (c TempCycle) NextChange(row int, tret, t float64) float64 {
	treads := float64(c.Steps)
	k := math.Floor((t/c.Period + c.PhaseFrac) * treads)
	next := ((k+1)/treads - c.PhaseFrac) * c.Period
	if next <= t {
		next = t + 1e-9*c.Period/treads
	}
	return next
}

// NominalUntil implements the nominalReporter capability for the
// fast-forward backend: a tread whose thermal scale is exactly 1 is nominal
// until the next tread boundary (the boundary itself ends the window even if
// the next tread is also scale 1, because the segment-walk split there is
// itself non-identity).
func (c TempCycle) NominalUntil(from float64) float64 {
	if c.Model.Scale(c.TempAt(from)) != 1 {
		return from
	}
	return c.NextChange(0, 1, from)
}

// VRTStressor adapts a retention.VRT random-telegraph process to the
// Stressor interface: ScaleAt is the telegraph state factor and NextChange
// the next toggle, using exactly the boundary arithmetic of
// retention.VRT.DecayFactor - so an Env holding a single VRTStressor
// integrates bit-identically to a bank running that VRT directly (the
// equivalence the scenario tests assert).
type VRTStressor struct {
	Label string
	V     retention.VRT
}

// NewVRTStressor seeds the telegraph process from the scenario stream keyed
// by label.
func NewVRTStressor(seed int64, label string, v retention.VRT) VRTStressor {
	v.Seed = StreamSeed(seed, label)
	return VRTStressor{Label: label, V: v}
}

// Name implements Stressor.
func (s VRTStressor) Name() string { return s.Label }

// ScaleAt implements Stressor.
func (s VRTStressor) ScaleAt(row int, tret, t float64) float64 {
	return s.V.StateFactor(row, tret, t)
}

// NextChange implements Stressor.
func (s VRTStressor) NextChange(row int, tret, t float64) float64 {
	return s.V.NextToggle(row, tret, t)
}

// PatternAdversary models write-heavy data-pattern dependence: an adversary
// (or just an unlucky workload) periodically rewrites a fraction of rows
// with a worst-case coupling pattern, derating their retention by the
// pattern factor until the next rewrite frame. Which rows are hot re-draws
// every frame from the stream, so the stress walks the bank instead of
// pinning the same victims.
type PatternAdversary struct {
	Label       string
	Seed        int64             // stream seed (derived from the scenario seed)
	FramePeriod float64           // rewrite cadence (s)
	HotFrac     float64           // fraction of rows holding the hostile pattern per frame
	Pattern     retention.Pattern // the pattern written to hot rows
}

// NewPatternAdversary derives the stream from the scenario seed keyed by
// label.
func NewPatternAdversary(seed int64, label string, framePeriod, hotFrac float64, pattern retention.Pattern) PatternAdversary {
	return PatternAdversary{
		Label:       label,
		Seed:        StreamSeed(seed, label),
		FramePeriod: framePeriod,
		HotFrac:     hotFrac,
		Pattern:     pattern,
	}
}

// Name implements Stressor.
func (a PatternAdversary) Name() string { return a.Label }

// hot reports whether the row holds the hostile pattern during frame k.
func (a PatternAdversary) hot(row int, k int64) bool {
	h := splitmix64(uint64(a.Seed)) ^ splitmix64(uint64(row)+0x6a09e667f3bcc909) ^ splitmix64(uint64(k)+0x517cc1b727220a95)
	return unitOf(splitmix64(h)) < a.HotFrac
}

// ScaleAt implements Stressor.
func (a PatternAdversary) ScaleAt(row int, tret, t float64) float64 {
	if a.hot(row, frameOf(t, a.FramePeriod)) {
		return retention.PatternFactor(a.Pattern)
	}
	return 1
}

// NextChange implements Stressor: the next rewrite frame.
func (a PatternAdversary) NextChange(row int, tret, t float64) float64 {
	return frameNext(t, a.FramePeriod)
}

// NominalUntil implements the nominalReporter capability. A frame with any
// hot rows is never device-wide nominal; with HotFrac <= 0 no row is ever
// hot, but each frame boundary still ends the nominal window (the segment
// split is non-identity on its own).
func (a PatternAdversary) NominalUntil(from float64) float64 {
	if a.HotFrac <= 0 {
		return a.NextChange(0, 1, from)
	}
	return from
}

// AgingRamp compresses multi-year wear into the run window: retention
// degrades along a staircase from zero aging at t=0 to Years of aging at
// t=Window, following the aging model. The staircase keeps the modulation
// piecewise constant; Steps trades fidelity against segment count.
type AgingRamp struct {
	Label  string
	Model  retention.AgingModel
	Years  float64 // total simulated aging reached at t = Window
	Window float64 // the run window the ramp spans (s)
	Steps  int
}

// Name implements Stressor.
func (a AgingRamp) Name() string { return a.Label }

// step returns the ramp step index at time t, clamped to [0, Steps].
func (a AgingRamp) step(t float64) int64 {
	if t <= 0 {
		return 0
	}
	k := int64(math.Floor(t / a.Window * float64(a.Steps)))
	if k > int64(a.Steps) {
		k = int64(a.Steps)
	}
	return k
}

// ScaleAt implements Stressor.
func (a AgingRamp) ScaleAt(row int, tret, t float64) float64 {
	years := a.Years * float64(a.step(t)) / float64(a.Steps)
	return a.Model.Scale(years)
}

// RowInvariant implements the RowInvariant capability: wear accrues
// device-wide.
func (a AgingRamp) RowInvariant() bool { return true }

// NextChange implements Stressor.
func (a AgingRamp) NextChange(row int, tret, t float64) float64 {
	if a.step(t) >= int64(a.Steps) {
		return math.Inf(1)
	}
	return frameNext(t, a.Window/float64(a.Steps))
}

// NominalUntil implements the nominalReporter capability: the ramp's step 0
// is unaged (scale 1) and each later step may not be, so the window runs to
// the next staircase boundary only while the current step's scale is 1.
func (a AgingRamp) NominalUntil(from float64) float64 {
	if a.ScaleAt(0, 1, from) != 1 {
		return from
	}
	return a.NextChange(0, 1, from)
}

// Gate is the episodic-activation combinator: time is cut into Period-long
// episodes, each independently active with probability ActiveProb (drawn
// from the stream keyed by Label), and the inner stressor only acts during
// active episodes. A VRT storm is a Gate over an aggressive VRT process:
// bursts of telegraph activity separated by calm.
type Gate struct {
	Label      string
	Seed       int64 // stream seed (derived from the scenario seed)
	Period     float64
	ActiveProb float64
	Inner      Stressor
}

// NewGate derives the episode stream from the scenario seed keyed by label.
func NewGate(seed int64, label string, period, activeProb float64, inner Stressor) Gate {
	return Gate{Label: label, Seed: StreamSeed(seed, label), Period: period, ActiveProb: activeProb, Inner: inner}
}

// Name implements Stressor.
func (g Gate) Name() string { return g.Label }

// active reports whether episode k is active.
func (g Gate) active(k int64) bool {
	return unitOf(splitmix64(uint64(g.Seed)^splitmix64(uint64(k)+0x2545f4914f6cdd1d))) < g.ActiveProb
}

// ScaleAt implements Stressor.
func (g Gate) ScaleAt(row int, tret, t float64) float64 {
	if !g.active(frameOf(t, g.Period)) {
		return 1
	}
	return g.Inner.ScaleAt(row, tret, t)
}

// RowInvariant implements the RowInvariant capability: a gate is
// row-invariant exactly when its inner stressor is (the episode draws are
// keyed by time alone).
func (g Gate) RowInvariant() bool {
	inv, ok := g.Inner.(RowInvariant)
	return ok && inv.RowInvariant()
}

// NominalUntil implements the nominalReporter capability: a calm (inactive)
// episode is identity until its boundary; an active episode is never nominal
// regardless of the inner stressor's current value (the inner change-points
// would split the walk anyway). This is what lets the fast-forward backend
// macro-step the calm stretches of a VRT storm.
func (g Gate) NominalUntil(from float64) float64 {
	if g.active(frameOf(from, g.Period)) {
		return from
	}
	return frameNext(from, g.Period)
}

// NextChange implements Stressor: the episode boundary, or the inner
// stressor's next change if it comes sooner during an active episode.
func (g Gate) NextChange(row int, tret, t float64) float64 {
	boundary := frameNext(t, g.Period)
	if g.active(frameOf(t, g.Period)) {
		if n := g.Inner.NextChange(row, tret, t); n < boundary {
			return n
		}
	}
	return boundary
}
