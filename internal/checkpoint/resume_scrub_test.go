package checkpoint

import (
	"reflect"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// scrubbedStack builds the full self-healing pipeline from scratch: a bank
// under VRT, a guarded VRL scheduler as the repair target, and a patrol
// scrubber reading through the SECDED classifier. Every call returns fresh
// instances, which is exactly what a resume must be able to start from.
func (h *harness) scrubbedStack(t *testing.T, profile *retention.BankProfile) (*dram.Bank, core.Scheduler, *scrub.Scrubber) {
	t.Helper()
	b, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	v := retention.DefaultVRT()
	if err := b.SetVRT(&v); err != nil {
		t.Fatal(err)
	}
	s, err := core.NewVRL(profile, core.Config{Restore: h.rm})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guard.New(s, h.geom.Rows, guard.Config{Restore: h.rm})
	if err != nil {
		t.Fatal(err)
	}
	store, err := scrub.NewBankStore(b, ecc.DefaultClassifier())
	if err != nil {
		t.Fatal(err)
	}
	scr, err := scrub.New(store, scrub.Config{
		Sched:  g,
		Spares: 64,
		Reprofile: func(row int) (float64, error) {
			return profiler.ProfileRow(profile, retention.ExpDecay{}, row, profiler.Options{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, g, scr
}

// TestResumeEquivalenceScrubbed extends the keystone resume property to the
// richest stack this repository can assemble: guarded VRL + ECC + online
// patrol scrubber, over a mis-binned profile with VRT active, so the repair
// pipeline (demotions, re-profiles, remaps) has real work whose state must
// survive the checkpoint. Resuming from any kill point must reproduce the
// uninterrupted Stats - including every scrub counter - bit for bit, and
// the spare-row remap table must come back intact.
func TestResumeEquivalenceScrubbed(t *testing.T) {
	h := newHarness(t)
	bad, _, err := fault.MisBinProfile(h.profile, 0.05, retention.RAIDRBins, 11)
	if err != nil {
		t.Fatal(err)
	}
	cls := ecc.DefaultClassifier()

	var snaps []*sim.Checkpoint
	opts := h.opts
	opts.ECC = &cls
	opts.CheckpointEvery = opts.Duration / 16
	opts.CheckpointSink = func(cp *sim.Checkpoint) error {
		snaps = append(snaps, roundTrip(t, cp))
		return nil
	}
	bank, sched, scr := h.scrubbedStack(t, bad)
	opts.Scrub = scr
	baseline, err := sim.Run(bank, sched, h.src(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 10 {
		t.Fatalf("only %d snapshots taken", len(snaps))
	}
	// The run must actually exercise the pipeline, or the property is vacuous.
	if baseline.Scrub.RowsPatrolled == 0 {
		t.Fatal("patrol never ran")
	}
	if baseline.Scrub.Corrected == 0 && baseline.Scrub.Uncorrectable == 0 {
		t.Fatal("fault injection produced no ECC events; the scrub state is trivial")
	}
	for i, cp := range snaps {
		if len(cp.ScrubState) == 0 {
			t.Fatalf("snapshot %d carries no scrubber state", i)
		}
	}
	wantRemapped := scr.Remapped()

	for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		ropts := h.opts
		ropts.ECC = &cls
		rbank, rsched, rscr := h.scrubbedStack(t, bad)
		ropts.Scrub = rscr
		ropts.Resume = snaps[i]
		resumed, err := sim.Run(rbank, rsched, h.src(), ropts)
		if err != nil {
			t.Fatalf("resume from snapshot %d (t=%.3f): %v", i, snaps[i].Time, err)
		}
		if !reflect.DeepEqual(resumed, baseline) {
			t.Errorf("resume from snapshot %d (t=%.3f):\n got %+v\nwant %+v", i, snaps[i].Time, resumed, baseline)
		}
		if got := rscr.Remapped(); !reflect.DeepEqual(got, wantRemapped) {
			t.Errorf("resume from snapshot %d: remap table %v, want %v", i, got, wantRemapped)
		}
	}
}

// TestResumeRejectsScrubMismatch pins the resume-time validation around the
// scrubber: a scrubbed snapshot cannot continue without a scrubber, and an
// unscrubbed snapshot cannot suddenly gain one.
func TestResumeRejectsScrubMismatch(t *testing.T) {
	h := newHarness(t)
	cls := ecc.DefaultClassifier()

	capture := func(withScrub bool) *sim.Checkpoint {
		var snaps []*sim.Checkpoint
		opts := h.opts
		opts.ECC = &cls
		opts.CheckpointEvery = opts.Duration / 4
		opts.CheckpointSink = func(cp *sim.Checkpoint) error {
			snaps = append(snaps, roundTrip(t, cp))
			return nil
		}
		bank, sched, scr := h.scrubbedStack(t, h.profile)
		if withScrub {
			opts.Scrub = scr
		}
		if _, err := sim.Run(bank, sched, h.src(), opts); err != nil {
			t.Fatal(err)
		}
		return snaps[0]
	}

	scrubbed := capture(true)
	ropts := h.opts
	ropts.ECC = &cls
	ropts.Resume = scrubbed
	bank, sched, _ := h.scrubbedStack(t, h.profile)
	if _, err := sim.Run(bank, sched, h.src(), ropts); err == nil {
		t.Fatal("scrubbed snapshot resumed without a scrubber")
	}

	plain := capture(false)
	ropts = h.opts
	ropts.ECC = &cls
	bank, sched, scr := h.scrubbedStack(t, h.profile)
	ropts.Scrub = scr
	ropts.Resume = plain
	if _, err := sim.Run(bank, sched, h.src(), ropts); err == nil {
		t.Fatal("unscrubbed snapshot resumed with a scrubber attached")
	}
}
