package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/guard"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// harness builds identically-configured banks, schedulers, and trace
// sources on demand - the contract a resumed run must honor.
type harness struct {
	geom    device.BankGeometry
	profile *retention.BankProfile
	rm      core.RestoreModel
	recs    []trace.Record
	opts    sim.Options
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 512, Cols: 32}
	prof, err := retention.NewSampledProfile(geom, retention.DefaultCellDistribution(), 7)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, geom)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic access stream touching rows cyclically, so VRL-Access
	// counter resets and the trace-position bookkeeping both matter.
	const nrec = 4000
	recs := make([]trace.Record, nrec)
	for i := range recs {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		recs[i] = trace.Record{Time: float64(i) * 0.768 / nrec, Op: op, Row: (i * 37) % geom.Rows}
	}
	return &harness{
		geom:    geom,
		profile: prof,
		rm:      rm,
		recs:    recs,
		opts:    sim.Options{Duration: 0.768, TCK: p.TCK},
	}
}

func (h *harness) bank(t *testing.T) *dram.Bank {
	t.Helper()
	b, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// schedulers lists the stack variants the keystone property must hold for.
var schedulers = []string{"raidr", "vrl", "vrl-access", "guarded-vrl"}

func (h *harness) sched(t *testing.T, name string) core.Scheduler {
	t.Helper()
	cfg := core.Config{Restore: h.rm}
	var (
		s   core.Scheduler
		err error
	)
	switch name {
	case "raidr":
		s, err = core.NewRAIDR(h.profile, cfg)
	case "vrl":
		s, err = core.NewVRL(h.profile, cfg)
	case "vrl-access":
		s, err = core.NewVRLAccess(h.profile, cfg)
	case "guarded-vrl":
		s, err = core.NewVRL(h.profile, cfg)
		if err == nil {
			s, err = guard.New(s, h.geom.Rows, guard.Config{Restore: h.rm})
		}
	default:
		t.Fatalf("unknown scheduler %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (h *harness) src() trace.Source { return trace.NewSliceSource(h.recs) }

// roundTrip serializes a checkpoint through the on-disk container and back,
// so every resume in these tests exercises the codec's bit-exactness too.
func roundTrip(t *testing.T, cp *sim.Checkpoint) *sim.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSim(&buf, cp); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSim(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResumeEquivalence is the keystone: for every scheduler stack,
// interrupting a run at an arbitrary checkpoint and resuming from the
// serialized snapshot yields Stats identical - including float
// accumulators, bit for bit - to the uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	h := newHarness(t)
	for _, name := range schedulers {
		t.Run(name, func(t *testing.T) {
			var snaps []*sim.Checkpoint
			opts := h.opts
			opts.CheckpointEvery = opts.Duration / 16
			opts.CheckpointSink = func(cp *sim.Checkpoint) error {
				snaps = append(snaps, roundTrip(t, cp))
				return nil
			}
			baseline, err := sim.Run(h.bank(t), h.sched(t, name), h.src(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) < 10 {
				t.Fatalf("only %d snapshots taken", len(snaps))
			}
			// Kill points: right after the first snapshot, mid-run, and at
			// the last snapshot before completion.
			for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
				ropts := h.opts
				ropts.Resume = snaps[i]
				resumed, err := sim.Run(h.bank(t), h.sched(t, name), h.src(), ropts)
				if err != nil {
					t.Fatalf("resume from snapshot %d (t=%.3f): %v", i, snaps[i].Time, err)
				}
				if !reflect.DeepEqual(resumed, baseline) {
					t.Errorf("resume from snapshot %d (t=%.3f):\n got %+v\nwant %+v", i, snaps[i].Time, resumed, baseline)
				}
			}
		})
	}
}

// TestCancelWritesFinalSnapshotAndResumes models the CLI kill path: cancel
// the context mid-run, receive the final snapshot the simulator emits on
// the way out, and resume from it to the uninterrupted run's exact Stats.
func TestCancelWritesFinalSnapshotAndResumes(t *testing.T) {
	h := newHarness(t)
	for _, name := range schedulers {
		t.Run(name, func(t *testing.T) {
			baseline, err := sim.Run(h.bank(t), h.sched(t, name), h.src(), h.opts)
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			var last *sim.Checkpoint
			opts := h.opts
			opts.CheckpointEvery = opts.Duration / 32
			opts.CheckpointSink = func(cp *sim.Checkpoint) error {
				last = roundTrip(t, cp)
				if len(cp.Events) > 0 && cp.Time > 0.2 {
					cancel() // kill mid-run, at an arbitrary point
				}
				return nil
			}
			st, err := sim.RunContext(ctx, h.bank(t), h.sched(t, name), h.src(), opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if st.FullRefreshes >= baseline.FullRefreshes {
				t.Fatal("cancelled run was not actually partial")
			}
			if last == nil {
				t.Fatal("no final snapshot delivered")
			}

			ropts := h.opts
			ropts.Resume = last
			resumed, err := sim.Run(h.bank(t), h.sched(t, name), h.src(), ropts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resumed, baseline) {
				t.Errorf("resume after cancel:\n got %+v\nwant %+v", resumed, baseline)
			}
		})
	}
}

// TestResumeRejectsMismatchedRun verifies the resume-time validation: a
// snapshot must not silently continue under a different scheduler,
// duration, or bank shape.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	h := newHarness(t)
	var snaps []*sim.Checkpoint
	opts := h.opts
	opts.CheckpointEvery = opts.Duration / 4
	opts.CheckpointSink = func(cp *sim.Checkpoint) error {
		snaps = append(snaps, roundTrip(t, cp))
		return nil
	}
	if _, err := sim.Run(h.bank(t), h.sched(t, "vrl"), h.src(), opts); err != nil {
		t.Fatal(err)
	}
	cp := snaps[0]

	badSched := h.opts
	badSched.Resume = cp
	if _, err := sim.Run(h.bank(t), h.sched(t, "raidr"), h.src(), badSched); err == nil {
		t.Fatal("resume under a different scheduler must fail")
	}

	badDur := h.opts
	badDur.Duration = 0.5
	badDur.Resume = cp
	if _, err := sim.Run(h.bank(t), h.sched(t, "vrl"), h.src(), badDur); err == nil {
		t.Fatal("resume with a different duration must fail")
	}

	shortTrace := h.opts
	shortTrace.Resume = cp
	short := trace.NewSliceSource(h.recs[:10])
	if _, err := sim.Run(h.bank(t), h.sched(t, "vrl"), short, shortTrace); err == nil {
		t.Fatal("resume with a shorter trace must fail")
	}
}

// TestCheckpointRequiresSnapshotter: a stack with an un-snapshotable layer
// must be rejected up front, not die at the first checkpoint boundary.
func TestCheckpointRequiresSnapshotter(t *testing.T) {
	h := newHarness(t)
	opts := h.opts
	opts.CheckpointEvery = 0.1
	opts.CheckpointSink = func(*sim.Checkpoint) error { return nil }
	sched := opaqueScheduler{h.sched(t, "vrl")}
	_, err := sim.Run(h.bank(t), sched, nil, opts)
	if err == nil || !strings.Contains(err.Error(), "Snapshotter") {
		t.Fatalf("err = %v, want a Snapshotter capability error", err)
	}
}

// opaqueScheduler hides every optional capability of the wrapped scheduler.
type opaqueScheduler struct{ inner core.Scheduler }

func (o opaqueScheduler) Name() string                    { return o.inner.Name() }
func (o opaqueScheduler) Period(row int) float64          { return o.inner.Period(row) }
func (o opaqueScheduler) RefreshOp(r int, t float64) core.Op { return o.inner.RefreshOp(r, t) }
func (o opaqueScheduler) OnAccess(r int, t float64)       { o.inner.OnAccess(r, t) }
func (o opaqueScheduler) MPRSF(row int) int               { return o.inner.MPRSF(row) }

// TestSnapshotterRoundTripStandalone pins the core.Snapshotter contract on
// each scheduler directly: state survives a snapshot/restore into a fresh
// instance, and shape mismatches are rejected.
func TestSnapshotterRoundTripStandalone(t *testing.T) {
	h := newHarness(t)
	for _, name := range schedulers {
		t.Run(name, func(t *testing.T) {
			a := h.sched(t, name).(core.Snapshotter)
			// Mutate some state through the public surface.
			as := a.(core.Scheduler)
			for i := 0; i < 200; i++ {
				as.RefreshOp(i%h.geom.Rows, float64(i)*0.001)
			}
			blob, err := a.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			b := h.sched(t, name).(core.Snapshotter)
			if err := b.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			blob2, err := b.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("snapshot -> restore -> snapshot is not a fixed point")
			}
			if err := b.RestoreState([]byte("garbage")); err == nil {
				t.Fatal("garbage blob must be rejected")
			}
		})
	}
	// Cross-policy blobs must be rejected by tag.
	vrl := h.sched(t, "vrl").(core.Snapshotter)
	raidr := h.sched(t, "raidr").(core.Snapshotter)
	blob, err := vrl.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := raidr.RestoreState(blob); err == nil {
		t.Fatal("RAIDR must reject a VRL blob")
	}
}

// TestStaggeredResumePointsProperty resumes from EVERY snapshot of one run
// (a denser sweep than the keystone's three points) for the guarded stack,
// whose state machine is the richest.
func TestStaggeredResumePointsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("dense resume sweep")
	}
	h := newHarness(t)
	var snaps []*sim.Checkpoint
	opts := h.opts
	opts.CheckpointEvery = opts.Duration / 24
	opts.CheckpointSink = func(cp *sim.Checkpoint) error {
		snaps = append(snaps, roundTrip(t, cp))
		return nil
	}
	baseline, err := sim.Run(h.bank(t), h.sched(t, "guarded-vrl"), h.src(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range snaps {
		ropts := h.opts
		ropts.Resume = cp
		resumed, err := sim.Run(h.bank(t), h.sched(t, "guarded-vrl"), h.src(), ropts)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if !reflect.DeepEqual(resumed, baseline) {
			t.Fatalf("snapshot %d (t=%.4f) diverged:\n got %+v\nwant %+v", i, cp.Time, resumed, baseline)
		}
	}
	if baseline.Guard == (core.GuardStats{}) {
		t.Fatal("guarded baseline recorded no guard activity; test exercises nothing")
	}
}
