package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"vrldram/internal/exp"
)

// FuzzCheckpointDecode throws arbitrary bytes at both container decoders.
// The invariants: no panic, no unbounded allocation (the codecs validate
// length prefixes against the remaining payload before allocating), and
// anything that decodes cleanly must re-encode to a byte-identical
// container (the formats are canonical).
func FuzzCheckpointDecode(f *testing.F) {
	var sim1 bytes.Buffer
	if err := EncodeSim(&sim1, sampleSim()); err != nil {
		f.Fatal(err)
	}
	var camp bytes.Buffer
	err := EncodeCampaign(&camp, []*exp.Result{
		{ID: "fig4", Title: "t", Headers: []string{"h"}, Rows: [][]string{{"v"}}, Notes: []string{"n"}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sim1.Bytes())
	f.Add(camp.Bytes())
	f.Add([]byte("VRLC"))
	f.Add(sim1.Bytes()[:headerLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if cp, err := DecodeSim(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := EncodeSim(&out, cp); err != nil {
				t.Fatalf("decoded checkpoint failed to re-encode: %v", err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("sim container is not canonical:\n in  %x\n out %x", data, out.Bytes())
			}
		}
		if results, err := DecodeCampaign(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := EncodeCampaign(&out, results); err != nil {
				t.Fatalf("decoded campaign failed to re-encode: %v", err)
			}
			back, err := DecodeCampaign(&out)
			if err != nil {
				t.Fatalf("re-encoded campaign failed to decode: %v", err)
			}
			if !reflect.DeepEqual(back, results) {
				t.Fatal("campaign round trip diverged")
			}
		}
	})
}
