package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// corruptFile flips one byte in the middle of the file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestManagerAllGenerationsCorrupt pins the start-fresh contract: when every
// retained generation is corrupt, Load does not hand the caller the last
// decode error to guess about - it returns an error wrapping ErrNoSnapshot,
// the same clean signal as an empty directory, so the caller starts cold.
// The manager must remain fully usable afterwards: the next Save rotates the
// corpses aside and the fresh snapshot loads.
func TestManagerAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	mgr, err := NewManager(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		cp := sampleSim()
		cp.Time = float64(i)
		saveSim(t, mgr, cp)
	}
	for _, name := range []string{path, path + ".1", path + ".2"} {
		corruptFile(t, name)
	}

	_, _, err = loadSim(mgr)
	if err == nil {
		t.Fatal("load with every generation corrupt unexpectedly succeeded")
	}
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-corrupt load error %v does not wrap ErrNoSnapshot", err)
	}

	// The same signal when nothing exists at all: callers need one check,
	// not two.
	empty, err := NewManager(filepath.Join(dir, "missing.ckpt"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSim(empty); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing-snapshot load error %v does not wrap ErrNoSnapshot", err)
	}

	// Start fresh over the wreckage: Save must rotate the corrupt newest
	// generation into .1 and land the new snapshot at the primary path.
	fresh := sampleSim()
	fresh.Time = 42
	saveSim(t, mgr, fresh)

	cp, from, err := loadSim(mgr)
	if err != nil {
		t.Fatalf("load after start-fresh save: %v", err)
	}
	if from != path {
		t.Errorf("loaded from %s, want the primary path %s", from, path)
	}
	if cp.Time != 42 {
		t.Errorf("fresh snapshot t=%v, want 42", cp.Time)
	}

	// Rotation happened: the corrupt ex-primary moved to .1, the previous .1
	// to .2, and nothing beyond keep=3 remains.
	for _, name := range []string{path + ".1", path + ".2"} {
		if _, err := os.Stat(name); err != nil {
			t.Errorf("rotated generation %s missing: %v", name, err)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("generation beyond keep survived rotation (stat err %v)", err)
	}

	// A second save keeps rotating: the fresh snapshot of t=42 becomes .1
	// and still decodes (rotation moves good files intact).
	fresh2 := sampleSim()
	fresh2.Time = 43
	saveSim(t, mgr, fresh2)
	f, err := os.Open(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	prev, err := DecodeSim(f)
	f.Close()
	if err != nil {
		t.Fatalf("rotated good generation no longer decodes: %v", err)
	}
	if prev.Time != 42 {
		t.Errorf("rotated generation t=%v, want 42", prev.Time)
	}
}
