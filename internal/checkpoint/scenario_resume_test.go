package checkpoint

import (
	"reflect"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/sim"
)

// scenarioHarness is a smaller sibling of the main resume harness: the full
// scenario x scheduler grid runs 24 baselines, so each one uses a 256-row
// bank and a quarter-window run.
type scenarioHarness struct {
	geom    device.BankGeometry
	profile *retention.BankProfile
	rm      core.RestoreModel
	opts    sim.Options
}

func newScenarioHarness(t *testing.T) *scenarioHarness {
	t.Helper()
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 256, Cols: 8}
	prof, err := retention.NewSampledProfile(geom, retention.DefaultCellDistribution(), 11)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, geom)
	if err != nil {
		t.Fatal(err)
	}
	return &scenarioHarness{
		geom:    geom,
		profile: prof,
		rm:      rm,
		opts:    sim.Options{Duration: 0.192, TCK: p.TCK},
	}
}

// run builds a fresh bank wired to a freshly built env of the scenario and
// simulates it; every invocation reconstructs the whole stack, which is the
// contract a resumed process must honor.
func (h *scenarioHarness) run(t *testing.T, scen, sched string, opts sim.Options) sim.Stats {
	t.Helper()
	env, err := scenario.BuildEnv(scenario.Ref{Name: scen}, h.opts.Duration, 23)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.SetModulator(env); err != nil {
		t.Fatal(err)
	}
	opts.Scenario = env
	// Reuse the main harness's scheduler table via a thin adapter.
	mh := &harness{geom: h.geom, profile: h.profile, rm: h.rm}
	st, err := sim.Run(bank, mh.sched(t, sched), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestScenarioResumeEquivalence extends the keystone resume property to the
// scenario layer: for every named scenario in the catalog and every
// scheduler stack, a run interrupted at a checkpoint and resumed from the
// serialized snapshot produces bit-identical Stats - the stressor schedule
// picks up mid-stream exactly where the killed run left it.
func TestScenarioResumeEquivalence(t *testing.T) {
	h := newScenarioHarness(t)
	for _, scen := range scenario.Names() {
		for _, sched := range schedulers {
			t.Run(scen+"/"+sched, func(t *testing.T) {
				var snaps []*sim.Checkpoint
				opts := h.opts
				opts.CheckpointEvery = opts.Duration / 8
				opts.CheckpointSink = func(cp *sim.Checkpoint) error {
					snaps = append(snaps, roundTrip(t, cp))
					return nil
				}
				baseline := h.run(t, scen, sched, opts)
				if len(snaps) < 4 {
					t.Fatalf("only %d snapshots taken", len(snaps))
				}
				for _, cp := range snaps {
					if cp.ScenarioState == nil {
						t.Fatal("checkpoint carries no scenario state")
					}
				}
				for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
					ropts := h.opts
					ropts.Resume = snaps[i]
					resumed := h.run(t, scen, sched, ropts)
					if !reflect.DeepEqual(resumed, baseline) {
						t.Errorf("resume from snapshot %d (t=%.3f):\n got %+v\nwant %+v",
							i, snaps[i].Time, resumed, baseline)
					}
				}
			})
		}
	}
}

// TestScenarioResumeRejectsMismatch pins the resume-time validation around
// the scenario blob: a snapshot taken under a scenario must not resume
// without one, under a different scenario, or (scenario-less) with one.
func TestScenarioResumeRejectsMismatch(t *testing.T) {
	h := newScenarioHarness(t)
	var snaps []*sim.Checkpoint
	opts := h.opts
	opts.CheckpointEvery = opts.Duration / 4
	opts.CheckpointSink = func(cp *sim.Checkpoint) error {
		snaps = append(snaps, roundTrip(t, cp))
		return nil
	}
	h.run(t, "kitchen-sink", "vrl", opts)
	cp := snaps[0]

	mh := &harness{geom: h.geom, profile: h.profile, rm: h.rm}
	bank := func(t *testing.T) *dram.Bank {
		b, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Scenario snapshot, no scenario in the resuming run.
	bare := h.opts
	bare.Resume = cp
	if _, err := sim.Run(bank(t), mh.sched(t, "vrl"), nil, bare); err == nil {
		t.Fatal("scenario snapshot must not resume without a scenario")
	}

	// Different scenario in the resuming run.
	other, err := scenario.BuildEnv(scenario.Ref{Name: "diurnal"}, h.opts.Duration, 23)
	if err != nil {
		t.Fatal(err)
	}
	wrong := h.opts
	wrong.Resume = cp
	wrong.Scenario = other
	b := bank(t)
	if err := b.SetModulator(other); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(b, mh.sched(t, "vrl"), nil, wrong); err == nil {
		t.Fatal("snapshot must not resume under a different scenario")
	}

	// Scenario-less snapshot, scenario in the resuming run.
	var plain []*sim.Checkpoint
	popts := h.opts
	popts.CheckpointEvery = popts.Duration / 4
	popts.CheckpointSink = func(cp *sim.Checkpoint) error {
		plain = append(plain, roundTrip(t, cp))
		return nil
	}
	if _, err := sim.Run(bank(t), mh.sched(t, "vrl"), nil, popts); err != nil {
		t.Fatal(err)
	}
	withScen := h.opts
	withScen.Resume = plain[0]
	withScen.Scenario = other
	b2 := bank(t)
	if err := b2.SetModulator(other); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(b2, mh.sched(t, "vrl"), nil, withScen); err == nil {
		t.Fatal("scenario-less snapshot must not resume under a scenario")
	}
}
