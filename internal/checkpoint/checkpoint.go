// Package checkpoint persists simulation and campaign state across process
// deaths: a versioned, CRC-32-checksummed container written atomically
// (temp file + rename) with N-generation retention, so a crash mid-write
// never destroys the last good snapshot, and a corrupted newest generation
// falls back to the one before it.
//
// Several payload kinds share the container: a sim.Checkpoint (the full
// resumable state of one RunContext invocation), a campaign progress record
// (the completed exp.Results of a vrlexp run), and the service session
// metadata of internal/serve (framed via EncodeBlob). The container is
//
//	magic   "VRLC"    [4]byte
//	version uint16    little-endian
//	kind    uint8     1 = sim checkpoint, 2 = campaign progress
//	length  uint64    payload bytes
//	payload []byte
//	crc     uint32    IEEE CRC-32 over version..payload
//
// so every field that matters is covered by the checksum and a flipped byte
// anywhere is detected before any of the payload is trusted.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/exp"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

var magic = [4]byte{'V', 'R', 'L', 'C'}

// Version is the container format version this package reads and writes.
const Version = 1

// Payload kinds. The container framing is shared by every durable artifact
// in the repository; new subsystems claim a kind here so a file of one kind
// can never be decoded as another (the kind byte is covered by the CRC).
const (
	KindSim      = 1 // a sim.Checkpoint (EncodeSim/DecodeSim)
	KindCampaign = 2 // completed exp.Results of a campaign (EncodeCampaign/DecodeCampaign)
	KindSession  = 3 // a service session's metadata record (internal/serve)
	KindManifest = 4 // a fleet campaign manifest (internal/fleet)
)

const headerLen = 4 + 2 + 1 + 8 // magic + version + kind + length

// maxPayload caps how much DecodeSim/DecodeCampaign will buffer; real
// snapshots are a few hundred KiB, so 1 GiB only guards against a corrupt
// or hostile length field.
const maxPayload = 1 << 30

// EncodeBlob frames and checksums an opaque payload as one container of the
// given kind. Callers that define their own payload codecs (e.g. the service
// session records in internal/serve) use this to inherit the container's
// atomicity-friendly framing, version check, and CRC coverage.
func EncodeBlob(w io.Writer, kind byte, payload []byte) error {
	return writeContainer(w, kind, payload)
}

// DecodeBlob reads and verifies a container of the given kind, returning its
// payload. It is the read side of EncodeBlob.
func DecodeBlob(r io.Reader, kind byte) ([]byte, error) {
	return readContainer(r, kind)
}

// writeContainer frames and checksums a payload.
func writeContainer(w io.Writer, kind byte, payload []byte) error {
	hdr := make([]byte, headerLen)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	hdr[6] = kind
	binary.LittleEndian.PutUint64(hdr[7:15], uint64(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	for _, b := range [][]byte{hdr, payload, tail[:]} {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// readContainer reads and verifies a container, returning its payload.
func readContainer(r io.Reader, wantKind byte) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, headerLen+maxPayload+4+1))
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("checkpoint: file truncated (%d bytes)", len(data))
	}
	if [4]byte{data[0], data[1], data[2], data[3]} != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (this build reads %d)", v, Version)
	}
	if k := data[6]; k != wantKind {
		return nil, fmt.Errorf("checkpoint: payload kind %d, want %d", k, wantKind)
	}
	plen := binary.LittleEndian.Uint64(data[7:15])
	if plen != uint64(len(data)-headerLen-4) {
		return nil, fmt.Errorf("checkpoint: payload length %d does not match file size", plen)
	}
	body := data[4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (file %08x, computed %08x): snapshot is corrupt", want, got)
	}
	return data[headerLen : len(data)-4], nil
}

// --- sim.Checkpoint codec ---------------------------------------------------

// EncodeSim writes a simulation checkpoint as one container.
func EncodeSim(w io.Writer, cp *sim.Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("checkpoint: nil checkpoint")
	}
	var e core.StateEncoder
	e.Tag("sim3")
	e.Float(cp.Time)
	e.Float(cp.Duration)
	e.Bytes([]byte(cp.Scheduler))

	s := cp.Stats
	e.Bytes([]byte(s.Scheduler))
	e.Float(s.Duration)
	e.Int(s.FullRefreshes)
	e.Int(s.PartialRefreshes)
	e.Int(s.BusyCycles)
	e.Int(s.Accesses)
	e.Float(s.ChargeRestored)
	e.Int(int64(s.Violations))
	e.Int(s.CorrectedErrors)
	e.Int(s.UncorrectableErrors)
	e.Int(s.RowsUpgraded)
	e.Int(s.FaultsInjected)
	e.Int(s.Guard.Alarms)
	e.Int(s.Guard.Demotions)
	e.Int(s.Guard.Promotions)
	e.Int(s.Guard.Escalations)
	e.Int(s.Guard.BreakerTrips)
	e.Float(s.Guard.TimeDegraded)
	e.Int(s.Scrub.RowsPatrolled)
	e.Int(s.Scrub.Corrected)
	e.Int(s.Scrub.Uncorrectable)
	e.Int(s.Scrub.Reprofiles)
	e.Int(s.Scrub.RowsHealed)
	e.Int(s.Scrub.RowsRemapped)
	e.Int(s.Scrub.HardFails)
	e.Int(s.Scrub.BusyRetries)
	e.Int(s.Scrub.SLOMisses)
	e.Int(int64(s.Scrub.SparesLeft))

	e.Int(int64(len(cp.Events)))
	for _, ev := range cp.Events {
		e.Float(ev.Time)
		e.Int(int64(ev.Row))
	}

	e.Floats(cp.Bank.Charge)
	e.Floats(cp.Bank.LastT)
	e.Int(int64(len(cp.Bank.Violations)))
	for _, v := range cp.Bank.Violations {
		e.Int(int64(v.Row))
		e.Float(v.Time)
		e.Float(v.Charge)
	}
	e.Ints(cp.Bank.Retired)

	e.Int(cp.TraceRead)
	e.Bool(cp.HavePending)
	e.Float(cp.Pending.Time)
	e.Uint64(uint64(cp.Pending.Op))
	e.Int(int64(cp.Pending.Row))
	e.Float(cp.LastTraceTime)
	e.Float(cp.BusyUntil)

	e.Bytes(cp.SchedState)
	e.Bytes(cp.ScrubState)
	e.Bytes(cp.ScenarioState)
	return writeContainer(w, KindSim, e.Data())
}

// DecodeSim reads and verifies a simulation checkpoint.
func DecodeSim(r io.Reader) (*sim.Checkpoint, error) {
	payload, err := readContainer(r, KindSim)
	if err != nil {
		return nil, err
	}
	d := core.NewStateDecoder(payload)
	d.ExpectTag("sim3")
	cp := &sim.Checkpoint{}
	cp.Time = d.Float()
	cp.Duration = d.Float()
	cp.Scheduler = string(d.Bytes())

	s := &cp.Stats
	s.Scheduler = string(d.Bytes())
	s.Duration = d.Float()
	s.FullRefreshes = d.Int()
	s.PartialRefreshes = d.Int()
	s.BusyCycles = d.Int()
	s.Accesses = d.Int()
	s.ChargeRestored = d.Float()
	s.Violations = int(d.Int())
	s.CorrectedErrors = d.Int()
	s.UncorrectableErrors = d.Int()
	s.RowsUpgraded = d.Int()
	s.FaultsInjected = d.Int()
	s.Guard.Alarms = d.Int()
	s.Guard.Demotions = d.Int()
	s.Guard.Promotions = d.Int()
	s.Guard.Escalations = d.Int()
	s.Guard.BreakerTrips = d.Int()
	s.Guard.TimeDegraded = d.Float()
	s.Scrub.RowsPatrolled = d.Int()
	s.Scrub.Corrected = d.Int()
	s.Scrub.Uncorrectable = d.Int()
	s.Scrub.Reprofiles = d.Int()
	s.Scrub.RowsHealed = d.Int()
	s.Scrub.RowsRemapped = d.Int()
	s.Scrub.HardFails = d.Int()
	s.Scrub.BusyRetries = d.Int()
	s.Scrub.SLOMisses = d.Int()
	s.Scrub.SparesLeft = int(d.Int())

	if n := sliceLen(d, payload, 16); n > 0 {
		cp.Events = make([]sim.PendingEvent, n)
		for i := range cp.Events {
			cp.Events[i] = sim.PendingEvent{Time: d.Float(), Row: int(d.Int())}
		}
	}

	cp.Bank.Charge = d.Floats()
	cp.Bank.LastT = d.Floats()
	if n := sliceLen(d, payload, 24); n > 0 {
		cp.Bank.Violations = make([]dram.Violation, n)
		for i := range cp.Bank.Violations {
			cp.Bank.Violations[i] = dram.Violation{Row: int(d.Int()), Time: d.Float(), Charge: d.Float()}
		}
	}
	if retired := d.Ints(); len(retired) > 0 {
		cp.Bank.Retired = retired
	}

	cp.TraceRead = d.Int()
	cp.HavePending = d.Bool()
	cp.Pending.Time = d.Float()
	cp.Pending.Op = trace.OpKind(d.Uint64())
	cp.Pending.Row = int(d.Int())
	cp.LastTraceTime = d.Float()
	cp.BusyUntil = d.Float()

	cp.SchedState = d.Bytes()
	cp.ScrubState = d.Bytes()
	cp.ScenarioState = d.Bytes()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if err := validateSim(cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// sliceLen reads a length prefix for records of elemSize encoded bytes,
// rejecting lengths the remaining payload cannot possibly hold (so a fuzzed
// or corrupt-but-CRC-colliding length cannot force a huge allocation).
func sliceLen(d *core.StateDecoder, payload []byte, elemSize int) int {
	n := d.Int()
	if d.Err() != nil {
		return 0
	}
	if n < 0 || n > int64(len(payload))/int64(elemSize) {
		d.Fail("checkpoint: slice length %d impossible in a %d-byte payload", n, len(payload))
		return 0
	}
	return int(n)
}

// validateSim applies the structural sanity checks decode-level framing
// cannot express; resume-time validation (row counts against the live bank
// and scheduler) happens in sim.RunContext.
func validateSim(cp *sim.Checkpoint) error {
	switch {
	case math.IsNaN(cp.Time) || cp.Time < 0:
		return fmt.Errorf("checkpoint: snapshot time %g invalid", cp.Time)
	case math.IsNaN(cp.Duration) || cp.Duration <= 0:
		return fmt.Errorf("checkpoint: snapshot duration %g invalid", cp.Duration)
	case len(cp.Bank.Charge) != len(cp.Bank.LastT):
		return fmt.Errorf("checkpoint: bank state has %d charges but %d restore times", len(cp.Bank.Charge), len(cp.Bank.LastT))
	case cp.TraceRead < 0:
		return fmt.Errorf("checkpoint: negative trace position %d", cp.TraceRead)
	}
	for _, ev := range cp.Events {
		if ev.Row < 0 || ev.Row >= len(cp.Bank.Charge) {
			return fmt.Errorf("checkpoint: event row %d outside bank of %d rows", ev.Row, len(cp.Bank.Charge))
		}
		if math.IsNaN(ev.Time) {
			return fmt.Errorf("checkpoint: event time NaN for row %d", ev.Row)
		}
	}
	for _, r := range cp.Bank.Retired {
		if r < 0 || r >= len(cp.Bank.Charge) {
			return fmt.Errorf("checkpoint: retired row %d outside bank of %d rows", r, len(cp.Bank.Charge))
		}
	}
	if math.IsNaN(cp.BusyUntil) || cp.BusyUntil < 0 {
		return fmt.Errorf("checkpoint: busy-until time %g invalid", cp.BusyUntil)
	}
	return nil
}

// --- campaign progress codec ------------------------------------------------

// EncodeCampaign writes the completed results of an experiment campaign.
func EncodeCampaign(w io.Writer, results []*exp.Result) error {
	var e core.StateEncoder
	e.Tag("camp1")
	e.Int(int64(len(results)))
	strs := func(v []string) {
		e.Int(int64(len(v)))
		for _, s := range v {
			e.Bytes([]byte(s))
		}
	}
	for _, res := range results {
		if res == nil {
			return fmt.Errorf("checkpoint: nil campaign result")
		}
		e.Bytes([]byte(res.ID))
		e.Bytes([]byte(res.Title))
		strs(res.Headers)
		e.Int(int64(len(res.Rows)))
		for _, row := range res.Rows {
			strs(row)
		}
		strs(res.Notes)
	}
	return writeContainer(w, KindCampaign, e.Data())
}

// DecodeCampaign reads and verifies a campaign progress record.
func DecodeCampaign(r io.Reader) ([]*exp.Result, error) {
	payload, err := readContainer(r, KindCampaign)
	if err != nil {
		return nil, err
	}
	d := core.NewStateDecoder(payload)
	d.ExpectTag("camp1")
	strs := func() []string {
		n := sliceLen(d, payload, 8)
		if d.Err() != nil || n == 0 {
			return nil
		}
		out := make([]string, n)
		for i := range out {
			out[i] = string(d.Bytes())
		}
		return out
	}
	n := sliceLen(d, payload, 8)
	var results []*exp.Result
	for i := 0; i < n && d.Err() == nil; i++ {
		res := &exp.Result{
			ID:      string(d.Bytes()),
			Title:   string(d.Bytes()),
			Headers: strs(),
		}
		rows := sliceLen(d, payload, 8)
		for j := 0; j < rows && d.Err() == nil; j++ {
			res.Rows = append(res.Rows, strs())
		}
		res.Notes = strs()
		results = append(results, res)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return results, nil
}
