package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrNoSnapshot is the start-fresh signal: every error Load returns wraps
// it, whether no generation exists at all or every generation on disk is
// corrupt. Callers that can rebuild their state from scratch test
// errors.Is(err, ErrNoSnapshot) and begin cold; the error text still carries
// the newest per-generation failure for diagnostics, but no caller has to
// parse it to decide what to do.
var ErrNoSnapshot = errors.New("checkpoint: no usable snapshot")

// DefaultGenerations is how many snapshot generations Manager retains in
// total when the caller does not say.
const DefaultGenerations = 3

// Manager owns one checkpoint file and its retained generations. Save is
// atomic (temp file + fsync + rename), and each Save first rotates the
// current file into a numbered generation (<path>.1 is the previous
// snapshot, up to <path>.<keep-1>), keeping at most keep files in total,
// so a crash mid-write leaves every prior snapshot intact.
// Load walks the generations newest-first and returns the first one that
// decodes cleanly, skipping corrupt or truncated files.
type Manager struct {
	path string
	keep int
}

// NewManager returns a manager for the given checkpoint path, retaining
// keep generations in total (DefaultGenerations if keep <= 0).
func NewManager(path string, keep int) (*Manager, error) {
	if path == "" {
		return nil, fmt.Errorf("checkpoint: empty path")
	}
	if keep <= 0 {
		keep = DefaultGenerations
	}
	return &Manager{path: path, keep: keep}, nil
}

// Path returns the primary checkpoint file path.
func (m *Manager) Path() string { return m.path }

func (m *Manager) generation(i int) string {
	if i == 0 {
		return m.path
	}
	return fmt.Sprintf("%s.%d", m.path, i)
}

// Save atomically writes a new snapshot via the encode callback (e.g.
// func(w io.Writer) error { return EncodeSim(w, cp) }), rotating existing
// generations first. On any error the previous snapshot files are
// untouched.
func (m *Manager) Save(encode func(io.Writer) error) error {
	tmp := m.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Rotate: drop the oldest generation, then <path>.<keep-2> ->
	// <path>.<keep-1>, ..., <path> -> <path>.1, keeping at most keep files.
	// A missing link in the chain is normal early in a run's life.
	if err := os.Remove(m.generation(m.keep - 1)); err != nil && !os.IsNotExist(err) {
		return err
	}
	for i := m.keep - 2; i >= 0; i-- {
		if err := os.Rename(m.generation(i), m.generation(i+1)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return os.Rename(tmp, m.path)
}

// Load opens the newest good generation and decodes it via the callback.
// A generation that fails to open or decode (bad CRC, truncation, wrong
// version) is skipped in favor of the one before it. It returns the path of
// the generation that loaded; if every generation is missing or corrupt the
// error wraps ErrNoSnapshot (the clean start-fresh signal), with the newest
// failure preserved in the message for diagnostics.
func (m *Manager) Load(decode func(io.Reader) error) (string, error) {
	var firstErr error
	tried := 0
	for i := 0; i < m.keep; i++ {
		name := m.generation(i)
		f, err := os.Open(name)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			tried++
			continue
		}
		err = decode(f)
		f.Close()
		if err == nil {
			return name, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", name, err)
		}
		tried++
	}
	if firstErr != nil {
		return "", fmt.Errorf("%w among %d candidate(s); newest failure: %v", ErrNoSnapshot, tried, firstErr)
	}
	return "", fmt.Errorf("%w at %s", ErrNoSnapshot, m.path)
}
