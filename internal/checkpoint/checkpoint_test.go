package checkpoint

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vrldram/internal/dram"
	"vrldram/internal/exp"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// sampleSim builds a small but fully-populated checkpoint so codec tests
// cover every field, including the optional ones.
func sampleSim() *sim.Checkpoint {
	return &sim.Checkpoint{
		Time:      0.125,
		Duration:  0.768,
		Scheduler: "VRL",
		Stats: sim.Stats{
			Scheduler:        "VRL",
			Duration:         0.125,
			FullRefreshes:    41,
			PartialRefreshes: 7,
			BusyCycles:       12345,
			Accesses:         99,
		},
		Events: []sim.PendingEvent{{Time: 0.126, Row: 0}, {Time: 0.127, Row: 2}},
		Bank: dram.State{
			Charge: []float64{1, 0.5, 0.25},
			LastT:  []float64{0.1, 0.12, 0.11},
			Violations: []dram.Violation{
				{Row: 1, Time: 0.09, Charge: 0.01},
			},
		},
		TraceRead:     99,
		HavePending:   true,
		Pending:       trace.Record{Time: 0.13, Op: trace.Write, Row: 1},
		LastTraceTime: 0.1299,
		SchedState:    []byte("opaque scheduler blob"),
	}
}

func encodeSim(t *testing.T, cp *sim.Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSim(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSimCodecRoundTrip(t *testing.T) {
	cp := sampleSim()
	got, err := DecodeSim(bytes.NewReader(encodeSim(t, cp)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
}

// TestDecodeRejectsEveryFlippedByte is the acceptance criterion in its
// strongest form: flipping ANY single byte of a snapshot makes DecodeSim
// fail - nothing in the container escapes the magic/header/CRC envelope.
func TestDecodeRejectsEveryFlippedByte(t *testing.T) {
	good := encodeSim(t, sampleSim())
	if _, err := DecodeSim(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := DecodeSim(bytes.NewReader(bad)); err == nil {
			t.Errorf("byte %d flipped: decode unexpectedly succeeded", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	good := encodeSim(t, sampleSim())
	for _, n := range []int{0, 3, headerLen - 1, headerLen, len(good) / 2, len(good) - 1} {
		if _, err := DecodeSim(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncated to %d bytes: decode unexpectedly succeeded", n)
		}
	}
}

func TestDecodeRejectsWrongVersionAndKind(t *testing.T) {
	good := encodeSim(t, sampleSim())

	bad := append([]byte(nil), good...)
	bad[4] = 0xFF // version low byte (little-endian)
	_, err := DecodeSim(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: err = %v, want a version error", err)
	}

	bad = append([]byte(nil), good...)
	bad[6] = KindCampaign // valid kind, wrong codec
	if _, err := DecodeSim(bytes.NewReader(bad)); err == nil {
		t.Error("campaign kind fed to DecodeSim unexpectedly succeeded")
	}

	bad = append([]byte(nil), good...)
	copy(bad, "NOPE")
	_, err = DecodeSim(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("wrong magic: err = %v, want a magic error", err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	good := encodeSim(t, sampleSim())
	if _, err := DecodeSim(bytes.NewReader(append(good, 0xAA))); err == nil {
		t.Error("trailing byte after container unexpectedly accepted")
	}
}

func TestCampaignCodecRoundTrip(t *testing.T) {
	results := []*exp.Result{
		{
			ID:      "fig4",
			Title:   "Refresh overhead",
			Headers: []string{"sched", "overhead"},
			Rows:    [][]string{{"vrl", "0.1"}, {"raidr", "0.2"}},
			Notes:   []string{"note one", "note, with comma"},
		},
		{ID: "tab3", Title: "Empty result"},
	}
	var buf bytes.Buffer
	if err := EncodeCampaign(&buf, results); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, results) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, results)
	}

	// The two kinds must not be confusable.
	buf.Reset()
	if err := EncodeCampaign(&buf, results); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSim(&buf); err == nil {
		t.Fatal("campaign container decoded as a sim checkpoint")
	}
}

// saveSim persists a checkpoint through a Manager the way the facade does.
func saveSim(t *testing.T, mgr *Manager, cp *sim.Checkpoint) {
	t.Helper()
	if err := mgr.Save(func(w io.Writer) error { return EncodeSim(w, cp) }); err != nil {
		t.Fatal(err)
	}
}

func loadSim(mgr *Manager) (*sim.Checkpoint, string, error) {
	var cp *sim.Checkpoint
	from, err := mgr.Load(func(r io.Reader) error {
		var derr error
		cp, derr = DecodeSim(r)
		return derr
	})
	return cp, from, err
}

func TestManagerRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(filepath.Join(dir, "run.ckpt"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		cp := sampleSim()
		cp.Time = float64(i)
		saveSim(t, mgr, cp)
	}
	// After 4 saves with keep=3: newest at run.ckpt, then .1, .2; the first
	// save has been rotated off the end.
	wantTimes := map[string]float64{"run.ckpt": 4, "run.ckpt.1": 3, "run.ckpt.2": 2}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(wantTimes) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir holds %v, want exactly %d generations", names, len(wantTimes))
	}
	for name, want := range wantTimes {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		cp, err := DecodeSim(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cp.Time != want {
			t.Errorf("%s holds t=%v, want %v", name, cp.Time, want)
		}
	}
}

// TestManagerFallsBackPastCorruption is the ISSUE's acceptance criterion:
// a snapshot with a flipped byte is rejected by checksum and the loader
// falls back to the previous good generation.
func TestManagerFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	mgr, err := NewManager(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		cp := sampleSim()
		cp.Time = float64(i)
		saveSim(t, mgr, cp)
	}

	// Flip one byte in the middle of the newest snapshot.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cp, from, err := loadSim(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if from != path+".1" {
		t.Errorf("loaded from %s, want fallback to %s", from, path+".1")
	}
	if cp.Time != 2 {
		t.Errorf("fallback snapshot t=%v, want 2 (previous good generation)", cp.Time)
	}

	// Corrupt the fallback too: the loader keeps walking to .2.
	data, err = os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path+".1", data, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, from, err = loadSim(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if from != path+".2" || cp.Time != 1 {
		t.Errorf("second fallback loaded t=%v from %s, want t=1 from %s", cp.Time, from, path+".2")
	}
}

func TestManagerLoadReportsAllFailures(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(filepath.Join(dir, "none.ckpt"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSim(mgr); err == nil {
		t.Fatal("load with no generations on disk unexpectedly succeeded")
	}
}

func TestManagerFailedSaveLeavesGenerationsIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	mgr, err := NewManager(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := sampleSim()
	good.Time = 7
	saveSim(t, mgr, good)

	if err := mgr.Save(func(w io.Writer) error { return io.ErrClosedPipe }); err == nil {
		t.Fatal("failing encoder did not fail Save")
	}
	cp, from, err := loadSim(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if from != path && from != path+".1" {
		t.Errorf("loaded from %s", from)
	}
	if cp.Time != 7 {
		t.Errorf("surviving snapshot t=%v, want 7", cp.Time)
	}
}
