package guard

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/fault"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

type fixture struct {
	params  device.Params
	profile *retention.BankProfile
	rm      core.RestoreModel
	opts    sim.Options
}

func setup(t *testing.T) *fixture {
	t.Helper()
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		params:  p,
		profile: prof,
		rm:      rm,
		opts:    sim.Options{Duration: 0.768, TCK: p.TCK},
	}
}

func (f *fixture) vrl(t *testing.T, prof *retention.BankProfile) core.Scheduler {
	t.Helper()
	s, err := core.NewVRL(prof, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (f *fixture) guarded(t *testing.T, inner core.Scheduler) *Guard {
	t.Helper()
	g, err := New(inner, f.profile.Geom.Rows, Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func (f *fixture) bank(t *testing.T, prof *retention.BankProfile, vrt *retention.VRT) *dram.Bank {
	t.Helper()
	b, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	if vrt != nil {
		if err := b.SetVRT(vrt); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestGuardContainsInjectedFaults is the headline acceptance test: with any
// single injector active at its default rate, unguarded VRL loses data
// (Violations > 0) while the same faults under the guard end the run with
// Violations == 0. Everything is seeded, so the failures are reproducible.
func TestGuardContainsInjectedFaults(t *testing.T) {
	f := setup(t)
	cases := []struct {
		name string
		// run returns the stats of one simulation, guarded or not.
		run func(t *testing.T, guarded bool) sim.Stats
	}{
		{
			name: "misbinned-profile",
			run: func(t *testing.T, guarded bool) sim.Stats {
				prof, n, err := fault.MisBinProfile(f.profile, 0.05, retention.RAIDRBins, 11)
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					t.Fatal("injector selected no rows")
				}
				var sched core.Scheduler = f.vrl(t, prof)
				if guarded {
					sched = f.guarded(t, sched)
				}
				st, err := sim.Run(f.bank(t, prof, nil), sched, nil, f.opts)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
		},
		{
			name: "transient-weak-cells",
			run: func(t *testing.T, guarded bool) sim.Stats {
				vrt := fault.DefaultTransientWeakCells(5)
				var sched core.Scheduler = f.vrl(t, f.profile)
				if guarded {
					sched = f.guarded(t, sched)
				}
				st, err := sim.Run(f.bank(t, f.profile, vrt), sched, nil, f.opts)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
		},
		{
			name: "refresh-faults",
			run: func(t *testing.T, guarded bool) sim.Stats {
				var sched core.Scheduler = f.vrl(t, f.profile)
				if guarded {
					sched = f.guarded(t, sched)
				}
				// The injector wraps the guard so its faults hit the guard's
				// probation refreshes too, as a failing charge pump would.
				inj, err := fault.InjectRefreshFaults(sched, fault.DefaultRefreshFaults(9))
				if err != nil {
					t.Fatal(err)
				}
				st, err := sim.Run(f.bank(t, f.profile, nil), inj, nil, f.opts)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			unguarded := tc.run(t, false)
			if unguarded.Violations == 0 {
				t.Fatalf("unguarded VRL survived the %s injector; the fault rate is too benign to demonstrate anything", tc.name)
			}
			guarded := tc.run(t, true)
			if guarded.Violations != 0 {
				t.Fatalf("guarded VRL lost data under %s: %d violations (unguarded: %d)",
					tc.name, guarded.Violations, unguarded.Violations)
			}
			if guarded.Guard.Alarms == 0 {
				t.Fatalf("guard reported no alarms under %s; it was not exercised", tc.name)
			}
		})
	}
}

// TestGuardPromotesHealthyRows: with no faults at all, the guard must not
// stay pinned at the floor forever - rows earn their way back toward the
// nominal schedule, and the run stays violation-free.
func TestGuardPromotesHealthyRows(t *testing.T) {
	f := setup(t)
	g := f.guarded(t, f.vrl(t, f.profile))
	st, err := sim.Run(f.bank(t, f.profile, nil), g, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("clean guarded run violated integrity: %d", st.Violations)
	}
	if st.Guard.Promotions == 0 {
		t.Fatal("no promotions in a clean run: probation never ends")
	}
	// The probation tax is real but bounded: more busy cycles than raw VRL,
	// fewer than a JEDEC bank refreshed fully at the floor period would pay.
	vrlStats, err := sim.Run(f.bank(t, f.profile, nil), f.vrl(t, f.profile), nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.BusyCycles <= vrlStats.BusyCycles {
		t.Fatalf("guarded busy cycles %d should exceed raw VRL's %d (probation is not free)",
			st.BusyCycles, vrlStats.BusyCycles)
	}
	floorRefreshes := int64(f.opts.Duration/0.032) * int64(f.profile.Geom.Rows)
	if st.BusyCycles >= floorRefreshes*int64(f.rm.FullCycles) {
		t.Fatalf("guarded busy cycles %d never left the floor", st.BusyCycles)
	}
}

// TestBreakerHysteresis drives OnSense directly: the breaker trips at the
// configured sub-limit count, holds through clean senses for the hold time,
// and recovers only after hold + a clean window - then can trip again.
func TestBreakerHysteresis(t *testing.T) {
	f := setup(t)
	inner, err := core.NewJEDEC(0.064, f.rm)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(inner, 8, Config{
		Restore:       f.rm,
		BreakerTrip:   3,
		BreakerWindow: 0.010,
		BreakerHold:   0.050,
	})
	if err != nil {
		t.Fatal(err)
	}

	bad, clean := 0.40, 0.95
	g.OnSense(0, 0.001, bad)
	g.OnSense(1, 0.002, bad)
	if g.Tripped() {
		t.Fatal("tripped below the threshold")
	}
	g.OnSense(2, 0.003, bad)
	if !g.Tripped() {
		t.Fatal("did not trip at the threshold")
	}
	if got := g.Period(5); got != 0.032 {
		t.Fatalf("tripped period = %g, want the 0.032 floor", got)
	}

	// Clean senses before the hold expires: must stay tripped (hysteresis).
	g.OnSense(3, 0.020, clean)
	g.OnSense(3, 0.040, clean)
	if !g.Tripped() {
		t.Fatal("recovered before the hold expired")
	}

	// Past the hold with a clean window: recovers.
	g.OnSense(3, 0.055, clean)
	if g.Tripped() {
		t.Fatal("did not recover after hold + clean window")
	}
	st := g.GuardSnapshot(0.055)
	if st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	if st.TimeDegraded < 0.050 || st.TimeDegraded > 0.055 {
		t.Fatalf("time degraded = %g, want ~[0.050, 0.055]", st.TimeDegraded)
	}

	// A second excursion trips again.
	g.OnSense(0, 0.060, bad)
	g.OnSense(1, 0.061, bad)
	g.OnSense(2, 0.062, bad)
	if !g.Tripped() {
		t.Fatal("second excursion did not trip")
	}
	if got := g.GuardSnapshot(0.100).BreakerTrips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// A still-open degraded interval is closed by the snapshot.
	if got := g.GuardSnapshot(0.100).TimeDegraded; got <= st.TimeDegraded {
		t.Fatalf("open degraded interval not accounted: %g", got)
	}
}

// TestGuardDelegatesAtNominal: once a row reaches its nominal rung the
// wrapped scheduler's schedule (period, MPRSF, op mix) is used verbatim.
func TestGuardDelegatesAtNominal(t *testing.T) {
	f := setup(t)
	vrl := f.vrl(t, f.profile)
	g := f.guarded(t, vrl)
	// Find a strong row and walk it up the ladder with clean senses.
	row := 0
	for r := 0; r < f.profile.Geom.Rows; r++ {
		if vrl.Period(r) == 0.256 && vrl.MPRSF(r) > 0 {
			row = r
			break
		}
	}
	if g.Period(row) != 0.032 {
		t.Fatalf("probation period = %g, want 0.032", g.Period(row))
	}
	if g.MPRSF(row) != 0 {
		t.Fatal("partial refreshes must be disabled during probation")
	}
	now := 0.0
	for i := 0; i < 64 && g.Period(row) < vrl.Period(row); i++ {
		now += g.Period(row)
		g.OnSense(row, now, 0.97)
	}
	if g.Period(row) != vrl.Period(row) {
		t.Fatalf("row never promoted to nominal: period %g want %g", g.Period(row), vrl.Period(row))
	}
	if g.MPRSF(row) != vrl.MPRSF(row) {
		t.Fatalf("MPRSF not delegated at nominal: %d want %d", g.MPRSF(row), vrl.MPRSF(row))
	}
	// Demote steps exactly one rung down.
	g.Demote(row)
	if g.Period(row) != 0.192 {
		t.Fatalf("after Demote period = %g, want 0.192", g.Period(row))
	}
	if op := g.RefreshOp(row, now); !op.Full {
		t.Fatal("off-nominal refresh must be full-latency")
	}
	// Upgrade (the AVATAR hook) escalates: floor period, full ops, no
	// promotion ever again.
	g.Upgrade(row)
	if p, esc := g.RowRung(row); p != 0.032 || !esc {
		t.Fatalf("after Upgrade: period %g escalated %v, want 0.032 true", p, esc)
	}
	for i := 0; i < 8; i++ {
		now += 0.032
		g.OnSense(row, now, 0.99)
	}
	if p, _ := g.RowRung(row); p != 0.032 {
		t.Fatalf("escalated row was promoted to %g", p)
	}
}
