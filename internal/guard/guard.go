// Package guard implements a graceful-degradation safety controller for
// retention-aware refresh: a core.Scheduler wrapper that no longer trusts
// the retention profile unconditionally.
//
// The controller runs a per-row degradation ladder over the refresh-period
// bins, extended downward by a floor period (the DDR "2x refresh" derated
// mode). Every row starts on PROBATION at the floor with full-latency
// refreshes and must earn its way up to the nominal bin the wrapped
// scheduler assigned: promotion one rung at a time, only after a streak of
// clean senses whose observed charge PREDICTS a safe margin at the next
// rung (for the exponential leakage law the prediction charge^(p2/p1) is
// exact; for other laws it is the conservative estimate). Rows whose sensed
// margin erodes below the warn threshold are demoted a rung on the spot -
// the generalization of the one-shot AVATAR Upgrade - and rows that alarm
// repeatedly are escalated: pinned to full-latency refreshes with promotion
// disabled. A global circuit breaker watches the sub-limit sensing rate and
// drops the whole bank to the floor period when it trips, with a minimum
// hold time plus a clean-window requirement (hysteresis) before recovery,
// so a transient excursion does not pin the system in the slow mode
// forever.
//
// The guard is itself a core.Scheduler, so it composes with the simulator,
// the command-level controller, and the fault injectors of internal/fault.
package guard

import (
	"fmt"
	"math"

	"vrldram/internal/core"
	"vrldram/internal/retention"
)

// Config tunes the controller. The zero value of every field selects the
// documented default.
type Config struct {
	// Restore supplies the full-refresh operation the guard issues while a
	// row is off its nominal schedule. Required.
	Restore core.RestoreModel

	// Floor is the most aggressive period on the ladder (default 32 ms, the
	// derated double-rate refresh mode). Probation and breaker operation run
	// here.
	Floor float64
	// Ladder lists the allowed periods; defaults to Floor plus the RAIDR
	// bins. It is sorted and deduplicated.
	Ladder []float64

	// Warn is the sensed-charge threshold below which a row is demoted one
	// rung (default 0.65; senses below retention.SenseLimit always demote
	// and feed the breaker).
	Warn float64
	// PromoteMargin is the minimum PREDICTED charge at the next rung's
	// period required to promote (default 0.62: a row sensing charge c with a
	// near-full restore survives one half-strength restore when
	// c*(1+c)/2 >= 0.5, i.e. c >= 0.618, so promoted rows tolerate a single
	// truncated refresh without crossing the sensing limit).
	PromoteMargin float64
	// PromoteAfter is the clean-sense streak required before a promotion is
	// attempted (default 2).
	PromoteAfter int
	// EscalateAfter pins a row to full-latency refreshes (promotion
	// disabled) after this many alarms (default 3).
	EscalateAfter int

	// BreakerWindow is the sliding window (s) over which sub-limit senses
	// are counted (default 64 ms).
	BreakerWindow float64
	// BreakerTrip is the sub-limit sense count within the window that trips
	// the breaker (default 8).
	BreakerTrip int
	// BreakerHold is the minimum time (s) the breaker stays tripped; after
	// the hold, recovery additionally requires a clean window (default
	// 128 ms).
	BreakerHold float64
}

func (c Config) withDefaults() Config {
	if c.Floor == 0 {
		c.Floor = 0.032
	}
	if c.Ladder == nil {
		c.Ladder = append([]float64{c.Floor}, retention.RAIDRBins...)
	}
	if c.Warn == 0 {
		c.Warn = 0.65
	}
	if c.PromoteMargin == 0 {
		c.PromoteMargin = 0.62
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 2
	}
	if c.EscalateAfter == 0 {
		c.EscalateAfter = 3
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 0.064
	}
	if c.BreakerTrip == 0 {
		c.BreakerTrip = 8
	}
	if c.BreakerHold == 0 {
		c.BreakerHold = 0.128
	}
	return c
}

// Validate reports the first unusable field after defaulting.
func (c Config) Validate() error {
	if err := c.Restore.Validate(); err != nil {
		return err
	}
	switch {
	case c.Floor <= 0:
		return fmt.Errorf("guard: floor period %g must be positive", c.Floor)
	case len(c.Ladder) == 0:
		return fmt.Errorf("guard: empty ladder")
	case !(retention.SenseLimit < c.Warn && c.Warn < 1):
		return fmt.Errorf("guard: warn threshold %g outside (%g,1)", c.Warn, retention.SenseLimit)
	case c.PromoteMargin <= retention.SenseLimit || c.PromoteMargin >= 1:
		return fmt.Errorf("guard: promote margin %g outside (%g,1)", c.PromoteMargin, retention.SenseLimit)
	case c.PromoteAfter < 1:
		return fmt.Errorf("guard: PromoteAfter %d must be >= 1", c.PromoteAfter)
	case c.EscalateAfter < 1:
		return fmt.Errorf("guard: EscalateAfter %d must be >= 1", c.EscalateAfter)
	case c.BreakerWindow <= 0 || c.BreakerHold <= 0:
		return fmt.Errorf("guard: breaker window/hold must be positive")
	case c.BreakerTrip < 1:
		return fmt.Errorf("guard: BreakerTrip %d must be >= 1", c.BreakerTrip)
	}
	for _, p := range c.Ladder {
		if p <= 0 {
			return fmt.Errorf("guard: ladder period %g must be positive", p)
		}
	}
	return nil
}

// rowState is the per-row controller state.
type rowState struct {
	rung        int // index into ladder; capped by nominal
	nominal     int // ladder rung of the wrapped scheduler's period
	cleanStreak int
	alarms      int
	escalated   bool
}

// Guard wraps a scheduler with the degradation controller.
type Guard struct {
	inner  core.Scheduler
	cfg    Config
	ladder []float64
	rows   []rowState

	tripped   bool
	tripAt    float64
	subLimits []float64 // times of recent sub-limit senses (breaker window)

	stats core.GuardStats
}

// New wraps inner for a bank of the given row count.
func New(inner core.Scheduler, rows int, cfg Config) (*Guard, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("guard: row count %d must be positive", rows)
	}
	ladder := retention.SortedBins(cfg.Ladder)
	// Deduplicate (SortedBins copies and sorts).
	uniq := ladder[:0]
	for i, p := range ladder {
		if i == 0 || p != ladder[i-1] {
			uniq = append(uniq, p)
		}
	}
	ladder = uniq
	g := &Guard{inner: inner, cfg: cfg, ladder: ladder, rows: make([]rowState, rows)}
	for r := range g.rows {
		p := inner.Period(r)
		nominal := 0
		for i, lp := range ladder {
			if lp <= p*(1+1e-12) {
				nominal = i
			}
		}
		g.rows[r].nominal = nominal
		g.rows[r].rung = 0 // probation: start at the floor
	}
	return g, nil
}

// Name implements core.Scheduler.
func (g *Guard) Name() string { return g.inner.Name() + "+guard" }

// atNominal reports whether the row currently runs the wrapped scheduler's
// own schedule.
func (g *Guard) atNominal(row int) bool {
	s := &g.rows[row]
	return !g.tripped && !s.escalated && s.rung >= s.nominal
}

// Period implements core.Scheduler: the floor while the breaker is tripped,
// the row's ladder rung while degraded, the wrapped scheduler's period at
// nominal.
func (g *Guard) Period(row int) float64 {
	if g.tripped {
		return g.ladder[0]
	}
	s := &g.rows[row]
	if s.rung >= s.nominal && !s.escalated {
		return g.inner.Period(row)
	}
	return g.ladder[s.rung]
}

// MPRSF implements core.Scheduler: partial refreshes are a privilege of the
// nominal schedule.
func (g *Guard) MPRSF(row int) int {
	if g.atNominal(row) {
		return g.inner.MPRSF(row)
	}
	return 0
}

// OnAccess implements core.Scheduler.
func (g *Guard) OnAccess(row int, now float64) { g.inner.OnAccess(row, now) }

// StablePeriodUntil implements core.SteadyScheduler with the conservative
// bound: the controller re-evaluates its ladder on every sense (OnSense can
// demote, escalate, or trip the breaker on the very next event), so a
// guarded schedule is never stable past now. The fast-forward backend reads
// this as "do not fast-forward" - exactly right, since skipping senses would
// skip the controller's inputs.
func (g *Guard) StablePeriodUntil(_ int, now float64) float64 { return now }

// RefreshOp implements core.Scheduler: full-latency refreshes off-nominal,
// the wrapped scheduler's operation (including its partial-refresh
// counters, which only advance at nominal) otherwise.
func (g *Guard) RefreshOp(row int, now float64) core.Op {
	if g.atNominal(row) {
		return g.inner.RefreshOp(row, now)
	}
	rm := g.cfg.Restore
	return core.Op{Full: true, Cycles: rm.FullCycles, Alpha: rm.AlphaFull}
}

// demote steps the row one rung down and books the alarm; escalation pins
// the row (no further promotion, full-latency ops) once it has alarmed
// EscalateAfter times.
func (g *Guard) demote(row int) {
	s := &g.rows[row]
	s.cleanStreak = 0
	s.alarms++
	g.stats.Alarms++
	if s.rung > 0 {
		s.rung--
		g.stats.Demotions++
	}
	if !s.escalated && s.alarms >= g.cfg.EscalateAfter {
		s.escalated = true
		g.stats.Escalations++
	}
}

// Demote implements core.Demoter: the externally driven (e.g. ECC-corrected
// error) one-rung demotion.
func (g *Guard) Demote(row int) {
	if row < 0 || row >= len(g.rows) {
		return
	}
	g.demote(row)
}

// Promote implements core.Promoter: an external repair authority (the
// patrol scrubber after K consecutive clean reads) vouches for the row, so
// it steps one rung back toward its nominal schedule. An escalated row has
// its escalation lifted first - the scrubber's verify phase is exactly the
// evidence escalation was waiting for - and its alarm history is cleared so
// a later isolated alarm does not instantly re-escalate it.
func (g *Guard) Promote(row int) {
	if row < 0 || row >= len(g.rows) {
		return
	}
	s := &g.rows[row]
	if s.escalated {
		s.escalated = false
		s.alarms = 0
		s.cleanStreak = 0
		return
	}
	if s.rung < s.nominal {
		s.rung++
		s.cleanStreak = 0
		g.stats.Promotions++
	}
}

// Upgrade implements core.Upgrader for compatibility with the AVATAR hook:
// it escalates the row immediately (full-latency at the floor).
func (g *Guard) Upgrade(row int) {
	if row < 0 || row >= len(g.rows) {
		return
	}
	s := &g.rows[row]
	s.rung = 0
	s.cleanStreak = 0
	if !s.escalated {
		s.escalated = true
		g.stats.Escalations++
	}
}

// OnSense implements core.SenseMonitor: the controller's main input. The
// simulator reports every refresh operation's pre-restore charge here.
func (g *Guard) OnSense(row int, now, charge float64) {
	if row < 0 || row >= len(g.rows) {
		return
	}
	// Slide the breaker window.
	cut := now - g.cfg.BreakerWindow
	for len(g.subLimits) > 0 && g.subLimits[0] < cut {
		g.subLimits = g.subLimits[1:]
	}

	switch {
	case charge < retention.SenseLimit:
		// Data already at risk: maximal per-row response plus breaker input.
		g.subLimits = append(g.subLimits, now)
		s := &g.rows[row]
		g.demote(row)
		s.rung = 0
		if !g.tripped && len(g.subLimits) >= g.cfg.BreakerTrip {
			g.tripped = true
			g.tripAt = now
			g.stats.BreakerTrips++
		}
	case charge < g.cfg.Warn:
		g.demote(row)
	default:
		s := &g.rows[row]
		s.cleanStreak++
		if !g.tripped && !s.escalated && s.rung < s.nominal && s.cleanStreak >= g.cfg.PromoteAfter {
			if g.predict(row, charge) >= g.cfg.PromoteMargin {
				s.rung++
				s.cleanStreak = 0
				g.stats.Promotions++
			}
		}
	}

	// Hysteresis: recover only after the hold AND a clean window.
	if g.tripped && now >= g.tripAt+g.cfg.BreakerHold && len(g.subLimits) == 0 {
		g.tripped = false
		g.stats.TimeDegraded += now - g.tripAt
	}
}

// predict estimates the sensed charge at the row's next rung from the
// charge just observed at the current one: both senses follow a (near-)full
// restore, so under the exponential law charge = 2^(-p/teff) and the next
// rung sees charge^(p2/p1) exactly. Slower-than-exponential laws decay
// faster late in the period, making the estimate conservative there.
func (g *Guard) predict(row int, charge float64) float64 {
	s := &g.rows[row]
	p1 := g.Period(row)
	var p2 float64
	if s.rung+1 >= s.nominal {
		p2 = g.inner.Period(row)
	} else {
		p2 = g.ladder[s.rung+1]
	}
	if p1 <= 0 || p2 <= p1 {
		return charge
	}
	return math.Pow(charge, p2/p1)
}

// Tripped reports whether the circuit breaker currently holds the bank at
// the floor period.
func (g *Guard) Tripped() bool { return g.tripped }

// RowRung returns the row's current ladder period and whether the row has
// been escalated (diagnostics).
func (g *Guard) RowRung(row int) (period float64, escalated bool) {
	if row < 0 || row >= len(g.rows) {
		return 0, false
	}
	return g.Period(row), g.rows[row].escalated
}

// GuardSnapshot implements core.GuardReporter: the counters so far, with a
// still-open degraded interval closed at now.
func (g *Guard) GuardSnapshot(now float64) core.GuardStats {
	st := g.stats
	if g.tripped && now > g.tripAt {
		st.TimeDegraded += now - g.tripAt
	}
	return st
}

// SnapshotState implements core.Snapshotter: the per-row ladder state, the
// breaker, the counters, and - nested - the wrapped scheduler's own state,
// so snapshotting the guard snapshots the whole stack beneath it. The
// wrapped scheduler must itself be a core.Snapshotter.
func (g *Guard) SnapshotState() ([]byte, error) {
	inner, ok := g.inner.(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("guard: wrapped scheduler %s does not implement core.Snapshotter", g.inner.Name())
	}
	innerBlob, err := inner.SnapshotState()
	if err != nil {
		return nil, err
	}
	var e core.StateEncoder
	e.Tag("guard1")
	e.Int(int64(len(g.rows)))
	for i := range g.rows {
		s := &g.rows[i]
		e.Int(int64(s.rung))
		e.Int(int64(s.nominal))
		e.Int(int64(s.cleanStreak))
		e.Int(int64(s.alarms))
		e.Bool(s.escalated)
	}
	e.Bool(g.tripped)
	e.Float(g.tripAt)
	e.Floats(g.subLimits)
	e.Int(g.stats.Alarms)
	e.Int(g.stats.Demotions)
	e.Int(g.stats.Promotions)
	e.Int(g.stats.Escalations)
	e.Int(g.stats.BreakerTrips)
	e.Float(g.stats.TimeDegraded)
	e.Bytes(innerBlob)
	return e.Data(), nil
}

// RestoreState implements core.Snapshotter.
func (g *Guard) RestoreState(data []byte) error {
	inner, ok := g.inner.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("guard: wrapped scheduler %s does not implement core.Snapshotter", g.inner.Name())
	}
	d := core.NewStateDecoder(data)
	d.ExpectTag("guard1")
	nrows := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if int(nrows) != len(g.rows) {
		return fmt.Errorf("guard: snapshot has %d rows, guard has %d", nrows, len(g.rows))
	}
	rows := make([]rowState, nrows)
	for i := range rows {
		rows[i] = rowState{
			rung:        int(d.Int()),
			nominal:     int(d.Int()),
			cleanStreak: int(d.Int()),
			alarms:      int(d.Int()),
			escalated:   d.Bool(),
		}
	}
	tripped := d.Bool()
	tripAt := d.Float()
	subLimits := d.Floats()
	var stats core.GuardStats
	stats.Alarms = d.Int()
	stats.Demotions = d.Int()
	stats.Promotions = d.Int()
	stats.Escalations = d.Int()
	stats.BreakerTrips = d.Int()
	stats.TimeDegraded = d.Float()
	innerBlob := d.Bytes()
	if err := d.Finish(); err != nil {
		return err
	}
	for i := range rows {
		if rows[i].rung < 0 || rows[i].rung >= len(g.ladder) {
			return fmt.Errorf("guard: snapshot rung %d for row %d outside ladder [0,%d)", rows[i].rung, i, len(g.ladder))
		}
	}
	if err := inner.RestoreState(innerBlob); err != nil {
		return err
	}
	copy(g.rows, rows)
	g.tripped = tripped
	g.tripAt = tripAt
	g.subLimits = subLimits
	g.stats = stats
	return nil
}

// FaultsInjected forwards a wrapped injector's count so the guard can sit
// above one in the scheduler stack.
func (g *Guard) FaultsInjected() int64 {
	if fc, ok := g.inner.(core.FaultCounter); ok {
		return fc.FaultsInjected()
	}
	return 0
}
