package guard

import "testing"

// TestPromote covers the scrubber-facing heal hook: a demoted row steps one
// rung back toward nominal, an escalated row has its escalation (and alarm
// history) lifted before any rung movement, and a row already at nominal is
// untouched.
func TestPromote(t *testing.T) {
	f := setup(t)
	g := f.guarded(t, f.vrl(t, f.profile))
	const row = 5

	// Walk the row up to nominal first (rows start on probation).
	for !g.atNominal(row) {
		g.Promote(row)
	}
	nominalPeriod := g.Period(row)
	promosAtNominal := g.GuardSnapshot(0).Promotions

	g.Promote(row) // at nominal: must be a no-op
	if g.Period(row) != nominalPeriod {
		t.Fatalf("promote at nominal changed the period: %g -> %g", nominalPeriod, g.Period(row))
	}
	if got := g.GuardSnapshot(0).Promotions; got != promosAtNominal {
		t.Fatalf("promote at nominal booked a promotion (%d -> %d)", promosAtNominal, got)
	}

	// Demote twice, promote back rung by rung.
	g.Demote(row)
	g.Demote(row)
	degraded := g.Period(row)
	if degraded >= nominalPeriod {
		t.Fatalf("demotions did not shorten the period: %g vs nominal %g", degraded, nominalPeriod)
	}
	g.Promote(row)
	mid := g.Period(row)
	if mid <= degraded {
		t.Fatalf("promotion did not lengthen the period: %g -> %g", degraded, mid)
	}
	g.Promote(row)
	if g.Period(row) != nominalPeriod {
		t.Fatalf("two promotions did not return to nominal: %g vs %g", g.Period(row), nominalPeriod)
	}

	// Escalation is lifted by the first Promote, rung intact, alarms cleared.
	g.Upgrade(row) // escalate
	if _, esc := g.RowRung(row); !esc {
		t.Fatal("Upgrade did not escalate")
	}
	g.Promote(row)
	if _, esc := g.RowRung(row); esc {
		t.Fatal("Promote did not lift escalation")
	}
	if g.rows[row].alarms != 0 {
		t.Fatalf("alarm history survived the heal: %d", g.rows[row].alarms)
	}

	// Out-of-range rows are ignored.
	g.Promote(-1)
	g.Promote(len(g.rows))
}
