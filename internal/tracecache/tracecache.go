// Package tracecache memoizes synthetic trace generation. The experiment
// grids in internal/exp run the same (benchmark, rows, duration, seed)
// workload against several schedulers - the Figure 4 grid alone used to
// regenerate each benchmark's trace once per scheduler - and trace synthesis
// (tens of thousands of records, globally sorted) is one of the most
// expensive setup steps a cell pays. The cache generates each distinct trace
// once and hands every caller a shared, read-only view, safe under the
// parallel sweep engine's concurrent cells.
//
// As with internal/profcache, the package-level functions use one
// process-wide default cache (right for a one-shot CLI run); long-lived
// processes serving many independent clients own Cache instances so trace
// memory stays scoped to the service that generated it and can be bounded
// with Flush.
package tracecache

import (
	"vrldram/internal/memo"
	"vrldram/internal/trace"
)

// key is the full identity of a generated trace. The whole BenchmarkSpec
// participates (not just its name) so ad-hoc specs - e.g. the coverage
// sweep's synthetic workloads - can never collide with each other or with a
// PARSEC spec that happens to share a name.
type key struct {
	spec     trace.BenchmarkSpec
	rows     int
	duration float64
	seed     int64
}

// Cache is one memoization scope for generated traces. The zero value is
// ready to use; all methods are safe for concurrent use.
type Cache struct {
	m memo.Map[key, []trace.Record]
}

// defaultCache backs the package-level functions.
var defaultCache Cache

// Records returns the records of spec.Generate(rows, duration, seed),
// generating them on first use and returning the same shared slice
// afterwards. The slice is READ-ONLY: callers must not modify, sort, or
// append to it (append aliases the backing array). Wrap it in a
// trace.NewSliceSource - the source keeps its own cursor - or copy it before
// mutating.
func (c *Cache) Records(spec trace.BenchmarkSpec, rows int, duration float64, seed int64) ([]trace.Record, error) {
	return c.m.Get(key{spec: spec, rows: rows, duration: duration, seed: seed}, func() ([]trace.Record, error) {
		return spec.Generate(rows, duration, seed)
	})
}

// Source returns a fresh single-use trace.Source over the memoized records.
func (c *Cache) Source(spec trace.BenchmarkSpec, rows int, duration float64, seed int64) (trace.Source, error) {
	recs, err := c.Records(spec, rows, duration, seed)
	if err != nil {
		return nil, err
	}
	return trace.NewSliceSource(recs), nil
}

// Len reports the number of cached traces.
func (c *Cache) Len() int { return c.m.Len() }

// Flush drops every cached trace.
func (c *Cache) Flush() { c.m.Flush() }

// Records is Cache.Records on the process-wide default cache.
func Records(spec trace.BenchmarkSpec, rows int, duration float64, seed int64) ([]trace.Record, error) {
	return defaultCache.Records(spec, rows, duration, seed)
}

// Source is Cache.Source on the process-wide default cache.
func Source(spec trace.BenchmarkSpec, rows int, duration float64, seed int64) (trace.Source, error) {
	return defaultCache.Source(spec, rows, duration, seed)
}

// Len reports the default cache's trace count.
func Len() int { return defaultCache.Len() }

// Flush drops every trace of the default cache. Long-lived processes can
// call it between campaigns to bound memory; tests use it for isolation.
func Flush() { defaultCache.Flush() }
