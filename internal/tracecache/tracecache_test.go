package tracecache

import (
	"io"
	"reflect"
	"sync"
	"testing"

	"vrldram/internal/trace"
)

func TestRecordsSharedAndDeterministic(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	spec := trace.PARSEC()[0]

	a, err := Records(spec, 1024, 0.064, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Records(spec, 1024, 0.064, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if &a[0] != &b[0] {
		t.Fatal("second lookup did not return the shared slice")
	}
	if Len() != 1 {
		t.Fatalf("Len = %d, want 1", Len())
	}

	direct, err := spec.Generate(1024, 0.064, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, direct) {
		t.Fatal("cached trace differs from direct generation")
	}
}

func TestRecordsDistinctKeys(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	specs := trace.PARSEC()

	a, err := Records(specs[0], 1024, 0.064, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Records(specs[0], 1024, 0.064, 43) // different seed
	if err != nil {
		t.Fatal(err)
	}
	c, err := Records(specs[1], 1024, 0.064, 42) // different spec
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > 0 && len(b) > 0 && &a[0] == &b[0] {
		t.Fatal("different seeds share a trace")
	}
	if len(a) > 0 && len(c) > 0 && &a[0] == &c[0] {
		t.Fatal("different specs share a trace")
	}
	if Len() != 3 {
		t.Fatalf("Len = %d, want 3", Len())
	}
}

func TestSourceIndependentCursors(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	spec := trace.PARSEC()[0]

	const n = 8
	var wg sync.WaitGroup
	counts := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, err := Source(spec, 1024, 0.064, 42)
			if err != nil {
				errs[i] = err
				return
			}
			for {
				if _, err := src.Next(); err != nil {
					if err != io.EOF {
						errs[i] = err
					}
					return
				}
				counts[i]++
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if counts[i] != counts[0] {
			t.Fatalf("reader %d drained %d records, reader 0 drained %d", i, counts[i], counts[0])
		}
	}
	if counts[0] == 0 {
		t.Fatal("readers drained no records")
	}
}
