package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/scrub"
	"vrldram/internal/trace"
)

// TestBatchQueueMatchesHeapPopOrder is the queue-level property for the
// lane-based batch queue: against random periodic workloads drained through
// popBatch at random horizons - exercising the per-period FIFO lanes, the
// mixed-lane sort, and FIFO-violation spills - the batch queue must emit
// exactly the (time, row) sequence the reference binary heap does, one
// event at a time. Horizons stay below the earliest possible re-push
// (tFirst + the minimum period): a re-push landing inside an already
// extracted batch is legal for the queue but handled by the runner's merge
// fallback, which the full-run equivalence tests cover.
func TestBatchQueueMatchesHeapPopOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(200)
		var bq batchQueue
		bq.reset()
		heap := eventQueue{useHeap: true}
		periods := make([]float64, rows)
		minPeriod := math.Inf(1)
		for r := 0; r < rows; r++ {
			// A handful of shared periods (lane-friendly) plus a random tail
			// that overflows batchMaxLanes and spills to the mixed lane.
			if rng.Intn(2) == 0 {
				periods[r] = 64e-3 * float64(1+rng.Intn(4))
			} else {
				periods[r] = 32e-3 * math.Pow(2, 5*rng.Float64())
			}
			minPeriod = math.Min(minPeriod, periods[r])
			e := event{T: staggerFrac(r) * periods[r], Row: r}
			bq.push(e)
			heap.push(e)
		}
		var rowsBuf []int
		var timesBuf []float64
		horizon := 0.7
		for heap.size() > 0 {
			if bq.size() != heap.size() || bq.peekTime() != heap.peekTime() {
				return false
			}
			h := heap.peekTime() + (0.05+0.95*rng.Float64())*minPeriod
			rowsBuf, timesBuf = bq.popBatch(h, rowsBuf[:0], timesBuf[:0])
			if len(rowsBuf) == 0 {
				return false
			}
			for i := range rowsBuf {
				he := heap.pop()
				if he.Row != rowsBuf[i] || he.T != timesBuf[i] {
					return false
				}
				if next := he.T + periods[he.Row]; next < horizon {
					ne := event{T: next, Row: he.Row}
					bq.pushNext(ne, periods[he.Row])
					heap.push(ne)
				}
			}
		}
		return bq.size() == 0 && math.IsInf(bq.peekTime(), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchQueuePendingSortedMatchesHeap pins the checkpoint form: however
// the outstanding events are distributed across lanes, pendingSorted must
// equal the heap queue's canonical listing.
func TestBatchQueuePendingSortedMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var bq batchQueue
	bq.reset()
	heap := eventQueue{useHeap: true}
	for r := 0; r < 300; r++ {
		e := event{T: rng.Float64(), Row: r}
		if r%2 == 0 {
			d := 64e-3 * float64(1+r%20) // > batchMaxLanes distinct deltas
			bq.pushNext(e, d)
		} else {
			bq.push(e)
		}
		heap.push(e)
	}
	// Consume a prefix so head offsets are non-trivial in both.
	var rowsBuf []int
	var timesBuf []float64
	rowsBuf, _ = bq.popBatch(0.25, rowsBuf, timesBuf)
	for range rowsBuf {
		heap.pop()
	}
	if got, want := bq.pendingSorted(), heap.pendingSorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pendingSorted diverged:\nbatch: %v\nheap:  %v", got, want)
	}
}

// backendHarness builds one fully-featured run configuration for the
// backend equivalence matrix: a mis-binned retention profile (so ECC
// classification fires), an access trace, checkpointing, and optional
// scenario and scrub layers. Smaller than the wheel harness because the
// matrix is much wider.
type backendHarness struct {
	geom    device.BankGeometry
	profile *retention.BankProfile
	rm      core.RestoreModel
	recs    []trace.Record
	seed    int64
	opts    Options
}

func newBackendHarness(t *testing.T, seed int64) *backendHarness {
	t.Helper()
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 256, Cols: 32}
	prof, err := retention.NewSampledProfile(geom, retention.DefaultCellDistribution(), seed)
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := fault.MisBinProfile(prof, 0.05, retention.RAIDRBins, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, geom)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, 1200)
	for i := range recs {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		recs[i] = trace.Record{Time: float64(i) * 0.768 / float64(len(recs)), Op: op, Row: (i * 37) % geom.Rows}
	}
	cls := ecc.DefaultClassifier()
	return &backendHarness{
		geom:    geom,
		profile: bad,
		rm:      rm,
		recs:    recs,
		seed:    seed,
		opts:    Options{Duration: 0.768, TCK: p.TCK, ECC: &cls},
	}
}

func (h *backendHarness) sched(t *testing.T, name string) core.Scheduler {
	t.Helper()
	cfg := core.Config{Restore: h.rm}
	var (
		s   core.Scheduler
		err error
	)
	switch name {
	case "jedec":
		s, err = core.NewJEDEC(device.Default90nm().TRetNom, h.rm)
	case "raidr":
		s, err = core.NewRAIDR(h.profile, cfg)
	case "vrl":
		s, err = core.NewVRL(h.profile, cfg)
	case "vrl-access":
		s, err = core.NewVRLAccess(h.profile, cfg)
	default:
		t.Fatalf("unknown scheduler %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runOnce executes one full checkpointed run on the requested backend and
// returns the stats plus the gob-encoded checkpoint stream. scenName names
// a catalog scenario to decay under ("" = bare bank).
func (h *backendHarness) runOnce(t *testing.T, schedName, scenName string, withScrub bool, backend Backend) (Stats, [][]byte) {
	t.Helper()
	bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	sched := h.sched(t, schedName)
	opts := h.opts
	opts.Backend = backend
	if scenName != "" {
		env, err := scenario.BuildEnv(scenario.Ref{Name: scenName}, opts.Duration, h.seed+3)
		if err != nil {
			t.Fatal(err)
		}
		if err := bank.SetModulator(env); err != nil {
			t.Fatal(err)
		}
		opts.Scenario = env
	}
	if withScrub {
		// The scrub store needs a classifier even when the run itself skips
		// ECC classification (the fast-forward harness clears opts.ECC to
		// stay eligible).
		cls := opts.ECC
		if cls == nil {
			d := ecc.DefaultClassifier()
			cls = &d
		}
		store, err := scrub.NewBankStore(bank, *cls)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := scrub.New(store, scrub.Config{
			Sched:  sched,
			Spares: 64,
			Reprofile: func(row int) (float64, error) {
				return profiler.ProfileRow(h.profile, retention.ExpDecay{}, row, profiler.Options{})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		opts.Scrub = scr
	}
	var blobs [][]byte
	opts.CheckpointEvery = opts.Duration / 4
	opts.CheckpointSink = func(cp *Checkpoint) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			return err
		}
		blobs = append(blobs, buf.Bytes())
		return nil
	}
	r := NewReusable(h.geom.Rows)
	st, err := r.Run(bank, sched, trace.NewSliceSource(h.recs), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, blobs
}

// comparePair runs the same configuration on the scalar reference and the
// batched runner and demands bit-identical Stats and bit-identical
// serialized checkpoints.
func (h *backendHarness) comparePair(t *testing.T, schedName, scenName string, withScrub bool) {
	t.Helper()
	scalarStats, scalarBlobs := h.runOnce(t, schedName, scenName, withScrub, BackendScalar)
	batchStats, batchBlobs := h.runOnce(t, schedName, scenName, withScrub, BackendBatch)
	if !reflect.DeepEqual(scalarStats, batchStats) {
		t.Fatalf("stats diverged:\nscalar: %+v\nbatch:  %+v", scalarStats, batchStats)
	}
	if len(scalarBlobs) != len(batchBlobs) {
		t.Fatalf("checkpoint counts diverged: %d vs %d", len(scalarBlobs), len(batchBlobs))
	}
	if len(scalarBlobs) == 0 {
		t.Fatal("run produced no checkpoints; the blob comparison is vacuous")
	}
	for i := range scalarBlobs {
		if !bytes.Equal(scalarBlobs[i], batchBlobs[i]) {
			t.Fatalf("checkpoint %d blob diverged between backends", i)
		}
	}
}

// TestBatchMatchesScalarFullRuns is the keystone equivalence property of
// the columnar kernels: across all four schedulers, scrub on and off, and
// every catalog scenario (plus the bare bank), a run on the batched backend
// must produce bit-identical Stats and bit-identical serialized checkpoints
// to the same run on the scalar reference.
func TestBatchMatchesScalarFullRuns(t *testing.T) {
	h := newBackendHarness(t, 7)
	scens := append([]string{""}, scenario.Names()...)
	for _, schedName := range []string{"jedec", "raidr", "vrl", "vrl-access"} {
		for _, withScrub := range []bool{false, true} {
			for _, scen := range scens {
				label := scen
				if label == "" {
					label = "bare"
				}
				t.Run(fmt.Sprintf("%s/scrub=%v/%s", schedName, withScrub, label), func(t *testing.T) {
					h.comparePair(t, schedName, scen, withScrub)
				})
			}
		}
	}
}

// TestBatchMatchesScalarSecondSeed re-runs a slice of the matrix on a
// different profile seed, so the equivalence does not hinge on one
// retention draw.
func TestBatchMatchesScalarSecondSeed(t *testing.T) {
	h := newBackendHarness(t, 21)
	for _, withScrub := range []bool{false, true} {
		for _, scen := range []string{"", "kitchen-sink"} {
			label := scen
			if label == "" {
				label = "bare"
			}
			t.Run(fmt.Sprintf("vrl/scrub=%v/%s", withScrub, label), func(t *testing.T) {
				h.comparePair(t, "vrl", scen, withScrub)
			})
		}
	}
}

// TestBatchLUTBackend covers the opt-in LUT backend: the run succeeds, the
// refresh schedule is unchanged (it never depends on cell charge), the
// violation verdicts agree with the exact backend on this workload, and the
// bank's decay model is restored afterwards (the LUT swap must not leak out
// of the run).
func TestBatchLUTBackend(t *testing.T) {
	h := newBackendHarness(t, 7)
	exact, _ := h.runOnce(t, "vrl", "kitchen-sink", false, BackendBatch)
	approx, _ := h.runOnce(t, "vrl", "kitchen-sink", false, BackendBatchLUT)
	if approx.FullRefreshes != exact.FullRefreshes || approx.PartialRefreshes != exact.PartialRefreshes ||
		approx.BusyCycles != exact.BusyCycles {
		t.Fatalf("LUT backend changed the refresh schedule:\nexact: %+v\nlut:   %+v", exact, approx)
	}
	if approx.Violations != exact.Violations {
		t.Fatalf("LUT backend changed violations: exact %d, lut %d", exact.Violations, approx.Violations)
	}

	// The decay swap must be scoped to the run.
	bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	opts := h.opts
	opts.Backend = BackendBatchLUT
	if _, err := Run(bank, h.sched(t, "vrl"), nil, opts); err != nil {
		t.Fatal(err)
	}
	if _, ok := bank.Decay.(retention.ExpDecay); !ok {
		t.Fatalf("bank.Decay not restored after LUT run: %T", bank.Decay)
	}
}
