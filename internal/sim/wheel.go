package sim

import (
	"math"
	"sort"
)

// Timing-wheel event queue. Refresh events are overwhelmingly periodic with
// periods that are multiples of tREFI, so hashing them into tREFI-wide time
// buckets makes push and pop O(1) amortized instead of the binary heap's
// O(log rows), with no comparator calls on the hot path. Events beyond the
// wheel's horizon wait in an overflow ring (a min-heap) and are
// redistributed when the wheel wraps.
//
// Ordering invariant: the wheel pops in exactly the same total (time, row)
// order as the reference binary heap. Buckets partition time, the wheel
// consumes them left to right, each bucket is itself a (time, row) min-heap,
// and every overflow event lies strictly past every bucketed event - so the
// pop sequence is uniquely determined by the comparator, and Stats,
// checkpoints, and resume blobs stay bit-identical across queue
// implementations.
const (
	// wheelWidth is one tREFI at the default 64 ms / 8K-row tREFW: the
	// natural spacing of refresh events.
	wheelWidth = 64e-3 / 8192
	// wheelBuckets gives a 128 ms horizon - two tREFW generations - so even
	// the slowest multi-bin periods mostly land in the wheel directly.
	wheelBuckets = 16384
)

type timingWheel struct {
	buckets  []eventHeap // lazily allocated; each bucket is a (t,row) min-heap
	base     float64     // time at the left edge of bucket 0
	cursor   int         // first bucket that may still hold events
	count    int         // events currently stored in buckets
	overflow eventHeap   // events at t >= base + horizon, min-heap
}

// reset empties the wheel while keeping every allocation for reuse.
func (w *timingWheel) reset() {
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	w.base, w.cursor, w.count = 0, 0, 0
	w.overflow = w.overflow[:0]
}

func (w *timingWheel) size() int { return w.count + len(w.overflow) }

func (w *timingWheel) push(e event) {
	if w.buckets == nil {
		w.buckets = make([]eventHeap, wheelBuckets)
	}
	idx := int((e.T - w.base) / wheelWidth)
	if idx >= wheelBuckets {
		w.overflow.push(e)
		return
	}
	if idx < w.cursor {
		// Floating-point edge: an event due "now" may hash one bucket left
		// of the cursor. Clamping keeps it poppable; the bucket's internal
		// (t,row) order still emits it at the right position.
		idx = w.cursor
	}
	w.buckets[idx].push(e)
	w.count++
}

// advance moves the cursor to the first non-empty bucket, rebasing the wheel
// onto the overflow ring's earliest event when the buckets run dry.
func (w *timingWheel) advance() {
	for {
		for w.count > 0 {
			if len(w.buckets[w.cursor]) > 0 {
				return
			}
			w.cursor++
		}
		if len(w.overflow) == 0 {
			return
		}
		// Rebase: align bucket 0 with the earliest outstanding event and
		// pull everything within the new horizon out of the overflow ring.
		// The ring is a min-heap, so the drain stops at the first event past
		// the horizon.
		w.base = math.Floor(w.overflow[0].T/wheelWidth) * wheelWidth
		w.cursor = 0
		for len(w.overflow) > 0 {
			idx := int((w.overflow[0].T - w.base) / wheelWidth)
			if idx >= wheelBuckets {
				break
			}
			if idx < 0 {
				idx = 0
			}
			w.buckets[idx].push(w.overflow.pop())
			w.count++
		}
	}
}

// peekTime returns the earliest outstanding event time, or +Inf when empty.
func (w *timingWheel) peekTime() float64 {
	w.advance()
	if w.count > 0 {
		return w.buckets[w.cursor][0].T
	}
	return math.Inf(1)
}

// pop removes and returns the earliest event. The wheel must be non-empty.
func (w *timingWheel) pop() event {
	w.advance()
	e := w.buckets[w.cursor].pop()
	w.count--
	return e
}

// eventQueue is the simulator's refresh event queue: a timing wheel by
// default, with the reference binary heap selectable (useHeap) so the
// equivalence tests can pin one implementation against the other on
// identical runs.
type eventQueue struct {
	useHeap bool
	heap    eventHeap
	wheel   timingWheel
}

// reset empties the queue, keeping allocations.
func (q *eventQueue) reset() {
	q.heap = q.heap[:0]
	q.wheel.reset()
}

func (q *eventQueue) size() int {
	if q.useHeap {
		return len(q.heap)
	}
	return q.wheel.size()
}

func (q *eventQueue) push(e event) {
	if q.useHeap {
		q.heap.push(e)
		return
	}
	q.wheel.push(e)
}

// pushNext implements refreshQueue; the scalar queues take no advantage of
// the period hint.
func (q *eventQueue) pushNext(e event, _ float64) { q.push(e) }

func (q *eventQueue) pop() event {
	if q.useHeap {
		return q.heap.pop()
	}
	return q.wheel.pop()
}

func (q *eventQueue) peekTime() float64 {
	if q.useHeap {
		if len(q.heap) == 0 {
			return math.Inf(1)
		}
		return q.heap[0].T
	}
	return q.wheel.peekTime()
}

// pendingSorted returns the outstanding events in canonical (time, row)
// order. Checkpoints store this form, so checkpoint blobs are independent of
// the queue implementation and of any queue-internal layout.
func (q *eventQueue) pendingSorted() []PendingEvent {
	out := make([]PendingEvent, 0, q.size())
	if q.useHeap {
		for _, e := range q.heap {
			out = append(out, PendingEvent{Time: e.T, Row: e.Row})
		}
	} else {
		for i := q.wheel.cursor; i < len(q.wheel.buckets); i++ {
			for _, e := range q.wheel.buckets[i] {
				out = append(out, PendingEvent{Time: e.T, Row: e.Row})
			}
		}
		for _, e := range q.wheel.overflow {
			out = append(out, PendingEvent{Time: e.T, Row: e.Row})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Row < out[j].Row
	})
	return out
}
