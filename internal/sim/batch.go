package sim

import (
	"math"
	"slices"

	"vrldram/internal/dram"
)

// Batched event queue. The timing wheel in wheel.go made pop O(1) amortized,
// but it still pays a per-event bucket hash on push and a per-bucket sort on
// drain, which together profile as the dominant cost of a refresh-only run.
// The batch queue exploits the structure the wheel ignores: almost every
// event is a re-push at "now + period" for a period drawn from a handful of
// distinct values (the retention bins), and the runner processes events in
// ascending time order - so the re-pushes of one period value arrive already
// sorted. Keeping one FIFO lane per distinct period makes push an append and
// drain a k-way merge of sorted lanes, with no hashing and no sorting on the
// hot path. Events that do not come with a period (initial seeds, resume
// snapshots) or that would break a lane's ordering go to a "mixed" intake
// lane that is sorted lazily, once per disturbance.
//
// Ordering invariant: identical to the other queues - events leave in
// strictly increasing (time, row) order, so the batched runner observes
// exactly the sequence the reference heap would emit.
const (
	// batchWindow is the batch granularity: the batched runner drains
	// [tFirst, tFirst+batchWindow) as one batch (further cut by
	// checkpoint/scrub/trace boundaries, so a wider window never delays an
	// interleaving interaction - the window only sets how much per-batch
	// overhead each kernel call amortizes). Eight milliseconds holds on the
	// order of a thousand refresh events of an 8K-row bank while keeping
	// the gather columns comfortably cache-resident.
	batchWindow = 8e-3
	// batchMaxLanes caps the per-period lanes. Schedulers with more
	// distinct periods than this (none of the shipped ones; the bins are
	// 3-4 values) spill the excess into the mixed lane, which stays
	// correct - just sorted instead of merged.
	batchMaxLanes = 12
	// laneCompactMin bounds how much consumed prefix a lane may carry
	// before its tail is copied down. Amortized O(1) per event.
	laneCompactMin = 4096
)

// eventLess is the queue's total order: (time, row) ascending.
func eventLess(a, b event) bool {
	return a.T < b.T || (a.T == b.T && a.Row < b.Row)
}

// sortEvents orders s by (time, row) with a natural merge sort, reusing the
// caller's scratch buffers across calls. Hand-rolled rather than
// slices.SortFunc (the generic comparator indirection was the single largest
// line in a refresh-only profile) and run-aware because the mixed lane's
// contents are typically a few concatenated sorted runs, which merge in ~2
// comparisons per event where a general sort pays the full n log n.
func sortEvents(s []event, scratch *[]event, bounds *[]int, keys *[]uint64) {
	n := len(s)
	if n < 2 {
		return
	}
	// Split into maximal ascending runs; runs[i] is the start of run i.
	runs := append((*bounds)[:0], 0)
	for i := 1; i < n; i++ {
		if eventLess(s[i], s[i-1]) {
			runs = append(runs, i)
		}
	}
	*bounds = runs
	if len(runs) == 1 {
		return // already sorted
	}
	if len(runs) > 8 && len(runs) > n/8 {
		// Run structure too fragmented for merging to pay (e.g. the initial
		// seed phase, which arrives in row order with effectively random
		// stagger times): sort comparison-free instead - byte radix when
		// large enough to amortize the histograms, else quicksort.
		if n >= 256 {
			radixSortEvents(s, scratch, keys)
		} else {
			quickSortEvents(s)
		}
		return
	}
	if cap(*scratch) < n {
		*scratch = make([]event, n)
	}
	tmp := (*scratch)[:n]
	// Bottom-up passes merging adjacent runs in place (left half staged
	// through tmp) until one run remains.
	for len(runs) > 1 {
		out := runs[:0]
		for i := 0; i < len(runs); i += 2 {
			out = append(out, runs[i])
			if i+1 >= len(runs) {
				break
			}
			a, b := runs[i], runs[i+1]
			c := n
			if i+2 < len(runs) {
				c = runs[i+2]
			}
			// Merge s[a:b] and s[b:c]: stage the left run in tmp, then
			// merge back into s[a:c].
			left := tmp[:copy(tmp, s[a:b])]
			li, ri, w := 0, b, a
			for li < len(left) && ri < c {
				if eventLess(s[ri], left[li]) {
					s[w] = s[ri]
					ri++
				} else {
					s[w] = left[li]
					li++
				}
				w++
			}
			for li < len(left) {
				s[w] = left[li]
				li++
				w++
			}
		}
		runs = out
	}
}

// radixSortEvents orders s by (time, row) with an LSD byte radix over the
// IEEE-754 bits of the time (the standard sign fixup makes the bit pattern
// order-isomorphic to the float order), then repairs row order inside
// equal-time runs with a bounded insertion pass. Sorting 8K seed events this
// way is ~4x cheaper than quicksort: no comparisons, and passes over bytes
// the keys all share - the high exponent bytes of times inside one refresh
// window - are detected from the histogram and skipped.
func radixSortEvents(s []event, scratch *[]event, keyBuf *[]uint64) {
	n := len(s)
	if cap(*scratch) < n {
		*scratch = make([]event, n)
	}
	tmp := (*scratch)[:n]
	if cap(*keyBuf) < 2*n {
		*keyBuf = make([]uint64, 2*n)
	}
	keys := (*keyBuf)[:n]
	keysTmp := (*keyBuf)[n : 2*n]
	var hist [8][256]int
	for i := range s {
		b := math.Float64bits(s[i].T)
		if b>>63 != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
		hist[0][b&0xff]++
		hist[1][b>>8&0xff]++
		hist[2][b>>16&0xff]++
		hist[3][b>>24&0xff]++
		hist[4][b>>32&0xff]++
		hist[5][b>>40&0xff]++
		hist[6][b>>48&0xff]++
		hist[7][b>>56&0xff]++
	}
	src, dst := s, tmp
	ksrc, kdst := keys, keysTmp
	for pass := range hist {
		h := &hist[pass]
		shift := uint(pass * 8)
		if h[ksrc[0]>>shift&0xff] == n {
			continue // every key shares this byte
		}
		sum := 0
		for i := range h {
			c := h[i]
			h[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			k := ksrc[i]
			d := k >> shift & 0xff
			j := h[d]
			h[d] = j + 1
			dst[j] = src[i]
			kdst[j] = k
		}
		src, dst = dst, src
		ksrc, kdst = kdst, ksrc
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
	// The radix ordered by time alone; restore (time, row) order inside any
	// equal-time run (rare: distinct rows almost always have distinct
	// phases, so runs are short when they exist at all).
	for i := 1; i < n; i++ {
		if s[i].T == s[i-1].T && s[i].Row < s[i-1].Row {
			e := s[i]
			j := i
			for j > 0 && s[j-1].T == e.T && s[j-1].Row > e.Row {
				s[j] = s[j-1]
				j--
			}
			s[j] = e
		}
	}
}

// quickSortEvents orders s by (time, row): median-of-three quicksort with
// insertion sort below 24 elements, all with concrete inlined comparisons.
func quickSortEvents(s []event) {
	for len(s) > 24 {
		// Median of first/middle/last as pivot, swapped to s[0].
		lo, mid := 0, len(s)/2
		if eventLess(s[mid], s[lo]) {
			lo, mid = mid, lo
		}
		if hi := len(s) - 1; eventLess(s[hi], s[mid]) {
			mid = hi
			if eventLess(s[mid], s[lo]) {
				lo, mid = mid, lo
			}
		}
		s[0], s[mid] = s[mid], s[0]
		pivot := s[0]
		i, j := 1, len(s)-1
		for {
			for i <= j && eventLess(s[i], pivot) {
				i++
			}
			for i <= j && eventLess(pivot, s[j]) {
				j--
			}
			if i > j {
				break
			}
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
		s[0], s[j] = s[j], s[0]
		// Recurse into the smaller side, loop on the larger.
		if j < len(s)-i {
			quickSortEvents(s[:j])
			s = s[i:]
		} else {
			quickSortEvents(s[i:])
			s = s[:j]
		}
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i
		for j > 0 && eventLess(e, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = e
	}
}

// batchLane is one FIFO of events sharing a re-push period. Its unconsumed
// tail Events[Head:] is sorted by (time, row) by construction: the runner
// pushes in ascending event-time order, and adding a shared constant
// preserves that order. It aliases dram.RefreshLane so the lane slice can be
// handed to the fast-forward kernel in place.
type batchLane = dram.RefreshLane

// laneTailT returns the newest queued time, or -Inf when the lane is empty.
func laneTailT(l *batchLane) float64 {
	if l.Head == len(l.Events) {
		return math.Inf(-1)
	}
	return l.Events[len(l.Events)-1].T
}

func laneCompact(l *batchLane) {
	if l.Head == len(l.Events) {
		l.Events = l.Events[:0]
		l.Head = 0
	} else if l.Head >= laneCompactMin && l.Head >= len(l.Events)/2 {
		n := copy(l.Events, l.Events[l.Head:])
		l.Events = l.Events[:n]
		l.Head = 0
	}
}

// batchQueue is the lane set plus the mixed intake.
type batchQueue struct {
	lanes       []batchLane
	mixed       []event // unsorted intake: seeds, resumes, spilled lanes
	mixedHead   int
	mixedSorted bool
	count       int

	sortTmp    []event  // merge/radix staging buffer for the mixed lane
	sortBounds []int    // run-boundary scratch for the mixed lane
	sortKeys   []uint64 // radix key scratch for the mixed lane
}

// reset empties the queue while keeping every allocation for reuse.
func (bq *batchQueue) reset() {
	for i := range bq.lanes {
		bq.lanes[i].Events = bq.lanes[i].Events[:0]
		bq.lanes[i].Head = 0
	}
	bq.lanes = bq.lanes[:0]
	bq.mixed = bq.mixed[:0]
	bq.mixedHead = 0
	bq.mixedSorted = false
	bq.count = 0
}

func (bq *batchQueue) size() int { return bq.count }

// push enqueues an event with no ordering hint: it goes to the mixed lane,
// to be sorted on the next read.
func (bq *batchQueue) push(e event) {
	bq.mixed = append(bq.mixed, e)
	bq.mixedSorted = false
	bq.count++
}

// pushNext enqueues a re-push scheduled delta after the event the runner is
// currently processing. Events sharing a delta arrive in ascending time
// order (the runner's processing order), so each lane stays sorted by
// construction; the guard below routes any violation - and any delta beyond
// the lane cap - through the mixed lane instead.
func (bq *batchQueue) pushNext(e event, delta float64) {
	for i := range bq.lanes {
		l := &bq.lanes[i]
		if l.Delta == delta {
			if t := laneTailT(l); e.T < t || (e.T == t && l.Events[len(l.Events)-1].Row >= e.Row) {
				break // would break FIFO order; spill to mixed
			}
			laneCompact(l)
			l.Events = append(l.Events, e)
			bq.count++
			return
		}
	}
	if len(bq.lanes) < batchMaxLanes && !math.IsNaN(delta) {
		if cap(bq.lanes) > len(bq.lanes) {
			// Reuse a recycled lane (and its buffer) from a prior run.
			bq.lanes = bq.lanes[:len(bq.lanes)+1]
			l := &bq.lanes[len(bq.lanes)-1]
			l.Delta = delta
			l.Events = append(l.Events[:0], e)
			l.Head = 0
		} else {
			bq.lanes = append(bq.lanes, batchLane{Delta: delta, Events: append(make([]event, 0, 64), e)})
		}
		bq.count++
		return
	}
	bq.push(e)
}

// ensureMixedSorted sorts the mixed lane's unconsumed tail if dirty.
func (bq *batchQueue) ensureMixedSorted() {
	if !bq.mixedSorted {
		if bq.mixedHead == len(bq.mixed) {
			bq.mixed = bq.mixed[:0]
			bq.mixedHead = 0
		}
		sortEvents(bq.mixed[bq.mixedHead:], &bq.sortTmp, &bq.sortBounds, &bq.sortKeys)
		bq.mixedSorted = true
	}
}

// peekTime returns the earliest outstanding event time, or +Inf when empty.
func (bq *batchQueue) peekTime() float64 {
	if bq.count == 0 {
		return math.Inf(1)
	}
	return bq.peek().T
}

// peek returns the earliest outstanding event without removing it. The
// queue must be non-empty.
func (bq *batchQueue) peek() event {
	_, e := bq.argmin()
	return e
}

// argmin locates the lane holding the earliest event: index into lanes, or
// -1 for the mixed lane. The queue must be non-empty.
func (bq *batchQueue) argmin() (int, event) {
	bq.ensureMixedSorted()
	best := -2
	var bestE event
	if bq.mixedHead < len(bq.mixed) {
		best, bestE = -1, bq.mixed[bq.mixedHead]
	}
	for i := range bq.lanes {
		l := &bq.lanes[i]
		if l.Head < len(l.Events) {
			if e := l.Events[l.Head]; best == -2 || eventLess(e, bestE) {
				best, bestE = i, e
			}
		}
	}
	return best, bestE
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (bq *batchQueue) pop() event {
	li, e := bq.argmin()
	if li == -1 {
		bq.mixedHead++
	} else {
		bq.lanes[li].Head++
	}
	bq.count--
	return e
}

// popBatch removes every outstanding event with t < h, appending them in
// (time, row) order to rows and times: a k-way merge over the lane prefixes
// below the horizon.
func (bq *batchQueue) popBatch(h float64, rows []int, times []float64) ([]int, []float64) {
	bq.ensureMixedSorted()
	for bq.count > 0 {
		best := -2
		var bestE event
		if bq.mixedHead < len(bq.mixed) {
			if e := bq.mixed[bq.mixedHead]; e.T < h {
				best, bestE = -1, e
			}
		}
		for i := range bq.lanes {
			l := &bq.lanes[i]
			if l.Head < len(l.Events) {
				if e := l.Events[l.Head]; e.T < h && (best == -2 || eventLess(e, bestE)) {
					best, bestE = i, e
				}
			}
		}
		if best == -2 {
			break
		}
		// Consume the whole run below the horizon that keeps this lane the
		// minimum: everything up to the next other-lane head (or h). This
		// turns the k-way merge into long memcpy-like stretches when one
		// retention bin dominates, which is the common shape.
		limit := h
		limRow := -1
		if bq.mixedHead < len(bq.mixed) && best != -1 {
			if e := bq.mixed[bq.mixedHead]; e.T < limit {
				limit, limRow = e.T, e.Row
			}
		}
		for i := range bq.lanes {
			if i == best {
				continue
			}
			l := &bq.lanes[i]
			if l.Head < len(l.Events) {
				if e := l.Events[l.Head]; e.T < limit || (e.T == limit && limRow >= 0 && e.Row < limRow) {
					limit, limRow = e.T, e.Row
				}
			}
		}
		if best == -1 {
			for bq.mixedHead < len(bq.mixed) {
				e := bq.mixed[bq.mixedHead]
				if e.T > limit || (e.T == limit && limRow >= 0 && e.Row > limRow) || e.T >= h {
					break
				}
				rows = append(rows, e.Row)
				times = append(times, e.T)
				bq.mixedHead++
				bq.count--
			}
		} else {
			l := &bq.lanes[best]
			for l.Head < len(l.Events) {
				e := l.Events[l.Head]
				if e.T > limit || (e.T == limit && limRow >= 0 && e.Row > limRow) || e.T >= h {
					break
				}
				rows = append(rows, e.Row)
				times = append(times, e.T)
				l.Head++
				bq.count--
			}
		}
	}
	return rows, times
}

// pendingSorted returns the outstanding events in canonical (time, row)
// order - the checkpoint form, identical across queue implementations.
func (bq *batchQueue) pendingSorted() []PendingEvent {
	out := make([]PendingEvent, 0, bq.size())
	for i := range bq.lanes {
		l := &bq.lanes[i]
		for _, e := range l.Events[l.Head:] {
			out = append(out, PendingEvent{Time: e.T, Row: e.Row})
		}
	}
	for _, e := range bq.mixed[bq.mixedHead:] {
		out = append(out, PendingEvent{Time: e.T, Row: e.Row})
	}
	slices.SortFunc(out, func(a, b PendingEvent) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		case a.Row < b.Row:
			return -1
		case a.Row > b.Row:
			return 1
		}
		return 0
	})
	return out
}
