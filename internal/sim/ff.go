package sim

import "math"

// Fast-forward planning: the pure arithmetic the BackendFastForward runner
// uses to decide how far a quiescent window may extend and how much lane
// capacity a skip needs. Kept free of simulator state so the fuzz target
// (FuzzFastForwardPlan) can hammer it with arbitrary triples.

// ffSkipMax bounds a single planned skip count. 2^50 refresh cycles is far
// beyond any representable run (a device-year at the fastest JEDEC period is
// ~5e8 cycles); the bound exists so float -> int conversion below never hits
// values outside int range, which Go leaves implementation-defined.
const ffSkipMax = 1 << 50

// ffHorizon returns the earliest of the candidate fast-forward caps: the run
// duration, the next checkpoint boundary, the next scrub sweep, the next
// trace record, and the scheduler/scenario stability horizon. Callers pass
// +Inf for sources that do not apply; the result is the largest time the
// kernel may process events strictly below without any non-refresh
// machinery being able to intervene.
func ffHorizon(duration, nextCP, scrubDue, traceNext, stableUntil float64) float64 {
	h := duration
	if nextCP < h {
		h = nextCP
	}
	if scrubDue < h {
		h = scrubDue
	}
	if traceNext < h {
		h = traceNext
	}
	if stableUntil < h {
		h = stableUntil
	}
	return h
}

// ffSkip returns the number of whole refresh cycles of the given period that
// fit strictly below horizon starting from t: the largest k >= 0 with
// t + k*period < horizon, computed against the same float arithmetic the
// event queue will actually perform (t + float64(k)*period), so the plan
// never promises a skip whose final event lands on or past the horizon.
// Degenerate inputs (non-positive or NaN period, t already at or past the
// horizon) plan zero skips.
func ffSkip(t, period, horizon float64) int {
	if !(period > 0) || !(t < horizon) {
		return 0
	}
	r := (horizon - t) / period
	k := ffSkipMax
	if r < ffSkipMax {
		k = int(r)
	}
	// The division is one rounding away from the repeated-add reality on
	// either side - and arbitrarily far off when horizon-t overflows to
	// +Inf, where the estimate saturates. Bisect the saturated estimate
	// down onto the actual expression (t itself is below the horizon, so
	// k=0 always qualifies), then settle the last rounding steps linearly.
	if !(t+float64(k)*period < horizon) {
		lo, hi := 0, k
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if t+float64(mid)*period < horizon {
				lo = mid
			} else {
				hi = mid
			}
		}
		k = lo
	}
	for k > 0 && !(t+float64(k)*period < horizon) {
		k--
	}
	for k < ffSkipMax && t+float64(k+1)*period < horizon {
		k++
	}
	return k
}

// ffMinLap returns the smallest refresh period among lanes holding
// unconsumed events - the shortest window span in which a fast-forward
// kernel can replay at least one full lap of some lane. Windows narrower
// than this cannot amortize the kernels' per-window full-lane scans, so the
// runner skips the attempt (+Inf when no lane holds events, or a lane's
// period is degenerate, which sends the window to the batch path).
func ffMinLap(lanes []batchLane) float64 {
	min := math.Inf(1)
	for i := range lanes {
		l := &lanes[i]
		if l.Head >= len(l.Events) {
			continue
		}
		if !(l.Delta > 0) {
			return math.Inf(1)
		}
		if l.Delta < min {
			min = l.Delta
		}
	}
	return min
}

// ffGrowLanes pre-sizes each lane's buffer for a fast-forward window so the
// kernel's in-place compaction (which needs spare capacity to absorb a lap's
// re-pushes) does not fall into per-append growth. The heuristic: a lane
// re-pushes once per consumed event, and consumes at most laps = ffSkip full
// rotations of its unconsumed tail, but capacity only ever needs to hold one
// rotation plus slack - pops balance pushes, so occupancy never exceeds the
// unconsumed count. Growth is capped to keep a pathological period from
// hoarding memory.
func ffGrowLanes(lanes []batchLane, horizon float64) {
	for i := range lanes {
		l := &lanes[i]
		n := len(l.Events) - l.Head
		if n == 0 {
			continue
		}
		laps := ffSkip(l.Events[l.Head].T, l.Delta, horizon)
		if laps == 0 {
			continue
		}
		want := 2*n + 64
		if max := 4*n + 1024; want > max {
			want = max
		}
		if cap(l.Events) >= want {
			continue
		}
		grown := make([]event, len(l.Events)-l.Head, want)
		copy(grown, l.Events[l.Head:])
		l.Events = grown
		l.Head = 0
	}
}

// mixedQuietBelow reports whether the mixed intake holds no event strictly
// below h - the precondition for handing the period lanes alone to the
// fast-forward kernel, which cannot merge the mixed lane.
func (bq *batchQueue) mixedQuietBelow(h float64) bool {
	if bq.mixedHead >= len(bq.mixed) {
		return true
	}
	bq.ensureMixedSorted()
	return !(bq.mixed[bq.mixedHead].T < h)
}

// ffInf is the "source does not apply" horizon.
func ffInf() float64 { return math.Inf(1) }

// adoptMixed moves every unconsumed mixed-intake event into the period lane
// its row's current refresh period keys, so a run whose queue was seeded
// through the mixed intake (initial stagger, resume) can fast-forward from
// its very first window instead of waiting for the batch path to drain the
// seeds. It reports whether the mixed intake is now empty.
//
// Safe only when every lane is empty: the mixed intake is globally sorted,
// so each period's subsequence is itself sorted and every lane it builds is
// ordered by construction; with a non-empty lane an early mixed event could
// land behind the lane's tail. The move preserves the queue's event
// multiset and count, so pendingSorted (and with it every checkpoint) is
// unchanged.
func (bq *batchQueue) adoptMixed(period float64, periods []float64) bool {
	if bq.mixedHead >= len(bq.mixed) {
		return true
	}
	for i := range bq.lanes {
		if bq.lanes[i].Head < len(bq.lanes[i].Events) {
			return false
		}
	}
	bq.ensureMixedSorted()
	// Precheck the whole move before mutating anything: every event's period
	// must be a usable lane key, and the distinct periods (plus recyclable
	// empty lanes) must fit the lane cap.
	var deltas [batchMaxLanes]float64
	nd := 0
	for i := range bq.lanes {
		deltas[nd] = bq.lanes[i].Delta
		nd++
	}
precheck:
	for _, e := range bq.mixed[bq.mixedHead:] {
		p := period
		if periods != nil {
			if uint(e.Row) >= uint(len(periods)) {
				return false
			}
			p = periods[e.Row]
		}
		if math.IsNaN(p) {
			return false
		}
		for i := 0; i < nd; i++ {
			if deltas[i] == p {
				continue precheck
			}
		}
		if nd == batchMaxLanes {
			return false
		}
		deltas[nd] = p
		nd++
	}
	for _, e := range bq.mixed[bq.mixedHead:] {
		p := period
		if periods != nil {
			p = periods[e.Row]
		}
		li := -1
		for i := range bq.lanes {
			if bq.lanes[i].Delta == p {
				li = i
				break
			}
		}
		if li < 0 {
			if cap(bq.lanes) > len(bq.lanes) {
				bq.lanes = bq.lanes[:len(bq.lanes)+1]
			} else {
				bq.lanes = append(bq.lanes, batchLane{})
			}
			li = len(bq.lanes) - 1
			bq.lanes[li] = batchLane{Delta: p, Events: bq.lanes[li].Events[:0]}
		}
		l := &bq.lanes[li]
		if l.Events == nil {
			l.Events = make([]event, 0, 64)
		}
		l.Events = append(l.Events, e)
	}
	bq.mixed = bq.mixed[:0]
	bq.mixedHead = 0
	bq.mixedSorted = false
	return true
}
