// Package sim is the event-driven refresh simulator: it replays a memory
// trace against a DRAM bank under a refresh scheduling policy, issuing each
// row's refreshes at its binned period and accounting the cycles the bank
// spends busy refreshing - the paper's Figure 4 metric.
package sim

import (
	"container/heap"
	"fmt"
	"io"
	"math"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	Duration float64 // simulated time (s); the Figure 4 runs use the 768 ms bin hyperperiod
	TCK      float64 // DRAM clock period (s), for the overhead fraction

	// ECC, when set, classifies every sub-limit sensing event into
	// correctable (single-bit) and uncorrectable errors instead of leaving
	// them as raw violations only.
	ECC *ecc.ChargeClassifier
	// UpgradeOnCorrect applies the AVATAR policy: when ECC corrects an error
	// in a row and the scheduler supports core.Upgrader, the row is demoted
	// to the fastest bin on the spot.
	UpgradeOnCorrect bool
	// DemoteOnCorrect generalizes UpgradeOnCorrect: when ECC corrects an
	// error and the scheduler supports core.Demoter (e.g. a guard.Guard in
	// the stack), the row steps one rung down the degradation ladder instead
	// of losing all of its slack at once.
	DemoteOnCorrect bool
}

// Stats is the outcome of one run.
type Stats struct {
	Scheduler string
	Duration  float64

	FullRefreshes    int64
	PartialRefreshes int64
	BusyCycles       int64 // cycles the bank was unavailable due to refresh
	Accesses         int64

	// ChargeRestored accumulates the normalized weakest-cell charge
	// delivered by refresh operations; the power model scales it to array
	// restore energy.
	ChargeRestored float64

	Violations int // raw sub-limit sensing events (must be 0 for a safe policy)

	// ECC classification of the violations (populated when Options.ECC is
	// set): corrected + uncorrectable = violations attributable to sensing.
	CorrectedErrors     int64
	UncorrectableErrors int64
	RowsUpgraded        int64

	// FaultsInjected counts the faults delivered by any core.FaultCounter in
	// the scheduler stack or the trace source (internal/fault injectors).
	FaultsInjected int64
	// Guard carries the degradation controller's counters when a
	// core.GuardReporter (internal/guard) is in the scheduler stack.
	Guard core.GuardStats
}

// Refreshes returns the total refresh operation count.
func (s Stats) Refreshes() int64 { return s.FullRefreshes + s.PartialRefreshes }

// OverheadFraction returns the fraction of time the bank was refreshing.
func (s Stats) OverheadFraction(tck float64) float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BusyCycles) * tck / s.Duration
}

// refresh event queue -------------------------------------------------------

type event struct {
	t   float64
	row int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].row < h[j].row
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// staggerFrac spreads row refresh phases deterministically across their
// periods (real controllers spread refreshes across tREFI slots); the
// golden-ratio sequence avoids aligning rows that share a period.
func staggerFrac(row int) float64 {
	const phi = 0.6180339887498949
	f := math.Mod(float64(row)*phi, 1)
	return f
}

// Run simulates the bank under the scheduler while replaying the trace
// source. Trace records and refreshes interleave in time order; accesses
// notify the scheduler (for VRL-Access) and fully restore the accessed row.
//
// On a mid-run error Run returns the partially-populated Stats accumulated
// so far alongside the error, so a failing run is still debuggable.
func Run(bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options) (Stats, error) {
	if opts.Duration <= 0 {
		return Stats{}, fmt.Errorf("sim: duration must be positive, got %g", opts.Duration)
	}
	if opts.TCK <= 0 {
		return Stats{}, fmt.Errorf("sim: TCK must be positive, got %g", opts.TCK)
	}
	if src == nil {
		src = trace.Empty{}
	}
	st := Stats{Scheduler: sched.Name(), Duration: opts.Duration}

	monitor, hasMonitor := sched.(core.SenseMonitor)
	// finalize fills the diagnostics that remain meaningful even when the
	// run aborts partway: the violations recorded so far, injected-fault
	// counts, and the guard's counters at time now.
	finalize := func(now float64) {
		st.Violations = len(bank.Violations())
		if fc, ok := sched.(core.FaultCounter); ok {
			st.FaultsInjected += fc.FaultsInjected()
		}
		if fc, ok := src.(core.FaultCounter); ok {
			st.FaultsInjected += fc.FaultsInjected()
		}
		if gr, ok := sched.(core.GuardReporter); ok {
			st.Guard = gr.GuardSnapshot(now)
		}
	}

	rows := bank.Geom.Rows
	h := make(eventHeap, 0, rows)
	for r := 0; r < rows; r++ {
		p := sched.Period(r)
		if p <= 0 {
			return Stats{}, fmt.Errorf("sim: scheduler period for row %d is %g", r, p)
		}
		h = append(h, event{t: staggerFrac(r) * p, row: r})
	}
	heap.Init(&h)

	// Trace look-ahead record. The readers in internal/trace enforce time
	// ordering themselves, but a custom Source is only trusted as far as the
	// check below: a record whose timestamp precedes its predecessor's would
	// silently mis-interleave with the refresh events, so it is an error.
	next, err := src.Next()
	havePending := err == nil
	if err != nil && err != io.EOF {
		finalize(0)
		return st, err
	}
	lastTraceTime := math.Inf(-1)

	drainTrace := func(until float64) error {
		for havePending && next.Time <= until {
			if next.Time < lastTraceTime {
				return fmt.Errorf("sim: trace source out of order: record at t=%.9g after t=%.9g", next.Time, lastTraceTime)
			}
			lastTraceTime = next.Time
			if next.Time >= opts.Duration {
				havePending = false
				break
			}
			if next.Row >= 0 && next.Row < rows {
				if _, err := bank.Access(next.Row, next.Time); err != nil {
					return err
				}
				sched.OnAccess(next.Row, next.Time)
				st.Accesses++
			}
			var err error
			next, err = src.Next()
			if err == io.EOF {
				havePending = false
			} else if err != nil {
				return err
			}
		}
		return nil
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.t >= opts.Duration {
			continue
		}
		if err := drainTrace(ev.t); err != nil {
			finalize(ev.t)
			return st, err
		}
		op := sched.RefreshOp(ev.row, ev.t)
		res, err := bank.Refresh(ev.row, ev.t, op.Alpha)
		if err != nil {
			finalize(ev.t)
			return st, err
		}
		if hasMonitor {
			// Report before rescheduling so a demotion or promotion decided
			// here shapes the row's very next refresh interval.
			monitor.OnSense(ev.row, ev.t, res.ChargeBefore)
		}
		if opts.ECC != nil && res.ChargeBefore < retention.SenseLimit {
			switch opts.ECC.Classify(res.ChargeBefore) {
			case ecc.Corrected:
				st.CorrectedErrors++
				if opts.DemoteOnCorrect {
					if dm, ok := sched.(core.Demoter); ok {
						dm.Demote(ev.row)
					}
				} else if opts.UpgradeOnCorrect {
					if up, ok := sched.(core.Upgrader); ok {
						up.Upgrade(ev.row)
						st.RowsUpgraded++
					}
				}
			case ecc.Uncorrectable:
				st.UncorrectableErrors++
			}
		}
		if op.Full {
			st.FullRefreshes++
		} else {
			st.PartialRefreshes++
		}
		st.BusyCycles += int64(op.Cycles)
		st.ChargeRestored += res.ChargeRestored
		heap.Push(&h, event{t: ev.t + sched.Period(ev.row), row: ev.row})
	}
	if err := drainTrace(opts.Duration); err != nil {
		finalize(opts.Duration)
		return st, err
	}
	// Closing integrity sweep: every row must still be sensable. A failed
	// sweep still returns the diagnostics accumulated so far.
	if _, err := bank.CheckAll(opts.Duration); err != nil {
		finalize(opts.Duration)
		return st, err
	}
	finalize(opts.Duration)
	return st, nil
}
