// Package sim is the event-driven refresh simulator: it replays a memory
// trace against a DRAM bank under a refresh scheduling policy, issuing each
// row's refreshes at its binned period and accounting the cycles the bank
// spends busy refreshing - the paper's Figure 4 metric.
package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/trace"
)

// Backend selects the simulator's runner implementation, in the same spirit
// as the SPICE solver's banded/dense switch: the scalar per-event loop is
// the checked reference, and the batched runner - which drains whole
// timing-wheel buckets and applies decay/sense/restore through the columnar
// dram kernels - is bit-identical to it (Stats and checkpoint blobs; the
// backend equivalence tests pin this across schedulers, scrub modes, and
// scenarios).
type Backend int

const (
	// BackendAuto picks the batched runner: it is exact, so there is no
	// accuracy trade-off to opt into.
	BackendAuto Backend = iota
	// BackendScalar forces the reference per-event loop.
	BackendScalar
	// BackendBatch forces the batched runner explicitly.
	BackendBatch
	// BackendBatchLUT runs the batched runner with the bank's decay law
	// swapped for its precomputed monotone-LUT fit (retention.DecayLUTFor)
	// for the duration of the run. Unlike every other backend this one is
	// approximate - deviations are bounded by the LUT's 1e-9 equivalence
	// gate, not bit-identical - which is why it is strictly opt-in and never
	// what Auto resolves to.
	BackendBatchLUT
	// BackendFastForward runs the batched runner with the steady-state
	// fast-forward engine enabled on top: when the schedule is provably
	// quiescent - scheduler periods stable (core.SteadyScheduler), scenario
	// nominal (dram.SteadyModulator), no trace record, scrub sweep, or
	// checkpoint boundary before the horizon - whole spans of refresh events
	// are consumed by one fused kernel call (dram.Bank.RefreshStream)
	// instead of per-bucket drains. It is exact: the kernel replays the
	// per-event arithmetic in the same global order, so Stats and checkpoint
	// blobs stay bit-identical to the scalar reference. BackendAuto resolves
	// to it whenever the run is eligible.
	BackendFastForward
)

// String returns the backend's CLI name.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendScalar:
		return "scalar"
	case BackendBatch:
		return "batch"
	case BackendBatchLUT:
		return "batch-lut"
	case BackendFastForward:
		return "fast-forward"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// BackendNames lists the valid CLI backend names in menu order.
func BackendNames() []string {
	return []string{"auto", "scalar", "batch", "batch-lut", "fast-forward"}
}

// ParseBackend maps a CLI name to its Backend. The empty string means Auto.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return BackendAuto, nil
	case "scalar":
		return BackendScalar, nil
	case "batch":
		return BackendBatch, nil
	case "batch-lut":
		return BackendBatchLUT, nil
	case "fast-forward":
		return BackendFastForward, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (valid: %s)", name, strings.Join(BackendNames(), ", "))
	}
}

// Options configures one simulation run.
type Options struct {
	Duration float64 // simulated time (s); the Figure 4 runs use the 768 ms bin hyperperiod
	TCK      float64 // DRAM clock period (s), for the overhead fraction

	// Backend selects the runner implementation; the zero value (Auto) runs
	// the batched-exact path.
	Backend Backend

	// ECC, when set, classifies every sub-limit sensing event into
	// correctable (single-bit) and uncorrectable errors instead of leaving
	// them as raw violations only.
	ECC *ecc.ChargeClassifier
	// UpgradeOnCorrect applies the AVATAR policy: when ECC corrects an error
	// in a row and the scheduler supports core.Upgrader, the row is demoted
	// to the fastest bin on the spot.
	UpgradeOnCorrect bool
	// DemoteOnCorrect generalizes UpgradeOnCorrect: when ECC corrects an
	// error and the scheduler supports core.Demoter (e.g. a guard.Guard in
	// the stack), the row steps one rung down the degradation ladder instead
	// of losing all of its slack at once.
	DemoteOnCorrect bool

	// Scrub, when set, interleaves an online patrol scrubber with the
	// refresh stream: patrol reads fire at the scrubber's own cadence
	// between refresh events (deferring with backoff while a refresh holds
	// the bank busy), and every ECC-classified sensing event is forwarded to
	// the scrubber's repair pipeline, which then owns the demote/upgrade
	// response (Demote/UpgradeOnCorrect are ignored). The scrubber must
	// cover the same number of rows as the bank, and it is included in
	// checkpoints, so checkpoint/resume stays bit-identical.
	Scrub *scrub.Scrubber

	// Scenario, when set, is the composed stress schedule the bank decays
	// under (an internal/scenario Env already attached to the bank via
	// SetModulator). The simulator does not drive it - stressors are pure
	// functions of time - but it is snapshotted into checkpoints and
	// validated on resume, so a run cannot silently resume under a
	// different schedule than the one that produced the snapshot.
	Scenario core.Snapshotter

	// CheckpointEvery, when positive, emits a Checkpoint to CheckpointSink
	// at every multiple of this simulated interval (seconds). Snapshots are
	// taken at event-queue boundaries, so resuming from one replays the
	// remaining events exactly as the uninterrupted run would have.
	CheckpointEvery float64
	// CheckpointSink receives periodic snapshots and, on cancellation, one
	// final snapshot of the state at the point the run stopped. A sink error
	// aborts the run. Required when CheckpointEvery > 0; checkpointing
	// requires the scheduler to implement core.Snapshotter.
	CheckpointSink func(*Checkpoint) error
	// Resume, when set, starts the run from the snapshot instead of from a
	// cold bank: the scheduler, bank, event queue, trace position, and
	// accumulated statistics are restored first. The bank, scheduler, and
	// trace source must be freshly constructed with the same configuration
	// that produced the snapshot.
	Resume *Checkpoint
}

// PendingEvent is one scheduled refresh in the simulator's event queue.
type PendingEvent struct {
	Time float64
	Row  int
}

// Checkpoint is the complete resumable state of a run, captured at an event
// boundary: feeding it back through Options.Resume (with identically
// constructed bank, scheduler, and trace source) continues the run to the
// same Stats, bit for bit, as if it had never stopped. Stats holds the raw
// accumulators only; the derived diagnostics (Violations, Guard,
// FaultsInjected) are recomputed from live state when the resumed run
// finishes. internal/checkpoint serializes this struct to disk.
type Checkpoint struct {
	Time      float64 // simulated time the snapshot was taken (s)
	Duration  float64 // the run's configured duration, for resume validation
	Scheduler string  // scheduler name, for resume validation

	Stats  Stats
	Events []PendingEvent // outstanding refresh events
	Bank   dram.State     // per-row charge, last-restore times, violations

	TraceRead     int64        // records consumed from the trace source
	HavePending   bool         // a look-ahead record is buffered
	Pending       trace.Record // the buffered look-ahead record
	LastTraceTime float64      // time-ordering watermark (-Inf before any record)

	BusyUntil float64 // time the bank is busy until (refresh in flight)

	SchedState []byte // the scheduler stack's core.Snapshotter blob
	ScrubState []byte // the patrol scrubber's core.Snapshotter blob (nil without one)
	// ScenarioState is the scenario Env's core.Snapshotter blob (nil when
	// the run had no composed stress schedule).
	ScenarioState []byte
}

// Stats is the outcome of one run.
type Stats struct {
	Scheduler string
	Duration  float64

	FullRefreshes    int64
	PartialRefreshes int64
	BusyCycles       int64 // cycles the bank was unavailable due to refresh
	Accesses         int64

	// ChargeRestored accumulates the normalized weakest-cell charge
	// delivered by refresh operations; the power model scales it to array
	// restore energy.
	ChargeRestored float64

	Violations int // raw sub-limit sensing events (must be 0 for a safe policy)

	// ECC classification of the violations (populated when Options.ECC is
	// set): corrected + uncorrectable = violations attributable to sensing.
	CorrectedErrors     int64
	UncorrectableErrors int64
	RowsUpgraded        int64

	// FaultsInjected counts the faults delivered by any core.FaultCounter in
	// the scheduler stack or the trace source (internal/fault injectors).
	FaultsInjected int64
	// Guard carries the degradation controller's counters when a
	// core.GuardReporter (internal/guard) is in the scheduler stack.
	Guard core.GuardStats
	// Scrub carries the patrol scrubber's counters when Options.Scrub ran.
	Scrub core.ScrubStats
}

// Refreshes returns the total refresh operation count.
func (s Stats) Refreshes() int64 { return s.FullRefreshes + s.PartialRefreshes }

// OverheadFraction returns the fraction of time the bank was refreshing.
func (s Stats) OverheadFraction(tck float64) float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BusyCycles) * tck / s.Duration
}

// refresh event queue -------------------------------------------------------

// event aliases dram.StreamEvent so the batch queue's period lanes can be
// handed to the fast-forward kernel (dram.Bank.RefreshStream) without
// copying or converting.
type event = dram.StreamEvent

// eventHeap is a binary min-heap ordered by (time, row). It deliberately
// does NOT implement container/heap: that interface boxes every pushed and
// popped element into an interface{}, costing two heap allocations per
// refresh event in the simulator's hottest loop. The inlined sift functions
// below keep events on the slice. The (time, row) order is total - no two
// events share both fields - so the pop sequence is uniquely determined by
// the comparator and independent of the heap's internal layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].T != h[j].T {
		return h[i].T < h[j].T
	}
	return h[i].Row < h[j].Row
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// init establishes the heap invariant over arbitrary contents.
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	top := old[0]
	old[0] = old[n]
	*h = old[:n]
	(*h).siftDown(0)
	return top
}

// Scratch holds the simulator's reusable per-run allocations - the refresh
// event queues (a timing wheel for the scalar backend, the bucket ring for
// the batched one) and the batch gather columns. A Scratch may be reused
// across any number of sequential runs; concurrent runs need one Scratch
// each. The zero value is usable.
type Scratch struct {
	queue eventQueue
	batch batchQueue

	// Batch gather columns: one bucket's worth of (row, time) pairs and
	// their sensed charges.
	bRows    []int
	bTimes   []float64
	bCharge  []float64
	bOps     []core.Op
	bPeriods []float64

	// ffScratch is the fast-forward kernel's gathered row state. Keeping it
	// on the Scratch (not the bank) lets its decay memo stay warm across
	// sequential runs that share a Scratch - the kernel invalidates any row
	// whose retention changed, so reuse across different banks is safe.
	ffScratch dram.StreamScratch
	// ffWindows counts fast-forward kernel windows executed by the last run
	// (a debug/observability counter, deliberately NOT part of Stats - Stats
	// must stay bit-identical across backends).
	ffWindows int
}

// refreshQueue is the queue contract shared by the scalar and batched
// runners; the prologue (initial fill, resume, checkpoint capture) runs
// against it so both backends share one implementation of everything that
// is not the hot loop.
type refreshQueue interface {
	reset()
	size() int
	push(event)
	// pushNext enqueues a re-push scheduled delta after the event being
	// processed; the batched queue uses the hint to keep per-period FIFO
	// lanes sorted by construction, the scalar queue ignores it.
	pushNext(e event, delta float64)
	pop() event
	peekTime() float64
	pendingSorted() []PendingEvent
}

// NewScratch returns a Scratch for a bank with the given number of rows (the
// event queue holds at most one outstanding refresh per row).
func NewScratch(rows int) *Scratch {
	if rows < 0 {
		rows = 0
	}
	return &Scratch{queue: eventQueue{heap: make(eventHeap, 0, rows)}}
}

// scratchPool recycles Scratch buffers across Run/RunContext calls, so even
// callers that never touch the Reusable API run allocation-lean in steady
// state (sweep cells, benchmark loops, campaign experiments).
var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// Reusable is an explicitly reusable simulation context: it owns a Scratch
// and reuses it on every run, for callers that want deterministic buffer
// reuse (per-worker contexts in a parallel sweep, benchmark loops) instead
// of the package-level pool. Not safe for concurrent use; give each
// goroutine its own Reusable.
type Reusable struct {
	scratch Scratch
}

// NewReusable returns a Reusable pre-sized for banks with the given number
// of rows.
func NewReusable(rows int) *Reusable {
	if rows < 0 {
		rows = 0
	}
	return &Reusable{scratch: Scratch{queue: eventQueue{heap: make(eventHeap, 0, rows)}}}
}

// Run is Run with this context's buffers.
func (r *Reusable) Run(bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options) (Stats, error) {
	return runContext(context.Background(), bank, sched, src, opts, &r.scratch)
}

// RunContext is RunContext with this context's buffers.
func (r *Reusable) RunContext(ctx context.Context, bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options) (Stats, error) {
	return runContext(ctx, bank, sched, src, opts, &r.scratch)
}

// staggerFrac spreads row refresh phases deterministically across their
// periods (real controllers spread refreshes across tREFI slots); the
// golden-ratio sequence avoids aligning rows that share a period.
func staggerFrac(row int) float64 {
	const phi = 0.6180339887498949
	// x - floor(x) is bit-identical to math.Mod(x, 1) for finite x >= 0
	// (the subtraction is exact by Sterbenz' lemma) and lets the compiler
	// use the hardware rounding instruction instead of the fmod kernel.
	x := float64(row) * phi
	return x - math.Floor(x)
}

// Run simulates the bank under the scheduler while replaying the trace
// source. Trace records and refreshes interleave in time order; accesses
// notify the scheduler (for VRL-Access) and fully restore the accessed row.
//
// On a mid-run error Run returns the partially-populated Stats accumulated
// so far alongside the error, so a failing run is still debuggable.
func Run(bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options) (Stats, error) {
	return RunContext(context.Background(), bank, sched, src, opts)
}

// RunContext is Run with cooperative cancellation and crash-safety: the
// context is checked at event-queue granularity, and a cancelled or
// deadline-exceeded run stops at the next event boundary, emits a final
// Checkpoint to Options.CheckpointSink (when one is configured), and
// returns the partial Stats with an error wrapping the context's. Use
// errors.Is(err, context.Canceled) to distinguish an interrupted run from a
// failed one.
func RunContext(ctx context.Context, bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options) (Stats, error) {
	scratch := scratchPool.Get().(*Scratch)
	st, err := runContext(ctx, bank, sched, src, opts, scratch)
	scratchPool.Put(scratch)
	return st, err
}

// runContext is the simulator proper; scratch supplies the reusable buffers.
func runContext(ctx context.Context, bank *dram.Bank, sched core.Scheduler, src trace.Source, opts Options, scratch *Scratch) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Duration <= 0 {
		return Stats{}, fmt.Errorf("sim: duration must be positive, got %g", opts.Duration)
	}
	if opts.TCK <= 0 {
		return Stats{}, fmt.Errorf("sim: TCK must be positive, got %g", opts.TCK)
	}
	if opts.CheckpointEvery < 0 {
		return Stats{}, fmt.Errorf("sim: CheckpointEvery must be non-negative, got %g", opts.CheckpointEvery)
	}
	if opts.CheckpointEvery > 0 && opts.CheckpointSink == nil {
		return Stats{}, fmt.Errorf("sim: CheckpointEvery set without a CheckpointSink")
	}
	if opts.Scrub != nil && opts.Scrub.Rows() != bank.Geom.Rows {
		return Stats{}, fmt.Errorf("sim: scrubber patrols %d rows, bank has %d", opts.Scrub.Rows(), bank.Geom.Rows)
	}
	var snap core.Snapshotter
	if opts.CheckpointSink != nil || opts.Resume != nil {
		var ok bool
		snap, ok = sched.(core.Snapshotter)
		if !ok {
			return Stats{}, fmt.Errorf("sim: scheduler %s does not implement core.Snapshotter; checkpoint/resume unavailable", sched.Name())
		}
		// Fail fast on stacks whose inner layers cannot snapshot (e.g. a
		// guard over a fault injector) instead of dying at the first
		// checkpoint boundary.
		if _, err := snap.SnapshotState(); err != nil {
			return Stats{}, fmt.Errorf("sim: scheduler state not snapshottable: %w", err)
		}
	}
	if src == nil {
		src = trace.Empty{}
	}
	st := Stats{Scheduler: sched.Name(), Duration: opts.Duration}

	monitor, hasMonitor := sched.(core.SenseMonitor)
	// finalize fills the diagnostics that remain meaningful even when the
	// run aborts partway: the violations recorded so far, injected-fault
	// counts, and the guard's counters at time now.
	finalize := func(now float64) {
		st.Violations = len(bank.Violations())
		if fc, ok := sched.(core.FaultCounter); ok {
			st.FaultsInjected += fc.FaultsInjected()
		}
		if fc, ok := src.(core.FaultCounter); ok {
			st.FaultsInjected += fc.FaultsInjected()
		}
		if gr, ok := sched.(core.GuardReporter); ok {
			st.Guard = gr.GuardSnapshot(now)
		}
		if opts.Scrub != nil {
			st.Scrub = opts.Scrub.ScrubSnapshot(now)
		}
	}

	if opts.Backend == BackendBatchLUT {
		lutDecay, err := retention.DecayLUTFor(bank.Decay)
		if err != nil {
			return Stats{}, fmt.Errorf("sim: %v", err)
		}
		orig := bank.Decay
		bank.Decay = lutDecay
		defer func() { bank.Decay = orig }()
	}

	rows := bank.Geom.Rows
	// Backend split: both runners share the prologue, drains, checkpointing,
	// and epilogue through the refreshQueue interface; only the hot loop
	// differs. BackendAuto is the batched runner - it is bit-identical to
	// the scalar reference, so there is nothing to trade away.
	batched := opts.Backend != BackendScalar
	var q refreshQueue
	if batched {
		q = &scratch.batch
	} else {
		q = &scratch.queue
	}
	// Schedulers that declare row-independent state let the batched runner
	// hoist a bucket's RefreshOp calls into one batch call.
	bSched, _ := sched.(core.BatchScheduler)
	q.reset()
	scratch.ffWindows = 0
	var (
		next          trace.Record
		havePending   bool
		lastTraceTime = math.Inf(-1)
		traceRead     int64 // records consumed from src, for checkpointing
		now           float64
		busyUntil     float64 // bank unavailable for patrol reads until here
	)

	if cp := opts.Resume; cp != nil {
		if cp.Duration != opts.Duration {
			return st, fmt.Errorf("sim: resume: checkpoint duration %g, options say %g", cp.Duration, opts.Duration)
		}
		if cp.Scheduler != sched.Name() {
			return st, fmt.Errorf("sim: resume: checkpoint is for scheduler %q, got %q", cp.Scheduler, sched.Name())
		}
		if (cp.ScrubState != nil) != (opts.Scrub != nil) {
			return st, fmt.Errorf("sim: resume: checkpoint and options disagree about a patrol scrubber")
		}
		if (cp.ScenarioState != nil) != (opts.Scenario != nil) {
			return st, fmt.Errorf("sim: resume: checkpoint and options disagree about a stress scenario")
		}
		if err := snap.RestoreState(cp.SchedState); err != nil {
			return st, fmt.Errorf("sim: resume: %w", err)
		}
		if opts.Scrub != nil {
			if err := opts.Scrub.RestoreState(cp.ScrubState); err != nil {
				return st, fmt.Errorf("sim: resume: %w", err)
			}
		}
		if opts.Scenario != nil {
			if err := opts.Scenario.RestoreState(cp.ScenarioState); err != nil {
				return st, fmt.Errorf("sim: resume: %w", err)
			}
		}
		if err := bank.SetState(cp.Bank); err != nil {
			return st, fmt.Errorf("sim: resume: %w", err)
		}
		st = cp.Stats
		st.Scheduler = sched.Name()
		st.Duration = opts.Duration
		// The queues and the batched sense kernel rely on the one-
		// outstanding-event-per-row invariant; a corrupt checkpoint must
		// fail here, not silently diverge later.
		seenRow := make([]bool, rows)
		for _, ev := range cp.Events {
			if ev.Row < 0 || ev.Row >= rows {
				return st, fmt.Errorf("sim: resume: pending event for row %d outside [0,%d)", ev.Row, rows)
			}
			if seenRow[ev.Row] {
				return st, fmt.Errorf("sim: resume: duplicate pending event for row %d", ev.Row)
			}
			seenRow[ev.Row] = true
			q.push(event{T: ev.Time, Row: ev.Row})
		}
		// Re-position the (freshly opened) trace source by replaying the
		// records the checkpointed run had already consumed; the buffered
		// look-ahead record itself is restored from the snapshot verbatim.
		for i := int64(0); i < cp.TraceRead; i++ {
			if _, err := src.Next(); err != nil {
				if err == io.EOF {
					err = fmt.Errorf("sim: resume: trace ended after %d records, checkpoint consumed %d", i, cp.TraceRead)
				}
				finalize(cp.Time)
				return st, err
			}
		}
		traceRead = cp.TraceRead
		havePending = cp.HavePending
		next = cp.Pending
		lastTraceTime = cp.LastTraceTime
		now = cp.Time
		busyUntil = cp.BusyUntil
	} else {
		for r := 0; r < rows; r++ {
			p := sched.Period(r)
			if p <= 0 {
				return Stats{}, fmt.Errorf("sim: scheduler period for row %d is %g", r, p)
			}
			q.push(event{T: staggerFrac(r) * p, Row: r})
		}
		// Trace look-ahead record. The readers in internal/trace enforce time
		// ordering themselves, but a custom Source is only trusted as far as
		// the check below: a record whose timestamp precedes its
		// predecessor's would silently mis-interleave with the refresh
		// events, so it is an error.
		var err error
		next, err = src.Next()
		havePending = err == nil
		if err == nil {
			traceRead++
		} else if err != io.EOF {
			finalize(0)
			return st, err
		}
	}

	// drainScrub runs every patrol tick due at or before until, interleaved
	// with the trace so accesses and patrol reads stay in time order. It runs
	// BEFORE drainTrace(until) at each event, which keeps the invariant that a
	// patrol read never observes a bank mutation from its own future.
	var drainTrace func(until float64) error
	drainScrub := func(until float64) error {
		for opts.Scrub != nil {
			due := opts.Scrub.NextDue()
			if due > until || due >= opts.Duration {
				return nil
			}
			if err := drainTrace(due); err != nil {
				return err
			}
			if _, err := opts.Scrub.Tick(due, busyUntil); err != nil {
				return err
			}
		}
		return nil
	}

	drainTrace = func(until float64) error {
		for havePending && next.Time <= until {
			if next.Time < lastTraceTime {
				return fmt.Errorf("sim: trace source out of order: record at t=%.9g after t=%.9g", next.Time, lastTraceTime)
			}
			lastTraceTime = next.Time
			if next.Time >= opts.Duration {
				havePending = false
				break
			}
			if next.Row >= 0 && next.Row < rows {
				if _, err := bank.Access(next.Row, next.Time); err != nil {
					return err
				}
				sched.OnAccess(next.Row, next.Time)
				st.Accesses++
			}
			var err error
			next, err = src.Next()
			if err == io.EOF {
				havePending = false
			} else if err != nil {
				return err
			}
			if err == nil {
				traceRead++
			}
		}
		return nil
	}

	// capture snapshots the run's state at an event boundary. It is
	// read-only, so taking (or not taking) a snapshot cannot perturb the
	// simulation - the property the resume-equivalence tests rely on.
	capture := func(at float64) (*Checkpoint, error) {
		blob, err := snap.SnapshotState()
		if err != nil {
			return nil, err
		}
		cp := &Checkpoint{
			Time:          at,
			Duration:      opts.Duration,
			Scheduler:     sched.Name(),
			Stats:         st,
			Events:        q.pendingSorted(),
			Bank:          bank.State(),
			TraceRead:     traceRead,
			HavePending:   havePending,
			LastTraceTime: lastTraceTime,
			BusyUntil:     busyUntil,
			SchedState:    blob,
		}
		if opts.Scrub != nil {
			if cp.ScrubState, err = opts.Scrub.SnapshotState(); err != nil {
				return nil, err
			}
		}
		if opts.Scenario != nil {
			if cp.ScenarioState, err = opts.Scenario.SnapshotState(); err != nil {
				return nil, err
			}
		}
		if havePending {
			cp.Pending = next
		}
		return cp, nil
	}

	nextCP := math.Inf(1)
	if opts.CheckpointEvery > 0 {
		// Continue the absolute checkpoint cadence across resumes: the next
		// boundary is the first multiple of CheckpointEvery past the start.
		nextCP = opts.CheckpointEvery * (math.Floor(now/opts.CheckpointEvery) + 1)
	}

	// postRefresh is the shared tail of one refresh event - scheduler
	// feedback, ECC classification and repair routing, accounting, and the
	// row's next refresh - identical for both backends. It returns the time
	// of the next event it pushed for the row, so the batched loop can track
	// the earliest queued time without re-peeking the queue per entry.
	// period is the row's refresh period when the caller already gathered it
	// (the batched loop, when no ECC repair can demote a row mid-bucket), or
	// negative to read it from the scheduler here - after any demotion this
	// event's ECC outcome just applied.
	postRefresh := func(row int, t float64, op core.Op, res dram.RefreshResult, period float64) (float64, error) {
		if hasMonitor {
			// Report before rescheduling so a demotion or promotion decided
			// here shapes the row's very next refresh interval.
			monitor.OnSense(row, t, res.ChargeBefore)
		}
		if opts.ECC != nil && res.ChargeBefore < retention.SenseLimit {
			outcome := opts.ECC.Classify(res.ChargeBefore)
			switch outcome {
			case ecc.Corrected:
				st.CorrectedErrors++
			case ecc.Uncorrectable:
				st.UncorrectableErrors++
			}
			if opts.Scrub != nil {
				// The scrubber owns the repair response: a classified sense is
				// a detection event exactly like a patrol read, so the pipeline
				// converges no matter which path sees the sag first.
				if err := opts.Scrub.OnEccEvent(row, outcome); err != nil {
					return 0, err
				}
			} else if outcome == ecc.Corrected {
				if opts.DemoteOnCorrect {
					if dm, ok := sched.(core.Demoter); ok {
						dm.Demote(row)
					}
				} else if opts.UpgradeOnCorrect {
					if up, ok := sched.(core.Upgrader); ok {
						up.Upgrade(row)
						st.RowsUpgraded++
					}
				}
			}
		}
		if op.Full {
			st.FullRefreshes++
		} else {
			st.PartialRefreshes++
		}
		st.BusyCycles += int64(op.Cycles)
		st.ChargeRestored += res.ChargeRestored
		busyUntil = t + float64(op.Cycles)*opts.TCK
		p := period
		if p < 0 {
			p = sched.Period(row)
		}
		next := t + p
		q.pushNext(event{T: next, Row: row}, p)
		return next, nil
	}

	// processEvent runs one full scalar refresh: sense+restore through the
	// scalar bank path, then the shared tail. The scalar backend runs on it
	// exclusively; the batched backend uses it for events a sub-bucket
	// period pushes back into the open batch window.
	processEvent := func(ev event) error {
		op := sched.RefreshOp(ev.Row, ev.T)
		res, err := bank.Refresh(ev.Row, ev.T, op.Alpha)
		if err != nil {
			return err
		}
		_, err = postRefresh(ev.Row, ev.T, op, res, -1)
		return err
	}

	// Fast-forward eligibility is a run-level property: every dynamic
	// mutation path into the refresh pipeline must be statically absent
	// (monitors and ECC can reshape schedules mid-flight; a non-streamable
	// decay or an opaque modulator would change the arithmetic) and the
	// scheduler must expose both its stability horizon and its decision
	// columns. Per-window caps (trace, scrub, checkpoints, scenario change-
	// points) are then handled by the horizon computation inside the loop.
	ffEligible := batched &&
		(opts.Backend == BackendAuto || opts.Backend == BackendFastForward) &&
		opts.ECC == nil && !hasMonitor && bank.Streamable()
	var (
		ffSteady core.SteadyScheduler
		ffMod    dram.SteadyModulator
		ffCfg    dram.StreamConfig
	)
	if ffEligible {
		steady, okS := sched.(core.SteadyScheduler)
		streamer, okV := sched.(core.OpStreamer)
		if !okS || !okV {
			ffEligible = false
		} else {
			ffSteady = steady
			view := streamer.StreamView()
			ffCfg = dram.StreamConfig{
				Period:        view.Period,
				Periods:       view.Periods,
				RCount:        view.RCount,
				MPRSF:         view.MPRSF,
				AlphaFull:     view.Full.Alpha,
				CyclesFull:    view.Full.Cycles,
				AlphaPartial:  view.Partial.Alpha,
				CyclesPartial: view.Partial.Cycles,
			}
		}
		if mod := bank.ActiveModulator(); mod != nil && ffEligible {
			sm, ok := mod.(dram.SteadyModulator)
			if !ok {
				ffEligible = false
			} else {
				ffMod = sm
			}
		}
	}

	bq := &scratch.batch
	for q.size() > 0 {
		if err := ctx.Err(); err != nil {
			// A final snapshot lets the caller persist the state the run
			// stopped in, so an interrupted run resumes instead of restarts.
			if opts.CheckpointSink != nil {
				cp, cerr := capture(now)
				if cerr == nil {
					cerr = opts.CheckpointSink(cp)
				}
				if cerr != nil {
					finalize(now)
					return st, fmt.Errorf("sim: final checkpoint at t=%.6g: %v (run cancelled: %w)", now, cerr, err)
				}
			}
			finalize(now)
			return st, fmt.Errorf("sim: cancelled at t=%.6g: %w", now, err)
		}
		for opts.CheckpointSink != nil && nextCP < opts.Duration && q.peekTime() >= nextCP {
			cp, err := capture(nextCP)
			if err == nil {
				err = opts.CheckpointSink(cp)
			}
			if err != nil {
				finalize(now)
				return st, fmt.Errorf("sim: checkpoint at t=%.6g: %w", nextCP, err)
			}
			nextCP += opts.CheckpointEvery
		}
		if !batched {
			ev := q.pop()
			if ev.T >= opts.Duration {
				continue
			}
			now = ev.T
			if err := drainScrub(ev.T); err != nil {
				finalize(ev.T)
				return st, err
			}
			if err := drainTrace(ev.T); err != nil {
				finalize(ev.T)
				return st, err
			}
			if err := processEvent(ev); err != nil {
				finalize(ev.T)
				return st, err
			}
			continue
		}

		// Batched: drain every event in the cursor bucket up to the nearest
		// non-refresh boundary, sense the whole batch through the columnar
		// kernel, then apply the ops in (time, row) order. The horizon h is
		// capped below every boundary where non-refresh activity (a
		// checkpoint, a patrol tick, a trace record) could interleave, so no
		// bank state a batched sense depends on can change mid-batch.
		tFirst := q.peekTime()
		if tFirst >= opts.Duration {
			// tFirst is the queue minimum, so no outstanding event can fire
			// inside the run window anymore; the scalar path discards them
			// one pop at a time, with identical effect.
			break
		}
		if err := drainScrub(tFirst); err != nil {
			finalize(tFirst)
			return st, err
		}
		if err := drainTrace(tFirst); err != nil {
			finalize(tFirst)
			return st, err
		}
		if ffEligible {
			// Compose the quiescence horizon: nothing non-refresh may be able
			// to fire strictly below it. Sources that do not apply contribute
			// +Inf; the scheduler contributes its own stability bound.
			cpCap, scrubDue, traceNext := ffInf(), ffInf(), ffInf()
			if opts.CheckpointSink != nil {
				cpCap = nextCP
			}
			if opts.Scrub != nil {
				scrubDue = opts.Scrub.NextDue()
			}
			if havePending {
				traceNext = next.Time
			}
			hf := ffHorizon(opts.Duration, cpCap, scrubDue, traceNext, ffSteady.StablePeriodUntil(-1, tFirst))
			if ffMod != nil {
				// The scenario must be exactly nominal over every decay
				// interval the window can evaluate, which reach back to the
				// oldest last-restore time, not just to tFirst.
				if u := ffMod.NominalUntil(bank.MinLastRestore()); u < hf {
					hf = u
				}
			}
			// Engagement gate, purely a cost heuristic (any choice keeps the
			// output bit-identical): the kernels pay a full scan of every
			// lane row per window, so a window too short for even one lap of
			// the densest lane - the norm on trace-dense runs, where the next
			// record caps the horizon microseconds away - must go straight to
			// the batch path instead of thrashing that scan per record.
			if hf-tFirst >= ffMinLap(bq.lanes) && (bq.mixedQuietBelow(hf) || bq.adoptMixed(ffCfg.Period, ffCfg.Periods)) {
				ffGrowLanes(bq.lanes, hf)
				// Kernel tiering: the macro kernel refuses (cleanly, before
				// mutating anything) any lane shape outside its verified
				// regular-lap structure; the rotor kernel then handles the
				// same window event-by-event, bailing with partial progress
				// only at a cross-lane row collision it cannot re-push.
				res, err := bank.RefreshMacro(&scratch.ffScratch, bq.lanes, hf, &ffCfg, st.ChargeRestored)
				if err == nil && res.Bailed && res.Events == 0 {
					res, err = bank.RefreshStream(&scratch.ffScratch, bq.lanes, hf, &ffCfg, st.ChargeRestored)
				}
				if res.Events > 0 {
					// The kernel replayed res.Events iterations of the
					// refresh pipeline; fold its accounting into Stats
					// exactly as the per-event tail would have. Cycle counts
					// are integer sums (associative, so the bulk product is
					// exact); ChargeRestored was threaded through the kernel
					// in event order and comes back as the new accumulator
					// value.
					st.FullRefreshes += res.Fulls
					st.PartialRefreshes += res.Partials
					st.BusyCycles += res.Fulls*int64(ffCfg.CyclesFull) + res.Partials*int64(ffCfg.CyclesPartial)
					st.ChargeRestored = res.ChargeRestored
					busyUntil = res.LastTime + float64(res.LastCycles)*opts.TCK
					now = res.LastTime
					scratch.ffWindows++
				}
				if err != nil {
					finalize(now)
					return st, err
				}
				if res.Bailed {
					// The kernel stopped before an event it could not re-push
					// exactly; that event is the queue minimum (the mixed
					// intake is quiet below hf), so one scalar step clears it.
					ev := q.pop()
					now = ev.T
					if err := processEvent(ev); err != nil {
						finalize(ev.T)
						return st, err
					}
					continue
				}
				if res.Events > 0 {
					continue
				}
				// Events == 0 and no bail: the lanes held nothing below hf
				// after all (tFirst came from a boundary edge); fall through
				// to the batch path, which guarantees progress.
			}
		}
		h := tFirst + batchWindow
		if opts.Duration < h {
			h = opts.Duration
		}
		if opts.CheckpointSink != nil && nextCP < h {
			h = nextCP
		}
		if opts.Scrub != nil {
			if due := opts.Scrub.NextDue(); due < h {
				h = due
			}
		}
		if havePending && next.Time < h {
			h = next.Time
		}
		scratch.bRows, scratch.bTimes = bq.popBatch(h, scratch.bRows[:0], scratch.bTimes[:0])
		bRows, bTimes := scratch.bRows, scratch.bTimes
		n := len(bRows)
		if n == 0 {
			// Every cap on h sits strictly above tFirst, so an empty batch
			// can only mean a floating-point boundary edge (an event hashed
			// into a bucket whose end precedes it). Process one event
			// scalar-style to guarantee progress.
			ev := q.pop()
			now = ev.T
			if err := processEvent(ev); err != nil {
				finalize(ev.T)
				return st, err
			}
			continue
		}
		if cap(scratch.bCharge) < n {
			scratch.bCharge = make([]float64, n)
		}
		bCharge := scratch.bCharge[:n]
		if err := bank.ChargeAtBatch(bRows, bTimes, bCharge); err != nil {
			finalize(tFirst)
			return st, err
		}
		var bOps []core.Op
		var bPeriods []float64
		if bSched != nil {
			if cap(scratch.bOps) < n {
				scratch.bOps = make([]core.Op, n)
			}
			bOps = scratch.bOps[:n]
			bSched.RefreshOps(bRows, bTimes, bOps)
			if opts.ECC == nil {
				// No ECC means no mid-bucket demotes/upgrades, so periods
				// are immutable across the batch and can be gathered too.
				if cap(scratch.bPeriods) < n {
					scratch.bPeriods = make([]float64, n)
				}
				bPeriods = scratch.bPeriods[:n]
				bSched.Periods(bRows, bPeriods)
			}
		}
		// qNext tracks a lower bound on the earliest queued event time so
		// the merge check below is one float compare per entry instead of a
		// queue peek. Re-pushes from postRefresh are folded in as they
		// happen; a full peek runs only when the bound says a queued event
		// might precede the next batch entry.
		qNext := bq.peekTime()
		for i := 0; i < n; i++ {
			evT, evRow := bTimes[i], bRows[i]
			// A row whose period is shorter than the bucket width can push
			// its next refresh back inside the open batch window; process
			// those scalar-style so the total (time, row) order - and with
			// it every scheduler and accounting interaction - is preserved.
			// Such a row cannot still be in the batch tail (one outstanding
			// event per row), so the precomputed senses stay valid.
			for qNext <= evT && bq.size() > 0 {
				pe := bq.peek()
				if pe.T > evT || (pe.T == evT && pe.Row > evRow) {
					qNext = pe.T
					break
				}
				bq.pop()
				now = pe.T
				if err := processEvent(pe); err != nil {
					finalize(pe.T)
					return st, err
				}
				qNext = bq.peekTime()
			}
			now = evT
			var op core.Op
			if bOps != nil {
				op = bOps[i]
			} else {
				op = sched.RefreshOp(evRow, evT)
			}
			res, err := bank.RestoreSensed(evRow, evT, op.Alpha, bCharge[i])
			if err != nil {
				finalize(evT)
				return st, err
			}
			p := -1.0
			if bPeriods != nil {
				p = bPeriods[i]
			}
			nt, err := postRefresh(evRow, evT, op, res, p)
			if err != nil {
				finalize(evT)
				return st, err
			}
			if nt < qNext {
				qNext = nt
			}
		}
	}
	if err := drainScrub(opts.Duration); err != nil {
		finalize(opts.Duration)
		return st, err
	}
	if err := drainTrace(opts.Duration); err != nil {
		finalize(opts.Duration)
		return st, err
	}
	// Closing integrity sweep: every row must still be sensable. A failed
	// sweep still returns the diagnostics accumulated so far.
	if _, err := bank.CheckAll(opts.Duration); err != nil {
		finalize(opts.Duration)
		return st, err
	}
	finalize(opts.Duration)
	return st, nil
}
