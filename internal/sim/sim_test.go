package sim

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

type fixture struct {
	params  device.Params
	profile *retention.BankProfile
	rm      core.RestoreModel
	opts    Options
}

func setup(t *testing.T) *fixture {
	t.Helper()
	p := device.Default90nm()
	prof, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		params:  p,
		profile: prof,
		rm:      rm,
		opts:    Options{Duration: 0.768, TCK: p.TCK},
	}
}

func (f *fixture) bank(t *testing.T, pat retention.Pattern) *dram.Bank {
	t.Helper()
	b, err := dram.NewBank(f.profile, retention.ExpDecay{}, pat)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRAIDRRefreshAccounting(t *testing.T) {
	f := setup(t)
	sched, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	// Expected refreshes over 768 ms: 68 rows x 12 + 101 x 6 + 145 x 4 +
	// 7878 x 3 = 25636, all full, 19 cycles each.
	const wantRefreshes = 68*12 + 101*6 + 145*4 + 7878*3
	if st.FullRefreshes != wantRefreshes {
		t.Fatalf("fulls = %d, want %d", st.FullRefreshes, wantRefreshes)
	}
	if st.PartialRefreshes != 0 {
		t.Fatal("RAIDR must not issue partial refreshes")
	}
	if st.BusyCycles != wantRefreshes*19 {
		t.Fatalf("busy = %d, want %d", st.BusyCycles, wantRefreshes*19)
	}
	if st.Violations != 0 {
		t.Fatalf("violations = %d", st.Violations)
	}
	if st.Refreshes() != wantRefreshes {
		t.Fatal("Refreshes() inconsistent")
	}
	ovh := st.OverheadFraction(f.params.TCK)
	if ovh <= 0 || ovh > 0.01 {
		t.Fatalf("overhead fraction %v implausible", ovh)
	}
}

func TestVRLBeatsRAIDRSafely(t *testing.T) {
	f := setup(t)
	cfg := core.Config{Restore: f.rm}
	raidrS, err := core.NewRAIDR(f.profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raidr, err := Run(f.bank(t, retention.PatternAllZeros), raidrS, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	vrlS, err := core.NewVRL(f.profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vrl, err := Run(f.bank(t, retention.PatternAllZeros), vrlS, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if vrl.BusyCycles >= raidr.BusyCycles {
		t.Fatalf("VRL (%d) must beat RAIDR (%d)", vrl.BusyCycles, raidr.BusyCycles)
	}
	ratio := float64(vrl.BusyCycles) / float64(raidr.BusyCycles)
	if ratio < 0.70 || ratio > 0.85 {
		t.Fatalf("VRL/RAIDR = %v, calibrated band is [0.70, 0.85] (paper: 0.77)", ratio)
	}
	if vrl.Violations != 0 {
		t.Fatalf("VRL caused %d violations", vrl.Violations)
	}
	if vrl.PartialRefreshes == 0 {
		t.Fatal("VRL issued no partial refreshes")
	}
	// Refresh counts match: same schedule, different op mix.
	if vrl.Refreshes() != raidr.Refreshes() {
		t.Fatalf("op counts differ: %d vs %d", vrl.Refreshes(), raidr.Refreshes())
	}
}

func TestVRLSafeUnderWorstPattern(t *testing.T) {
	// The guardband must cover the worst-case stored pattern.
	f := setup(t)
	sched, err := core.NewVRL(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(f.bank(t, retention.PatternAlternating), sched, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("worst-pattern violations = %d", st.Violations)
	}
}

func TestUnderatedProfileInjectsFailures(t *testing.T) {
	// Failure injection: a controller that consumes raw (un-derated)
	// retention values and schedules at the bare sensing limit loses data
	// under the worst-case stored pattern - proving the bank model actually
	// polices integrity. (With the profiler's worst-pattern derating in
	// place, the same configuration is safe: see TestVRLSafeUnderWorstPattern.)
	f := setup(t)
	unsafe := &retention.BankProfile{
		Geom:     f.profile.Geom,
		True:     f.profile.True,
		Profiled: f.profile.True, // misuse: no derating applied
	}
	sched, err := core.NewVRL(unsafe, core.Config{Restore: f.rm, Guardband: retention.SenseLimit})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := dram.NewBank(unsafe, retention.ExpDecay{}, retention.PatternAlternating)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(bank, sched, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations == 0 {
		t.Fatal("un-derated scheduling under the worst pattern should violate integrity")
	}
}

func TestVRLAccessUsesTrace(t *testing.T) {
	f := setup(t)
	cfg := core.Config{Restore: f.rm}
	spec, err := trace.FindBenchmark("bgsave")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(f.profile.Geom.Rows, f.opts.Duration, 7)
	if err != nil {
		t.Fatal(err)
	}

	vrlS, err := core.NewVRL(f.profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vrl, err := Run(f.bank(t, retention.PatternAllZeros), vrlS, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	vaS, err := core.NewVRLAccess(f.profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	va, err := Run(f.bank(t, retention.PatternAllZeros), vaS, trace.NewSliceSource(recs), f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if va.Accesses != int64(len(recs)) {
		t.Fatalf("replayed %d accesses, want %d", va.Accesses, len(recs))
	}
	if va.BusyCycles >= vrl.BusyCycles {
		t.Fatalf("VRL-Access (%d) must beat VRL (%d) on a high-coverage trace", va.BusyCycles, vrl.BusyCycles)
	}
	if va.Violations != 0 {
		t.Fatalf("violations = %d", va.Violations)
	}
}

func TestJEDECOverheadDwarfsRAIDR(t *testing.T) {
	f := setup(t)
	jed, err := core.NewJEDEC(f.params.TRetNom, f.rm)
	if err != nil {
		t.Fatal(err)
	}
	jst, err := Run(f.bank(t, retention.PatternAllZeros), jed, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	raidrS, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	rst, err := Run(f.bank(t, retention.PatternAllZeros), raidrS, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if jst.BusyCycles <= 3*rst.BusyCycles {
		t.Fatalf("JEDEC (%d) should far exceed RAIDR (%d)", jst.BusyCycles, rst.BusyCycles)
	}
	if jst.Violations != 0 {
		t.Fatal("JEDEC must be safe")
	}
}

func TestRunOptionValidation(t *testing.T) {
	f := setup(t)
	sched, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, Options{Duration: 0, TCK: 1}); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, Options{Duration: 1, TCK: 0}); err == nil {
		t.Fatal("zero TCK must be rejected")
	}
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, Options{Duration: -0.1, TCK: 1}); err == nil {
		t.Fatal("negative duration must be rejected")
	}
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, Options{Duration: 1, TCK: -1e-9}); err == nil {
		t.Fatal("negative TCK must be rejected")
	}
	opts := Options{Duration: 1, TCK: 1e-9, CheckpointEvery: -0.5}
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, opts); err == nil {
		t.Fatal("negative CheckpointEvery must be rejected")
	}
	opts = Options{Duration: 1, TCK: 1e-9, CheckpointEvery: 0.5} // no sink
	if _, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, opts); err == nil {
		t.Fatal("CheckpointEvery without a CheckpointSink must be rejected")
	}
}

func TestRunDeterminism(t *testing.T) {
	f := setup(t)
	run := func() Stats {
		sched, err := core.NewVRL(f.profile, core.Config{Restore: f.rm})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(f.bank(t, retention.PatternAllZeros), sched, nil, f.opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

func TestTraceRecordsOutsideWindowIgnored(t *testing.T) {
	f := setup(t)
	sched, err := core.NewVRLAccess(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{Time: 0.1, Op: trace.Read, Row: 5},
		{Time: 5.0, Op: trace.Read, Row: 6}, // beyond the window
	}
	st, err := Run(f.bank(t, retention.PatternAllZeros), sched, trace.NewSliceSource(recs), f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 1 {
		t.Fatalf("accesses = %d, want 1", st.Accesses)
	}
}

func TestOutOfRangeRowsSkipped(t *testing.T) {
	f := setup(t)
	sched, err := core.NewVRLAccess(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{{Time: 0.1, Op: trace.Read, Row: 1 << 30}}
	st, err := Run(f.bank(t, retention.PatternAllZeros), sched, trace.NewSliceSource(recs), f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 0 {
		t.Fatal("out-of-range row must be skipped, not counted")
	}
}
