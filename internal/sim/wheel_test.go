package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/trace"
)

// TestWheelMatchesHeapPopOrder is the queue-level property: against random
// workloads of periodic refresh-style events - including periods far past
// the wheel horizon, ties in time, and interleaved push/pop - the timing
// wheel must emit exactly the (time, row) sequence the reference binary
// heap does.
func TestWheelMatchesHeapPopOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(200)
		wheel := eventQueue{}
		heap := eventQueue{useHeap: true}
		periods := make([]float64, rows)
		for r := 0; r < rows; r++ {
			// Periods from one bucket width up to ~4x the wheel horizon.
			periods[r] = wheelWidth * math.Pow(2, 16*rng.Float64())
			e := event{T: staggerFrac(r) * periods[r], Row: r}
			wheel.push(e)
			heap.push(e)
		}
		horizon := 0.7
		for heap.size() > 0 {
			if wheel.size() != heap.size() {
				return false
			}
			if wheel.peekTime() != heap.peekTime() {
				return false
			}
			we, he := wheel.pop(), heap.pop()
			if we != he {
				return false
			}
			if he.T+periods[he.Row] < horizon {
				next := event{T: he.T + periods[he.Row], Row: he.Row}
				wheel.push(next)
				heap.push(next)
			}
		}
		return wheel.size() == 0 && math.IsInf(wheel.peekTime(), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWheelTieOrder pins the tie-break: events sharing one timestamp pop in
// row order from both implementations.
func TestWheelTieOrder(t *testing.T) {
	wheel := eventQueue{}
	heap := eventQueue{useHeap: true}
	for _, r := range []int{5, 1, 9, 3, 7} {
		e := event{T: 0.125, Row: r}
		wheel.push(e)
		heap.push(e)
	}
	for _, want := range []int{1, 3, 5, 7, 9} {
		we, he := wheel.pop(), heap.pop()
		if we != he || we.Row != want {
			t.Fatalf("tie pop diverged: wheel %+v heap %+v want row %d", we, he, want)
		}
	}
}

// TestWheelSteadyStateZeroAllocs is the per-event allocation gate: once the
// wheel's buckets have warmed through a few horizons of a realistic
// periodic workload (including overflow rebases), a pop+push cycle must not
// allocate at all.
func TestWheelSteadyStateZeroAllocs(t *testing.T) {
	const rows = 2048
	var wheel eventQueue
	periods := make([]float64, rows)
	for r := 0; r < rows; r++ {
		periods[r] = 64e-3 * float64(1+r%8) // 64..512 ms, spanning rebases
		wheel.push(event{T: staggerFrac(r) * periods[r], Row: r})
	}
	cycle := func(n int) {
		for i := 0; i < n; i++ {
			e := wheel.pop()
			wheel.push(event{T: e.T + periods[e.Row], Row: e.Row})
		}
	}
	cycle(10 * rows) // warm every bucket and the overflow ring
	allocs := testing.AllocsPerRun(5, func() { cycle(rows) })
	if allocs != 0 {
		t.Fatalf("steady-state wheel pop+push allocates %v per %d events, want 0", allocs, rows)
	}
}

// wheelHarness builds one fully-featured run configuration: a mis-binned
// retention profile (so ECC classification and repair actually fire), a
// choice of scheduler, an access trace, checkpointing, and optionally the
// patrol scrubber.
type wheelHarness struct {
	geom    device.BankGeometry
	profile *retention.BankProfile
	rm      core.RestoreModel
	recs    []trace.Record
	opts    Options
}

func newWheelHarness(t *testing.T, seed int64) *wheelHarness {
	t.Helper()
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 512, Cols: 32}
	prof, err := retention.NewSampledProfile(geom, retention.DefaultCellDistribution(), seed)
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := fault.MisBinProfile(prof, 0.05, retention.RAIDRBins, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, geom)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, 2000)
	for i := range recs {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		recs[i] = trace.Record{Time: float64(i) * 0.768 / float64(len(recs)), Op: op, Row: (i * 37) % geom.Rows}
	}
	cls := ecc.DefaultClassifier()
	return &wheelHarness{
		geom:    geom,
		profile: bad,
		rm:      rm,
		recs:    recs,
		opts:    Options{Duration: 0.768, TCK: p.TCK, ECC: &cls},
	}
}

func (h *wheelHarness) sched(t *testing.T, name string) core.Scheduler {
	t.Helper()
	cfg := core.Config{Restore: h.rm}
	var (
		s   core.Scheduler
		err error
	)
	switch name {
	case "jedec":
		s, err = core.NewJEDEC(device.Default90nm().TRetNom, h.rm)
	case "raidr":
		s, err = core.NewRAIDR(h.profile, cfg)
	case "vrl":
		s, err = core.NewVRL(h.profile, cfg)
	case "vrl-access":
		s, err = core.NewVRLAccess(h.profile, cfg)
	default:
		t.Fatalf("unknown scheduler %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runOnce executes one full checkpointed run on the requested queue
// implementation and returns the stats plus the gob-encoded checkpoint
// stream.
func (h *wheelHarness) runOnce(t *testing.T, schedName string, withScrub, useHeap bool) (Stats, [][]byte) {
	t.Helper()
	bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	sched := h.sched(t, schedName)
	opts := h.opts
	// This harness compares the two scalar queue implementations; pin the
	// scalar backend so BackendAuto's batched queue doesn't shadow both.
	opts.Backend = BackendScalar
	if withScrub {
		store, err := scrub.NewBankStore(bank, *opts.ECC)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := scrub.New(store, scrub.Config{
			Sched:  sched,
			Spares: 64,
			Reprofile: func(row int) (float64, error) {
				return profiler.ProfileRow(h.profile, retention.ExpDecay{}, row, profiler.Options{})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		opts.Scrub = scr
	}
	var blobs [][]byte
	opts.CheckpointEvery = opts.Duration / 4
	opts.CheckpointSink = func(cp *Checkpoint) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			return err
		}
		blobs = append(blobs, buf.Bytes())
		return nil
	}
	r := NewReusable(h.geom.Rows)
	r.scratch.queue.useHeap = useHeap
	st, err := r.Run(bank, sched, trace.NewSliceSource(h.recs), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, blobs
}

// TestWheelMatchesHeapFullRuns is the keystone equivalence property of the
// queue swap: across all four schedulers, scrub on and off, and two profile
// seeds, a run on the timing wheel must produce bit-identical Stats and
// bit-identical serialized checkpoints to the same run on the reference
// binary heap.
func TestWheelMatchesHeapFullRuns(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		h := newWheelHarness(t, seed)
		for _, schedName := range []string{"jedec", "raidr", "vrl", "vrl-access"} {
			for _, withScrub := range []bool{false, true} {
				name := fmt.Sprintf("seed%d/%s/scrub=%v", seed, schedName, withScrub)
				t.Run(name, func(t *testing.T) {
					heapStats, heapBlobs := h.runOnce(t, schedName, withScrub, true)
					wheelStats, wheelBlobs := h.runOnce(t, schedName, withScrub, false)
					if !reflect.DeepEqual(heapStats, wheelStats) {
						t.Fatalf("stats diverged:\nheap:  %+v\nwheel: %+v", heapStats, wheelStats)
					}
					if len(heapBlobs) != len(wheelBlobs) {
						t.Fatalf("checkpoint counts diverged: %d vs %d", len(heapBlobs), len(wheelBlobs))
					}
					if len(heapBlobs) == 0 {
						t.Fatal("run produced no checkpoints; the blob comparison is vacuous")
					}
					for i := range heapBlobs {
						if !bytes.Equal(heapBlobs[i], wheelBlobs[i]) {
							t.Fatalf("checkpoint %d blob diverged between queue implementations", i)
						}
					}
				})
			}
		}
	}
}
