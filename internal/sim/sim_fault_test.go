package sim

import (
	"errors"
	"strings"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

// TestSenseExactlyAtLimitIsNotAnError pins the >= / < boundary of the
// sensing comparison: a one-row bank refreshed at exactly its retention time
// with a perfect restore senses charge 2^-1 = 0.5 on every operation -
// exactly retention.SenseLimit - and must finish with zero violations and
// zero ECC-classified errors.
func TestSenseExactlyAtLimitIsNotAnError(t *testing.T) {
	f := setup(t)
	prof := &retention.BankProfile{
		Geom:     device.BankGeometry{Rows: 1, Cols: 32},
		True:     []float64{0.064},
		Profiled: []float64{0.064},
	}
	b, err := dram.NewBank(prof, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	rm := f.rm
	rm.AlphaFull = 1 // perfect restore so every inter-refresh decay starts from full charge
	sched, err := core.NewJEDEC(0.064, rm)
	if err != nil {
		t.Fatal(err)
	}
	// Duration covers the refreshes at t = 0 and t = 0.064 only: a single
	// heap reschedule keeps the timestamp exact, so the sensed charge is
	// exactly math.Exp2(-1) = 0.5. Longer runs accumulate float error in the
	// event times and drift a ULP below the limit, which is not the boundary
	// under test.
	cls := ecc.DefaultClassifier()
	st, err := Run(b, sched, nil, Options{Duration: 0.096, TCK: f.params.TCK, ECC: &cls})
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRefreshes == 0 {
		t.Fatal("no refreshes issued; the boundary was never exercised")
	}
	if st.Violations != 0 {
		t.Fatalf("charge exactly at the sensing limit recorded %d violations", st.Violations)
	}
	if st.CorrectedErrors != 0 || st.UncorrectableErrors != 0 {
		t.Fatalf("ECC classified %d/%d errors for charge at the limit",
			st.CorrectedErrors, st.UncorrectableErrors)
	}
}

// failingSource yields n good records and then a non-EOF error.
type failingSource struct {
	n    int
	errv error
}

func (s *failingSource) Next() (trace.Record, error) {
	if s.n <= 0 {
		return trace.Record{}, s.errv
	}
	s.n--
	rec := trace.Record{Time: float64(10-s.n) * 1e-3, Op: trace.Read, Row: s.n % 8}
	return rec, nil
}

// TestRunReturnsPartialStatsOnError: a mid-run failure must hand back the
// stats accumulated so far - accesses, refreshes, violations - not a zero
// Stats, so a failing run is still debuggable.
func TestRunReturnsPartialStatsOnError(t *testing.T) {
	f := setup(t)
	sched, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("capture glitch")
	st, err := Run(f.bank(t, retention.PatternAllZeros), sched, &failingSource{n: 10, errv: boom}, f.opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the source's error", err)
	}
	if st.Accesses != 10 {
		t.Fatalf("partial stats report %d accesses, want the 10 delivered before the failure", st.Accesses)
	}
	if st.Scheduler == "" || st.Duration != f.opts.Duration {
		t.Fatal("partial stats lost their run identification")
	}
}

// TestOutOfOrderTraceRejected: a custom Source whose timestamps step
// backwards must be rejected with a clear error instead of silently
// mis-interleaving with the refresh schedule.
func TestOutOfOrderTraceRejected(t *testing.T) {
	f := setup(t)
	sched, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{Time: 0.010, Op: trace.Read, Row: 1},
		{Time: 0.020, Op: trace.Read, Row: 2},
		{Time: 0.015, Op: trace.Read, Row: 3}, // backwards
	}
	st, err := Run(f.bank(t, retention.PatternAllZeros), sched, trace.NewSliceSource(recs), f.opts)
	if err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error %q does not name the problem", err)
	}
	if st.Accesses != 2 {
		t.Fatalf("partial stats report %d accesses, want the 2 before the bad record", st.Accesses)
	}
}

// TestCorruptedTraceSurfacesInjectedReorder: the fault.TraceCorruptor's
// reordering is exactly what the out-of-order check exists to catch.
func TestCorruptedTraceSurfacesInjectedReorder(t *testing.T) {
	f := setup(t)
	sched, err := core.NewRAIDR(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, 4000)
	for i := range recs {
		recs[i] = trace.Record{Time: float64(i) * 1e-4, Op: trace.Read, Row: i % f.profile.Geom.Rows}
	}
	src, err := fault.CorruptTrace(trace.NewSliceSource(recs), fault.DefaultTraceFaults(7))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(f.bank(t, retention.PatternAllZeros), sched, src, f.opts)
	if err == nil {
		t.Fatal("reordered records slipped through")
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error %q does not name the problem", err)
	}
}

// TestInjectionPopulatesAllCounters drives a guarded VRL stack through a
// refresh-fault campaign and asserts every counter added for the fault
// framework moves: faults injected, guard alarms, demotions, promotions and
// escalations.
func TestInjectionPopulatesAllCounters(t *testing.T) {
	f := setup(t)
	vrl, err := core.NewVRL(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guard.New(vrl, f.profile.Geom.Rows, guard.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.InjectRefreshFaults(g, fault.RefreshFaults{Rate: 0.10, AlphaFactor: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(f.bank(t, retention.PatternAllZeros), inj, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("FaultsInjected not surfaced in Stats")
	}
	if st.Guard.Alarms == 0 || st.Guard.Demotions == 0 {
		t.Fatalf("guard alarms/demotions not surfaced: %+v", st.Guard)
	}
	if st.Guard.Promotions == 0 {
		t.Fatalf("no promotions: probation never ends (%+v)", st.Guard)
	}
	if st.Guard.Escalations == 0 {
		t.Fatalf("no escalations at a 10%% fault rate (%+v)", st.Guard)
	}
	if st.Violations != 0 {
		t.Fatalf("guard lost data under the default-strength campaign: %d violations", st.Violations)
	}
}

// TestCatastrophicFaultTripsBreaker: a mass retention excursion the ladder
// cannot contain must trip the global circuit breaker and account the time
// spent degraded.
func TestCatastrophicFaultTripsBreaker(t *testing.T) {
	f := setup(t)
	vrl, err := core.NewVRL(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guard.New(vrl, f.profile.Geom.Rows, guard.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	// 30% of rows at quarter retention: the weakest victims fall below even
	// the 32 ms floor, which no refresh schedule can save.
	vrt, err := fault.TransientWeakCells(0.3, 0.25, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := f.bank(t, retention.PatternAllZeros)
	if err := b.SetVRT(vrt); err != nil {
		t.Fatal(err)
	}
	st, err := Run(b, g, nil, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Guard.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st.Guard)
	}
	if st.Guard.TimeDegraded <= 0 {
		t.Fatalf("degraded time not accounted: %+v", st.Guard)
	}
	if st.Violations == 0 {
		t.Fatal("physically unsavable rows still reported zero violations; the fault model is broken")
	}
}

// TestDemoteOnCorrect: an ECC-corrected error steps the row one rung down
// the guard's ladder instead of invoking the one-shot AVATAR upgrade.
func TestDemoteOnCorrect(t *testing.T) {
	f := setup(t)
	vrl, err := core.NewVRL(f.profile, core.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guard.New(vrl, f.profile.Geom.Rows, guard.Config{Restore: f.rm})
	if err != nil {
		t.Fatal(err)
	}
	vrt, err := fault.TransientWeakCells(0.3, 0.25, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := f.bank(t, retention.PatternAllZeros)
	if err := b.SetVRT(vrt); err != nil {
		t.Fatal(err)
	}
	cls := ecc.DefaultClassifier()
	opts := f.opts
	opts.ECC = &cls
	opts.DemoteOnCorrect = true
	st, err := Run(b, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorrectedErrors == 0 {
		t.Fatal("campaign produced no correctable errors; nothing was demoted")
	}
	if st.RowsUpgraded != 0 {
		t.Fatal("DemoteOnCorrect must not take the AVATAR upgrade path")
	}
}
