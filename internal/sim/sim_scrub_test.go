package sim

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
)

// scrubE2E builds one run of the end-to-end self-healing scenario: a VRL
// scheduler trusting a mis-binned profile, a bank with VRT active, ECC
// classification on every sense, and (optionally) the online patrol
// scrubber wired in. Returns the stats and the bank's violation log.
func scrubE2E(t *testing.T, withScrub bool) (Stats, []dram.Violation) {
	t.Helper()
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 512, Cols: 32}
	prof, err := retention.NewSampledProfile(geom, retention.DefaultCellDistribution(), 7)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.PaperRestoreModel(p, geom)
	if err != nil {
		t.Fatal(err)
	}
	bad, flipped, err := fault.MisBinProfile(prof, 0.05, retention.RAIDRBins, 9)
	if err != nil {
		t.Fatal(err)
	}
	if flipped == 0 {
		t.Fatal("mis-binning flipped no rows; the scenario is empty")
	}
	b, err := dram.NewBank(bad, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	v := retention.DefaultVRT()
	if err := b.SetVRT(&v); err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewVRL(bad, core.Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	cls := ecc.DefaultClassifier()
	opts := Options{Duration: 0.768, TCK: p.TCK, ECC: &cls}
	if withScrub {
		store, err := scrub.NewBankStore(b, cls)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := scrub.New(store, scrub.Config{
			Sched:  sched,
			Spares: 64,
			Reprofile: func(row int) (float64, error) {
				return profiler.ProfileRow(bad, retention.ExpDecay{}, row, profiler.Options{})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		opts.Scrub = scr
	}
	st, err := Run(b, sched, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, b.Violations()
}

// TestScrubSelfHealsMisBinnedProfile is the PR's end-to-end acceptance
// scenario: with a mis-binned retention profile and VRT active, the
// unscrubbed VRL keeps violating all the way to the end of the run, while
// the scrubbed stack detects each sagging row through ECC, repairs it
// (upgrade or spare-row remap), and - once converged - holds zero sense
// violations for the rest of the run.
func TestScrubSelfHealsMisBinnedProfile(t *testing.T) {
	stPlain, violPlain := scrubE2E(t, false)
	stScrub, violScrub := scrubE2E(t, true)

	// The fault must actually bite, and keep biting without the scrubber:
	// the unscrubbed run still violates in the final quarter of the run.
	// (VRT rows can flip into their low state for the first time late in the
	// run, so full convergence needs the first three quarters.)
	if len(violPlain) == 0 {
		t.Fatal("unscrubbed run recorded no violations; the fault is inert")
	}
	const (
		dur        = 0.768
		settleTime = 3 * dur / 4
	)
	latePlain := 0
	for _, v := range violPlain {
		if v.Time >= settleTime {
			latePlain++
		}
	}
	if latePlain == 0 {
		t.Fatal("unscrubbed violations all died out on their own; nothing for the scrubber to prove")
	}

	// The scrubbed run converges: once every weak row has been demoted,
	// upgraded, or quarantined, no sense violation appears again.
	lateScrub := 0
	lastScrub := 0.0
	for _, v := range violScrub {
		if v.Time >= settleTime {
			lateScrub++
		}
		if v.Time > lastScrub {
			lastScrub = v.Time
		}
	}
	if lateScrub != 0 {
		t.Errorf("scrubbed run still violated %d times after convergence (last at t=%.3f)", lateScrub, lastScrub)
	}
	if len(violScrub) >= len(violPlain) {
		t.Errorf("scrubbing did not reduce violations: %d vs %d unscrubbed", len(violScrub), len(violPlain))
	}

	// The repair pipeline must have done real work, and the stats must say so.
	if stScrub.Scrub.RowsPatrolled == 0 {
		t.Fatal("patrol never ran")
	}
	if stScrub.Scrub.Corrected == 0 && stScrub.Scrub.Uncorrectable == 0 {
		t.Fatal("scrubber classified no errors under an active fault")
	}
	if stScrub.Scrub.RowsRemapped == 0 && stScrub.Scrub.Reprofiles == 0 {
		t.Fatal("scrubber repaired nothing: no remaps, no re-profiles")
	}
	if stScrub.Scrub.HardFails != 0 {
		t.Fatalf("%d hard failures with a 64-spare budget", stScrub.Scrub.HardFails)
	}
	if stPlain.Scrub != (core.ScrubStats{}) {
		t.Fatalf("unscrubbed run reported scrub stats: %+v", stPlain.Scrub)
	}
}
