package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
)

// newFFHarness builds the backend harness with ECC classification off - the
// one static ineligibility the matrix would otherwise pin every run to, so
// the fast-forward engine can actually engage. Everything else (trace,
// checkpoints, scenarios, scrub) stays: those are per-window horizon caps,
// and the equivalence must hold across all of them.
func newFFHarness(t *testing.T, seed int64) *backendHarness {
	t.Helper()
	h := newBackendHarness(t, seed)
	h.opts.ECC = nil
	return h
}

// compareFF runs the same configuration on the scalar reference and the
// fast-forward backend and demands bit-identical Stats and bit-identical
// serialized checkpoints.
func (h *backendHarness) compareFF(t *testing.T, schedName, scenName string, withScrub bool) {
	t.Helper()
	scalarStats, scalarBlobs := h.runOnce(t, schedName, scenName, withScrub, BackendScalar)
	ffStats, ffBlobs := h.runOnce(t, schedName, scenName, withScrub, BackendFastForward)
	if !reflect.DeepEqual(scalarStats, ffStats) {
		t.Fatalf("stats diverged:\nscalar:       %+v\nfast-forward: %+v", scalarStats, ffStats)
	}
	if len(scalarBlobs) != len(ffBlobs) {
		t.Fatalf("checkpoint counts diverged: %d vs %d", len(scalarBlobs), len(ffBlobs))
	}
	if len(scalarBlobs) == 0 {
		t.Fatal("run produced no checkpoints; the blob comparison is vacuous")
	}
	for i := range scalarBlobs {
		if !bytes.Equal(scalarBlobs[i], ffBlobs[i]) {
			t.Fatalf("checkpoint %d blob diverged between backends", i)
		}
	}
}

// TestFastForwardMatchesScalarFullRuns is the keystone equivalence property
// of the fast-forward engine: across all four schedulers, scrub on and off,
// and every catalog scenario (plus the bare bank), a run on the fast-forward
// backend must produce bit-identical Stats and bit-identical serialized
// checkpoints to the same run on the scalar reference. Schedulers or
// scenarios that do not declare steady capability simply keep the engine
// disengaged - equivalence must hold either way.
func TestFastForwardMatchesScalarFullRuns(t *testing.T) {
	h := newFFHarness(t, 7)
	scens := append([]string{""}, scenario.Names()...)
	for _, schedName := range []string{"jedec", "raidr", "vrl", "vrl-access"} {
		for _, withScrub := range []bool{false, true} {
			for _, scen := range scens {
				label := scen
				if label == "" {
					label = "bare"
				}
				t.Run(fmt.Sprintf("%s/scrub=%v/%s", schedName, withScrub, label), func(t *testing.T) {
					h.compareFF(t, schedName, scen, withScrub)
				})
			}
		}
	}
}

// TestFastForwardMatchesScalarSecondSeed re-runs a slice of the matrix on a
// different profile seed, so the equivalence does not hinge on one retention
// draw.
func TestFastForwardMatchesScalarSecondSeed(t *testing.T) {
	h := newFFHarness(t, 21)
	for _, withScrub := range []bool{false, true} {
		for _, scen := range []string{"", "kitchen-sink"} {
			label := scen
			if label == "" {
				label = "bare"
			}
			t.Run(fmt.Sprintf("vrl/scrub=%v/%s", withScrub, label), func(t *testing.T) {
				h.compareFF(t, "vrl", scen, withScrub)
			})
		}
	}
}

// TestFastForwardFallsBackUnderECC pins the static-ineligibility path: with
// ECC classification on, an explicit BackendFastForward request must quietly
// run the plain batched path and still match the scalar reference bit for
// bit.
func TestFastForwardFallsBackUnderECC(t *testing.T) {
	h := newBackendHarness(t, 7) // keeps ECC set
	scalarStats, scalarBlobs := h.runOnce(t, "vrl", "", false, BackendScalar)
	ffStats, ffBlobs := h.runOnce(t, "vrl", "", false, BackendFastForward)
	if !reflect.DeepEqual(scalarStats, ffStats) {
		t.Fatalf("stats diverged under ECC:\nscalar:       %+v\nfast-forward: %+v", scalarStats, ffStats)
	}
	if len(scalarBlobs) == 0 || len(scalarBlobs) != len(ffBlobs) {
		t.Fatalf("checkpoint counts diverged: %d vs %d", len(scalarBlobs), len(ffBlobs))
	}
	for i := range scalarBlobs {
		if !bytes.Equal(scalarBlobs[i], ffBlobs[i]) {
			t.Fatalf("checkpoint %d blob diverged under ECC", i)
		}
	}
}

// ffQuietRun executes one trace-free, scrub-free run - the steady-state
// shape the engine is built for - and returns the stats plus the number of
// fast-forward windows the run consumed.
func ffQuietRun(t *testing.T, h *backendHarness, backend Backend, opts Options) (Stats, int) {
	t.Helper()
	bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	opts.Backend = backend
	r := NewReusable(h.geom.Rows)
	st, err := r.Run(bank, h.sched(t, "vrl"), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, r.scratch.ffWindows
}

// TestFastForwardEngagesOnQuietRun asserts the engine actually fires on its
// target workload - a quiescent VRL run - rather than the equivalence matrix
// passing because fast-forward never engaged, and that the fast-forwarded
// run still matches the scalar reference exactly.
func TestFastForwardEngagesOnQuietRun(t *testing.T) {
	h := newFFHarness(t, 7)
	opts := Options{Duration: 4 * 0.768, TCK: h.opts.TCK}
	scalarStats, _ := ffQuietRun(t, h, BackendScalar, opts)
	ffStats, windows := ffQuietRun(t, h, BackendFastForward, opts)
	if windows == 0 {
		t.Fatal("fast-forward engine never engaged on a quiet steady-state run")
	}
	if !reflect.DeepEqual(scalarStats, ffStats) {
		t.Fatalf("stats diverged:\nscalar:       %+v\nfast-forward: %+v", scalarStats, ffStats)
	}
}

// TestFastForwardMidSkipResume pins checkpoint/resume bit-identity through
// fast-forwarded regions: checkpoints taken by a fast-forwarding run land on
// horizon boundaries inside what would otherwise be one long skip, and
// resuming from each of them - on either backend - must reproduce the
// remainder of the run exactly.
func TestFastForwardMidSkipResume(t *testing.T) {
	h := newFFHarness(t, 7)
	base := Options{Duration: 4 * 0.768, TCK: h.opts.TCK}

	// Reference run with checkpoints: quiet, so every checkpoint boundary
	// splits a fast-forward span.
	var blobs [][]byte
	opts := base
	opts.CheckpointEvery = base.Duration / 5
	opts.CheckpointSink = func(cp *Checkpoint) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			return err
		}
		blobs = append(blobs, buf.Bytes())
		return nil
	}
	ffStats, windows := ffQuietRun(t, h, BackendFastForward, opts)
	if windows == 0 {
		t.Fatal("checkpointed run never fast-forwarded; resume test is vacuous")
	}
	if len(blobs) == 0 {
		t.Fatal("run produced no checkpoints")
	}
	scalarStats, _ := ffQuietRun(t, h, BackendScalar, opts)
	if !reflect.DeepEqual(scalarStats, ffStats) {
		t.Fatalf("checkpointed stats diverged:\nscalar:       %+v\nfast-forward: %+v", scalarStats, ffStats)
	}

	for i, blob := range blobs {
		var cp Checkpoint
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&cp); err != nil {
			t.Fatal(err)
		}
		resume := base
		resume.Resume = &cp
		var scalarTail, ffTail Stats
		for _, backend := range []Backend{BackendScalar, BackendFastForward} {
			bank, err := dram.NewBank(h.profile, retention.ExpDecay{}, retention.PatternAllZeros)
			if err != nil {
				t.Fatal(err)
			}
			opts := resume
			opts.Backend = backend
			st, err := Run(bank, h.sched(t, "vrl"), nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if backend == BackendScalar {
				scalarTail = st
			} else {
				ffTail = st
			}
		}
		if !reflect.DeepEqual(scalarTail, ffTail) {
			t.Fatalf("resume from checkpoint %d diverged:\nscalar:       %+v\nfast-forward: %+v", i, scalarTail, ffTail)
		}
	}
}

// TestFFPlanProperties spot-checks the planner arithmetic the fuzz target
// hammers, on a deterministic grid (the fuzz corpus seeds mirror these).
func TestFFPlanProperties(t *testing.T) {
	f := func(t0, period, horizon float64) bool {
		return checkFFPlan(t0, period, horizon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// checkFFPlan verifies the planner invariants for one input triple: the skip
// count is never negative, a planned skip never lands an event at or past
// the horizon, the plan is maximal (one more lap would cross), and the
// horizon composition returns the minimum of its caps.
func checkFFPlan(t0, period, horizon float64) bool {
	k := ffSkip(t0, period, horizon)
	if k < 0 {
		return false
	}
	if k > 0 {
		if !(t0+float64(k)*period < horizon) {
			return false
		}
	}
	if k < ffSkipMax && period > 0 && t0 < horizon {
		// Maximality: the next lap must not also fit (ffSkipMax saturates).
		if t0+float64(k+1)*period < horizon {
			return false
		}
	}
	h := ffHorizon(horizon, t0, period, horizon, t0)
	min := horizon
	for _, v := range []float64{t0, period, horizon, t0} {
		if v < min {
			min = v
		}
	}
	if h != min && !(math.IsNaN(h) && math.IsNaN(min)) {
		return false
	}
	return true
}

// FuzzFastForwardPlan fuzzes the fast-forward planner: for arbitrary
// (start, period, horizon) triples - including NaNs, infinities, negatives,
// and denormals - the skip count must be non-negative, never plan an event
// at or past the horizon, and be maximal; the horizon composition must be
// the minimum of its caps.
func FuzzFastForwardPlan(f *testing.F) {
	f.Add(0.0, 64e-3, 0.768)
	f.Add(0.7679, 64e-3, 0.768)
	f.Add(0.0, 0.0, 1.0)
	f.Add(1.0, math.SmallestNonzeroFloat64, 1.0000000001)
	f.Add(-1e300, 1e-300, 1e300)
	f.Add(math.NaN(), 64e-3, 0.768)
	f.Add(0.0, math.NaN(), 0.768)
	f.Add(0.0, 64e-3, math.NaN())
	f.Add(0.0, math.Inf(1), math.Inf(1))
	f.Fuzz(func(t *testing.T, t0, period, horizon float64) {
		if !checkFFPlan(t0, period, horizon) {
			t.Fatalf("plan invariant violated for t=%g period=%g horizon=%g (skip=%d)",
				t0, period, horizon, ffSkip(t0, period, horizon))
		}
	})
}
