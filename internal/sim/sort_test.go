package sim

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// refSorted is the reference (time, row) ordering: a stable standard-library
// sort. The event keys are unique per queue (one pending event per row), but
// the sort kernels are still exercised on duplicate keys here to pin down
// that ties cannot reorder.
func refSorted(s []event) []event {
	out := append([]event(nil), s...)
	slices.SortStableFunc(out, func(a, b event) int {
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		}
		return a.Row - b.Row
	})
	return out
}

// TestQuickSortEvents drives the median-of-3 quicksort (with its insertion
// cutoff) across random inputs heavy in duplicate times and rows.
func TestQuickSortEvents(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(300)
		s := make([]event, n)
		for i := range s {
			s[i] = event{T: float64(rng.Intn(40)) / 16, Row: rng.Intn(50)}
		}
		want := refSorted(s)
		got := append([]event(nil), s...)
		quickSortEvents(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("quickSortEvents wrong at trial %d n=%d", trial, n)
		}
	}
}

// TestRadixSortEvents drives the LSD radix sort above its n >= 256 dispatch
// floor, including the sign fixup, skip-uniform-byte passes, and the
// insertion tie fix.
func TestRadixSortEvents(t *testing.T) {
	var scratch []event
	var keys []uint64
	for trial := 0; trial < 500; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 256 + rng.Intn(600)
		s := make([]event, n)
		for i := range s {
			s[i] = event{T: float64(rng.Intn(400)) / 16, Row: rng.Intn(50)}
		}
		want := refSorted(s)
		got := append([]event(nil), s...)
		radixSortEvents(got, &scratch, &keys)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("radixSortEvents wrong at trial %d n=%d", trial, n)
		}
	}
}

// TestSortEvents drives the top-level dispatcher (run merge vs radix vs
// quicksort, chosen by run structure and size) across the same input family.
func TestSortEvents(t *testing.T) {
	var scratch []event
	var bounds []int
	var keys []uint64
	for trial := 0; trial < 2000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 9000))
		n := 1 + rng.Intn(500)
		s := make([]event, n)
		for i := range s {
			s[i] = event{T: float64(rng.Intn(100)) / 16, Row: rng.Intn(50)}
		}
		want := refSorted(s)
		got := append([]event(nil), s...)
		sortEvents(got, &scratch, &bounds, &keys)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sortEvents wrong at trial %d n=%d", trial, n)
		}
	}
}
