package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"vrldram/internal/checkpoint"
	"vrldram/internal/exp"
	"vrldram/internal/fleet"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// ClientOptions configures a Client; every zero field has a default.
type ClientOptions struct {
	// Addr is the server's TCP address (required unless Dial is set).
	Addr string
	// Dial overrides connection establishment (fault injection, custom
	// transports). The default dials Addr over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// MaxAttempts bounds CONSECUTIVE failed connection attempts; any attempt
	// that reaches a Welcome resets the count, so a long campaign over a
	// flaky link retries indefinitely while a dead server fails fast.
	// Default 8.
	MaxAttempts int
	// MaxElapsed caps the TOTAL wall time a job may spend retrying, welcomes
	// or not: where MaxAttempts protects against a dead server, MaxElapsed
	// protects against a zombie one that keeps answering hellos and failing
	// everything after. 0 (the default) means no cap. Exceeding it returns a
	// *GiveUpError (errors.Is ErrGaveUp), distinguishable from a fatal
	// server reject: giving up says "stop waiting", not "the job is bad".
	MaxElapsed time.Duration
	// BaseBackoff/MaxBackoff shape the exponential reconnect backoff
	// (defaults 50ms and 2s); every delay is jittered to avoid reconnect
	// stampedes.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HeartbeatEvery is the idle ping cadence while waiting for a result
	// (default 5s); IdleTimeout is how long the connection may go without
	// any inbound frame before it is declared half-open (default
	// 3x HeartbeatEvery).
	HeartbeatEvery time.Duration
	IdleTimeout    time.Duration
	// BatchRecords is the trace stream batch size (default 512).
	BatchRecords int
	// Seed seeds the client's private jitter RNG - no client touches the
	// global math/rand state, so simulations stay deterministic around it.
	Seed int64
	// Logf receives reconnect/progress one-liners (nil = silent).
	Logf func(format string, args ...any)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 5 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 3 * o.HeartbeatEvery
	}
	if o.BatchRecords <= 0 {
		o.BatchRecords = 512
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Client submits jobs to a vrlserved instance and survives its failures:
// connections are retried with jittered exponential backoff, sessions resume
// from the server-issued token, trace streaming restarts from the server's
// durable watermark, and heartbeats unstick half-open connections. A Client
// is safe for sequential reuse; run one job at a time per Client.
type Client struct {
	opts  ClientOptions
	mu    sync.Mutex
	rng   *rand.Rand
	token string // resume token of the job in flight
}

// NewClient builds a client; see ClientOptions for defaults.
func NewClient(opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// errTransient wraps failures worth a reconnect (cut connections, server
// drain, admission refusal); anything else aborts the run.
var errTransient = errors.New("transient")

func transientf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errTransient)...)
}

// ErrGaveUp marks a run the client abandoned by policy - attempt budget or
// MaxElapsed deadline - while the job itself was never pronounced bad by
// the server. Callers that can reschedule (the fleet engine) match it with
// errors.Is and retry elsewhere or later; a fatal reject is different and
// final.
var ErrGaveUp = errors.New("serve: client gave up")

// GiveUpError carries the give-up evidence; it wraps both ErrGaveUp and the
// last underlying failure.
type GiveUpError struct {
	Attempts int           // consecutive failed attempts at the moment of surrender
	Elapsed  time.Duration // wall time spent on the job
	Last     error         // the failure that broke the camel's back
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("serve: gave up after %d consecutive failed attempt(s) over %v: %v",
		e.Attempts, e.Elapsed.Round(time.Millisecond), e.Last)
}

func (e *GiveUpError) Unwrap() []error { return []error{ErrGaveUp, e.Last} }

// ErrTerminalSession marks an ErrCodeState rejection: the session is
// already done or failed and the client should reconnect for its durable
// verdict. It is classified transient (the reconnect handshake resolves
// it), never surfaced as a job failure.
var ErrTerminalSession = errors.New("serve: session already terminal")

// RejectError is the server's fatal verdict on a job (ErrCodeFatal): the
// spec is bad or the job failed for keeps, and no amount of reconnecting
// changes the answer.
type RejectError struct{ Msg string }

func (e *RejectError) Error() string { return "serve: server rejected the job: " + e.Msg }

// RunSim submits a simulation spec plus its full trace and blocks until the
// server reports the final statistics. recs must be time-sorted (the order
// a trace.Source yields); the slice is retained for re-streaming after a
// reconnect and never modified.
func (c *Client) RunSim(ctx context.Context, spec SimSpec, recs []trace.Record) (sim.Stats, error) {
	if err := spec.Validate(); err != nil {
		return sim.Stats{}, err
	}
	res, err := c.run(ctx, Submit{Kind: JobSim, Sim: spec}, recs)
	if err != nil {
		return sim.Stats{}, err
	}
	if res.Kind != JobSim {
		return sim.Stats{}, fmt.Errorf("serve: server returned result kind %d for a sim job", res.Kind)
	}
	return DecodeStats(res.Blob)
}

// RunCampaign submits an experiment campaign and blocks until the server
// returns the completed results.
func (c *Client) RunCampaign(ctx context.Context, spec CampaignSpec) ([]*exp.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res, err := c.run(ctx, Submit{Kind: JobCampaign, Campaign: spec}, nil)
	if err != nil {
		return nil, err
	}
	if res.Kind != JobCampaign {
		return nil, fmt.Errorf("serve: server returned result kind %d for a campaign job", res.Kind)
	}
	return checkpoint.DecodeCampaign(bytes.NewReader(res.Blob))
}

// RunShard submits one fleet shard and blocks until the server returns its
// merged per-shard summary. The shard spec travels as its encoded blob -
// the same bytes the fleet manifest persists - so client, wire, and server
// agree on exactly one canonical form.
func (c *Client) RunShard(ctx context.Context, ss fleet.ShardSpec) (fleet.ShardResult, error) {
	if err := ss.Validate(); err != nil {
		return fleet.ShardResult{}, err
	}
	res, err := c.run(ctx, Submit{Kind: JobShard, Shard: ss.Encode()}, nil)
	if err != nil {
		return fleet.ShardResult{}, err
	}
	if res.Kind != JobShard {
		return fleet.ShardResult{}, fmt.Errorf("serve: server returned result kind %d for a shard job", res.Kind)
	}
	sr, err := fleet.DecodeShardResult(res.Blob)
	if err != nil {
		return fleet.ShardResult{}, err
	}
	if sr.Shard != ss.Index {
		return fleet.ShardResult{}, fmt.Errorf("serve: server returned shard %d for shard %d", sr.Shard, ss.Index)
	}
	return sr, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// run is the reconnect loop around attempt. Two independent budgets bound
// it: MaxAttempts counts consecutive failures (reset by any Welcome), and
// MaxElapsed caps total wall time regardless of Welcomes. Blowing either
// returns a *GiveUpError.
func (c *Client) run(ctx context.Context, sub Submit, recs []trace.Record) (ResultMsg, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.token = ""
	failures := 0
	start := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return ResultMsg{}, err
		}
		res, welcomed, err := c.attempt(ctx, sub, recs)
		if err == nil {
			c.token = ""
			return res, nil
		}
		if !errors.Is(err, errTransient) {
			return ResultMsg{}, err
		}
		if welcomed {
			failures = 0 // the server is alive; keep trying indefinitely
		}
		failures++
		if failures >= c.opts.MaxAttempts {
			return ResultMsg{}, &GiveUpError{Attempts: failures, Elapsed: time.Since(start), Last: err}
		}
		delay := c.backoff(failures - 1)
		if c.opts.MaxElapsed > 0 && time.Since(start)+delay >= c.opts.MaxElapsed {
			// The next attempt could not even start inside the deadline;
			// surrender now rather than blow through it asleep.
			return ResultMsg{}, &GiveUpError{Attempts: failures, Elapsed: time.Since(start), Last: err}
		}
		c.logf("attempt failed (%v); reconnecting in %v", err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ResultMsg{}, ctx.Err()
		}
	}
}

// backoff returns the jittered exponential delay for the n-th consecutive
// failure (n from 0).
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.BaseBackoff
	for i := 0; i < n && d < c.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64() // [0.5, 1): never zero, never synchronized
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// wireEvent is one inbound frame (or the read error that ended the stream).
type wireEvent struct {
	typ     byte
	payload []byte
	err     error
}

// attempt runs one connection's worth of the protocol. welcomed reports
// whether the server answered the handshake (used to reset the failure
// budget).
func (c *Client) attempt(ctx context.Context, sub Submit, recs []trace.Record) (res ResultMsg, welcomed bool, err error) {
	nc, err := c.dial(ctx)
	if err != nil {
		return ResultMsg{}, false, transientf("dial: %v", err)
	}
	defer nc.Close()
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	events := make(chan wireEvent, 16)
	connDone := make(chan struct{})
	defer close(connDone) // lets the reader goroutine exit even with a full event queue
	go func() {
		br := bufio.NewReader(nc)
		for {
			nc.SetReadDeadline(time.Now().Add(c.opts.IdleTimeout))
			typ, payload, rerr := ReadFrame(br)
			ev := wireEvent{typ: typ, payload: payload, err: rerr}
			select {
			case events <- ev:
			case <-connDone:
				return
			}
			if rerr != nil {
				return
			}
		}
	}()

	if err := c.write(nc, FrameHello, Hello{Proto: ProtocolVersion, Token: c.token}.encode()); err != nil {
		return ResultMsg{}, false, transientf("hello: %v", err)
	}
	w, err := c.awaitWelcome(ctx, events)
	if err != nil {
		return ResultMsg{}, false, err
	}
	c.token = w.Token

	if !w.HaveSpec {
		if err := c.write(nc, FrameSubmit, sub.encode()); err != nil {
			return ResultMsg{}, true, transientf("submit: %v", err)
		}
	}
	if sub.Kind == JobSim && w.State != StateDone {
		if res, done, err := c.stream(ctx, nc, events, recs, w.Watermark); done || err != nil {
			return res, true, err
		}
	}
	res, err = c.awaitResult(ctx, nc, events)
	return res, true, err
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if c.opts.Dial != nil {
		return c.opts.Dial(ctx)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", c.opts.Addr)
}

func (c *Client) write(nc net.Conn, typ byte, payload []byte) error {
	nc.SetWriteDeadline(time.Now().Add(c.opts.IdleTimeout))
	return WriteFrame(nc, typ, payload)
}

// awaitWelcome reads up to the Welcome, classifying pre-welcome errors.
func (c *Client) awaitWelcome(ctx context.Context, events <-chan wireEvent) (Welcome, error) {
	for {
		select {
		case ev := <-events:
			switch {
			case ev.err != nil:
				return Welcome{}, transientf("awaiting welcome: %v", ev.err)
			case ev.typ == FrameWelcome:
				return decodeWelcome(ev.payload)
			case ev.typ == FrameError:
				return Welcome{}, c.classify(ev.payload)
			}
		case <-ctx.Done():
			return Welcome{}, ctx.Err()
		}
	}
}

// stream sends recs[from:] in batches and the EOF marker. Inbound events are
// drained between writes so a Result or fatal Error arriving mid-stream
// (e.g. a resumed session finishing) is honored immediately; without that
// drain, server acks would eventually fill both sockets' buffers and
// deadlock the stream.
func (c *Client) stream(ctx context.Context, nc net.Conn, events <-chan wireEvent, recs []trace.Record, from int64) (ResultMsg, bool, error) {
	if from < 0 || from > int64(len(recs)) {
		return ResultMsg{}, false, fmt.Errorf("serve: server watermark %d outside the %d-record trace", from, len(recs))
	}
	for i := from; i < int64(len(recs)); {
		if res, done, err := drainEvents(events); done || err != nil {
			return res, done, err
		}
		if err := ctx.Err(); err != nil {
			return ResultMsg{}, false, err
		}
		end := i + int64(c.opts.BatchRecords)
		if end > int64(len(recs)) {
			end = int64(len(recs))
		}
		blob, err := encodeBatchBlob(recs[i:end])
		if err != nil {
			return ResultMsg{}, false, err
		}
		if err := c.write(nc, FrameTrace, TraceBatch{Start: i, Blob: blob}.encode()); err != nil {
			return ResultMsg{}, false, transientf("trace stream at %d: %v", i, err)
		}
		i = end
	}
	if err := c.write(nc, FrameTraceEOF, TraceEOF{Total: int64(len(recs))}.encode()); err != nil {
		return ResultMsg{}, false, transientf("trace EOF: %v", err)
	}
	return ResultMsg{}, false, nil
}

// drainEvents consumes any pending inbound frames without blocking.
func drainEvents(events <-chan wireEvent) (ResultMsg, bool, error) {
	for {
		select {
		case ev := <-events:
			switch {
			case ev.err != nil:
				return ResultMsg{}, false, transientf("connection lost: %v", ev.err)
			case ev.typ == FrameResult:
				res, err := decodeResult(ev.payload)
				return res, err == nil, err
			case ev.typ == FrameError:
				return ResultMsg{}, false, classifyPayload(ev.payload)
			}
			// Ack, Progress, Pong: liveness signals only.
		default:
			return ResultMsg{}, false, nil
		}
	}
}

// awaitResult waits for the final Result, pinging on the heartbeat cadence
// so both ends can tell a slow job from a dead peer.
func (c *Client) awaitResult(ctx context.Context, nc net.Conn, events <-chan wireEvent) (ResultMsg, error) {
	ticker := time.NewTicker(c.opts.HeartbeatEvery)
	defer ticker.Stop()
	var nonce int64
	for {
		select {
		case ev := <-events:
			switch {
			case ev.err != nil:
				return ResultMsg{}, transientf("awaiting result: %v", ev.err)
			case ev.typ == FrameResult:
				return decodeResult(ev.payload)
			case ev.typ == FrameError:
				return ResultMsg{}, c.classify(ev.payload)
			case ev.typ == FrameProgress:
				if p, err := decodeProgress(ev.payload); err == nil && p.Duration > 0 {
					c.logf("progress: %.1f%%", 100*p.T/p.Duration)
				}
			}
		case <-ticker.C:
			nonce++
			var ping Ack // reuse the int codec for the nonce payload
			ping.Watermark = nonce
			if err := c.write(nc, FramePing, ping.encode()); err != nil {
				return ResultMsg{}, transientf("ping: %v", err)
			}
		case <-ctx.Done():
			return ResultMsg{}, ctx.Err()
		}
	}
}

// classify maps a server ErrorInfo onto the retry policy.
func (c *Client) classify(payload []byte) error { return classifyPayload(payload) }

func classifyPayload(payload []byte) error {
	ei, err := decodeError(payload)
	if err != nil {
		return transientf("undecodable server error: %v", err)
	}
	switch ei.Code {
	case ErrCodeRetry, ErrCodeFull:
		return transientf("server: %s", ei.Msg)
	case ErrCodeState:
		// The session settled while this connection was mid-flight; the
		// reconnect handshake will replay its Result or fatal Error, so a
		// terminal-state rejection is a reason to reconnect, never to fail.
		return fmt.Errorf("server: %s: %w: %w", ei.Msg, ErrTerminalSession, errTransient)
	default:
		return &RejectError{Msg: ei.Msg}
	}
}

// encodeBatchBlob renders records as one complete binary trace blob.
func encodeBatchBlob(recs []trace.Record) ([]byte, error) {
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
