// Package serve turns the batch simulator into a long-running service: a
// TCP daemon (cmd/vrlserved) that accepts concurrent campaign submissions
// over a versioned, length-framed, CRC-checked wire protocol, ingests
// streamed memory traces with per-session backpressure, multiplexes sessions
// onto a bounded exp.WorkerPool, and survives bad clients, half-open
// connections, and its own crashes: every session's trace spool, metadata,
// and simulation checkpoints are durable (internal/checkpoint containers +
// the internal/trace binary codec), so a killed server resumes every
// in-flight session bit-identically on restart and a disconnected client
// reconnects with a server-issued token and picks up where it left off.
//
// Lifecycle of a simulation session:
//
//	client                         server
//	 | -- Hello{token?} ------------> |  admission check; create/attach session
//	 | <------ Welcome{token, wmark} |  (plus Result immediately if already done)
//	 | -- Submit{spec} ------------> |  validated, persisted
//	 | -- Trace{start, records} ---> |  bounded ingest buffer -> spool -> Ack
//	 | <-------------- Ack{wmark}    |  watermark = records durable on disk
//	 | -- TraceEOF{total} ---------> |  session becomes runnable, queued on pool
//	 | <------------- Progress ...   |  checkpoint cadence (advisory)
//	 | -- Ping / <- Pong             |  both ends detect half-open connections
//	 | <------------- Result{stats}  |  also persisted; re-sent on reconnect
//
// A campaign session skips the trace stream: Submit carries experiment IDs
// and the server runs them as a crash-tolerant exp.RunCampaign whose
// completed results checkpoint per session.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"vrldram/internal/core"
)

// ProtocolVersion is negotiated in Hello; a server rejects clients speaking
// a different version with a fatal error frame.
const ProtocolVersion = 1

// helloMagic opens every Hello payload, so a stray connection speaking some
// other protocol is rejected before any state is allocated for it.
var helloMagic = [4]byte{'V', 'R', 'L', 'S'}

// Frame types.
const (
	FrameHello    byte = 1  // client -> server: version, optional resume token
	FrameWelcome  byte = 2  // server -> client: token, session state, durable watermark
	FrameSubmit   byte = 3  // client -> server: job specification
	FrameTrace    byte = 4  // client -> server: a batch of trace records
	FrameTraceEOF byte = 5  // client -> server: end of stream + total record count
	FrameAck      byte = 6  // server -> client: durable ingest watermark
	FrameProgress byte = 7  // server -> client: advisory job progress
	FrameResult   byte = 8  // server -> client: final job result
	FrameError    byte = 9  // server -> client: fatal or retryable failure
	FramePing     byte = 10 // either direction: heartbeat probe
	FramePong     byte = 11 // either direction: heartbeat answer
)

// maxFramePayload bounds a frame payload; a length beyond it marks a corrupt
// or hostile stream and is rejected before any allocation.
const maxFramePayload = 1 << 24

// frameHeaderLen is type (1) + payload length (4).
const frameHeaderLen = 5

// AppendFrame appends one encoded frame to dst: type, little-endian payload
// length, payload, and an IEEE CRC-32 over everything before it.
func AppendFrame(dst []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFramePayload {
		return dst, fmt.Errorf("serve: frame payload %d bytes exceeds limit %d", len(payload), maxFramePayload)
	}
	start := len(dst)
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...), nil
}

// WriteFrame writes one frame as a single Write call (one frame, one write:
// a writer goroutine never interleaves partial frames).
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf, err := AppendFrame(nil, typ, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame. I/O errors (including timeouts and
// mid-frame cuts, surfaced as io.ErrUnexpectedEOF) pass through; framing
// violations (oversized length, CRC mismatch) return a *ProtocolError so the
// caller can distinguish a sick connection from a sick peer.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[1:5])
	if plen > maxFramePayload {
		return 0, nil, &ProtocolError{Msg: fmt.Sprintf("frame payload %d bytes exceeds limit %d", plen, maxFramePayload)}
	}
	body := make([]byte, int(plen)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header arrived, body did not: a cut, not a clean close
		}
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:plen])
	if want := binary.LittleEndian.Uint32(body[plen:]); crc != want {
		return 0, nil, &ProtocolError{Msg: fmt.Sprintf("frame CRC mismatch (wire %08x, computed %08x)", want, crc)}
	}
	return hdr[0], body[:plen], nil
}

// DecodeFrame parses one frame from the head of data, returning the
// remainder. It is the allocation-free core ReadFrame shares with the fuzz
// target: every byte sequence either yields a verified frame or a
// *ProtocolError / io.ErrUnexpectedEOF, never a panic or an unbounded
// allocation.
func DecodeFrame(data []byte) (typ byte, payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(data[1:5])
	if plen > maxFramePayload {
		return 0, nil, nil, &ProtocolError{Msg: fmt.Sprintf("frame payload %d bytes exceeds limit %d", plen, maxFramePayload)}
	}
	total := frameHeaderLen + int(plen) + 4
	if len(data) < total {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	crc := crc32.ChecksumIEEE(data[:frameHeaderLen+int(plen)])
	if want := binary.LittleEndian.Uint32(data[frameHeaderLen+int(plen):]); crc != want {
		return 0, nil, nil, &ProtocolError{Msg: fmt.Sprintf("frame CRC mismatch (wire %08x, computed %08x)", want, crc)}
	}
	return data[0], data[frameHeaderLen : frameHeaderLen+int(plen)], data[total:], nil
}

// ProtocolError marks a violation of the wire framing or payload encoding -
// garbage where a frame should be. Connections die on it; sessions survive.
type ProtocolError struct{ Msg string }

func (e *ProtocolError) Error() string { return "serve: protocol error: " + e.Msg }

// --- session states on the wire ---------------------------------------------

// Session states reported in Welcome. Only durable states appear on the
// wire; "queued" and "running" are server-internal refinements of StateReady.
const (
	StateNew    byte = 1 // session exists, no spec yet
	StateIngest byte = 2 // spec accepted, trace stream incomplete
	StateReady  byte = 3 // inputs complete; job queued, running, or parked
	StateDone   byte = 4 // result available
	StateFailed byte = 5 // job failed; Welcome is followed by a fatal Error frame
)

// Job kinds.
const (
	JobSim      byte = 1 // one scheduler over a streamed trace -> sim.Stats
	JobCampaign byte = 2 // experiment IDs -> exp.Results (no trace stream)
	JobShard    byte = 3 // a fleet shard blob -> fleet.ShardResult (no trace stream)
)

// Error codes.
const (
	ErrCodeFatal byte = 1 // the session cannot succeed; give up
	ErrCodeRetry byte = 2 // transient (draining, superseded connection); back off and reconnect
	ErrCodeFull  byte = 3 // admission control refused a new session; back off and retry
	// ErrCodeState rejects a frame addressed to a session that is already
	// done or failed. It is not a verdict on the job - the authoritative
	// Result or fatal Error is replayed at the next attach - so clients
	// treat it as a cue to reconnect, never as a failure of the work.
	ErrCodeState byte = 4
)

// --- payload messages --------------------------------------------------------

// Hello is the first frame of every connection.
type Hello struct {
	Proto int64
	Token string // empty = new session; else resume
}

// Welcome answers Hello.
type Welcome struct {
	Token     string
	State     byte
	Watermark int64 // trace records durably spooled (sim sessions)
	HaveSpec  bool  // a Submit has been accepted; do not resend
}

// Submit carries a job specification; exactly one of Sim/Campaign/Shard is
// meaningful, selected by Kind. Shard is an encoded fleet.ShardSpec kept
// opaque at the wire layer (the job layer validates it), so the protocol
// does not chase the fleet codec.
type Submit struct {
	Kind     byte
	Sim      SimSpec
	Campaign CampaignSpec
	Shard    []byte
}

// TraceBatch is a contiguous run of trace records, encoded with the
// internal/trace binary codec (a complete VRLT blob per batch). Start is the
// absolute index of the first record, so a reconnecting client can resend
// from the server's watermark and the server can discard duplicated or
// stale batches exactly.
type TraceBatch struct {
	Start int64
	Blob  []byte
}

// TraceEOF ends a trace stream; Total must equal the records spooled.
type TraceEOF struct{ Total int64 }

// Ack reports the durable ingest watermark.
type Ack struct{ Watermark int64 }

// Progress is an advisory job progress note (dropped under outbound
// backpressure rather than ever stalling a worker).
type Progress struct {
	T        float64 // simulated seconds completed (sim) or experiments done (campaign)
	Duration float64 // simulated duration (sim) or experiments total (campaign)
}

// ResultMsg carries the final job artifact: a stats blob (JobSim) or a
// checkpoint campaign container (JobCampaign).
type ResultMsg struct {
	Kind byte
	Blob []byte
}

// ErrorInfo reports a failure with retryability.
type ErrorInfo struct {
	Code byte
	Msg  string
}

// --- payload codecs ----------------------------------------------------------

func (h Hello) encode() []byte {
	var e core.StateEncoder
	e.Bytes(helloMagic[:])
	e.Int(h.Proto)
	e.Bytes([]byte(h.Token))
	return e.Data()
}

func decodeHello(p []byte) (Hello, error) {
	d := core.NewStateDecoder(p)
	var h Hello
	if magic := d.Bytes(); d.Err() == nil && string(magic) != string(helloMagic[:]) {
		return h, &ProtocolError{Msg: fmt.Sprintf("bad hello magic %q", magic)}
	}
	h.Proto = d.Int()
	h.Token = string(d.Bytes())
	return h, finish(d)
}

func (w Welcome) encode() []byte {
	var e core.StateEncoder
	e.Tag("wel1")
	e.Bytes([]byte(w.Token))
	e.Uint64(uint64(w.State))
	e.Int(w.Watermark)
	e.Bool(w.HaveSpec)
	return e.Data()
}

func decodeWelcome(p []byte) (Welcome, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("wel1")
	var w Welcome
	w.Token = string(d.Bytes())
	w.State = byte(d.Uint64())
	w.Watermark = d.Int()
	w.HaveSpec = d.Bool()
	return w, finish(d)
}

func (s Submit) encode() []byte {
	var e core.StateEncoder
	e.Tag("sub1")
	e.Uint64(uint64(s.Kind))
	switch s.Kind {
	case JobSim:
		e.Bytes([]byte(s.Sim.Scheduler))
		e.Int(s.Sim.Seed)
		e.Float(s.Sim.Duration)
		e.Int(int64(s.Sim.Rows))
		e.Int(int64(s.Sim.Cols))
	case JobCampaign:
		e.Int(int64(len(s.Campaign.IDs)))
		for _, id := range s.Campaign.IDs {
			e.Bytes([]byte(id))
		}
		e.Int(s.Campaign.Seed)
		e.Float(s.Campaign.Duration)
	case JobShard:
		e.Bytes(s.Shard)
	}
	return e.Data()
}

func decodeSubmit(p []byte) (Submit, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("sub1")
	var s Submit
	s.Kind = byte(d.Uint64())
	switch s.Kind {
	case JobSim:
		s.Sim.Scheduler = string(d.Bytes())
		s.Sim.Seed = d.Int()
		s.Sim.Duration = d.Float()
		s.Sim.Rows = int(d.Int())
		s.Sim.Cols = int(d.Int())
	case JobCampaign:
		n := d.Int()
		if n < 0 || n > int64(len(p)) {
			return s, &ProtocolError{Msg: fmt.Sprintf("campaign id count %d impossible in %d-byte payload", n, len(p))}
		}
		for i := int64(0); i < n && d.Err() == nil; i++ {
			s.Campaign.IDs = append(s.Campaign.IDs, string(d.Bytes()))
		}
		s.Campaign.Seed = d.Int()
		s.Campaign.Duration = d.Float()
	case JobShard:
		s.Shard = append([]byte(nil), d.Bytes()...)
	default:
		if d.Err() == nil {
			return s, &ProtocolError{Msg: fmt.Sprintf("unknown job kind %d", s.Kind)}
		}
	}
	return s, finish(d)
}

func (b TraceBatch) encode() []byte {
	var e core.StateEncoder
	e.Tag("trb1")
	e.Int(b.Start)
	e.Bytes(b.Blob)
	return e.Data()
}

func decodeTraceBatch(p []byte) (TraceBatch, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("trb1")
	var b TraceBatch
	b.Start = d.Int()
	b.Blob = d.Bytes()
	return b, finish(d)
}

func (t TraceEOF) encode() []byte {
	var e core.StateEncoder
	e.Tag("eof1")
	e.Int(t.Total)
	return e.Data()
}

func decodeTraceEOF(p []byte) (TraceEOF, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("eof1")
	t := TraceEOF{Total: d.Int()}
	return t, finish(d)
}

func (a Ack) encode() []byte {
	var e core.StateEncoder
	e.Tag("ack1")
	e.Int(a.Watermark)
	return e.Data()
}

func decodeAck(p []byte) (Ack, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("ack1")
	a := Ack{Watermark: d.Int()}
	return a, finish(d)
}

func (pr Progress) encode() []byte {
	var e core.StateEncoder
	e.Tag("prg1")
	e.Float(pr.T)
	e.Float(pr.Duration)
	return e.Data()
}

func decodeProgress(p []byte) (Progress, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("prg1")
	pr := Progress{T: d.Float(), Duration: d.Float()}
	return pr, finish(d)
}

func (r ResultMsg) encode() []byte {
	var e core.StateEncoder
	e.Tag("res1")
	e.Uint64(uint64(r.Kind))
	e.Bytes(r.Blob)
	return e.Data()
}

func decodeResult(p []byte) (ResultMsg, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("res1")
	var r ResultMsg
	r.Kind = byte(d.Uint64())
	r.Blob = d.Bytes()
	return r, finish(d)
}

func (ei ErrorInfo) encode() []byte {
	var e core.StateEncoder
	e.Tag("err1")
	e.Uint64(uint64(ei.Code))
	e.Bytes([]byte(ei.Msg))
	return e.Data()
}

func decodeError(p []byte) (ErrorInfo, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("err1")
	var ei ErrorInfo
	ei.Code = byte(d.Uint64())
	ei.Msg = string(d.Bytes())
	return ei, finish(d)
}

// finish converts a decoder's terminal state into a ProtocolError, so every
// malformed payload is classified as a connection-level violation.
func finish(d *core.StateDecoder) error {
	if err := d.Finish(); err != nil {
		return &ProtocolError{Msg: err.Error()}
	}
	return nil
}
