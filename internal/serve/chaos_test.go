package serve

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"vrldram/internal/exp"
	"vrldram/internal/fault"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// TestChaosKillRestartEquivalence is the service's core robustness claim:
// kill the server (no graceful shutdown, no final checkpoint - Crash
// suppresses every durable write from the moment it fires) several times in
// the middle of a streaming simulation session, restart it over the same
// data directory each time, and the statistics the client eventually
// receives are bit-identical to an uninterrupted in-process run - for every
// scheduler.
func TestChaosKillRestartEquivalence(t *testing.T) {
	const kills = 3
	for _, sched := range schedulerNames {
		sched := sched
		t.Run(sched, func(t *testing.T) {
			spec := SimSpec{Scheduler: sched, Seed: 11, Duration: 0.768, Rows: 2048, Cols: 8}
			recs := mkRecords(6000, spec.Rows, spec.Duration)
			want, err := RunLocal(spec, trace.NewSliceSource(recs))
			if err != nil {
				t.Fatal(err)
			}

			// Frequent checkpoints so every kill window has fresh durable
			// state to recover from.
			h := newHarness(t, Options{CheckpointEvery: spec.Duration / 64})

			resCh := make(chan struct{})
			var got sim.Stats
			var runErr error
			go func() {
				defer close(resCh)
				got, runErr = h.client().RunSim(context.Background(), spec, recs)
			}()

			since := time.Time{}
			for k := 0; k < kills; k++ {
				// Only crash after the current generation has provably made
				// durable progress, so recovery is exercised, not luck.
				since = h.waitCheckpoint(since, resCh)
				select {
				case <-resCh:
					k = kills // job finished early; equality check still runs
				default:
					h.crash()
					h.restart()
				}
			}

			<-resCh
			if runErr != nil {
				t.Fatalf("client did not survive %d kills: %v", kills, runErr)
			}
			if got != want {
				t.Fatalf("stats after %d kill/restart cycles diverge from uninterrupted run:\n got %+v\nwant %+v", kills, got, want)
			}
		})
	}
}

// TestChaosCampaignKillRestart does the same for a campaign session: each
// completed experiment checkpoints, a crash loses at most the experiment in
// flight, and the final result set matches an uninterrupted run.
func TestChaosCampaignKillRestart(t *testing.T) {
	// Deterministic experiments only (tab1 embeds wall-clock timings).
	spec := CampaignSpec{IDs: []string{"fig1a", "fig1b", "fig5"}, Duration: 0.1}
	want, err := exp.RunCampaign(context.Background(), spec.config(1), exp.CampaignOptions{IDs: spec.IDs})
	if err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, Options{})
	resCh := make(chan struct{})
	var got []*exp.Result
	var runErr error
	go func() {
		defer close(resCh)
		got, runErr = h.client().RunCampaign(context.Background(), spec)
	}()

	// Kill once mid-campaign, as soon as the first per-experiment
	// checkpoint proves durable progress.
	deadline := time.After(30 * time.Second)
poll:
	for {
		if paths, _ := filepath.Glob(filepath.Join(h.dir, "sess-*", "camp.ckpt")); len(paths) > 0 {
			break
		}
		select {
		case <-resCh:
			break poll
		case <-deadline:
			t.Fatal("no campaign checkpoint appeared within 30s")
		case <-time.After(2 * time.Millisecond):
		}
	}
	select {
	case <-resCh:
	default:
		h.crash()
		h.restart()
	}
	<-resCh
	if runErr != nil {
		t.Fatal(runErr)
	}
	if g, w := renderResults(t, got), renderResults(t, want); g != w {
		t.Fatalf("campaign after kill/restart diverges:\n got:\n%s\nwant:\n%s", g, w)
	}
}

// TestFlakyConnectionsStillConverge drives a full remote simulation through
// a deliberately hostile transport: the first connections are cut mid-frame
// at various depths, later ones corrupt bytes in flight (which the CRC layer
// must reject), and only then does a clean connection get through. The final
// statistics must still match the uninterrupted local run exactly.
func TestFlakyConnectionsStillConverge(t *testing.T) {
	spec := testSpec("vrl")
	recs := mkRecords(5000, spec.Rows, spec.Duration)
	want, err := RunLocal(spec, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, Options{CheckpointEvery: 0.02})
	dial := fault.NewFlakyDialer(
		func() (net.Conn, error) { return net.DialTimeout("tcp", h.addr, 5*time.Second) },
		func(attempt int) fault.ConnFaults {
			switch attempt {
			case 0:
				return fault.ConnFaults{CutAfterBytes: 900, Seed: 1} // dies mid-stream
			case 1:
				return fault.ConnFaults{CutAfterBytes: 7000, Seed: 2} // dies deeper mid-frame
			case 2:
				return fault.ConnFaults{GarbageRate: 0.2, Seed: 3} // CRC violations
			case 3:
				// Stalls every 2KB; slow but survivable - the per-session
				// ingest buffer absorbs it without touching the pool.
				return fault.ConnFaults{StallEvery: 2048, StallFor: 20 * time.Millisecond, Seed: 4}
			default:
				return fault.ConnFaults{}
			}
		})

	cl := NewClient(ClientOptions{
		Dial:           func(ctx context.Context) (net.Conn, error) { return dial() },
		MaxAttempts:    50,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		HeartbeatEvery: 200 * time.Millisecond,
		IdleTimeout:    2 * time.Second,
		Seed:           9,
		Logf:           t.Logf,
	})
	got, err := cl.RunSim(context.Background(), spec, recs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stats over a flaky transport diverge:\n got %+v\nwant %+v", got, want)
	}
}
