package serve

import (
	"vrldram/internal/core"
	"vrldram/internal/sim"
)

// EncodeStats flattens a sim.Stats into a tagged binary blob (the ResultMsg
// payload for JobSim). The field order mirrors the stats section of the
// internal/checkpoint sim codec so the two stay reviewable side by side.
func EncodeStats(s sim.Stats) []byte {
	var e core.StateEncoder
	e.Tag("sta1")
	e.Bytes([]byte(s.Scheduler))
	e.Float(s.Duration)
	e.Int(s.FullRefreshes)
	e.Int(s.PartialRefreshes)
	e.Int(s.BusyCycles)
	e.Int(s.Accesses)
	e.Float(s.ChargeRestored)
	e.Int(int64(s.Violations))
	e.Int(s.CorrectedErrors)
	e.Int(s.UncorrectableErrors)
	e.Int(s.RowsUpgraded)
	e.Int(s.FaultsInjected)
	e.Int(s.Guard.Alarms)
	e.Int(s.Guard.Demotions)
	e.Int(s.Guard.Promotions)
	e.Int(s.Guard.Escalations)
	e.Int(s.Guard.BreakerTrips)
	e.Float(s.Guard.TimeDegraded)
	e.Int(s.Scrub.RowsPatrolled)
	e.Int(s.Scrub.Corrected)
	e.Int(s.Scrub.Uncorrectable)
	e.Int(s.Scrub.Reprofiles)
	e.Int(s.Scrub.RowsHealed)
	e.Int(s.Scrub.RowsRemapped)
	e.Int(s.Scrub.HardFails)
	e.Int(s.Scrub.BusyRetries)
	e.Int(s.Scrub.SLOMisses)
	e.Int(int64(s.Scrub.SparesLeft))
	return e.Data()
}

// DecodeStats reverses EncodeStats.
func DecodeStats(p []byte) (sim.Stats, error) {
	d := core.NewStateDecoder(p)
	d.ExpectTag("sta1")
	var s sim.Stats
	s.Scheduler = string(d.Bytes())
	s.Duration = d.Float()
	s.FullRefreshes = d.Int()
	s.PartialRefreshes = d.Int()
	s.BusyCycles = d.Int()
	s.Accesses = d.Int()
	s.ChargeRestored = d.Float()
	s.Violations = int(d.Int())
	s.CorrectedErrors = d.Int()
	s.UncorrectableErrors = d.Int()
	s.RowsUpgraded = d.Int()
	s.FaultsInjected = d.Int()
	s.Guard.Alarms = d.Int()
	s.Guard.Demotions = d.Int()
	s.Guard.Promotions = d.Int()
	s.Guard.Escalations = d.Int()
	s.Guard.BreakerTrips = d.Int()
	s.Guard.TimeDegraded = d.Float()
	s.Scrub.RowsPatrolled = d.Int()
	s.Scrub.Corrected = d.Int()
	s.Scrub.Uncorrectable = d.Int()
	s.Scrub.Reprofiles = d.Int()
	s.Scrub.RowsHealed = d.Int()
	s.Scrub.RowsRemapped = d.Int()
	s.Scrub.HardFails = d.Int()
	s.Scrub.BusyRetries = d.Int()
	s.Scrub.SLOMisses = d.Int()
	s.Scrub.SparesLeft = int(d.Int())
	return s, finish(d)
}
