package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// conn is one accepted connection: a read loop (the goroutine that accepted
// it), a writer goroutine draining the out queue, and at most one attached
// session. Connections are disposable - every error path closes the
// connection and leaves the session durable - which is what makes the server
// indifferent to mid-frame cuts, garbage bytes, and half-open peers.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	out       chan outFrame
	closedCh  chan struct{}
	closeOnce sync.Once
}

type outFrame struct {
	typ     byte
	payload []byte
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		br:       bufio.NewReader(nc),
		out:      make(chan outFrame, 64),
		closedCh: make(chan struct{}),
	}
}

// close ends the connection; safe to call from any goroutine, any number of
// times. The read side unblocks immediately (expired deadline), while the
// writer goroutine flushes already-queued frames - a refusal or error frame
// queued just before close still reaches the peer - and then releases the
// socket.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		c.nc.SetReadDeadline(time.Now())
	})
}

// send queues a frame, blocking until the writer takes it or the connection
// dies. Used for frames that matter (Welcome, Result, Error, Ack, Pong);
// the writer's write deadline bounds how long a stuck peer can pin the
// sender.
func (c *conn) send(typ byte, payload []byte) {
	select {
	case c.out <- outFrame{typ, payload}:
	case <-c.closedCh:
	}
}

// trySend queues a frame only if there is room - advisory traffic
// (Progress) that must never block a worker on a slow reader.
func (c *conn) trySend(typ byte, payload []byte) {
	select {
	case c.out <- outFrame{typ, payload}:
	case <-c.closedCh:
	default:
	}
}

func (c *conn) sendError(code byte, msg string) {
	c.send(FrameError, ErrorInfo{Code: code, Msg: msg}.encode())
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer c.srv.forget(c)
	defer c.close()

	ctx, cancel := context.WithCancel(c.srv.lifeCtx)
	defer cancel()
	go func() { // tie the ingest context to the connection's life
		select {
		case <-c.closedCh:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Writer: the only goroutine that touches the socket's write side, and
	// the one that finally closes it (after flushing the queue).
	c.srv.wg.Add(1)
	go func() {
		defer c.srv.wg.Done()
		defer c.nc.Close()
		for {
			select {
			case f := <-c.out:
				c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.IdleTimeout))
				if err := WriteFrame(c.nc, f.typ, f.payload); err != nil {
					c.close()
					return
				}
			case <-c.closedCh:
				for {
					select {
					case f := <-c.out:
						c.nc.SetWriteDeadline(time.Now().Add(time.Second))
						if WriteFrame(c.nc, f.typ, f.payload) != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	sess, next, ok := c.handshake()
	if !ok {
		return
	}
	defer sess.detach(c)

	for {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.IdleTimeout))
		typ, payload, err := ReadFrame(c.br)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				c.srv.logf("conn %s: %v", c.nc.RemoteAddr(), pe)
				c.sendError(ErrCodeRetry, pe.Msg)
			}
			return // cut, timeout, or garbage: the session lives on
		}
		switch typ {
		case FrameSubmit:
			sub, err := decodeSubmit(payload)
			if err != nil {
				c.sendError(ErrCodeRetry, err.Error())
				return
			}
			if err := sess.submit(sub, c); err != nil {
				var terr *TerminalStateError
				if errors.As(err, &terr) {
					// The job already settled; this submit is a reconnect
					// race, not a bad spec. Point the client back at the
					// handshake (which replays the durable verdict) and do
					// NOT touch the session's state.
					c.sendError(ErrCodeState, err.Error())
					return
				}
				// A spec the registry or validator rejects can never
				// succeed; fail the session so every future attach agrees.
				sess.fail(err)
				c.sendError(ErrCodeFatal, err.Error())
				return
			}
		case FrameTrace:
			b, err := decodeTraceBatch(payload)
			if err == nil {
				err = sess.pushBatch(ctx, b, c, &next)
			}
			if err != nil {
				if ctx.Err() == nil {
					var terr *TerminalStateError
					if errors.As(err, &terr) {
						c.sendError(ErrCodeState, err.Error())
					} else {
						c.sendError(ErrCodeRetry, err.Error())
					}
				}
				return
			}
		case FrameTraceEOF:
			t, err := decodeTraceEOF(payload)
			if err == nil {
				err = sess.pushEOF(ctx, t.Total, c)
			}
			if err != nil {
				if ctx.Err() == nil {
					var terr *TerminalStateError
					if errors.As(err, &terr) {
						c.sendError(ErrCodeState, err.Error())
					} else {
						c.sendError(ErrCodeRetry, err.Error())
					}
				}
				return
			}
		case FramePing:
			c.send(FramePong, payload)
		case FramePong:
			// Any frame, pongs included, already refreshed the read deadline.
		default:
			c.sendError(ErrCodeRetry, fmt.Sprintf("unexpected frame type %d", typ))
			return
		}
	}
}

// handshake performs admission and attachment, returning the attached
// session and the connection's initial stream cursor (ok=false: the
// connection is already dead). A terminal session's result or failure is
// reported here, and the connection then idles in the normal loop until the
// satisfied client hangs up - which also guarantees the writer gets to
// flush those frames before the socket dies.
func (c *conn) handshake() (sess *session, next int64, ok bool) {
	c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.IdleTimeout))
	typ, payload, err := ReadFrame(c.br)
	if err != nil || typ != FrameHello {
		return nil, 0, false
	}
	h, err := decodeHello(payload)
	if err != nil {
		return nil, 0, false // not our protocol; drop silently
	}
	if h.Proto != ProtocolVersion {
		c.sendError(ErrCodeFatal, fmt.Sprintf("protocol version %d not supported (server speaks %d)", h.Proto, ProtocolVersion))
		return nil, 0, false
	}
	if h.Token == "" {
		sess, err = c.srv.admit()
		if err != nil {
			c.sendError(ErrCodeFull, err.Error())
			return nil, 0, false
		}
	} else {
		if sess = c.srv.lookup(h.Token); sess == nil {
			c.sendError(ErrCodeFatal, "unknown session token")
			return nil, 0, false
		}
	}
	w, res, failMsg := sess.attach(c)
	c.send(FrameWelcome, w.encode())
	switch {
	case res != nil:
		c.send(FrameResult, res.encode())
	case w.State == StateFailed:
		c.sendError(ErrCodeFatal, failMsg)
	}
	return sess, w.Watermark, true
}
