package serve

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"vrldram/internal/trace"
)

func mkRecords(n, rows int, duration float64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		recs[i] = trace.Record{
			Time: duration * float64(i) / float64(n),
			Op:   op,
			Row:  (i * 37) % rows,
		}
	}
	return recs
}

func TestSpoolAppendAndReadBack(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(100, 64, 0.1)
	if wm, err := sp.append(recs[:60]); err != nil || wm != 60 {
		t.Fatalf("append: wm=%d err=%v", wm, err)
	}
	if wm, err := sp.append(recs[60:]); err != nil || wm != 100 {
		t.Fatalf("append: wm=%d err=%v", wm, err)
	}
	src, closer, err := sp.openReader()
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	for i, want := range recs {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	sp.close()
}

func TestSpoolRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(40, 64, 0.1)
	if _, err := sp.append(recs); err != nil {
		t.Fatal(err)
	}
	sp.close()

	// Tear the file mid-record, as a crash during append would.
	path := filepath.Join(dir, "trace.vrlt")
	whole := int64(spoolHeaderLen + 25*spoolRecordLen)
	if err := os.Truncate(path, whole+7); err != nil {
		t.Fatal(err)
	}

	sp2, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.close()
	if sp2.watermark() != 25 {
		t.Fatalf("recovered watermark %d, want 25", sp2.watermark())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != whole {
		t.Fatalf("torn tail not truncated: size %d, want %d", info.Size(), whole)
	}
	// Ingestion resumes exactly where the durable prefix ends.
	if wm, err := sp2.append(recs[25:]); err != nil || wm != 40 {
		t.Fatalf("resume append: wm=%d err=%v", wm, err)
	}
}

func TestSpoolRejectsTimeRegression(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.close()
	if _, err := sp.append([]trace.Record{{Time: 0.5, Op: trace.Read, Row: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.append([]trace.Record{{Time: 0.1, Op: trace.Read, Row: 2}}); err == nil {
		t.Fatal("a time regression across batches must be rejected")
	}
}
