package serve

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vrldram/internal/fault"
	"vrldram/internal/fleet"
	"vrldram/internal/scenario"
)

func fleetTestSpec() fleet.Spec {
	return fleet.Spec{
		Devices:    12,
		Seed:       13,
		Scheduler:  "vrl",
		Duration:   0.1,
		Rows:       256,
		Cols:       4,
		ShardSize:  2,
		TempSwingC: 10,
		WeakFrac:   0.4,
		Scenarios: scenario.Mix{Items: []scenario.Weighted{
			{Ref: scenario.Ref{Name: "diurnal"}, Weight: 2},
			{Ref: scenario.Ref{Name: "kitchen-sink"}, Weight: 1},
		}},
		Guard: true,
		Scrub: true,
	}
}

// TestRemoteShardMatchesLocal pins the remote executor to the local oracle:
// a shard computed through the wire returns the exact bytes RunShard
// produces in-process.
func TestRemoteShardMatchesLocal(t *testing.T) {
	h := newHarness(t, Options{JobWorkers: 2})
	ss := fleetTestSpec().Shards()[0]
	want, err := fleet.RunShard(context.Background(), ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.client().RunShard(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(want.Encode()) {
		t.Fatal("remote shard result diverges from local computation")
	}
}

// countingExec wraps an executor, counting successes and firing a hook after
// each one - the chaos test's lever for killing the driver mid-campaign.
type countingExec struct {
	fleet.Executor
	done   atomic.Int64
	onDone func(total int64)
}

func (c *countingExec) RunShard(ctx context.Context, ss fleet.ShardSpec) (fleet.ShardResult, error) {
	res, err := c.Executor.RunShard(ctx, ss)
	if err == nil {
		n := c.done.Add(1)
		if c.onDone != nil {
			c.onDone(n)
		}
	}
	return res, err
}

// TestFleetChaosCampaign is the acceptance property for the fleet layer: a
// campaign dispatched over a vrlserved instance survives flaky connections,
// a server kill -9 mid-shard, a driver kill mid-campaign (context cancel +
// manifest resume), and a poison shard - and the merged statistics are
// byte-identical to a single-process sequential run over exactly the
// non-quarantined population, with the coverage report naming exactly the
// quarantined shard.
func TestFleetChaosCampaign(t *testing.T) {
	spec := fleetTestSpec()
	const poison = 4
	want, err := fleet.RunSequential(context.Background(), spec, map[int]bool{poison: true})
	if err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, Options{JobWorkers: 2})

	// A hostile transport: early connections die mid-frame or corrupt bytes,
	// later ones are clean. The dialer's attempt counter is shared across
	// every client the executor spins up.
	dial := fault.NewFlakyDialer(
		func() (net.Conn, error) { return net.DialTimeout("tcp", h.addr, 5*time.Second) },
		func(attempt int) fault.ConnFaults {
			switch attempt {
			case 0:
				return fault.ConnFaults{CutAfterBytes: 200, Seed: 1}
			case 1:
				return fault.ConnFaults{GarbageRate: 0.3, Seed: 2}
			default:
				return fault.ConnFaults{}
			}
		})
	mkRemote := func() *ShardExecutor {
		return NewShardExecutor(ClientOptions{
			Dial:           func(ctx context.Context) (net.Conn, error) { return dial() },
			MaxAttempts:    50,
			BaseBackoff:    5 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			HeartbeatEvery: 200 * time.Millisecond,
			IdleTimeout:    3 * time.Second,
			Seed:           7,
			Logf:           t.Logf,
		}, 2)
	}

	manifest := filepath.Join(t.TempDir(), "fleet.manifest")
	opts := fleet.Options{
		ManifestPath: manifest,
		MaxAttempts:  2,
		BaseBackoff:  2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Seed:         3,
		Logf:         t.Logf,
		PreShard: func(shard, attempt int) error {
			if shard == poison {
				return errors.New("induced poison-shard failure")
			}
			return nil
		},
	}

	// Phase 1: the driver dies (context cancel) after two shards land.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var once1 sync.Once
	counting := &countingExec{Executor: mkRemote(), onDone: func(total int64) {
		if total >= 2 {
			once1.Do(cancel1)
		}
	}}
	if _, err := fleet.Run(ctx1, spec, []fleet.Executor{counting}, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
	}

	// Phase 2: resume from the manifest; kill -9 the server once mid-stream
	// and restart it. The mixed local+remote fleet must finish everything
	// except the poison shard.
	var once2 sync.Once
	counting2 := &countingExec{Executor: mkRemote(), onDone: func(total int64) {
		if total >= 1 {
			once2.Do(func() {
				h.crash()
				h.restart()
			})
		}
	}}
	rep, err := fleet.Run(context.Background(), spec,
		[]fleet.Executor{fleet.NewLocalExecutor(1), counting2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed < 2 {
		t.Fatalf("resumed campaign inherited %d done shards, want >= 2", rep.Resumed)
	}
	if got := rep.QuarantinedShards(); len(got) != 1 || got[0] != poison {
		t.Fatalf("quarantined shards %v, want exactly [%d]", got, poison)
	}
	if rep.ShardsDone != spec.NumShards()-1 {
		t.Fatalf("campaign finished %d/%d shards, want all but the poison one", rep.ShardsDone, rep.ShardsTotal)
	}
	if string(rep.Sum.Encode()) != string(want.Encode()) {
		t.Fatal("chaos campaign statistics diverge from the sequential oracle")
	}
}

// --- satellite: typed give-up vs fatal reject --------------------------------

func TestClientGivesUpWithTypedError(t *testing.T) {
	cl := NewClient(ClientOptions{
		Dial:        func(ctx context.Context) (net.Conn, error) { return nil, errors.New("nobody home") },
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	_, err := cl.RunSim(context.Background(), testSpec("vrl"), nil)
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("dead server must yield ErrGaveUp, got %v", err)
	}
	var ge *GiveUpError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GiveUpError, got %T", err)
	}
	if ge.Attempts != 3 || ge.Last == nil {
		t.Fatalf("give-up evidence incomplete: %+v", ge)
	}
	var rej *RejectError
	if errors.As(err, &rej) {
		t.Fatal("a give-up must never look like a fatal server reject")
	}
}

func TestClientMaxElapsedBoundsRetrying(t *testing.T) {
	cl := NewClient(ClientOptions{
		Dial:        func(ctx context.Context) (net.Conn, error) { return nil, errors.New("nobody home") },
		MaxAttempts: 1 << 20, // attempts alone would retry (effectively) forever
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		MaxElapsed:  150 * time.Millisecond,
	})
	start := time.Now()
	_, err := cl.RunSim(context.Background(), testSpec("vrl"), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("MaxElapsed must yield ErrGaveUp, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("client kept retrying for %v despite a 150ms MaxElapsed", elapsed)
	}
	var ge *GiveUpError
	if !errors.As(err, &ge) || ge.Elapsed <= 0 {
		t.Fatalf("give-up evidence incomplete: %v", err)
	}
}

// TestClassifyPayloadTaxonomy pins the client's three-way error taxonomy:
// retryable, terminal-session (reconnect cue), and fatal reject.
func TestClassifyPayloadTaxonomy(t *testing.T) {
	retry := classifyPayload(ErrorInfo{Code: ErrCodeRetry, Msg: "drain"}.encode())
	if !errors.Is(retry, errTransient) || errors.Is(retry, ErrTerminalSession) {
		t.Fatalf("ErrCodeRetry classified as %v", retry)
	}
	state := classifyPayload(ErrorInfo{Code: ErrCodeState, Msg: "done"}.encode())
	if !errors.Is(state, errTransient) || !errors.Is(state, ErrTerminalSession) {
		t.Fatalf("ErrCodeState must be transient AND terminal-session, got %v", state)
	}
	fatal := classifyPayload(ErrorInfo{Code: ErrCodeFatal, Msg: "bad spec"}.encode())
	var rej *RejectError
	if !errors.As(fatal, &rej) || errors.Is(fatal, errTransient) {
		t.Fatalf("ErrCodeFatal must be a non-transient *RejectError, got %v", fatal)
	}
	if rej.Msg != "bad spec" {
		t.Fatalf("reject message %q lost in classification", rej.Msg)
	}
}

// --- satellite: terminal sessions reject late frames with a typed code -------

// rawNext reads frames until one of the given types arrives, skipping
// advisory traffic (progress, acks, pongs).
func rawNext(t *testing.T, nc net.Conn, want ...byte) (byte, []byte) {
	t.Helper()
	for {
		typ, payload := rawRead(t, nc)
		for _, w := range want {
			if typ == w {
				return typ, payload
			}
		}
		switch typ {
		case FrameProgress, FrameAck, FramePong, FramePing:
		default:
			t.Fatalf("unexpected frame %d while waiting for %v", typ, want)
		}
	}
}

// TestTerminalSessionRejectsLateFrames drives a sim session to completion
// over the raw wire, then replays each frame kind a lagging or reconnecting
// client could send - submit, trace batch, trace EOF - and requires the
// typed ErrCodeState rejection for every one, with the session's durable
// result still replayed intact at the next handshake.
func TestTerminalSessionRejectsLateFrames(t *testing.T) {
	h := newHarness(t, Options{})
	spec := SimSpec{Scheduler: "jedec", Seed: 3, Duration: 0.05, Rows: 256, Cols: 4}
	recs := mkRecords(100, spec.Rows, spec.Duration)
	blob, err := encodeBatchBlob(recs)
	if err != nil {
		t.Fatal(err)
	}

	// Run the job to completion over one raw connection.
	nc := rawDial(t, h.addr)
	defer nc.Close()
	rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	_, wp := rawNext(t, nc, FrameWelcome)
	w, err := decodeWelcome(wp)
	if err != nil {
		t.Fatal(err)
	}
	rawWrite(t, nc, FrameSubmit, Submit{Kind: JobSim, Sim: spec}.encode())
	rawWrite(t, nc, FrameTrace, TraceBatch{Start: 0, Blob: blob}.encode())
	rawWrite(t, nc, FrameTraceEOF, TraceEOF{Total: int64(len(recs))}.encode())
	_, rp := rawNext(t, nc, FrameResult)
	if _, err := decodeResult(rp); err != nil {
		t.Fatal(err)
	}

	probes := []struct {
		name string
		typ  byte
		body []byte
	}{
		{"submit", FrameSubmit, Submit{Kind: JobSim, Sim: spec}.encode()},
		{"trace batch", FrameTrace, TraceBatch{Start: 0, Blob: blob}.encode()},
		{"trace EOF", FrameTraceEOF, TraceEOF{Total: int64(len(recs))}.encode()},
	}
	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			nc := rawDial(t, h.addr)
			defer nc.Close()
			rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion, Token: w.Token}.encode())
			_, wp := rawNext(t, nc, FrameWelcome)
			w2, err := decodeWelcome(wp)
			if err != nil {
				t.Fatal(err)
			}
			if w2.State != StateDone {
				t.Fatalf("session reloaded in state %d, want done", w2.State)
			}
			// The durable verdict replays before anything else.
			rawNext(t, nc, FrameResult)

			rawWrite(t, nc, p.typ, p.body)
			_, ep := rawNext(t, nc, FrameError)
			ei, err := decodeError(ep)
			if err != nil {
				t.Fatal(err)
			}
			if ei.Code != ErrCodeState {
				t.Fatalf("%s to a done session answered with code %d (%s), want ErrCodeState", p.name, ei.Code, ei.Msg)
			}
		})
	}
}
