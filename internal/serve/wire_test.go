package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameTrace, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != FrameTrace || !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: type %d, %d bytes", typ, len(got))
		}
	}
}

func TestFrameCRCFlip(t *testing.T) {
	raw, err := AppendFrame(nil, FrameAck, []byte("watermark"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		_, _, _, err := DecodeFrame(bad)
		if err == nil {
			// Flipping a length byte may convert the frame into a shorter
			// valid-looking one only if the CRC happens to match - which it
			// cannot, because the CRC covers the length bytes.
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	raw, err := AppendFrame(nil, FrameResult, bytes.Repeat([]byte{7}, 100))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		_, _, _, err := DecodeFrame(raw[:n])
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrUnexpectedEOF", n, err)
		}
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	raw := []byte{FrameTrace, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	var pe *ProtocolError
	if _, _, _, err := DecodeFrame(raw); !errors.As(err, &pe) {
		t.Fatalf("oversized length: got %v, want ProtocolError", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.As(err, &pe) {
		t.Fatal("ReadFrame must reject an oversized length before allocating")
	}
}

func TestPayloadCodecs(t *testing.T) {
	hello := Hello{Proto: ProtocolVersion, Token: "abc123"}
	if got, err := decodeHello(hello.encode()); err != nil || got != hello {
		t.Fatalf("hello: %+v, %v", got, err)
	}
	if _, err := decodeHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("a non-protocol hello must be rejected")
	}

	w := Welcome{Token: "t", State: StateIngest, Watermark: 12345, HaveSpec: true}
	if got, err := decodeWelcome(w.encode()); err != nil || got != w {
		t.Fatalf("welcome: %+v, %v", got, err)
	}

	sim := Submit{Kind: JobSim, Sim: SimSpec{Scheduler: "vrl", Seed: 7, Duration: 0.5, Rows: 1024, Cols: 8}}
	if got, err := decodeSubmit(sim.encode()); err != nil || got.Sim != sim.Sim || got.Kind != JobSim {
		t.Fatalf("sim submit: %+v, %v", got, err)
	}

	camp := Submit{Kind: JobCampaign, Campaign: CampaignSpec{IDs: []string{"fig1a", "tab1"}, Seed: 3, Duration: 0.1}}
	got, err := decodeSubmit(camp.encode())
	if err != nil || got.Kind != JobCampaign || len(got.Campaign.IDs) != 2 || got.Campaign.IDs[1] != "tab1" {
		t.Fatalf("campaign submit: %+v, %v", got, err)
	}

	if _, err := decodeSubmit(Submit{Kind: 99}.encode()); err == nil {
		t.Fatal("unknown job kind must be rejected")
	}

	ei := ErrorInfo{Code: ErrCodeRetry, Msg: "draining"}
	if got, err := decodeError(ei.encode()); err != nil || got != ei {
		t.Fatalf("error: %+v, %v", got, err)
	}
}

func TestStatsBlobRoundTrip(t *testing.T) {
	st, err := RunLocal(SimSpec{Scheduler: "raidr", Duration: 0.05, Rows: 1024, Cols: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStats(EncodeStats(st))
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("stats round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

// FuzzFrameDecode asserts the frame decoder is total: any byte string either
// yields a verified frame or a classified error, without panics or unbounded
// allocation.
func FuzzFrameDecode(f *testing.F) {
	seed, _ := AppendFrame(nil, FrameHello, Hello{Proto: 1, Token: "tok"}.encode())
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{FrameTrace, 0xFF, 0xFF, 0xFF, 0x7F})
	multi, _ := AppendFrame(seed, FrameAck, Ack{Watermark: 9}.encode())
	f.Add(multi)
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			typ, payload, next, err := DecodeFrame(rest)
			if err != nil {
				var pe *ProtocolError
				if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.As(err, &pe) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("payload %d exceeds the declared limit", len(payload))
			}
			// Whatever decodes must re-encode to the same bytes.
			re, err := AppendFrame(nil, typ, payload)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			consumed := len(rest) - len(next)
			if !bytes.Equal(re, rest[:consumed]) {
				t.Fatal("decode/encode round trip changed the frame bytes")
			}
			// Payload decoders must be total too, whatever the frame type says.
			decodeHello(payload)
			decodeWelcome(payload)
			decodeSubmit(payload)
			decodeTraceBatch(payload)
			decodeTraceEOF(payload)
			decodeAck(payload)
			decodeProgress(payload)
			decodeResult(payload)
			decodeError(payload)
			if len(next) == len(rest) {
				return
			}
			rest = next
		}
	})
}
