package serve

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"vrldram/internal/trace"
)

// spool is a session's durable trace stream: one append-only file in the
// standard binary trace format (so the simulator reads it back through the
// ordinary trace.BinaryReader, and an operator can inspect it with vrltrace).
// The watermark the server acks is exactly the number of records that have
// survived an fsync here - an acked record can never be lost to a crash, and
// an unacked one is the client's to resend.
type spool struct {
	path string
	f    *os.File

	mu       sync.Mutex
	count    int64   // durable records
	lastTime float64 // time of the last durable record (stream ordering check)
}

const (
	spoolHeaderLen = 5  // "VRLT" + version, written once at creation
	spoolRecordLen = 13 // fixed binary record size
)

// openSpool opens or creates dir/trace.vrlt and recovers the durable record
// count. Recovery tolerates a torn tail (a crash mid-append): the file is
// truncated back to the last whole, valid record and ingestion resumes from
// there.
func openSpool(dir string) (*spool, error) {
	path := filepath.Join(dir, "trace.vrlt")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &spool{path: path, f: f}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the file through the trace reader, counting whole valid
// records, then truncates any torn or invalid tail.
func (s *spool) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		// Fresh spool: write the header now so every later append is pure
		// record bytes and a crash can only ever tear a record, not the
		// header.
		var buf bytes.Buffer
		bw := trace.NewBinaryWriter(&buf)
		if err := bw.Flush(); err != nil {
			return err
		}
		if _, err := s.f.Write(buf.Bytes()); err != nil {
			return err
		}
		return s.f.Sync()
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := trace.NewBinaryReader(s.f)
	for {
		rec, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			break // torn tail or corruption: keep the valid prefix
		}
		s.count++
		s.lastTime = rec.Time
	}
	good := int64(spoolHeaderLen) + s.count*spoolRecordLen
	if good > info.Size() {
		return fmt.Errorf("serve: spool %s valid length %d exceeds file size %d", s.path, good, info.Size())
	}
	if good < spoolHeaderLen {
		return fmt.Errorf("serve: spool %s header unreadable", s.path)
	}
	if good != info.Size() {
		if err := s.f.Truncate(good); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	_, err = s.f.Seek(good, io.SeekStart)
	return err
}

// watermark returns the durable record count.
func (s *spool) watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// append durably appends records (already validated and in stream order) and
// returns the new watermark. The records are re-encoded through the trace
// binary writer and the 5-byte header it emits is stripped - the spool wrote
// its own header at creation. There is one appender (the session's spooler
// goroutine); the lock publishes count/lastTime to concurrent watermark
// readers on connection goroutines.
func (s *spool) append(recs []trace.Record) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(recs) == 0 {
		return s.count, nil
	}
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	for _, r := range recs {
		if r.Time < s.lastTime {
			return s.count, fmt.Errorf("serve: spool record time goes backwards (%.9f < %.9f)", r.Time, s.lastTime)
		}
		if err := bw.Write(r); err != nil {
			return s.count, err
		}
	}
	if err := bw.Flush(); err != nil {
		return s.count, err
	}
	if _, err := s.f.Write(buf.Bytes()[spoolHeaderLen:]); err != nil {
		return s.count, err
	}
	if err := s.f.Sync(); err != nil {
		return s.count, err
	}
	s.count += int64(len(recs))
	s.lastTime = recs[len(recs)-1].Time
	return s.count, nil
}

// openReader returns a fresh read-only Source over the whole spool. The
// simulator owns closing it; the spool's own append handle is unaffected.
func (s *spool) openReader() (trace.Source, io.Closer, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, nil, err
	}
	return trace.NewBinaryReader(f), f, nil
}

func (s *spool) close() error { return s.f.Close() }
