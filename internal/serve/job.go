package serve

import (
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/exp"
	"vrldram/internal/fleet"
	"vrldram/internal/profcache"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// SimSpec describes a single-scheduler simulation job: the named policy runs
// over the session's streamed trace on a bank of the given geometry. The
// zero values of Rows/Cols/Seed resolve to the paper's evaluation setup, so
// the service and the facade agree on defaults.
type SimSpec struct {
	Scheduler string  // "jedec", "raidr", "vrl", "vrl-access"
	Seed      int64   // retention-profile seed (default 42)
	Duration  float64 // simulated window (s); must be positive
	Rows      int     // bank rows (default paper bank)
	Cols      int     // bank columns (default paper bank)
}

// schedulerNames lists the accepted SimSpec.Scheduler values.
var schedulerNames = []string{"jedec", "raidr", "vrl", "vrl-access"}

// withDefaults resolves zero fields to the paper configuration.
func (s SimSpec) withDefaults() SimSpec {
	if s.Rows == 0 {
		s.Rows = device.PaperBank.Rows
	}
	if s.Cols == 0 {
		s.Cols = device.PaperBank.Cols
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Validate reports the first unusable field (after default resolution).
func (s SimSpec) Validate() error {
	s = s.withDefaults()
	ok := false
	for _, n := range schedulerNames {
		if s.Scheduler == n {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("serve: unknown scheduler %q", s.Scheduler)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("serve: duration must be positive, got %g", s.Duration)
	}
	return device.BankGeometry{Rows: s.Rows, Cols: s.Cols}.Validate()
}

// CampaignSpec describes an experiment-campaign job: the identified registry
// experiments run under the paper configuration with the given overrides
// (zero keeps the default).
type CampaignSpec struct {
	IDs      []string
	Seed     int64
	Duration float64
}

// withDefaults resolves an empty ID list to the whole registry in the
// paper's order, so "run everything" is persisted as a concrete,
// restart-stable experiment list.
func (c CampaignSpec) withDefaults() CampaignSpec {
	if len(c.IDs) == 0 {
		c.IDs = exp.IDs()
	}
	return c
}

// Validate resolves every experiment ID against the registry (after default
// resolution, so an empty list means the whole registry).
func (c CampaignSpec) Validate() error {
	c = c.withDefaults()
	for _, id := range c.IDs {
		if _, err := exp.Find(id); err != nil {
			return err
		}
	}
	return nil
}

// config maps the spec onto an experiment configuration.
func (c CampaignSpec) config(workers int) exp.Config {
	cfg := exp.Default()
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.Duration != 0 {
		cfg.Duration = c.Duration
	}
	cfg.Workers = workers
	return cfg
}

// validateShard checks a JobShard submit blob: it must decode to a
// fleet.ShardSpec that is internally consistent with its own partition plan.
// Validation happens once at submit (so a bad shard is rejected while the
// client is still listening), and again inside the job run via
// fleet.DecodeShardSpec - the blob is the durable artifact, not the struct.
func validateShard(blob []byte) error {
	if len(blob) == 0 {
		return fmt.Errorf("serve: shard submit carries no shard spec")
	}
	_, err := fleet.DecodeShardSpec(blob)
	return err
}

// buildSim constructs the bank, scheduler, and base simulator options for a
// spec, resolving the retention profile and restore model through the given
// cache so concurrent sessions with the same spec share the expensive Monte
// Carlo construction. Construction is fully deterministic in the spec, which
// is what makes kill/restart recovery bit-identical: a restarted server
// rebuilds exactly the bank and scheduler the checkpoint was taken against.
func buildSim(spec SimSpec, cache *profcache.Cache) (*dram.Bank, core.Scheduler, sim.Options, error) {
	spec = spec.withDefaults()
	params := device.Default90nm()
	geom := device.BankGeometry{Rows: spec.Rows, Cols: spec.Cols}
	dist := retention.DefaultCellDistribution()

	profile, err := cache.Profile(geom, dist, spec.Seed)
	if err != nil {
		return nil, nil, sim.Options{}, err
	}
	restore, err := cache.PaperRestoreModel(params, geom)
	if err != nil {
		return nil, nil, sim.Options{}, err
	}
	var sched core.Scheduler
	switch spec.Scheduler {
	case "jedec":
		sched, err = core.NewJEDEC(params.TRetNom, restore)
	case "raidr":
		sched, err = core.NewRAIDR(profile, core.Config{Restore: restore})
	case "vrl":
		sched, err = core.NewVRL(profile, core.Config{Restore: restore})
	case "vrl-access":
		sched, err = core.NewVRLAccess(profile, core.Config{Restore: restore})
	default:
		err = fmt.Errorf("serve: unknown scheduler %q", spec.Scheduler)
	}
	if err != nil {
		return nil, nil, sim.Options{}, err
	}
	bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		return nil, nil, sim.Options{}, err
	}
	return bank, sched, sim.Options{Duration: spec.Duration, TCK: params.TCK}, nil
}

// RunLocal executes a SimSpec in-process against a trace source: the exact
// computation the server performs for a session, minus the wire and the
// durability machinery. The equivalence tests pin the remote path to this
// baseline, and a client can fall back to it when no server is reachable.
func RunLocal(spec SimSpec, src trace.Source) (sim.Stats, error) {
	if err := spec.Validate(); err != nil {
		return sim.Stats{}, err
	}
	var cache profcache.Cache
	bank, sched, opts, err := buildSim(spec, &cache)
	if err != nil {
		return sim.Stats{}, err
	}
	if src == nil {
		src = trace.Empty{}
	}
	return sim.Run(bank, sched, src, opts)
}
