package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vrldram/internal/exp"
	"vrldram/internal/profcache"
)

// Options configures a Server. The zero value of every field resolves to a
// usable default; DataDir is required.
type Options struct {
	// DataDir is the root of all durable session state.
	DataDir string
	// MaxSessions bounds concurrently live (non-terminal) sessions; a new
	// Hello beyond it is refused with ErrCodeFull. Default 16.
	MaxSessions int
	// Workers sizes the shared simulation worker pool every session's job is
	// multiplexed onto. Default GOMAXPROCS.
	Workers int
	// JobWorkers is the per-campaign cell parallelism (exp.Config.Workers).
	// Default 1: the pool bounds total concurrency, each campaign runs its
	// cells sequentially inside its one slot.
	JobWorkers int
	// IdleTimeout is how long a connection may stay silent (no frames, no
	// pings) before the server considers it half-open and drops it. The
	// session survives; only the connection dies. Default 2 minutes.
	IdleTimeout time.Duration
	// CheckpointEvery is the simulated time between durable sim checkpoints;
	// 0 means one eighth of each job's duration.
	CheckpointEvery float64
	// IngestBuffer is the per-session ingest queue depth in batches; a
	// session whose spool (fsync) falls behind blocks its own connection's
	// reads once the buffer fills, throttling exactly that client via TCP
	// flow control. Default 8.
	IngestBuffer int
	// Logf receives operational one-liners (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.IngestBuffer <= 0 {
		o.IngestBuffer = 8
	}
	return o
}

// Server is the simulation service: one worker pool, one cache scope, many
// sessions. See the package comment for the protocol and crash model.
type Server struct {
	opts   Options
	pool   *exp.WorkerPool
	caches *profcache.Cache // session-scoped memoization: dies with the server, not the process

	lifeCtx  context.Context // cancelled at drain or crash; parks jobs and stops spoolers
	lifeStop context.CancelFunc
	crashed  atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[*conn]struct{}
	ln       net.Listener
	draining bool

	wg sync.WaitGroup // conn handlers + spoolers; the pool tracks its own workers
}

// New creates a server and recovers every session found under DataDir: torn
// spool tails are truncated, metadata loads from its newest good generation,
// and a directory too damaged to load is skipped with a log line rather than
// blocking the rest.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("serve: Options.DataDir is required")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		pool:     exp.NewWorkerPool(opts.Workers),
		caches:   &profcache.Cache{},
		lifeCtx:  ctx,
		lifeStop: cancel,
		sessions: map[string]*session{},
		conns:    map[*conn]struct{}{},
	}
	entries, err := os.ReadDir(opts.DataDir)
	if err != nil {
		cancel()
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() || len(ent.Name()) < 6 || ent.Name()[:5] != "sess-" {
			continue
		}
		sess, err := loadSession(s, filepath.Join(opts.DataDir, ent.Name()))
		if err != nil {
			s.logf("skipping unrecoverable session dir %s: %v", ent.Name(), err)
			continue
		}
		s.sessions[sess.token] = sess
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// stops accepting, cancels running jobs so they write a final checkpoint and
// park, tells attached clients to retry later, waits for every connection
// and worker, and returns nil. The listener is closed by Serve.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.crashed.Load() {
		// Crash() ran before we stored the listener (it found s.ln nil and
		// could not close it); honor it now or Accept would block forever.
		ln.Close()
	}

	// Recovered sessions resume exactly where their durable state says:
	// mid-ingest sessions get their spooler back, ready sessions re-enter
	// the job queue and continue from their last periodic checkpoint.
	s.mu.Lock()
	recovered := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		recovered = append(recovered, sess)
	}
	s.mu.Unlock()
	for _, sess := range recovered {
		sess.mu.Lock()
		state := sess.state
		sess.mu.Unlock()
		switch state {
		case StateIngest:
			sess.startSpooler()
		case StateReady:
			s.enqueue(sess)
		}
	}

	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close() // unblocks Accept; drain or crash proceeds below
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.crashed.Load() {
				break
			}
			if errors.Is(err, net.ErrClosed) {
				break
			}
			s.logf("accept: %v", err)
			continue
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			// No conn machinery yet, so write the refusal directly.
			nc.SetWriteDeadline(time.Now().Add(time.Second))
			WriteFrame(nc, FrameError, ErrorInfo{Code: ErrCodeRetry, Msg: "server is draining"}.encode())
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
		}()
	}
	close(stop)
	s.shutdown(!s.crashed.Load())
	return nil
}

// shutdown runs the common drain/crash teardown. graceful controls whether
// clients are told to come back (drain) or simply cut (crash).
func (s *Server) shutdown(graceful bool) {
	s.mu.Lock()
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Park everything: running sims observe the cancel at their next event
	// boundary and (on a graceful drain) write one final checkpoint; queued
	// jobs see the cancelled context and return untouched.
	s.lifeStop()
	for _, c := range conns {
		if graceful {
			c.sendError(ErrCodeRetry, "server is draining; reconnect to resume")
		}
		c.close()
	}
	s.wg.Wait()
	s.pool.Close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess.sp != nil {
			sess.sp.close()
		}
	}
	s.mu.Unlock()
}

// Crash simulates kill -9 for the recovery tests: from the moment it is
// called, no further checkpoint or metadata save succeeds (so recovery can
// only rely on state that was already durable), every connection is cut
// without courtesy, and the call returns once all goroutines have stopped -
// the "dead" process's file handles are closed so a successor server can
// take over the data directory.
func (s *Server) Crash() {
	s.crashed.Store(true)
	s.lifeStop()
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.shutdown(false)
}

// enqueue hands a ready session's job to the shared pool. Submission blocks
// only the calling session's goroutine when the queue is full (never another
// session's connection), and a drain unblocks it via the lifecycle context.
func (s *Server) enqueue(sess *session) {
	sess.mu.Lock()
	if sess.queued || sess.state != StateReady {
		sess.mu.Unlock()
		return
	}
	sess.queued = true
	sess.mu.Unlock()
	if err := s.pool.Submit(s.lifeCtx, func() { sess.run(s.lifeCtx) }); err != nil {
		// Drain won the race: leave the session ready; the next server
		// generation re-enqueues it.
		sess.mu.Lock()
		sess.queued = false
		sess.mu.Unlock()
	}
}

// admit applies admission control for a new session under the lock: the
// bound counts sessions that can still consume pool or ingest resources.
func (s *Server) admit() (*session, error) {
	s.mu.Lock()
	live := 0
	for _, sess := range s.sessions {
		if !sess.terminal() {
			live++
		}
	}
	if live >= s.opts.MaxSessions {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: at capacity (%d live sessions)", live)
	}
	s.mu.Unlock()

	sess, err := newSession(s)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.sessions[sess.token] = sess
	s.mu.Unlock()
	return sess, nil
}

// lookup finds a session by token.
func (s *Server) lookup(token string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

// forget removes a connection from the tracking set.
func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
