package serve

import (
	"slices"
	"testing"

	"vrldram/internal/exp"
)

// TestCampaignSpecEmptyIDsMeansRegistry pins the "run everything" contract:
// a campaign submitted with no experiment IDs validates and resolves to the
// whole registry in the paper's order (what vrlexp -remote -exp all sends).
func TestCampaignSpecEmptyIDsMeansRegistry(t *testing.T) {
	if err := (CampaignSpec{}).Validate(); err != nil {
		t.Fatalf("empty campaign spec must validate, got %v", err)
	}
	got := CampaignSpec{}.withDefaults().IDs
	if !slices.Equal(got, exp.IDs()) {
		t.Fatalf("empty IDs resolve to %v, want the registry order %v", got, exp.IDs())
	}
	if err := (CampaignSpec{IDs: []string{"no-such-exp"}}.Validate()); err == nil {
		t.Fatal("unknown experiment ID must fail validation")
	}
}
