package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"vrldram/internal/fleet"
)

// ShardExecutor adapts a vrlserved endpoint to the fleet engine's Executor
// interface: each RunShard submits one JobShard through a fresh Client, so a
// connection poisoned by one shard's death never leaks into the next. The
// fleet engine owns retry policy and quarantine; the executor's job is
// faithful error translation - a server's fatal reject becomes a permanent
// error (quarantine now), while give-ups, cuts, and timeouts stay retryable.
type ShardExecutor struct {
	opts  ClientOptions
	slots int
	seq   atomic.Int64 // per-call jitter-seed discriminator
}

// NewShardExecutor builds an executor with the given concurrency (slots < 1
// means 1). opts.Addr or opts.Dial must point at a vrlserved instance;
// opts.Seed becomes the base of each call's distinct jitter seed.
func NewShardExecutor(opts ClientOptions, slots int) *ShardExecutor {
	if slots < 1 {
		slots = 1
	}
	return &ShardExecutor{opts: opts, slots: slots}
}

// Name identifies the executor in fleet logs and reports.
func (x *ShardExecutor) Name() string { return "serve" }

// Slots reports how many shards this executor runs concurrently.
func (x *ShardExecutor) Slots() int { return x.slots }

// RunShard ships one shard to the server and waits for its summary. A
// *RejectError - the server's final verdict that the shard spec is bad or
// its job failed for keeps - is marked permanent so the fleet engine
// quarantines immediately instead of burning its attempt budget.
func (x *ShardExecutor) RunShard(ctx context.Context, ss fleet.ShardSpec) (fleet.ShardResult, error) {
	opts := x.opts
	// Distinct jitter streams per call: concurrent retries must not
	// stampede the server in lockstep.
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Seed = opts.Seed*1000003 + x.seq.Add(1)
	res, err := NewClient(opts).RunShard(ctx, ss)
	if err != nil {
		var rej *RejectError
		if errors.As(err, &rej) {
			return fleet.ShardResult{}, fleet.MarkPermanent(err)
		}
		return fleet.ShardResult{}, err
	}
	return res, nil
}
