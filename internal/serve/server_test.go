package serve

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vrldram/internal/exp"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// harness runs one server generation at a time over a shared data directory,
// with drain/crash/restart controls for the recovery tests.
type harness struct {
	t    *testing.T
	dir  string
	addr string
	opts Options

	srv    *Server
	cancel context.CancelFunc
	done   chan struct{}
}

func newHarness(t *testing.T, opts Options) *harness {
	h := &harness{t: t, dir: t.TempDir(), opts: opts}
	h.start("")
	return h
}

func (h *harness) start(addr string) {
	opts := h.opts
	opts.DataDir = h.dir
	srv, err := New(opts)
	if err != nil {
		h.t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 50 {
			h.t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.addr = ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	h.srv, h.cancel, h.done = srv, cancel, done
	h.t.Cleanup(func() {
		cancel()
		<-done
	})
}

func (h *harness) drain() {
	h.cancel()
	<-h.done
}

func (h *harness) crash() {
	h.srv.Crash()
	<-h.done
}

func (h *harness) restart() { h.start(h.addr) }

func (h *harness) client() *Client {
	return NewClient(ClientOptions{
		Addr:           h.addr,
		MaxAttempts:    50,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		HeartbeatEvery: 200 * time.Millisecond,
		IdleTimeout:    3 * time.Second,
		Seed:           7,
		Logf:           h.t.Logf,
	})
}

// waitCheckpoint blocks until some session under the data dir has saved a
// fresh simulation checkpoint since the given time, or the stop channel
// closes first. It returns the time to pass on the next call.
func (h *harness) waitCheckpoint(since time.Time, stop <-chan struct{}) time.Time {
	deadline := time.After(30 * time.Second)
	for {
		paths, _ := filepath.Glob(filepath.Join(h.dir, "sess-*", "sim.ckpt"))
		for _, p := range paths {
			if info, err := os.Stat(p); err == nil && info.ModTime().After(since) {
				return info.ModTime()
			}
		}
		select {
		case <-stop:
			return since
		case <-deadline:
			h.t.Fatal("no fresh checkpoint appeared within 30s")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func testSpec(sched string) SimSpec {
	return SimSpec{Scheduler: sched, Seed: 11, Duration: 0.2, Rows: 2048, Cols: 8}
}

// renderResults flattens campaign results into their full printed form, which
// covers every field of every result while being indifferent to nil-versus-
// empty slices (the wire codec decodes empty as nil).
func renderResults(t *testing.T, results []*exp.Result) string {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if err := r.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

func TestRemoteSimMatchesLocal(t *testing.T) {
	h := newHarness(t, Options{})
	spec := testSpec("vrl")
	recs := mkRecords(3000, spec.Rows, spec.Duration)

	want, err := RunLocal(spec, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.client().RunSim(context.Background(), spec, recs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("remote stats diverge from local:\n got %+v\nwant %+v", got, want)
	}
}

func TestRemoteCampaignMatchesLocal(t *testing.T) {
	h := newHarness(t, Options{})
	// Deterministic experiments only: tab1 embeds wall-clock timings, which
	// can never be equal across two runs.
	spec := CampaignSpec{IDs: []string{"fig1a", "fig5"}, Duration: 0.1}

	want, err := exp.RunCampaign(context.Background(), spec.config(1), exp.CampaignOptions{IDs: spec.IDs})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.client().RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := renderResults(t, got), renderResults(t, want); g != w {
		t.Fatalf("remote campaign diverges from local:\n got:\n%s\nwant:\n%s", g, w)
	}
}

func TestDrainParksAndRestartResumes(t *testing.T) {
	h := newHarness(t, Options{CheckpointEvery: 0.02})
	spec := testSpec("vrl-access")
	recs := mkRecords(4000, spec.Rows, spec.Duration)
	want, err := RunLocal(spec, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	resCh := make(chan struct{})
	var got sim.Stats
	var runErr error
	go func() {
		defer close(resCh)
		st, err := h.client().RunSim(context.Background(), spec, recs)
		got, runErr = st, err
	}()

	// Let the job reach at least one durable checkpoint, then drain: the
	// server must stop cleanly with the session parked, and a restarted
	// server must finish the job for the still-retrying client.
	h.waitCheckpoint(time.Time{}, resCh)
	h.drain()
	select {
	case <-resCh:
		// The job completed before the drain landed; equality still holds.
	default:
		h.restart()
	}
	<-resCh
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got != want {
		t.Fatalf("post-drain stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestStalledClientThrottlesOnlyItself pins the admission/backpressure
// contract: with a single worker, a client that submits a spec and then
// stalls mid-stream consumes no pool capacity, so another session runs to
// completion unhindered.
func TestStalledClientThrottlesOnlyItself(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})

	// Session A: handshake, submit, one batch... then silence.
	nc := rawDial(t, h.addr)
	defer nc.Close()
	rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	typ, payload := rawRead(t, nc)
	if typ != FrameWelcome {
		t.Fatalf("expected welcome, got frame %d", typ)
	}
	if _, err := decodeWelcome(payload); err != nil {
		t.Fatal(err)
	}
	stalledSpec := testSpec("jedec")
	rawWrite(t, nc, FrameSubmit, Submit{Kind: JobSim, Sim: stalledSpec}.encode())
	stallRecs := mkRecords(256, stalledSpec.Rows, stalledSpec.Duration)
	blob, err := encodeBatchBlob(stallRecs)
	if err != nil {
		t.Fatal(err)
	}
	rawWrite(t, nc, FrameTrace, TraceBatch{Start: 0, Blob: blob}.encode())
	// No EOF: session A now sits mid-ingest for the rest of the test.

	// Session B: a complete run through the same single-worker server.
	spec := testSpec("raidr")
	recs := mkRecords(2000, spec.Rows, spec.Duration)
	want, err := RunLocal(spec, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := h.client().RunSim(ctx, spec, recs)
	if err != nil {
		t.Fatalf("session B should complete while A stalls: %v", err)
	}
	if got != want {
		t.Fatalf("session B stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestAdmissionControl(t *testing.T) {
	h := newHarness(t, Options{MaxSessions: 1})

	first := rawDial(t, h.addr)
	defer first.Close()
	rawWrite(t, first, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	if typ, _ := rawRead(t, first); typ != FrameWelcome {
		t.Fatalf("first session refused: frame %d", typ)
	}

	second := rawDial(t, h.addr)
	defer second.Close()
	rawWrite(t, second, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	typ, payload := rawRead(t, second)
	if typ != FrameError {
		t.Fatalf("expected admission refusal, got frame %d", typ)
	}
	ei, err := decodeError(payload)
	if err != nil || ei.Code != ErrCodeFull {
		t.Fatalf("expected ErrCodeFull, got %+v (%v)", ei, err)
	}
}

func TestUnknownTokenRejected(t *testing.T) {
	h := newHarness(t, Options{})
	nc := rawDial(t, h.addr)
	defer nc.Close()
	rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion, Token: "no-such-token"}.encode())
	typ, payload := rawRead(t, nc)
	if typ != FrameError {
		t.Fatalf("expected error, got frame %d", typ)
	}
	if ei, err := decodeError(payload); err != nil || ei.Code != ErrCodeFatal {
		t.Fatalf("expected fatal error, got %+v (%v)", ei, err)
	}
}

func TestHalfOpenConnectionReaped(t *testing.T) {
	h := newHarness(t, Options{IdleTimeout: 150 * time.Millisecond})
	nc := rawDial(t, h.addr)
	defer nc.Close()
	rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	if typ, _ := rawRead(t, nc); typ != FrameWelcome {
		t.Fatalf("expected welcome, got frame %d", typ)
	}
	// Stay silent past the idle timeout: the server must hang up.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server kept a silent connection alive past its idle timeout")
	}
}

func TestInvalidSpecFailsSession(t *testing.T) {
	h := newHarness(t, Options{})
	nc := rawDial(t, h.addr)
	defer nc.Close()
	rawWrite(t, nc, FrameHello, Hello{Proto: ProtocolVersion}.encode())
	typ, _ := rawRead(t, nc)
	if typ != FrameWelcome {
		t.Fatalf("expected welcome, got frame %d", typ)
	}
	rawWrite(t, nc, FrameSubmit, Submit{Kind: JobSim, Sim: SimSpec{Scheduler: "nonsense", Duration: 1}}.encode())
	typ, payload := rawRead(t, nc)
	if typ != FrameError {
		t.Fatalf("expected error, got frame %d", typ)
	}
	if ei, err := decodeError(payload); err != nil || ei.Code != ErrCodeFatal {
		t.Fatalf("expected fatal error, got %+v (%v)", ei, err)
	}
}

// --- raw wire helpers --------------------------------------------------------

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

func rawWrite(t *testing.T, nc net.Conn, typ byte, payload []byte) {
	t.Helper()
	nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(nc, typ, payload); err != nil {
		t.Fatal(err)
	}
}

func rawRead(t *testing.T, nc net.Conn) (byte, []byte) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	return typ, payload
}
