package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"vrldram/internal/checkpoint"
	"vrldram/internal/core"
	"vrldram/internal/exp"
	"vrldram/internal/fleet"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
)

// session is one client workload's full lifetime on the server, across any
// number of connections, restarts, and crashes. Its durable footprint is one
// directory under the server's data dir:
//
//	sess-<token>/
//	  meta        session state machine (checkpoint container, KindSession)
//	  trace.vrlt  the spooled trace stream (sim sessions)
//	  sim.ckpt    periodic simulation checkpoints (while a sim job runs)
//	  camp.ckpt   completed-experiment checkpoints (campaign sessions)
//
// The durable state machine has no "running" state: a session on disk is
// ingesting, ready, done, or failed, and a job in flight leaves the state at
// StateReady. A crash therefore requires no state transition at all - on
// restart, ready sessions are simply re-enqueued and resume from their last
// periodic checkpoint.
type session struct {
	token string
	dir   string
	srv   *Server
	meta  *checkpoint.Manager

	mu         sync.Mutex
	state      byte
	haveSpec   bool
	spec       Submit
	traceTotal int64 // expected records per TraceEOF; -1 until known
	result     ResultMsg
	haveResult bool
	failMsg    string
	sp         *spool
	attached   *conn // current connection, nil when detached
	queued     bool  // job handed to the pool (in-memory only)

	ingest     chan ingestItem
	spoolerRun bool // spooler goroutine alive (in-memory only)
}

// ingestItem is one unit of the session's ingest pipeline: a batch of
// validated records at an absolute stream position (or the end-of-stream
// marker) plus the connection to ack on once the batch is durable.
type ingestItem struct {
	start   int64 // absolute index of recs[0] in the session's stream
	recs    []trace.Record
	eof     bool
	total   int64
	replyTo *conn
}

// newToken mints a session token. Tokens are capability handles, not
// predictions the simulation depends on, so real randomness is fine here -
// determinism lives in the specs and seeds.
func newToken() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// --- durable metadata --------------------------------------------------------

// encodeMeta flattens the durable state under the session lock.
func (s *session) encodeMetaLocked() []byte {
	var e core.StateEncoder
	e.Tag("ses1")
	e.Uint64(uint64(s.state))
	e.Bool(s.haveSpec)
	if s.haveSpec {
		e.Bytes(s.spec.encode())
	} else {
		e.Bytes(nil)
	}
	e.Int(s.traceTotal)
	e.Bool(s.haveResult)
	e.Uint64(uint64(s.result.Kind))
	e.Bytes(s.result.Blob)
	e.Bytes([]byte(s.failMsg))
	return e.Data()
}

func (s *session) decodeMeta(p []byte) error {
	d := core.NewStateDecoder(p)
	d.ExpectTag("ses1")
	s.state = byte(d.Uint64())
	s.haveSpec = d.Bool()
	specBytes := d.Bytes()
	s.traceTotal = d.Int()
	s.haveResult = d.Bool()
	s.result.Kind = byte(d.Uint64())
	s.result.Blob = append([]byte(nil), d.Bytes()...)
	s.failMsg = string(d.Bytes())
	if err := d.Finish(); err != nil {
		return err
	}
	if s.haveSpec {
		spec, err := decodeSubmit(specBytes)
		if err != nil {
			return fmt.Errorf("serve: session %s spec: %w", s.token, err)
		}
		s.spec = spec
	}
	return nil
}

// saveMetaLocked durably persists the state machine. Callers hold s.mu;
// every externally visible transition (ingest, ready, done, failed) goes
// through here before it is acknowledged to anyone.
func (s *session) saveMetaLocked() error {
	payload := s.encodeMetaLocked()
	return s.meta.Save(func(w io.Writer) error {
		return checkpoint.EncodeBlob(w, checkpoint.KindSession, payload)
	})
}

// loadSession reconstructs a session from its directory, recovering the
// trace spool (including torn-tail truncation) when the spec streams one.
func loadSession(srv *Server, dir string) (*session, error) {
	token := filepath.Base(dir)
	const prefix = "sess-"
	if len(token) <= len(prefix) || token[:len(prefix)] != prefix {
		return nil, fmt.Errorf("serve: not a session directory: %s", dir)
	}
	token = token[len(prefix):]
	meta, err := checkpoint.NewManager(filepath.Join(dir, "meta"), 2)
	if err != nil {
		return nil, err
	}
	s := &session{token: token, dir: dir, srv: srv, meta: meta, traceTotal: -1}
	if _, err := meta.Load(func(r io.Reader) error {
		payload, derr := checkpoint.DecodeBlob(r, checkpoint.KindSession)
		if derr != nil {
			return derr
		}
		return s.decodeMeta(payload)
	}); err != nil {
		return nil, err
	}
	if s.haveSpec && s.spec.Kind == JobSim {
		if s.sp, err = openSpool(dir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newSession mints a token and creates the durable directory.
func newSession(srv *Server) (*session, error) {
	token, err := newToken()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(srv.opts.DataDir, "sess-"+token)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta, err := checkpoint.NewManager(filepath.Join(dir, "meta"), 2)
	if err != nil {
		return nil, err
	}
	s := &session{token: token, dir: dir, srv: srv, meta: meta, state: StateNew, traceTotal: -1}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s, s.saveMetaLocked()
}

// --- wire-facing operations --------------------------------------------------

// welcomeLocked builds the Welcome for the current durable state.
func (s *session) welcomeLocked() Welcome {
	w := Welcome{Token: s.token, State: s.state, HaveSpec: s.haveSpec}
	if s.sp != nil {
		w.Watermark = s.sp.watermark()
	}
	return w
}

// attach makes c the session's connection, superseding (and closing) any
// previous one: the newest reconnect wins, so a half-open old connection can
// never wedge a session.
func (s *session) attach(c *conn) (Welcome, *ResultMsg, string) {
	s.mu.Lock()
	prev := s.attached
	s.attached = c
	w := s.welcomeLocked()
	var res *ResultMsg
	if s.haveResult {
		r := s.result
		res = &r
	}
	fail := ""
	if s.state == StateFailed {
		fail = s.failMsg
	}
	s.mu.Unlock()
	if prev != nil && prev != c {
		prev.sendError(ErrCodeRetry, "superseded by a newer connection for this session")
		prev.close()
	}
	return w, res, fail
}

// detach clears the attachment if c still owns it.
func (s *session) detach(c *conn) {
	s.mu.Lock()
	if s.attached == c {
		s.attached = nil
	}
	s.mu.Unlock()
}

// notify best-effort sends a frame to the attached connection. Durable state
// is the source of truth; a dropped notification is re-derived at the next
// reconnect, so nothing here may block a worker.
func (s *session) notify(typ byte, payload []byte) {
	s.mu.Lock()
	c := s.attached
	s.mu.Unlock()
	if c != nil {
		c.trySend(typ, payload)
	}
}

// TerminalStateError rejects a frame addressed to a session that is already
// done or failed. It is deliberately NOT a job failure: the session's
// durable verdict (Result or fatal Error) is replayed at the next attach,
// and the connection relays it as ErrCodeState so the client reconnects for
// the authoritative answer instead of giving up.
type TerminalStateError struct {
	State byte   // StateDone or StateFailed
	Op    string // what the client tried ("submit", "trace batch", "trace EOF")
}

func (e *TerminalStateError) Error() string {
	name := "failed"
	if e.State == StateDone {
		name = "done"
	}
	return fmt.Sprintf("serve: %s on a %s session; reconnect for its result", e.Op, name)
}

// terminalErrLocked returns the typed rejection when the session's state is
// terminal; callers hold s.mu.
func (s *session) terminalErrLocked(op string) *TerminalStateError {
	if s.state == StateDone || s.state == StateFailed {
		return &TerminalStateError{State: s.state, Op: op}
	}
	return nil
}

// submit accepts a job specification. A duplicate Submit on a session that
// already has one is ignored (the client races Welcome.HaveSpec against its
// own send); a conflicting one is a client bug and fails the connection.
func (s *session) submit(sub Submit, c *conn) error {
	switch sub.Kind {
	case JobSim:
		if err := sub.Sim.Validate(); err != nil {
			return err
		}
		sub.Sim = sub.Sim.withDefaults()
	case JobCampaign:
		if err := sub.Campaign.Validate(); err != nil {
			return err
		}
		sub.Campaign = sub.Campaign.withDefaults()
	case JobShard:
		if err := validateShard(sub.Shard); err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: unknown job kind %d", sub.Kind)
	}

	s.mu.Lock()
	// Terminal wins over duplicate-tolerance: a submit addressed to a done
	// or failed session - always a reconnect race, since a live client only
	// submits right after a HaveSpec=false Welcome - is pointed back at the
	// handshake, where the durable verdict is replayed.
	if terr := s.terminalErrLocked("submit"); terr != nil {
		s.mu.Unlock()
		return terr
	}
	if s.haveSpec {
		s.mu.Unlock()
		return nil
	}
	if s.state != StateNew {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("serve: submit in state %d", st)
	}
	s.haveSpec = true
	s.spec = sub
	var err error
	if sub.Kind == JobSim {
		s.state = StateIngest
		if s.sp == nil {
			s.sp, err = openSpool(s.dir)
		}
	} else {
		s.state = StateReady
	}
	if err == nil {
		err = s.saveMetaLocked()
	}
	if err != nil {
		// Leave the session pristine: the client may retry the submit.
		s.haveSpec = false
		s.state = StateNew
		s.mu.Unlock()
		return err
	}
	kind := sub.Kind
	s.mu.Unlock()

	if kind == JobSim {
		s.startSpooler()
	} else {
		s.srv.enqueue(s)
	}
	return nil
}

// pushBatch validates and hands one trace batch to the ingest pipeline,
// blocking when the per-session buffer is full - that block propagates
// through the connection's read loop into TCP flow control, throttling
// exactly this client. next is the connection's stream cursor (initialized
// from the watermark its Welcome advertised): a batch past it is a gap the
// client must reconnect to repair, a batch behind it (a resend) is trimmed.
// The cursor only orders this connection's stream; the spooler re-trims
// against the durable count at apply time, which is what makes batches
// queued by a superseded connection and the resends of its successor
// converge without duplication.
func (s *session) pushBatch(ctx context.Context, b TraceBatch, c *conn, next *int64) error {
	recs, err := decodeBatchBlob(b.Blob)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if !s.haveSpec || s.spec.Kind != JobSim {
		s.mu.Unlock()
		return fmt.Errorf("serve: trace batch without a sim spec")
	}
	if s.state != StateIngest {
		terr := s.terminalErrLocked("trace batch")
		st := s.state
		s.mu.Unlock()
		if terr != nil {
			return terr // the job already settled; send the client back for its verdict
		}
		if st == StateReady {
			return nil // late resend after EOF; the stream is already complete
		}
		return fmt.Errorf("serve: trace batch in state %d", st)
	}
	ch := s.ingest
	s.mu.Unlock()

	if b.Start > *next {
		return fmt.Errorf("serve: trace batch starts at %d but the stream is at %d (resync from the watermark)", b.Start, *next)
	}
	start := b.Start
	if skip := *next - start; skip > 0 {
		if skip >= int64(len(recs)) {
			c.trySend(FrameAck, Ack{Watermark: s.sp.watermark()}.encode())
			return nil
		}
		recs = recs[skip:]
		start = *next
	}
	select {
	case ch <- ingestItem{start: start, recs: recs, replyTo: c}:
		*next = start + int64(len(recs))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pushEOF queues the end-of-stream marker behind every pending batch.
func (s *session) pushEOF(ctx context.Context, total int64, c *conn) error {
	s.mu.Lock()
	if !s.haveSpec || s.spec.Kind != JobSim {
		s.mu.Unlock()
		return fmt.Errorf("serve: trace EOF without a sim spec")
	}
	if s.state != StateIngest {
		terr := s.terminalErrLocked("trace EOF")
		st := s.state
		s.mu.Unlock()
		if terr != nil {
			return terr
		}
		if st == StateReady {
			return nil // duplicate EOF after a reconnect race
		}
		return fmt.Errorf("serve: trace EOF in state %d", st)
	}
	ch := s.ingest
	s.mu.Unlock()
	select {
	case ch <- ingestItem{eof: true, total: total, replyTo: c}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// decodeBatchBlob parses one TraceBatch blob (a complete binary trace) into
// records, enforcing the trace codec's validation and intra-batch ordering.
func decodeBatchBlob(blob []byte) ([]trace.Record, error) {
	br := trace.NewBinaryReader(bytes.NewReader(blob))
	var recs []trace.Record
	for {
		rec, err := br.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, &ProtocolError{Msg: "trace batch: " + err.Error()}
		}
		recs = append(recs, rec)
	}
}

// --- ingest spooler ----------------------------------------------------------

// startSpooler launches the session's spooler goroutine if it is not already
// running: the single writer of the trace spool, fed by the bounded ingest
// channel. One goroutine per actively ingesting session, none once the
// stream completes.
func (s *session) startSpooler() {
	s.mu.Lock()
	if s.spoolerRun || s.state != StateIngest || s.sp == nil {
		s.mu.Unlock()
		return
	}
	s.spoolerRun = true
	buf := s.srv.opts.IngestBuffer
	s.ingest = make(chan ingestItem, buf)
	ch := s.ingest
	s.mu.Unlock()

	s.srv.wg.Add(1)
	go func() {
		defer s.srv.wg.Done()
		defer func() {
			s.mu.Lock()
			s.spoolerRun = false
			s.mu.Unlock()
		}()
		for {
			select {
			case item := <-ch:
				if done := s.spoolOne(item); done {
					return
				}
			case <-s.srv.lifeCtx.Done():
				return // drain or crash: unacked batches are the client's to resend
			}
		}
	}()
}

// spoolOne applies one ingest item; it reports true when the spooler should
// exit (stream complete or session failed).
func (s *session) spoolOne(item ingestItem) bool {
	if item.eof {
		have := s.sp.watermark()
		if have != item.total {
			s.fail(fmt.Errorf("serve: trace EOF claims %d records but %d are durable", item.total, have))
			return true
		}
		s.mu.Lock()
		s.traceTotal = item.total
		s.state = StateReady
		err := s.saveMetaLocked()
		s.mu.Unlock()
		if err != nil {
			s.fail(err)
			return true
		}
		s.srv.enqueue(s)
		return true
	}
	// Authoritative duplicate trim: a superseded connection's still-queued
	// batches and the resends of its successor overlap here, and only the
	// durable count decides what is genuinely new.
	have := s.sp.watermark()
	recs := item.recs
	if item.start > have {
		s.fail(fmt.Errorf("serve: ingest gap: batch at %d but only %d records durable", item.start, have))
		return true
	}
	if skip := have - item.start; skip > 0 {
		if skip >= int64(len(recs)) {
			if item.replyTo != nil {
				item.replyTo.trySend(FrameAck, Ack{Watermark: have}.encode())
			}
			return false
		}
		recs = recs[skip:]
	}
	wm, err := s.sp.append(recs)
	if err != nil {
		s.fail(err)
		return true
	}
	if item.replyTo != nil {
		item.replyTo.trySend(FrameAck, Ack{Watermark: wm}.encode())
	}
	return false
}

// --- job execution -----------------------------------------------------------

// errCrashed marks checkpoint writes suppressed by the crash test hook.
var errCrashed = errors.New("serve: server crashed (checkpoint suppressed)")

// run executes the session's job on a pool worker. Panics are contained to
// the session; cancellation (drain or crash) parks the job with its durable
// state intact for the next server generation.
func (s *session) run(ctx context.Context) {
	defer func() {
		if r := recover(); r != nil {
			s.fail(fmt.Errorf("serve: session job panicked: %v", r))
		}
	}()
	s.mu.Lock()
	s.queued = false
	if s.state != StateReady {
		s.mu.Unlock()
		return
	}
	spec := s.spec
	s.mu.Unlock()
	if ctx.Err() != nil {
		return // parked before it started; re-enqueued on restart
	}

	var err error
	switch spec.Kind {
	case JobSim:
		err = s.runSim(ctx, spec.Sim)
	case JobCampaign:
		err = s.runCampaign(ctx, spec.Campaign)
	case JobShard:
		err = s.runShard(ctx, spec.Shard)
	default:
		err = fmt.Errorf("serve: unknown job kind %d", spec.Kind)
	}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded), errors.Is(err, errCrashed):
		// Parked: state stays StateReady, checkpoints stay on disk.
	default:
		s.fail(err)
	}
}

// runSim executes a sim job with periodic durable checkpoints, resuming from
// the newest good one when the directory holds any.
func (s *session) runSim(ctx context.Context, spec SimSpec) error {
	bank, sched, opts, err := buildSim(spec, s.srv.caches)
	if err != nil {
		return err
	}
	mgr, err := checkpoint.NewManager(filepath.Join(s.dir, "sim.ckpt"), 0)
	if err != nil {
		return err
	}
	opts.CheckpointEvery = s.srv.opts.CheckpointEvery
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = opts.Duration / 8
	}
	duration := opts.Duration
	opts.CheckpointSink = func(cp *sim.Checkpoint) error {
		if s.srv.crashed.Load() {
			return errCrashed // a real kill -9 would not have written this
		}
		if err := mgr.Save(func(w io.Writer) error { return checkpoint.EncodeSim(w, cp) }); err != nil {
			return err
		}
		s.notify(FrameProgress, Progress{T: cp.Time, Duration: duration}.encode())
		return nil
	}
	if _, statErr := os.Stat(mgr.Path()); statErr == nil {
		var cp *sim.Checkpoint
		if _, err := mgr.Load(func(r io.Reader) error {
			var derr error
			cp, derr = checkpoint.DecodeSim(r)
			return derr
		}); err == nil {
			opts.Resume = cp
		}
		// A directory where every generation is corrupt restarts cold: the
		// spool still holds the full input, so the result is unchanged.
	}

	src, closer, err := s.sp.openReader()
	if err != nil {
		return err
	}
	defer closer.Close()
	st, err := sim.RunContext(ctx, bank, sched, src, opts)
	if err != nil {
		return err
	}
	return s.finish(ResultMsg{Kind: JobSim, Blob: EncodeStats(st)})
}

// runCampaign executes a campaign job, checkpointing after every completed
// experiment so a restart replays none of them.
func (s *session) runCampaign(ctx context.Context, spec CampaignSpec) error {
	mgr, err := checkpoint.NewManager(filepath.Join(s.dir, "camp.ckpt"), 0)
	if err != nil {
		return err
	}
	done := map[string]*exp.Result{}
	if _, statErr := os.Stat(mgr.Path()); statErr == nil {
		var prev []*exp.Result
		if _, err := mgr.Load(func(r io.Reader) error {
			var derr error
			prev, derr = checkpoint.DecodeCampaign(r)
			return derr
		}); err == nil {
			for _, r := range prev {
				done[r.ID] = r
			}
		}
	}
	var finished []*exp.Result
	total := float64(len(spec.IDs))
	results, err := exp.RunCampaign(ctx, spec.config(s.srv.opts.JobWorkers), exp.CampaignOptions{
		IDs:     spec.IDs,
		Restore: func(id string) *exp.Result { return done[id] },
		OnResult: func(r *exp.Result) error {
			finished = append(finished, r)
			if s.srv.crashed.Load() {
				return errCrashed
			}
			all := make([]*exp.Result, 0, len(done)+len(finished))
			for _, id := range spec.IDs {
				if res, ok := done[id]; ok {
					all = append(all, res)
				}
			}
			all = append(all, finished...)
			if err := mgr.Save(func(w io.Writer) error { return checkpoint.EncodeCampaign(w, all) }); err != nil {
				return err
			}
			s.notify(FrameProgress, Progress{T: float64(len(all)), Duration: total}.encode())
			return nil
		},
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := checkpoint.EncodeCampaign(&buf, results); err != nil {
		return err
	}
	return s.finish(ResultMsg{Kind: JobCampaign, Blob: buf.Bytes()})
}

// runShard executes a fleet shard job. No mid-shard checkpoint exists or is
// needed: a shard is a pure function of its spec, so a parked or crashed
// shard job recomputes from scratch on the next server generation and lands
// on the same bytes.
func (s *session) runShard(ctx context.Context, blob []byte) error {
	ss, err := fleet.DecodeShardSpec(blob)
	if err != nil {
		return err
	}
	res, err := fleet.RunShard(ctx, ss, s.srv.caches)
	if err != nil {
		return err
	}
	return s.finish(ResultMsg{Kind: JobShard, Blob: res.Encode()})
}

// finish records a successful result durably, then announces it.
func (s *session) finish(res ResultMsg) error {
	s.mu.Lock()
	s.state = StateDone
	s.result = res
	s.haveResult = true
	err := s.saveMetaLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.notify(FrameResult, res.encode())
	return nil
}

// fail records a terminal failure durably, then announces it. If even the
// metadata write fails the session stays in its previous durable state and
// the failure is surfaced on the next attach instead.
func (s *session) fail(cause error) {
	s.mu.Lock()
	s.state = StateFailed
	s.failMsg = cause.Error()
	saveErr := s.saveMetaLocked()
	s.mu.Unlock()
	if saveErr != nil {
		s.srv.logf("session %s: failed (%v) and could not persist failure: %v", s.token, cause, saveErr)
	}
	s.notify(FrameError, ErrorInfo{Code: ErrCodeFatal, Msg: cause.Error()}.encode())
}

// terminal reports whether the session can no longer consume resources.
func (s *session) terminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateDone || s.state == StateFailed
}
