package spice

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// --- Current source ------------------------------------------------------------

type isource struct {
	a, b int
	wave Waveform
}

func (d *isource) stampStep(c *stampCtx) { c.addI(d.a, d.b, d.wave(c.t)) }
func (d *isource) nodes() []int          { return []int{d.a, d.b} }
func (d *isource) linear() bool          { return true }

// I adds an independent current source driving wave(t) amperes from node a
// into node b.
func (ckt *Circuit) I(a, b string, wave Waveform) {
	ckt.add(&isource{ckt.Node(a), ckt.Node(b), wave})
}

// --- Integration method --------------------------------------------------------

// Method selects the numerical integration scheme for capacitors.
type Method int

// Supported integration methods.
const (
	// BackwardEuler is robust and strongly damped; the default.
	BackwardEuler Method = iota
	// Trapezoidal is second-order accurate; preferable for smooth RC
	// transients at larger steps, at the cost of possible ringing on
	// discontinuities.
	Trapezoidal
)

// SetMethod selects the capacitor integration scheme for subsequent
// Transient runs.
func (ckt *Circuit) SetMethod(m Method) error {
	switch m {
	case BackwardEuler, Trapezoidal:
		ckt.method = m
		return nil
	default:
		return fmt.Errorf("spice: unknown integration method %d", m)
	}
}

// --- SPICE deck export ----------------------------------------------------------

// ExportDeck writes the circuit as a SPICE-format netlist deck: the standard
// interchange format, so the reference netlists can be re-simulated with an
// external simulator. Waveform-driven elements export their value at t = 0
// with a comment noting the time dependence (decks are static text; drive
// shapes must be re-declared in the target tool).
func (ckt *Circuit) ExportDeck(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "* %s\n* exported by vrldram mini-SPICE\n", title); err != nil {
		return err
	}
	name := func(n int) string {
		if n < 0 {
			return "0"
		}
		return ckt.nodeOf[n]
	}
	counts := map[string]int{}
	next := func(prefix string) string {
		counts[prefix]++
		return fmt.Sprintf("%s%d", prefix, counts[prefix])
	}
	for _, d := range ckt.devices {
		var err error
		switch dev := d.(type) {
		case *resistor:
			_, err = fmt.Fprintf(w, "%s %s %s %.6g\n", next("R"), name(dev.a), name(dev.b), 1/dev.g)
		case *capacitor:
			_, err = fmt.Fprintf(w, "%s %s %s %.6g\n", next("C"), name(dev.a), name(dev.b), dev.cap)
		case *capDriven:
			_, err = fmt.Fprintf(w, "%s %s %s %.6g ; far plate driven, v(0)=%.6g\n",
				next("C"), name(dev.a), "0", dev.cap, dev.wave(0))
		case *vsource:
			_, err = fmt.Fprintf(w, "%s %s 0 DC %.6g ; Rs=%.4g, time-dependent drive\n",
				next("V"), name(dev.a), dev.wave(0), 1/dev.g)
		case *isource:
			_, err = fmt.Fprintf(w, "%s %s %s DC %.6g ; time-dependent drive\n",
				next("I"), name(dev.a), name(dev.b), dev.wave(0))
		case *timeSwitch:
			_, err = fmt.Fprintf(w, "%s %s %s ; switch ron=%.4g closes@%.4gs opens@%.4gs\n",
				next("S"), name(dev.a), name(dev.b), 1/dev.gon, dev.onAt, dev.offAt)
		case *satSwitch:
			_, err = fmt.Fprintf(w, "%s %s %s ; sat access ron=%.4g idsat=%.4g on@%.4gs\n",
				next("S"), name(dev.a), name(dev.b), dev.ron, dev.idsat, dev.onAt)
		case *mosfet:
			typ := "NMOS"
			if dev.p.Type == PMOS {
				typ = "PMOS"
			}
			gate := "driven"
			if dev.gateWave == nil {
				gate = name(dev.g)
			}
			_, err = fmt.Fprintf(w, "%s %s %s %s 0 %s ; beta=%.4g vt=%.4g lambda=%.4g\n",
				next("M"), name(dev.d), gate, name(dev.s), typ, dev.p.Beta, dev.p.Vt, dev.p.Lambda)
		default:
			_, err = fmt.Fprintf(w, "* unknown device %T\n", d)
		}
		if err != nil {
			return err
		}
	}
	// Initial conditions.
	nodes := make([]int, 0, len(ckt.ic))
	for n := range ckt.ic {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if _, err := fmt.Fprintf(w, ".IC V(%s)=%.6g\n", name(n), ckt.ic[n]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".END")
	return err
}

// --- Energy measurement ----------------------------------------------------------

// CapacitorEnergy returns the energy stored on a capacitance C at voltage v.
func CapacitorEnergy(c, v float64) float64 { return 0.5 * c * v * v }

// RMSDiff returns the root-mean-square difference between two equal-length
// sample vectors: the waveform comparison metric of Figure 5.
func RMSDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("spice: RMSDiff length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}
