package spice

import (
	"strings"
	"testing"
)

// FuzzParseDeck: arbitrary deck text must never panic; parsed circuits must
// be structurally sound (interned nodes, only known devices).
func FuzzParseDeck(f *testing.F) {
	f.Add("R1 a b 1k\nC1 b 0 1p\n.END")
	f.Add("V1 a 0 DC 1.2\nI1 0 a DC 1u\n.IC V(a)=0.5")
	f.Add("* only a comment")
	f.Add(".IC V(=")
	f.Add("M1 d g s 0 NMOS")
	f.Fuzz(func(t *testing.T, input string) {
		ckt, _, err := ParseDeck(strings.NewReader(input))
		if err != nil {
			return
		}
		if ckt.NumNodes() < 0 {
			t.Fatal("negative node count")
		}
	})
}

// FuzzParseValue: arbitrary value strings must never panic.
func FuzzParseValue(f *testing.F) {
	f.Add("1k")
	f.Add("45f")
	f.Add("2meg")
	f.Add("--")
	f.Add("1e999")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ParseValue(input)
	})
}
