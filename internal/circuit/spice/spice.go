// Package spice is a compact transient circuit simulator: the stand-in for
// the HSPICE runs the paper uses to validate its analytical model (Figures
// 1a and 5, Table 1).
//
// It implements nodal analysis with backward-Euler integration and
// Newton-Raphson iteration for the nonlinear devices. Supported elements:
//
//   - resistors,
//   - capacitors (node-to-node and node-to-driven-waveform),
//   - voltage sources (Norton form with a small series resistance, which
//     keeps the conductance matrix free of zero diagonals),
//   - time-controlled switches,
//   - level-1 (Shichman-Hodges) MOSFETs, N and P, whose gate is either a
//     circuit node or a driven waveform (the latter models a wordline driver
//     without creating a dense matrix row across every bitline).
//
// Small circuits (the equalizer and the latch sense amplifier, which contain
// the nonlinear devices) solve through dense LU with partial pivoting; large
// cell-array netlists are linear by construction and solve through a banded
// no-pivot factorization, so transient cost is O(nodes * bandwidth^2) per
// step. This is what makes the engine usable for Table 1's bank-size sweep
// while still being orders of magnitude slower than the analytical model -
// the trade-off Table 1 exists to demonstrate.
package spice

import (
	"errors"
	"fmt"
	"math"

	"vrldram/internal/linalg"
)

// Gmin is the minimum conductance tied from every node to ground for
// numerical robustness, as in production SPICE implementations.
const Gmin = 1e-12

// denseCutoff is the node count above which the banded solver is used.
const denseCutoff = 64

// Waveform is a time-dependent source value in volts.
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// PWL returns a piecewise-linear waveform through the given (time, value)
// points; it holds the first value before the first point and the last value
// after the last point. Points must be in increasing time order.
func PWL(times, values []float64) (Waveform, error) {
	if len(times) != len(values) || len(times) == 0 {
		return nil, fmt.Errorf("spice: PWL needs equal, non-empty point lists (got %d, %d)", len(times), len(values))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("spice: PWL times must increase (point %d)", i)
		}
	}
	ts := append([]float64(nil), times...)
	vs := append([]float64(nil), values...)
	return func(t float64) float64 {
		if t <= ts[0] {
			return vs[0]
		}
		for i := 1; i < len(ts); i++ {
			if t <= ts[i] {
				f := (t - ts[i-1]) / (ts[i] - ts[i-1])
				return vs[i-1] + f*(vs[i]-vs[i-1])
			}
		}
		return vs[len(vs)-1]
	}, nil
}

// Ramp returns a v0->v1 ramp starting at t0 lasting rise seconds.
func Ramp(v0, v1, t0, rise float64) Waveform {
	return func(t float64) float64 {
		switch {
		case t <= t0:
			return v0
		case t >= t0+rise:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/rise
		}
	}
}

// matrix abstracts the two storage/solver backends.
type matrix interface {
	AddAt(i, j int, v float64)
	Zero()
}

// stampCtx carries the per-iteration assembly state handed to devices.
type stampCtx struct {
	m      matrix
	rhs    []float64
	x      []float64 // current Newton iterate (node voltages)
	xPrev  []float64 // node voltages at the previous accepted timestep
	t      float64   // time at the end of the current step
	h      float64   // step size
	method Method
	capI   map[*capacitor]float64 // trapezoidal current memory
}

// volt returns the iterate voltage of a node index (ground = -1 reads 0).
func (c *stampCtx) volt(n int) float64 {
	if n < 0 {
		return 0
	}
	return c.x[n]
}

func (c *stampCtx) voltPrev(n int) float64 {
	if n < 0 {
		return 0
	}
	return c.xPrev[n]
}

// addM stamps into the matrix, dropping ground rows/columns.
func (c *stampCtx) addM(i, j int, v float64) {
	if i >= 0 && j >= 0 {
		c.m.AddAt(i, j, v)
	}
}

// addG stamps a conductance g between nodes a and b (ground = -1).
func (c *stampCtx) addG(a, b int, g float64) {
	c.addM(a, a, g)
	c.addM(b, b, g)
	c.addM(a, b, -g)
	c.addM(b, a, -g)
}

// addI stamps a current source of i amps flowing from node a into node b.
func (c *stampCtx) addI(a, b int, i float64) {
	if a >= 0 {
		c.rhs[a] -= i
	}
	if b >= 0 {
		c.rhs[b] += i
	}
}

// device is the element interface: contribute companion-model stamps for
// the current Newton iterate.
type device interface {
	stamp(c *stampCtx)
	nodes() []int // for bandwidth computation
	linear() bool
}

// Circuit is a netlist under construction and the engine that simulates it.
type Circuit struct {
	names   map[string]int
	nodeOf  []string
	devices []device
	caps    []*capacitor
	ic      map[int]float64
	hasNL   bool
	method  Method
}

// New returns an empty circuit. The node name "0" (and "gnd") is ground.
func New() *Circuit {
	return &Circuit{names: map[string]int{}, ic: map[int]float64{}}
}

// Node interns a node name and returns its index; "0" and "gnd" return -1
// (ground).
func (ckt *Circuit) Node(name string) int {
	if name == "0" || name == "gnd" {
		return -1
	}
	if n, ok := ckt.names[name]; ok {
		return n
	}
	n := len(ckt.nodeOf)
	ckt.names[name] = n
	ckt.nodeOf = append(ckt.nodeOf, name)
	return n
}

// NumNodes returns the number of non-ground nodes.
func (ckt *Circuit) NumNodes() int { return len(ckt.nodeOf) }

// SetIC sets the initial (t=0) voltage of a node; unset nodes start at 0 V.
func (ckt *Circuit) SetIC(name string, v float64) {
	n := ckt.Node(name)
	if n >= 0 {
		ckt.ic[n] = v
	}
}

func (ckt *Circuit) add(d device) {
	ckt.devices = append(ckt.devices, d)
	if c, ok := d.(*capacitor); ok {
		ckt.caps = append(ckt.caps, c)
	}
	if !d.linear() {
		ckt.hasNL = true
	}
}

// Result holds a transient waveform set.
type Result struct {
	Times  []float64
	Probes map[string][]float64
}

// At returns the probed voltage of a node at the sample nearest to time t.
func (r *Result) At(probe string, t float64) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	if len(r.Times) == 0 {
		return 0, errors.New("spice: empty result")
	}
	best, bd := 0, math.Inf(1)
	for i, tt := range r.Times {
		if d := math.Abs(tt - t); d < bd {
			best, bd = i, d
		}
	}
	return vs[best], nil
}

// FirstCrossing returns the earliest time the probed voltage satisfies
// rising ? v >= level : v <= level, or an error if it never does.
func (r *Result) FirstCrossing(probe string, level float64, rising bool) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	for i, v := range vs {
		if (rising && v >= level) || (!rising && v <= level) {
			return r.Times[i], nil
		}
	}
	return 0, fmt.Errorf("spice: probe %q never crosses %.4g", probe, level)
}

// Final returns the last sample of a probe.
func (r *Result) Final(probe string) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok || len(vs) == 0 {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	return vs[len(vs)-1], nil
}

// TransientOpts tunes the simulation loop.
type TransientOpts struct {
	TStop   float64 // end time (s)
	H       float64 // step (s)
	Probes  []string
	MaxIter int     // Newton iterations per step (default 60)
	AbsTol  float64 // Newton voltage convergence (default 1 uV)
}

// Transient runs backward-Euler transient analysis from the configured
// initial conditions ("UIC" mode: no DC operating-point solve; the DRAM
// netlists always specify consistent initial states).
func (ckt *Circuit) Transient(opts TransientOpts) (*Result, error) {
	if opts.TStop <= 0 || opts.H <= 0 {
		return nil, fmt.Errorf("spice: TStop and H must be positive (got %g, %g)", opts.TStop, opts.H)
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 60
	}
	if opts.AbsTol == 0 {
		opts.AbsTol = 1e-6
	}
	n := ckt.NumNodes()
	if n == 0 {
		return nil, errors.New("spice: circuit has no nodes")
	}

	useDense := n <= denseCutoff
	var band int
	if !useDense {
		for _, d := range ckt.devices {
			ns := d.nodes()
			for i := 0; i < len(ns); i++ {
				for j := i + 1; j < len(ns); j++ {
					if ns[i] >= 0 && ns[j] >= 0 {
						if w := absInt(ns[i] - ns[j]); w > band {
							band = w
						}
					}
				}
			}
		}
	}

	x := make([]float64, n)
	for node, v := range ckt.ic {
		x[node] = v
	}
	xPrev := append([]float64(nil), x...)

	probeIdx := make(map[string]int, len(opts.Probes))
	for _, p := range opts.Probes {
		idx, ok := ckt.names[p]
		if !ok {
			return nil, fmt.Errorf("spice: probe %q names an unknown node", p)
		}
		probeIdx[p] = idx
	}

	steps := int(math.Ceil(opts.TStop/opts.H - 1e-9))
	res := &Result{Probes: make(map[string][]float64, len(opts.Probes))}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		for p, idx := range probeIdx {
			res.Probes[p] = append(res.Probes[p], x[idx])
		}
	}
	record(0)

	capI := make(map[*capacitor]float64, len(ckt.caps))

	var dm *linalg.Dense
	var bm *linalg.Banded
	var mat matrix
	if useDense {
		dm = linalg.NewDense(n)
		mat = dm
	} else {
		bm = linalg.NewBanded(n, band)
		mat = bm
	}
	rhs := make([]float64, n)

	solve := func() ([]float64, error) {
		if useDense {
			return linalg.SolveDense(dm, rhs)
		}
		return linalg.SolveBandedNoPivot(bm, rhs)
	}

	tPrev := 0.0
	for s := 1; s <= steps; s++ {
		t := float64(s) * opts.H
		if t > opts.TStop {
			t = opts.TStop
		}
		h := t - tPrev
		if h <= 0 {
			break
		}
		converged := false
		for it := 0; it < opts.MaxIter; it++ {
			mat.Zero()
			for i := range rhs {
				rhs[i] = 0
			}
			// The trapezoidal rule needs a current history; the first step
			// runs backward Euler and seeds it.
			method := ckt.method
			if s == 1 {
				method = BackwardEuler
			}
			c := &stampCtx{m: mat, rhs: rhs, x: x, xPrev: xPrev, t: t, h: h, method: method, capI: capI}
			for i := 0; i < n; i++ {
				mat.AddAt(i, i, Gmin)
			}
			for _, d := range ckt.devices {
				d.stamp(c)
			}
			xNew, err := solve()
			if err != nil {
				return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
			}
			// Damp large Newton steps for the nonlinear devices.
			var delta float64
			for i := range xNew {
				d := xNew[i] - x[i]
				if d > 0.5 {
					d = 0.5
				} else if d < -0.5 {
					d = -0.5
				}
				x[i] += d
				if a := math.Abs(d); a > delta {
					delta = a
				}
			}
			if !ckt.hasNL || delta < opts.AbsTol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("spice: Newton failed to converge at t=%.4g s", t)
		}
		if ckt.method == Trapezoidal {
			for _, cp := range ckt.caps {
				vd := voltOf(x, cp.a) - voltOf(x, cp.b)
				vdPrev := voltOf(xPrev, cp.a) - voltOf(xPrev, cp.b)
				if s == 1 {
					// Seed the current memory from the backward-Euler step:
					// i_1 = C (vd_1 - vd_0) / h.
					capI[cp] = cp.cap / h * (vd - vdPrev)
				} else {
					// i_n = (2C/h)(vd_n - vd_(n-1)) - i_(n-1).
					capI[cp] = 2*cp.cap/h*(vd-vdPrev) - capI[cp]
				}
			}
		}
		copy(xPrev, x)
		tPrev = t
		record(t)
	}
	return res, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// voltOf reads a node voltage from a solution vector (ground = -1 reads 0).
func voltOf(x []float64, n int) float64 {
	if n < 0 {
		return 0
	}
	return x[n]
}
