// Package spice is a compact transient circuit simulator: the stand-in for
// the HSPICE runs the paper uses to validate its analytical model (Figures
// 1a and 5, Table 1).
//
// It implements nodal analysis with backward-Euler integration and
// Newton-Raphson iteration for the nonlinear devices. Supported elements:
//
//   - resistors,
//   - capacitors (node-to-node and node-to-driven-waveform),
//   - voltage sources (Norton form with a small series resistance, which
//     keeps the conductance matrix free of zero diagonals),
//   - time-controlled switches,
//   - level-1 (Shichman-Hodges) MOSFETs, N and P, whose gate is either a
//     circuit node or a driven waveform (the latter models a wordline driver
//     without creating a dense matrix row across every bitline).
//
// Circuits containing MOSFETs (whose stamps are asymmetric and need partial
// pivoting) solve through dense LU; large pivot-free cell-array netlists
// solve through a no-pivot banded factorization, so transient cost is
// O(nodes * bandwidth^2) per step. This is what makes the engine usable for
// Table 1's bank-size sweep while still being orders of magnitude slower
// than the analytical model - the trade-off Table 1 exists to demonstrate.
//
// The transient engine lives in Solver (see solver.go), which persists the
// stamped system and all working buffers across timesteps and runs;
// Circuit.Transient is a one-shot convenience wrapper around it.
package spice

import (
	"errors"
	"fmt"
	"math"
)

// Gmin is the minimum conductance tied from every node to ground for
// numerical robustness, as in production SPICE implementations.
const Gmin = 1e-12

// Waveform is a time-dependent source value in volts.
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// PWL returns a piecewise-linear waveform through the given (time, value)
// points; it holds the first value before the first point and the last value
// after the last point. Points must be in increasing time order.
func PWL(times, values []float64) (Waveform, error) {
	if len(times) != len(values) || len(times) == 0 {
		return nil, fmt.Errorf("spice: PWL needs equal, non-empty point lists (got %d, %d)", len(times), len(values))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("spice: PWL times must increase (point %d)", i)
		}
	}
	ts := append([]float64(nil), times...)
	vs := append([]float64(nil), values...)
	return func(t float64) float64 {
		if t <= ts[0] {
			return vs[0]
		}
		for i := 1; i < len(ts); i++ {
			if t <= ts[i] {
				f := (t - ts[i-1]) / (ts[i] - ts[i-1])
				return vs[i-1] + f*(vs[i]-vs[i-1])
			}
		}
		return vs[len(vs)-1]
	}, nil
}

// Ramp returns a v0->v1 ramp starting at t0 lasting rise seconds.
func Ramp(v0, v1, t0, rise float64) Waveform {
	return func(t float64) float64 {
		switch {
		case t <= t0:
			return v0
		case t >= t0+rise:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/rise
		}
	}
}

// matrix abstracts the two storage/solver backends.
type matrix interface {
	AddAt(i, j int, v float64)
	Zero()
}

// stampCtx carries the assembly state handed to devices. Depending on the
// stamp class being assembled (see the device interface below), only a
// subset of the fields is meaningful: constant stamps may read only h and
// method (rhs is nil there, so touching it faults fast), per-step stamps
// additionally t and xPrev, per-iteration stamps everything.
type stampCtx struct {
	m      matrix
	rhs    []float64
	x      []float64 // current Newton iterate (node voltages)
	xPrev  []float64 // node voltages at the previous accepted timestep
	t      float64   // time at the end of the current step
	h      float64   // step size
	method Method
	capI   []float64 // trapezoidal current memory, indexed by capacitor.idx
}

// volt returns the iterate voltage of a node index (ground = -1 reads 0).
func (c *stampCtx) volt(n int) float64 {
	if n < 0 {
		return 0
	}
	return c.x[n]
}

func (c *stampCtx) voltPrev(n int) float64 {
	if n < 0 {
		return 0
	}
	return c.xPrev[n]
}

// addM stamps into the matrix, dropping ground rows/columns.
func (c *stampCtx) addM(i, j int, v float64) {
	if i >= 0 && j >= 0 {
		c.m.AddAt(i, j, v)
	}
}

// addG stamps a conductance g between nodes a and b (ground = -1).
func (c *stampCtx) addG(a, b int, g float64) {
	c.addM(a, a, g)
	c.addM(b, b, g)
	c.addM(a, b, -g)
	c.addM(b, a, -g)
}

// addI stamps a current source of i amps flowing from node a into node b.
func (c *stampCtx) addI(a, b int, i float64) {
	if a >= 0 {
		c.rhs[a] -= i
	}
	if b >= 0 {
		c.rhs[b] += i
	}
}

// device is the common element interface. Stamping is not part of it:
// each device implements one or more of the lifetime-classified stamp
// interfaces below, and the Solver schedules them accordingly.
type device interface {
	nodes() []int // for bandwidth computation
	linear() bool
}

// constStamper contributes matrix stamps that are constant for a given
// (step size, integration method) pair: conductances of resistors,
// capacitor companions, and sources. Stamped once into the base matrix.
type constStamper interface {
	stampConst(c *stampCtx)
}

// stepStamper contributes stamps that change between timesteps but are
// fixed within one: history and source currents, time-switch conductances.
type stepStamper interface {
	stampStep(c *stampCtx)
}

// stepMatrixStamper marks stepStampers whose per-step stamp touches the
// matrix (not just the RHS), forcing a refactorization every timestep.
type stepMatrixStamper interface {
	stampsMatrixPerStep()
}

// iterStamper contributes stamps that depend on the Newton iterate: the
// relinearized companion models of the nonlinear devices.
type iterStamper interface {
	stampIter(c *stampCtx)
}

// Circuit is a netlist under construction and the engine that simulates it.
type Circuit struct {
	names   map[string]int
	nodeOf  []string
	devices []device
	caps    []*capacitor
	ic      map[int]float64
	hasNL   bool
	method  Method
}

// New returns an empty circuit. The node name "0" (and "gnd") is ground.
func New() *Circuit {
	return &Circuit{names: map[string]int{}, ic: map[int]float64{}}
}

// Node interns a node name and returns its index; "0" and "gnd" return -1
// (ground).
func (ckt *Circuit) Node(name string) int {
	if name == "0" || name == "gnd" {
		return -1
	}
	if n, ok := ckt.names[name]; ok {
		return n
	}
	n := len(ckt.nodeOf)
	ckt.names[name] = n
	ckt.nodeOf = append(ckt.nodeOf, name)
	return n
}

// NumNodes returns the number of non-ground nodes.
func (ckt *Circuit) NumNodes() int { return len(ckt.nodeOf) }

// SetIC sets the initial (t=0) voltage of a node; unset nodes start at 0 V.
func (ckt *Circuit) SetIC(name string, v float64) {
	n := ckt.Node(name)
	if n >= 0 {
		ckt.ic[n] = v
	}
}

func (ckt *Circuit) add(d device) {
	ckt.devices = append(ckt.devices, d)
	if c, ok := d.(*capacitor); ok {
		c.idx = len(ckt.caps)
		ckt.caps = append(ckt.caps, c)
	}
	if !d.linear() {
		ckt.hasNL = true
	}
}

// Result holds a transient waveform set.
type Result struct {
	Times  []float64
	Probes map[string][]float64
}

// At returns the probed voltage of a node at the sample nearest to time t.
func (r *Result) At(probe string, t float64) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	if len(r.Times) == 0 {
		return 0, errors.New("spice: empty result")
	}
	best, bd := 0, math.Inf(1)
	for i, tt := range r.Times {
		if d := math.Abs(tt - t); d < bd {
			best, bd = i, d
		}
	}
	return vs[best], nil
}

// FirstCrossing returns the earliest time the probed voltage satisfies
// rising ? v >= level : v <= level, or an error if it never does.
func (r *Result) FirstCrossing(probe string, level float64, rising bool) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	for i, v := range vs {
		if (rising && v >= level) || (!rising && v <= level) {
			return r.Times[i], nil
		}
	}
	return 0, fmt.Errorf("spice: probe %q never crosses %.4g", probe, level)
}

// Final returns the last sample of a probe.
func (r *Result) Final(probe string) (float64, error) {
	vs, ok := r.Probes[probe]
	if !ok || len(vs) == 0 {
		return 0, fmt.Errorf("spice: no probe %q", probe)
	}
	return vs[len(vs)-1], nil
}

// TransientOpts tunes the simulation loop.
type TransientOpts struct {
	TStop   float64 // end time (s)
	H       float64 // step (s)
	Probes  []string
	MaxIter int     // Newton iterations per step (default 60)
	AbsTol  float64 // Newton voltage convergence (default 1 uV)
	Backend Backend // linear-solver backend (default BackendAuto)
	// CheckResidual re-verifies every linear solve against the assembled
	// system through an infinity-norm residual check. Diagnostic/test use.
	CheckResidual bool
}

// Transient runs backward-Euler transient analysis from the configured
// initial conditions ("UIC" mode: no DC operating-point solve; the DRAM
// netlists always specify consistent initial states). It is a one-shot
// convenience wrapper over NewSolver(ckt).Transient; repeated analyses of
// the same circuit should hold a Solver, which reuses all solver state.
func (ckt *Circuit) Transient(opts TransientOpts) (*Result, error) {
	return NewSolver(ckt).Transient(opts)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// voltOf reads a node voltage from a solution vector (ground = -1 reads 0).
func voltOf(x []float64, n int) float64 {
	if n < 0 {
		return 0
	}
	return x[n]
}
