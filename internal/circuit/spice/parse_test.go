package spice

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1000", 1000},
		{"1k", 1e3},
		{"2.5k", 2.5e3},
		{"45f", 45e-15},
		{"12p", 12e-12},
		{"3n", 3e-9},
		{"7u", 7e-6},
		{"5m", 5e-3},
		{"2meg", 2e6},
		{"1g", 1e9},
		{"-0.6", -0.6},
		{"1e-12", 1e-12},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseValue("abc"); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestParseDeckBasic(t *testing.T) {
	deck := `* test deck
R1 a b 1k
C1 b 0 1p
V1 a 0 DC 1.2
I1 0 b DC 1u
.IC V(b)=0.3
.TRAN 1n 10n
.END
trailing garbage that must not be read`
	ckt, notes, err := ParseDeck(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if ckt.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", ckt.NumNodes())
	}
	foundTran := false
	for _, n := range notes {
		if strings.Contains(n, ".TRAN") {
			foundTran = true
		}
	}
	if !foundTran {
		t.Fatalf("expected a note about the ignored .TRAN directive, got %v", notes)
	}
	// The parsed circuit must actually simulate.
	res, err := ckt.Transient(TransientOpts{TStop: 20e-9, H: 20e-12, Probes: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	// b settles to 1.2 + 1uA*1k = 1.2011 V? No: the current source pushes
	// 1 uA into b through... just verify it settles near the source value.
	got, _ := res.Final("b")
	if math.Abs(got-1.2011) > 0.01 {
		t.Fatalf("parsed circuit settles to %v, want ~1.201", got)
	}
}

func TestParseDeckErrors(t *testing.T) {
	bad := []string{
		"R1 a b",       // too few fields
		"R1 a b xx",    // bad value
		"C1 a 0 oops",  // bad value
		"V1 a 0 DC",    // missing value
		"Q1 a b c",     // unknown card
		".IC V(b=0.3",  // malformed IC
		".IC X(b)=0.3", // malformed IC
	}
	for _, deck := range bad {
		if _, _, err := ParseDeck(strings.NewReader(deck)); err == nil {
			t.Errorf("deck %q not rejected", deck)
		}
	}
}

func TestDeckRoundTrip(t *testing.T) {
	// Export a linear circuit and re-parse it: the transient responses must
	// agree.
	build := func() *Circuit {
		ckt := New()
		ckt.V("src", DC(1.0))
		ckt.R("src", "mid", 2e3)
		ckt.C("mid", "0", 3e-12)
		ckt.R("mid", "out", 1e3)
		ckt.C("out", "0", 1e-12)
		ckt.SetIC("mid", 0.2)
		return ckt
	}
	orig := build()
	var buf bytes.Buffer
	if err := orig.ExportDeck(&buf, "round trip"); err != nil {
		t.Fatal(err)
	}
	parsed, notes, err := ParseDeck(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
	opts := TransientOpts{TStop: 50e-9, H: 50e-12, Probes: []string{"out"}}
	r1, err := build().Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parsed.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1e-9, 10e-9, 40e-9} {
		a, _ := r1.At("out", tt)
		b, _ := r2.At("out", tt)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("round-trip mismatch at %v: %v vs %v", tt, a, b)
		}
	}
}
