package spice

import (
	"fmt"
	"math"
)

// --- Resistor -------------------------------------------------------------

type resistor struct {
	a, b int
	g    float64
}

func (r *resistor) stampConst(c *stampCtx) { c.addG(r.a, r.b, r.g) }
func (r *resistor) nodes() []int           { return []int{r.a, r.b} }
func (r *resistor) linear() bool           { return true }

// R adds a resistor of ohms between nodes a and b.
func (ckt *Circuit) R(a, b string, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("spice: resistor %s-%s must be positive, got %g", a, b, ohms))
	}
	ckt.add(&resistor{ckt.Node(a), ckt.Node(b), 1 / ohms})
}

// --- Capacitor ------------------------------------------------------------

// Backward-Euler companion: i = C/h * (v - vPrev), stamped as a conductance
// C/h (constant per step configuration) in parallel with a history current
// source (refreshed per step).
type capacitor struct {
	a, b int
	cap  float64
	idx  int // slot in the solver's trapezoidal current-memory slice
}

func (d *capacitor) stampConst(c *stampCtx) {
	g := d.cap / c.h
	if c.method == Trapezoidal {
		// Trapezoidal companion: i_n = (2C/h)*vd_n - (2C/h*vd_(n-1) + i_(n-1)).
		g = 2 * d.cap / c.h
	}
	c.addG(d.a, d.b, g)
}

func (d *capacitor) stampStep(c *stampCtx) {
	vPrev := c.voltPrev(d.a) - c.voltPrev(d.b)
	if c.method == Trapezoidal {
		g := 2 * d.cap / c.h
		c.addI(d.b, d.a, g*vPrev+c.capI[d.idx])
		return
	}
	g := d.cap / c.h
	// History term: a source g*vPrev flowing from b into a keeps the
	// capacitor voltage continuous.
	c.addI(d.b, d.a, g*vPrev)
}
func (d *capacitor) nodes() []int { return []int{d.a, d.b} }
func (d *capacitor) linear() bool { return true }

// C adds a capacitor of farads between nodes a and b.
func (ckt *Circuit) C(a, b string, farads float64) {
	if farads <= 0 {
		panic(fmt.Sprintf("spice: capacitor %s-%s must be positive, got %g", a, b, farads))
	}
	ckt.add(&capacitor{a: ckt.Node(a), b: ckt.Node(b), cap: farads})
}

// --- Capacitor to a driven waveform ----------------------------------------

// capDriven is a capacitor whose far plate is an ideal driven voltage
// (e.g. bitline-to-wordline parasitic against the wordline driver). Using a
// waveform instead of a shared node keeps the matrix banded when one line
// couples to many others.
type capDriven struct {
	a    int
	cap  float64
	wave Waveform
}

func (d *capDriven) stampConst(c *stampCtx) {
	if d.a >= 0 {
		c.m.AddAt(d.a, d.a, d.cap/c.h)
	}
}

func (d *capDriven) stampStep(c *stampCtx) {
	g := d.cap / c.h
	// i(out of a) = g*(va - vDrv(t)) - g*(vaPrev - vDrv(t-h)).
	// Move the known terms to the RHS as a source into a.
	known := g*d.wave(c.t) + g*(c.voltPrev(d.a)-d.wave(c.t-c.h))
	c.addI(-1, d.a, known)
}
func (d *capDriven) nodes() []int { return []int{d.a} }
func (d *capDriven) linear() bool { return true }

// CDriven adds a capacitor from node a to an ideally driven waveform.
func (ckt *Circuit) CDriven(a string, farads float64, wave Waveform) {
	if farads <= 0 {
		panic(fmt.Sprintf("spice: driven capacitor at %s must be positive, got %g", a, farads))
	}
	ckt.add(&capDriven{ckt.Node(a), farads, wave})
}

// --- Voltage source (Norton form) ------------------------------------------

// vsource drives node a toward wave(t) through a small series resistance.
// The Norton form keeps every matrix diagonal positive.
type vsource struct {
	a    int
	g    float64
	wave Waveform
}

func (d *vsource) stampConst(c *stampCtx) {
	if d.a >= 0 {
		c.m.AddAt(d.a, d.a, d.g)
	}
}

func (d *vsource) stampStep(c *stampCtx) { c.addI(-1, d.a, d.g*d.wave(c.t)) }
func (d *vsource) nodes() []int          { return []int{d.a} }
func (d *vsource) linear() bool          { return true }

// DefaultSourceR is the series resistance of voltage sources: negligible
// against the kilo-ohm impedances of DRAM netlists.
const DefaultSourceR = 0.1

// V drives node a with the waveform through DefaultSourceR ohms.
func (ckt *Circuit) V(a string, wave Waveform) {
	ckt.add(&vsource{ckt.Node(a), 1 / DefaultSourceR, wave})
}

// VR drives node a with the waveform through rsrc ohms.
func (ckt *Circuit) VR(a string, wave Waveform, rsrc float64) {
	if rsrc <= 0 {
		panic(fmt.Sprintf("spice: source resistance at %s must be positive, got %g", a, rsrc))
	}
	ckt.add(&vsource{ckt.Node(a), 1 / rsrc, wave})
}

// --- Time-controlled switch -------------------------------------------------

type timeSwitch struct {
	a, b        int
	gon, goff   float64
	onAt, offAt float64
}

func (d *timeSwitch) stampStep(c *stampCtx) {
	g := d.goff
	if c.t >= d.onAt && c.t < d.offAt {
		g = d.gon
	}
	c.addG(d.a, d.b, g)
}

// stampsMatrixPerStep marks the switch conductance as a per-step matrix
// stamp, so the solver refactors on every timestep it is present.
func (d *timeSwitch) stampsMatrixPerStep() {}
func (d *timeSwitch) nodes() []int         { return []int{d.a, d.b} }
func (d *timeSwitch) linear() bool         { return true }

// SW adds a switch between a and b that is closed (resistance ron) during
// [onAt, offAt) and open (roff) otherwise.
func (ckt *Circuit) SW(a, b string, ron, roff, onAt, offAt float64) {
	if ron <= 0 || roff <= 0 {
		panic(fmt.Sprintf("spice: switch %s-%s resistances must be positive", a, b))
	}
	ckt.add(&timeSwitch{ckt.Node(a), ckt.Node(b), 1 / ron, 1 / roff, onAt, offAt})
}

// --- Level-1 MOSFET ----------------------------------------------------------

// MOSType selects the device polarity.
type MOSType int

// MOSFET polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// MOSParams are the level-1 (Shichman-Hodges) device parameters.
type MOSParams struct {
	Type   MOSType
	Beta   float64 // process transconductance * W/L (A/V^2)
	Vt     float64 // threshold voltage magnitude (V)
	Lambda float64 // channel-length modulation (1/V)
}

// ids returns the drain current and its partial derivatives for an N-type
// device with vds >= 0 (callers handle P-type mirroring and source/drain
// symmetry).
func (p MOSParams) ids(vgs, vds float64) (i, gm, gds float64) {
	vov := vgs - p.Vt
	if vov <= 0 {
		return 0, 0, 0
	}
	lam := 1 + p.Lambda*vds
	if vds < vov {
		// Linear (triode) region.
		i = p.Beta * (vov*vds - vds*vds/2) * lam
		gm = p.Beta * vds * lam
		gds = p.Beta*(vov-vds)*lam + p.Beta*(vov*vds-vds*vds/2)*p.Lambda
	} else {
		// Saturation.
		i = p.Beta / 2 * vov * vov * lam
		gm = p.Beta * vov * lam
		gds = p.Beta / 2 * vov * vov * p.Lambda
	}
	return i, gm, gds
}

// mosfet is a level-1 MOSFET. The gate is either a circuit node (gate >= 0,
// gateWave nil) or an ideally driven waveform (gateWave non-nil). Gate
// current is zero in both cases.
type mosfet struct {
	d, g, s  int
	gateWave Waveform
	p        MOSParams
}

func (m *mosfet) gateV(c *stampCtx) float64 {
	if m.gateWave != nil {
		return m.gateWave(c.t)
	}
	return c.volt(m.g)
}

// stamp linearizes the device around the current Newton iterate.
//
// Derivation: work in a normalized space where all voltages are multiplied
// by sign (+1 NMOS, -1 PMOS) and source/drain are relabeled so vds' >= 0.
// With i defined as the real current flowing from the normalized drain node
// D* to the normalized source node S*, the chain rule gives
//
//	di/dv(D*) = gds', di/dv(S*) = -(gds'+gm'), di/dv(G) = gm'
//
// with gds', gm' evaluated in normalized space (the sign squared cancels),
// and the residual current Ieq = i - gds'*vds_real' - gm'*vgs_real' where
// the "real'" voltages are the real node voltages of D*, S*, G.
func (m *mosfet) stampIter(c *stampCtx) {
	vd, vs := c.volt(m.d), c.volt(m.s)
	vg := m.gateV(c)

	sign := 1.0
	if m.p.Type == PMOS {
		sign = -1.0
	}
	nvd, nvs, nvg := sign*vd, sign*vs, sign*vg
	dN, sN := m.d, m.s
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		dN, sN = sN, dN
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	i0, gm, gds := m.p.ids(vgs, vds)
	iReal := sign * i0 // current D* -> S* in real space

	// Real node voltages of the normalized terminals.
	vDr, vSr := c.volt(dN), c.volt(sN)

	// Matrix stamps: current from D* to S* = iReal + gds*d(vD*-vS*) + gm*d(vG-vS*).
	c.addM(dN, dN, gds)
	c.addM(dN, sN, -(gds + gm))
	c.addM(sN, dN, -gds)
	c.addM(sN, sN, gds+gm)

	ieq := iReal - gds*(vDr-vSr) - gm*(vg-vSr)
	if m.gateWave == nil && m.g >= 0 {
		c.addM(dN, m.g, gm)
		c.addM(sN, m.g, -gm)
	} else {
		// Driven or grounded gate: the gm*vg term is known; fold it into the
		// residual.
		ieq += gm * vg
	}
	c.addI(dN, sN, ieq)
}

func (m *mosfet) nodes() []int {
	if m.gateWave != nil {
		return []int{m.d, m.s}
	}
	return []int{m.d, m.g, m.s}
}
func (m *mosfet) linear() bool { return false }

// MOS adds a MOSFET with drain d, gate g, and source s as circuit nodes.
func (ckt *Circuit) MOS(d, g, s string, p MOSParams) {
	validateMOS(p)
	ckt.add(&mosfet{d: ckt.Node(d), g: ckt.Node(g), s: ckt.Node(s), p: p})
}

// MOSDriven adds a MOSFET between drain d and source s whose gate is driven
// by an ideal waveform.
func (ckt *Circuit) MOSDriven(d, s string, p MOSParams, gate Waveform) {
	validateMOS(p)
	ckt.add(&mosfet{d: ckt.Node(d), g: -1, s: ckt.Node(s), gateWave: gate, p: p})
}

func validateMOS(p MOSParams) {
	if p.Beta <= 0 || p.Vt <= 0 || p.Lambda < 0 {
		panic(fmt.Sprintf("spice: bad MOS params %+v", p))
	}
}

// --- Saturating access switch -------------------------------------------------

// satSwitch models a DRAM cell access device during charge sharing: ohmic
// for small terminal differences, current-limited at Idsat for large ones,
// i(v) = Idsat * tanh(v / (Idsat*Ron)). It opens (conducts ~0) before onAt.
// Its linearized stamps are symmetric, so it is safe for the banded no-pivot
// solver that large array netlists use.
type satSwitch struct {
	a, b  int
	ron   float64
	idsat float64
	onAt  float64
}

func (d *satSwitch) stampIter(c *stampCtx) {
	if c.t < d.onAt {
		c.addG(d.a, d.b, 1e-12)
		return
	}
	v := c.volt(d.a) - c.volt(d.b)
	scale := d.idsat * d.ron
	th := math.Tanh(v / scale)
	i := d.idsat * th
	g := (1 - th*th) / d.ron
	// Keep a conductance floor so the Newton matrix stays well conditioned
	// deep in saturation.
	if g < 1e-9 {
		g = 1e-9
	}
	c.addG(d.a, d.b, g)
	c.addI(d.a, d.b, i-g*v)
}
func (d *satSwitch) nodes() []int { return []int{d.a, d.b} }
func (d *satSwitch) linear() bool { return false }

// SatSwitch adds a saturating access switch between a and b that closes at
// time onAt with linear-region resistance ron and saturation current idsat.
func (ckt *Circuit) SatSwitch(a, b string, ron, idsat, onAt float64) {
	if ron <= 0 || idsat <= 0 {
		panic(fmt.Sprintf("spice: sat switch %s-%s needs positive ron and idsat", a, b))
	}
	ckt.add(&satSwitch{ckt.Node(a), ckt.Node(b), ron, idsat, onAt})
}
