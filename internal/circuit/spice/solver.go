package spice

import (
	"errors"
	"fmt"
	"math"

	"vrldram/internal/linalg"
)

// Backend selects the linear-solver storage used by transient analysis.
type Backend int

// Supported backends.
const (
	// BackendAuto picks BackendBanded when the netlist is pivot-free and
	// narrow-banded, BackendDense otherwise.
	BackendAuto Backend = iota
	// BackendDense solves through dense LU with partial pivoting: the
	// checked reference path, valid for every netlist.
	BackendDense
	// BackendBanded solves through no-pivot banded LU in O(nodes *
	// bandwidth^2) per factorization. Safe only for netlists whose stamps
	// keep the matrix strongly diagonal (no node-gated MOSFETs).
	BackendBanded
)

// bandedMinNodes is the node count below which the banded path cannot beat
// dense on constant factors and BackendAuto stays dense.
const bandedMinNodes = 16

// Solver runs transient analyses of one circuit while persisting every piece
// of solver state between timesteps and between runs: the conductance
// pattern is stamped once per (step size, method) configuration, only values
// that can change are refreshed per timestep or per Newton iteration, and
// all matrix/RHS/iterate/result buffers are reused. The circuit must not be
// modified (no devices or nodes added) after the Solver is created.
//
// The stamp schedule that makes this work splits device contributions by
// lifetime:
//
//   - constant stamps (resistor, capacitor, driven-capacitor, and source
//     conductances) go into a base matrix rebuilt only when the timestep or
//     integration method changes;
//   - per-step stamps (source and capacitor-history currents, time-switch
//     conductances) are refreshed once per timestep;
//   - per-iteration stamps (MOSFET and saturating-switch linearizations) are
//     refreshed on a scratch copy each Newton iteration.
//
// For a linear netlist with no time switches, the factorization itself is
// reused across every timestep, so a step costs one back-substitution.
type Solver struct {
	ckt    *Circuit
	n      int
	band   int
	hasMOS bool

	constDevs []constStamper
	stepDevs  []stepStamper
	iterDevs  []iterStamper
	hasStepM  bool // some per-step stamp touches the matrix (time switch)

	backend Backend // resolved BackendDense or BackendBanded for buffers

	dBase, dStep, dWork *linalg.Dense
	dlu                 linalg.LU
	bBase, bStep, bWork *linalg.Banded
	blu                 linalg.BandedLU
	bsym                *linalg.BandedSymbolic // per-netlist sparsity analysis, built lazily

	rhsStep, rhsWork []float64
	x, xPrev, xNew   []float64
	xOld, xOld2      []float64 // converged solutions two and three steps back, for the predictor
	capI             []float64
	ax               []float64 // residual-check scratch

	baseH      float64
	baseMethod Method
	baseValid  bool
	baseScale  float64 // max |entry| of the base matrix, for singularity eps
	facFresh   bool    // current factorization is of the untouched base matrix

	ctx       stampCtx
	probeIdx  []int
	probeBufs [][]float64 // per-probe sample buffers, map-published at the end
	res       Result
}

// NewSolver prepares a persistent transient solver for the circuit,
// classifying each device's stamps by lifetime and computing the matrix
// bandwidth the netlist's node numbering yields.
func NewSolver(ckt *Circuit) *Solver {
	s := &Solver{ckt: ckt, n: ckt.NumNodes(), backend: BackendAuto}
	for _, d := range ckt.devices {
		if cs, ok := d.(constStamper); ok {
			s.constDevs = append(s.constDevs, cs)
		}
		if ss, ok := d.(stepStamper); ok {
			s.stepDevs = append(s.stepDevs, ss)
			if _, ok := d.(stepMatrixStamper); ok {
				s.hasStepM = true
			}
		}
		if is, ok := d.(iterStamper); ok {
			s.iterDevs = append(s.iterDevs, is)
		}
		if _, ok := d.(*mosfet); ok {
			s.hasMOS = true
		}
		ns := d.nodes()
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if ns[i] >= 0 && ns[j] >= 0 {
					if w := absInt(ns[i] - ns[j]); w > s.band {
						s.band = w
					}
				}
			}
		}
	}
	return s
}

// autoBackend applies the selection rule: banded wants a pivot-free netlist
// (MOSFET stamps are asymmetric and need partial pivoting), enough nodes to
// amortize its constant factors, and a band that actually is narrow.
func (s *Solver) autoBackend() Backend {
	if !s.hasMOS && s.n >= bandedMinNodes && 2*s.band+1 <= s.n/2 {
		return BackendBanded
	}
	return BackendDense
}

// ensureBuffers sizes (or re-targets, when the backend changed) every
// persistent buffer. It allocates only on first use per backend.
func (s *Solver) ensureBuffers(b Backend) {
	n := s.n
	if len(s.x) != n {
		s.x = make([]float64, n)
		s.xPrev = make([]float64, n)
		s.xOld = make([]float64, n)
		s.xOld2 = make([]float64, n)
		s.xNew = make([]float64, n)
		s.rhsStep = make([]float64, n)
		s.rhsWork = make([]float64, n)
		s.ax = make([]float64, n)
	}
	if len(s.capI) != len(s.ckt.caps) {
		s.capI = make([]float64, len(s.ckt.caps))
	}
	switch b {
	case BackendDense:
		if s.dBase == nil || s.dBase.N != n {
			s.dBase = linalg.NewDense(n)
			s.dStep = linalg.NewDense(n)
			s.dWork = linalg.NewDense(n)
		}
	case BackendBanded:
		if s.bBase == nil || s.bBase.N != n || s.bBase.K != s.band {
			s.bBase = linalg.NewBanded(n, s.band)
			s.bStep = linalg.NewBanded(n, s.band)
			s.bWork = linalg.NewBanded(n, s.band)
		}
	}
	if b != s.backend {
		s.baseValid = false
		s.facFresh = false
		s.backend = b
	}
}

// rebuildBase restamps the configuration-constant part of the system:
// Gmin on every diagonal plus every constant device conductance for the
// given (step, method) pair.
func (s *Solver) rebuildBase(h float64, method Method) {
	var m matrix
	if s.backend == BackendBanded {
		s.bBase.Zero()
		m = s.bBase
	} else {
		s.dBase.Zero()
		m = s.dBase
	}
	for i := 0; i < s.n; i++ {
		m.AddAt(i, i, Gmin)
	}
	c := &s.ctx
	c.m = m
	c.rhs = nil // constant stamps must not touch the RHS
	c.h = h
	c.method = method
	for _, d := range s.constDevs {
		d.stampConst(c)
	}
	// Cache the base magnitude for singularity thresholds: per-iteration
	// stamps perturb it by at most device conductances, so the scan need not
	// repeat inside the Newton loop.
	var data []float64
	if s.backend == BackendBanded {
		data = s.bBase.Data
	} else {
		data = s.dBase.Data
	}
	s.baseScale = 0
	for _, v := range data {
		if a := math.Abs(v); a > s.baseScale {
			s.baseScale = a
		}
	}
	s.baseH, s.baseMethod = h, method
	s.baseValid = true
	s.facFresh = false
}

// symbolic returns the netlist's symbolic banded factorization, analyzing the
// stamp pattern on first use. The pattern is the superset of positions any
// device can stamp — every node pair of every device, plus the Gmin diagonal —
// so it stays valid for all timesteps and Newton iterations of this circuit.
func (s *Solver) symbolic() (*linalg.BandedSymbolic, error) {
	if s.bsym != nil {
		return s.bsym, nil
	}
	var pairs [][2]int
	for _, d := range s.ckt.devices {
		ns := d.nodes()
		for i := 0; i < len(ns); i++ {
			for j := i; j < len(ns); j++ {
				if ns[i] >= 0 && ns[j] >= 0 {
					pairs = append(pairs, [2]int{ns[i], ns[j]})
				}
			}
		}
	}
	sym, err := linalg.NewBandedSymbolic(s.n, s.band, pairs)
	if err != nil {
		return nil, err
	}
	s.bsym = sym
	return sym, nil
}

func (s *Solver) refactor(dm *linalg.Dense, bm *linalg.Banded) error {
	if s.backend == BackendBanded {
		return s.blu.Refactor(bm)
	}
	return s.dlu.Refactor(dm)
}

// refactorScratch factors a matrix whose contents are rebuilt before the next
// factorization anyway (the per-step or per-iteration scratch copy), letting
// the banded path skip the defensive copy and magnitude scan. keep forces the
// copying path so the matrix survives for a later residual check.
func (s *Solver) refactorScratch(dm *linalg.Dense, bm *linalg.Banded, keep bool) error {
	if s.backend == BackendBanded && !keep {
		return s.blu.RefactorInPlace(bm, s.baseScale)
	}
	return s.refactor(dm, bm)
}

func (s *Solver) solveInto(dst, rhs []float64) error {
	if s.backend == BackendBanded {
		return s.blu.SolveInto(dst, rhs)
	}
	return s.dlu.SolveInto(dst, rhs)
}

// checkResidual verifies ||A*x - b||inf against a scale-relative tolerance,
// where A is the (unfactored) matrix that was handed to the last refactor.
func (s *Solver) checkResidual(dm *linalg.Dense, bm *linalg.Banded, x, b []float64) error {
	var err error
	if s.backend == BackendBanded {
		err = bm.MulVecInto(s.ax, x)
	} else {
		err = dm.MulVecInto(s.ax, x)
	}
	if err != nil {
		return err
	}
	var scale float64
	for _, v := range b {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	tol := 1e-8 * (1 + scale)
	for i := range s.ax {
		if r := math.Abs(s.ax[i] - b[i]); r > tol {
			return fmt.Errorf("spice: linear-solve residual %.3g at node %d exceeds %.3g", r, i, tol)
		}
	}
	return nil
}

// record appends the current iterate's probe samples to the per-probe
// buffers; Transient publishes them into the result map once at the end,
// keeping map lookups off the per-step path.
func (s *Solver) record(t float64) {
	s.res.Times = append(s.res.Times, t)
	for k, idx := range s.probeIdx {
		s.probeBufs[k] = append(s.probeBufs[k], s.x[idx])
	}
}

// Transient runs backward-Euler (or trapezoidal, per SetMethod) transient
// analysis from the configured initial conditions ("UIC" mode: no DC
// operating-point solve; the DRAM netlists always specify consistent initial
// states). The returned Result reuses the Solver's buffers and is valid only
// until the next Transient call on the same Solver; callers that need the
// waveforms beyond that must copy them.
func (s *Solver) Transient(opts TransientOpts) (*Result, error) {
	if opts.TStop <= 0 || opts.H <= 0 {
		return nil, fmt.Errorf("spice: TStop and H must be positive (got %g, %g)", opts.TStop, opts.H)
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 60
	}
	if opts.AbsTol == 0 {
		opts.AbsTol = 1e-6
	}
	n := s.n
	if n == 0 {
		return nil, errors.New("spice: circuit has no nodes")
	}
	backend := opts.Backend
	if backend == BackendAuto {
		backend = s.autoBackend()
	}
	s.ensureBuffers(backend)
	var sym *linalg.BandedSymbolic
	if backend == BackendBanded && len(s.iterDevs) > 0 && !opts.CheckResidual {
		var err error
		if sym, err = s.symbolic(); err != nil {
			return nil, err
		}
	}

	if cap(s.probeIdx) < len(opts.Probes) {
		s.probeIdx = make([]int, 0, len(opts.Probes))
	}
	s.probeIdx = s.probeIdx[:0]
	for _, p := range opts.Probes {
		idx, ok := s.ckt.names[p]
		if !ok {
			return nil, fmt.Errorf("spice: probe %q names an unknown node", p)
		}
		s.probeIdx = append(s.probeIdx, idx)
	}
	s.res.Times = s.res.Times[:0]
	if s.res.Probes == nil {
		s.res.Probes = make(map[string][]float64, len(opts.Probes))
	}
	for k := range s.res.Probes {
		keep := false
		for _, p := range opts.Probes {
			if p == k {
				keep = true
				break
			}
		}
		if !keep {
			delete(s.res.Probes, k)
		}
	}
	s.probeBufs = s.probeBufs[:0]
	for _, p := range opts.Probes {
		s.probeBufs = append(s.probeBufs, s.res.Probes[p][:0])
	}

	for i := range s.x {
		s.x[i] = 0
	}
	for node, v := range s.ckt.ic {
		s.x[node] = v
	}
	copy(s.xPrev, s.x)
	copy(s.xOld, s.x)
	copy(s.xOld2, s.x)
	for i := range s.capI {
		s.capI[i] = 0
	}
	s.baseValid = false
	s.facFresh = false
	s.record(0)

	steps := int(math.Ceil(opts.TStop/opts.H - 1e-9))
	tPrev := 0.0
	for st := 1; st <= steps; st++ {
		t := float64(st) * opts.H
		if t > opts.TStop {
			t = opts.TStop
		}
		// Stamp with the nominal step size: t-tPrev jitters in the last ULP
		// (t is st*H, not an accumulation), and letting that jitter into h
		// would force a base rebuild - and drop any cached factorization -
		// on every step. Only the final step, which TStop may clamp short,
		// stamps with its true width.
		h := opts.H
		if st == steps {
			h = t - tPrev
		}
		if h <= 0 {
			break
		}
		// The trapezoidal rule needs a current history; the first step runs
		// backward Euler and seeds it.
		method := s.ckt.method
		if st == 1 {
			method = BackwardEuler
		}
		if !s.baseValid || h != s.baseH || method != s.baseMethod {
			s.rebuildBase(h, method)
		}
		// Predictor: start Newton from the quadratic extrapolation of the
		// last three converged solutions instead of holding the previous
		// value. In smooth regions the extrapolated iterate is already within
		// AbsTol, so the step converges in one linearization instead of two.
		// Linear circuits take the solve verbatim (no iteration to shorten)
		// and skip it so their single clamped update keeps the previous-value
		// start.
		if s.ckt.hasNL && st > 1 {
			for i := range s.x {
				s.x[i] = 3*(s.xPrev[i]-s.xOld[i]) + s.xOld2[i]
			}
		}

		c := &s.ctx
		c.x, c.xPrev = s.x, s.xPrev
		c.t, c.h, c.method = t, h, method
		c.capI = s.capI
		for i := range s.rhsStep {
			s.rhsStep[i] = 0
		}
		c.rhs = s.rhsStep
		// Per-step matrix target: the base directly when no device stamps
		// the matrix per step (devices then only touch the RHS), a scratch
		// copy of the base otherwise.
		stepDM, stepBM := s.dBase, s.bBase
		if s.hasStepM {
			if s.backend == BackendBanded {
				s.bStep.CopyFrom(s.bBase)
			} else {
				s.dStep.CopyFrom(s.dBase)
			}
			stepDM, stepBM = s.dStep, s.bStep
		}
		if s.backend == BackendBanded {
			c.m = stepBM
		} else {
			c.m = stepDM
		}
		for _, d := range s.stepDevs {
			d.stampStep(c)
		}

		converged := false
		for it := 0; it < opts.MaxIter; it++ {
			facDM, facBM := stepDM, stepBM
			rhs := s.rhsStep
			solved := false
			if len(s.iterDevs) > 0 {
				// Nonlinear devices relinearize around the iterate on a
				// scratch copy of the per-step system.
				if s.backend == BackendBanded {
					s.bWork.CopyFrom(stepBM)
					c.m = s.bWork
				} else {
					s.dWork.CopyFrom(stepDM)
					c.m = s.dWork
				}
				copy(s.rhsWork, s.rhsStep)
				c.rhs = s.rhsWork
				for _, d := range s.iterDevs {
					d.stampIter(c)
				}
				facDM, facBM = s.dWork, s.bWork
				rhs = s.rhsWork
				if sym != nil {
					// The scratch system is factored once and solved once, so
					// fuse the two over the netlist's symbolic sparsity: the
					// forward substitution rides the elimination's multipliers
					// and only true structural nonzeros are visited.
					if err := sym.FactorSolve(facBM, s.baseScale, s.xNew, rhs); err != nil {
						return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
					}
					solved = true
				} else if err := s.refactorScratch(facDM, facBM, opts.CheckResidual); err != nil {
					return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
				}
			} else if s.hasStepM {
				if err := s.refactorScratch(facDM, facBM, opts.CheckResidual); err != nil {
					return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
				}
			} else if !s.facFresh {
				// Pure-linear fast path: the factorization of the base stays
				// valid until the base is rebuilt, so a timestep costs one
				// back-substitution.
				if err := s.refactor(facDM, facBM); err != nil {
					return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
				}
				s.facFresh = true
			}
			if !solved {
				if err := s.solveInto(s.xNew, rhs); err != nil {
					return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
				}
			}
			if opts.CheckResidual {
				if err := s.checkResidual(facDM, facBM, s.xNew, rhs); err != nil {
					return nil, fmt.Errorf("spice: t=%.4g s: %w", t, err)
				}
			}
			// Damp large Newton steps for the nonlinear devices.
			var delta float64
			for i := range s.xNew {
				d := s.xNew[i] - s.x[i]
				if d > 0.5 {
					d = 0.5
				} else if d < -0.5 {
					d = -0.5
				}
				s.x[i] += d
				if a := math.Abs(d); a > delta {
					delta = a
				}
			}
			if !s.ckt.hasNL || delta < opts.AbsTol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("spice: Newton failed to converge at t=%.4g s", t)
		}
		if s.ckt.method == Trapezoidal {
			for _, cp := range s.ckt.caps {
				vd := voltOf(s.x, cp.a) - voltOf(s.x, cp.b)
				vdPrev := voltOf(s.xPrev, cp.a) - voltOf(s.xPrev, cp.b)
				if st == 1 {
					// Seed the current memory from the backward-Euler step:
					// i_1 = C (vd_1 - vd_0) / h.
					s.capI[cp.idx] = cp.cap / h * (vd - vdPrev)
				} else {
					// i_n = (2C/h)(vd_n - vd_(n-1)) - i_(n-1).
					s.capI[cp.idx] = 2*cp.cap/h*(vd-vdPrev) - s.capI[cp.idx]
				}
			}
		}
		copy(s.xOld2, s.xOld)
		copy(s.xOld, s.xPrev)
		copy(s.xPrev, s.x)
		tPrev = t
		s.record(t)
	}
	for k, p := range opts.Probes {
		s.res.Probes[p] = s.probeBufs[k]
	}
	return &s.res, nil
}
