package spice

import (
	"math"
	"strings"
	"testing"
)

// --- Waveforms ---------------------------------------------------------------

func TestDC(t *testing.T) {
	w := DC(1.2)
	if w(0) != 1.2 || w(1e-6) != 1.2 {
		t.Fatal("DC waveform not constant")
	}
}

func TestPWL(t *testing.T) {
	w, err := PWL([]float64{1, 2, 4}, []float64{0, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.5, 5}, {2, 10}, {3, 10}, {5, 10},
	}
	for _, c := range cases {
		if got := w(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("w(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := PWL([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := PWL([]float64{2, 1}, []float64{0, 1}); err == nil {
		t.Fatal("non-increasing times must be rejected")
	}
	if _, err := PWL(nil, nil); err == nil {
		t.Fatal("empty PWL must be rejected")
	}
}

func TestRamp(t *testing.T) {
	w := Ramp(0, 2, 1, 2)
	if w(0) != 0 || w(1) != 0 || w(3) != 2 || w(10) != 2 {
		t.Fatal("ramp endpoints wrong")
	}
	if got := w(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ramp midpoint = %v, want 1", got)
	}
}

// --- Transient basics ---------------------------------------------------------

// An RC discharge must match the analytic exponential.
func TestRCDischarge(t *testing.T) {
	const (
		r   = 1e3
		c   = 1e-12
		v0  = 1.0
		tau = r * c
	)
	ckt := New()
	ckt.C("n", "0", c)
	ckt.R("n", "0", r)
	ckt.SetIC("n", v0)
	res, err := ckt.Transient(TransientOpts{TStop: 5 * tau, H: tau / 500, Probes: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.5, 1, 2, 4} {
		tt := frac * tau
		got, err := res.At("n", tt)
		if err != nil {
			t.Fatal(err)
		}
		want := v0 * math.Exp(-tt/tau)
		if math.Abs(got-want) > 0.01*v0 {
			t.Errorf("V(%vtau) = %v, want %v", frac, got, want)
		}
	}
}

// Charge sharing between two capacitors through a resistor must conserve
// charge: Vfinal = (C1 V1 + C2 V2) / (C1 + C2).
func TestChargeConservation(t *testing.T) {
	const (
		c1, c2 = 24e-15, 45e-15
		v1, v2 = 1.2, 0.6
		r      = 10e3
	)
	ckt := New()
	ckt.C("a", "0", c1)
	ckt.C("b", "0", c2)
	ckt.R("a", "b", r)
	ckt.SetIC("a", v1)
	ckt.SetIC("b", v2)
	tau := r * c1 * c2 / (c1 + c2)
	res, err := ckt.Transient(TransientOpts{TStop: 20 * tau, H: tau / 200, Probes: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	want := (c1*v1 + c2*v2) / (c1 + c2)
	fa, _ := res.Final("a")
	fb, _ := res.Final("b")
	if math.Abs(fa-want) > 1e-3 || math.Abs(fb-want) > 1e-3 {
		t.Fatalf("final voltages %v, %v; want %v", fa, fb, want)
	}
}

func TestVSourceDrivesNode(t *testing.T) {
	ckt := New()
	ckt.V("src", DC(0.6))
	ckt.R("src", "out", 1e3)
	ckt.C("out", "0", 1e-12)
	res, err := ckt.Transient(TransientOpts{TStop: 20e-9, H: 10e-12, Probes: []string{"out", "src"}})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := res.Final("out")
	if math.Abs(out-0.6) > 1e-3 {
		t.Fatalf("out = %v, want 0.6", out)
	}
}

func TestTimeSwitch(t *testing.T) {
	// Node isolated until the switch closes at 5 ns, then charges to 1 V.
	ckt := New()
	ckt.V("src", DC(1))
	ckt.SW("src", "out", 1e3, 1e12, 5e-9, 1)
	ckt.C("out", "0", 1e-12)
	res, err := ckt.Transient(TransientOpts{TStop: 30e-9, H: 20e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := res.At("out", 4e-9)
	after, _ := res.Final("out")
	if math.Abs(before) > 1e-3 {
		t.Fatalf("node charged before switch closed: %v", before)
	}
	if math.Abs(after-1) > 1e-2 {
		t.Fatalf("node did not charge after switch closed: %v", after)
	}
}

func TestCapDrivenInjectsCoupling(t *testing.T) {
	// A floating node coupled to a stepping source through CDriven, with a
	// grounding cap, sees the capacitive divider voltage.
	const cc, cg = 1e-15, 3e-15
	ckt := New()
	ckt.CDriven("n", cc, Ramp(0, 1, 1e-9, 0.1e-9))
	ckt.C("n", "0", cg)
	res, err := ckt.Transient(TransientOpts{TStop: 3e-9, H: 5e-12, Probes: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Final("n")
	want := cc / (cc + cg) // 0.25
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("coupled divider = %v, want %v", got, want)
	}
}

// --- MOSFET ---------------------------------------------------------------------

func TestMOSIdsRegions(t *testing.T) {
	p := MOSParams{Type: NMOS, Beta: 100e-6, Vt: 0.4, Lambda: 0}
	// Cutoff.
	if i, gm, gds := p.ids(0.3, 1.0); i != 0 || gm != 0 || gds != 0 {
		t.Fatal("cutoff region must carry no current")
	}
	// Triode: i = beta(vov*vds - vds^2/2).
	i, _, _ := p.ids(1.0, 0.2)
	want := 100e-6 * (0.6*0.2 - 0.02)
	if math.Abs(i-want) > 1e-12 {
		t.Fatalf("triode current %v, want %v", i, want)
	}
	// Saturation: i = beta/2 vov^2.
	i, _, _ = p.ids(1.0, 2.0)
	want = 50e-6 * 0.36
	if math.Abs(i-want) > 1e-12 {
		t.Fatalf("saturation current %v, want %v", i, want)
	}
	// Continuity at the triode/saturation boundary.
	iT, _, _ := p.ids(1.0, 0.6-1e-9)
	iS, _, _ := p.ids(1.0, 0.6+1e-9)
	if math.Abs(iT-iS) > 1e-10 {
		t.Fatalf("discontinuity at vds = vov: %v vs %v", iT, iS)
	}
}

// An NMOS source follower: out settles near Vg - Vt.
func TestNMOSDrivenGateFollower(t *testing.T) {
	ckt := New()
	ckt.V("vdd", DC(1.8))
	ckt.MOSDriven("vdd", "out", MOSParams{Type: NMOS, Beta: 200e-6, Vt: 0.4, Lambda: 0.01}, DC(1.2))
	ckt.C("out", "0", 1e-12)
	ckt.R("out", "0", 1e7) // tiny load so the follower dominates
	res, err := ckt.Transient(TransientOpts{TStop: 200e-9, H: 100e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Final("out")
	if got < 0.7 || got > 0.82 {
		t.Fatalf("follower output %v, want ~Vg-Vt = 0.8", got)
	}
}

// A PMOS passing the rail: with gate at 0, a PMOS from vdd charges the
// output all the way to vdd.
func TestPMOSPassesRail(t *testing.T) {
	ckt := New()
	ckt.V("vdd", DC(1.2))
	ckt.MOSDriven("out", "vdd", MOSParams{Type: PMOS, Beta: 200e-6, Vt: 0.35, Lambda: 0.01}, DC(0))
	ckt.C("out", "0", 1e-12)
	res, err := ckt.Transient(TransientOpts{TStop: 100e-9, H: 50e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Final("out")
	if math.Abs(got-1.2) > 0.01 {
		t.Fatalf("PMOS did not pass the rail: %v", got)
	}
}

// A node-gate NMOS inverter: low input -> high output, high input -> low.
func TestNodeGateInverter(t *testing.T) {
	build := func(vin float64) *Circuit {
		ckt := New()
		ckt.V("vdd", DC(1.2))
		ckt.V("in", DC(vin))
		ckt.R("vdd", "out", 50e3)
		ckt.MOS("out", "in", "0", MOSParams{Type: NMOS, Beta: 500e-6, Vt: 0.4, Lambda: 0.01})
		ckt.C("out", "0", 0.1e-12)
		ckt.SetIC("out", 1.2)
		return ckt
	}
	resLo, err := build(0).Transient(TransientOpts{TStop: 100e-9, H: 100e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := build(1.2).Transient(TransientOpts{TStop: 100e-9, H: 100e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := resLo.Final("out")
	hi, _ := resHi.Final("out")
	if lo < 1.1 {
		t.Fatalf("output with low input = %v, want ~1.2", lo)
	}
	if hi > 0.2 {
		t.Fatalf("output with high input = %v, want near 0", hi)
	}
}

func TestSatSwitchLimitsCurrent(t *testing.T) {
	// Big voltage across the switch: current limited near idsat, so the
	// capacitor charges roughly linearly at idsat/C.
	const (
		idsat = 1e-6
		ron   = 10e3
		c     = 100e-15
	)
	ckt := New()
	ckt.V("src", DC(1.0))
	ckt.SatSwitch("src", "out", ron, idsat, 0)
	ckt.C("out", "0", c)
	res, err := ckt.Transient(TransientOpts{TStop: 20e-9, H: 10e-12, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	// After 10 ns at ~tanh(1/0.01)->idsat, dV ~ idsat*t/C = 0.1 V.
	got, _ := res.At("out", 10e-9)
	if got < 0.05 || got > 0.15 {
		t.Fatalf("saturated slewing gave %v after 10 ns, want ~0.1", got)
	}
}

func TestSatSwitchOhmicForSmallSignals(t *testing.T) {
	// Small voltage difference: behaves like ron.
	const (
		idsat = 1e-3 // scale >> voltages involved
		ron   = 1e3
		c     = 1e-12
	)
	ckt := New()
	ckt.V("src", DC(0.01))
	ckt.SatSwitch("src", "out", ron, idsat, 0)
	ckt.C("out", "0", c)
	tau := ron * c
	res, err := ckt.Transient(TransientOpts{TStop: 10 * tau, H: tau / 100, Probes: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.At("out", tau)
	want := 0.01 * (1 - math.Exp(-1))
	if math.Abs(got-want) > 0.001 {
		t.Fatalf("ohmic response %v, want %v", got, want)
	}
}

// --- Engine plumbing -------------------------------------------------------------

func TestTransientOptionValidation(t *testing.T) {
	ckt := New()
	ckt.R("a", "0", 1e3)
	if _, err := ckt.Transient(TransientOpts{TStop: 0, H: 1e-12}); err == nil {
		t.Fatal("zero TStop must be rejected")
	}
	if _, err := ckt.Transient(TransientOpts{TStop: 1e-9, H: 0}); err == nil {
		t.Fatal("zero H must be rejected")
	}
	if _, err := ckt.Transient(TransientOpts{TStop: 1e-9, H: 1e-12, Probes: []string{"nope"}}); err == nil {
		t.Fatal("unknown probe must be rejected")
	}
}

func TestEmptyCircuit(t *testing.T) {
	if _, err := New().Transient(TransientOpts{TStop: 1e-9, H: 1e-12}); err == nil {
		t.Fatal("empty circuit must be rejected")
	}
}

func TestGroundAliases(t *testing.T) {
	ckt := New()
	if ckt.Node("0") != -1 || ckt.Node("gnd") != -1 {
		t.Fatal("ground aliases broken")
	}
	if ckt.Node("a") != ckt.Node("a") {
		t.Fatal("node interning broken")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Times:  []float64{0, 1, 2},
		Probes: map[string][]float64{"n": {0, 0.5, 1.0}},
	}
	if v, err := r.At("n", 1.1); err != nil || v != 0.5 {
		t.Fatalf("At: %v, %v", v, err)
	}
	if _, err := r.At("x", 0); err == nil {
		t.Fatal("unknown probe must error")
	}
	tc, err := r.FirstCrossing("n", 0.4, true)
	if err != nil || tc != 1 {
		t.Fatalf("FirstCrossing: %v, %v", tc, err)
	}
	if _, err := r.FirstCrossing("n", 2.0, true); err == nil {
		t.Fatal("never-crossing level must error")
	}
	if v, err := r.Final("n"); err != nil || v != 1.0 {
		t.Fatalf("Final: %v, %v", v, err)
	}
}

func TestDevicePanicsOnBadValues(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	ckt := New()
	mustPanic("R", func() { ckt.R("a", "b", 0) })
	mustPanic("C", func() { ckt.C("a", "b", -1) })
	mustPanic("CDriven", func() { ckt.CDriven("a", 0, DC(0)) })
	mustPanic("SW", func() { ckt.SW("a", "b", 0, 1, 0, 1) })
	mustPanic("VR", func() { ckt.VR("a", DC(0), 0) })
	mustPanic("MOS", func() { ckt.MOS("a", "b", "c", MOSParams{}) })
	mustPanic("SatSwitch", func() { ckt.SatSwitch("a", "b", 0, 1, 0) })
}

// The banded path (large linear circuit) agrees with physics: a long RC
// ladder driven at one end settles every node to the source voltage.
func TestBandedLadderSettles(t *testing.T) {
	ckt := New()
	ckt.V("n0", DC(1))
	prev := "n0"
	const n = 100
	for i := 1; i <= n; i++ {
		name := "n" + itoa(i)
		ckt.R(prev, name, 100)
		ckt.C(name, "0", 1e-15)
		prev = name
	}
	if NewSolver(ckt).autoBackend() != BackendBanded {
		t.Fatalf("test circuit does not exercise the banded path: %d nodes", ckt.NumNodes())
	}
	res, err := ckt.Transient(TransientOpts{TStop: 50e-12 * n, H: 10e-12, Probes: []string{prev}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Final(prev)
	if math.Abs(got-1) > 0.01 {
		t.Fatalf("ladder end settles to %v, want 1", got)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b strings.Builder
	var digits []byte
	for i > 0 {
		digits = append(digits, byte('0'+i%10))
		i /= 10
	}
	for k := len(digits) - 1; k >= 0; k-- {
		b.WriteByte(digits[k])
	}
	return b.String()
}
