package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDeck reads a SPICE-format netlist deck (the subset ExportDeck emits
// for linear elements) back into a Circuit: R, C, V (DC), I (DC) cards plus
// .IC lines, ending at .END. Comment cards (*) and inline comments (;) are
// ignored. Switches and MOSFETs are simulator-specific in real decks and
// are not round-tripped; their cards are skipped with a parse note.
//
// Engineering-unit suffixes are supported: f, p, n, u, m, k, meg, g.
func ParseDeck(r io.Reader) (*Circuit, []string, error) {
	ckt := New()
	var notes []string
	s := bufio.NewScanner(r)
	line := 0
	for s.Scan() {
		line++
		text := strings.TrimSpace(s.Text())
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" || strings.HasPrefix(text, "*") {
			continue
		}
		upper := strings.ToUpper(text)
		fields := strings.Fields(text)
		switch {
		case upper == ".END":
			return ckt, notes, nil
		case strings.HasPrefix(upper, ".IC"):
			// .IC V(node)=value [V(node)=value ...]
			for _, f := range fields[1:] {
				if err := parseIC(ckt, f); err != nil {
					return nil, nil, fmt.Errorf("spice: line %d: %v", line, err)
				}
			}
		case strings.HasPrefix(upper, "R"):
			if len(fields) < 4 {
				return nil, nil, fmt.Errorf("spice: line %d: resistor needs 4 fields", line)
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, nil, fmt.Errorf("spice: line %d: %v", line, err)
			}
			if v <= 0 {
				return nil, nil, fmt.Errorf("spice: line %d: resistance must be positive, got %g", line, v)
			}
			ckt.R(fields[1], fields[2], v)
		case strings.HasPrefix(upper, "C"):
			if len(fields) < 4 {
				return nil, nil, fmt.Errorf("spice: line %d: capacitor needs 4 fields", line)
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, nil, fmt.Errorf("spice: line %d: %v", line, err)
			}
			if v <= 0 {
				return nil, nil, fmt.Errorf("spice: line %d: capacitance must be positive, got %g", line, v)
			}
			ckt.C(fields[1], fields[2], v)
		case strings.HasPrefix(upper, "V"):
			// Vname n+ n- [DC] value
			val, err := sourceValue(fields)
			if err != nil {
				return nil, nil, fmt.Errorf("spice: line %d: %v", line, err)
			}
			if fields[2] != "0" && strings.ToLower(fields[2]) != "gnd" {
				notes = append(notes, fmt.Sprintf("line %d: floating voltage source referenced to %s treated as grounded", line, fields[2]))
			}
			ckt.V(fields[1], DC(val))
		case strings.HasPrefix(upper, "I"):
			val, err := sourceValue(fields)
			if err != nil {
				return nil, nil, fmt.Errorf("spice: line %d: %v", line, err)
			}
			ckt.I(fields[1], fields[2], DC(val))
		case strings.HasPrefix(upper, "S") || strings.HasPrefix(upper, "M"):
			notes = append(notes, fmt.Sprintf("line %d: skipped simulator-specific card %q", line, fields[0]))
		case strings.HasPrefix(upper, "."):
			notes = append(notes, fmt.Sprintf("line %d: ignored directive %s", line, fields[0]))
		default:
			return nil, nil, fmt.Errorf("spice: line %d: unrecognized card %q", line, fields[0])
		}
	}
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return ckt, notes, nil
}

func sourceValue(fields []string) (float64, error) {
	if len(fields) < 4 {
		return 0, fmt.Errorf("source needs at least 4 fields")
	}
	idx := 3
	if strings.EqualFold(fields[3], "DC") {
		if len(fields) < 5 {
			return 0, fmt.Errorf("DC source missing value")
		}
		idx = 4
	}
	return ParseValue(fields[idx])
}

func parseIC(ckt *Circuit, f string) error {
	// V(node)=value
	f = strings.TrimSpace(f)
	u := strings.ToUpper(f)
	if !strings.HasPrefix(u, "V(") {
		return fmt.Errorf("bad .IC entry %q", f)
	}
	close := strings.IndexByte(f, ')')
	eq := strings.IndexByte(f, '=')
	if close < 0 || eq < close {
		return fmt.Errorf("bad .IC entry %q", f)
	}
	node := f[2:close]
	v, err := ParseValue(f[eq+1:])
	if err != nil {
		return err
	}
	ckt.SetIC(node, v)
	return nil
}

// ParseValue parses a SPICE number with optional engineering suffix
// (case-insensitive): f=1e-15, p=1e-12, n=1e-9, u=1e-6, m=1e-3, k=1e3,
// meg=1e6, g=1e9.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, strings.TrimSuffix(s, "meg")
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, strings.TrimSuffix(s, "f")
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, strings.TrimSuffix(s, "p")
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, strings.TrimSuffix(s, "n")
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, strings.TrimSuffix(s, "u")
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, strings.TrimSuffix(s, "g")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v * mult, nil
}
