package spice

import (
	"math"
	"testing"
)

// ladder builds a linear RC ladder large enough to take the banded path.
func ladder(n int) (*Circuit, string) {
	ckt := New()
	ckt.V("n0", DC(1))
	prev := "n0"
	for i := 1; i <= n; i++ {
		name := "n" + itoa(i)
		ckt.R(prev, name, 100)
		ckt.C(name, "0", 1e-15)
		prev = name
	}
	return ckt, prev
}

// nonlinearCell builds a small nonlinear circuit (saturating access switch
// dumping a cell onto an RC-loaded bitline) that exercises the Newton loop.
func nonlinearCell() (*Circuit, string) {
	ckt := New()
	ckt.C("cell", "0", 30e-15)
	ckt.SetIC("cell", 1.2)
	ckt.SatSwitch("cell", "bl", 5e3, 40e-6, 1e-9)
	ckt.C("bl", "0", 90e-15)
	ckt.SetIC("bl", 0.6)
	return ckt, "bl"
}

// A Solver rerun must reproduce the one-shot Transient bit for bit: reused
// buffers and factorizations must not leak state between runs.
func TestSolverRerunMatchesOneShot(t *testing.T) {
	builders := []struct {
		name   string
		build  func() (*Circuit, string)
		method Method
	}{
		{"linear-banded", func() (*Circuit, string) { return ladder(100) }, BackwardEuler},
		{"linear-trapezoidal", func() (*Circuit, string) { return ladder(100) }, Trapezoidal},
		{"nonlinear-dense", nonlinearCell, BackwardEuler},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ckt, probe := b.build()
			if err := ckt.SetMethod(b.method); err != nil {
				t.Fatal(err)
			}
			opts := TransientOpts{TStop: 5e-9, H: 10e-12, Probes: []string{probe}}
			ref, err := ckt.Transient(opts)
			if err != nil {
				t.Fatal(err)
			}
			refWave := append([]float64(nil), ref.Probes[probe]...)

			s := NewSolver(ckt)
			for run := 0; run < 3; run++ {
				res, err := s.Transient(opts)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if len(res.Probes[probe]) != len(refWave) {
					t.Fatalf("run %d: %d samples, want %d", run, len(res.Probes[probe]), len(refWave))
				}
				for i, v := range res.Probes[probe] {
					if v != refWave[i] {
						t.Fatalf("run %d: sample %d = %v, want %v (solver reuse drifted)", run, i, v, refWave[i])
					}
				}
			}
		})
	}
}

// The persistent solver's steady state must be allocation-free: after a
// warm-up run, a full transient analysis (hundreds of timesteps, Newton
// iterations included) performs zero heap allocations.
func TestSolverSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Circuit, string)
	}{
		{"linear-banded", func() (*Circuit, string) { return ladder(100) }},
		{"nonlinear-dense", nonlinearCell},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckt, probe := tc.build()
			s := NewSolver(ckt)
			opts := TransientOpts{TStop: 5e-9, H: 10e-12, Probes: []string{probe}}
			if _, err := s.Transient(opts); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := s.Transient(opts); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Transient allocates %v per run, want 0", allocs)
			}
		})
	}
}

// Forcing each backend on the same linear ladder must agree to solver
// precision, with the residual check validating every solve.
func TestBackendOverrideAgrees(t *testing.T) {
	ckt, probe := ladder(100)
	opts := TransientOpts{TStop: 5e-9, H: 10e-12, Probes: []string{probe}, CheckResidual: true}

	opts.Backend = BackendDense
	dense, err := ckt.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	denseWave := append([]float64(nil), dense.Probes[probe]...)

	opts.Backend = BackendBanded
	banded, err := ckt.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range banded.Probes[probe] {
		if math.Abs(v-denseWave[i]) > 1e-9 {
			t.Fatalf("sample %d: banded %v vs dense %v", i, v, denseWave[i])
		}
	}

	// One Solver must also survive switching backends between runs.
	s := NewSolver(ckt)
	for _, b := range []Backend{BackendBanded, BackendDense, BackendBanded} {
		opts.Backend = b
		res, err := s.Transient(opts)
		if err != nil {
			t.Fatalf("backend %d: %v", b, err)
		}
		for i, v := range res.Probes[probe] {
			if math.Abs(v-denseWave[i]) > 1e-9 {
				t.Fatalf("backend %d sample %d: %v vs dense %v", b, i, v, denseWave[i])
			}
		}
	}
}
