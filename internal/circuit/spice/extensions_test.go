package spice

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCurrentSourceChargesCap(t *testing.T) {
	// 1 uA into 1 pF for 10 ns: dV = I*t/C = 10 mV.
	ckt := New()
	ckt.I("0", "n", DC(1e-6))
	ckt.C("n", "0", 1e-12)
	res, err := ckt.Transient(TransientOpts{TStop: 10e-9, H: 10e-12, Probes: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Final("n")
	if math.Abs(got-0.01) > 1e-4 {
		t.Fatalf("V = %v, want 0.01", got)
	}
}

func TestTrapezoidalMoreAccurateAtLargeSteps(t *testing.T) {
	// RC discharge with a coarse step: the trapezoidal rule must land closer
	// to the analytic exponential than backward Euler.
	const (
		r, c = 1e3, 1e-12
		tau  = r * c
		v0   = 1.0
	)
	run := func(m Method) float64 {
		ckt := New()
		ckt.C("n", "0", c)
		ckt.R("n", "0", r)
		ckt.SetIC("n", v0)
		if err := ckt.SetMethod(m); err != nil {
			t.Fatal(err)
		}
		res, err := ckt.Transient(TransientOpts{TStop: 2 * tau, H: tau / 4, Probes: []string{"n"}})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := res.Final("n")
		return got
	}
	want := v0 * math.Exp(-2)
	be := math.Abs(run(BackwardEuler) - want)
	tr := math.Abs(run(Trapezoidal) - want)
	if tr >= be {
		t.Fatalf("trapezoidal error %v not below backward Euler %v", tr, be)
	}
	if tr > 0.01 {
		t.Fatalf("trapezoidal error %v too large", tr)
	}
}

func TestTrapezoidalMatchesBEAtFineSteps(t *testing.T) {
	const (
		r, c = 10e3, 45e-15
		tau  = r * c
	)
	run := func(m Method) float64 {
		ckt := New()
		ckt.V("src", DC(1))
		ckt.R("src", "n", r)
		ckt.C("n", "0", c)
		if err := ckt.SetMethod(m); err != nil {
			t.Fatal(err)
		}
		res, err := ckt.Transient(TransientOpts{TStop: 3 * tau, H: tau / 300, Probes: []string{"n"}})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := res.At("n", tau)
		return got
	}
	if d := math.Abs(run(BackwardEuler) - run(Trapezoidal)); d > 2e-3 {
		t.Fatalf("methods diverge by %v at fine steps", d)
	}
}

func TestSetMethodRejectsUnknown(t *testing.T) {
	if err := New().SetMethod(Method(99)); err == nil {
		t.Fatal("unknown method must be rejected")
	}
}

func TestExportDeck(t *testing.T) {
	ckt := New()
	ckt.V("vdd", DC(1.2))
	ckt.R("vdd", "out", 1e3)
	ckt.C("out", "0", 1e-12)
	ckt.CDriven("out", 2e-15, DC(0.5))
	ckt.I("0", "out", DC(1e-6))
	ckt.SW("out", "x", 100, 1e9, 0, 1)
	ckt.SatSwitch("x", "y", 1e3, 1e-6, 0)
	ckt.MOS("out", "vdd", "0", MOSParams{Type: NMOS, Beta: 1e-4, Vt: 0.4})
	ckt.MOSDriven("y", "0", MOSParams{Type: PMOS, Beta: 1e-4, Vt: 0.4}, DC(0))
	ckt.SetIC("out", 0.3)

	var buf bytes.Buffer
	if err := ckt.ExportDeck(&buf, "unit test deck"); err != nil {
		t.Fatal(err)
	}
	deck := buf.String()
	for _, want := range []string{
		"* unit test deck",
		"R1 vdd out 1000",
		"C1 out 0 1e-12",
		"V1 vdd 0 DC 1.2",
		"I1 0 out DC 1e-06",
		"S1 out x",
		"S2 x y",
		"M1 out vdd 0 0 NMOS",
		"M2 y driven 0 0 PMOS",
		".IC V(out)=0.3",
		".END",
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestRMSDiff(t *testing.T) {
	d, err := RMSDiff([]float64{1, 2}, []float64{1, 4})
	if err != nil || math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("%v, %v", d, err)
	}
	if _, err := RMSDiff([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if d, err := RMSDiff(nil, nil); err != nil || d != 0 {
		t.Fatal("empty inputs should give zero")
	}
}

func TestCapacitorEnergy(t *testing.T) {
	if got := CapacitorEnergy(2e-12, 3); math.Abs(got-9e-12) > 1e-24 {
		t.Fatalf("energy %v", got)
	}
}
