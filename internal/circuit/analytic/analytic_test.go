package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"vrldram/internal/device"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := New(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	p := device.Default90nm()
	p.Cs = -1
	if _, err := New(p, device.PaperBank); err == nil {
		t.Fatal("invalid params must be rejected")
	}
	if _, err := New(device.Default90nm(), device.BankGeometry{}); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	p := device.Default90nm()
	p.Cs = -1
	MustNew(p, device.PaperBank)
}

// --- Equalization -----------------------------------------------------------

func TestEqWaveformEndpoints(t *testing.T) {
	m := model(t)
	p := m.P
	if v := m.EqBitlineVoltage(0, true); v != p.Vdd {
		t.Fatalf("high bitline at t=0: %v, want Vdd", v)
	}
	if v := m.EqBitlineVoltage(0, false); v != p.Vss {
		t.Fatalf("low bitline at t=0: %v, want Vss", v)
	}
	// Both converge to Veq.
	tEnd := 20e-9
	if v := m.EqBitlineVoltage(tEnd, true); math.Abs(v-p.Veq()) > 1e-4 {
		t.Fatalf("high bitline does not settle to Veq: %v", v)
	}
	if v := m.EqBitlineVoltage(tEnd, false); math.Abs(v-p.Veq()) > 1e-4 {
		t.Fatalf("low bitline does not settle to Veq: %v", v)
	}
}

func TestEqWaveformContinuousAtPhaseBoundary(t *testing.T) {
	m := model(t)
	to := m.EqPhase1Time()
	eps := to * 1e-6
	before := m.EqBitlineVoltage(to-eps, true)
	after := m.EqBitlineVoltage(to+eps, true)
	if math.Abs(before-after) > 1e-3 {
		t.Fatalf("discontinuity at phase boundary: %v vs %v", before, after)
	}
}

func TestEqWaveformMonotone(t *testing.T) {
	m := model(t)
	prevHi, prevLo := m.P.Vdd+1, m.P.Vss-1
	for i := 0; i <= 400; i++ {
		tt := 4e-9 * float64(i) / 400
		hi := m.EqBitlineVoltage(tt, true)
		lo := m.EqBitlineVoltage(tt, false)
		if hi > prevHi+1e-12 {
			t.Fatalf("high bitline not monotone decreasing at t=%v", tt)
		}
		if lo < prevLo-1e-12 {
			t.Fatalf("low bitline not monotone increasing at t=%v", tt)
		}
		if hi < m.P.Veq()-1e-9 || lo > m.P.Veq()+1e-9 {
			t.Fatalf("bitline overshoots Veq at t=%v: hi=%v lo=%v", tt, hi, lo)
		}
		prevHi, prevLo = hi, lo
	}
}

func TestTauEqConsistentWithWaveform(t *testing.T) {
	m := model(t)
	tol := 5e-3
	tau := m.TauEq(tol)
	v := m.EqBitlineVoltage(tau, true)
	if math.Abs(v-m.P.Veq()) > tol*1.01 {
		t.Fatalf("at TauEq, residual %v exceeds tol %v", math.Abs(v-m.P.Veq()), tol)
	}
	// Before TauEq the residual exceeds the tolerance.
	v = m.EqBitlineVoltage(tau*0.7, true)
	if math.Abs(v-m.P.Veq()) < tol {
		t.Fatalf("residual already below tol well before TauEq")
	}
}

func TestTauEqQuantizesToOneCycle(t *testing.T) {
	m := model(t)
	if cyc := m.P.Cycles(m.TauEq(EqTolDefault)); cyc != TauEqCycles {
		t.Fatalf("equalization = %d cycles, calibration wants %d (paper Section 3.1)", cyc, TauEqCycles)
	}
}

// --- Pre-sensing ------------------------------------------------------------

func TestUProperties(t *testing.T) {
	m := model(t)
	if u := m.U(0); u != 1 {
		t.Fatalf("U(0) = %v, want 1", u)
	}
	if u := m.U(-1); u != 1 {
		t.Fatalf("U(<0) = %v, want 1", u)
	}
	prev := 1.0
	for i := 1; i <= 200; i++ {
		u := m.U(50e-9 * float64(i) / 200)
		if u > prev+1e-15 || u < 0 {
			t.Fatalf("U not monotone in [0,1] at step %d: %v", i, u)
		}
		prev = u
	}
	if u := m.U(1e-6); u > 1e-6 {
		t.Fatalf("U does not vanish: %v", u)
	}
}

func TestVsenseVectorUncoupledLimit(t *testing.T) {
	// With Cbb = 0 the coupled solution must equal K1 * Lself elementwise.
	p := device.Default90nm()
	p.Cbb = 0
	m := MustNew(p, device.PaperBank)
	lself := []float64{0.6, -0.6, 0.6, 0.6}
	vs, err := m.VsenseVector(lself)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := m.CouplingK1K2()
	if k2 != 0 {
		t.Fatalf("K2 = %v, want 0", k2)
	}
	for i, v := range vs {
		if math.Abs(v-k1*lself[i]) > 1e-15 {
			t.Errorf("bitline %d: %v, want %v", i, v, k1*lself[i])
		}
	}
}

func TestVsenseCouplingReducesAlternating(t *testing.T) {
	m := model(t)
	n := 32
	ones, err := m.PatternLself("ones", n)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := m.PatternLself("alt", n)
	if err != nil {
		t.Fatal(err)
	}
	vsOnes, err := m.VsenseVector(ones)
	if err != nil {
		t.Fatal(err)
	}
	vsAlt, err := m.VsenseVector(alt)
	if err != nil {
		t.Fatal(err)
	}
	// Interior bitlines: an all-ones pattern REINFORCES the signal through
	// coupling; alternating neighbours fight it.
	mid := n / 2
	if math.Abs(vsAlt[mid]) >= math.Abs(vsOnes[mid]) {
		t.Fatalf("alternating pattern should develop less signal: |%v| vs |%v|", vsAlt[mid], vsOnes[mid])
	}
}

func TestVsenseVectorSolvesEquation(t *testing.T) {
	// Verify K * Vsense = K1 * Lself by direct substitution (Eq. 8).
	m := model(t)
	lself, err := m.PatternLself("random", 16)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := m.VsenseVector(lself)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := m.CouplingK1K2()
	for i := range vs {
		lhs := vs[i]
		if i > 0 {
			lhs -= k2 * vs[i-1]
		}
		if i < len(vs)-1 {
			lhs -= k2 * vs[i+1]
		}
		if math.Abs(lhs-k1*lself[i]) > 1e-12 {
			t.Fatalf("equation residual at bitline %d: %v", i, lhs-k1*lself[i])
		}
	}
}

func TestVsenseVectorEmpty(t *testing.T) {
	m := model(t)
	if _, err := m.VsenseVector(nil); err == nil {
		t.Fatal("empty bitline set must be rejected")
	}
}

func TestPatternLself(t *testing.T) {
	m := model(t)
	for _, pat := range Patterns {
		v, err := m.PatternLself(pat, 8)
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if len(v) != 8 {
			t.Fatalf("%s: length %d", pat, len(v))
		}
		mag := m.P.Vdd - m.P.Veq()
		for i, x := range v {
			if math.Abs(math.Abs(x)-mag) > 1e-15 {
				t.Fatalf("%s[%d]: magnitude %v, want %v", pat, i, math.Abs(x), mag)
			}
		}
	}
	if _, err := m.PatternLself("nope", 8); err == nil {
		t.Fatal("unknown pattern must be rejected")
	}
	alt, _ := m.PatternLself("alt", 4)
	if alt[0] <= 0 || alt[1] >= 0 {
		t.Fatal("alternating pattern signs wrong")
	}
}

func TestWorstCaseAttenuation(t *testing.T) {
	m := model(t)
	att, err := m.WorstCaseAttenuation(32)
	if err != nil {
		t.Fatal(err)
	}
	if att <= 0 || att > 1 {
		t.Fatalf("attenuation %v outside (0,1]", att)
	}
}

func TestTauPreMonotoneInRows(t *testing.T) {
	p := device.Default90nm()
	prev := 0.0
	for _, rows := range []int{1024, 2048, 4096, 8192, 16384} {
		m := MustNew(p, device.BankGeometry{Rows: rows, Cols: 32})
		tp := m.TauPre(PreSenseTargetDefault)
		if tp <= prev {
			t.Fatalf("TauPre not increasing with rows at %d: %v <= %v", rows, tp, prev)
		}
		prev = tp
	}
}

func TestTauPreMonotoneInCols(t *testing.T) {
	p := device.Default90nm()
	m32 := MustNew(p, device.BankGeometry{Rows: 8192, Cols: 32})
	m128 := MustNew(p, device.BankGeometry{Rows: 8192, Cols: 128})
	if m128.TauPre(PreSenseTargetDefault) <= m32.TauPre(PreSenseTargetDefault) {
		t.Fatal("TauPre must grow with columns (wordline delay)")
	}
}

func TestTauPreEdgeTargets(t *testing.T) {
	m := model(t)
	if tp := m.TauPre(0); tp != m.P.WordlineDelay(m.Geom.Cols) {
		t.Fatalf("TauPre(0) = %v, want the bare wordline delay", tp)
	}
	if !math.IsInf(m.TauPre(1), 1) {
		t.Fatal("TauPre(1) must be +Inf")
	}
}

func TestTauPreSatisfiesTarget(t *testing.T) {
	m := model(t)
	tp := m.TauPre(0.95)
	tShare := tp - m.P.WordlineDelay(m.Geom.Cols)
	if got := 1 - m.U(tShare); got < 0.95-1e-6 {
		t.Fatalf("development at TauPre = %v, want >= 0.95", got)
	}
}

// --- Post-sensing -----------------------------------------------------------

func TestSensePhaseDelaysPositive(t *testing.T) {
	m := model(t)
	dv, err := m.DefaultDvbl()
	if err != nil {
		t.Fatal(err)
	}
	if m.T1() <= 0 {
		t.Fatal("T1 must be positive")
	}
	if m.T2(dv) < 0 {
		t.Fatal("T2 must be non-negative")
	}
	if m.T3() <= 0 {
		t.Fatal("T3 must be positive")
	}
	if m.SensePhaseDelay(dv) != m.T1()+m.T2(dv)+m.T3() {
		t.Fatal("SensePhaseDelay must sum the phases")
	}
}

func TestT2GrowsAsSignalShrinks(t *testing.T) {
	m := model(t)
	if m.T2(0.05) <= m.T2(0.2) {
		t.Fatal("smaller differential input must regenerate more slowly")
	}
	if !math.IsInf(m.T2(0), 1) {
		t.Fatal("zero input never regenerates")
	}
}

func TestRestoreVoltageProperties(t *testing.T) {
	m := model(t)
	dv, err := m.DefaultDvbl()
	if err != nil {
		t.Fatal(err)
	}
	vPre := 0.6 * m.P.Vdd
	t123 := m.SensePhaseDelay(dv)
	// No restore before the sensing phases complete.
	if v := m.RestoreVoltage(vPre, t123*0.5, dv); v != vPre {
		t.Fatalf("charge moved during sensing phases: %v", v)
	}
	// Monotone toward Vdd afterwards.
	prev := vPre
	for i := 1; i <= 50; i++ {
		v := m.RestoreVoltage(vPre, t123+20e-9*float64(i)/50, dv)
		if v < prev-1e-12 || v > m.P.Vdd {
			t.Fatalf("restore not monotone within [vPre, Vdd] at step %d: %v", i, v)
		}
		prev = v
	}
	if m.P.Vdd-prev > 1e-6 {
		t.Fatalf("restore does not approach Vdd: %v", prev)
	}
}

func TestTauPostInvertsRestore(t *testing.T) {
	m := model(t)
	dv, err := m.DefaultDvbl()
	if err != nil {
		t.Fatal(err)
	}
	vPre := 0.55 * m.P.Vdd
	target := 0.95
	tp := m.TauPost(vPre, target, dv)
	v := m.RestoreVoltage(vPre, tp, dv)
	if math.Abs(v-target*m.P.Vdd) > 1e-9 {
		t.Fatalf("RestoreVoltage(TauPost) = %v, want %v", v, target*m.P.Vdd)
	}
	if m.TauPost(vPre, vPre/m.P.Vdd, dv) != 0 {
		t.Fatal("target below start must cost zero time")
	}
	if !math.IsInf(m.TauPost(vPre, 1, dv), 1) {
		t.Fatal("full charge is asymptotic: TauPost(1) must be +Inf")
	}
}

func TestRestoreAlphaBounds(t *testing.T) {
	m := model(t)
	dv, err := m.DefaultDvbl()
	if err != nil {
		t.Fatal(err)
	}
	f := func(ns float64) bool {
		tau := math.Abs(ns) * 1e-9
		a := m.RestoreAlpha(tau, dv)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if a := m.RestoreAlpha(0, dv); a != 0 {
		t.Fatalf("alpha(0) = %v, want 0", a)
	}
	aPartial := m.RestoreAlpha(float64(TauPostPartialCycles)*m.P.TCK, dv)
	aFull := m.RestoreAlpha(float64(TauPostFullCycles)*m.P.TCK, dv)
	if aPartial >= aFull {
		t.Fatalf("partial alpha %v must be below full alpha %v", aPartial, aFull)
	}
	// Calibration: the partial window restores ~90% of the gap (the paper's
	// restore-to-95%-of-capacity operating point) and the full window
	// essentially everything.
	if aPartial < 0.85 || aPartial > 0.95 {
		t.Fatalf("partial alpha %v outside the calibrated [0.85,0.95]", aPartial)
	}
	if aFull < 0.999 {
		t.Fatalf("full alpha %v below 0.999", aFull)
	}
}

// --- tRFC and the restore curve ----------------------------------------------

func TestTRFCBreakdown(t *testing.T) {
	m := model(t)
	b, err := m.TRFC(0.6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if b.TRFC <= 0 {
		t.Fatal("total tRFC must be positive")
	}
	sum := b.TauEq + b.TauPre + b.TauPost + b.TauFixed
	if math.Abs(sum-b.TRFC) > 1e-15 {
		t.Fatalf("components %v do not sum to total %v", sum, b.TRFC)
	}
	cyc := b.TauEqCycles + b.TauPreCycles + b.TauPostCycles + b.TauFixedCycles
	if cyc != b.TRFCCycles {
		t.Fatalf("cycle components %d do not sum to %d", cyc, b.TRFCCycles)
	}
	if _, err := m.TRFC(-0.1, 0.95); err == nil {
		t.Fatal("bad vPreFrac must be rejected")
	}
	if _, err := m.TRFC(0.6, 1.5); err == nil {
		t.Fatal("bad targetFrac must be rejected")
	}
}

func TestRestoreCurveShape(t *testing.T) {
	m := model(t)
	pts, err := m.RestoreCurve(0.5, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 101 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].FracTRFC != 0 || pts[len(pts)-1].FracTRFC != 1 {
		t.Fatal("curve must span [0,1] of tRFC")
	}
	prev := -1.0
	for i, p := range pts {
		if p.FracCharge < prev-1e-12 || p.FracCharge < 0 || p.FracCharge > 1 {
			t.Fatalf("charge not monotone in [0,1] at point %d", i)
		}
		prev = p.FracCharge
	}
	if pts[0].FracCharge != 0.5 {
		t.Fatalf("curve starts at %v, want 0.5", pts[0].FracCharge)
	}
	if pts[len(pts)-1].FracCharge < 0.999 {
		t.Fatalf("full refresh ends at %v, want ~1", pts[len(pts)-1].FracCharge)
	}
	if _, err := m.RestoreCurve(0.5, 1); err == nil {
		t.Fatal("n < 2 must be rejected")
	}
}

func TestObservation1(t *testing.T) {
	// The paper's headline circuit observation: ~60% of tRFC to reach 95% of
	// charge. Allow the calibrated band 55-65%.
	m := model(t)
	frac, err := m.TimeToChargeFraction(0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("95%% of charge at %.0f%% of tRFC; paper says ~60%%", frac*100)
	}
}

func TestPaperOperatingPointCycles(t *testing.T) {
	if TauFullCycles != 19 || TauPartialCycles != 11 {
		t.Fatal("scheduled latencies must match the paper's Section 3.1")
	}
	if TauEqCycles+TauPreCycles+TauPostFullCycles+4 != TauFullCycles {
		t.Fatal("full breakdown inconsistent")
	}
	if TauEqCycles+TauPreCycles+TauPostPartialCycles+4 != TauPartialCycles {
		t.Fatal("partial breakdown inconsistent")
	}
}

func TestTable1ModelColumn(t *testing.T) {
	// The calibrated analytical model reproduces its Table 1 column to
	// within 2 cycles of the paper (7/8/9/10/12/14); the 2048/8192 rows
	// match exactly, the 16384x128 corner comes out 2 cycles low (see
	// EXPERIMENTS.md).
	p := device.Default90nm()
	want := []int{7, 8, 9, 10, 12, 14}
	exact := []bool{true, true, true, true, false, false}
	for i, g := range device.Table1Banks {
		m := MustNew(p, g)
		got := p.Cycles(m.TauPre(PreSenseTargetDefault))
		diff := got - want[i]
		if exact[i] && diff != 0 {
			t.Errorf("%s: %d cycles, paper %d (expected exact)", g, got, want[i])
		}
		if diff < -2 || diff > 2 {
			t.Errorf("%s: %d cycles, paper %d (tolerance 2)", g, got, want[i])
		}
	}
}
