// Package analytic implements the paper's circuit-level analytical model of
// a DRAM refresh operation (Section 2): the two-phase equalization delay
// (Eqs. 1-2), the pre-sensing charge-sharing delay including
// bitline-to-bitline and bitline-to-wordline parasitic coupling with the
// closed-form solution of the cyclic dependency (Eqs. 3-8), the four-phase
// post-sensing delay of the latch-based sense amplifier (Eqs. 9-12), and the
// refresh cycle time composition tRFC = teq + tpre + tpost + tfixed
// (Eq. 13).
//
// The model's purpose, as in the paper, is to estimate the minimum refresh
// latency that restores a DRAM cell to a given fraction of its full charge
// - in particular the latency of a truncated "partial" refresh - orders of
// magnitude faster than transient circuit simulation.
package analytic

import (
	"fmt"
	"math"

	"vrldram/internal/device"
)

// Model evaluates the analytical refresh model for one device parameter set
// and bank geometry.
type Model struct {
	P    device.Params
	Geom device.BankGeometry
}

// New returns a model for the given parameters and geometry, validating
// both.
func New(p device.Params, g device.BankGeometry) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, Geom: g}, nil
}

// MustNew is New but panics on invalid inputs; for tests and examples with
// known-good parameters.
func MustNew(p device.Params, g device.BankGeometry) *Model {
	m, err := New(p, g)
	if err != nil {
		panic(fmt.Sprintf("analytic: %v", err))
	}
	return m
}

// solveMonotone finds t in [lo, hi] with f(t) = 0 for f monotonically
// decreasing, by bisection to absolute tolerance tol (seconds).
func solveMonotone(f func(float64) float64, lo, hi, tol float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo <= 0 {
		return lo
	}
	if fhi > 0 {
		return hi
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// clamp01 clips v to [0, 1].
func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
