package analytic

import "math"

// Post-sensing delay (paper Section 2.3).
//
// Once the sense amplifier is enabled it passes through four phases:
//
//	Phase 1 (Eq. 9):  both outputs discharge at the NMOS saturation current
//	                  until one PMOS turns on (output drops by Vtp).
//	Phase 2 (Eq. 10): positive feedback in the cross-coupled pair amplifies
//	                  the differential.
//	Phase 3 (Eq. 11): the output terminals are driven to the rails.
//	Phase 4 (Eq. 12): the cell capacitor is charged to the restored level
//	                  through the restore path with time constant
//	                  Rpost * Cpost.
//
// Only Phase 4 moves significant charge into the cell; phases 1-3 are the
// sensing overhead t1+t2+t3 that a truncated (partial) refresh still has to
// pay. This is exactly why the last few percent of charge are so expensive
// (the paper's Observation 1): the charge already restored grows like
// 1 - exp(-t/RpostCpost) only after the t1+t2+t3 offset.

// SenseIdsat returns Idsat10 of Eq. 9: the saturation current of the
// sense-amplifier pull-down devices at the equalized input level.
func (m *Model) SenseIdsat() float64 {
	p := m.P
	ov := p.Veq() - p.Vtn
	if ov <= 0 {
		return 0
	}
	ratio := (p.Vdd - p.Vtn) / ov
	f := 1 - 0.75/(1+ratio)
	return p.BetaN * ov * ov * f * f
}

// T1 returns Phase 1's delay (Eq. 9): the time for an output node
// (precharged to Vdd) to discharge by Vtp at the saturation current.
func (m *Model) T1() float64 {
	id := m.SenseIdsat()
	if id <= 0 {
		return math.Inf(1)
	}
	return m.P.CblSeg() * m.P.Vtp / id
}

// T2 returns Phase 2's delay (Eq. 10): the regeneration time of the
// cross-coupled pair given the differential input dvbl developed during
// pre-sensing. Smaller input signals regenerate more slowly
// (logarithmically).
func (m *Model) T2(dvbl float64) float64 {
	p := m.P
	if dvbl <= 0 {
		return math.Inf(1)
	}
	id := m.SenseIdsat()
	arg := (1 / p.Vtp) * 2 * math.Sqrt(id/p.BetaN) * (p.Vdd - p.Vtp - p.Veq()) / dvbl
	if arg < 1 {
		// Input already exceeds the regeneration boundary; Phase 2 is
		// effectively instantaneous.
		return 0
	}
	return p.CblSeg() / p.Gme * math.Log(arg)
}

// T3 returns Phase 3's delay (Eq. 11): driving the output terminals to the
// rails, t3 = Rpost * Cbl * ln(Veq / Vresidue).
func (m *Model) T3() float64 {
	p := m.P
	return p.Rpost() * p.CblSeg() * math.Log(p.Veq()/p.Vresidue)
}

// SensePhaseDelay returns t1+t2+t3 for a refresh whose pre-sensing developed
// the given differential bitline voltage.
func (m *Model) SensePhaseDelay(dvbl float64) float64 {
	return m.T1() + m.T2(dvbl) + m.T3()
}

// DefaultDvbl returns the differential input the sense amplifier sees at the
// paper's operating point: 95% of the worst-case coupled sense asymptote.
func (m *Model) DefaultDvbl() (float64, error) {
	att, err := m.WorstCaseAttenuation(m.Geom.Cols)
	if err != nil {
		return 0, err
	}
	return PreSenseTargetDefault * att * m.VsenseIdeal(m.P.Vdd-m.P.Veq()), nil
}

// RestoreTau returns the Phase 4 restore time constant Rpost * Cpost of
// Eq. 12.
func (m *Model) RestoreTau() float64 {
	return m.P.Rpost() * m.P.Cpost()
}

// RestoreVoltage evaluates Eq. 12: the cell voltage after a post-sensing
// window of tauPost seconds, starting from vPre volts on the cell, with the
// t1+t2+t3 sensing overhead computed for differential input dvbl. The cell
// charges toward Vdd exponentially once the sensing phases complete; before
// that it holds vPre.
func (m *Model) RestoreVoltage(vPre, tauPost, dvbl float64) float64 {
	t123 := m.SensePhaseDelay(dvbl)
	drive := tauPost - t123
	if drive <= 0 {
		return vPre
	}
	va := m.P.Vdd - vPre
	return vPre + va*(1-math.Exp(-drive/m.RestoreTau()))
}

// RestoreAlpha returns the normalized restore coefficient of a refresh whose
// post-sensing window is tauPost seconds: the fraction of the gap to full
// charge that Phase 4 closes, alpha = 1 - exp(-(tauPost - t1 - t2 - t3) /
// (Rpost*Cpost)), clamped to [0, 1]. This is the quantity the VRL-DRAM
// mechanism feeds into the MPRSF computation: a refresh maps normalized cell
// charge v to v + (1-v)*alpha.
func (m *Model) RestoreAlpha(tauPost, dvbl float64) float64 {
	t123 := m.SensePhaseDelay(dvbl)
	drive := tauPost - t123
	if drive <= 0 {
		return 0
	}
	return clamp01(1 - math.Exp(-drive/m.RestoreTau()))
}

// TauPost returns the post-sensing window needed to restore a cell starting
// at vPre volts to targetFrac of Vdd, for differential input dvbl. Returns
// +Inf if the target is unreachable (targetFrac >= 1).
func (m *Model) TauPost(vPre, targetFrac, dvbl float64) float64 {
	p := m.P
	target := targetFrac * p.Vdd
	if target <= vPre {
		return 0
	}
	if targetFrac >= 1 {
		return math.Inf(1)
	}
	t123 := m.SensePhaseDelay(dvbl)
	// Invert Eq. 12: target = vPre + (Vdd - vPre)(1 - exp(-drive/tau)).
	frac := (target - vPre) / (p.Vdd - vPre)
	drive := -m.RestoreTau() * math.Log(1-frac)
	return t123 + drive
}
