package analytic

import "math"

// Equalization delay (paper Section 2.1).
//
// Before a row can be activated for refresh, the differential sense
// amplifier's bitline pair must be driven from the previous activation's
// full-swing state (one bitline at Vdd, the complement at Vss) to the
// equalization voltage Veq = Vdd/2. The equalization devices M2/M3 start in
// saturation (Phase 1, constant-current discharge) and enter the linear
// region once the bitline has moved by Vtn (Phase 2, exponential settling).

// EqIdsat returns the saturation current of the equalization NMOS devices,
// Idsat2 = (beta_n/2) * (Vg - Veq - Vtn)^2, the denominator of Eq. 1.
func (m *Model) EqIdsat() float64 {
	ov := m.P.Vg - m.P.Veq() - m.P.Vtn
	if ov <= 0 {
		return 0
	}
	return m.P.BetaN / 2 * ov * ov
}

// EqPhase1Time returns t_o of Eq. 1: the duration of the constant-current
// phase, which ends when the bitline voltage has moved by Vtn toward Veq.
func (m *Model) EqPhase1Time() float64 {
	id := m.EqIdsat()
	if id <= 0 {
		return math.Inf(1)
	}
	return m.P.CblSeg() * m.P.Vtn / id
}

// EqRon returns ron2 of Eq. 2, the linear-region ON resistance of the
// equalization device: 1 / (beta_n * (Vg - Veq - Vtn)).
func (m *Model) EqRon() float64 {
	ov := m.P.Vg - m.P.Veq() - m.P.Vtn
	if ov <= 0 {
		return math.Inf(1)
	}
	return 1 / (m.P.BetaN * ov)
}

// EqReq returns Req = Rbl + ron2 of Eq. 2.
func (m *Model) EqReq() float64 { return m.P.Rbl + m.EqRon() }

// EqBitlineVoltage returns the two-phase equalization waveform of Eqs. 1-2
// at time t (seconds) after EQ assertion. If high is true the waveform is
// for the bitline that starts at Vdd; otherwise for the complementary
// bitline that starts at Vss.
func (m *Model) EqBitlineVoltage(t float64, high bool) float64 {
	p := m.P
	veq := p.Veq()
	to := m.EqPhase1Time()
	id := m.EqIdsat()
	cbl := p.CblSeg()

	v0 := p.Vss
	dir := 1.0 // complementary bitline charges up
	if high {
		v0 = p.Vdd
		dir = -1.0 // bitline discharges down
	}
	if t <= 0 {
		return v0
	}
	if t < to {
		// Phase 1: constant-current slewing at Idsat2/Cbl.
		return v0 + dir*id/cbl*t
	}
	// Phase 2: exponential settling to Veq (Eq. 2).
	vto := v0 + dir*p.Vtn
	tau := m.EqReq() * cbl
	return veq + (vto-veq)*math.Exp(-(t-to)/tau)
}

// TauEq returns the equalization delay: the time until both bitlines are
// within tol volts of Veq. A typical tol is a few millivolts; the paper's
// Section 3.1 operating point quantizes this to 1 DRAM cycle.
func (m *Model) TauEq(tol float64) float64 {
	p := m.P
	to := m.EqPhase1Time()
	gap := math.Abs(p.Vdd - p.Vtn - p.Veq()) // both bitlines are Vtn from the rail at t_o
	if gap <= tol {
		return to
	}
	tau := m.EqReq() * p.CblSeg()
	return to + tau*math.Log(gap/tol)
}

// EqTolDefault is the settling tolerance used when quantizing the
// equalization delay to cycles: 5 mV residual imbalance is far below the
// sense margin.
const EqTolDefault = 5e-3
