package analytic

import (
	"fmt"
	"math"

	"vrldram/internal/linalg"
)

// Pre-sensing delay (paper Section 2.2).
//
// After the wordline is asserted, each activated cell shares its charge with
// its (equalized) bitline through the access transistor. The differential
// voltage that develops on bitline i approaches an asymptote Vsense_i that
// is reduced by charge stolen into the bitline-to-bitline (Cbb) and
// bitline-to-wordline (Cbw) parasitics, and - the paper's modeling
// contribution - depends cyclically on the voltage developed on the
// NEIGHBORING bitlines (Eq. 7). The closed form is the tridiagonal solve of
// Eq. 8.

// U returns the charge-sharing settling function of Eq. 3 evaluated at time
// t (seconds) after the wordline completes assertion. U decays from 1 to 0;
// the developed bitline voltage is DeltaVbl(t) = Vsense * (1 - U(t)).
func (m *Model) U(t float64) float64 {
	if t <= 0 {
		return 1
	}
	cs, cbl := m.P.Cs, m.P.CblSeg()
	rpre := m.P.Rpre(m.Geom.Rows)
	num := cs*math.Exp(-t/(rpre*cbl)) + cbl*math.Exp(-t/(rpre*cs))
	return num / (cs + cbl)
}

// VsenseIdeal returns the coupling-free asymptotic bitline voltage change of
// Eq. 4 for a cell whose stored voltage differs from the equalized bitline
// by lself volts: Cs/(Cs+Cbl) * lself.
func (m *Model) VsenseIdeal(lself float64) float64 {
	return m.P.ChargeTransferRatio() * lself
}

// CouplingK1K2 returns the K1 and K2 constants of Eq. 7:
// K1 = Cs / (Cs + Cbl + 2*Cbb + Cbw), K2 = Cbb / (same denominator).
func (m *Model) CouplingK1K2() (k1, k2 float64) {
	den := m.P.Cs + m.P.CblSeg() + 2*m.P.Cbb + m.P.Cbw
	return m.P.Cs / den, m.P.Cbb / den
}

// VsenseVector solves the coupled system of Eq. 8, K * Vsense = K1 * Lself,
// for a wordline crossing len(lself) bitlines. lself[i] is the signed
// cell-to-bitline voltage difference of the cell on bitline i (positive for
// a stored "1" on an equalized bitline, negative for a stored "0"). K is
// tridiagonal with unit diagonal and -K2 off-diagonals.
func (m *Model) VsenseVector(lself []float64) ([]float64, error) {
	n := len(lself)
	if n == 0 {
		return nil, fmt.Errorf("analytic: VsenseVector needs at least one bitline")
	}
	k1, k2 := m.CouplingK1K2()
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1
		if i > 0 {
			lower[i] = -k2
		}
		if i < n-1 {
			upper[i] = -k2
		}
		rhs[i] = k1 * lself[i]
	}
	return linalg.SolveTridiagonal(lower, diag, upper, rhs)
}

// PatternLself returns the signed Lself vector for the given data pattern
// stored on fully charged cells across n bitlines. The magnitude is
// Vdd - Veq (a full cell against an equalized bitline); the sign encodes the
// stored bit. Supported patterns match the paper's Section 3.1 evaluation
// set: "zeros", "ones", "alt" (alternating), and "random" (deterministic,
// seeded by the bitline index).
func (m *Model) PatternLself(pattern string, n int) ([]float64, error) {
	mag := m.P.Vdd - m.P.Veq()
	out := make([]float64, n)
	switch pattern {
	case "zeros":
		for i := range out {
			out[i] = -mag
		}
	case "ones":
		for i := range out {
			out[i] = mag
		}
	case "alt":
		for i := range out {
			if i%2 == 0 {
				out[i] = mag
			} else {
				out[i] = -mag
			}
		}
	case "random":
		// xorshift-style deterministic bit per column; no global state so
		// results are reproducible across runs and platforms.
		x := uint64(0x9E3779B97F4A7C15)
		for i := range out {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x&1 == 1 {
				out[i] = mag
			} else {
				out[i] = -mag
			}
		}
	default:
		return nil, fmt.Errorf("analytic: unknown data pattern %q", pattern)
	}
	return out, nil
}

// Patterns lists the four data patterns of the paper's Section 3.1
// evaluation.
var Patterns = []string{"zeros", "ones", "alt", "random"}

// WorstCaseAttenuation returns the minimum |Vsense_i| / |VsenseIdeal| ratio
// over all bitlines and over the four data patterns: how much parasitic
// coupling shrinks the developed sense signal in the worst case. The
// returned value is in (0, 1].
func (m *Model) WorstCaseAttenuation(cols int) (float64, error) {
	ideal := math.Abs(m.VsenseIdeal(m.P.Vdd - m.P.Veq()))
	// Note: the fair comparison point for attenuation is the same-capacitor
	// asymptote without coupling terms, i.e. K1 with Cbb=Cbw=0 vs with. We
	// compare against the plain charge-transfer ratio, matching Eq. 4.
	worst := math.Inf(1)
	for _, pat := range Patterns {
		lself, err := m.PatternLself(pat, cols)
		if err != nil {
			return 0, err
		}
		vs, err := m.VsenseVector(lself)
		if err != nil {
			return 0, err
		}
		for _, v := range vs {
			if r := math.Abs(v) / ideal; r < worst {
				worst = r
			}
		}
	}
	return worst, nil
}

// TauPre returns the pre-sensing delay: the wordline assertion delay for
// this bank's column count plus the charge-sharing time needed for the
// developed bitline voltage to reach targetFrac of its asymptote
// (Eq. 5 with 1-U(tau_pre) = targetFrac). The paper's Table 1 uses
// targetFrac = 0.95 ("95% of capacity").
func (m *Model) TauPre(targetFrac float64) float64 {
	if targetFrac <= 0 {
		return m.P.WordlineDelay(m.Geom.Cols)
	}
	if targetFrac >= 1 {
		return math.Inf(1)
	}
	resid := 1 - targetFrac
	cs, cbl := m.P.Cs, m.P.CblSeg()
	rpre := m.P.Rpre(m.Geom.Rows)
	// Upper bound: slowest time constant times enough decades.
	tauSlow := rpre * math.Max(cs, cbl)
	hi := tauSlow * math.Log(1/resid) * 4
	tShare := solveMonotone(func(t float64) float64 {
		return m.U(t) - resid
	}, 0, hi, 1e-15)
	return m.P.WordlineDelay(m.Geom.Cols) + tShare
}

// PreSenseTargetDefault is the restore target used by the paper's Table 1:
// develop 95% of the achievable sense signal.
const PreSenseTargetDefault = 0.95
