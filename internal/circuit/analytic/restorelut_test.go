package analytic

import (
	"math"
	"math/rand"
	"testing"

	"vrldram/internal/device"
)

func restoreCurveFixture(t *testing.T) (*Model, *RestoreCurve, float64) {
	t.Helper()
	m, err := New(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	dvbl, err := m.DefaultDvbl()
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.RestoreAlphaCurve(dvbl)
	if err != nil {
		t.Fatal(err)
	}
	return m, c, dvbl
}

// TestRestoreCurveTolerance sweeps the curve densely against the analytic
// RestoreAlpha: the interpolated coefficient must stay within RestoreAlphaTol
// everywhere, over the zero region, the knee, and deep into the tail.
func TestRestoreCurveTolerance(t *testing.T) {
	m, c, dvbl := restoreCurveFixture(t)
	if c.MaxError() > RestoreAlphaTol {
		t.Fatalf("gate passed but MaxError %g exceeds %g", c.MaxError(), RestoreAlphaTol)
	}
	if c.Dvbl() != dvbl {
		t.Fatalf("Dvbl() = %g, want %g", c.Dvbl(), dvbl)
	}
	t123 := m.SensePhaseDelay(dvbl)
	tau := m.RestoreTau()
	worst := 0.0
	for k := 0; k <= 40000; k++ {
		// 0 .. t123 + 30*tau: spans pre-knee zeros, the table, and the
		// analytic tail past restoreCurveSpan.
		tauPost := (t123 + 30*tau) * float64(k) / 40000
		got := c.Alpha(tauPost)
		want := m.RestoreAlpha(tauPost, dvbl)
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
	}
	if worst > RestoreAlphaTol {
		t.Fatalf("worst sweep deviation %g exceeds %g", worst, RestoreAlphaTol)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		tauPost := (t123 + 30*tau) * rng.Float64()
		got := c.Alpha(tauPost)
		want := m.RestoreAlpha(tauPost, dvbl)
		if e := math.Abs(got - want); e > RestoreAlphaTol {
			t.Fatalf("Alpha(%g) = %.17g, want %.17g (err %g)", tauPost, got, want, e)
		}
	}
}

// TestRestoreCurveKink: alpha is pinned at exactly zero through the whole
// t1+t2+t3 sensing overhead - the kink the drive-domain construction parks on
// the table boundary.
func TestRestoreCurveKink(t *testing.T) {
	m, c, dvbl := restoreCurveFixture(t)
	t123 := m.SensePhaseDelay(dvbl)
	for k := 0; k <= 1000; k++ {
		tauPost := t123 * float64(k) / 1000
		if got := c.Alpha(tauPost); got != 0 {
			t.Fatalf("Alpha(%g) = %g inside the sensing overhead, want 0", tauPost, got)
		}
	}
	if got := c.Alpha(-1); got != 0 {
		t.Fatalf("Alpha(-1) = %g, want 0", got)
	}
	// Just past the kink the coefficient turns positive, matching analytic.
	just := t123 + m.RestoreTau()*1e-6
	if got, want := c.Alpha(just), m.RestoreAlpha(just, dvbl); math.Abs(got-want) > RestoreAlphaTol || got <= 0 {
		t.Fatalf("Alpha just past kink = %.17g, want %.17g > 0", got, want)
	}
}

// TestRestoreCurveTailFallback: drives past the table's reach evaluate the
// analytic expression bit for bit.
func TestRestoreCurveTailFallback(t *testing.T) {
	m, c, dvbl := restoreCurveFixture(t)
	t123 := m.SensePhaseDelay(dvbl)
	tau := m.RestoreTau()
	for _, span := range []float64{restoreCurveSpan, restoreCurveSpan + 1, 100} {
		tauPost := t123 + span*tau
		if got, want := c.Alpha(tauPost), m.RestoreAlpha(tauPost, dvbl); got != want {
			t.Fatalf("Alpha(%g) = %.17g, want analytic %.17g", tauPost, got, want)
		}
	}
}

func TestRestoreCurveRejectsDeadInput(t *testing.T) {
	m, err := New(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	// A non-positive differential never finishes Phase 2, so t1+t2+t3 is
	// infinite and the curve must refuse to build.
	if _, err := m.RestoreAlphaCurve(0); err == nil {
		t.Fatal("RestoreAlphaCurve(0) built a curve for a sense that never completes")
	}
}
