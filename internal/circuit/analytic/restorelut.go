package analytic

import (
	"fmt"
	"math"

	"vrldram/internal/lut"
)

// RestoreAlphaTol is the equivalence gate a restore-alpha curve must pass
// before it may stand in for RestoreAlpha: worst deviation over the
// refinement grid at or below this bound, or construction fails.
const RestoreAlphaTol = 1e-9

// restoreCurveSamples is the table resolution over the drive-time domain.
const restoreCurveSamples = (1 << 14) + 1

// restoreCurveSpan is the table's reach in restore time constants: past
// 24*RC the coefficient is within 4e-11 of 1, far under the gate, so the
// tail falls back to the analytic expression.
const restoreCurveSpan = 24.0

// RestoreCurve precomputes RestoreAlpha for one differential input dvbl
// into a monotone cubic table. The curve has a kink where the post-sensing
// window first exceeds the t1+t2+t3 sensing overhead (alpha is pinned at 0
// before it), so the table is built over the smooth drive time
// tauPost - t123 and the kink lands exactly on the domain boundary.
//
// Like the decay LUT this is a gated approximation, not a bit-identical
// replacement: use it for sweeps that evaluate the curve densely, not where
// exact reproducibility of the analytic model is asserted.
type RestoreCurve struct {
	m      *Model
	dvbl   float64
	t123   float64
	tau    float64 // restore time constant Rpost*Cpost
	tab    *lut.Table
	maxErr float64
}

// RestoreAlphaCurve fits and gates a restore-alpha curve at the given
// differential input.
func (m *Model) RestoreAlphaCurve(dvbl float64) (*RestoreCurve, error) {
	t123 := m.SensePhaseDelay(dvbl)
	if math.IsInf(t123, 0) || math.IsNaN(t123) {
		return nil, fmt.Errorf("analytic: restore curve at dvbl=%g: sensing never completes (t1+t2+t3 = %g)", dvbl, t123)
	}
	tau := m.RestoreTau()
	if !(tau > 0) {
		return nil, fmt.Errorf("analytic: restore curve: nonpositive restore time constant %g", tau)
	}
	f := func(drive float64) float64 {
		return clamp01(1 - math.Exp(-drive/tau))
	}
	tab, err := lut.New(f, 0, restoreCurveSpan*tau, restoreCurveSamples)
	if err != nil {
		return nil, fmt.Errorf("analytic: restore curve at dvbl=%g: %v", dvbl, err)
	}
	maxErr, err := tab.Gate(f, RestoreAlphaTol, 4)
	if err != nil {
		return nil, fmt.Errorf("analytic: restore curve at dvbl=%g failed its equivalence gate: %v", dvbl, err)
	}
	return &RestoreCurve{m: m, dvbl: dvbl, t123: t123, tau: tau, tab: tab, maxErr: maxErr}, nil
}

// Alpha returns the interpolated restore coefficient for a post-sensing
// window of tauPost seconds, matching RestoreAlpha's guards exactly and
// falling back to the analytic expression past the table's reach.
func (c *RestoreCurve) Alpha(tauPost float64) float64 {
	drive := tauPost - c.t123
	if drive <= 0 {
		return 0
	}
	if _, b := c.tab.Bounds(); drive >= b {
		return clamp01(1 - math.Exp(-drive/c.tau))
	}
	a := c.tab.Eval(drive)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// Dvbl returns the differential input the curve was fitted at.
func (c *RestoreCurve) Dvbl() float64 { return c.dvbl }

// MaxError returns the worst deviation the equivalence gate measured.
func (c *RestoreCurve) MaxError() float64 { return c.maxErr }
