package analytic

import (
	"fmt"
	"math"
)

// Refresh cycle time composition (paper Eq. 13):
//
//	tRFC = tau_eq + tau_pre + tau_post + tau_fixed
//
// The paper quantizes each component to DRAM cycles and, at its Section 3.1
// operating point, schedules
//
//	tau_partial = 11 cycles (tau_eq=1, tau_pre=2, tau_post=4, tau_fixed=4)
//	tau_full    = 19 cycles (tau_eq=1, tau_pre=2, tau_post=12, tau_fixed=4)
//
// Note a quirk of the paper itself: Section 3.1 budgets tau_pre = 2 cycles
// for scheduling while Table 1 reports ~9 cycles of pre-sensing for the same
// 8192x32 bank (Table 1 measures the time to develop 95% of the sense
// signal; the scheduling budget assumes sensing can fire much earlier and
// restore continues through Phase 4). We expose both: Breakdown carries the
// model-derived component latencies, and the Tau*Cycles constants carry the
// paper's canonical scheduling values, which the refresh schedulers use.

// Canonical scheduling latencies from the paper's Section 3.1.
const (
	TauEqCycles          = 1  // equalization budget, cycles
	TauPreCycles         = 2  // pre-sensing budget, cycles
	TauPostFullCycles    = 12 // post-sensing budget of a full refresh, cycles
	TauPostPartialCycles = 4  // post-sensing budget of a partial refresh, cycles

	// TauFullCycles and TauPartialCycles are the total refresh latencies the
	// memory controller schedules (tau_fixed = 4 cycles is added by the
	// device parameters; 1+2+12+4 = 19 and 1+2+4+4 = 11).
	TauFullCycles    = 19
	TauPartialCycles = 11
)

// Breakdown is the model-derived decomposition of one refresh operation's
// latency for a particular restore target.
type Breakdown struct {
	TargetFrac float64 // restore target as a fraction of full charge

	TauEq    float64 // equalization delay (s)
	TauPre   float64 // pre-sensing delay to 95% signal development (s)
	TauPost  float64 // post-sensing delay to the restore target (s)
	TauFixed float64 // aggregate fixed delays (s)
	TRFC     float64 // total (s)

	TauEqCycles    int
	TauPreCycles   int
	TauPostCycles  int
	TauFixedCycles int
	TRFCCycles     int

	Dvbl  float64 // differential input to the sense amp (V)
	Alpha float64 // normalized restore coefficient of the post window
}

// TRFC computes the model-derived refresh latency breakdown needed to
// restore a cell that has decayed to vPreFrac of Vdd up to targetFrac of
// Vdd. The paper's Figure 1b scenario corresponds to vPreFrac around the
// sensing threshold and targetFrac of 0.95 (partial) or ~1.0 (full).
func (m *Model) TRFC(vPreFrac, targetFrac float64) (Breakdown, error) {
	if vPreFrac < 0 || vPreFrac > 1 {
		return Breakdown{}, fmt.Errorf("analytic: vPreFrac %v outside [0,1]", vPreFrac)
	}
	if targetFrac <= 0 || targetFrac >= 1 {
		return Breakdown{}, fmt.Errorf("analytic: targetFrac %v outside (0,1)", targetFrac)
	}
	dvbl, err := m.DefaultDvbl()
	if err != nil {
		return Breakdown{}, err
	}
	// The differential the amp actually sees scales with the decayed cell
	// level relative to the equalized bitline.
	veq := m.P.Veq()
	cellV := vPreFrac * m.P.Vdd
	scale := math.Abs(cellV-veq) / (m.P.Vdd - veq)
	dv := dvbl * math.Max(scale, 1e-3)

	b := Breakdown{TargetFrac: targetFrac, Dvbl: dv}
	b.TauEq = m.TauEq(EqTolDefault)
	b.TauPre = m.TauPre(PreSenseTargetDefault)
	// Post-sensing starts from the charge-shared cell level ~ Veq + dv.
	vStart := veq + dv
	if cellV < veq {
		vStart = veq - dv
	}
	// Restoring a "1": drive toward Vdd from the shared level. (A "0" is
	// symmetric; the model tracks the "1" case, the slower direction for a
	// positive-logic cell.)
	b.TauPost = m.TauPost(vStart, targetFrac, dv)
	b.TauFixed = float64(m.P.TFixedCycles) * m.P.TCK
	b.TRFC = b.TauEq + b.TauPre + b.TauPost + b.TauFixed

	b.TauEqCycles = m.P.Cycles(b.TauEq)
	b.TauPreCycles = m.P.Cycles(b.TauPre)
	b.TauPostCycles = m.P.Cycles(b.TauPost)
	b.TauFixedCycles = m.P.TFixedCycles
	b.TRFCCycles = b.TauEqCycles + b.TauPreCycles + b.TauPostCycles + b.TauFixedCycles
	b.Alpha = m.RestoreAlpha(b.TauPost, dv)
	return b, nil
}

// RestorePoint is one sample of the Figure 1a restore trajectory.
type RestorePoint struct {
	FracTRFC   float64 // fraction of the full refresh cycle time elapsed
	FracCharge float64 // fraction of full charge on the cell capacitor
}

// RestoreCurve reproduces the paper's Figure 1a: the fraction of full charge
// on the cell capacitor as a function of the fraction of tRFC elapsed, for a
// full refresh of a cell that had decayed to startFrac of full charge
// (Figure 1a starts near the 50% sensing threshold). The timeline follows
// the Section 3.1 budget order (tau_fixed, tau_eq, tau_pre, then
// post-sensing): charge only moves during Phase 4 of post-sensing, which is
// what makes the final few percent so expensive.
func (m *Model) RestoreCurve(startFrac float64, n int) ([]RestorePoint, error) {
	if n < 2 {
		return nil, fmt.Errorf("analytic: RestoreCurve needs n >= 2, got %d", n)
	}
	dvbl, err := m.DefaultDvbl()
	if err != nil {
		return nil, err
	}
	tck := m.P.TCK
	total := float64(TauFullCycles) * tck
	preamble := float64(m.P.TFixedCycles+TauEqCycles+TauPreCycles) * tck
	t123 := m.SensePhaseDelay(dvbl)
	tau := m.RestoreTau()

	pts := make([]RestorePoint, n)
	for i := 0; i < n; i++ {
		t := total * float64(i) / float64(n-1)
		var v float64
		switch {
		case t <= preamble+t123:
			v = startFrac
		default:
			drive := t - preamble - t123
			v = startFrac + (1-startFrac)*(1-math.Exp(-drive/tau))
		}
		pts[i] = RestorePoint{FracTRFC: t / total, FracCharge: clamp01(v)}
	}
	return pts, nil
}

// TimeToChargeFraction returns the fraction of tRFC at which the restore
// trajectory of RestoreCurve first reaches the given charge fraction, or 1
// if it never does within tRFC. This is the scalar behind the paper's
// Observation 1 ("~60% of tRFC is spent charging the cell to 95% of its
// capacity").
func (m *Model) TimeToChargeFraction(startFrac, chargeFrac float64) (float64, error) {
	pts, err := m.RestoreCurve(startFrac, 2001)
	if err != nil {
		return 0, err
	}
	for _, p := range pts {
		if p.FracCharge >= chargeFrac {
			return p.FracTRFC, nil
		}
	}
	return 1, nil
}
