package netlists

import (
	"testing"

	"vrldram/internal/circuit/spice"
	"vrldram/internal/device"
	"vrldram/internal/linalg"
)

// TestBandedMatchesDenseOnShippedNetlists equivalence-gates the banded
// solver path against the dense reference on every netlist this package
// ships: the same circuit is simulated once per backend at tight Newton
// tolerance with the residual check enabled, and every probe waveform must
// agree to 1e-9 V across the full horizon.
func TestBandedMatchesDenseOnShippedNetlists(t *testing.T) {
	p := device.Default90nm()
	csCkt := func() *spice.Circuit {
		ckt, err := ChargeSharing(p, ChargeSharingOpts{Geom: device.BankGeometry{Rows: 512, Cols: 8}, Pattern: "alt"})
		if err != nil {
			t.Fatal(err)
		}
		return ckt
	}
	cases := []struct {
		name   string
		ckt    *spice.Circuit
		opts   spice.TransientOpts
		probes []string
	}{
		{
			name:   "Equalization",
			ckt:    Equalization(p),
			opts:   spice.TransientOpts{TStop: 4e-9, H: 2e-12},
			probes: []string{"bl", "blb"},
		},
		{
			name: "ChargeSharing",
			ckt:  csCkt(),
			opts: spice.TransientOpts{TStop: 60e-9, H: 30e-12},
			probes: []string{
				BitlineName(0), BitlineName(7),
				SenseNodeName(0), SenseNodeName(7),
				CellName(0), CellName(7),
			},
		},
		{
			name:   "SenseAmp",
			ckt:    SenseAmp(p, 0.1, p.Vdd),
			opts:   spice.TransientOpts{TStop: 20e-9, H: 5e-12},
			probes: []string{"ox", "oy", "cell"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Probes = tc.probes
			opts.AbsTol = 1e-9
			opts.CheckResidual = true

			opts.Backend = spice.BackendDense
			dense, err := tc.ckt.Transient(opts)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			opts.Backend = spice.BackendBanded
			banded, err := tc.ckt.Transient(opts)
			if err != nil {
				t.Fatalf("banded: %v", err)
			}
			if len(dense.Times) != len(banded.Times) {
				t.Fatalf("sample counts differ: %d vs %d", len(dense.Times), len(banded.Times))
			}
			for _, probe := range tc.probes {
				d, err := linalg.MaxAbsDiff(dense.Probes[probe], banded.Probes[probe])
				if err != nil {
					t.Fatal(err)
				}
				if d > 1e-9 {
					t.Errorf("probe %q: banded deviates from dense by %.3g V", probe, d)
				}
			}
		})
	}
}
