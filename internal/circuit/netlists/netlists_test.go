package netlists

import (
	"math"
	"testing"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/circuit/spice"
	"vrldram/internal/device"
)

func TestEqualizationSettles(t *testing.T) {
	p := device.Default90nm()
	ckt := Equalization(p)
	res, err := ckt.Transient(spice.TransientOpts{TStop: 4e-9, H: 2e-12, Probes: []string{"bl", "blb"}})
	if err != nil {
		t.Fatal(err)
	}
	veq := p.Veq()
	bl, _ := res.Final("bl")
	blb, _ := res.Final("blb")
	if math.Abs(bl-veq) > 5e-3 || math.Abs(blb-veq) > 5e-3 {
		t.Fatalf("bitlines settle to %v / %v, want %v", bl, blb, veq)
	}
	// The pair starts at full swing.
	b0, _ := res.At("bl", 0)
	bb0, _ := res.At("blb", 0)
	if b0 != p.Vdd || bb0 != p.Vss {
		t.Fatalf("initial conditions wrong: %v / %v", b0, bb0)
	}
}

func TestEqualizationMatchesAnalyticModel(t *testing.T) {
	// The two-phase analytical waveform should track the transient result
	// within tens of millivolts over the first nanosecond.
	p := device.Default90nm()
	am := analytic.MustNew(p, device.PaperBank)
	ckt := Equalization(p)
	res, err := ckt.Transient(spice.TransientOpts{TStop: 1e-9, H: 1e-12, Probes: []string{"bl"}})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i <= 20; i++ {
		tt := 1e-9 * float64(i) / 20
		sim, err := res.At("bl", tt)
		if err != nil {
			t.Fatal(err)
		}
		mod := am.EqBitlineVoltage(tt, true)
		if d := math.Abs(sim - mod); d > worst {
			worst = d
		}
	}
	if worst > 0.09 {
		t.Fatalf("model deviates %v V from transient simulation; want < 90 mV", worst)
	}
}

func TestChargeSharingAsymptote(t *testing.T) {
	// The developed bitline signal approaches the coupled analytic asymptote.
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 2048, Cols: 8}
	ckt, err := ChargeSharing(p, ChargeSharingOpts{Geom: geom, Pattern: "ones"})
	if err != nil {
		t.Fatal(err)
	}
	probes := []string{BitlineName(3), SenseNodeName(3)}
	res, err := ckt.Transient(spice.TransientOpts{TStop: 60e-9, H: 30e-12, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Final(BitlineName(3))
	dv := final - p.Veq()

	am := analytic.MustNew(p, geom)
	lself, err := am.PatternLself("ones", geom.Cols)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := am.VsenseVector(lself)
	if err != nil {
		t.Fatal(err)
	}
	want := vs[3]
	// The netlist adds global wire capacitance the model ignores, so the
	// developed signal is somewhat smaller; require agreement within 30%.
	if dv <= 0 {
		t.Fatalf("no signal developed: %v", dv)
	}
	if math.Abs(dv-want)/want > 0.30 {
		t.Fatalf("developed signal %v, model asymptote %v", dv, want)
	}
}

func TestChargeSharingPatternSigns(t *testing.T) {
	p := device.Default90nm()
	geom := device.BankGeometry{Rows: 2048, Cols: 4}
	ckt, err := ChargeSharing(p, ChargeSharingOpts{Geom: geom, Pattern: "alt"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckt.Transient(spice.TransientOpts{TStop: 60e-9, H: 30e-12,
		Probes: []string{BitlineName(0), BitlineName(1)}})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := res.Final(BitlineName(0))
	v1, _ := res.Final(BitlineName(1))
	if v0 <= p.Veq() {
		t.Fatalf("bitline 0 (stored 1) should rise above Veq: %v", v0)
	}
	if v1 >= p.Veq() {
		t.Fatalf("bitline 1 (stored 0) should fall below Veq: %v", v1)
	}
}

func TestChargeSharingRejectsBadInputs(t *testing.T) {
	p := device.Default90nm()
	if _, err := ChargeSharing(p, ChargeSharingOpts{Geom: device.BankGeometry{}, Pattern: "ones"}); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
	if _, err := ChargeSharing(p, ChargeSharingOpts{Geom: device.PaperBank, Pattern: "nope"}); err == nil {
		t.Fatal("bad pattern must be rejected")
	}
}

func TestMeasurePreSenseGrowsWithRows(t *testing.T) {
	p := device.Default90nm()
	small, err := MeasurePreSense(p, device.BankGeometry{Rows: 2048, Cols: 16}, "ones", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeasurePreSense(p, device.BankGeometry{Rows: 16384, Cols: 16}, "ones", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if large.T95 <= small.T95 {
		t.Fatalf("pre-sensing must grow with rows: %v vs %v", small.T95, large.T95)
	}
	if small.Cycles <= 0 || large.Cycles <= 0 {
		t.Fatal("cycle counts must be positive")
	}
	if small.WallClock <= 0 {
		t.Fatal("wall clock must be measured")
	}
}

func TestMeasurePreSenseMatchesModel(t *testing.T) {
	// The paper's Table 1 claim: the analytical model is within 0-12.5% of
	// transient simulation. Allow 15% here.
	p := device.Default90nm()
	for _, g := range []device.BankGeometry{{Rows: 2048, Cols: 32}, {Rows: 8192, Cols: 32}} {
		meas, err := MeasurePreSense(p, g, "ones", 0.95)
		if err != nil {
			t.Fatal(err)
		}
		am := analytic.MustNew(p, g)
		model := am.TauPre(analytic.PreSenseTargetDefault)
		if diff := math.Abs(model-meas.T95) / meas.T95; diff > 0.15 {
			t.Errorf("%s: model %v vs transient %v (%.0f%% apart)", g, model, meas.T95, diff*100)
		}
	}
}

func TestSenseAmpRegenerates(t *testing.T) {
	p := device.Default90nm()
	ckt := SenseAmp(p, 0.14, 0.55*p.Vdd)
	res, err := ckt.Transient(spice.TransientOpts{TStop: 20e-9, H: 5e-12,
		Probes: []string{"ox", "oy", "cell"}})
	if err != nil {
		t.Fatal(err)
	}
	ox, _ := res.Final("ox")
	oy, _ := res.Final("oy")
	cell, _ := res.Final("cell")
	if math.Abs(ox-p.Vdd) > 0.02 {
		t.Fatalf("high output = %v, want Vdd", ox)
	}
	if math.Abs(oy-p.Vss) > 0.02 {
		t.Fatalf("low output = %v, want Vss", oy)
	}
	if p.Vdd-cell > 0.02 {
		t.Fatalf("cell restored to %v, want ~Vdd", cell)
	}
}

func TestSenseAmpPolarity(t *testing.T) {
	// Flip the differential: the outputs must latch the other way.
	p := device.Default90nm()
	ckt := SenseAmp(p, -0.14, 0.45*p.Vdd)
	res, err := ckt.Transient(spice.TransientOpts{TStop: 20e-9, H: 5e-12, Probes: []string{"ox", "oy"}})
	if err != nil {
		t.Fatal(err)
	}
	ox, _ := res.Final("ox")
	oy, _ := res.Final("oy")
	if ox > 0.1 || oy < p.Vdd-0.1 {
		t.Fatalf("latch polarity wrong: ox=%v oy=%v", ox, oy)
	}
}

func TestSenseAmpRestoreShape(t *testing.T) {
	// Observation 1 in the transient domain: restoring the cell's last 5% of
	// charge takes longer than the first 45%.
	p := device.Default90nm()
	ckt := SenseAmp(p, 0.14, 0.5*p.Vdd)
	res, err := ckt.Transient(spice.TransientOpts{TStop: 30e-9, H: 5e-12, Probes: []string{"cell"}})
	if err != nil {
		t.Fatal(err)
	}
	t95, err := res.FirstCrossing("cell", 0.95*p.Vdd, true)
	if err != nil {
		t.Fatal(err)
	}
	t999, err := res.FirstCrossing("cell", 0.999*p.Vdd, true)
	if err != nil {
		t.Fatal(err)
	}
	if t999 < 1.4*t95 {
		t.Fatalf("last 5%% should be slow: t95=%v t99.9=%v", t95, t999)
	}
}
