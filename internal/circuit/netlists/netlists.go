// Package netlists builds the reference circuits of the paper's Figure 2
// from a device parameter set, for simulation with the mini-SPICE engine:
//
//   - the bitline equalization circuit (Fig. 2a), used by Figure 5;
//   - the charge-sharing cell array with bitline-to-bitline and
//     bitline-to-wordline parasitic coupling (Fig. 2b/2c), used by Table 1;
//   - the latch-based voltage sense amplifier with cell restore path
//     (Fig. 2d), used to validate the post-sensing model behind Figure 1a.
package netlists

import (
	"fmt"
	"time"

	"vrldram/internal/circuit/spice"
	"vrldram/internal/device"
)

// mosLambda is the channel-length modulation used for all transistors; the
// analytical model neglects it, so keeping it small maintains comparability.
const mosLambda = 0.02

// Equalization builds the Fig. 2a circuit: a bitline pair at full swing
// (bl at Vdd, blb at Vss) driven toward Veq through the M2/M3 NMOS devices
// when the EQ signal asserts at t=0. Probe nodes: "bl", "blb".
func Equalization(p device.Params) *spice.Circuit {
	ckt := spice.New()
	veq := p.Veq()

	// Equalization voltage rail.
	ckt.V("veqn", spice.DC(veq))

	nmos := spice.MOSParams{Type: spice.NMOS, Beta: p.BetaN, Vt: p.Vtn, Lambda: mosLambda}
	eqGate := spice.Ramp(0, p.Vg, 0, 20e-12)

	// Bitline Bi: Cbl precharged to Vdd, reached through Rbl, equalized by M2.
	ckt.C("bl", "0", p.CblSeg())
	ckt.R("bl", "blx", p.Rbl)
	ckt.MOSDriven("blx", "veqn", nmos, eqGate)
	ckt.SetIC("bl", p.Vdd)
	ckt.SetIC("blx", p.Vdd)

	// Complementary bitline: Cbl at Vss, equalized by M3.
	ckt.C("blb", "0", p.CblSeg())
	ckt.R("blb", "blbx", p.Rbl)
	ckt.MOSDriven("blbx", "veqn", nmos, eqGate)
	ckt.SetIC("blb", p.Vss)
	ckt.SetIC("blbx", p.Vss)

	ckt.SetIC("veqn", veq)
	return ckt
}

// ChargeSharingOpts configures the Fig. 2b/2c array netlist.
type ChargeSharingOpts struct {
	Geom    device.BankGeometry
	Pattern string // "zeros", "ones", "alt", "random" (cell data)
}

// BitlineName returns the probe name of bitline i.
func BitlineName(i int) string { return fmt.Sprintf("bl%d", i) }

// CellName returns the probe name of the cell on bitline i.
func CellName(i int) string { return fmt.Sprintf("cell%d", i) }

// SenseNodeName returns the probe name of the bank-edge sensing point of
// bitline i (the far end of the global routing ladder).
func SenseNodeName(i int) string { return fmt.Sprintf("sa%d", i) }

// CsaNode is the sense-point junction capacitance.
const CsaNode = 2e-15

// ChargeSharing builds the Fig. 2b/2c array: one cell per bitline sharing
// charge with its (equalized) bitline after the wordline asserts, including
// Cbb neighbor coupling and Cbw coupling to the ramping wordline. The
// wordline is a distributed RC line: the access device of column i turns on
// after that column's Elmore delay, which is how column count enters the
// pre-sensing latency (Table 1).
//
// The netlist is linear (access devices are resistive switches at their
// charge-sharing effective resistance), so banks of any size simulate
// through the banded solver.
func ChargeSharing(p device.Params, opts ChargeSharingOpts) (*spice.Circuit, error) {
	if err := opts.Geom.Validate(); err != nil {
		return nil, err
	}
	n := opts.Geom.Cols
	bits, err := patternBits(opts.Pattern, n)
	if err != nil {
		return nil, err
	}
	ckt := spice.New()
	veq := p.Veq()
	rGlobal := p.RGlobal(opts.Geom.Rows)
	cGlobal := p.CGlobal(opts.Geom.Rows)

	// Elmore delay of the wordline at column k (uniform distributed line):
	// tau(k) = Rwl*Cwl*(k*n - k^2/2) per unit; full-line delay matches
	// device.WordlineDelay.
	elmore := func(k int) float64 {
		kk := float64(k + 1)
		nn := float64(n)
		return p.RwlPerCol * p.CwlPerCol * (kk*nn - kk*kk/2)
	}
	wlRise := 2 * elmore(n-1)
	if wlRise <= 0 {
		wlRise = 10e-12
	}

	for i := 0; i < n; i++ {
		cell := CellName(i)
		mid := fmt.Sprintf("mid%d", i)
		bl := BitlineName(i)

		ckt.C(cell, "0", p.Cs)
		v0 := p.Vss
		if bits[i] {
			v0 = p.Vdd
		}
		ckt.SetIC(cell, v0)
		ckt.SetIC(mid, v0)

		// Access device: closes when the wordline reaches this column;
		// ohmic for small cell-bitline differences, current-limited at
		// AccessIdsat for large ones (the regime a freshly opened row sits
		// in while its full-swing cells dump charge onto half-Vdd bitlines).
		ckt.SatSwitch(cell, mid, p.RonAccess, p.AccessIdsat, elmore(i))
		ckt.R(mid, bl, p.Rbl)

		ckt.C(bl, "0", p.CblSeg())
		ckt.SetIC(bl, veq)

		// Bitline-to-wordline parasitic against the ramping wordline driver.
		wl := spice.Ramp(0, p.Vg, 0, wlRise)
		ckt.CDriven(bl, p.Cbw, wl)

		// Global routing to the bank-edge sensing point: a two-segment RC
		// ladder. The analytical model lumps this as pure resistance; the
		// wire capacitance modeled here is why transient simulation reports
		// longer pre-sensing than the model for large banks (Table 1).
		gmid := fmt.Sprintf("gmid%d", i)
		sa := SenseNodeName(i)
		ckt.R(bl, gmid, rGlobal/2)
		ckt.C(gmid, "0", cGlobal)
		ckt.R(gmid, sa, rGlobal/2)
		ckt.C(sa, "0", CsaNode)
		ckt.SetIC(gmid, veq)
		ckt.SetIC(sa, veq)
	}
	// Neighbor coupling.
	for i := 0; i+1 < n; i++ {
		ckt.C(BitlineName(i), BitlineName(i+1), p.Cbb)
	}
	return ckt, nil
}

func patternBits(pattern string, n int) ([]bool, error) {
	out := make([]bool, n)
	switch pattern {
	case "zeros":
	case "ones":
		for i := range out {
			out[i] = true
		}
	case "alt":
		for i := range out {
			out[i] = i%2 == 0
		}
	case "random":
		x := uint64(0x9E3779B97F4A7C15)
		for i := range out {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			out[i] = x&1 == 1
		}
	default:
		return nil, fmt.Errorf("netlists: unknown data pattern %q", pattern)
	}
	return out, nil
}

// PreSenseMeasurement is the Table 1 measurement on a charge-sharing run.
type PreSenseMeasurement struct {
	Geom      device.BankGeometry
	T95       float64       // time for the slowest bitline to develop 95% of its final signal (s)
	Cycles    int           // T95 quantized to DRAM cycles
	WallClock time.Duration // simulation wall time
}

// MeasurePreSense simulates the charge-sharing array and measures the time
// for the slowest bitline's developed signal to reach target (e.g. 0.95) of
// its final value - the Table 1 "pre-sensing time" under transient
// simulation. It is a one-shot wrapper over PreSenseMeter; repeated
// measurements of the same configuration should hold a meter, which reuses
// the netlist and all transient-solver state.
func MeasurePreSense(p device.Params, geom device.BankGeometry, pattern string, target float64) (PreSenseMeasurement, error) {
	start := time.Now()
	m, err := NewPreSenseMeter(p, geom, pattern, target)
	if err != nil {
		return PreSenseMeasurement{}, err
	}
	meas, err := m.Measure()
	if err != nil {
		return PreSenseMeasurement{}, err
	}
	meas.WallClock = time.Since(start) // include netlist construction, as before
	return meas, nil
}

// PreSenseMeter is the steady-state form of MeasurePreSense: it builds the
// charge-sharing netlist and its persistent transient solver once, and each
// Measure call reruns the analysis on the reused solver state, so repeated
// measurements allocate (almost) nothing.
type PreSenseMeter struct {
	p      device.Params
	geom   device.BankGeometry
	target float64
	solver *spice.Solver
	opts   spice.TransientOpts
}

// NewPreSenseMeter prepares a reusable pre-sensing measurement for one
// (parameter set, geometry, pattern, target) configuration.
func NewPreSenseMeter(p device.Params, geom device.BankGeometry, pattern string, target float64) (*PreSenseMeter, error) {
	ckt, err := ChargeSharing(p, ChargeSharingOpts{Geom: geom, Pattern: pattern})
	if err != nil {
		return nil, err
	}
	probes := make([]string, geom.Cols)
	for i := range probes {
		probes[i] = SenseNodeName(i)
	}
	// Simulation horizon: several slow time constants beyond the analytic
	// expectation; generous so the asymptote estimate is clean.
	tstop := 12 * (p.Rpre(geom.Rows)*p.CblSeg() + p.WordlineDelay(geom.Cols))
	if tstop < 10e-9 {
		tstop = 10e-9
	}
	return &PreSenseMeter{
		p:      p,
		geom:   geom,
		target: target,
		solver: spice.NewSolver(ckt),
		opts:   spice.TransientOpts{TStop: tstop, H: tstop / 4000, Probes: probes},
	}, nil
}

// Measure runs the transient analysis and extracts the pre-sensing time.
func (m *PreSenseMeter) Measure() (PreSenseMeasurement, error) {
	start := time.Now()
	res, err := m.solver.Transient(m.opts)
	if err != nil {
		return PreSenseMeasurement{}, err
	}
	veq := m.p.Veq()
	worst := 0.0
	for _, probe := range m.opts.Probes {
		final, err := res.Final(probe)
		if err != nil {
			return PreSenseMeasurement{}, err
		}
		swing := final - veq
		if swing == 0 {
			continue
		}
		level := veq + m.target*swing
		t, err := res.FirstCrossing(probe, level, swing > 0)
		if err != nil {
			return PreSenseMeasurement{}, err
		}
		if t > worst {
			worst = t
		}
	}
	return PreSenseMeasurement{
		Geom:      m.geom,
		T95:       worst,
		Cycles:    m.p.Cycles(worst),
		WallClock: time.Since(start),
	}, nil
}

// SenseAmp builds the Fig. 2d latch-based sense amplifier: cross-coupled
// inverters (M9/M11 and M10/M12) with a tail enable device (M13), the
// bitline pair as the output nodes "ox"/"oy" precharged to Veq +/- dv/2, and
// a DRAM cell hanging off "ox" through its access resistance so the restore
// trajectory (paper Eq. 12, Figure 1a) can be observed on probe "cell".
func SenseAmp(p device.Params, dv float64, cellV float64) *spice.Circuit {
	ckt := spice.New()
	veq := p.Veq()

	ckt.V("vdd", spice.DC(p.Vdd))
	ckt.SetIC("vdd", p.Vdd)

	nmos := spice.MOSParams{Type: spice.NMOS, Beta: p.BetaN, Vt: p.Vtn, Lambda: mosLambda}
	pmos := spice.MOSParams{Type: spice.PMOS, Beta: p.BetaP, Vt: p.Vtp, Lambda: mosLambda}

	// Output/bitline nodes with the developed differential.
	ckt.C("ox", "0", p.CblSeg())
	ckt.C("oy", "0", p.CblSeg())
	ckt.SetIC("ox", veq+dv/2)
	ckt.SetIC("oy", veq-dv/2)

	// Cross-coupled pair.
	ckt.MOS("ox", "oy", "tail", nmos) // M9
	ckt.MOS("oy", "ox", "tail", nmos) // M10
	ckt.MOS("ox", "oy", "vdd", pmos)  // M11
	ckt.MOS("oy", "ox", "vdd", pmos)  // M12

	// Tail enable: SA_EN ramps at t=0.
	saEn := spice.Ramp(0, p.Vdd, 0, 20e-12)
	ckt.MOSDriven("tail", "0", spice.MOSParams{Type: spice.NMOS, Beta: 4 * p.BetaN, Vt: p.Vtn, Lambda: mosLambda}, saEn)
	ckt.SetIC("tail", 0)

	// The refreshed cell restores through its access path off the high side.
	ckt.C("cell", "0", p.Cs)
	ckt.SetIC("cell", cellV)
	ckt.R("cell", "ox", p.RonRestore)

	return ckt
}
