package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomPattern draws m distinct in-band off-diagonal positions.
func randomPattern(rng *rand.Rand, n, k, m int) [][2]int {
	seen := map[[2]int]bool{}
	var pairs [][2]int
	for len(pairs) < m {
		i := rng.Intn(n)
		lo, hi := i-k, i+k
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		j := lo + rng.Intn(hi-lo+1)
		p := [2]int{i, j}
		if i == j || seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	return pairs
}

// assemble builds a diagonally dominant banded matrix with random values on
// the declared pattern (mirrored), leaving a random subset of declared
// positions numerically zero to exercise the superset contract.
func assemble(rng *rand.Rand, n, k int, pairs [][2]int) *Banded {
	m := NewBanded(n, k)
	for _, p := range pairs {
		v := rng.NormFloat64()
		if rng.Intn(4) == 0 {
			v = 0 // declared but unstamped this "iteration"
		}
		m.AddAt(p[0], p[1], v)
		m.AddAt(p[1], p[0], rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := i - k; j <= i+k; j++ {
			if j >= 0 && j < n && j != i {
				rowSum += math.Abs(m.At(i, j))
			}
		}
		m.AddAt(i, i, rowSum+1+rng.Float64())
	}
	return m
}

func TestBandedSymbolicMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, k, nnz int }{
		{8, 2, 6}, {40, 5, 60}, {160, 5, 200}, {30, 1, 20}, {25, 7, 70},
	} {
		for trial := 0; trial < 5; trial++ {
			pairs := randomPattern(rng, tc.n, tc.k, tc.nnz)
			sym, err := NewBandedSymbolic(tc.n, tc.k, pairs)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
			}
			m := assemble(rng, tc.n, tc.k, pairs)
			d := NewDense(tc.n)
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.n; j++ {
					if v := m.At(i, j); v != 0 {
						d.AddAt(i, j, v)
					}
				}
			}
			rhs := make([]float64, tc.n)
			for i := range rhs {
				rhs[i] = rng.NormFloat64()
			}
			got := make([]float64, tc.n)
			if err := sym.FactorSolve(m, 0, got, rhs); err != nil {
				t.Fatalf("n=%d k=%d trial=%d: FactorSolve: %v", tc.n, tc.k, trial, err)
			}
			var lu LU
			if err := lu.Refactor(d); err != nil {
				t.Fatalf("dense refactor: %v", err)
			}
			want := make([]float64, tc.n)
			if err := lu.SolveInto(want, rhs); err != nil {
				t.Fatalf("dense solve: %v", err)
			}
			for i := range got {
				if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d k=%d trial=%d: x[%d] = %g, dense %g (diff %g)",
						tc.n, tc.k, trial, i, got[i], want[i], diff)
				}
			}
		}
	}
}

// TestBandedSymbolicFillIn pins the case symbolic analysis exists for: an
// elimination that creates a nonzero where no device ever stamps. With
// entries at (1,0) and (0,2), eliminating column 0 fills (1,2); dropping that
// position from the index lists would silently corrupt the solve.
func TestBandedSymbolicFillIn(t *testing.T) {
	pairs := [][2]int{{0, 1}, {0, 2}}
	sym, err := NewBandedSymbolic(3, 2, pairs)
	if err != nil {
		t.Fatal(err)
	}
	m := NewBanded(3, 2)
	vals := [][3]float64{{4, 1, 2}, {1, 5, 0}, {2, 0, 6}}
	d := NewDense(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if vals[i][j] != 0 {
				m.AddAt(i, j, vals[i][j])
				d.AddAt(i, j, vals[i][j])
			}
		}
	}
	rhs := []float64{1, 2, 3}
	got := make([]float64, 3)
	if err := sym.FactorSolve(m, 0, got, rhs); err != nil {
		t.Fatal(err)
	}
	var lu LU
	if err := lu.Refactor(d); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 3)
	if err := lu.SolveInto(want, rhs); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Eliminating column 0 fills (1,2) in U and (2,1) in L (the latter then a
	// multiplier for column 1), on top of the four declared off-diagonals.
	if sub, upper := sym.Nonzeros(); sub != 3 || upper != 3 {
		t.Fatalf("Nonzeros() = (%d, %d), want (3, 3): fill positions missing", sub, upper)
	}
}

func TestBandedSymbolicErrors(t *testing.T) {
	if _, err := NewBandedSymbolic(4, 1, [][2]int{{0, 3}}); err == nil {
		t.Fatal("out-of-band pattern position accepted")
	}
	if _, err := NewBandedSymbolic(4, 1, [][2]int{{0, 4}}); err == nil {
		t.Fatal("out-of-range pattern position accepted")
	}
	sym, err := NewBandedSymbolic(4, 1, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	if err := sym.FactorSolve(NewBanded(5, 1), 0, x, x); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := sym.FactorSolve(NewBanded(4, 1), 0, x[:2], x[:2]); err == nil {
		t.Fatal("rhs size mismatch accepted")
	}
	if err := sym.FactorSolve(NewBanded(4, 1), 0, x, x); err != ErrSingular {
		t.Fatalf("zero matrix: got %v, want ErrSingular", err)
	}
}

func TestBandedSymbolicSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 160, 5
	pairs := randomPattern(rng, n, k, 200)
	sym, err := NewBandedSymbolic(n, k, pairs)
	if err != nil {
		t.Fatal(err)
	}
	src := assemble(rng, n, k, pairs)
	work := NewBanded(n, k)
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	if allocs := testing.AllocsPerRun(20, func() {
		work.CopyFrom(src)
		if err := sym.FactorSolve(work, 0, x, rhs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state FactorSolve allocates %.0f times per solve", allocs)
	}
}
