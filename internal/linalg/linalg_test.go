package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSolveTridiagonalKnown(t *testing.T) {
	// 2x2 system: [2 1; 1 2] x = [3; 3] -> x = [1; 1].
	x, err := SolveTridiagonal([]float64{0, 1}, []float64{2, 2}, []float64{1, 0}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEqual(v, 1, 1e-12) {
			t.Errorf("x[%d] = %v, want 1", i, v)
		}
	}
}

func TestSolveTridiagonalSizeMismatch(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{0}, []float64{1, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestSolveTridiagonalEmpty(t *testing.T) {
	x, err := SolveTridiagonal(nil, nil, nil, nil)
	if err != nil || x != nil {
		t.Fatalf("empty system: got %v, %v", x, err)
	}
}

func TestSolveTridiagonalSingular(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: the tridiagonal solver agrees with the dense LU solver on random
// diagonally dominant tridiagonal systems.
func TestTridiagonalMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		lower := make([]float64, n)
		diag := make([]float64, n)
		upper := make([]float64, n)
		rhs := make([]float64, n)
		m := NewDense(n)
		for i := 0; i < n; i++ {
			if i > 0 {
				lower[i] = rng.Float64() - 0.5
				m.Set(i, i-1, lower[i])
			}
			if i < n-1 {
				upper[i] = rng.Float64() - 0.5
				m.Set(i, i+1, upper[i])
			}
			diag[i] = 2 + rng.Float64() // dominant
			m.Set(i, i, diag[i])
			rhs[i] = rng.Float64()*2 - 1
		}
		x1, err := SolveTridiagonal(lower, diag, upper, rhs)
		if err != nil {
			return false
		}
		x2, err := SolveDense(m, rhs)
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(x1, x2)
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseLUKnown(t *testing.T) {
	m := NewDense(3)
	vals := [][]float64{{4, 2, 1}, {2, 5, 2}, {1, 2, 6}}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	want := []float64{1, -2, 3}
	b, err := m.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDenseLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a pivot swap.
	m := NewDense(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := SolveDense(m, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("got %v, want [7 3]", x)
	}
}

func TestDenseLUSingular(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := SolveDense(m, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	if _, err := SolveDense(NewDense(2), []float64{1, 2}); err != ErrSingular {
		t.Fatalf("zero matrix: want ErrSingular, got %v", err)
	}
}

func TestLUReusableFactorization(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 4)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := f.Solve([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	x2, err := f.Solve([]float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x1[0], 1, 1e-12) || !almostEqual(x2[0], 2, 1e-12) {
		t.Fatalf("got %v then %v", x1, x2)
	}
}

func TestLUSolveSizeMismatch(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestDenseHelpers(t *testing.T) {
	m := NewDense(2)
	m.AddAt(0, 1, 3)
	m.AddAt(0, 1, 2)
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	c := m.Clone()
	m.Zero()
	if c.At(0, 1) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Clone/Zero interaction broken")
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("want MulVec size error")
	}
	if err := m.MulVecInto(make([]float64, 2), []float64{1}); err == nil {
		t.Fatal("want MulVecInto size error")
	}
	if err := m.CopyFrom(NewDense(3)); err == nil {
		t.Fatal("want CopyFrom size error")
	}
}

// TestInPlaceVariantsMatchAllocating pins the *Into variants against their
// allocating counterparts on random systems, and asserts they are
// allocation-free in steady state.
func TestInPlaceVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 12
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.Float64()-0.5)
		}
		m.AddAt(i, i, float64(n)) // dominant
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}

	y1, err := m.MulVec(b)
	if err != nil {
		t.Fatal(err)
	}
	y2 := make([]float64, n)
	if err := m.MulVecInto(y2, b); err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(y1, y2); d != 0 {
		t.Fatalf("MulVecInto differs from MulVec by %v", d)
	}

	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	var ws LU
	if err := ws.Refactor(m); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	if err := ws.SolveInto(x2, b); err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(x1, x2); d != 0 {
		t.Fatalf("SolveInto differs from Solve by %v", d)
	}

	// Steady state: refactor + solve + mulvec in reused workspaces must not
	// allocate.
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.Refactor(m); err != nil {
			t.Fatal(err)
		}
		if err := ws.SolveInto(x2, b); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVecInto(y2, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense refactor/solve allocates %v per run, want 0", allocs)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	d, err := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 2})
	if err != nil || d != 0.5 {
		t.Fatalf("got %v, %v", d, err)
	}
	if _, err := MaxAbsDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestBandedBasics(t *testing.T) {
	m := NewBanded(4, 1)
	if m.InBand(0, 2) {
		t.Fatal("(0,2) should be out of band for k=1")
	}
	m.AddAt(1, 2, 3)
	if m.At(1, 2) != 3 || m.At(0, 2) != 0 {
		t.Fatal("AddAt/At broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-band AddAt should panic")
		}
	}()
	m.AddAt(0, 3, 1)
}

func TestBandedClampsBandwidth(t *testing.T) {
	m := NewBanded(3, 10)
	if m.K != 2 {
		t.Fatalf("K = %d, want clamp to 2", m.K)
	}
	m = NewBanded(3, -1)
	if m.K != 0 {
		t.Fatalf("K = %d, want clamp to 0", m.K)
	}
}

// Property: the banded no-pivot solver agrees with the dense solver on
// random diagonally dominant banded systems.
func TestBandedMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		k := 1 + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		bm := NewBanded(n, k)
		dm := NewDense(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := i - k; j <= i+k; j++ {
				if j < 0 || j >= n || j == i {
					continue
				}
				v := rng.Float64() - 0.5
				bm.AddAt(i, j, v)
				dm.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			d := rowSum + 1 + rng.Float64()
			bm.AddAt(i, i, d)
			dm.Set(i, i, d)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.Float64()*2 - 1
		}
		xd, err := SolveDense(dm, rhs)
		if err != nil {
			return false
		}
		xb, err := SolveBandedNoPivot(bm, rhs) // destroys bm
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(xd, xb)
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reusable BandedLU workspace agrees with the dense solver
// (and with repeated right-hand sides) on random diagonally dominant banded
// systems, without destroying its input.
func TestBandedLUMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		k := 1 + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		bm := NewBanded(n, k)
		dm := NewDense(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := i - k; j <= i+k; j++ {
				if j < 0 || j >= n || j == i {
					continue
				}
				v := rng.Float64() - 0.5
				bm.AddAt(i, j, v)
				dm.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			d := rowSum + 1 + rng.Float64()
			bm.AddAt(i, i, d)
			dm.Set(i, i, d)
		}
		before := append([]float64(nil), bm.Data...)
		var ws BandedLU
		if err := ws.Refactor(bm); err != nil {
			return false
		}
		for i, v := range bm.Data {
			if before[i] != v {
				return false // Refactor must not destroy its input
			}
		}
		x := make([]float64, n)
		for trial := 0; trial < 2; trial++ {
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = rng.Float64()*2 - 1
			}
			xd, err := SolveDense(dm, rhs)
			if err != nil {
				return false
			}
			if err := ws.SolveInto(x, rhs); err != nil {
				return false
			}
			if d, err := MaxAbsDiff(xd, x); err != nil || d >= 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedLUSteadyStateAllocs(t *testing.T) {
	n, k := 32, 3
	m := NewBanded(n, k)
	for i := 0; i < n; i++ {
		m.AddAt(i, i, 4)
		if i > 0 {
			m.AddAt(i, i-1, -1)
			m.AddAt(i-1, i, -1)
		}
	}
	b := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	var ws BandedLU
	if err := ws.Refactor(m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.Refactor(m); err != nil {
			t.Fatal(err)
		}
		if err := ws.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVecInto(y, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state banded refactor/solve allocates %v per run, want 0", allocs)
	}
	if d, _ := MaxAbsDiff(y, b); d > 1e-9 {
		t.Fatalf("residual after banded solve = %v", d)
	}
}

func TestBandedLUErrors(t *testing.T) {
	var ws BandedLU
	if err := ws.Refactor(NewBanded(2, 1)); err != ErrSingular {
		t.Fatalf("zero matrix: want ErrSingular, got %v", err)
	}
	m := NewBanded(2, 1)
	m.AddAt(0, 0, 1)
	m.AddAt(1, 1, 1)
	if err := ws.Refactor(m); err != nil {
		t.Fatal(err)
	}
	if err := ws.SolveInto(make([]float64, 2), []float64{1}); err == nil {
		t.Fatal("want size mismatch error")
	}
	if err := m.MulVecInto(make([]float64, 1), []float64{1, 2}); err == nil {
		t.Fatal("want MulVecInto size error")
	}
	if err := m.CopyFrom(NewBanded(3, 1)); err == nil {
		t.Fatal("want CopyFrom shape error")
	}
}

func TestBandedSolveErrors(t *testing.T) {
	m := NewBanded(2, 1)
	if _, err := SolveBandedNoPivot(m, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("zero matrix: want ErrSingular, got %v", err)
	}
	m = NewBanded(2, 1)
	m.AddAt(0, 0, 1)
	m.AddAt(1, 1, 1)
	if _, err := SolveBandedNoPivot(m, []float64{1}); err == nil {
		t.Fatal("want size mismatch error")
	}
}
