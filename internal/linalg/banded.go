package linalg

import (
	"fmt"
	"math"
)

// Banded is a square matrix with equal lower and upper bandwidth K, stored
// diagonally: element (i, j) with |i-j| <= K lives at Data[i*(2K+1)+(j-i+K)].
// The mini-SPICE engine uses it because RC-array conductance matrices couple
// only physically adjacent nodes, making transient solves O(N*K^2) instead
// of O(N^3).
type Banded struct {
	N, K int
	Data []float64
}

// NewBanded returns a zero n x n matrix with bandwidth k (0 <= k < n).
func NewBanded(n, k int) *Banded {
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return &Banded{N: n, K: k, Data: make([]float64, n*(2*k+1))}
}

// InBand reports whether (i, j) is representable.
func (m *Banded) InBand(i, j int) bool {
	d := j - i
	return d >= -m.K && d <= m.K
}

// At returns element (i, j); out-of-band elements are zero.
func (m *Banded) At(i, j int) float64 {
	if !m.InBand(i, j) {
		return 0
	}
	return m.Data[i*(2*m.K+1)+(j-i+m.K)]
}

// AddAt accumulates v into element (i, j). It panics if (i, j) is out of
// band: the caller (the circuit assembler) must have sized the bandwidth to
// cover every device stamp.
func (m *Banded) AddAt(i, j int, v float64) {
	if !m.InBand(i, j) {
		panic(fmt.Sprintf("linalg: banded stamp (%d,%d) outside bandwidth %d", i, j, m.K))
	}
	m.Data[i*(2*m.K+1)+(j-i+m.K)] += v
}

// Zero clears the matrix in place.
func (m *Banded) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SolveBandedNoPivot factors and solves m*x = b in place using banded
// Gaussian elimination WITHOUT pivoting. The caller must guarantee the
// matrix is safely factorable without pivoting - circuit conductance
// matrices with a gmin on every diagonal are. The matrix is destroyed. It
// returns ErrSingular if a pivot underflows working precision.
func SolveBandedNoPivot(m *Banded, b []float64) ([]float64, error) {
	n, k := m.N, m.K
	if len(b) != n {
		return nil, fmt.Errorf("linalg: banded solve size mismatch: matrix %d, rhs %d", n, len(b))
	}
	w := 2*k + 1
	x := make([]float64, n)
	copy(x, b)
	var scale float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return nil, ErrSingular
	}
	eps := scale * 1e-15
	// Forward elimination.
	for col := 0; col < n; col++ {
		pivot := m.Data[col*w+k]
		if math.Abs(pivot) <= eps {
			return nil, ErrSingular
		}
		last := col + k
		if last >= n {
			last = n - 1
		}
		for row := col + 1; row <= last; row++ {
			l := m.Data[row*w+(col-row+k)] / pivot
			if l == 0 {
				continue
			}
			m.Data[row*w+(col-row+k)] = 0
			for j := col + 1; j <= col+k && j < n; j++ {
				if j-row >= -k && j-row <= k {
					m.Data[row*w+(j-row+k)] -= l * m.Data[col*w+(j-col+k)]
				}
			}
			x[row] -= l * x[col]
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		s := x[row]
		for j := row + 1; j <= row+k && j < n; j++ {
			s -= m.Data[row*w+(j-row+k)] * x[j]
		}
		x[row] = s / m.Data[row*w+k]
	}
	return x, nil
}
