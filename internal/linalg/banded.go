package linalg

import (
	"fmt"
	"math"
)

// Banded is a square matrix with equal lower and upper bandwidth K, stored
// diagonally: element (i, j) with |i-j| <= K lives at Data[i*(2K+1)+(j-i+K)].
// The mini-SPICE engine uses it because RC-array conductance matrices couple
// only physically adjacent nodes, making transient solves O(N*K^2) instead
// of O(N^3).
type Banded struct {
	N, K int
	Data []float64
}

// NewBanded returns a zero n x n matrix with bandwidth k (0 <= k < n).
func NewBanded(n, k int) *Banded {
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return &Banded{N: n, K: k, Data: make([]float64, n*(2*k+1))}
}

// InBand reports whether (i, j) is representable.
func (m *Banded) InBand(i, j int) bool {
	d := j - i
	return d >= -m.K && d <= m.K
}

// At returns element (i, j); out-of-band elements are zero.
func (m *Banded) At(i, j int) float64 {
	if !m.InBand(i, j) {
		return 0
	}
	return m.Data[i*(2*m.K+1)+(j-i+m.K)]
}

// AddAt accumulates v into element (i, j). It panics if (i, j) is out of
// band: the caller (the circuit assembler) must have sized the bandwidth to
// cover every device stamp.
func (m *Banded) AddAt(i, j int, v float64) {
	if !m.InBand(i, j) {
		panic(fmt.Sprintf("linalg: banded stamp (%d,%d) outside bandwidth %d", i, j, m.K))
	}
	m.Data[i*(2*m.K+1)+(j-i+m.K)] += v
}

// Zero clears the matrix in place.
func (m *Banded) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom overwrites m with src in place. The matrices must have identical
// size and bandwidth.
func (m *Banded) CopyFrom(src *Banded) error {
	if m.N != src.N || m.K != src.K {
		return fmt.Errorf("linalg: banded CopyFrom shape mismatch: %dx%d(k=%d) vs %dx%d(k=%d)",
			m.N, m.N, m.K, src.N, src.N, src.K)
	}
	copy(m.Data, src.Data)
	return nil
}

// MulVecInto computes dst = m * x without allocating. dst and x must both
// have length N and must not alias.
func (m *Banded) MulVecInto(dst, x []float64) error {
	if len(x) != m.N || len(dst) != m.N {
		return fmt.Errorf("linalg: banded MulVecInto size mismatch: matrix %d, x %d, dst %d", m.N, len(x), len(dst))
	}
	n, k := m.N, m.K
	w := 2*k + 1
	for i := 0; i < n; i++ {
		lo, hi := i-k, i+k
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var s float64
		row := m.Data[i*w:]
		for j := lo; j <= hi; j++ {
			s += row[j-i+k] * x[j]
		}
		dst[i] = s
	}
	return nil
}

// BandedLU is a reusable no-pivot banded LU factorization workspace: the
// structure-aware counterpart of LU for the narrow-banded conductance
// matrices of bitline-ladder netlists, where factor+solve costs O(N*K^2)
// instead of O(N^3). Like SolveBandedNoPivot it does not pivot, so the
// caller must guarantee the matrix is safely factorable without pivoting
// (circuit conductance matrices with a gmin on every diagonal are). The zero
// value is a valid empty workspace: Refactor sizes and thereafter reuses the
// internal storage.
type BandedLU struct {
	n, k int
	lu   []float64 // banded storage, multipliers of L below the diagonal
	dinv []float64 // reciprocal U diagonal: one divide per pivot at factor
	// time instead of one per row per solve - FP division is an order of
	// magnitude slower than multiplication and dominated repeated solves.
}

// Refactor computes the no-pivot banded LU factorization of m inside this
// workspace, reusing its storage when m has the shape of the previous
// factorization. m is not modified. It returns ErrSingular if a pivot
// underflows working precision; the workspace contents are then undefined
// and a fresh Refactor is required before SolveInto.
func (f *BandedLU) Refactor(m *Banded) error {
	n, k := m.N, m.K
	w := 2*k + 1
	if cap(f.lu) >= n*w {
		f.lu = f.lu[:n*w]
	} else {
		f.lu = make([]float64, n*w)
	}
	if cap(f.dinv) >= n {
		f.dinv = f.dinv[:n]
	} else {
		f.dinv = make([]float64, n)
	}
	f.n, f.k = n, k
	var scale float64
	for i, v := range m.Data {
		f.lu[i] = v
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	return factorBand(f.lu, f.dinv, n, k, scale*1e-15)
}

// RefactorInPlace is Refactor without the defensive copy: it factors m's own
// storage (destroying m) and leaves the workspace aliasing it, which repeated
// Newton solvers exploit because their scratch matrix is rebuilt from a clean
// copy every iteration anyway. scale, when positive, supplies the matrix
// magnitude for the singularity threshold so the per-call O(n*k) scan is
// amortized by the caller; pass 0 to have it computed here. The factorization
// is valid only until m's storage is next written.
func (f *BandedLU) RefactorInPlace(m *Banded, scale float64) error {
	n, k := m.N, m.K
	w := 2*k + 1
	if cap(f.dinv) >= n {
		f.dinv = f.dinv[:n]
	} else {
		f.dinv = make([]float64, n)
	}
	f.n, f.k = n, k
	f.lu = m.Data[:n*w]
	if scale <= 0 {
		for _, v := range m.Data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	return factorBand(f.lu, f.dinv, n, k, scale*1e-15)
}

// factorBand runs the no-pivot banded elimination in place on lu, storing L's
// multipliers in the subdiagonal slots and the reciprocal U diagonal in dinv.
func factorBand(lu, dinv []float64, n, k int, eps float64) error {
	w := 2*k + 1
	for col := 0; col < n; col++ {
		cw := lu[col*w : col*w+w]
		pivot := cw[k]
		if math.Abs(pivot) <= eps {
			return ErrSingular
		}
		pinv := 1 / pivot
		dinv[col] = pinv
		last := col + k
		if last >= n {
			last = n - 1
		}
		span := last - col
		for row := col + 1; row <= last; row++ {
			rw := lu[row*w : row*w+w]
			i0 := col - row + k
			l := rw[i0] * pinv
			rw[i0] = l // keep the multiplier for SolveInto
			if l == 0 {
				continue
			}
			// Fill-free update: eliminating within the band only touches
			// columns (col, col+span] of the affected row, all in band.
			a := rw[i0+1 : i0+1+span]
			b := cw[k+1 : k+1+span]
			for j, bv := range b {
				a[j] -= l * bv
			}
		}
	}
	return nil
}

// SolveInto computes dst with A*dst = b for the factored matrix A without
// allocating. dst and b must both have length N; dst may alias b.
func (f *BandedLU) SolveInto(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("linalg: banded solve size mismatch: matrix %d, rhs %d, dst %d", f.n, len(b), len(dst))
	}
	n, k := f.n, f.k
	if n == 0 {
		return nil
	}
	w := 2*k + 1
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward substitution with the stored multipliers (unit diagonal L).
	// The multiplier for row r sits at lu[r*w + (col-r+k)], so walking rows
	// within a column advances the flat index by w-1; structural zeros
	// (independent sub-circuits packed into one band) are skipped.
	for col := 0; col < n; col++ {
		xc := dst[col]
		if xc == 0 {
			continue
		}
		last := col + k
		if last >= n {
			last = n - 1
		}
		idx := col*w + w + k - 1
		for row := col + 1; row <= last; row++ {
			if v := f.lu[idx]; v != 0 {
				dst[row] -= v * xc
			}
			idx += w - 1
		}
	}
	// Back substitution on U, multiplying by the precomputed reciprocal
	// diagonal instead of dividing. Each row's superdiagonal entries are
	// contiguous in the band layout.
	for row := n - 1; row >= 0; row-- {
		hi := row + k
		if hi >= n {
			hi = n - 1
		}
		s := dst[row]
		if span := hi - row; span > 0 {
			u := f.lu[row*w+k+1 : row*w+k+1+span]
			d := dst[row+1 : row+1+span]
			for j, uv := range u {
				s -= uv * d[j]
			}
		}
		dst[row] = s * f.dinv[row]
	}
	return nil
}

// SolveBandedNoPivot factors and solves m*x = b in place using banded
// Gaussian elimination WITHOUT pivoting. The caller must guarantee the
// matrix is safely factorable without pivoting - circuit conductance
// matrices with a gmin on every diagonal are. The matrix is destroyed. It
// returns ErrSingular if a pivot underflows working precision. Repeated
// solves should use a BandedLU workspace instead, which preserves the input
// and allocates nothing in steady state.
func SolveBandedNoPivot(m *Banded, b []float64) ([]float64, error) {
	n, k := m.N, m.K
	if len(b) != n {
		return nil, fmt.Errorf("linalg: banded solve size mismatch: matrix %d, rhs %d", n, len(b))
	}
	w := 2*k + 1
	x := make([]float64, n)
	copy(x, b)
	var scale float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return nil, ErrSingular
	}
	eps := scale * 1e-15
	// Forward elimination. The reciprocal-pivot form mirrors BandedLU
	// exactly (same operation sequence), keeping the two paths bit-identical.
	for col := 0; col < n; col++ {
		pivot := m.Data[col*w+k]
		if math.Abs(pivot) <= eps {
			return nil, ErrSingular
		}
		pinv := 1 / pivot
		last := col + k
		if last >= n {
			last = n - 1
		}
		for row := col + 1; row <= last; row++ {
			l := m.Data[row*w+(col-row+k)] * pinv
			if l == 0 {
				continue
			}
			m.Data[row*w+(col-row+k)] = 0
			for j := col + 1; j <= col+k && j < n; j++ {
				if j-row >= -k && j-row <= k {
					m.Data[row*w+(j-row+k)] -= l * m.Data[col*w+(j-col+k)]
				}
			}
			x[row] -= l * x[col]
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		s := x[row]
		for j := row + 1; j <= row+k && j < n; j++ {
			s -= m.Data[row*w+(j-row+k)] * x[j]
		}
		x[row] = s * (1 / m.Data[row*w+k])
	}
	return x, nil
}
