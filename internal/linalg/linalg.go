// Package linalg provides the small dense linear-algebra kernels the
// VRL-DRAM models need: a Thomas (tridiagonal) solver for the bitline
// coupling system of paper Eq. 8, and an LU solver with partial pivoting for
// the modified-nodal-analysis matrices of the mini-SPICE engine.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no unique solution at working
// precision.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveTridiagonal solves the n x n tridiagonal system
//
//	lower[i]*x[i-1] + diag[i]*x[i] + upper[i]*x[i+1] = rhs[i]
//
// using the Thomas algorithm. lower[0] and upper[n-1] are ignored. The
// inputs are not modified. It returns ErrSingular if elimination encounters
// a zero pivot.
func SolveTridiagonal(lower, diag, upper, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(lower) != n || len(upper) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: tridiagonal size mismatch: lower=%d diag=%d upper=%d rhs=%d",
			len(lower), n, len(upper), len(rhs))
	}
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n) // modified upper diagonal
	dp := make([]float64, n) // modified rhs
	if diag[0] == 0 {
		return nil, ErrSingular
	}
	cp[0] = upper[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - lower[i]*cp[i-1]
		if den == 0 {
			return nil, ErrSingular
		}
		cp[i] = upper[i] / den
		dp[i] = (rhs[i] - lower[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

// Dense is a square matrix stored in row-major order.
type Dense struct {
	N    int
	Data []float64 // len N*N
}

// NewDense returns a zero n x n matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// AddAt accumulates v into element (i, j): the stamping primitive of MNA
// assembly, under the name the circuit assembler's matrix interface shares
// with Banded.
func (m *Dense) AddAt(i, j int, v float64) { m.Data[i*m.N+j] += v }

// CopyFrom overwrites m with src in place. The matrices must be the same
// size.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.N != src.N {
		return fmt.Errorf("linalg: CopyFrom size mismatch: %d vs %d", m.N, src.N)
	}
	copy(m.Data, src.Data)
	return nil
}

// Zero clears the matrix in place, preserving its storage.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x in a freshly allocated vector. Hot paths should use
// MulVecInto, which reuses the caller's destination buffer.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	y := make([]float64, m.N)
	if err := m.MulVecInto(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// MulVecInto computes dst = m * x without allocating. dst and x must both
// have length N and must not alias.
func (m *Dense) MulVecInto(dst, x []float64) error {
	if len(x) != m.N || len(dst) != m.N {
		return fmt.Errorf("linalg: MulVecInto size mismatch: matrix %d, x %d, dst %d", m.N, len(x), len(dst))
	}
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// LU holds an LU factorization with partial pivoting, reusable across
// multiple right-hand sides. The zero value is a valid empty workspace:
// Refactor sizes (and thereafter reuses) the internal storage, so one LU can
// factor an unbounded sequence of same-sized systems without allocating.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of m with partial pivoting in a new
// workspace. m is not modified. It returns ErrSingular when a pivot vanishes
// at working precision relative to the matrix scale.
func Factor(m *Dense) (*LU, error) {
	f := &LU{}
	if err := f.Refactor(m); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor computes the LU factorization of m with partial pivoting inside
// this workspace, reusing its storage when m has the size of the previous
// factorization. m is not modified. On error the workspace contents are
// undefined and a fresh Refactor is required before Solve/SolveInto.
func (f *LU) Refactor(m *Dense) error {
	n := m.N
	if cap(f.lu) >= n*n && cap(f.piv) >= n {
		f.lu = f.lu[:n*n]
		f.piv = f.piv[:n]
	} else {
		f.lu = make([]float64, n*n)
		f.piv = make([]int, n)
	}
	f.n = n
	f.sign = 1
	copy(f.lu, m.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	// Scale reference for the singularity test.
	var scale float64
	for _, v := range f.lu {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	eps := scale * 1e-14
	for k := 0; k < n; k++ {
		// Pivot search.
		p, pmax := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax <= eps {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return nil
}

// Solve returns x with A*x = b for the factored matrix A in a freshly
// allocated vector. Hot paths should use SolveInto.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto computes dst with A*dst = b for the factored matrix A without
// allocating. dst and b must both have length N and must not alias.
func (f *LU) SolveInto(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("linalg: LU solve size mismatch: matrix %d, rhs %d, dst %d", f.n, len(b), len(dst))
	}
	n := f.n
	for i := 0; i < n; i++ {
		dst[i] = b[f.piv[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s += l * dst[j]
		}
		dst[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		row := f.lu[i*n+i+1 : (i+1)*n]
		for j, u := range row {
			s += u * dst[i+1+j]
		}
		dst[i] = (dst[i] - s) / f.lu[i*n+i]
	}
	return nil
}

// SolveDense factors m and solves m*x = b in one step.
func SolveDense(m *Dense, b []float64) ([]float64, error) {
	f, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// equal-length vectors; it is the convergence metric of the Newton loop and
// of several tests.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("linalg: MaxAbsDiff length mismatch: %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}
