package linalg

import (
	"math"
	"testing"
)

// FuzzBandedFactor feeds arbitrary (including singular and ill-conditioned)
// banded matrices through the no-pivot factorization and solve. The contract
// under fuzz: bad inputs must surface as an error, never as a panic or an
// out-of-band read, and any solution that is returned must actually satisfy
// the system to within a scale-relative residual.
func FuzzBandedFactor(f *testing.F) {
	f.Add(uint8(4), uint8(1), []byte{1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0})
	f.Add(uint8(3), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(6), uint8(2), []byte{255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, raw []byte) {
		n := 1 + int(nRaw)%24
		k := int(kRaw) % n
		m := NewBanded(n, k)
		// Decode bytes into band entries spanning many orders of magnitude so
		// the corpus reaches both singular and ill-conditioned territory.
		for i := range m.Data {
			if i >= len(raw) {
				break
			}
			b := raw[i]
			v := float64(int(b)-128) / 16
			if b%7 == 0 {
				v *= 1e12
			} else if b%5 == 0 {
				v *= 1e-12
			}
			m.Data[i] = v
		}
		before := append([]float64(nil), m.Data...)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%3) - 1
		}

		var ws BandedLU
		err := ws.Refactor(m)
		for i, v := range m.Data {
			if before[i] != v {
				t.Fatalf("Refactor modified its input at %d", i)
			}
		}
		if err != nil {
			return
		}
		x := make([]float64, n)
		if err := ws.SolveInto(x, rhs); err != nil {
			t.Fatalf("SolveInto after successful Refactor: %v", err)
		}
		for _, v := range x {
			if math.IsNaN(v) {
				t.Fatal("solution contains NaN after successful factorization")
			}
		}

		// Cross-check against the one-shot path on a scratch copy; both are
		// the same elimination, so they must agree bit-for-bit or both fail.
		scratch := NewBanded(n, k)
		if err := scratch.CopyFrom(m); err != nil {
			t.Fatal(err)
		}
		x2, err2 := SolveBandedNoPivot(scratch, rhs)
		if err2 != nil {
			t.Fatalf("SolveBandedNoPivot failed where BandedLU succeeded: %v", err2)
		}
		for i := range x {
			if x[i] != x2[i] && !(math.IsInf(x[i], 0) && math.IsInf(x2[i], 0)) {
				t.Fatalf("workspace and one-shot solve disagree at %d: %v vs %v", i, x[i], x2[i])
			}
		}
	})
}
