package linalg

import (
	"fmt"
	"math"
)

// BandedSymbolic is a no-pivot banded LU factorization that has been analyzed
// symbolically: given the structural nonzero pattern of a matrix (which for a
// circuit is fixed by the netlist topology while the values change every
// Newton iteration), it precomputes the fill-in and flattens the true nonzero
// positions into index lists once. The numeric factor+solve then visits
// exactly those positions instead of scanning full band rows, which on
// circuit matrices — a handful of nonzeros per band row — skips most of the
// arithmetic a dense-band elimination performs on structural zeros.
//
// The pattern is a superset contract: every position the caller might ever
// stamp must be declared, and positions that happen to hold a numeric zero in
// some iteration are simply computed (a zero multiplier updates nothing), so
// results match the dense-band elimination to within the ±0 sign of skipped
// terms. Like BandedLU it does not pivot; the caller must guarantee the
// matrix is safely factorable without pivoting.
type BandedSymbolic struct {
	n, k int
	// Column-compressed multiplier pattern: for column c, subRow[subStart[c]:
	// subStart[c+1]] lists the rows below c whose (row, c) entry is
	// structurally nonzero after fill-in.
	subStart []int32
	subRow   []int32
	// Row-compressed U pattern: for row r, uOff[uStart[r]:uStart[r+1]] lists
	// the offsets j >= 1 with (r, r+j) structurally nonzero after fill-in.
	// The same list serves elimination (row r's U is the update template of
	// its pivot column) and back substitution.
	uStart []int32
	uOff   []int32
	dinv   []float64
}

// NewBandedSymbolic analyzes the pattern of an n x n matrix with bandwidth k
// whose structural nonzeros are the diagonal plus the given (i, j) positions
// (each pair is mirrored; out-of-range and out-of-band pairs are rejected).
// The analysis runs the elimination once over booleans to find every fill-in
// position, then freezes the result into compressed index lists.
func NewBandedSymbolic(n, k int, pairs [][2]int) (*BandedSymbolic, error) {
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	w := 2*k + 1
	p := make([]bool, n*w)
	for i := 0; i < n; i++ {
		p[i*w+k] = true
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if i < 0 || j < 0 || i >= n || j >= n {
			return nil, fmt.Errorf("linalg: symbolic pattern position (%d,%d) outside %dx%d", i, j, n, n)
		}
		if d := j - i; d < -k || d > k {
			return nil, fmt.Errorf("linalg: symbolic pattern position (%d,%d) outside bandwidth %d", i, j, k)
		}
		p[i*w+(j-i+k)] = true
		p[j*w+(i-j+k)] = true
	}
	// Symbolic elimination: a nonzero multiplier at (row, col) spreads column
	// col's U pattern into row `row`, exactly as the numeric update will.
	for col := 0; col < n; col++ {
		last := col + k
		if last >= n {
			last = n - 1
		}
		for row := col + 1; row <= last; row++ {
			if !p[row*w+(col-row+k)] {
				continue
			}
			for j := 1; j <= k && col+j < n; j++ {
				if p[col*w+(j+k)] {
					p[row*w+(col+j-row+k)] = true
				}
			}
		}
	}
	s := &BandedSymbolic{n: n, k: k, dinv: make([]float64, n)}
	s.subStart = make([]int32, n+1)
	s.uStart = make([]int32, n+1)
	for col := 0; col < n; col++ {
		s.subStart[col] = int32(len(s.subRow))
		last := col + k
		if last >= n {
			last = n - 1
		}
		for row := col + 1; row <= last; row++ {
			if p[row*w+(col-row+k)] {
				s.subRow = append(s.subRow, int32(row))
			}
		}
		s.uStart[col] = int32(len(s.uOff))
		for j := 1; j <= k && col+j < n; j++ {
			if p[col*w+(j+k)] {
				s.uOff = append(s.uOff, int32(j))
			}
		}
	}
	s.subStart[n] = int32(len(s.subRow))
	s.uStart[n] = int32(len(s.uOff))
	return s, nil
}

// Nonzeros reports the number of structural sub-diagonal multipliers and
// upper-triangle entries after fill-in, for diagnostics and tests.
func (s *BandedSymbolic) Nonzeros() (sub, upper int) {
	return len(s.subRow), len(s.uOff)
}

// FactorSolve factors m in place (destroying it) and solves the original
// m * dst = rhs, visiting only the precomputed structural nonzeros. m must
// match the analyzed shape and its nonzeros must lie inside the declared
// pattern; scale is the matrix magnitude for the singularity threshold (a
// non-positive value triggers a scan). dst and rhs must have length N and
// may alias. Returns ErrSingular when a pivot underflows working precision.
func (s *BandedSymbolic) FactorSolve(m *Banded, scale float64, dst, rhs []float64) error {
	n, k := s.n, s.k
	if m.N != n || m.K != k {
		return fmt.Errorf("linalg: symbolic factor shape mismatch: analyzed %dx%d(k=%d), got %dx%d(k=%d)",
			n, n, s.k, m.N, m.N, m.K)
	}
	if len(rhs) != n || len(dst) != n {
		return fmt.Errorf("linalg: banded solve size mismatch: matrix %d, rhs %d, dst %d", n, len(rhs), len(dst))
	}
	if scale <= 0 {
		for _, v := range m.Data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	if n == 0 {
		return nil
	}
	if &dst[0] != &rhs[0] {
		copy(dst, rhs)
	}
	eps := scale * 1e-15
	w := 2*k + 1
	lu, dinv := m.Data, s.dinv
	for col := 0; col < n; col++ {
		cu := lu[col*w+k : col*w+w]
		pivot := cu[0]
		if math.Abs(pivot) <= eps {
			return ErrSingular
		}
		pinv := 1 / pivot
		dinv[col] = pinv
		us := s.uOff[s.uStart[col]:s.uStart[col+1]]
		xc := dst[col]
		for _, r := range s.subRow[s.subStart[col]:s.subStart[col+1]] {
			row := int(r)
			base := row*w + col - row + k
			l := lu[base] * pinv
			lu[base] = l
			a := lu[base:]
			for _, j := range us {
				a[j] -= l * cu[j]
			}
			dst[row] -= l * xc
		}
	}
	for row := n - 1; row >= 0; row-- {
		sum := dst[row]
		u := lu[row*w+k:]
		d := dst[row:]
		for _, j := range s.uOff[s.uStart[row]:s.uStart[row+1]] {
			sum -= u[j] * d[j]
		}
		dst[row] = sum * dinv[row]
	}
	return nil
}
