package linalg

import "testing"

// benchBanded mirrors the pre-sense hot loop: n=160, k=5, refactor + solve
// per Newton iteration.
func benchBanded(b *testing.B, refactorEach bool) {
	const n, k = 160, 5
	m := NewBanded(n, k)
	for i := 0; i < n; i++ {
		m.AddAt(i, i, 4+float64(i%7))
		for d := 1; d <= k; d++ {
			if i+d < n {
				m.AddAt(i, i+d, -0.5)
				m.AddAt(i+d, i, -0.5)
			}
		}
	}
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	var lu BandedLU
	if err := lu.Refactor(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if refactorEach {
			if err := lu.Refactor(m); err != nil {
				b.Fatal(err)
			}
		}
		if err := lu.SolveInto(x, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandedRefactorSolve(b *testing.B) { benchBanded(b, true) }
func BenchmarkBandedSolveOnly(b *testing.B)     { benchBanded(b, false) }
