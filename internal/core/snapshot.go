package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshotter is the capability a checkpointable simulation requires of its
// scheduler: export the policy's mutable counters as an opaque, versioned
// blob, and restore them later into a fresh instance constructed with the
// same configuration. A stateless policy still implements it (with a
// tag-only blob) so the checkpoint layer can verify at restore time that the
// snapshot and the scheduler agree about what policy is running.
//
// Wrappers (guards, injectors) that hold state of their own must nest their
// inner scheduler's blob inside theirs, so a whole stack snapshots through
// its top element.
type Snapshotter interface {
	// SnapshotState serializes the scheduler's mutable state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the scheduler's mutable state with a previously
	// snapshotted one. It must reject blobs from a different policy or an
	// incompatibly-shaped configuration (e.g. a different row count).
	RestoreState(data []byte) error
}

// StateEncoder builds the little-endian binary blobs Snapshotter
// implementations exchange. The zero value is ready to use; encoding never
// fails, so the methods return nothing.
type StateEncoder struct {
	buf []byte
}

// Tag writes a length-prefixed policy/version marker ("vrl1", ...); the
// decoder's matching ExpectTag rejects blobs from a different implementation.
func (e *StateEncoder) Tag(tag string) { e.Bytes([]byte(tag)) }

// Uint64 appends a fixed-width unsigned integer.
func (e *StateEncoder) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int appends a signed integer (as its 64-bit two's complement).
func (e *StateEncoder) Int(v int64) { e.Uint64(uint64(v)) }

// Bool appends a boolean byte.
func (e *StateEncoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a float64 bit-exactly.
func (e *StateEncoder) Float(v float64) { e.Uint64(math.Float64bits(v)) }

// Floats appends a length-prefixed float64 slice bit-exactly.
func (e *StateEncoder) Floats(v []float64) {
	e.Int(int64(len(v)))
	for _, f := range v {
		e.Float(f)
	}
}

// Ints appends a length-prefixed int slice.
func (e *StateEncoder) Ints(v []int) {
	e.Int(int64(len(v)))
	for _, x := range v {
		e.Int(int64(x))
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *StateEncoder) Bytes(v []byte) {
	e.Int(int64(len(v)))
	e.buf = append(e.buf, v...)
}

// Data returns the encoded blob.
func (e *StateEncoder) Data() []byte { return e.buf }

// StateDecoder reads blobs produced by StateEncoder. It is sticky: the
// first malformed field latches an error, subsequent reads return zero
// values, and Err (or Finish) reports what went wrong. Length-prefixed
// fields are validated against the remaining input before any allocation,
// so a corrupt length cannot force a huge allocation.
type StateDecoder struct {
	buf []byte
	off int
	err error
}

// NewStateDecoder wraps a blob.
func NewStateDecoder(data []byte) *StateDecoder { return &StateDecoder{buf: data} }

func (d *StateDecoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// need reserves n bytes of input, failing the decoder if they are missing.
func (d *StateDecoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("core: state blob truncated at offset %d (need %d bytes, have %d)", d.off, n, len(d.buf)-d.off)
		return false
	}
	return true
}

// Uint64 reads a fixed-width unsigned integer.
func (d *StateDecoder) Uint64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Int reads a signed integer.
func (d *StateDecoder) Int() int64 { return int64(d.Uint64()) }

// Bool reads a boolean byte.
func (d *StateDecoder) Bool() bool {
	if !d.need(1) {
		return false
	}
	v := d.buf[d.off]
	d.off++
	if v > 1 {
		d.fail("core: state blob has bad bool byte %d", v)
		return false
	}
	return v == 1
}

// Float reads a float64 bit-exactly.
func (d *StateDecoder) Float() float64 { return math.Float64frombits(d.Uint64()) }

// sliceLen validates a length prefix for elements of elemSize bytes.
func (d *StateDecoder) sliceLen(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(d.buf)-d.off)/int64(elemSize) {
		d.fail("core: state blob slice length %d impossible with %d bytes left", n, len(d.buf)-d.off)
		return 0
	}
	return int(n)
}

// Floats reads a length-prefixed float64 slice.
func (d *StateDecoder) Floats() []float64 {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Float()
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (d *StateDecoder) Ints() []int {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Int())
	}
	return out
}

// Bytes reads a length-prefixed byte slice.
func (d *StateDecoder) Bytes() []byte {
	n := d.sliceLen(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out
}

// ExpectTag reads a tag and fails the decoder unless it matches.
func (d *StateDecoder) ExpectTag(tag string) {
	got := string(d.Bytes())
	if d.err == nil && got != tag {
		d.fail("core: state blob is %q, want %q", got, tag)
	}
}

// Fail latches a caller-detected validation error (kept only if no earlier
// error is pending), so layered decoders can reject semantically impossible
// values through the same sticky-error path as framing failures.
func (d *StateDecoder) Fail(format string, args ...interface{}) { d.fail(format, args...) }

// Err returns the first decoding error.
func (d *StateDecoder) Err() error { return d.err }

// Finish returns the first decoding error, or an error if trailing bytes
// remain unconsumed (a shape mismatch the per-field checks cannot see).
func (d *StateDecoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("core: state blob has %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}
