package core

// Optional capabilities a refresh scheduler (or a wrapper around one) can
// implement to participate in online safety monitoring. The simulator and
// the command-level controller probe for these with type assertions, so a
// plain scheduler pays nothing.

// SenseMonitor receives the sensed weakest-cell charge of every refresh
// operation, before restoration. A safety controller uses the stream to
// detect eroding margins while the charge is still above the sensing limit.
type SenseMonitor interface {
	// OnSense reports that the row was sensed at time now (seconds) with the
	// given normalized charge.
	OnSense(row int, now, charge float64)
}

// Demoter generalizes the one-shot Upgrader: instead of pinning a row to
// the fastest bin immediately, a Demoter steps the row one rung down a
// degradation ladder, so a single ECC correction costs one bin of overhead
// rather than all of them.
type Demoter interface {
	// Demote moves the row one step toward a faster refresh schedule.
	Demote(row int)
}

// GuardStats aggregates what a graceful-degradation controller did during a
// run. The zero value means "no guard in the scheduler stack".
type GuardStats struct {
	Alarms       int64 // margin alarms (sense below the warn threshold)
	Demotions    int64 // one-rung demotions to a faster bin
	Promotions   int64 // one-rung promotions back toward the nominal bin
	Escalations  int64 // rows pinned to the floor period after repeated alarms
	BreakerTrips int64 // global circuit-breaker trips
	// TimeDegraded is the total simulated time (seconds) spent with the
	// circuit breaker tripped (whole bank at the floor period).
	TimeDegraded float64
}

// GuardReporter exposes a guard's counters; now is the end-of-run time used
// to close any still-open degraded interval.
type GuardReporter interface {
	GuardSnapshot(now float64) GuardStats
}

// Promoter is the counterpart of Demoter: an external repair authority
// (e.g. a patrol scrubber that has seen K consecutive clean reads) steps
// the row one rung back toward its nominal schedule. Like Demote, it is an
// advisory hook: a scheduler without a degradation ladder may ignore it.
type Promoter interface {
	// Promote moves the row one step back toward its nominal refresh
	// schedule (clearing an escalation first, if one is pending).
	Promote(row int)
}

// ScrubStats aggregates what an online patrol scrubber (internal/scrub) did
// during a run. The zero value means "no scrubber attached".
type ScrubStats struct {
	RowsPatrolled int64 // patrol read slots completed (quarantined rows included)
	Corrected     int64 // ECC-corrected reads seen by the repair pipeline
	Uncorrectable int64 // uncorrectable reads seen by the repair pipeline
	Reprofiles    int64 // targeted single-row re-profiling campaigns run
	RowsHealed    int64 // suspect rows promoted back after K clean patrols
	RowsRemapped  int64 // rows quarantined to a spare
	HardFails     int64 // uncorrectable rows with no spare left (escalated)
	BusyRetries   int64 // patrol reads deferred because the bank was busy
	SLOMisses     int64 // tREFW windows whose patrol coverage fell below the SLO
	SparesLeft    int   // spare rows still unallocated at snapshot time
}

// ScrubReporter exposes a scrubber's counters; now is the end-of-run time
// used to close out any elapsed-but-unrolled coverage windows.
type ScrubReporter interface {
	ScrubSnapshot(now float64) ScrubStats
}

// FaultCounter is implemented by fault injectors (scheduler wrappers and
// trace corruptors) so the harness can report how many faults a run saw.
type FaultCounter interface {
	FaultsInjected() int64
}
