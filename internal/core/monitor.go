package core

// Optional capabilities a refresh scheduler (or a wrapper around one) can
// implement to participate in online safety monitoring. The simulator and
// the command-level controller probe for these with type assertions, so a
// plain scheduler pays nothing.

// SenseMonitor receives the sensed weakest-cell charge of every refresh
// operation, before restoration. A safety controller uses the stream to
// detect eroding margins while the charge is still above the sensing limit.
type SenseMonitor interface {
	// OnSense reports that the row was sensed at time now (seconds) with the
	// given normalized charge.
	OnSense(row int, now, charge float64)
}

// Demoter generalizes the one-shot Upgrader: instead of pinning a row to
// the fastest bin immediately, a Demoter steps the row one rung down a
// degradation ladder, so a single ECC correction costs one bin of overhead
// rather than all of them.
type Demoter interface {
	// Demote moves the row one step toward a faster refresh schedule.
	Demote(row int)
}

// GuardStats aggregates what a graceful-degradation controller did during a
// run. The zero value means "no guard in the scheduler stack".
type GuardStats struct {
	Alarms       int64 // margin alarms (sense below the warn threshold)
	Demotions    int64 // one-rung demotions to a faster bin
	Promotions   int64 // one-rung promotions back toward the nominal bin
	Escalations  int64 // rows pinned to the floor period after repeated alarms
	BreakerTrips int64 // global circuit-breaker trips
	// TimeDegraded is the total simulated time (seconds) spent with the
	// circuit breaker tripped (whole bank at the floor period).
	TimeDegraded float64
}

// GuardReporter exposes a guard's counters; now is the end-of-run time used
// to close any still-open degraded interval.
type GuardReporter interface {
	GuardSnapshot(now float64) GuardStats
}

// FaultCounter is implemented by fault injectors (scheduler wrappers and
// trace corruptors) so the harness can report how many faults a run saw.
type FaultCounter interface {
	FaultsInjected() int64
}
