package core

import (
	"fmt"
	"math"

	"vrldram/internal/retention"
)

// Op is one refresh operation the memory controller issues to a row.
type Op struct {
	Full   bool // full (long tRFC) or partial (short tRFC) refresh
	Cycles int  // bank-busy latency in DRAM cycles
	Alpha  float64
}

// Scheduler is a refresh command scheduling policy. The simulator calls
// RefreshOp at each row's scheduled refresh instant and OnAccess whenever a
// read or write activates a row.
type Scheduler interface {
	// Name is the policy's display name ("RAIDR", "VRL", ...).
	Name() string
	// Period returns the refresh period of a row (seconds).
	Period(row int) float64
	// RefreshOp returns the operation to issue to the row now, updating any
	// internal counters.
	RefreshOp(row int, now float64) Op
	// OnAccess notifies the policy of a read/write activation of the row.
	OnAccess(row int, now float64)
	// MPRSF returns the row's configured MPRSF (0 for policies without
	// partial refreshes).
	MPRSF(row int) int
}

// BatchScheduler is an optional Scheduler capability: RefreshOps is
// RefreshOp applied once per batch entry, in batch order, filling ops[i]
// for (rows[i], times[i]). By implementing it a scheduler declares that its
// RefreshOp state is independent across rows, so the batched runner may
// hoist one bucket's per-event calls ahead of applying the bucket: the
// per-row op sequences - the only state a row-independent policy carries -
// are unchanged by the hoist, which is what keeps the batched backend
// bit-identical to the scalar one. All shipped policies (JEDEC, RAIDR, VRL,
// VRL-Access) qualify; a policy with cross-row coupling must not implement
// this interface.
type BatchScheduler interface {
	Scheduler
	RefreshOps(rows []int, times []float64, ops []Op)
	// Periods gathers Period(rows[i]) into out[i]. The runner only hoists
	// this when nothing in the batch can mutate a period mid-bucket (no
	// ECC-driven demotes/upgrades are configured).
	Periods(rows []int, out []float64)
}

// SteadyScheduler is an optional Scheduler capability the fast-forward
// backend keys on: StablePeriodUntil returns a time up to which the row's
// refresh period - and the per-row op sequence it drives - cannot change
// except through the simulator's own visible hooks (OnAccess from a trace
// record, Upgrade/Demote from an ECC or scrub response), all of which the
// runner already fences fast-forward windows against. row < 0 asks for a
// bound that holds for every row at once. A policy whose state can shift
// spontaneously (a guard ladder re-evaluating on any sense) must return now;
// the stock policies' schedules are fixed at construction, so they return
// +Inf and let the runner's horizon caps do the fencing.
type SteadyScheduler interface {
	StablePeriodUntil(row int, now float64) float64
}

// StreamView exposes a row-independent scheduler's live decision state as
// plain columns, so the fast-forward kernel can select each refresh op
// inline instead of paying an interface call per event. The slices alias the
// scheduler's own state: mutations between fast-forward windows (a
// scrub-driven Upgrade, an OnAccess reset) are visible in the next window
// without re-fetching, and rcount writes by the kernel are the scheduler's
// own counter updates.
type StreamView struct {
	Period  float64   // shared period when Periods is nil (JEDEC)
	Periods []float64 // per-row refresh periods, aliased live state
	RCount  []int     // per-row partial-refresh counters; nil = always Full
	MPRSF   []int     // per-row MPRSF, aliased live state (nil with RCount nil)
	Full    Op        // the op issued when rcount == mprsf (or always, if RCount is nil)
	Partial Op        // the op issued otherwise
}

// OpStreamer is the optional capability behind StreamView. Only policies
// whose RefreshOp is exactly "rcount==mprsf ? full : partial" per row (or
// unconditionally full) can offer it; anything richer must stay off the
// fast-forward path.
type OpStreamer interface {
	StreamView() StreamView
}

// Config collects the knobs shared by the scheduler constructors.
type Config struct {
	Bins      []float64            // refresh-period bins (default retention.RAIDRBins)
	Restore   RestoreModel         // latencies + restore coefficients
	Decay     retention.DecayModel // leakage law for MPRSF computation
	Guardband float64              // minimum scheduled sensing charge (default ChargeGuardband)
	NBits     int                  // rcount/mprsf counter width (default 2)
}

func (c Config) withDefaults() Config {
	if c.Bins == nil {
		c.Bins = retention.RAIDRBins
	}
	if c.Decay == nil {
		c.Decay = retention.ExpDecay{}
	}
	if c.Guardband == 0 {
		c.Guardband = ChargeGuardband
	}
	if c.NBits == 0 {
		c.NBits = 2
	}
	return c
}

// Validate reports the first unusable field after defaulting.
func (c Config) Validate() error {
	if err := c.Restore.Validate(); err != nil {
		return err
	}
	if c.Guardband < retention.SenseLimit || c.Guardband >= 1 {
		return fmt.Errorf("core: guardband %g outside [%g,1)", c.Guardband, retention.SenseLimit)
	}
	if c.NBits < 1 || c.NBits > 16 {
		return fmt.Errorf("core: nbits %d outside [1,16]", c.NBits)
	}
	return nil
}

// MaxPartials returns the counter range 2^nbits - 1.
func (c Config) MaxPartials() int { return 1<<uint(c.NBits) - 1 }

// --- JEDEC baseline -----------------------------------------------------------

// jedec refreshes every row fully at the nominal 64 ms period, ignoring
// retention profiles: the behaviour of a stock controller.
type jedec struct {
	period float64
	rm     RestoreModel
}

// NewJEDEC returns the stock full-refresh-every-64ms policy.
func NewJEDEC(nominalPeriod float64, rm RestoreModel) (Scheduler, error) {
	if err := rm.Validate(); err != nil {
		return nil, err
	}
	if nominalPeriod <= 0 {
		return nil, fmt.Errorf("core: nominal period must be positive, got %g", nominalPeriod)
	}
	return &jedec{period: nominalPeriod, rm: rm}, nil
}

// SnapshotState implements Snapshotter; JEDEC has no mutable state, so the
// blob is the policy tag alone.
func (s *jedec) SnapshotState() ([]byte, error) {
	var e StateEncoder
	e.Tag("jedec1")
	return e.Data(), nil
}

// RestoreState implements Snapshotter.
func (s *jedec) RestoreState(data []byte) error {
	d := NewStateDecoder(data)
	d.ExpectTag("jedec1")
	return d.Finish()
}

func (s *jedec) Name() string          { return "JEDEC" }
func (s *jedec) Period(int) float64    { return s.period }
func (s *jedec) OnAccess(int, float64) {}
func (s *jedec) MPRSF(int) int         { return 0 }
func (s *jedec) RefreshOp(int, float64) Op {
	return Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
}

// RefreshOps implements BatchScheduler; JEDEC is stateless.
func (s *jedec) RefreshOps(rows []int, _ []float64, ops []Op) {
	op := Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
	for i := range rows {
		ops[i] = op
	}
}

// Periods implements BatchScheduler.
func (s *jedec) Periods(rows []int, out []float64) {
	for i := range rows {
		out[i] = s.period
	}
}

// StablePeriodUntil implements SteadyScheduler: the JEDEC schedule is fixed
// at construction.
func (s *jedec) StablePeriodUntil(int, float64) float64 { return math.Inf(1) }

// StreamView implements OpStreamer: one shared period, always full.
func (s *jedec) StreamView() StreamView {
	return StreamView{
		Period: s.period,
		Full:   Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull},
	}
}

// --- RAIDR ---------------------------------------------------------------------

// raidr refreshes each row fully at its binned period (Liu et al., ISCA
// 2012): the paper's baseline.
type raidr struct {
	periods []float64
	rm      RestoreModel
}

// NewRAIDR builds the retention-binned full-refresh policy over a profile.
func NewRAIDR(profile *retention.BankProfile, cfg Config) (Scheduler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	periods, err := profile.Periods(cfg.Bins)
	if err != nil {
		return nil, err
	}
	return &raidr{periods: periods, rm: cfg.Restore}, nil
}

// SnapshotState implements Snapshotter. RAIDR's binned periods are fixed at
// construction, so only the row count is recorded (to verify shape at
// restore time).
func (s *raidr) SnapshotState() ([]byte, error) {
	var e StateEncoder
	e.Tag("raidr1")
	e.Int(int64(len(s.periods)))
	return e.Data(), nil
}

// RestoreState implements Snapshotter.
func (s *raidr) RestoreState(data []byte) error {
	d := NewStateDecoder(data)
	d.ExpectTag("raidr1")
	rows := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	if int(rows) != len(s.periods) {
		return fmt.Errorf("core: RAIDR snapshot has %d rows, scheduler has %d", rows, len(s.periods))
	}
	return nil
}

func (s *raidr) Name() string           { return "RAIDR" }
func (s *raidr) Period(row int) float64 { return s.periods[row] }
func (s *raidr) OnAccess(int, float64)  {}
func (s *raidr) MPRSF(int) int          { return 0 }
func (s *raidr) RefreshOp(int, float64) Op {
	return Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
}

// RefreshOps implements BatchScheduler; RAIDR issues full refreshes with no
// per-refresh state.
func (s *raidr) RefreshOps(rows []int, _ []float64, ops []Op) {
	op := Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
	for i := range rows {
		ops[i] = op
	}
}

// Periods implements BatchScheduler.
func (s *raidr) Periods(rows []int, out []float64) {
	for i, r := range rows {
		out[i] = s.periods[r]
	}
}

// StablePeriodUntil implements SteadyScheduler: the binned periods are fixed
// at construction.
func (s *raidr) StablePeriodUntil(int, float64) float64 { return math.Inf(1) }

// StreamView implements OpStreamer: per-row periods, always full.
func (s *raidr) StreamView() StreamView {
	return StreamView{
		Periods: s.periods,
		Full:    Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull},
	}
}

// --- VRL (Algorithm 1) -----------------------------------------------------------

// vrl implements the paper's Algorithm 1: per-row mprsf and rcount
// counters; a full refresh is issued when rcount == mprsf (resetting
// rcount), otherwise a partial refresh (incrementing rcount).
type vrl struct {
	name          string
	periods       []float64
	bins          []float64
	mprsf         []int
	rcount        []int
	rm            RestoreModel
	resetOnAccess bool
}

// NewVRL builds the VRL policy: RAIDR's binning plus MPRSF-scheduled partial
// refreshes.
func NewVRL(profile *retention.BankProfile, cfg Config) (Scheduler, error) {
	return newVRL(profile, cfg, false)
}

// NewVRLAccess builds the VRL-Access policy: VRL plus rcount resets on row
// activations, since an activation fully restores the row's charge.
func NewVRLAccess(profile *retention.BankProfile, cfg Config) (Scheduler, error) {
	return newVRL(profile, cfg, true)
}

func newVRL(profile *retention.BankProfile, cfg Config, resetOnAccess bool) (Scheduler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	periods, err := profile.Periods(cfg.Bins)
	if err != nil {
		return nil, err
	}
	rows := profile.Geom.Rows
	s := &vrl{
		name:          "VRL",
		periods:       periods,
		bins:          retention.SortedBins(cfg.Bins),
		mprsf:         make([]int, rows),
		rcount:        make([]int, rows),
		rm:            cfg.Restore,
		resetOnAccess: resetOnAccess,
	}
	if resetOnAccess {
		s.name = "VRL-Access"
	}
	maxP := cfg.MaxPartials()
	table := MPRSFTableFor(cfg.Restore, cfg.Guardband, maxP)
	for r := 0; r < rows; r++ {
		s.mprsf[r] = table.MPRSF(profile.Profiled[r], periods[r], cfg.Decay)
		// Start each counter at a steady-state phase: a controller that has
		// been running arbitrarily long has its rows uniformly spread over
		// their full/partial cycle, and a finite simulation window should
		// see that distribution rather than an all-counters-zero transient.
		s.rcount[r] = int(uint32(r)*2654435761%uint32(s.mprsf[r]+1)) % (s.mprsf[r] + 1)
	}
	return s, nil
}

// SnapshotState implements Snapshotter: the per-row periods and MPRSF
// values (both mutable through Upgrade) and the partial-refresh counters.
func (s *vrl) SnapshotState() ([]byte, error) {
	var e StateEncoder
	e.Tag("vrl1")
	e.Bool(s.resetOnAccess)
	e.Floats(s.periods)
	e.Ints(s.mprsf)
	e.Ints(s.rcount)
	return e.Data(), nil
}

// RestoreState implements Snapshotter.
func (s *vrl) RestoreState(data []byte) error {
	d := NewStateDecoder(data)
	d.ExpectTag("vrl1")
	resetOnAccess := d.Bool()
	periods := d.Floats()
	mprsf := d.Ints()
	rcount := d.Ints()
	if err := d.Finish(); err != nil {
		return err
	}
	if resetOnAccess != s.resetOnAccess {
		return fmt.Errorf("core: VRL snapshot is for %s, scheduler is %s", vrlVariant(resetOnAccess), vrlVariant(s.resetOnAccess))
	}
	rows := len(s.periods)
	if len(periods) != rows || len(mprsf) != rows || len(rcount) != rows {
		return fmt.Errorf("core: VRL snapshot has %d/%d/%d rows, scheduler has %d",
			len(periods), len(mprsf), len(rcount), rows)
	}
	for r := 0; r < rows; r++ {
		if periods[r] <= 0 {
			return fmt.Errorf("core: VRL snapshot period for row %d is %g", r, periods[r])
		}
		if mprsf[r] < 0 || rcount[r] < 0 || rcount[r] > mprsf[r] {
			return fmt.Errorf("core: VRL snapshot counters for row %d invalid (rcount %d, mprsf %d)", r, rcount[r], mprsf[r])
		}
	}
	copy(s.periods, periods)
	copy(s.mprsf, mprsf)
	copy(s.rcount, rcount)
	return nil
}

func vrlVariant(resetOnAccess bool) string {
	if resetOnAccess {
		return "VRL-Access"
	}
	return "VRL"
}

func (s *vrl) Name() string           { return s.name }
func (s *vrl) Period(row int) float64 { return s.periods[row] }
func (s *vrl) MPRSF(row int) int      { return s.mprsf[row] }

// RefreshOp implements the paper's Algorithm 1.
func (s *vrl) RefreshOp(row int, _ float64) Op {
	if s.rcount[row] == s.mprsf[row] {
		s.rcount[row] = 0
		return Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
	}
	s.rcount[row]++
	return Op{Full: false, Cycles: s.rm.PartialCycles, Alpha: s.rm.AlphaPartial}
}

// RefreshOps implements BatchScheduler: Algorithm 1 across a batch, with
// exactly the counter updates RefreshOp would apply entry by entry (the
// counters are per-row, so batch order equals per-row order).
func (s *vrl) RefreshOps(rows []int, _ []float64, ops []Op) {
	full := Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull}
	partial := Op{Full: false, Cycles: s.rm.PartialCycles, Alpha: s.rm.AlphaPartial}
	rc, mp := s.rcount, s.mprsf
	for i, r := range rows {
		if rc[r] == mp[r] {
			rc[r] = 0
			ops[i] = full
		} else {
			rc[r]++
			ops[i] = partial
		}
	}
}

// Periods implements BatchScheduler.
func (s *vrl) Periods(rows []int, out []float64) {
	for i, r := range rows {
		out[i] = s.periods[r]
	}
}

// StablePeriodUntil implements SteadyScheduler. VRL's periods and MPRSF
// mutate only through Upgrade (ECC- or scrub-driven) and its counters only
// through RefreshOp itself and OnAccess - all paths the fast-forward runner
// fences windows against - so the schedule is stable indefinitely between
// those hooks. This holds for VRL-Access too: its extra state change rides
// on OnAccess, which only fires at trace records, and every fast-forward
// horizon stops at the next trace record.
func (s *vrl) StablePeriodUntil(int, float64) float64 { return math.Inf(1) }

// StreamView implements OpStreamer: Algorithm 1 as columns.
func (s *vrl) StreamView() StreamView {
	return StreamView{
		Periods: s.periods,
		RCount:  s.rcount,
		MPRSF:   s.mprsf,
		Full:    Op{Full: true, Cycles: s.rm.FullCycles, Alpha: s.rm.AlphaFull},
		Partial: Op{Full: false, Cycles: s.rm.PartialCycles, Alpha: s.rm.AlphaPartial},
	}
}

// OnAccess resets the partial-refresh counter when the policy is VRL-Access:
// the activation just restored the row to full charge.
func (s *vrl) OnAccess(row int, _ float64) {
	if s.resetOnAccess {
		s.rcount[row] = 0
	}
}

// Upgrader is the optional capability AVATAR-style online mitigation needs:
// demote a misbehaving row to the fastest refresh bin with no partial
// refreshes, effective from its next scheduled refresh.
type Upgrader interface {
	Upgrade(row int)
}

// Upgrade implements Upgrader: the row drops to the smallest configured bin
// and loses its partial refreshes.
func (s *vrl) Upgrade(row int) {
	if row < 0 || row >= len(s.periods) {
		return
	}
	min := s.periods[row]
	for _, p := range s.bins {
		if p < min {
			min = p
		}
	}
	s.periods[row] = min
	s.mprsf[row] = 0
	s.rcount[row] = 0
}

// MPRSFHistogram summarizes a VRL scheduler's per-row MPRSF assignment:
// index i counts rows with MPRSF == i.
func MPRSFHistogram(s Scheduler, rows int) []int {
	max := 0
	for r := 0; r < rows; r++ {
		if m := s.MPRSF(r); m > max {
			max = m
		}
	}
	h := make([]int, max+1)
	for r := 0; r < rows; r++ {
		h[s.MPRSF(r)]++
	}
	return h
}

// UpgradeRows returns a copy of the profile with the given rows' profiled
// retention pinned to the given refresh bin: the AVATAR-style mitigation for
// rows caught misbehaving at runtime (variable retention time). Upgraded
// rows land in the fastest bin and receive MPRSF 0 from any subsequent
// scheduler construction.
func UpgradeRows(profile *retention.BankProfile, rows []int, bin float64) *retention.BankProfile {
	out := &retention.BankProfile{
		Geom:     profile.Geom,
		True:     profile.True,
		Profiled: append([]float64(nil), profile.Profiled...),
	}
	for _, r := range rows {
		if r >= 0 && r < len(out.Profiled) {
			out.Profiled[r] = bin
		}
	}
	return out
}
