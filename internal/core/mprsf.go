package core

import (
	"math"
	"sync"

	"vrldram/internal/retention"
)

// mprsfKey identifies one family of MPRSF computations: everything that
// shapes the partial-refresh recursion except the row's decay factor. Rows,
// bins, and even whole experiments that share a restore model, guardband,
// and counter width share one table.
type mprsfKey struct {
	alphaPartial float64
	guardband    float64
	maxPartials  int
}

// MPRSFTable memoizes ComputeMPRSF for one (restore model, guardband,
// counter width) configuration. A row's retention time and refresh period
// enter the schedule recursion only through the scalar decay factor
// d = decay.Factor(period, tret), and the recursion's outcome is monotone
// non-decreasing in d (each scheduled sensing charge is a product/affine
// chain that grows with d), so the whole function collapses to at most
// maxPartials threshold values of d. The table finds each threshold once by
// bisection to exact float64 adjacency; after that, assigning a row costs
// one decay evaluation plus a scan of <= maxPartials thresholds instead of
// the full recursion per row.
//
// The memoization is exact: MPRSF returns bit-identical results to
// ComputeMPRSF for every input (the determinism tests in core assert this),
// so schedulers built through the table are indistinguishable from ones
// built row by row.
type MPRSFTable struct {
	key mprsfKey
	// thresholds[m-1] is the smallest decay factor admitting at least m
	// partial refreshes; the slice is non-decreasing and may be shorter than
	// maxPartials when high counts are unreachable even at d = 1.
	thresholds []float64
	// expQLo/expQHi bracket each threshold's boundary in the ratio domain
	// q = period/tret for the exponential decay law, where d = 2^-q depends
	// on period and tret only through q. q <= expQLo[m] certainly satisfies
	// d >= thresholds[m], q >= expQHi[m] certainly fails it, and the
	// 16-ulp-wide band between them falls back to evaluating 2^-q - so
	// assigning a row under ExpDecay almost never costs an Exp2 at all,
	// which is what makes scheduler construction cheap at fleet scale.
	expQLo []float64
	expQHi []float64
}

// mprsfTables caches tables process-wide; concurrent sweep cells share them.
var mprsfTables sync.Map // mprsfKey -> *MPRSFTable

// MPRSFTableFor returns the (cached) memo table for the configuration. Safe
// for concurrent use; the table itself is immutable once built.
func MPRSFTableFor(rm RestoreModel, guardband float64, maxPartials int) *MPRSFTable {
	key := mprsfKey{alphaPartial: rm.AlphaPartial, guardband: guardband, maxPartials: maxPartials}
	if t, ok := mprsfTables.Load(key); ok {
		return t.(*MPRSFTable)
	}
	t, _ := mprsfTables.LoadOrStore(key, newMPRSFTable(key))
	return t.(*MPRSFTable)
}

func newMPRSFTable(key mprsfKey) *MPRSFTable {
	t := &MPRSFTable{key: key}
	if key.maxPartials <= 0 {
		return t
	}
	t.thresholds = make([]float64, 0, key.maxPartials)
	eval := func(d float64) int {
		return mprsfFromFactor(d, key.alphaPartial, key.guardband, key.maxPartials)
	}
	for m := 1; m <= key.maxPartials; m++ {
		if eval(1) < m {
			// Not even a decay-free row reaches m partials (the guardband is
			// at or above 1); higher counts are unreachable too.
			break
		}
		if eval(0) >= m {
			// Degenerate guardband <= 0: every row gets m partials.
			t.thresholds = append(t.thresholds, 0)
			continue
		}
		// Bisection invariant: eval(lo) < m <= eval(hi). The loop ends when
		// the arithmetic midpoint stops separating lo and hi, i.e. they are
		// adjacent float64 values, so hi is the exact minimal d with
		// eval(d) >= m.
		lo, hi := 0.0, 1.0
		for {
			mid := lo + (hi-lo)/2
			if mid <= lo || mid >= hi {
				break
			}
			if eval(mid) >= m {
				hi = mid
			} else {
				lo = mid
			}
		}
		t.thresholds = append(t.thresholds, hi)
	}
	t.expQLo = make([]float64, len(t.thresholds))
	t.expQHi = make([]float64, len(t.thresholds))
	for m, th := range t.thresholds {
		t.expQLo[m], t.expQHi[m] = expRatioBracket(th)
	}
	return t
}

// expRatioBracket inverts one decay-factor threshold into the q =
// period/tret ratio domain of the exponential law: it brackets the boundary
// between {q : Exp2(-q) >= th} and its complement. The brackets sit a
// relative 1e-13 away from the bisected boundary - orders of magnitude more
// than math.Exp2's sub-ulp evaluation error moves the comparison, so the
// bracketed claims hold even if the implementation wobbles by an ulp right
// at the boundary, while the band between them is thin enough that a row
// essentially never lands in it (and simply pays one exact evaluation when
// it does). Boundaries too close to q = 0 (thresholds within an ulp of 1,
// where 2^-q is flat at double precision) get no fast bracket at all.
func expRatioBracket(th float64) (qLo, qHi float64) {
	if th <= 0 {
		// Every q qualifies (2^-q >= 0 even after underflow).
		return math.Inf(1), math.Inf(1)
	}
	// Bisection invariant: Exp2(-lo) >= th, Exp2(-hi) < th. lo = 0 holds
	// because thresholds lie in (0, 1]; hi = 2048 underflows 2^-q to zero.
	lo, hi := 0.0, 2048.0
	for {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if math.Exp2(-mid) >= th {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo < 1.0/64 {
		// Degenerate flat region: the 1e-13 relative margin would not
		// dominate the evaluation error here, so disable the fast bracket
		// and let every row in this regime evaluate exactly.
		return math.Inf(-1), math.Inf(1)
	}
	return lo * (1 - 1e-13), hi * (1 + 1e-13)
}

// MPRSF returns exactly what ComputeMPRSF would for the same inputs, using
// the memoized thresholds.
func (t *MPRSFTable) MPRSF(tret, period float64, decay retention.DecayModel) int {
	if t.key.maxPartials <= 0 || tret <= 0 || period <= 0 {
		return 0
	}
	if _, ok := decay.(retention.ExpDecay); ok {
		// ExpDecay's factor depends on (period, tret) only through
		// q = period/tret (d = 2^-q), so the threshold scan runs in the
		// ratio domain, paying an Exp2 only for a q inside a bracket's
		// guard band - where the evaluation is the exact one Factor would
		// have produced, bit for bit.
		q := period / tret
		m := 0
		for m < len(t.thresholds) {
			if q <= t.expQLo[m] {
				m++
				continue
			}
			if q >= t.expQHi[m] || math.Exp2(-q) < t.thresholds[m] {
				break
			}
			m++
		}
		return m
	}
	d := decay.Factor(period, tret)
	if math.IsNaN(d) || d < 0 || d > 1 {
		// Outside the table's bisection domain; fall back to the recursion.
		return mprsfFromFactor(d, t.key.alphaPartial, t.key.guardband, t.key.maxPartials)
	}
	m := 0
	for m < len(t.thresholds) && d >= t.thresholds[m] {
		m++
	}
	return m
}
