package core

import (
	"math"
	"sync"

	"vrldram/internal/retention"
)

// mprsfKey identifies one family of MPRSF computations: everything that
// shapes the partial-refresh recursion except the row's decay factor. Rows,
// bins, and even whole experiments that share a restore model, guardband,
// and counter width share one table.
type mprsfKey struct {
	alphaPartial float64
	guardband    float64
	maxPartials  int
}

// MPRSFTable memoizes ComputeMPRSF for one (restore model, guardband,
// counter width) configuration. A row's retention time and refresh period
// enter the schedule recursion only through the scalar decay factor
// d = decay.Factor(period, tret), and the recursion's outcome is monotone
// non-decreasing in d (each scheduled sensing charge is a product/affine
// chain that grows with d), so the whole function collapses to at most
// maxPartials threshold values of d. The table finds each threshold once by
// bisection to exact float64 adjacency; after that, assigning a row costs
// one decay evaluation plus a scan of <= maxPartials thresholds instead of
// the full recursion per row.
//
// The memoization is exact: MPRSF returns bit-identical results to
// ComputeMPRSF for every input (the determinism tests in core assert this),
// so schedulers built through the table are indistinguishable from ones
// built row by row.
type MPRSFTable struct {
	key mprsfKey
	// thresholds[m-1] is the smallest decay factor admitting at least m
	// partial refreshes; the slice is non-decreasing and may be shorter than
	// maxPartials when high counts are unreachable even at d = 1.
	thresholds []float64
}

// mprsfTables caches tables process-wide; concurrent sweep cells share them.
var mprsfTables sync.Map // mprsfKey -> *MPRSFTable

// MPRSFTableFor returns the (cached) memo table for the configuration. Safe
// for concurrent use; the table itself is immutable once built.
func MPRSFTableFor(rm RestoreModel, guardband float64, maxPartials int) *MPRSFTable {
	key := mprsfKey{alphaPartial: rm.AlphaPartial, guardband: guardband, maxPartials: maxPartials}
	if t, ok := mprsfTables.Load(key); ok {
		return t.(*MPRSFTable)
	}
	t, _ := mprsfTables.LoadOrStore(key, newMPRSFTable(key))
	return t.(*MPRSFTable)
}

func newMPRSFTable(key mprsfKey) *MPRSFTable {
	t := &MPRSFTable{key: key}
	if key.maxPartials <= 0 {
		return t
	}
	t.thresholds = make([]float64, 0, key.maxPartials)
	eval := func(d float64) int {
		return mprsfFromFactor(d, key.alphaPartial, key.guardband, key.maxPartials)
	}
	for m := 1; m <= key.maxPartials; m++ {
		if eval(1) < m {
			// Not even a decay-free row reaches m partials (the guardband is
			// at or above 1); higher counts are unreachable too.
			break
		}
		if eval(0) >= m {
			// Degenerate guardband <= 0: every row gets m partials.
			t.thresholds = append(t.thresholds, 0)
			continue
		}
		// Bisection invariant: eval(lo) < m <= eval(hi). The loop ends when
		// the arithmetic midpoint stops separating lo and hi, i.e. they are
		// adjacent float64 values, so hi is the exact minimal d with
		// eval(d) >= m.
		lo, hi := 0.0, 1.0
		for {
			mid := lo + (hi-lo)/2
			if mid <= lo || mid >= hi {
				break
			}
			if eval(mid) >= m {
				hi = mid
			} else {
				lo = mid
			}
		}
		t.thresholds = append(t.thresholds, hi)
	}
	return t
}

// MPRSF returns exactly what ComputeMPRSF would for the same inputs, using
// the memoized thresholds.
func (t *MPRSFTable) MPRSF(tret, period float64, decay retention.DecayModel) int {
	if t.key.maxPartials <= 0 || tret <= 0 || period <= 0 {
		return 0
	}
	d := decay.Factor(period, tret)
	if math.IsNaN(d) || d < 0 || d > 1 {
		// Outside the table's bisection domain; fall back to the recursion.
		return mprsfFromFactor(d, t.key.alphaPartial, t.key.guardband, t.key.maxPartials)
	}
	m := 0
	for m < len(t.thresholds) && d >= t.thresholds[m] {
		m++
	}
	return m
}
