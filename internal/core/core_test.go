package core

import (
	"math"
	"testing"
	"testing/quick"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

func paperRM(t *testing.T) RestoreModel {
	t.Helper()
	rm, err := PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestRestoreModelValidate(t *testing.T) {
	good := RestoreModel{PartialCycles: 11, FullCycles: 19, AlphaPartial: 0.9, AlphaFull: 0.999}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RestoreModel{
		{PartialCycles: 0, FullCycles: 19, AlphaPartial: 0.9, AlphaFull: 1},
		{PartialCycles: 20, FullCycles: 19, AlphaPartial: 0.9, AlphaFull: 1},
		{PartialCycles: 11, FullCycles: 19, AlphaPartial: 0, AlphaFull: 1},
		{PartialCycles: 11, FullCycles: 19, AlphaPartial: 0.9, AlphaFull: 0.5},
	}
	for i, rm := range bad {
		if err := rm.Validate(); err == nil {
			t.Errorf("bad model %d not caught", i)
		}
	}
}

func TestPaperRestoreModel(t *testing.T) {
	rm := paperRM(t)
	if rm.PartialCycles != 11 || rm.FullCycles != 19 {
		t.Fatalf("latencies %d/%d, want 11/19", rm.PartialCycles, rm.FullCycles)
	}
	if rm.AlphaPartial < 0.85 || rm.AlphaPartial > 0.95 {
		t.Fatalf("partial alpha %v outside the calibrated band", rm.AlphaPartial)
	}
	if rm.AlphaFull < 0.999 {
		t.Fatalf("full alpha %v", rm.AlphaFull)
	}
}

func TestRestoreModelForSweep(t *testing.T) {
	p := device.Default90nm()
	prev := -1.0
	for tp := 8; tp <= 18; tp++ {
		rm, err := RestoreModelFor(p, device.PaperBank, tp)
		if err != nil {
			t.Fatalf("tau=%d: %v", tp, err)
		}
		if rm.PartialCycles != tp {
			t.Fatalf("tau=%d: got %d", tp, rm.PartialCycles)
		}
		if rm.AlphaPartial < prev {
			t.Fatalf("alpha must be monotone in the partial window (tau=%d)", tp)
		}
		prev = rm.AlphaPartial
	}
	// A too-short window restores essentially nothing.
	rm, err := RestoreModelFor(p, device.PaperBank, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rm.AlphaPartial > 0.2 {
		t.Fatalf("8-cycle partial should restore almost nothing, alpha=%v", rm.AlphaPartial)
	}
}

// --- MPRSF ------------------------------------------------------------------

func TestComputeMPRSFBoundaries(t *testing.T) {
	rm := paperRM(t)
	decay := retention.ExpDecay{}
	// Retention exactly at the period: the first partial's follow-up sensing
	// dips below any guardband above 0.5.
	if m := ComputeMPRSF(0.256, 0.256, rm, decay, 0.86, 3); m != 0 {
		t.Fatalf("tret = period: MPRSF = %d, want 0", m)
	}
	// Huge slack: capped at the counter range.
	if m := ComputeMPRSF(100, 0.256, rm, decay, 0.86, 3); m != 3 {
		t.Fatalf("huge slack: MPRSF = %d, want cap 3", m)
	}
	if m := ComputeMPRSF(100, 0.256, rm, decay, 0.86, 7); m != 7 {
		t.Fatalf("nbits=3 cap: MPRSF = %d, want 7", m)
	}
	// Degenerate inputs.
	if ComputeMPRSF(0, 0.256, rm, decay, 0.86, 3) != 0 {
		t.Fatal("zero retention must give 0")
	}
	if ComputeMPRSF(1, 0, rm, decay, 0.86, 3) != 0 {
		t.Fatal("zero period must give 0")
	}
	if ComputeMPRSF(1, 0.256, rm, decay, 0.86, 0) != 0 {
		t.Fatal("zero cap must give 0")
	}
}

// Property: MPRSF is monotone non-decreasing in retention time.
func TestMPRSFMonotoneInRetention(t *testing.T) {
	rm := paperRM(t)
	decay := retention.ExpDecay{}
	f := func(a, b float64) bool {
		t1 := 0.26 + math.Mod(math.Abs(a), 4)
		t2 := 0.26 + math.Mod(math.Abs(b), 4)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		m1 := ComputeMPRSF(t1, 0.256, rm, decay, 0.86, 3)
		m2 := ComputeMPRSF(t2, 0.256, rm, decay, 0.86, 3)
		return m1 <= m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MPRSF is monotone non-increasing in the guardband.
func TestMPRSFMonotoneInGuardband(t *testing.T) {
	rm := paperRM(t)
	decay := retention.ExpDecay{}
	f := func(raw float64) bool {
		tret := 0.3 + math.Mod(math.Abs(raw), 3)
		prev := 1 << 30
		for _, gb := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
			m := ComputeMPRSF(tret, 0.256, rm, decay, gb, 3)
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (soundness): simulating the schedule ComputeMPRSF returns never
// senses below the guardband, and one more partial would.
func TestMPRSFSoundAndTight(t *testing.T) {
	rm := paperRM(t)
	decay := retention.ExpDecay{}
	const gb = 0.86
	simulate := func(tret float64, partials int) bool {
		// true if every sensing of [partials x partial, then full] >= gb.
		d := decay.Factor(0.256, tret)
		v := 1.0
		for k := 0; k < partials+1; k++ {
			sensed := v * d
			if sensed < gb {
				return false
			}
			if k < partials {
				v = sensed + (1-sensed)*rm.AlphaPartial
			}
		}
		return true
	}
	f := func(raw float64) bool {
		tret := 0.26 + math.Mod(math.Abs(raw), 4)
		m := ComputeMPRSF(tret, 0.256, rm, decay, gb, 3)
		if !simulate(tret, m) && m > 0 {
			return false // unsound
		}
		if m < 3 && simulate(tret, m+1) {
			return false // not tight
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- Config -------------------------------------------------------------------

func TestConfigDefaultsAndValidation(t *testing.T) {
	rm := paperRM(t)
	c := Config{Restore: rm}.withDefaults()
	if c.Guardband != ChargeGuardband || c.NBits != 2 || c.Decay == nil || c.Bins == nil {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.MaxPartials() != 3 {
		t.Fatalf("nbits=2 cap = %d, want 3", c.MaxPartials())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Guardband = 0.3
	if err := bad.Validate(); err == nil {
		t.Fatal("guardband below the sensing limit must be rejected")
	}
	bad = c
	bad.NBits = 40
	if err := bad.Validate(); err == nil {
		t.Fatal("absurd nbits must be rejected")
	}
}

// --- Schedulers ------------------------------------------------------------------

func testProfile(t *testing.T) *retention.BankProfile {
	t.Helper()
	p, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJEDECAlwaysFull(t *testing.T) {
	rm := paperRM(t)
	s, err := NewJEDEC(0.064, rm)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "JEDEC" || s.Period(123) != 0.064 || s.MPRSF(0) != 0 {
		t.Fatal("JEDEC basics wrong")
	}
	for i := 0; i < 10; i++ {
		op := s.RefreshOp(5, float64(i)*0.064)
		if !op.Full || op.Cycles != rm.FullCycles {
			t.Fatal("JEDEC must always issue full refreshes")
		}
	}
	if _, err := NewJEDEC(0, rm); err == nil {
		t.Fatal("zero period must be rejected")
	}
}

func TestRAIDRBinsPeriods(t *testing.T) {
	prof := testProfile(t)
	rm := paperRM(t)
	s, err := NewRAIDR(prof, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "RAIDR" {
		t.Fatal("name")
	}
	seen := map[float64]int{}
	for r := 0; r < prof.Geom.Rows; r++ {
		seen[s.Period(r)]++
		if op := s.RefreshOp(r, 0); !op.Full {
			t.Fatal("RAIDR must always issue full refreshes")
		}
	}
	if seen[0.064] != 68 || seen[0.256] != 7878 {
		t.Fatalf("period assignment does not match Figure 3b: %v", seen)
	}
}

func TestVRLAlgorithm1Pattern(t *testing.T) {
	prof := testProfile(t)
	rm := paperRM(t)
	s, err := NewVRL(prof, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a row with MPRSF = 3 and check the 1-full-per-4-refreshes cycle.
	row := -1
	for r := 0; r < prof.Geom.Rows; r++ {
		if s.MPRSF(r) == 3 {
			row = r
			break
		}
	}
	if row < 0 {
		t.Fatal("no row with MPRSF = 3")
	}
	fulls := 0
	for i := 0; i < 40; i++ {
		if s.RefreshOp(row, 0).Full {
			fulls++
		}
	}
	if fulls != 10 {
		t.Fatalf("40 refreshes of an MPRSF=3 row: %d fulls, want 10", fulls)
	}
	// A row with MPRSF = 0 always refreshes fully.
	row0 := -1
	for r := 0; r < prof.Geom.Rows; r++ {
		if s.MPRSF(r) == 0 {
			row0 = r
			break
		}
	}
	if row0 < 0 {
		t.Fatal("no row with MPRSF = 0")
	}
	for i := 0; i < 8; i++ {
		if !s.RefreshOp(row0, 0).Full {
			t.Fatal("MPRSF=0 row must always get full refreshes")
		}
	}
	// Plain VRL ignores accesses.
	before := s.RefreshOp(row, 0)
	s.OnAccess(row, 0)
	_ = before
}

func TestVRLAccessResetsCounter(t *testing.T) {
	prof := testProfile(t)
	rm := paperRM(t)
	s, err := NewVRLAccess(prof, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "VRL-Access" {
		t.Fatal("name")
	}
	row := -1
	for r := 0; r < prof.Geom.Rows; r++ {
		if s.MPRSF(r) == 3 {
			row = r
			break
		}
	}
	if row < 0 {
		t.Fatal("no row with MPRSF = 3")
	}
	// With an access before every refresh, no full refresh is ever due.
	for i := 0; i < 20; i++ {
		s.OnAccess(row, float64(i))
		if op := s.RefreshOp(row, float64(i)); op.Full {
			t.Fatal("covered row must only receive partial refreshes")
		}
	}
}

func TestVRLSteadyStatePhases(t *testing.T) {
	// Counters must start spread across [0, mprsf], not all at zero: a
	// finite window then sees steady-state behaviour.
	prof := testProfile(t)
	rm := paperRM(t)
	s, err := NewVRL(prof, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	v := s.(*vrl)
	seen := map[int]bool{}
	for r := 0; r < prof.Geom.Rows; r++ {
		if v.mprsf[r] == 3 {
			seen[v.rcount[r]] = true
		}
		if v.rcount[r] < 0 || v.rcount[r] > v.mprsf[r] {
			t.Fatalf("row %d: rcount %d outside [0,%d]", r, v.rcount[r], v.mprsf[r])
		}
	}
	for phase := 0; phase <= 3; phase++ {
		if !seen[phase] {
			t.Fatalf("no MPRSF=3 row starts at phase %d", phase)
		}
	}
}

func TestMPRSFHistogram(t *testing.T) {
	prof := testProfile(t)
	rm := paperRM(t)
	s, err := NewVRL(prof, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	h := MPRSFHistogram(s, prof.Geom.Rows)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != prof.Geom.Rows {
		t.Fatalf("histogram sums to %d, want %d", total, prof.Geom.Rows)
	}
	if len(h) != 4 {
		t.Fatalf("histogram length %d, want 4 (nbits=2)", len(h))
	}
	if h[0] == 0 || h[3] == 0 {
		t.Fatalf("calibrated profile should populate both ends: %v", h)
	}
}

func TestSchedulerConstructorErrors(t *testing.T) {
	prof := testProfile(t)
	bad := Config{Restore: RestoreModel{}}
	if _, err := NewRAIDR(prof, bad); err == nil {
		t.Fatal("invalid restore model must be rejected")
	}
	if _, err := NewVRL(prof, bad); err == nil {
		t.Fatal("invalid restore model must be rejected")
	}
	if _, err := NewVRLAccess(prof, bad); err == nil {
		t.Fatal("invalid restore model must be rejected")
	}
}

func TestUpgradeRows(t *testing.T) {
	prof := testProfile(t)
	up := UpgradeRows(prof, []int{0, 5, 99999, -3}, retention.RAIDRBins[0])
	if up.Profiled[0] != retention.RAIDRBins[0] || up.Profiled[5] != retention.RAIDRBins[0] {
		t.Fatal("named rows not upgraded")
	}
	if up.Profiled[1] != prof.Profiled[1] {
		t.Fatal("other rows must be untouched")
	}
	if prof.Profiled[0] == retention.RAIDRBins[0] && prof.Profiled[5] == retention.RAIDRBins[0] {
		t.Skip("profile coincidentally already at the lowest bin")
	}
	// The original profile is not mutated.
	if &up.Profiled[0] == &prof.Profiled[0] {
		t.Fatal("UpgradeRows must copy the profiled slice")
	}
	// Upgraded rows get MPRSF 0 and the fastest period.
	rm := paperRM(t)
	s, err := NewVRL(up, Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	if s.MPRSF(0) != 0 || s.Period(0) != retention.RAIDRBins[0] {
		t.Fatalf("upgraded row: mprsf=%d period=%v", s.MPRSF(0), s.Period(0))
	}
}
