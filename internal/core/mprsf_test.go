package core

import (
	"math/rand"
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

// TestMPRSFTableMatchesDirect is the exactness contract of the memoization:
// for every input, the threshold table must return bit-identical results to
// the direct per-row recursion.
func TestMPRSFTableMatchesDirect(t *testing.T) {
	rm, err := PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	decays := []retention.DecayModel{retention.ExpDecay{}, retention.LinearDecay{}}
	bins := retention.SortedBins(retention.RAIDRBins)

	for _, gb := range []float64{retention.SenseLimit, 0.80, ChargeGuardband, 0.95, 0.999} {
		for _, maxP := range []int{0, 1, 2, 3, 7, 15} {
			table := MPRSFTableFor(rm, gb, maxP)
			rng := rand.New(rand.NewSource(int64(maxP)*1000 + int64(gb*1e6)))
			for i := 0; i < 2000; i++ {
				tret := 0.03 + 5*rng.Float64()
				period := bins[rng.Intn(len(bins))]
				if i%7 == 0 {
					period = 0.01 + rng.Float64() // off-bin periods too
				}
				for _, decay := range decays {
					want := ComputeMPRSF(tret, period, rm, decay, gb, maxP)
					got := table.MPRSF(tret, period, decay)
					if got != want {
						t.Fatalf("MPRSFTable(gb=%g, maxP=%d).MPRSF(tret=%v, period=%v, %s) = %d, direct = %d",
							gb, maxP, tret, period, decay.Name(), got, want)
					}
				}
			}
		}
	}
}

// TestMPRSFTableDegenerate pins the edge cases: non-positive inputs, a
// guardband above 1 (no partials reachable), and a guardband at 0 (all
// partials reachable).
func TestMPRSFTableDegenerate(t *testing.T) {
	rm, err := PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	decay := retention.ExpDecay{}

	over := newMPRSFTable(mprsfKey{alphaPartial: rm.AlphaPartial, guardband: 1.5, maxPartials: 3})
	if got := over.MPRSF(1.0, 0.064, decay); got != 0 {
		t.Fatalf("guardband>1: got %d, want 0", got)
	}
	zero := newMPRSFTable(mprsfKey{alphaPartial: rm.AlphaPartial, guardband: 0, maxPartials: 3})
	if got := zero.MPRSF(1.0, 0.064, decay); got != 3 {
		t.Fatalf("guardband=0: got %d, want 3", got)
	}
	table := MPRSFTableFor(rm, ChargeGuardband, 3)
	if got := table.MPRSF(0, 0.064, decay); got != 0 {
		t.Fatalf("tret=0: got %d, want 0", got)
	}
	if got := table.MPRSF(1.0, 0, decay); got != 0 {
		t.Fatalf("period=0: got %d, want 0", got)
	}
	if got := table.MPRSF(1.0, 0.064, decay); got != ComputeMPRSF(1.0, 0.064, rm, decay, ChargeGuardband, 3) {
		t.Fatalf("table disagrees with direct on a nominal row")
	}
}
