// Package core implements the paper's primary contribution: the VRL-DRAM
// mechanism (Section 3). It computes, per DRAM row, the number of
// low-latency partial refreshes the row can reliably sustain between two
// full refreshes (MPRSF - mean partial refreshes to sensing failure), and
// implements the refresh scheduling policies the paper evaluates:
//
//   - the JEDEC baseline (every row fully refreshed every 64 ms),
//   - RAIDR (Liu et al., ISCA 2012): retention-binned full refreshes,
//   - VRL (Algorithm 1): RAIDR's binning plus MPRSF-scheduled partial
//     refreshes,
//   - VRL-Access: VRL plus counter resets on row activations, which fully
//     restore charge for free.
package core

import (
	"fmt"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/device"
	"vrldram/internal/retention"
)

// RestoreModel captures what the memory controller needs to know about the
// two refresh operation types: their scheduled latency in DRAM cycles and
// the normalized restore coefficient each delivers (the alpha of
// v' = v + (1-v)*alpha).
type RestoreModel struct {
	PartialCycles int     // scheduled latency of a partial refresh
	FullCycles    int     // scheduled latency of a full refresh
	AlphaPartial  float64 // restore coefficient of a partial refresh
	AlphaFull     float64 // restore coefficient of a full refresh
}

// Validate reports the first unusable field.
func (m RestoreModel) Validate() error {
	switch {
	case m.PartialCycles <= 0:
		return fmt.Errorf("core: PartialCycles must be positive, got %d", m.PartialCycles)
	case m.FullCycles < m.PartialCycles:
		return fmt.Errorf("core: FullCycles %d must be >= PartialCycles %d", m.FullCycles, m.PartialCycles)
	case m.AlphaPartial <= 0 || m.AlphaPartial > 1:
		return fmt.Errorf("core: AlphaPartial %g outside (0,1]", m.AlphaPartial)
	case m.AlphaFull < m.AlphaPartial || m.AlphaFull > 1:
		return fmt.Errorf("core: AlphaFull %g must lie in [AlphaPartial,1]", m.AlphaFull)
	}
	return nil
}

// PaperRestoreModel returns the paper's Section 3.1 operating point
// (tau_partial = 11 cycles, tau_full = 19 cycles) with restore coefficients
// derived from the analytical model at the corresponding post-sensing
// windows (4 and 12 cycles).
func PaperRestoreModel(p device.Params, geom device.BankGeometry) (RestoreModel, error) {
	m, err := analytic.New(p, geom)
	if err != nil {
		return RestoreModel{}, err
	}
	dv, err := m.DefaultDvbl()
	if err != nil {
		return RestoreModel{}, err
	}
	rm := RestoreModel{
		PartialCycles: analytic.TauPartialCycles,
		FullCycles:    analytic.TauFullCycles,
		AlphaPartial:  m.RestoreAlpha(float64(analytic.TauPostPartialCycles)*p.TCK, dv),
		AlphaFull:     m.RestoreAlpha(float64(analytic.TauPostFullCycles)*p.TCK, dv),
	}
	if err := rm.Validate(); err != nil {
		return RestoreModel{}, err
	}
	return rm, nil
}

// RestoreModelFor derives a restore model for an arbitrary partial-refresh
// latency (in total cycles, >= the non-post overhead), keeping the full
// refresh at the paper's operating point. This powers the Section 3.1
// tau_partial trade-off sweep.
func RestoreModelFor(p device.Params, geom device.BankGeometry, partialCycles int) (RestoreModel, error) {
	m, err := analytic.New(p, geom)
	if err != nil {
		return RestoreModel{}, err
	}
	dv, err := m.DefaultDvbl()
	if err != nil {
		return RestoreModel{}, err
	}
	overhead := analytic.TauFullCycles - analytic.TauPostFullCycles // eq + pre + fixed
	postCycles := partialCycles - overhead
	if postCycles < 0 {
		postCycles = 0
	}
	rm := RestoreModel{
		PartialCycles: partialCycles,
		FullCycles:    analytic.TauFullCycles,
		AlphaPartial:  m.RestoreAlpha(float64(postCycles)*p.TCK, dv),
		AlphaFull:     m.RestoreAlpha(float64(analytic.TauPostFullCycles)*p.TCK, dv),
	}
	// A degenerate partial refresh (alpha = 0) is representable: MPRSF will
	// come out 0 and the sweep will show no benefit, which is the point of
	// the trade-off plot. Only validate structure, not usefulness.
	if rm.AlphaPartial <= 0 {
		rm.AlphaPartial = 1e-9
	}
	if err := rm.Validate(); err != nil {
		return RestoreModel{}, err
	}
	return rm, nil
}

// ChargeGuardband is the default minimum normalized charge the MPRSF
// computation keeps every scheduled sensing above. It is deliberately far
// above the raw 50% sensing limit: the margin absorbs data-pattern
// dependence, sneak-path leakage, bitline coupling noise and
// variable-retention-time drift - the effects the paper's Section 2 model
// and its cited profiling works (REAPER, AVATAR) account for.
const ChargeGuardband = 0.86

// ComputeMPRSF returns the number of consecutive partial refreshes a row can
// sustain after a full refresh, such that the charge at every scheduled
// sensing instant (including the closing full refresh) stays at or above the
// guardband threshold. The result is capped at maxPartials (the counter
// range, 2^nbits - 1).
//
// tret is the PROFILED (derated) retention time; period is the row's binned
// refresh period; decay is the leakage law.
func ComputeMPRSF(tret, period float64, rm RestoreModel, decay retention.DecayModel, guardband float64, maxPartials int) int {
	if maxPartials <= 0 {
		return 0
	}
	if tret <= 0 || period <= 0 {
		return 0
	}
	return mprsfFromFactor(decay.Factor(period, tret), rm.AlphaPartial, guardband, maxPartials)
}

// mprsfFromFactor is the partial-refresh recursion of ComputeMPRSF with the
// row's per-period decay factor d = decay.Factor(period, tret) already
// evaluated. The row's retention and refresh period enter the schedule only
// through d, so everything downstream of it can be shared across rows.
//
// Invariant: at the top of iteration m, v is the charge right after refresh
// #m (refresh #0 being the initial full refresh), with refreshes 1..m
// scheduled partial. sensed is then the charge refresh #(m+1) reads.
// Scheduling p partials requires the sensing at refreshes 1..p+1 (the last
// one full) to stay above the guardband, so the first failing index m+1 caps
// p at m-1.
func mprsfFromFactor(d, alphaPartial, guardband float64, maxPartials int) int {
	v := 1.0
	for m := 0; m <= maxPartials; m++ {
		sensed := v * d
		if sensed < guardband {
			if m == 0 {
				// Even an all-full schedule dips below the guardband; the
				// binning still keeps it above the raw sensing limit, so the
				// row simply gets no partial refreshes.
				return 0
			}
			return m - 1
		}
		if m == maxPartials {
			break
		}
		// Refresh m+1 is a partial refresh.
		v = sensed + (1-sensed)*alphaPartial
	}
	return maxPartials
}
