package exp

import (
	"strconv"
	"testing"
)

func TestResilience(t *testing.T) {
	r, err := Resilience(Default())
	if err != nil {
		t.Fatal(err)
	}
	const policies = 3
	if len(r.Rows) != 5*policies {
		t.Fatalf("rows = %d, want 5 faults x %d policies", len(r.Rows), policies)
	}
	viol := func(row []string) int {
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("violations cell %q: %v", row[2], err)
		}
		return n
	}
	for _, row := range r.Rows {
		fault, policy := row[0], row[1]
		switch {
		case fault == "none":
			if viol(row) != 0 {
				t.Errorf("%s violates with no fault injected: %d", policy, viol(row))
			}
		case policy == "VRL":
			if viol(row) == 0 {
				t.Errorf("unguarded VRL survived %q; the campaign demonstrates nothing", fault)
			}
		case policy == "VRL+guard":
			if viol(row) != 0 {
				t.Errorf("guarded VRL lost data under %q: %d violations", fault, viol(row))
			}
		}
	}
}
