package exp

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// parallelizedExperiments lists every experiment whose cells fan out through
// forEachCell. The determinism test below is the contract that lets them:
// any experiment added here (or newly parallelized without being added -
// keep this list in sync) must produce byte-identical Results at every
// worker count.
var parallelizedExperiments = []string{
	"fig4", "perf", "sec31",
	"abl-guardband", "abl-nbits", "abl-decay", "abl-coverage",
	"abl-temp", "abl-density",
	"abl-rank", "abl-rankperf", "abl-elastic", "abl-salp",
	"resilience", "scrub",
}

// TestParallelDeterminism is the Workers=1 vs Workers=8 contract: for every
// parallelized experiment and two seeds, the rendered Result (headers, every
// row cell, every note) must be byte-identical regardless of how the cells
// were scheduled.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every parallelized experiment four times")
	}
	for _, id := range parallelizedExperiments {
		run, err := Find(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, seed := range []int64{42, 7} {
			cfg := Default()
			cfg.Duration = 0.128 // equality is the assertion, not the values
			cfg.Seed = seed

			cfg.Workers = 1
			seq, err := run(cfg)
			if err != nil {
				t.Fatalf("%s seed=%d workers=1: %v", id, seed, err)
			}
			cfg.Workers = 8
			par, err := run(cfg)
			if err != nil {
				t.Fatalf("%s seed=%d workers=8: %v", id, seed, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s seed=%d: Workers=1 and Workers=8 results differ\nworkers=1: %+v\nworkers=8: %+v",
					id, seed, seq, par)
			}
		}
	}
}

func TestForEachCellVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 37
		var visited [n]int32
		cfg := Config{Workers: workers}
		err := forEachCell(cfg, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&visited[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range visited {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachCellFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var cancelled int32
	cfg := Config{Workers: 4}
	err := forEachCell(cfg, 64, func(ctx context.Context, i int) error {
		if i == 5 {
			return boom
		}
		if ctx.Err() != nil {
			atomic.AddInt32(&cancelled, 1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestForEachCellZeroAndSequential(t *testing.T) {
	if err := forEachCell(Config{}, 0, nil); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
	// Workers=1 runs in submission order on the caller's goroutine.
	var order []int
	err := forEachCell(Config{Workers: 1}, 5, func(_ context.Context, i int) error {
		order = append(order, i) // no atomics needed: sequential contract
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
	// Sequential path stops at the first error without visiting the rest.
	boom := errors.New("boom")
	calls := 0
	err = forEachCell(Config{Workers: 1}, 5, func(_ context.Context, i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want boom after 3 calls", err, calls)
	}
}
