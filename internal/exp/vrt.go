package exp

import (
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// VRTImpact is the AVATAR-motivated extension experiment: variable retention
// time breaks any STATIC retention profile (a row profiled in its
// high-retention state can enter a low state at runtime), and the fix the
// literature converged on - upgrading misbehaving rows to the fastest
// refresh bin once caught - restores safety at negligible overhead cost.
//
// Three configurations run over two back-to-back windows:
//
//  1. no VRT (the paper's baseline assumption),
//  2. VRT active, static VRL profile (violations appear),
//  3. VRT active, AVATAR-style mitigation: rows caught misbehaving in
//     window 1 are upgraded to the 64 ms bin (MPRSF 0) for window 2.
func VRTImpact(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	vrt := retention.DefaultVRT()

	run := func(profile *retention.BankProfile, withVRT bool, opts sim.Options) (sim.Stats, *dram.Bank, error) {
		sched, err := core.NewVRL(profile, scfg)
		if err != nil {
			return sim.Stats{}, nil, err
		}
		bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return sim.Stats{}, nil, err
		}
		if withVRT {
			v := vrt
			if err := bank.SetVRT(&v); err != nil {
				return sim.Stats{}, nil, err
			}
		}
		st, err := sim.Run(bank, sched, nil, opts)
		if err != nil {
			return sim.Stats{}, nil, err
		}
		return st, bank, nil
	}

	r := &Result{
		ID:      "abl-vrt",
		Title:   "Variable retention time vs static profiles, with AVATAR-style mitigation",
		Headers: []string{"configuration", "violations", "ECC corrected", "uncorrectable", "rows upgraded"},
	}

	// 1. Baseline: no VRT.
	st, _, err := run(f.profile, false, f.opts)
	if err != nil {
		return nil, err
	}
	r.AddRow("no VRT (paper baseline)", fmt.Sprintf("%d", st.Violations), "-", "-", "-")

	// 2. VRT, unmitigated.
	st1, bank1, err := run(f.profile, true, f.opts)
	if err != nil {
		return nil, err
	}
	r.AddRow("VRT, static profile", fmt.Sprintf("%d", st1.Violations), "-", "-", "-")

	// 3. Offline mitigation via the patrol engine: window 1's violation log
	// marks rows suspect (NoteViolation), one maintenance-window sweep over
	// the window-1 bank catches rows still sagging at the boundary, and
	// every row the pipeline distrusts is upgraded to the fastest bin for
	// window 2. Same classify/repair code as the online scrubber, driven
	// offline.
	store, err := scrub.NewBankStore(bank1, ecc.DefaultClassifier())
	if err != nil {
		return nil, err
	}
	scr, err := scrub.New(store, scrub.Config{})
	if err != nil {
		return nil, err
	}
	for _, v := range bank1.Violations() {
		scr.NoteViolation(v.Row)
	}
	if err := scr.SweepOnce(f.opts.Duration); err != nil {
		return nil, err
	}
	rows := scr.Suspects()
	upgraded := core.UpgradeRows(f.profile, rows, retention.RAIDRBins[0])
	st2, _, err := run(upgraded, true, f.opts)
	if err != nil {
		return nil, err
	}
	r.AddRow("VRT, offline scrub+upgrade", fmt.Sprintf("%d", st2.Violations), "-", "-", fmt.Sprintf("%d", len(rows)))

	// 4. Online mitigation: SECDED ECC corrects single-bit sags and the
	// controller upgrades the row on the spot (AVATAR proper).
	classifier := ecc.DefaultClassifier()
	eccOpts := f.opts
	eccOpts.ECC = &classifier
	eccOpts.UpgradeOnCorrect = true
	st3, _, err := run(f.profile, true, eccOpts)
	if err != nil {
		return nil, err
	}
	r.AddRow("VRT, online ECC+AVATAR",
		fmt.Sprintf("%d", st3.Violations),
		fmt.Sprintf("%d", st3.CorrectedErrors),
		fmt.Sprintf("%d", st3.UncorrectableErrors),
		fmt.Sprintf("%d", st3.RowsUpgraded))

	if st1.Violations == 0 {
		r.AddNote("WARNING: VRT produced no violations; the telegraph parameters are too benign for this profile")
	} else {
		reduction := 100 * (1 - float64(st2.Violations)/float64(st1.Violations))
		r.AddNote("offline: upgrading the %d caught rows removes %.0f%% of VRT violations in the next window", len(rows), reduction)
		r.AddNote("online: of %d sub-limit sensings, ECC corrected %d and %d were uncorrectable; each correction upgraded the row immediately",
			st3.Violations, st3.CorrectedErrors, st3.UncorrectableErrors)
	}
	r.AddNote("static retention-aware refresh (RAIDR and VRL alike) needs online mitigation against VRT; the paper cites AVATAR for exactly this")
	return r, nil
}
