package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/memctrl"
	"vrldram/internal/retention"
)

// ElasticSweep evaluates elastic refresh (the JEDEC postpone allowance,
// Stuecheli et al.) on top of the refresh policies: under a saturating
// request burst, a due refresh steps behind the queued work instead of
// wedging into it. The technique composes with VRL - postponement removes
// refreshes from the critical path, partial refreshes shrink the ones that
// remain - and the bank model confirms the postponed schedule stays safe.
func ElasticSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	// Near-saturation burst: every request conflicts (row changes each
	// time), so the bank turns one around every ~39 cycles (tRAS-limited
	// precharge + ACT + CAS + burst). Arrivals every 38 cycles run the bank
	// at ~98% utilization: a 19-cycle refresh wedged into the stream builds
	// a backlog that takes many requests to drain - the regime where
	// postponement matters.
	var reqs []memctrl.Request
	for i := 0; i < 30000; i++ {
		reqs = append(reqs, memctrl.Request{
			Arrival: 1000 + int64(i)*38,
			Row:     (i * 37) % cfg.Geom.Rows,
		})
	}

	r := &Result{
		ID:    "abl-elastic",
		Title: "Elastic refresh under a saturating burst",
		Headers: []string{"scheduler", "slack", "avg lat (cyc)", "p95 (cyc)", "max (cyc)",
			"postponed", "violations"},
	}
	scfg := f.schedConfig()
	type cell struct {
		name  string
		mk    func() (core.Scheduler, error)
		slack float64
	}
	var grid []cell
	for _, pol := range []struct {
		name string
		mk   func() (core.Scheduler, error)
	}{
		{"RAIDR", func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) }},
		{"VRL", func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }},
	} {
		for _, slack := range []float64{0, 0.125} {
			grid = append(grid, cell{name: pol.name, mk: pol.mk, slack: slack})
		}
	}
	rows := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(_ context.Context, i int) error {
		c := grid[i]
		sched, err := c.mk()
		if err != nil {
			return err
		}
		bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return err
		}
		st, _, err := memctrl.Run(bank, sched, reqs, memctrl.Options{
			Timing:       memctrl.DefaultTiming(),
			TCK:          cfg.Params.TCK,
			Duration:     cfg.Duration,
			ElasticSlack: c.slack,
		})
		if err != nil {
			return err
		}
		rows[i] = []string{c.name, fmt.Sprintf("%.3f", c.slack),
			fmt.Sprintf("%.1f", st.AvgLatency),
			fmt.Sprintf("%d", st.P95Latency),
			fmt.Sprintf("%d", st.MaxLatency),
			fmt.Sprintf("%d", st.RefreshesPostponed),
			fmt.Sprintf("%d", st.Violations)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("postponement pulls refreshes off the burst's critical path; VRL then shrinks the refreshes that still land in it")
	r.AddNote("the next refresh is scheduled from the original due time (no debt accumulation), and the charge guardband absorbs the extra decay - zero violations")
	return r, nil
}

// SALPSweep evaluates subarray-level parallelism (Kim et al., ISCA'12 -
// the paper's reference [21]) as the complementary technique to VRL: with
// independent subarrays, a refresh blocks only the rows that share its
// local structures, and requests to the rest of the bank proceed. The
// near-saturation burst of ElasticSweep makes the blocking visible.
func SALPSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	var reqs []memctrl.Request
	for i := 0; i < 30000; i++ {
		reqs = append(reqs, memctrl.Request{
			Arrival: 1000 + int64(i)*38,
			Row:     (i * 37) % cfg.Geom.Rows,
		})
	}
	r := &Result{
		ID:    "abl-salp",
		Title: "Subarray-level parallelism x refresh policy (SALP-ideal bound)",
		Headers: []string{"subarrays", "scheduler", "avg lat (cyc)", "p95 (cyc)",
			"stalled by refresh", "violations"},
	}
	scfg := f.schedConfig()
	type cell struct {
		nSub int
		name string
		mk   func() (core.Scheduler, error)
	}
	var grid []cell
	for _, nSub := range []int{1, 2, 8} {
		for _, pol := range []struct {
			name string
			mk   func() (core.Scheduler, error)
		}{
			{"RAIDR", func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) }},
			{"VRL", func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }},
		} {
			grid = append(grid, cell{nSub: nSub, name: pol.name, mk: pol.mk})
		}
	}
	rows := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(_ context.Context, i int) error {
		c := grid[i]
		sched, err := c.mk()
		if err != nil {
			return err
		}
		bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return err
		}
		st, _, err := memctrl.RunSALP(bank, sched, reqs, memctrl.Options{
			Timing:   memctrl.DefaultTiming(),
			TCK:      cfg.Params.TCK,
			Duration: cfg.Duration,
		}, c.nSub)
		if err != nil {
			return err
		}
		rows[i] = []string{fmt.Sprintf("%d", c.nSub), c.name,
			fmt.Sprintf("%.1f", st.AvgLatency),
			fmt.Sprintf("%d", st.P95Latency),
			fmt.Sprintf("%d", st.StalledByRefresh),
			fmt.Sprintf("%d", st.Violations)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("more subarrays spread the burst across independent row buffers AND shrink the share of traffic each refresh can block")
	r.AddNote("SALP and VRL compose: SALP hides refreshes from other subarrays, VRL shortens the blocking inside the refreshed one")
	r.AddNote("the model is SALP-ideal (no shared-bus serialization), so these are upper bounds on the technique")
	return r, nil
}
