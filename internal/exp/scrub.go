package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// Scrub is the self-healing tentpole experiment: the online ECC patrol
// scrubber (internal/scrub) against every fault injector the repository
// has, with the scrubber off and on. Each campaign runs a raw VRL scheduler
// - deliberately unguarded, so the repair work is attributable to the
// patrol pipeline alone - with SECDED classification on every sense.
//
// With the scrubber on, every ECC-corrected sense and every patrol hit
// feeds the detect -> diagnose -> repair -> verify loop: the row is demoted
// or upgraded, re-profiled once with a targeted single-row campaign, and
// quarantined to a spare when no schedule can save it. The table reports
// the violation counts (total and after the convergence window), the
// patrol's coverage, and the repair ledger.
func Scrub(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	seed := cfg.Seed
	settle := 3 * cfg.Duration / 4

	r := &Result{
		ID:    "scrub",
		Title: "Online ECC patrol scrub and self-healing repair vs fault injection",
		Headers: []string{"fault", "scrub", "violations", "late viol", "patrolled",
			"corrected", "uncorr", "reprofiled", "remapped", "healed", "hard fails", "spares left", "SLO misses"},
	}

	// Each (fault, scrub on/off) campaign owns its bank, scheduler stack,
	// and scrubber; the grid fans out on the worker pool.
	type cell struct {
		tc        resilienceCase
		withScrub bool
	}
	var grid []cell
	for _, tc := range faultCases(seed) {
		for _, withScrub := range []bool{false, true} {
			grid = append(grid, cell{tc, withScrub})
		}
	}
	rows := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(ctx context.Context, i int) error {
		tc, withScrub := grid[i].tc, grid[i].withScrub
		schedProf, bankProf, vrt, refresh, err := tc.prepare(f.profile)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", tc.name, err)
		}
		inner, err := core.NewVRL(schedProf, scfg)
		if err != nil {
			return err
		}
		sched := core.Scheduler(inner)
		if refresh {
			inj, err := fault.InjectRefreshFaults(sched, fault.DefaultRefreshFaults(seed+3))
			if err != nil {
				return err
			}
			sched = inj
		}
		bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return err
		}
		if vrt != nil {
			if err := bank.SetVRT(vrt); err != nil {
				return err
			}
		}
		cls := ecc.DefaultClassifier()
		opts := f.opts
		opts.ECC = &cls
		if withScrub {
			store, err := scrub.NewBankStore(bank, cls)
			if err != nil {
				return err
			}
			// The repair target is the inner VRL, never the injector
			// wrapper: an injector forwards repair hooks it cannot honor,
			// and wiring it here would turn every repair into a no-op.
			// One sweep per three tREFW: a patrol read restores the row,
			// so sweeping at the 64 ms tREFW itself would blanket-refresh
			// the whole bank at the fastest bin and mask every fault
			// instead of repairing the weak rows. The slower sweep keeps
			// the patrol a detector, not a refresh policy.
			scr, err := scrub.New(store, scrub.Config{
				Sched:       inner,
				SweepPeriod: 0.192,
				Spares:      64,
				Reprofile: func(row int) (float64, error) {
					return profiler.ProfileRow(bankProf, retention.ExpDecay{}, row, profiler.Options{})
				},
			})
			if err != nil {
				return err
			}
			opts.Scrub = scr
		}
		st, err := sim.RunContext(ctx, bank, sched, nil, opts)
		if err != nil {
			return fmt.Errorf("exp: %s/scrub=%v: %w", tc.name, withScrub, err)
		}
		late := 0
		for _, v := range bank.Violations() {
			if v.Time >= settle {
				late++
			}
		}
		mode := "off"
		if withScrub {
			mode = "on"
		}
		row := []string{
			tc.name, mode,
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%d", late),
		}
		if withScrub {
			row = append(row,
				fmt.Sprintf("%d", st.Scrub.RowsPatrolled),
				fmt.Sprintf("%d", st.Scrub.Corrected),
				fmt.Sprintf("%d", st.Scrub.Uncorrectable),
				fmt.Sprintf("%d", st.Scrub.Reprofiles),
				fmt.Sprintf("%d", st.Scrub.RowsRemapped),
				fmt.Sprintf("%d", st.Scrub.RowsHealed),
				fmt.Sprintf("%d", st.Scrub.HardFails),
				fmt.Sprintf("%d", st.Scrub.SparesLeft),
				fmt.Sprintf("%d", st.Scrub.SLOMisses))
		} else {
			row = append(row, "-", "-", "-", "-", "-", "-", "-", "-", "-")
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)

	r.AddNote("'late viol' counts sense violations after t = %.0f ms, the convergence deadline: a self-healing pipeline must reach and hold zero there even where the raw policy keeps failing", 1000*settle)
	r.AddNote("each campaign is raw VRL + SECDED: repairs are the patrol pipeline's alone (the guard of the resilience table is deliberately absent); faults reuse the resilience experiment's seeded configurations")
	r.AddNote("repair ledger: corrected senses demote/upgrade and trigger one targeted re-profile; uncorrectable senses quarantine the row to one of 64 spares; K=4 consecutive clean patrols heal a suspect row")
	r.AddNote("a patrol read is an activation: its restore silently repairs half-strength refresh restores before they decay into a detection, which is why the truncated-refresh campaign converges with zero ECC events")
	return r, nil
}
