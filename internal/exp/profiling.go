package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/guard"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// profilingGuardband is the EXTRA multiplicative margin the static-guardband
// mechanism stacks on top of the profiler's own derating - the blunt
// alternative to re-profiling: refresh everything faster, always.
const profilingGuardband = 0.8

// guardbandProfile returns a copy of p whose profiled view carries an extra
// derating factor, clamped at the lowest bin so every row stays schedulable
// (a real chip pins such rows to the fastest rate instead of dropping them).
func guardbandProfile(p *retention.BankProfile, factor float64) *retention.BankProfile {
	floor := retention.RAIDRBins[0]
	q := &retention.BankProfile{
		Geom:     p.Geom,
		True:     p.True,
		Profiled: make([]float64, len(p.Profiled)),
	}
	for i, v := range p.Profiled {
		d := v * factor
		if d < floor {
			d = floor
		}
		q.Profiled[i] = d
	}
	return q
}

// Profiling is the survival experiment of the scenario library: every named
// composite-stress scenario in the catalog against four retention-profiling
// mechanisms, scored on what each one actually buys under stress that
// evolves AFTER profiling day.
//
// The mechanisms:
//
//   - one-shot: brute-force profiling once at reference conditions, then raw
//     VRL forever - the paper's implicit baseline;
//   - guardband: the same one-shot profile derated by a further x0.8 static
//     margin - pay refresh overhead up front to absorb drift;
//   - scrub-reprofile: one-shot profile plus the online ECC patrol pipeline,
//     whose corrected/uncorrectable senses trigger targeted per-row
//     re-profiling campaigns and spare-row quarantine (AVATAR-style online
//     re-profiling);
//   - guard-ladder: one-shot profile wrapped in the graceful-degradation
//     guard, which demotes rows down the period ladder on dirty senses.
//
// Every cell simulates the same bank physics: the scenario's composed
// stressor schedule (diurnal thermal cycle, VRT storm, pattern adversary,
// aging ramp, or all four) modulates true retention behind the mechanism's
// back.
func Profiling(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	seed := cfg.Seed

	type mechanism struct {
		name    string
		guarded bool // guard ladder wired
		scrubed bool // ECC + patrol scrub pipeline wired
	}
	mechanisms := []mechanism{
		{"one-shot", false, false},
		{"guardband", false, false},
		{"scrub-reprofile", false, true},
		{"guard-ladder", true, false},
	}
	scenarios := scenario.Names()

	r := &Result{
		ID:    "profiling",
		Title: "Profiling-mechanism survival under composite-stress scenarios",
		Headers: []string{"scenario", "mechanism", "violations", "overhead %",
			"corrected", "uncorr", "reprofiled", "remapped", "hard fails", "spares left", "SLO misses",
			"escalations", "breaker trips"},
	}

	type cell struct {
		scen string
		mech mechanism
	}
	var grid []cell
	for _, sc := range scenarios {
		for _, m := range mechanisms {
			grid = append(grid, cell{sc, m})
		}
	}
	rows := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(ctx context.Context, i int) error {
		sc, m := grid[i].scen, grid[i].mech

		schedProf := f.profile
		if m.name == "guardband" {
			schedProf = guardbandProfile(f.profile, profilingGuardband)
		}
		inner, err := core.NewVRL(schedProf, scfg)
		if err != nil {
			return err
		}
		sched := core.Scheduler(inner)
		repairTarget := core.Scheduler(inner)
		if m.guarded {
			g, err := guard.New(inner, f.profile.Geom.Rows, guard.Config{Restore: f.rm})
			if err != nil {
				return err
			}
			sched, repairTarget = g, g
		}

		bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return err
		}
		// Every scenario redraws its stressor streams from the same master
		// seed; the streams are keyed by stressor label, so the kitchen-sink
		// composition replays exactly the draws of the standalone scenarios.
		env, err := scenario.BuildEnv(scenario.Ref{Name: sc}, cfg.Duration, seed)
		if err != nil {
			return err
		}
		if err := bank.SetModulator(env); err != nil {
			return err
		}

		opts := f.opts
		if m.scrubed {
			cls := ecc.DefaultClassifier()
			store, err := scrub.NewBankStore(bank, cls)
			if err != nil {
				return err
			}
			scr, err := scrub.New(store, scrub.Config{
				Sched:       repairTarget,
				SweepPeriod: 0.192,
				Spares:      64,
				Reprofile: func(row int) (float64, error) {
					return profiler.ProfileRow(f.profile, retention.ExpDecay{}, row, profiler.Options{})
				},
			})
			if err != nil {
				return err
			}
			opts.ECC = &cls
			opts.Scrub = scr
		}
		st, err := sim.RunContext(ctx, bank, sched, nil, opts)
		if err != nil {
			return fmt.Errorf("exp: %s/%s: %w", sc, m.name, err)
		}

		row := []string{
			sc, m.name,
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%.3f", 100*st.OverheadFraction(cfg.Params.TCK)),
		}
		if m.scrubed {
			row = append(row,
				fmt.Sprintf("%d", st.Scrub.Corrected),
				fmt.Sprintf("%d", st.Scrub.Uncorrectable),
				fmt.Sprintf("%d", st.Scrub.Reprofiles),
				fmt.Sprintf("%d", st.Scrub.RowsRemapped),
				fmt.Sprintf("%d", st.Scrub.HardFails),
				fmt.Sprintf("%d", st.Scrub.SparesLeft),
				fmt.Sprintf("%d", st.Scrub.SLOMisses))
		} else {
			row = append(row, "-", "-", "-", "-", "-", "-", "-")
		}
		if m.guarded {
			row = append(row,
				fmt.Sprintf("%d", st.Guard.Escalations),
				fmt.Sprintf("%d", st.Guard.BreakerTrips))
		} else {
			row = append(row, "-", "-")
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)

	r.AddNote("every cell shares one master seed (%d): scenario stressor streams are keyed by label, so two mechanisms under the same scenario face bit-identical stress schedules", seed)
	r.AddNote("the static x%.1f guardband pays its refresh tax under every scenario including 'nominal'; the adaptive mechanisms (scrub-reprofile, guard-ladder) pay only where the stress actually lands", profilingGuardband)
	r.AddNote("'spares left' exhaustion under the kitchen-sink scenario is the survival headline: a mechanism that remaps its way through a storm has no budget left for the aging ramp behind it")
	return r, nil
}
