package exp

import (
	"context"
	"fmt"
	"math/rand"

	"vrldram/internal/area"
	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/power"
	"vrldram/internal/profcache"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
	"vrldram/internal/trace"
	"vrldram/internal/tracecache"
)

// Figure3a reproduces the paper's Figure 3a: the histogram of cell retention
// times for the evaluation bank, sampled from the calibrated distribution
// (in the paper, taken from Liu et al.'s measurements).
func Figure3a(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cells := cfg.Geom.Cells()
	values := make([]float64, cells)
	for i := range values {
		values[i] = cfg.Dist.SampleCell(rng)
	}
	const nBins = 21
	counts, centers, err := retention.Histogram(values, cfg.Dist.WeakMin, cfg.Dist.Max, nBins)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig3a",
		Title:   "DRAM retention time distribution",
		Headers: []string{"retention (ms)", "number of occurrences"},
	}
	peak := 0
	for i, c := range counts {
		r.AddRow(fmt.Sprintf("%.0f", centers[i]*1000), fmt.Sprintf("%d", c))
		if c > peak {
			peak = c
		}
	}
	r.AddNote("%d cells sampled; histogram peak %d occurrences (paper's figure peaks between 30000 and 40000)", cells, peak)
	r.AddNote("support spans %.0f ms to %.0f ms, matching the paper's x-axis", cfg.Dist.WeakMin*1000, cfg.Dist.Max*1000)
	return r, nil
}

// Figure3b reproduces the paper's Figure 3b: rows per refresh-period bin
// after RAIDR binning of the evaluation bank.
func Figure3b(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := retention.NewPaperProfile(cfg.Dist, cfg.Seed)
	if err != nil {
		return nil, err
	}
	counts, err := prof.BinCounts(retention.RAIDRBins)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig3b",
		Title:   "Refresh rates after binning of rows in a DRAM bank",
		Headers: []string{"Refresh period (ms)", "Number of rows in a bank"},
	}
	bins := retention.SortedBins(retention.RAIDRBins)
	for _, b := range bins {
		r.AddRow(fmt.Sprintf("%.0f", b*1000), fmt.Sprintf("%d", counts[b]))
	}
	r.AddNote("paper: 68 / 101 / 145 / 7878 rows")
	return r, nil
}

// fig4Setup bundles the state the trace-driven experiments share.
type fig4Setup struct {
	cfg     Config
	profile *retention.BankProfile
	rm      core.RestoreModel
	opts    sim.Options
}

func newFig4Setup(cfg Config) (*fig4Setup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Profile and restore model come from the shared process-wide caches:
	// every experiment (and every cell of a parallel sweep) reuses one
	// read-only instance instead of resampling 8192 rows per call.
	prof, err := profcache.PaperProfile(cfg.Dist, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rm, err := profcache.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	return &fig4Setup{
		cfg:     cfg,
		profile: prof,
		rm:      rm,
		opts:    sim.Options{Duration: cfg.Duration, TCK: cfg.Params.TCK, Backend: cfg.Backend},
	}, nil
}

// run simulates one scheduler against one trace source on a fresh bank.
func (f *fig4Setup) run(mk func() (core.Scheduler, error), src trace.Source) (sim.Stats, error) {
	return f.runCtx(context.Background(), mk, src)
}

// runCtx is run with cancellation: parallel sweep cells pass the pool's
// context so a failed sibling aborts in-flight simulations.
func (f *fig4Setup) runCtx(ctx context.Context, mk func() (core.Scheduler, error), src trace.Source) (sim.Stats, error) {
	sched, err := mk()
	if err != nil {
		return sim.Stats{}, err
	}
	bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		return sim.Stats{}, err
	}
	return sim.RunContext(ctx, bank, sched, src, f.opts)
}

func (f *fig4Setup) schedConfig() core.Config {
	return core.Config{Restore: f.rm}
}

// Figure4 reproduces the paper's Figure 4: the refresh performance overhead
// (bank-busy refresh cycles) of RAIDR, VRL, and VRL-Access for the PARSEC
// benchmarks and bgsave, normalized to RAIDR.
func Figure4(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) }, nil)
	if err != nil {
		return nil, err
	}
	vrl, err := f.run(func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }, nil)
	if err != nil {
		return nil, err
	}
	vrlRatio := float64(vrl.BusyCycles) / float64(raidr.BusyCycles)

	r := &Result{
		ID:      "fig4",
		Title:   "Refresh performance overhead with real traces (normalized to RAIDR)",
		Headers: []string{"benchmark", "RAIDR", "VRL", "VRL-Access", "violations"},
	}
	// Each benchmark's VRL-Access run is independent: fan the cells out on
	// the worker pool, writing results into per-index slots so the table is
	// identical for every worker count.
	benches := trace.PARSEC()
	rows := make([][]string, len(benches))
	ratios := make([]float64, len(benches))
	err = forEachCell(cfg, len(benches), func(ctx context.Context, i int) error {
		b := benches[i]
		src, err := tracecache.Source(b, cfg.Geom.Rows, cfg.Duration, cfg.Seed)
		if err != nil {
			return err
		}
		va, err := f.runCtx(ctx, func() (core.Scheduler, error) { return core.NewVRLAccess(f.profile, scfg) }, src)
		if err != nil {
			return err
		}
		ratio := float64(va.BusyCycles) / float64(raidr.BusyCycles)
		ratios[i] = ratio
		rows[i] = []string{b.Name, "1.000", fmt.Sprintf("%.3f", vrlRatio), fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", va.Violations+vrl.Violations+raidr.Violations)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sumVA float64
	for i := range benches {
		sumVA += ratios[i]
		r.Rows = append(r.Rows, rows[i])
	}
	avgVA := sumVA / float64(len(benches))
	r.AddRow("average", "1.000", fmt.Sprintf("%.3f", vrlRatio), fmt.Sprintf("%.3f", avgVA), "")
	r.AddNote("RAIDR and VRL are application-independent (flat bars in the paper's figure)")
	r.AddNote("VRL reduction vs RAIDR: %.0f%% (paper: 23%%); VRL-Access: %.0f%% (paper: 34%%)",
		100*(1-vrlRatio), 100*(1-avgVA))
	r.AddNote("ordering RAIDR > VRL > VRL-Access holds for every benchmark; memory-intensive workloads benefit most from VRL-Access")
	return r, nil
}

// PowerComparison reproduces the paper's Section 4.1 power claim: VRL-DRAM
// reduces refresh power by ~12% over RAIDR (evaluated with a DRAMPower-style
// model).
func PowerComparison(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	pm := power.Default90nm(cfg.Params, cfg.Geom)

	r := &Result{
		ID:      "power",
		Title:   "Refresh energy over the simulation window",
		Headers: []string{"scheduler", "activation (uJ)", "peripheral (uJ)", "restore (uJ)", "total (uJ)", "vs RAIDR"},
	}
	var base float64
	for _, mk := range []func() (core.Scheduler, error){
		func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) },
		func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) },
	} {
		st, err := f.run(mk, nil)
		if err != nil {
			return nil, err
		}
		b, err := pm.RefreshEnergy(st, cfg.Params.TCK)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = b.Total
		}
		r.AddRow(st.Scheduler,
			fmt.Sprintf("%.2f", b.Activation*1e6),
			fmt.Sprintf("%.2f", b.Peripheral*1e6),
			fmt.Sprintf("%.2f", b.Restore*1e6),
			fmt.Sprintf("%.2f", b.Total*1e6),
			fmt.Sprintf("%.3f", b.Total/base))
	}
	last := r.Rows[len(r.Rows)-1]
	r.AddNote("VRL refresh power reduction vs RAIDR: %s ratio (paper: 12%% reduction)", last[len(last)-1])
	return r, nil
}

// Table2 reproduces the paper's Table 2: the area overhead of the VRL-DRAM
// control logic at 90 nm for counter widths 2-4.
func Table2(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := area.Default90nm()
	ovs, err := m.Overheads(cfg.Geom, []int{2, 3, 4})
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "tab2",
		Title:   "Area overhead of VRL-DRAM at 90nm",
		Headers: []string{"nbits", "Logic area (um^2)", "% DRAM bank area"},
	}
	for _, o := range ovs {
		r.AddRow(fmt.Sprintf("%d", o.NBits), fmt.Sprintf("%.0f", o.LogicArea), fmt.Sprintf("%.2f%%", o.Percent))
	}
	r.AddNote("paper: 105 / 152 / 200 um^2 at 0.97%% / 1.4%% / 1.85%%")
	return r, nil
}

// TauPartialSweep reproduces the paper's Section 3.1 trade-off: sweeping the
// partial-refresh latency between the minimum schedulable operation and the
// full refresh, showing that too-small tau_partial restores too little
// charge (MPRSF collapses to 0) and too-large tau_partial saves no time; the
// paper's operating point is 11 cycles.
func TauPartialSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "sec31",
		Title:   "tau_partial trade-off (Section 3.1)",
		Headers: []string{"tau_partial (cyc)", "alpha", "rows with MPRSF>0", "VRL/RAIDR"},
	}
	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, f.schedConfig()) }, nil)
	if err != nil {
		return nil, err
	}
	const tpLo, tpHi = 8, 18
	n := tpHi - tpLo + 1
	rows := make([][]string, n)
	ratios := make([]float64, n)
	err = forEachCell(cfg, n, func(ctx context.Context, i int) error {
		tp := tpLo + i
		rm, err := profcache.RestoreModelFor(cfg.Params, cfg.Geom, tp)
		if err != nil {
			return err
		}
		scfg := core.Config{Restore: rm}
		st, err := f.runCtx(ctx, func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }, nil)
		if err != nil {
			return err
		}
		sched, err := core.NewVRL(f.profile, scfg)
		if err != nil {
			return err
		}
		hist := core.MPRSFHistogram(sched, cfg.Geom.Rows)
		withPartials := 0
		for m := 1; m < len(hist); m++ {
			withPartials += hist[m]
		}
		ratios[i] = float64(st.BusyCycles) / float64(raidr.BusyCycles)
		rows[i] = []string{fmt.Sprintf("%d", tp), fmt.Sprintf("%.3f", rm.AlphaPartial),
			fmt.Sprintf("%d", withPartials), fmt.Sprintf("%.3f", ratios[i])}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bestRatio, bestTau := 1.0, 0
	for i := 0; i < n; i++ {
		if ratios[i] < bestRatio {
			bestRatio, bestTau = ratios[i], tpLo+i
		}
		r.Rows = append(r.Rows, rows[i])
	}
	r.AddNote("best tau_partial: %d cycles at VRL/RAIDR = %.3f (paper operating point: 11 cycles)", bestTau, bestRatio)
	return r, nil
}

// GuardbandSweep is the safety ablation: lowering the scheduling guardband
// increases MPRSF (more partial refreshes, lower overhead) until, below the
// level that covers worst-case pattern derating, the bank starts recording
// integrity violations under the worst-case stored pattern.
func GuardbandSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, f.schedConfig()) }, nil)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "abl-guardband",
		Title:   "Guardband vs overhead and safety (worst-case stored pattern)",
		Headers: []string{"guardband", "VRL/RAIDR", "violations (worst pattern)"},
	}
	guardbands := []float64{0.95, 0.90, 0.86, 0.80, 0.70, 0.60, 0.52}
	rows := make([][]string, len(guardbands))
	err = forEachCell(cfg, len(guardbands), func(ctx context.Context, i int) error {
		gb := guardbands[i]
		scfg := core.Config{Restore: f.rm, Guardband: gb}
		sched, err := core.NewVRL(f.profile, scfg)
		if err != nil {
			return err
		}
		// Worst case: the bank stores the alternating pattern, the paper's
		// most leaky configuration.
		bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAlternating)
		if err != nil {
			return err
		}
		st, err := sim.RunContext(ctx, bank, sched, nil, f.opts)
		if err != nil {
			return err
		}
		rows[i] = []string{fmt.Sprintf("%.2f", gb),
			fmt.Sprintf("%.3f", float64(st.BusyCycles)/float64(raidr.BusyCycles)),
			fmt.Sprintf("%d", st.Violations)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("the default guardband (%.2f) keeps the worst pattern violation-free; aggressive guardbands trade safety for overhead", core.ChargeGuardband)
	return r, nil
}

// NBitsSweep ablates the counter width: wider counters admit more partial
// refreshes per full refresh but cost area (Table 2's other axis).
func NBitsSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, f.schedConfig()) }, nil)
	if err != nil {
		return nil, err
	}
	am := area.Default90nm()
	r := &Result{
		ID:      "abl-nbits",
		Title:   "Counter width vs overhead and area",
		Headers: []string{"nbits", "max partials", "VRL/RAIDR", "logic area (um^2)"},
	}
	rows := make([][]string, 4)
	err = forEachCell(cfg, 4, func(ctx context.Context, i int) error {
		nb := i + 1
		scfg := core.Config{Restore: f.rm, NBits: nb}
		st, err := f.runCtx(ctx, func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }, nil)
		if err != nil {
			return err
		}
		la, err := am.LogicArea(nb)
		if err != nil {
			return err
		}
		rows[i] = []string{fmt.Sprintf("%d", nb), fmt.Sprintf("%d", scfg.MaxPartials()),
			fmt.Sprintf("%.3f", float64(st.BusyCycles)/float64(raidr.BusyCycles)),
			fmt.Sprintf("%.0f", la)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("the paper evaluates nbits = 2: most of the benefit at the lowest cost")
	return r, nil
}

// DecaySweep ablates the leakage law: the linear model loses charge faster
// early in the period, so it assigns conservative (lower) MPRSF values.
func DecaySweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "abl-decay",
		Title:   "Leakage law vs MPRSF assignment",
		Headers: []string{"decay model", "rows m=0", "rows m=max", "mean MPRSF"},
	}
	decays := []retention.DecayModel{retention.ExpDecay{}, retention.LinearDecay{}}
	rows := make([][]string, len(decays))
	err = forEachCell(cfg, len(decays), func(_ context.Context, i int) error {
		scfg := core.Config{Restore: f.rm, Decay: decays[i]}
		sched, err := core.NewVRL(f.profile, scfg)
		if err != nil {
			return err
		}
		hist := core.MPRSFHistogram(sched, cfg.Geom.Rows)
		var total, count int
		for m, c := range hist {
			total += m * c
			count += c
		}
		mMax := 0
		if len(hist) > 0 {
			mMax = hist[len(hist)-1]
		}
		rows[i] = []string{decays[i].Name(), fmt.Sprintf("%d", hist[0]), fmt.Sprintf("%d", mMax),
			fmt.Sprintf("%.2f", float64(total)/float64(count))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("exponential decay loses charge faster early in the period, so it is the conservative law: linear assigns weakly higher MPRSF")
	return r, nil
}

// CoverageSweep ablates trace row coverage directly: synthetic sweeps
// touching a controlled fraction of rows per refresh window show how
// VRL-Access's benefit scales with coverage.
func CoverageSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) }, nil)
	if err != nil {
		return nil, err
	}
	vrl, err := f.run(func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) }, nil)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "abl-coverage",
		Title:   "Row coverage vs VRL-Access benefit",
		Headers: []string{"coverage", "VRL-Access/RAIDR", "gain vs VRL"},
	}
	vrlRatio := float64(vrl.BusyCycles) / float64(raidr.BusyCycles)
	coverages := []float64{0, 0.25, 0.5, 0.75, 1.0}
	rows := make([][]string, len(coverages))
	err = forEachCell(cfg, len(coverages), func(ctx context.Context, i int) error {
		cov := coverages[i]
		spec := trace.BenchmarkSpec{
			Name: fmt.Sprintf("sweep-%.0f%%", cov*100), FootprintFrac: maxf(cov, 0.001),
			SweepFrac: 1, HotRows: 0, HotAccessesPerWindow: 0, ZipfS: 1, WriteFrac: 0,
		}
		var src trace.Source = trace.Empty{}
		if cov > 0 {
			s, err := tracecache.Source(spec, cfg.Geom.Rows, cfg.Duration, cfg.Seed)
			if err != nil {
				return err
			}
			src = s
		}
		va, err := f.runCtx(ctx, func() (core.Scheduler, error) { return core.NewVRLAccess(f.profile, scfg) }, src)
		if err != nil {
			return err
		}
		ratio := float64(va.BusyCycles) / float64(raidr.BusyCycles)
		rows[i] = []string{fmt.Sprintf("%.0f%%", cov*100), fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%.3f", vrlRatio-ratio)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("VRL/RAIDR without accesses: %.3f; VRL-Access converges to it at zero coverage and improves monotonically with coverage", vrlRatio)
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
