package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/memctrl"
	"vrldram/internal/profcache"
	"vrldram/internal/rank"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
	"vrldram/internal/tracecache"
)

// RankSweep compares refresh command granularities across a rank of banks:
// the paper's single-bank evaluation implicitly assumes per-bank refresh
// (each bank refreshed on its own schedule); classic all-bank refresh
// commands must run at the weakest bank's bin and the slowest bank's tRFC,
// diluting both RAIDR's binning and VRL's partial refreshes. This experiment
// puts numbers on why retention-aware refresh wants per-bank commands.
func RankSweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := profcache.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	const nBanks = 8
	// Smaller per-bank geometry keeps the 8-bank sweep quick while
	// preserving the structure (weakest-bank coupling across banks).
	const rows = 2048

	r := &Result{
		ID:    "abl-rank",
		Title: fmt.Sprintf("Refresh command granularity across a %d-bank rank", nBanks),
		Headers: []string{"mode", "scheduler", "commands", "full", "partial",
			"bank-busy cycles", "rank-blocked cycles"},
	}

	type policy struct {
		name string
		mk   func(*retention.BankProfile) (core.Scheduler, error)
	}
	policies := []policy{
		{"RAIDR", func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewRAIDR(p, core.Config{Restore: rm})
		}},
		{"VRL", func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewVRL(p, core.Config{Restore: rm})
		}},
	}
	// Flatten the mode x policy grid into independent cells; each cell
	// builds its own rank (banks and schedulers are stateful), so cells
	// share nothing mutable.
	type cell struct {
		mode rank.Mode
		pol  policy
	}
	var grid []cell
	for _, mode := range []rank.Mode{rank.PerBank, rank.AllBank} {
		for _, pol := range policies {
			grid = append(grid, cell{mode, pol})
		}
	}
	rowsOut := make([][]string, len(grid))
	busyOut := make([]int64, len(grid))
	err = forEachCell(cfg, len(grid), func(_ context.Context, i int) error {
		mode, pol := grid[i].mode, grid[i].pol
		banks, scheds, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed, pol.mk)
		if err != nil {
			return err
		}
		st, err := rank.Run(banks, scheds, rank.Options{
			Mode: mode, Duration: cfg.Duration, TCK: cfg.Params.TCK,
		})
		if err != nil {
			return err
		}
		if st.Violations != 0 {
			return fmt.Errorf("exp: rank %s/%s: %d violations", mode, pol.name, st.Violations)
		}
		busyOut[i] = st.BankBusyCycles
		rowsOut[i] = []string{mode.String(), pol.name,
			fmt.Sprintf("%d", st.RefreshCommands),
			fmt.Sprintf("%d", st.FullCommands),
			fmt.Sprintf("%d", st.PartialCommands),
			fmt.Sprintf("%d", st.BankBusyCycles),
			fmt.Sprintf("%d", st.RankBlockedCycles)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	busy := map[string]int64{}
	for i, c := range grid {
		busy[c.mode.String()+c.pol.name] = busyOut[i]
		r.Rows = append(r.Rows, rowsOut[i])
	}
	perVRL := float64(busy["per-bankVRL"]) / float64(busy["per-bankRAIDR"])
	allVRL := float64(busy["all-bankVRL"]) / float64(busy["all-bankRAIDR"])
	r.AddNote("VRL/RAIDR busy-cycle ratio: per-bank %.3f, all-bank %.3f - all-bank commands dilute the partial-refresh saving (a command is full if ANY bank needs full)", perVRL, allVRL)
	r.AddNote("all-bank refresh also pays the binning penalty: commands run at the weakest bank's period, so strong banks refresh too often")
	r.AddNote("retention-aware refresh wants per-bank refresh commands; the paper's single-bank evaluation implicitly assumes them")
	return r, nil
}

// RankPerfSweep is the request-side counterpart of RankSweep: a trace runs
// against a multi-bank front end under both refresh granularities, showing
// all-bank refresh commands stalling traffic on every bank.
func RankPerfSweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := profcache.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	const nBanks = 8
	const rows = 2048

	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		return nil, err
	}
	recs, err := tracecache.Records(spec, nBanks*rows, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	reqs := memctrl.MultiRequestsFromTrace(recs, cfg.Params.TCK, nBanks)

	r := &Result{
		ID:    "abl-rankperf",
		Title: fmt.Sprintf("Request latency vs refresh granularity (%d banks, streamcluster)", nBanks),
		Headers: []string{"granularity", "scheduler", "avg lat (cyc)", "refresh delay (mcyc)",
			"max (cyc)", "refresh busy"},
	}
	// Reference: a run with the same traffic and no refresh at all, to
	// express each configuration's refresh-induced delay in millicycles per
	// request. Hoisted ahead of the fan-out so every cell reads the same
	// immutable baseline.
	banksB, schedsB, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed,
		func(*retention.BankProfile) (core.Scheduler, error) {
			return core.NewJEDEC(10*cfg.Duration, rm)
		})
	if err != nil {
		return nil, err
	}
	base, _, err := memctrl.RunMulti(banksB, schedsB, reqs, memctrl.MultiOptions{
		Timing: memctrl.DefaultTiming(), TCK: cfg.Params.TCK,
		Duration: cfg.Duration, Granularity: memctrl.PerBankRefresh,
	})
	if err != nil {
		return nil, err
	}
	baseAvg := base.AvgLatency

	type cell struct {
		g   memctrl.RefreshGranularity
		pol struct {
			name string
			mk   func(*retention.BankProfile) (core.Scheduler, error)
		}
	}
	var grid []cell
	for _, g := range []memctrl.RefreshGranularity{memctrl.PerBankRefresh, memctrl.AllBankRefresh} {
		for _, pol := range []struct {
			name string
			mk   func(*retention.BankProfile) (core.Scheduler, error)
		}{
			{"RAIDR", func(p *retention.BankProfile) (core.Scheduler, error) {
				return core.NewRAIDR(p, core.Config{Restore: rm})
			}},
			{"VRL", func(p *retention.BankProfile) (core.Scheduler, error) {
				return core.NewVRL(p, core.Config{Restore: rm})
			}},
		} {
			grid = append(grid, cell{g: g, pol: pol})
		}
	}
	rowsOut := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(_ context.Context, i int) error {
		g, pol := grid[i].g, grid[i].pol
		banks, scheds, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed, pol.mk)
		if err != nil {
			return err
		}
		st, _, err := memctrl.RunMulti(banks, scheds, reqs, memctrl.MultiOptions{
			Timing:      memctrl.DefaultTiming(),
			TCK:         cfg.Params.TCK,
			Duration:    cfg.Duration,
			Granularity: g,
		})
		if err != nil {
			return err
		}
		if st.Violations != 0 {
			return fmt.Errorf("exp: rankperf %s/%s: %d violations", g, pol.name, st.Violations)
		}
		rowsOut[i] = []string{g.String(), pol.name,
			fmt.Sprintf("%.2f", st.AvgLatency),
			fmt.Sprintf("%.1f", (st.AvgLatency-baseAvg)*1000),
			fmt.Sprintf("%d", st.MaxLatency),
			fmt.Sprintf("%d", st.RefreshBusyCycles)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rowsOut...)
	r.AddNote("all-bank commands hold every bank for the slowest bank's operation at the weakest bank's rate: more busy cycles and a heavier latency tail")
	r.AddNote("per-bank refresh keeps bank-level parallelism alive, which is what lets VRL's shorter operations translate into latency")
	return r, nil
}
