package exp

import (
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/memctrl"
	"vrldram/internal/rank"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

// RankSweep compares refresh command granularities across a rank of banks:
// the paper's single-bank evaluation implicitly assumes per-bank refresh
// (each bank refreshed on its own schedule); classic all-bank refresh
// commands must run at the weakest bank's bin and the slowest bank's tRFC,
// diluting both RAIDR's binning and VRL's partial refreshes. This experiment
// puts numbers on why retention-aware refresh wants per-bank commands.
func RankSweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := core.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	const nBanks = 8
	// Smaller per-bank geometry keeps the 8-bank sweep quick while
	// preserving the structure (weakest-bank coupling across banks).
	const rows = 2048

	r := &Result{
		ID:    "abl-rank",
		Title: fmt.Sprintf("Refresh command granularity across a %d-bank rank", nBanks),
		Headers: []string{"mode", "scheduler", "commands", "full", "partial",
			"bank-busy cycles", "rank-blocked cycles"},
	}

	type policy struct {
		name string
		mk   func(*retention.BankProfile) (core.Scheduler, error)
	}
	policies := []policy{
		{"RAIDR", func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewRAIDR(p, core.Config{Restore: rm})
		}},
		{"VRL", func(p *retention.BankProfile) (core.Scheduler, error) {
			return core.NewVRL(p, core.Config{Restore: rm})
		}},
	}
	busy := map[string]int64{}
	for _, mode := range []rank.Mode{rank.PerBank, rank.AllBank} {
		for _, pol := range policies {
			banks, scheds, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed, pol.mk)
			if err != nil {
				return nil, err
			}
			st, err := rank.Run(banks, scheds, rank.Options{
				Mode: mode, Duration: cfg.Duration, TCK: cfg.Params.TCK,
			})
			if err != nil {
				return nil, err
			}
			if st.Violations != 0 {
				return nil, fmt.Errorf("exp: rank %s/%s: %d violations", mode, pol.name, st.Violations)
			}
			busy[mode.String()+pol.name] = st.BankBusyCycles
			r.AddRow(mode.String(), pol.name,
				fmt.Sprintf("%d", st.RefreshCommands),
				fmt.Sprintf("%d", st.FullCommands),
				fmt.Sprintf("%d", st.PartialCommands),
				fmt.Sprintf("%d", st.BankBusyCycles),
				fmt.Sprintf("%d", st.RankBlockedCycles))
		}
	}
	perVRL := float64(busy["per-bankVRL"]) / float64(busy["per-bankRAIDR"])
	allVRL := float64(busy["all-bankVRL"]) / float64(busy["all-bankRAIDR"])
	r.AddNote("VRL/RAIDR busy-cycle ratio: per-bank %.3f, all-bank %.3f - all-bank commands dilute the partial-refresh saving (a command is full if ANY bank needs full)", perVRL, allVRL)
	r.AddNote("all-bank refresh also pays the binning penalty: commands run at the weakest bank's period, so strong banks refresh too often")
	r.AddNote("retention-aware refresh wants per-bank refresh commands; the paper's single-bank evaluation implicitly assumes them")
	return r, nil
}

// RankPerfSweep is the request-side counterpart of RankSweep: a trace runs
// against a multi-bank front end under both refresh granularities, showing
// all-bank refresh commands stalling traffic on every bank.
func RankPerfSweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := core.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	const nBanks = 8
	const rows = 2048

	spec, err := trace.FindBenchmark("streamcluster")
	if err != nil {
		return nil, err
	}
	recs, err := spec.Generate(nBanks*rows, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	reqs := memctrl.MultiRequestsFromTrace(recs, cfg.Params.TCK, nBanks)

	r := &Result{
		ID:    "abl-rankperf",
		Title: fmt.Sprintf("Request latency vs refresh granularity (%d banks, streamcluster)", nBanks),
		Headers: []string{"granularity", "scheduler", "avg lat (cyc)", "refresh delay (mcyc)",
			"max (cyc)", "refresh busy"},
	}
	var baseAvg float64
	first := true
	for _, g := range []memctrl.RefreshGranularity{memctrl.PerBankRefresh, memctrl.AllBankRefresh} {
		for _, pol := range []struct {
			name string
			mk   func(*retention.BankProfile) (core.Scheduler, error)
		}{
			{"RAIDR", func(p *retention.BankProfile) (core.Scheduler, error) {
				return core.NewRAIDR(p, core.Config{Restore: rm})
			}},
			{"VRL", func(p *retention.BankProfile) (core.Scheduler, error) {
				return core.NewVRL(p, core.Config{Restore: rm})
			}},
		} {
			banks, scheds, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed, pol.mk)
			if err != nil {
				return nil, err
			}
			st, _, err := memctrl.RunMulti(banks, scheds, reqs, memctrl.MultiOptions{
				Timing:      memctrl.DefaultTiming(),
				TCK:         cfg.Params.TCK,
				Duration:    cfg.Duration,
				Granularity: g,
			})
			if err != nil {
				return nil, err
			}
			if st.Violations != 0 {
				return nil, fmt.Errorf("exp: rankperf %s/%s: %d violations", g, pol.name, st.Violations)
			}
			if first {
				// Reference: a run with the same traffic and no refresh at
				// all, to express each configuration's refresh-induced
				// delay in millicycles per request.
				banksB, schedsB, err := rank.NewRank(nBanks, cfg.Dist, rows, cfg.Geom.Cols, cfg.Seed,
					func(*retention.BankProfile) (core.Scheduler, error) {
						return core.NewJEDEC(10*cfg.Duration, rm)
					})
				if err != nil {
					return nil, err
				}
				base, _, err := memctrl.RunMulti(banksB, schedsB, reqs, memctrl.MultiOptions{
					Timing: memctrl.DefaultTiming(), TCK: cfg.Params.TCK,
					Duration: cfg.Duration, Granularity: memctrl.PerBankRefresh,
				})
				if err != nil {
					return nil, err
				}
				baseAvg = base.AvgLatency
				first = false
			}
			r.AddRow(g.String(), pol.name,
				fmt.Sprintf("%.2f", st.AvgLatency),
				fmt.Sprintf("%.1f", (st.AvgLatency-baseAvg)*1000),
				fmt.Sprintf("%d", st.MaxLatency),
				fmt.Sprintf("%d", st.RefreshBusyCycles))
		}
	}
	r.AddNote("all-bank commands hold every bank for the slowest bank's operation at the weakest bank's rate: more busy cycles and a heavier latency tail")
	r.AddNote("per-bank refresh keeps bank-level parallelism alive, which is what lets VRL's shorter operations translate into latency")
	return r, nil
}
