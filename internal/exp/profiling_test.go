package exp

import (
	"strconv"
	"testing"

	"vrldram/internal/scenario"
)

func TestProfilingExperiment(t *testing.T) {
	r, err := Profiling(Default())
	if err != nil {
		t.Fatal(err)
	}
	scenarios := scenario.Names()
	const mechs = 4
	if len(r.Rows) != len(scenarios)*mechs {
		t.Fatalf("rows = %d, want %d scenarios x %d mechanisms", len(r.Rows), len(scenarios), mechs)
	}
	num := func(row []string, col int) int {
		n, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatalf("cell %q in row %v: %v", row[col], row, err)
		}
		return n
	}
	overhead := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("overhead %q in row %v: %v", row[3], row, err)
		}
		return v
	}
	const (
		colViol = 2
		colCorr = 4
		colRepr = 6
		colEsc  = 11
	)
	for si, sc := range scenarios {
		oneShot := r.Rows[si*mechs+0]
		guardband := r.Rows[si*mechs+1]
		scrub := r.Rows[si*mechs+2]
		ladder := r.Rows[si*mechs+3]
		for _, row := range []([]string){oneShot, guardband, scrub, ladder} {
			if row[0] != sc {
				t.Fatalf("row grouping broken: row %v under scenario %s", row, sc)
			}
		}
		if oneShot[1] != "one-shot" || guardband[1] != "guardband" || scrub[1] != "scrub-reprofile" || ladder[1] != "guard-ladder" {
			t.Fatalf("%s: mechanism ordering broken", sc)
		}

		// The adaptive and guardbanded mechanisms must never LOSE to raw
		// one-shot profiling under identical stress.
		for _, row := range []([]string){guardband, scrub, ladder} {
			if num(row, colViol) > num(oneShot, colViol) {
				t.Errorf("%s: %s violates more (%s) than one-shot (%s)",
					sc, row[1], row[colViol], oneShot[colViol])
			}
		}
		// Static guardbanding costs refresh overhead under EVERY scenario,
		// stressed or not - that is its defining trade-off.
		if overhead(guardband) <= overhead(oneShot) {
			t.Errorf("%s: guardband overhead %.3f not above one-shot %.3f",
				sc, overhead(guardband), overhead(oneShot))
		}
		// Mechanisms without a pipeline report no pipeline columns.
		if oneShot[colCorr] != "-" || guardband[colEsc] != "-" || scrub[colEsc] != "-" || ladder[colCorr] != "-" {
			t.Errorf("%s: pipeline columns leaked across mechanisms", sc)
		}

		switch sc {
		case "nominal":
			for _, row := range []([]string){oneShot, guardband, scrub, ladder} {
				if num(row, colViol) != 0 {
					t.Errorf("nominal/%s: %s violations under no stress", row[1], row[colViol])
				}
			}
		case "kitchen-sink":
			// The composed stress must bite the static baseline, and the
			// scrub pipeline must visibly react to it.
			if num(oneShot, colViol) == 0 {
				t.Error("kitchen-sink left one-shot profiling unscathed; the scenario is inert")
			}
			if num(scrub, colCorr) == 0 || num(scrub, colRepr) == 0 {
				t.Errorf("kitchen-sink: scrub pipeline idle (corrected=%s reprofiled=%s)",
					scrub[colCorr], scrub[colRepr])
			}
			if num(ladder, colEsc) == 0 {
				t.Error("kitchen-sink: guard ladder recorded no escalations")
			}
		}
	}
}
