package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/profcache"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// TemperatureSweep is the thermal extension experiment: retention roughly
// halves per 10 degC, so a profile measured at the 85 degC worst case gains
// margin when the bank runs cooler and loses it when hotter. Two policies
// run at each operating temperature:
//
//   - "static": the scheduler keeps the 85 degC profile (what a simple
//     controller does) - safe at or below the profiling temperature, unsafe
//     above it;
//   - "compensated": the scheduler re-bins the temperature-scaled profile -
//     cooler operation buys longer refresh periods and lower overhead.
func TemperatureSweep(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	tm := retention.DefaultTempModel()
	scfg := f.schedConfig()

	raidr, err := f.run(func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) }, nil)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:    "abl-temp",
		Title: "Operating temperature vs safety and overhead (profile measured at 85C)",
		Headers: []string{"temp (C)", "static: violations", "compensated: violations",
			"compensated VRL/RAIDR@85C"},
	}
	run := func(ctx context.Context, schedProfile, bankProfile *retention.BankProfile) (sim.Stats, error) {
		sched, err := core.NewVRL(schedProfile, scfg)
		if err != nil {
			return sim.Stats{}, err
		}
		bank, err := dram.NewBank(bankProfile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return sim.Stats{}, err
		}
		return sim.RunContext(ctx, bank, sched, nil, f.opts)
	}
	temps := []float64{45, 65, 85, 95}
	rows := make([][]string, len(temps))
	err = forEachCell(cfg, len(temps), func(ctx context.Context, i int) error {
		tempC := temps[i]
		atTemp := tm.AtTemperature(f.profile, tempC)
		static, err := run(ctx, f.profile, atTemp)
		if err != nil {
			return err
		}
		// Above the profiling temperature some rows fall below the fastest
		// supported bin; a real controller clamps them there (and loses
		// data, which the violations column shows). Below it, clamping is a
		// no-op.
		schedProfile := clampProfile(atTemp, retention.RAIDRBins[0])
		comp, err := run(ctx, schedProfile, atTemp)
		if err != nil {
			return err
		}
		rows[i] = []string{fmt.Sprintf("%.0f", tempC),
			fmt.Sprintf("%d", static.Violations),
			fmt.Sprintf("%d", comp.Violations),
			fmt.Sprintf("%.3f", float64(comp.BusyCycles)/float64(raidr.BusyCycles))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("at or below the 85C profiling temperature the static profile is safe; above it, it loses data")
	r.AddNote("temperature-compensated binning converts thermal margin into fewer/cheaper refreshes (the ratio column is against 85C RAIDR)")
	r.AddNote("at 95C even the fastest bin cannot save the weakest rows (clamped rows still violate): the chip is out of its rated range")
	return r, nil
}

// clampProfile floors profiled retention at the given bin so binning stays
// feasible; rows clamped upward are expected to violate (they are out of
// spec).
func clampProfile(p *retention.BankProfile, floor float64) *retention.BankProfile {
	out := &retention.BankProfile{
		Geom:     p.Geom,
		True:     p.True,
		Profiled: append([]float64(nil), p.Profiled...),
	}
	for i, v := range out.Profiled {
		if v < floor {
			out.Profiled[i] = floor
		}
	}
	return out
}

// DensitySweep quantifies the paper's motivation: refresh overhead grows
// with chip capacity, so shaving tRFC matters more every generation. The
// sweep scales the bank's row count and reports the fraction of time each
// policy spends refreshing.
func DensitySweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := profcache.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "abl-density",
		Title:   "Refresh overhead vs bank density (the paper's motivation)",
		Headers: []string{"rows", "JEDEC %time", "RAIDR %time", "VRL %time", "VRL saving vs RAIDR"},
	}
	opts := sim.Options{Duration: cfg.Duration, TCK: cfg.Params.TCK, Backend: cfg.Backend}
	rowCounts := []int{4096, 8192, 16384, 32768}
	cells := make([][]string, len(rowCounts))
	err = forEachCell(cfg, len(rowCounts), func(ctx context.Context, i int) error {
		rows := rowCounts[i]
		geom := device.BankGeometry{Rows: rows, Cols: cfg.Geom.Cols}
		profile, err := profcache.SampledProfile(geom, cfg.Dist, cfg.Seed)
		if err != nil {
			return err
		}
		run := func(mk func() (core.Scheduler, error)) (sim.Stats, error) {
			sched, err := mk()
			if err != nil {
				return sim.Stats{}, err
			}
			bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
			if err != nil {
				return sim.Stats{}, err
			}
			return sim.RunContext(ctx, bank, sched, nil, opts)
		}
		scfg := core.Config{Restore: rm}
		jed, err := run(func() (core.Scheduler, error) { return core.NewJEDEC(cfg.Params.TRetNom, rm) })
		if err != nil {
			return err
		}
		raidr, err := run(func() (core.Scheduler, error) { return core.NewRAIDR(profile, scfg) })
		if err != nil {
			return err
		}
		vrl, err := run(func() (core.Scheduler, error) { return core.NewVRL(profile, scfg) })
		if err != nil {
			return err
		}
		if jed.Violations+raidr.Violations+vrl.Violations != 0 {
			return fmt.Errorf("exp: density %d rows: violations", rows)
		}
		cells[i] = []string{fmt.Sprintf("%d", rows),
			fmt.Sprintf("%.4f%%", 100*jed.OverheadFraction(cfg.Params.TCK)),
			fmt.Sprintf("%.4f%%", 100*raidr.OverheadFraction(cfg.Params.TCK)),
			fmt.Sprintf("%.4f%%", 100*vrl.OverheadFraction(cfg.Params.TCK)),
			fmt.Sprintf("%.0f%%", 100*(1-float64(vrl.BusyCycles)/float64(raidr.BusyCycles)))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, cells...)
	r.AddNote("refresh-busy time grows linearly with rows per bank for every policy (more rows to refresh per period)")
	r.AddNote("VRL's relative saving is density-independent, so its absolute saving grows with capacity - the paper's introduction in one table")
	return r, nil
}
