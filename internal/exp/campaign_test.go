package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// withTestExperiments temporarily extends the registry with synthetic
// experiments so campaign behavior can be driven deterministically.
func withTestExperiments(t *testing.T, entries ...struct {
	ID    string
	Title string
	Run   Runner
}) {
	t.Helper()
	saved := Registry
	Registry = append(append([]struct {
		ID    string
		Title string
		Run   Runner
	}{}, saved...), entries...)
	t.Cleanup(func() { Registry = saved })
}

func okRunner(id string) Runner {
	return func(Config) (*Result, error) {
		r := &Result{ID: id, Title: "synthetic"}
		r.AddRow("ok")
		return r, nil
	}
}

func entry(id string, run Runner) struct {
	ID    string
	Title string
	Run   Runner
} {
	return struct {
		ID    string
		Title string
		Run   Runner
	}{id, "synthetic " + id, run}
}

func TestCampaignIsolatesPanics(t *testing.T) {
	withTestExperiments(t,
		entry("t-ok", okRunner("t-ok")),
		entry("t-panic", func(Config) (*Result, error) { panic("kaboom") }),
		entry("t-ok2", okRunner("t-ok2")),
	)
	results, err := RunCampaign(context.Background(), Default(), CampaignOptions{
		IDs: []string{"t-ok", "t-panic", "t-ok2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (panic must not kill the campaign)", len(results))
	}
	if results[0].Failed() || results[2].Failed() {
		t.Error("healthy experiments marked failed")
	}
	if !results[1].Failed() {
		t.Fatal("panicking experiment not marked failed")
	}
	if results[1].ID != "t-panic" {
		t.Errorf("failure result has ID %q", results[1].ID)
	}
	if !strings.Contains(strings.Join(results[1].Notes, " "), "kaboom") {
		t.Errorf("panic value not preserved in notes: %v", results[1].Notes)
	}
}

func TestCampaignErrorBecomesResult(t *testing.T) {
	withTestExperiments(t,
		entry("t-err", func(Config) (*Result, error) { return nil, errors.New("sim exploded") }),
	)
	results, err := RunCampaign(context.Background(), Default(), CampaignOptions{IDs: []string{"t-err"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Failed() {
		t.Fatalf("results = %+v, want one failed placeholder", results)
	}
	if !strings.Contains(strings.Join(results[0].Notes, " "), "sim exploded") {
		t.Errorf("original error lost: %v", results[0].Notes)
	}
}

func TestCampaignTimesOutSlowExperiment(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	withTestExperiments(t,
		entry("t-slow", func(Config) (*Result, error) {
			<-release // hangs until test cleanup
			return &Result{ID: "t-slow"}, nil
		}),
		entry("t-after", okRunner("t-after")),
	)
	results, err := RunCampaign(context.Background(), Default(), CampaignOptions{
		IDs:     []string{"t-slow", "t-after"},
		Timeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (timeout must not kill the campaign)", len(results))
	}
	if !results[0].Failed() {
		t.Fatal("hung experiment not marked failed")
	}
	if !strings.Contains(strings.Join(results[0].Notes, " "), "timed out") {
		t.Errorf("timeout not recorded: %v", results[0].Notes)
	}
	if results[1].Failed() {
		t.Error("experiment after the timeout marked failed")
	}
}

func TestCampaignRestoreSkipsCompletedWork(t *testing.T) {
	ran := 0
	withTestExperiments(t,
		entry("t-done", func(Config) (*Result, error) {
			ran++ // must never run: its result is restored
			return &Result{ID: "t-done"}, nil
		}),
		entry("t-fresh", okRunner("t-fresh")),
	)
	stored := &Result{ID: "t-done", Title: "from checkpoint", Notes: []string{"restored"}}
	var observed []string
	results, err := RunCampaign(context.Background(), Default(), CampaignOptions{
		IDs: []string{"t-done", "t-fresh"},
		Restore: func(id string) *Result {
			if id == "t-done" {
				return stored
			}
			return nil
		},
		OnResult: func(r *Result) error {
			observed = append(observed, r.ID)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Error("restored experiment was re-run")
	}
	if results[0] != stored {
		t.Error("restored result not reused verbatim")
	}
	// OnResult is the persistence hook: restored results are already
	// persisted and must not be re-announced.
	if len(observed) != 1 || observed[0] != "t-fresh" {
		t.Errorf("OnResult saw %v, want only the fresh experiment", observed)
	}
}

func TestCampaignOnResultErrorAborts(t *testing.T) {
	withTestExperiments(t,
		entry("t-a", okRunner("t-a")),
		entry("t-b", okRunner("t-b")),
	)
	boom := errors.New("disk full")
	results, err := RunCampaign(context.Background(), Default(), CampaignOptions{
		IDs:      []string{"t-a", "t-b"},
		OnResult: func(*Result) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results before abort, want 1", len(results))
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	withTestExperiments(t,
		entry("t-first", func(Config) (*Result, error) {
			cancel() // campaign is cancelled while this experiment runs
			return &Result{ID: "t-first"}, nil
		}),
		entry("t-never", okRunner("t-never")),
	)
	results, err := RunCampaign(ctx, Default(), CampaignOptions{IDs: []string{"t-first", "t-never"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) > 1 {
		t.Fatalf("campaign kept going after cancellation: %d results", len(results))
	}
}

func TestCampaignRejectsUnknownID(t *testing.T) {
	if _, err := RunCampaign(context.Background(), Default(), CampaignOptions{IDs: []string{"no-such-exp"}}); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
}

func TestFailedDetection(t *testing.T) {
	r := &Result{Notes: []string{"benign note"}}
	if r.Failed() {
		t.Error("benign note flagged as failure")
	}
	r.AddNote("%sexperiment panicked", ErrorNote)
	if !r.Failed() {
		t.Error("ErrorNote-prefixed note not flagged")
	}
}
