package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// resilienceCase is one fault campaign of the resilience sweep.
type resilienceCase struct {
	name string
	// prepare returns the profile the SCHEDULER consumes, the profile the
	// BANK obeys (the two differ for profile-level faults), an optional VRT
	// process for the bank, and whether the scheduler stack should be wrapped
	// with a refresh-operation injector.
	prepare func(p *retention.BankProfile) (schedProf, bankProf *retention.BankProfile, vrt *retention.VRT, refresh bool, err error)
}

// faultCases is the shared fault-injection campaign table: every injector
// internal/fault offers, in a deterministic seeded configuration. Both the
// resilience sweep and the scrub experiment iterate it, so the two tables
// stay comparable row for row.
func faultCases(seed int64) []resilienceCase {
	return []resilienceCase{
		{
			name: "none",
			prepare: func(p *retention.BankProfile) (*retention.BankProfile, *retention.BankProfile, *retention.VRT, bool, error) {
				return p, p, nil, false, nil
			},
		},
		{
			name: "mis-binned profile (5%)",
			prepare: func(p *retention.BankProfile) (*retention.BankProfile, *retention.BankProfile, *retention.VRT, bool, error) {
				bad, _, err := fault.MisBinProfile(p, 0.05, retention.RAIDRBins, seed+1)
				return bad, bad, nil, false, err
			},
		},
		{
			name: "transient weak cells (5% @ 0.55x)",
			prepare: func(p *retention.BankProfile) (*retention.BankProfile, *retention.BankProfile, *retention.VRT, bool, error) {
				return p, p, fault.DefaultTransientWeakCells(seed + 2), false, nil
			},
		},
		{
			name: "temperature excursion (+5 degC)",
			prepare: func(p *retention.BankProfile) (*retention.BankProfile, *retention.BankProfile, *retention.VRT, bool, error) {
				hot, err := fault.TemperatureExcursion(p, retention.DefaultTempModel(), retention.DefaultTempModel().RefC+5)
				return p, hot, nil, false, err
			},
		},
		{
			name: "truncated refreshes (3% @ 0.5x)",
			prepare: func(p *retention.BankProfile) (*retention.BankProfile, *retention.BankProfile, *retention.VRT, bool, error) {
				return p, p, nil, true, nil
			},
		},
	}
}

// Resilience sweeps the fault injectors of internal/fault across three
// policies - RAIDR, raw VRL, and VRL wrapped in the graceful-degradation
// guard - and reports the violation/overhead frontier: what each fault
// costs an unprotected retention-aware policy, and what the guard pays to
// contain it. All campaigns are seeded, so the table is reproducible.
func Resilience(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	scfg := f.schedConfig()
	seed := cfg.Seed
	cases := faultCases(seed)

	type policy struct {
		name    string
		guarded bool
		build   func(p *retention.BankProfile) (core.Scheduler, error)
	}
	policies := []policy{
		{"RAIDR", false, func(p *retention.BankProfile) (core.Scheduler, error) { return core.NewRAIDR(p, scfg) }},
		{"VRL", false, func(p *retention.BankProfile) (core.Scheduler, error) { return core.NewVRL(p, scfg) }},
		{"VRL+guard", true, func(p *retention.BankProfile) (core.Scheduler, error) {
			inner, err := core.NewVRL(p, scfg)
			if err != nil {
				return nil, err
			}
			return guard.New(inner, p.Geom.Rows, guard.Config{Restore: f.rm})
		}},
	}

	r := &Result{
		ID:    "resilience",
		Title: "Fault injection vs policy: violations and overhead, guarded and unguarded",
		Headers: []string{"fault", "policy", "violations", "overhead %",
			"faults inj.", "alarms", "demotions", "escalations", "breaker trips", "degraded ms"},
	}

	// Every (fault, policy) pairing is its own seeded campaign with its own
	// bank and scheduler stack; fan the full grid out on the worker pool.
	type cell struct {
		tc  resilienceCase
		pol policy
	}
	var grid []cell
	for _, tc := range cases {
		for _, pol := range policies {
			grid = append(grid, cell{tc, pol})
		}
	}
	rows := make([][]string, len(grid))
	err = forEachCell(cfg, len(grid), func(ctx context.Context, i int) error {
		tc, pol := grid[i].tc, grid[i].pol
		schedProf, bankProf, vrt, refresh, err := tc.prepare(f.profile)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", tc.name, err)
		}
		sched, err := pol.build(schedProf)
		if err != nil {
			return err
		}
		var faultCfg fault.RefreshFaults
		if refresh {
			faultCfg = fault.DefaultRefreshFaults(seed + 3)
			inj, err := fault.InjectRefreshFaults(sched, faultCfg)
			if err != nil {
				return err
			}
			sched = inj
		}
		bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return err
		}
		if vrt != nil {
			if err := bank.SetVRT(vrt); err != nil {
				return err
			}
		}
		st, err := sim.RunContext(ctx, bank, sched, nil, f.opts)
		if err != nil {
			return fmt.Errorf("exp: %s/%s: %w", tc.name, pol.name, err)
		}
		row := []string{
			tc.name, pol.name,
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%.3f", 100*st.OverheadFraction(cfg.Params.TCK)),
			fmt.Sprintf("%d", st.FaultsInjected),
		}
		if pol.guarded {
			row = append(row,
				fmt.Sprintf("%d", st.Guard.Alarms),
				fmt.Sprintf("%d", st.Guard.Demotions),
				fmt.Sprintf("%d", st.Guard.Escalations),
				fmt.Sprintf("%d", st.Guard.BreakerTrips),
				fmt.Sprintf("%.1f", 1000*st.Guard.TimeDegraded))
		} else {
			row = append(row, "-", "-", "-", "-", "-")
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)

	r.AddNote("faults are deterministic (seed %d): profile mis-binning places rows one bin slower than they sustain; weak cells and the temperature excursion erode true retention behind the profile's back; truncated refreshes deliver half-strength restores", seed)
	r.AddNote("the guard starts every row on probation at the 32 ms floor and promotes one rung per clean-sense streak, so its overhead includes the probation tax of the %.0f ms window", 1000*cfg.Duration)
	r.AddNote("a sound guard shows zero violations wherever the fault is schedulable (above the floor period); physics the floor cannot outrun still trips the breaker instead of failing silently")
	return r, nil
}
