package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// workers resolves the effective worker count for this config: Workers if
// positive, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPool is the experiment engine's bounded execution substrate: a fixed
// set of goroutines draining a task queue. The sweep fan-out (forEachCell)
// spins one up per grid, and the long-running simulation service
// (internal/serve) keeps one alive for the daemon's whole life, multiplexing
// session jobs onto it so the total simulation concurrency is bounded no
// matter how many sessions are connected.
//
// Tasks are plain closures; panic isolation, result slotting, and
// cancellation are the submitter's concern (see forEachCell for the
// deterministic-slotting idiom and internal/serve for per-session panic
// containment).
type WorkerPool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewWorkerPool starts a pool of n workers (n < 1 is forced to 1). The queue
// holds up to n pending tasks beyond the ones executing; Submit blocks once
// it is full, which is the pool's backpressure: a caller that outruns the
// workers waits instead of growing an unbounded queue.
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{tasks: make(chan func(), n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues a task, blocking while the queue is full. It returns an
// error (and drops the task) if the pool is closed or ctx is cancelled while
// waiting; a nil ctx never cancels.
func (p *WorkerPool) Submit(ctx context.Context, task func()) error {
	if task == nil {
		return fmt.Errorf("exp: nil task submitted")
	}
	// The closed check and the send race benignly: Close is documented to be
	// called only after every Submit has returned (a sequencing contract, not
	// a locking one), so the check exists to turn misuse into an error
	// instead of a panic on a closed channel.
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return fmt.Errorf("exp: worker pool is closed")
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case p.tasks <- task:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// Close stops accepting tasks and blocks until every queued and running task
// has finished. It must not be called concurrently with Submit; callers
// sequence their submitters first (the service stops its sessions before
// draining the pool).
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
}

// forEachCell is the experiment fan-out primitive. It evaluates fn(i) for
// every i in [0, n) on a bounded pool of cfg.workers() goroutines and
// returns the first error (by submission index order is NOT guaranteed for
// errors; the first error to occur wins and cancels the rest via ctx).
//
// Determinism contract: fn must write its output into a preallocated slot
// for index i (typically cells[i] of a slice the caller owns) and must not
// depend on evaluation order or shared mutable state. Under that contract
// the assembled output is byte-identical for every worker count, including
// Workers=1, because reassembly happens by index, not by completion order.
//
// fn receives a context it should propagate to cancellable work; after the
// first failure remaining queued indices are skipped and in-flight cells may
// observe ctx cancellation.
func forEachCell(cfg Config, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Sequential fast path: no goroutines, no channels, deterministic
		// by construction. Keeps Workers=1 behavior (and stack traces)
		// identical to the pre-parallel harness.
		ctx := context.Background()
		for i := 0; i < n; i++ {
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	pool := NewWorkerPool(w)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		i := i
		// Submit blocks while the queue is full, bounding in-flight work; a
		// cancelled grid stops submitting and skips the remaining indices.
		if err := pool.Submit(ctx, func() {
			if ctx.Err() != nil {
				return // drain without working once cancelled
			}
			if err := fn(ctx, i); err != nil {
				fail(err)
			}
		}); err != nil {
			break
		}
	}
	pool.Close()
	return firstErr
}
