package exp

import (
	"context"
	"runtime"
	"sync"
)

// workers resolves the effective worker count for this config: Workers if
// positive, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachCell is the experiment fan-out primitive. It evaluates fn(i) for
// every i in [0, n) on a bounded pool of cfg.workers() goroutines and
// returns the first error (by submission index order is NOT guaranteed for
// errors; the first error to occur wins and cancels the rest via ctx).
//
// Determinism contract: fn must write its output into a preallocated slot
// for index i (typically cells[i] of a slice the caller owns) and must not
// depend on evaluation order or shared mutable state. Under that contract
// the assembled output is byte-identical for every worker count, including
// Workers=1, because reassembly happens by index, not by completion order.
//
// fn receives a context it should propagate to cancellable work; after the
// first failure remaining queued indices are skipped and in-flight cells may
// observe ctx cancellation.
func forEachCell(cfg Config, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Sequential fast path: no goroutines, no channels, deterministic
		// by construction. Keeps Workers=1 behavior (and stack traces)
		// identical to the pre-parallel harness.
		ctx := context.Background()
		for i := 0; i < n; i++ {
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without working once cancelled
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}
