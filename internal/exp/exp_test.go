package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fastConfig shrinks the simulation window so the trace-driven experiments
// finish quickly; ratios stay within the calibrated bands because the
// schedulers start at steady-state counter phases.
func fastConfig() Config {
	cfg := Default()
	cfg.Duration = 0.256
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero duration must be rejected")
	}
}

func TestRegistryAndFind(t *testing.T) {
	if len(Registry) < 10 {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	ids := IDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %s", id)
		}
		seen[id] = true
		if _, err := Find(id); err != nil {
			t.Fatalf("Find(%s): %v", id, err)
		}
	}
	for _, must := range []string{"fig1a", "fig1b", "fig3a", "fig3b", "fig4", "fig5", "tab1", "tab2", "power", "sec31"} {
		if !seen[must] {
			t.Errorf("missing paper artifact %s", must)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestResultFprint(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Headers: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("n %d", 5)
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a  bb", "1  2", "note: n 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(r.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestFigure1aShape(t *testing.T) {
	r, err := Figure1a(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Monotone charge; starts at 50, ends ~100.
	prev := -1.0
	for i := range r.Rows {
		c := cell(t, r, i, 1)
		if c < prev {
			t.Fatal("charge not monotone")
		}
		prev = c
	}
	if first := cell(t, r, 0, 1); first != 50 {
		t.Fatalf("starts at %v", first)
	}
	if last := cell(t, r, len(r.Rows)-1, 1); last < 99.5 {
		t.Fatalf("ends at %v", last)
	}
}

func TestFigure1bShape(t *testing.T) {
	r, err := Figure1b(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var minFull, minPartial = 101.0, 101.0
	for i := range r.Rows {
		if f := cell(t, r, i, 1); f < minFull {
			minFull = f
		}
		if p := cell(t, r, i, 2); p < minPartial {
			minPartial = p
		}
	}
	if minFull < 50 {
		t.Fatalf("full-refresh schedule dips to %v%%", minFull)
	}
	if minPartial >= 50 {
		t.Fatalf("back-to-back partial schedule should dip below 50%%, min %v%%", minPartial)
	}
}

func TestFigure3aShape(t *testing.T) {
	r, err := Figure3a(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	total := 0.0
	peak := 0.0
	for i := range r.Rows {
		c := cell(t, r, i, 1)
		total += c
		if c > peak {
			peak = c
		}
	}
	if total != float64(Default().Geom.Cells()) {
		t.Fatalf("histogram total %v, want %d cells", total, Default().Geom.Cells())
	}
	if peak < 20000 || peak > 50000 {
		t.Fatalf("peak %v outside the paper's 30-40k band (tolerance widened)", peak)
	}
}

func TestFigure3bExact(t *testing.T) {
	r, err := Figure3b(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{68, 101, 145, 7878}
	for i, w := range want {
		if got := cell(t, r, i, 1); got != w {
			t.Errorf("bin %d: %v rows, want %v", i, got, w)
		}
	}
}

func TestFigure4Ordering(t *testing.T) {
	r, err := Figure4(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 { // 14 benchmarks + average
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 0; i < 14; i++ {
		raidr := cell(t, r, i, 1)
		vrl := cell(t, r, i, 2)
		va := cell(t, r, i, 3)
		if raidr != 1 {
			t.Fatalf("row %d not normalized", i)
		}
		if !(vrl < raidr) || !(va <= vrl) {
			t.Fatalf("%s: ordering violated: RAIDR=1, VRL=%v, VRLA=%v", r.Rows[i][0], vrl, va)
		}
		if viol := cell(t, r, i, 4); viol != 0 {
			t.Fatalf("%s: %v violations", r.Rows[i][0], viol)
		}
	}
	// Calibrated bands (paper: VRL 0.77, VRL-Access avg 0.66).
	vrl := cell(t, r, 14, 2)
	va := cell(t, r, 14, 3)
	if vrl < 0.70 || vrl > 0.85 {
		t.Fatalf("VRL/RAIDR = %v outside [0.70, 0.85]", vrl)
	}
	if va >= vrl || va < 0.60 {
		t.Fatalf("avg VRL-Access = %v implausible (VRL %v)", va, vrl)
	}
}

func TestFigure5ModelWins(t *testing.T) {
	r, err := Figure5(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "WARNING") {
			t.Fatalf("figure 5 inverted: %s", n)
		}
	}
	if len(r.Rows) != 21 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestTable1Structure(t *testing.T) {
	r, err := Table1(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Single-cell flat; SPICE and model grow with rows at fixed cols.
	sc0 := cell(t, r, 0, 2)
	for i := 1; i < 6; i++ {
		if cell(t, r, i, 2) != sc0 {
			t.Fatal("single-cell column must be flat")
		}
	}
	if !(cell(t, r, 4, 1) > cell(t, r, 0, 1)) {
		t.Fatal("SPICE cycles must grow with rows")
	}
	if !(cell(t, r, 4, 3) > cell(t, r, 0, 3)) {
		t.Fatal("model cycles must grow with rows")
	}
	// Model within 25% of SPICE everywhere (paper: 0-12.5%).
	for i := 0; i < 6; i++ {
		s, m := cell(t, r, i, 1), cell(t, r, i, 3)
		if diff := (m - s) / s; diff > 0.25 || diff < -0.25 {
			t.Errorf("row %d: model %v vs SPICE %v", i, m, s)
		}
	}
}

func TestTable2Exact(t *testing.T) {
	r, err := Table2(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if cell(t, r, 0, 1) != 105 || cell(t, r, 2, 1) != 200 {
		t.Fatalf("areas: %v / %v", r.Rows[0][1], r.Rows[2][1])
	}
}

func TestPowerComparison(t *testing.T) {
	r, err := PowerComparison(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ratio := cell(t, r, 1, 5)
	if ratio < 0.82 || ratio > 0.95 {
		t.Fatalf("VRL/RAIDR power = %v, paper says ~0.88", ratio)
	}
}

func TestTauPartialSweepOptimum(t *testing.T) {
	r, err := TauPartialSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find the minimum-ratio row; the paper's operating point is 11 cycles.
	best, bestRatio := 0, 2.0
	for i := range r.Rows {
		if ratio := cell(t, r, i, 3); ratio < bestRatio {
			bestRatio = ratio
			best = int(cell(t, r, i, 0))
		}
	}
	if best < 10 || best > 12 {
		t.Fatalf("optimum tau_partial = %d cycles, paper: 11", best)
	}
}

func TestGuardbandSweepShowsSafetyEdge(t *testing.T) {
	r, err := GuardbandSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Overhead decreases (or holds) as the guardband relaxes; the default
	// stays violation-free under the worst pattern.
	prev := -1.0
	for i := range r.Rows {
		ratio := cell(t, r, i, 1)
		if prev >= 0 && ratio > prev+1e-9 {
			t.Fatalf("overhead should not increase as guardband relaxes (row %d)", i)
		}
		prev = ratio
		gb := cell(t, r, i, 0)
		viol := cell(t, r, i, 2)
		if gb >= 0.86 && viol != 0 {
			t.Fatalf("guardband %v should be safe, saw %v violations", gb, viol)
		}
	}
}

func TestNBitsSweepMonotone(t *testing.T) {
	r, err := NBitsSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	prevRatio, prevArea := 2.0, 0.0
	for i := range r.Rows {
		ratio, area := cell(t, r, i, 2), cell(t, r, i, 3)
		if ratio > prevRatio+1e-9 {
			t.Fatal("more counter bits must not increase overhead")
		}
		if area <= prevArea {
			t.Fatal("more counter bits must cost area")
		}
		prevRatio, prevArea = ratio, area
	}
}

func TestDecaySweep(t *testing.T) {
	r, err := DecaySweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Linear decay is the lenient law: weakly higher mean MPRSF.
	expMean := cell(t, r, 0, 3)
	linMean := cell(t, r, 1, 3)
	if linMean < expMean {
		t.Fatalf("linear mean MPRSF %v below exponential %v", linMean, expMean)
	}
}

func TestCoverageSweepMonotone(t *testing.T) {
	r, err := CoverageSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for i := range r.Rows {
		ratio := cell(t, r, i, 1)
		if ratio > prev+1e-9 {
			t.Fatalf("VRL-Access must improve with coverage (row %d: %v after %v)", i, ratio, prev)
		}
		prev = ratio
	}
}

func TestVRTImpact(t *testing.T) {
	r, err := VRTImpact(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if cell(t, r, 0, 1) != 0 {
		t.Fatal("no-VRT baseline must be violation-free")
	}
	unmitigated := cell(t, r, 1, 1)
	if unmitigated == 0 {
		t.Fatal("VRT against a static profile must violate")
	}
	offline := cell(t, r, 2, 1)
	if offline >= unmitigated {
		t.Fatalf("offline mitigation did not reduce violations: %v vs %v", offline, unmitigated)
	}
	corrected := cell(t, r, 3, 2)
	if corrected == 0 {
		t.Fatal("online ECC should correct some errors")
	}
}

func TestTemperatureSweep(t *testing.T) {
	r, err := TemperatureSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 0; i < 3; i++ { // 45/65/85C: safe both ways
		if cell(t, r, i, 1) != 0 || cell(t, r, i, 2) != 0 {
			t.Fatalf("row %d should be violation-free at/below the profiling temperature", i)
		}
	}
	if cell(t, r, 3, 1) == 0 {
		t.Fatal("95C with a static 85C profile must lose data")
	}
	// Compensation reduces but cannot eliminate out-of-spec failures.
	if cell(t, r, 3, 2) >= cell(t, r, 3, 1) {
		t.Fatal("compensation must reduce violations at 95C")
	}
	// Cooler operation buys lower overhead.
	if cell(t, r, 0, 3) >= cell(t, r, 2, 3) {
		t.Fatal("45C compensated overhead must be below 85C")
	}
}

func TestDensitySweep(t *testing.T) {
	r, err := DensitySweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Overhead grows monotonically with rows for every policy.
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for i := range r.Rows {
			v := cell(t, r, i, col)
			if v <= prev {
				t.Fatalf("column %d not increasing with density", col)
			}
			prev = v
		}
	}
	// Doubling rows roughly doubles JEDEC overhead.
	if ratio := cell(t, r, 1, 1) / cell(t, r, 0, 1); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("JEDEC overhead should scale linearly, got %vx per doubling", ratio)
	}
}

func TestPerfImpactOrdering(t *testing.T) {
	r, err := PerfImpact(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 { // 4 benchmarks x 3 schedulers
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for b := 0; b < 4; b++ {
		raidr := cell(t, r, 3*b, 3)
		vrl := cell(t, r, 3*b+1, 3)
		va := cell(t, r, 3*b+2, 3)
		if !(raidr > 0) {
			t.Fatalf("benchmark %d: RAIDR refresh delay %v must be positive", b, raidr)
		}
		if !(vrl < raidr) || !(va <= vrl) {
			t.Fatalf("benchmark %d: refresh delay ordering violated: %v / %v / %v", b, raidr, vrl, va)
		}
	}
}

func TestWriteMarkdownReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	cfg := fastConfig()
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range Registry {
		if !strings.Contains(out, "## "+e.ID) {
			t.Errorf("report missing section %s", e.ID)
		}
	}
}

func TestRankSweep(t *testing.T) {
	r, err := RankSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	perRAIDR := cell(t, r, 0, 5)
	perVRL := cell(t, r, 1, 5)
	allRAIDR := cell(t, r, 2, 5)
	allVRL := cell(t, r, 3, 5)
	if !(perVRL < perRAIDR) {
		t.Fatal("per-bank VRL must beat RAIDR")
	}
	if !(allRAIDR > perRAIDR) {
		t.Fatal("all-bank refresh must cost more bank-busy cycles than per-bank")
	}
	// Dilution: the all-bank VRL/RAIDR ratio approaches 1.
	perRatio := perVRL / perRAIDR
	allRatio := allVRL / allRAIDR
	if allRatio <= perRatio {
		t.Fatalf("all-bank must dilute VRL: per %v vs all %v", perRatio, allRatio)
	}
	// Per-bank rank never fully blocks; all-bank always does.
	if cell(t, r, 0, 6) != 0 || cell(t, r, 2, 6) == 0 {
		t.Fatal("rank-blocked accounting wrong")
	}
}

func TestElasticSweep(t *testing.T) {
	r, err := ElasticSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 0; i < 4; i++ {
		if cell(t, r, i, 6) != 0 {
			t.Fatalf("row %d: violations", i)
		}
	}
	// Slack rows must postpone and not worsen latency.
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		off, on := pair[0], pair[1]
		if cell(t, r, on, 5) == 0 {
			t.Fatalf("row %d: no postponements", on)
		}
		if cell(t, r, off, 5) != 0 {
			t.Fatalf("row %d: postponed without slack", off)
		}
		if cell(t, r, on, 2) > cell(t, r, off, 2) {
			t.Fatalf("elastic refresh worsened avg latency: %v vs %v", cell(t, r, on, 2), cell(t, r, off, 2))
		}
	}
}

func TestRankPerfSweep(t *testing.T) {
	r, err := RankPerfSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	perRAIDRDelay := cell(t, r, 0, 3)
	perVRLDelay := cell(t, r, 1, 3)
	allVRLDelay := cell(t, r, 3, 3)
	if perRAIDRDelay <= 0 {
		t.Fatalf("refresh must add delay: %v", perRAIDRDelay)
	}
	if perVRLDelay >= perRAIDRDelay {
		t.Fatalf("per-bank VRL delay %v should beat RAIDR %v", perVRLDelay, perRAIDRDelay)
	}
	if allVRLDelay <= perVRLDelay {
		t.Fatalf("all-bank refresh should erode VRL's latency benefit: %v vs %v", allVRLDelay, perVRLDelay)
	}
	// Busy-cycle columns: per-bank VRL < per-bank RAIDR < all-bank RAIDR.
	if !(cell(t, r, 1, 5) < cell(t, r, 0, 5) && cell(t, r, 0, 5) < cell(t, r, 2, 5)) {
		t.Fatal("busy-cycle ordering violated")
	}
}

func TestSenseMarginSweep(t *testing.T) {
	r, err := SenseMarginSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		ideal := cell(t, r, i, 1)
		uniform := cell(t, r, i, 2)
		alt := cell(t, r, i, 3)
		rnd := cell(t, r, i, 4)
		if !(alt < ideal && rnd < ideal && uniform < ideal) {
			t.Fatalf("row %d: every coupled pattern must sit below the coupling-free ideal", i)
		}
		if !(uniform > alt && uniform > rnd) {
			t.Fatalf("row %d: anti-correlated patterns must be worse than uniform", i)
		}
		att := cell(t, r, i, 5)
		if att <= 0 || att > 1 {
			t.Fatalf("row %d: attenuation %v outside (0,1]", i, att)
		}
		// The reported attenuation is the worst pattern's margin.
		worst := alt
		if rnd < worst {
			worst = rnd
		}
		if got := worst / ideal; got < att-0.01 || got > att+0.01 {
			t.Fatalf("row %d: attenuation %v inconsistent with worst/ideal %v", i, att, got)
		}
	}
}

func TestSALPSweep(t *testing.T) {
	r, err := SALPSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Latency and refresh stalls fall monotonically as subarrays increase.
	prevLat, prevStall := 1e18, 1e18
	for i := 0; i < 6; i += 2 {
		lat := cell(t, r, i, 2)
		stall := cell(t, r, i, 4)
		if lat >= prevLat || stall > prevStall {
			t.Fatalf("SALP should monotonically reduce latency and refresh stalls (row %d)", i)
		}
		prevLat, prevStall = lat, stall
		if cell(t, r, i, 5) != 0 || cell(t, r, i+1, 5) != 0 {
			t.Fatalf("violations at row %d", i)
		}
	}
}
