// Package exp is the experiment harness: one function per table and figure
// of the paper, each returning a structured Result whose rows regenerate the
// published artifact. The cmd/vrlexp binary and the repository's benchmark
// suite are thin wrappers around this package.
package exp

import (
	"fmt"
	"io"
	"strings"

	"vrldram/internal/device"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// Config carries the shared experiment knobs; the zero value plus Default()
// reproduces the paper's setup.
type Config struct {
	Params   device.Params
	Geom     device.BankGeometry
	Dist     retention.CellDistribution
	Seed     int64
	Duration float64 // trace/refresh simulation window (s)

	// Backend selects the simulator runner for every experiment that runs
	// the refresh simulator. The zero value (sim.BackendAuto) is the
	// batched-exact path; sim.BackendBatchLUT opts into the gated
	// lookup-table decay curves.
	Backend sim.Backend

	// Workers bounds the number of concurrent cells an experiment may
	// evaluate. 0 (the default) means runtime.GOMAXPROCS(0); 1 forces the
	// historical sequential behavior. Results are identical for every
	// Workers value: cells are independent and reassembled in submission
	// order (see forEachCell).
	Workers int
}

// Default returns the paper's evaluation configuration: the 90 nm device,
// the 8192x32 bank, the calibrated retention distribution, and a 768 ms
// simulation window (the hyperperiod of the four RAIDR bins).
func Default() Config {
	return Config{
		Params:   device.Default90nm(),
		Geom:     device.PaperBank,
		Dist:     retention.DefaultCellDistribution(),
		Seed:     42,
		Duration: 0.768,
	}
}

// Validate reports the first unusable field.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	if err := c.Dist.Validate(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("exp: duration must be positive, got %g", c.Duration)
	}
	return nil
}

// Result is a rendered experiment: a titled table plus free-form notes
// (assumptions, paper-vs-measured summaries).
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a note line.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wd := len(c)
			if i < len(widths) {
				wd = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wd, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if len(r.Headers) > 0 {
		if _, err := fmt.Fprintln(w, line(r.Headers)); err != nil {
			return err
		}
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV renders the result as CSV (headers, then rows); notes become
// trailing comment lines.
func (r *Result) FprintCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(r.Headers); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Runner is an experiment entry point.
type Runner func(Config) (*Result, error)

// Registry maps experiment IDs to their runners, in the paper's order.
var Registry = []struct {
	ID    string
	Title string
	Run   Runner
}{
	{"fig1a", "Charge restoration vs fraction of tRFC (Observation 1)", Figure1a},
	{"fig1b", "Full vs partial refresh over three refresh periods (Observation 2)", Figure1b},
	{"fig3a", "DRAM retention time distribution", Figure3a},
	{"fig3b", "Refresh-period binning of rows (RAIDR)", Figure3b},
	{"fig4", "Refresh performance overhead with real traces", Figure4},
	{"fig5", "Voltage response during equalization", Figure5},
	{"tab1", "Analytical model accuracy and speed vs SPICE", Table1},
	{"tab2", "Area overhead of VRL-DRAM at 90nm", Table2},
	{"power", "Refresh power: VRL vs RAIDR (Section 4.1)", PowerComparison},
	{"sec31", "tau_partial trade-off sweep (Section 3.1)", TauPartialSweep},
	{"perf", "End-performance impact via the command-level controller (extension)", PerfImpact},
	{"abl-guardband", "Ablation: charge guardband vs overhead and safety", GuardbandSweep},
	{"abl-nbits", "Ablation: counter width vs overhead and area", NBitsSweep},
	{"abl-decay", "Ablation: leakage law vs MPRSF assignment", DecaySweep},
	{"abl-vrt", "Ablation: variable retention time and AVATAR-style mitigation", VRTImpact},
	{"abl-temp", "Ablation: operating temperature vs safety and overhead", TemperatureSweep},
	{"abl-density", "Ablation: refresh overhead vs bank density", DensitySweep},
	{"abl-rank", "Ablation: per-bank vs all-bank refresh commands across a rank", RankSweep},
	{"abl-elastic", "Ablation: elastic refresh under a saturating burst", ElasticSweep},
	{"abl-rankperf", "Ablation: request latency vs refresh command granularity", RankPerfSweep},
	{"abl-margin", "Ablation: worst-case sense signal by data pattern", SenseMarginSweep},
	{"abl-salp", "Ablation: subarray-level parallelism x refresh policy", SALPSweep},
	{"abl-coverage", "Ablation: trace row coverage vs VRL-Access benefit", CoverageSweep},
	{"resilience", "Fault injection vs policy: guarded and unguarded violation/overhead frontier", Resilience},
	{"scrub", "Online ECC patrol scrub and self-healing repair vs fault injection", Scrub},
	{"profiling", "Profiling-mechanism survival under composite-stress scenarios", Profiling},
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}
