package exp

import (
	"strconv"
	"testing"
)

func TestScrubExperiment(t *testing.T) {
	r, err := Scrub(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5*2 {
		t.Fatalf("rows = %d, want 5 faults x scrub off/on", len(r.Rows))
	}
	num := func(row []string, col int) int {
		n, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatalf("cell %q in row %v: %v", row[col], row, err)
		}
		return n
	}
	const (
		colViol = 2
		colLate = 3
		colPat  = 4
		colCorr = 5
		colUnc  = 6
		colHard = 10
	)
	for i := 0; i < len(r.Rows); i += 2 {
		off, on := r.Rows[i], r.Rows[i+1]
		if off[0] != on[0] || off[1] != "off" || on[1] != "on" {
			t.Fatalf("row pairing broken: %v / %v", off, on)
		}
		fault := off[0]

		// The patrol must actually run in every scrubbed campaign.
		if num(on, colPat) == 0 {
			t.Errorf("%s: scrubbed run patrolled no rows", fault)
		}

		switch fault {
		case "none":
			if num(off, colViol) != 0 || num(on, colViol) != 0 {
				t.Errorf("fault-free campaign violated: off=%s on=%s", off[colViol], on[colViol])
			}
		default:
			// The fault must bite without the scrubber, and the pipeline must
			// converge: zero violations after the settle deadline, against a
			// raw policy that is still failing there. The one concession is
			// VRT (transient weak cells): a telegraph row can flip low for
			// the FIRST time after the deadline, and that first offense is a
			// violation no detector can preempt - so there the bar is strict
			// improvement, not zero.
			if num(off, colViol) == 0 {
				t.Errorf("%s: fault is inert; the campaign demonstrates nothing", fault)
			}
			if num(off, colLate) == 0 {
				t.Errorf("%s: unscrubbed violations died out on their own", fault)
			}
			if fault == "transient weak cells (5% @ 0.55x)" {
				if num(on, colLate) >= num(off, colLate) {
					t.Errorf("%s: scrubbing did not reduce late violations (%s vs %s)", fault, on[colLate], off[colLate])
				}
			} else if num(on, colLate) != 0 {
				t.Errorf("%s: scrubbed run still violating after convergence (%s late)", fault, on[colLate])
			}
			if num(on, colViol) >= num(off, colViol) {
				t.Errorf("%s: scrubbing did not reduce violations (%s vs %s)", fault, on[colViol], off[colViol])
			}
			// Truncated refreshes are repaired silently: the patrol read's
			// own restore heals a half-strength refresh before the charge
			// decays into the ECC bands, so zero detections is correct there.
			if fault != "truncated refreshes (3% @ 0.5x)" && num(on, colCorr) == 0 && num(on, colUnc) == 0 {
				t.Errorf("%s: scrubber classified no errors under an active fault", fault)
			}
		}
		if num(on, colHard) != 0 {
			t.Errorf("%s: %s hard failures with a 64-spare budget", fault, on[colHard])
		}
	}
}
