package exp

import (
	"fmt"
	"math"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/device"
)

// SenseMarginSweep reports the worst-case developed sense signal per data
// pattern across Table 1's bank geometries: the quantity the paper's
// Eq. 7/8 coupling model exists to compute. A design is sensible only if
// the weakest bitline under the most hostile pattern still develops enough
// differential for the latch amplifier - and the table shows why the
// alternating pattern is the one the profiler must derate for.
func SenseMarginSweep(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Result{
		ID:    "abl-margin",
		Title: "Worst-case developed sense signal by data pattern (Eq. 8 coupling solve)",
		Headers: []string{"Bank", "ideal (mV)", "all-0/1 (mV)", "alternating (mV)",
			"random (mV)", "worst attenuation"},
	}
	for _, g := range device.Table1Banks {
		m, err := analytic.New(cfg.Params, g)
		if err != nil {
			return nil, err
		}
		ideal := m.VsenseIdeal(cfg.Params.Vdd - cfg.Params.Veq())
		minFor := func(pattern string) (float64, error) {
			lself, err := m.PatternLself(pattern, g.Cols)
			if err != nil {
				return 0, err
			}
			vs, err := m.VsenseVector(lself)
			if err != nil {
				return 0, err
			}
			min := math.Inf(1)
			for _, v := range vs {
				if a := math.Abs(v); a < min {
					min = a
				}
			}
			return min, nil
		}
		ones, err := minFor("ones")
		if err != nil {
			return nil, err
		}
		alt, err := minFor("alt")
		if err != nil {
			return nil, err
		}
		rnd, err := minFor("random")
		if err != nil {
			return nil, err
		}
		att, err := m.WorstCaseAttenuation(g.Cols)
		if err != nil {
			return nil, err
		}
		r.AddRow(g.String(),
			fmt.Sprintf("%.1f", ideal*1e3),
			fmt.Sprintf("%.1f", ones*1e3),
			fmt.Sprintf("%.1f", alt*1e3),
			fmt.Sprintf("%.1f", rnd*1e3),
			fmt.Sprintf("%.3f", att))
	}
	r.AddNote("uniform patterns lose only the wordline-coupling share; anti-correlated neighbours fight the signal directly")
	r.AddNote("the random pattern's worst local spot dips slightly below even the alternating pattern: supportive second neighbours strengthen the opposing lines (the cyclic dependency of Eq. 7) - this is why profiling sweeps all four patterns")
	r.AddNote("the attenuation is geometry-stable because the charge-transfer ratio is fixed per bitline segment; the latency geometry dependence lives in the time domain (Table 1), not the signal domain")
	return r, nil
}
