package exp

import (
	"fmt"
	"math"
	"time"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/circuit/netlists"
	"vrldram/internal/circuit/spice"
	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/retention"
	"vrldram/internal/singlecell"
)

// Figure1a reproduces the paper's Figure 1a: the fraction of full charge on
// a cell capacitor versus the fraction of tRFC elapsed during a full refresh
// operation, for a cell starting at the 50% sensing limit. The paper's
// Observation 1: ~60% of tRFC is spent reaching 95% of charge; the last 5%
// of charge costs the remaining ~40%.
func Figure1a(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := analytic.New(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	const start = 0.5
	pts, err := m.RestoreCurve(start, 21)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig1a",
		Title:   "Charge restoration vs fraction of tRFC",
		Headers: []string{"% of tRFC", "% of full charge"},
	}
	for _, p := range pts {
		r.AddRow(fmt.Sprintf("%.0f", 100*p.FracTRFC), fmt.Sprintf("%.1f", 100*p.FracCharge))
	}
	t95, err := m.TimeToChargeFraction(start, 0.95)
	if err != nil {
		return nil, err
	}
	r.AddNote("time to 95%% of charge: %.0f%% of tRFC (paper: ~60%%)", 100*t95)
	r.AddNote("the last 5%% of charge takes the remaining %.0f%% of tRFC (paper: ~40%%)", 100*(1-t95))
	return r, nil
}

// Figure1b reproduces the paper's Figure 1b: the charge of an example cell
// over three 64 ms refresh periods, refreshed (a) fully every period and
// (b) with partial refreshes after the initial full refresh. The example
// cell is chosen, as in the paper, so that it survives one partial refresh
// but not two back-to-back ones.
func Figure1b(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rm, err := core.PaperRestoreModel(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	period := cfg.Params.TRetNom
	decay := retention.ExpDecay{}

	// Find a retention time whose MPRSF at the raw sensing limit is exactly
	// 1: one partial refresh is safe, two back-to-back are not.
	tret := math.NaN()
	for t := period; t < 4*period; t += period / 2048 {
		if core.ComputeMPRSF(t, period, rm, decay, retention.SenseLimit, 8) == 1 {
			tret = t
			break
		}
	}
	if math.IsNaN(tret) {
		return nil, fmt.Errorf("exp: no retention time with MPRSF=1 at the raw sensing limit")
	}

	r := &Result{
		ID:      "fig1b",
		Title:   "Refreshing a DRAM cell with full and partial refresh operations",
		Headers: []string{"time (ms)", "% charge (full refresh)", "% charge (partial refresh)"},
	}

	// Trajectory sampling: full-refresh schedule restores with AlphaFull at
	// 64/128 ms; partial-refresh schedule restores with AlphaPartial.
	sample := func(alpha float64, t float64) float64 {
		// Charge at absolute time t under refreshes at 64 and 128 ms.
		v := 1.0
		last := 0.0
		for _, rt := range []float64{period, 2 * period} {
			if t < rt {
				break
			}
			v = v * decay.Factor(rt-last, tret)
			v = v + (1-v)*alpha
			last = rt
		}
		return v * decay.Factor(t-last, tret)
	}
	const stepMS = 8
	for ms := 0; ms <= 192; ms += stepMS {
		t := float64(ms) / 1000
		r.AddRow(
			fmt.Sprintf("%d", ms),
			fmt.Sprintf("%.1f", 100*sample(rm.AlphaFull, t)),
			fmt.Sprintf("%.1f", 100*sample(rm.AlphaPartial, t)),
		)
	}
	minPartial := 1.0
	for ms := 0; ms <= 192; ms++ {
		if v := sample(rm.AlphaPartial, float64(ms)/1000); v < minPartial {
			minPartial = v
		}
	}
	r.AddNote("example cell retention time: %.1f ms (MPRSF = 1 at the raw 50%% limit)", tret*1000)
	r.AddNote("after two back-to-back partial refreshes the charge reaches %.1f%%, below the 50%% sensing limit (paper: cell loses its value)", 100*minPartial)
	r.AddNote("with a full refresh every period the charge never drops below %.1f%%", 100*decay.Factor(period, tret))
	return r, nil
}

// Figure5 reproduces the paper's Figure 5: the equalization voltage response
// of the bitline pair under (1) the paper's two-phase analytical model,
// (2) the single-cell capacitor model of Li et al., and (3) transient SPICE
// simulation of the Figure 2a circuit.
func Figure5(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	am, err := analytic.New(cfg.Params, cfg.Geom)
	if err != nil {
		return nil, err
	}
	sc := singlecell.New(cfg.Params)

	ckt := netlists.Equalization(cfg.Params)
	const tstop, h = 1.0e-9, 1.0e-12
	res, err := ckt.Transient(spice.TransientOpts{TStop: tstop, H: h, Probes: []string{"bl", "blb"}})
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:    "fig5",
		Title: "Voltage response during the equalization stage",
		Headers: []string{"t (ns)", "Bi 2-phase (V)", "Bi Li et al. (V)", "Bi SPICE (V)",
			"B~i 2-phase (V)", "B~i SPICE (V)"},
	}
	var errOurs, errLi float64
	n := 0
	for i := 0; i <= 20; i++ {
		t := tstop * float64(i) / 20
		vSpiceHi, err := res.At("bl", t)
		if err != nil {
			return nil, err
		}
		vSpiceLo, err := res.At("blb", t)
		if err != nil {
			return nil, err
		}
		vOurs := am.EqBitlineVoltage(t, true)
		vLi := sc.EqBitlineVoltage(t, true)
		vOursLo := am.EqBitlineVoltage(t, false)
		r.AddRow(
			fmt.Sprintf("%.2f", t*1e9),
			fmt.Sprintf("%.4f", vOurs),
			fmt.Sprintf("%.4f", vLi),
			fmt.Sprintf("%.4f", vSpiceHi),
			fmt.Sprintf("%.4f", vOursLo),
			fmt.Sprintf("%.4f", vSpiceLo),
		)
		errOurs += (vOurs - vSpiceHi) * (vOurs - vSpiceHi)
		errLi += (vLi - vSpiceHi) * (vLi - vSpiceHi)
		n++
	}
	rmsOurs := math.Sqrt(errOurs / float64(n))
	rmsLi := math.Sqrt(errLi / float64(n))
	r.AddNote("RMS error vs SPICE on bitline Bi: 2-phase model %.1f mV, Li et al. single-cell model %.1f mV", rmsOurs*1e3, rmsLi*1e3)
	if rmsOurs < rmsLi {
		r.AddNote("the 2-phase model tracks SPICE more closely than the single-cell model (paper's claim)")
	} else {
		r.AddNote("WARNING: the single-cell model came out closer to SPICE than the 2-phase model; check calibration")
	}
	return r, nil
}

// Table1 reproduces the paper's Table 1: the pre-sensing time (in DRAM
// cycles) needed to develop 95% of the sense signal, for six bank
// geometries, under SPICE simulation, the single-cell model, and the
// paper's analytical model - plus the wall-clock time of each method.
func Table1(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Result{
		ID:    "tab1",
		Title: "Accuracy trade-offs of the analytical model",
		Headers: []string{"Bank", "SPICE (cyc)", "Single cell (cyc)", "Our model (cyc)",
			"SPICE time", "Single cell time", "Our model time"},
	}
	sc := singlecell.New(cfg.Params)
	for _, g := range device.Table1Banks {
		meas, err := netlists.MeasurePreSense(cfg.Params, g, "ones", analytic.PreSenseTargetDefault)
		if err != nil {
			return nil, fmt.Errorf("exp: SPICE pre-sense for %s: %w", g, err)
		}
		scStart := time.Now()
		scT := sc.TauPre(analytic.PreSenseTargetDefault)
		scElapsed := elapsedNanos(scStart)

		am, err := analytic.New(cfg.Params, g)
		if err != nil {
			return nil, err
		}
		amStart := time.Now()
		amT := am.TauPre(analytic.PreSenseTargetDefault)
		amElapsed := elapsedNanos(amStart)

		r.AddRow(
			g.String(),
			fmt.Sprintf("%d", meas.Cycles),
			fmt.Sprintf("%d", cfg.Params.Cycles(scT)),
			fmt.Sprintf("%d", cfg.Params.Cycles(amT)),
			meas.WallClock.String(),
			fmtNanos(scElapsed),
			fmtNanos(amElapsed),
		)
	}
	r.AddNote("paper (90nm testbed): SPICE 7/8/9/11/14/16, single cell 6/6/6/6/6/6, model 7/8/9/10/12/14 cycles")
	r.AddNote("the single-cell model is geometry-blind; SPICE and the analytical model grow with bank size")
	r.AddNote("wall-clock substitutes the paper's hours-vs-seconds scale: our transient engine is ~10^3-10^4x slower than the closed-form model, preserving the ordering")
	return r, nil
}
