package exp

import (
	"context"
	"fmt"
	"time"
)

// ErrorNote prefixes the note a failed experiment's placeholder Result
// carries, so renderers and exit-code logic can recognize failures even
// after the result has round-tripped through a campaign checkpoint.
const ErrorNote = "ERROR: "

// CampaignOptions configures RunCampaign.
type CampaignOptions struct {
	// IDs selects a subset of the registry, in the given order; nil runs
	// every registered experiment in the paper's order.
	IDs []string
	// Timeout is the per-experiment wall-clock budget (0 = unlimited). An
	// experiment that exceeds it is abandoned: its goroutine is left to
	// finish in the background (experiments have no cancellation hook) and
	// its slot gets an error Result instead.
	Timeout time.Duration
	// Restore, when non-nil, is consulted before running each experiment; a
	// non-nil Result is reused verbatim (and OnResult is not re-invoked for
	// it). This is how a resumed campaign skips completed work.
	Restore func(id string) *Result
	// OnResult, when non-nil, observes each freshly produced Result as soon
	// as the experiment finishes - the campaign checkpointing hook.
	OnResult func(*Result) error
}

// RunCampaign runs a sequence of experiments as one crash-tolerant
// campaign: each experiment runs with a wall-clock timeout and panic
// isolation, and a failing, panicking, or timed-out experiment contributes
// an error Result (ErrorNote-prefixed note) instead of killing the rest of
// the campaign. Cancelling the context stops the campaign at the next
// experiment boundary (or abandons the one in flight) and returns the
// results so far with the context's error.
func RunCampaign(ctx context.Context, cfg Config, opts CampaignOptions) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type entry struct {
		id    string
		title string
		run   Runner
	}
	var plan []entry
	if opts.IDs == nil {
		for _, e := range Registry {
			plan = append(plan, entry{e.ID, e.Title, e.Run})
		}
	} else {
		for _, id := range opts.IDs {
			run, err := Find(id)
			if err != nil {
				return nil, err
			}
			title := ""
			for _, e := range Registry {
				if e.ID == id {
					title = e.Title
				}
			}
			plan = append(plan, entry{id, title, run})
		}
	}

	var results []*Result
	for _, e := range plan {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		if opts.Restore != nil {
			if res := opts.Restore(e.id); res != nil {
				results = append(results, res)
				continue
			}
		}
		res, err := runIsolated(ctx, cfg, e.run, opts.Timeout)
		if err != nil {
			res = &Result{ID: e.id, Title: e.title}
			res.AddNote("%s%v", ErrorNote, err)
		}
		if res.ID == "" {
			res.ID = e.id
		}
		results = append(results, res)
		if opts.OnResult != nil {
			if err := opts.OnResult(res); err != nil {
				return results, fmt.Errorf("exp: campaign progress hook for %s: %w", e.id, err)
			}
		}
		if err := ctx.Err(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// Failed reports whether the result records an experiment failure (an
// ErrorNote-prefixed note), as produced by RunCampaign for an experiment
// that errored, panicked, or timed out.
func (r *Result) Failed() bool {
	for _, n := range r.Notes {
		if len(n) >= len(ErrorNote) && n[:len(ErrorNote)] == ErrorNote {
			return true
		}
	}
	return false
}

// runIsolated executes one experiment in its own goroutine so a panic or a
// hang is contained: a panic becomes an error, and a run that outlives the
// timeout (or the context) is abandoned.
func runIsolated(ctx context.Context, cfg Config, run Runner, timeout time.Duration) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1) // buffered: an abandoned run must not leak on send
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("experiment panicked: %v", r)}
			}
		}()
		res, err := run(cfg)
		done <- outcome{res, err}
	}()

	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case o := <-done:
		if o.err != nil {
			return nil, o.err
		}
		if o.res == nil {
			return nil, fmt.Errorf("experiment returned no result")
		}
		return o.res, nil
	case <-timeoutC:
		return nil, fmt.Errorf("experiment timed out after %v (abandoned)", timeout)
	case <-ctx.Done():
		return nil, fmt.Errorf("campaign cancelled mid-experiment: %w", ctx.Err())
	}
}
