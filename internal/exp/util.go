package exp

import (
	"fmt"
	"time"
)

// nowNanotime returns a monotonic nanosecond timestamp for micro-timing the
// closed-form models in Table 1.
func nowNanotime() int64 { return time.Now().UnixNano() }

// fmtNanos renders a nanosecond interval compactly (the closed-form models
// finish in microseconds).
func fmtNanos(ns int64) string {
	return fmt.Sprintf("%v", time.Duration(ns))
}
