package exp

import (
	"fmt"
	"time"
)

// elapsedNanos measures the interval since start on the monotonic clock.
// time.Now() carries a monotonic reading and time.Since subtracts on it, so
// the measurement is immune to wall-clock steps (NTP slew, suspend/resume) -
// unlike the UnixNano() deltas Table 1 used before.
func elapsedNanos(start time.Time) int64 { return time.Since(start).Nanoseconds() }

// fmtNanos renders a nanosecond interval compactly (the closed-form models
// finish in microseconds).
func fmtNanos(ns int64) string {
	return fmt.Sprintf("%v", time.Duration(ns))
}
