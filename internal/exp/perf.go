package exp

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/dram"
	"vrldram/internal/memctrl"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
	"vrldram/internal/tracecache"
)

// PerfImpact is the evaluation extension DESIGN.md calls out: it runs the
// command-level memory controller to turn refresh-overhead savings into
// end-performance numbers - the average memory request latency under each
// refresh policy, for a representative subset of the Figure 4 workloads.
// The paper motivates VRL-DRAM with exactly this effect (the bank is
// unavailable for tRFC out of every tREFI); this experiment quantifies it.
func PerfImpact(cfg Config) (*Result, error) {
	f, err := newFig4Setup(cfg)
	if err != nil {
		return nil, err
	}
	mopts := memctrl.Options{
		Timing:   memctrl.DefaultTiming(),
		TCK:      cfg.Params.TCK,
		Duration: cfg.Duration,
	}
	r := &Result{
		ID:    "perf",
		Title: "Memory request latency under each refresh policy (command-level controller)",
		Headers: []string{"benchmark", "scheduler", "avg lat (cyc)", "refresh delay (mcyc)",
			"max (cyc)", "refresh busy", "stalled reqs"},
	}
	benchNames := []string{"swaptions", "facesim", "streamcluster", "bgsave"}
	scfg := core.Config{Restore: f.rm}
	// Each benchmark is an independent cell (its own trace, its own four
	// controller runs); fan the benchmarks out on the worker pool and stitch
	// the per-benchmark row blocks back together in name order.
	blocks := make([][][]string, len(benchNames))
	err = forEachCell(cfg, len(benchNames), func(_ context.Context, bi int) error {
		name := benchNames[bi]
		spec, err := trace.FindBenchmark(name)
		if err != nil {
			return err
		}
		recs, err := tracecache.Records(spec, cfg.Geom.Rows, cfg.Duration, cfg.Seed)
		if err != nil {
			return err
		}
		reqs := memctrl.RequestsFromTrace(recs, cfg.Params.TCK)

		run := func(mk func() (core.Scheduler, error)) (memctrl.Stats, error) {
			sched, err := mk()
			if err != nil {
				return memctrl.Stats{}, err
			}
			bank, err := dram.NewBank(f.profile, retention.ExpDecay{}, retention.PatternAllZeros)
			if err != nil {
				return memctrl.Stats{}, err
			}
			st, _, err := memctrl.Run(bank, sched, reqs, mopts)
			if err != nil {
				return memctrl.Stats{}, err
			}
			return st, nil
		}

		// No-refresh baseline: a nominal policy whose period exceeds the
		// simulated window, so no refresh ever fires. (Its charge tracker
		// would complain about the idle rows only if we swept them; the run
		// ends before the first refresh sensing, so the comparison is pure.)
		base, err := run(func() (core.Scheduler, error) { return core.NewJEDEC(10*cfg.Duration, f.rm) })
		if err != nil {
			return err
		}
		for _, mk := range []func() (core.Scheduler, error){
			func() (core.Scheduler, error) { return core.NewRAIDR(f.profile, scfg) },
			func() (core.Scheduler, error) { return core.NewVRL(f.profile, scfg) },
			func() (core.Scheduler, error) { return core.NewVRLAccess(f.profile, scfg) },
		} {
			st, err := run(mk)
			if err != nil {
				return err
			}
			if st.Violations != 0 {
				return fmt.Errorf("exp: %s/%s: %d integrity violations", name, st.Scheduler, st.Violations)
			}
			// Refresh-induced delay in millicycles per request.
			delay := (st.AvgLatency - base.AvgLatency) * 1000
			blocks[bi] = append(blocks[bi], []string{name, st.Scheduler,
				fmt.Sprintf("%.2f", st.AvgLatency),
				fmt.Sprintf("%.1f", delay),
				fmt.Sprintf("%d", st.MaxLatency),
				fmt.Sprintf("%d", st.RefreshBusyCycles),
				fmt.Sprintf("%d", st.StalledByRefresh)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, block := range blocks {
		r.Rows = append(r.Rows, block...)
	}
	r.AddNote("'refresh delay' is the average latency added by refresh relative to a no-refresh baseline, in millicycles per request")
	r.AddNote("per-row refreshes make the average effect small (refresh overhead is <0.1%% of time at this granularity); the savings concentrate in the tail (max latency) and scale with chip density")
	r.AddNote("VRL and VRL-Access shrink the refresh-busy window, so fewer requests queue behind refreshes")
	return r, nil
}
