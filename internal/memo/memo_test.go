package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOnce(t *testing.T) {
	var c Map[int, int]
	var builds int32
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Get(7, func() (int, error) {
				atomic.AddInt32(&builds, 1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %d, want 42", i, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetMemoizesErrors(t *testing.T) {
	var c Map[string, int]
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 3; i++ {
		_, err := c.Get("k", func() (int, error) {
			builds++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if builds != 1 {
		t.Fatalf("failed build ran %d times, want 1", builds)
	}
}

func TestFlush(t *testing.T) {
	var c Map[int, int]
	builds := 0
	get := func() {
		if _, err := c.Get(1, func() (int, error) { builds++; return builds, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get()
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d, want 0", c.Len())
	}
	get()
	if builds != 2 {
		t.Fatalf("build ran %d times across a Flush, want 2", builds)
	}
}
