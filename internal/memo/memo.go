// Package memo provides the concurrency-safe memoization primitive the
// repository's shared caches (internal/tracecache, internal/profcache) are
// built on: a singleflight-style map in which each key's value is built
// exactly once, even when many goroutines ask for it at the same moment,
// and every caller blocks only on the key it needs.
package memo

import "sync"

// entry is one key's build slot. The sync.Once guarantees the build function
// runs once; concurrent callers for the same key block inside once.Do until
// the first caller's build completes, then all observe the same value.
type entry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// Map memoizes build results per comparable key. The zero value is ready to
// use. All methods are safe for concurrent use.
//
// Values are returned by reference/value exactly as built: callers must
// treat shared results as read-only (copy before mutating).
type Map[K comparable, V any] struct {
	m sync.Map // K -> *entry[V]
}

// Get returns the memoized value for key, building it with build on first
// use. A build error is memoized too: every caller for that key observes the
// same error without re-running the build (deterministic builders fail
// deterministically; retrying would just repeat the work).
func (c *Map[K, V]) Get(key K, build func() (V, error)) (V, error) {
	e, _ := c.m.LoadOrStore(key, &entry[V]{})
	en := e.(*entry[V])
	en.once.Do(func() { en.v, en.err = build() })
	return en.v, en.err
}

// Len reports the number of memoized keys (including failed builds).
func (c *Map[K, V]) Len() int {
	n := 0
	c.m.Range(func(_, _ interface{}) bool { n++; return true })
	return n
}

// Flush drops every memoized entry, returning the map to its empty state.
// Intended for tests and long-lived processes that want to bound memory
// between campaigns; in-flight Get calls keep their entry alive until they
// return.
func (c *Map[K, V]) Flush() {
	c.m.Range(func(k, _ interface{}) bool { c.m.Delete(k); return true })
}
