package profcache

import (
	"reflect"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/retention"
)

func TestPaperProfileSharedAndDeterministic(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	dist := retention.DefaultCellDistribution()

	a, err := PaperProfile(dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperProfile(dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the shared profile")
	}
	direct, err := retention.NewPaperProfile(dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, direct) {
		t.Fatal("cached profile differs from direct construction")
	}

	c, err := PaperProfile(dist, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds share a profile")
	}
}

func TestSampledProfileKeyedByGeometry(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	dist := retention.DefaultCellDistribution()
	small := device.BankGeometry{Rows: 512, Cols: device.PaperBank.Cols}

	a, err := SampledProfile(small, dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledProfile(small, dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same geometry did not share a profile")
	}
	big := device.BankGeometry{Rows: 1024, Cols: device.PaperBank.Cols}
	c, err := SampledProfile(big, dist, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different geometries share a profile")
	}
}

func TestRestoreModelsMemoized(t *testing.T) {
	Flush()
	t.Cleanup(Flush)
	p := device.Default90nm()

	a, err := PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, direct) {
		t.Fatal("cached restore model differs from direct construction")
	}

	before := Len()
	if _, err := PaperRestoreModel(p, device.PaperBank); err != nil {
		t.Fatal(err)
	}
	if Len() != before {
		t.Fatal("repeat lookup grew the cache")
	}

	for _, cycles := range []int{1, 2, 4} {
		got, err := RestoreModelFor(p, device.PaperBank, cycles)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.RestoreModelFor(p, device.PaperBank, cycles)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cycles=%d: cached model differs from direct construction", cycles)
		}
	}
}
